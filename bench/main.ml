(* Benchmark harness: regenerates every table and figure of the ForkBase
   ICDE'20 demo paper (see DESIGN.md section 2 and EXPERIMENTS.md).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig4    -- run one experiment
     experiments: table1 fig2 fig3 fig4 fig5 fig6 siri ablation storage
     resilience sharded cluster obs micro hotpath net net-scaling
     net-c10k durability
     (cluster and the last four also have sub-second -quick variants)

   Absolute numbers are machine-dependent; the reproduced artifact is the
   *shape*: who wins, by what factor, and how quantities scale.

   Latency distributions (p50/p99) come from fb_obs histograms rather
   than mean-only timing; the `obs` experiment additionally measures the
   instrumentation's own overhead and emits BENCH_obs.json. *)

module Store = Fb_chunk.Store
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module Prng = Fb_hash.Prng
module Pmap = Fb_postree.Pmap
module Pblob = Fb_postree.Pblob
module Value = Fb_types.Value
module Table = Fb_types.Table
module Csv = Fb_types.Csv
module FB = Fb_core.Forkbase
module Baseline = Fb_baselines.Baseline
module Csvgen = Fb_workload.Csvgen
module Edits = Fb_workload.Edits
module Obs = Fb_obs.Obs

let ok_fb = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let kb bytes = float_of_int bytes /. 1024.0

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Shared workload: K versions of an evolving tabular dataset.        *)
(* ------------------------------------------------------------------ *)

let dataset_versions ~versions ~rows =
  let base =
    Csvgen.generate_rows
      { Csvgen.rows; string_columns = 3; int_columns = 2; seed = 100L }
  in
  let rec evolve acc current i =
    if i >= versions then List.rev acc
    else begin
      let seed = Int64.of_int (1000 + i) in
      let next =
        Edits.append_rows ~seed ~rows:(rows / 100)
          (Edits.point_edit_cells ~seed ~cells:5
             (Edits.delete_rows ~seed ~rows:2 current))
      in
      evolve (next :: acc) next (i + 1)
    end
  in
  evolve [ base ] base 1

(* Rows as (key, serialized-line) pairs for the baseline interface. *)
let kv_of_rows rows =
  match rows with
  | [] -> []
  | _header :: data ->
    List.sort compare
      (List.map
         (fun row -> (List.hd row, String.concat "," row))
         data)

(* ForkBase driven through the same snapshot-commit interface as the
   baselines, so Table I compares like with like. *)
let forkbase_baseline () =
  let store = Mem_store.create () in
  let versions : Hash.t option list ref = ref [] in
  let heads : Hash.t list ref = ref [] in
  let commit rows =
    let map = Pmap.of_bindings store rows in
    let fnode =
      Fb_repr.Fnode.v ~key:"dataset"
        ~value_descriptor:(Value.descriptor (Value.Map map))
        ~bases:(match !heads with h :: _ -> [ h ] | [] -> [])
        ~author:"bench" ~message:"commit"
        ~seq:(List.length !versions + 1)
    in
    let uid = Fb_repr.Fnode.store store fnode in
    heads := uid :: !heads;
    versions := Pmap.root map :: !versions;
    List.length !versions - 1
  in
  let retrieve v =
    match List.nth_opt (List.rev !versions) v with
    | None -> invalid_arg "forkbase: no such version"
    | Some root -> Pmap.bindings (Pmap.of_root store root)
  in
  ( { Baseline.name = "ForkBase (POS-Tree)";
      caps =
        { data_model = "structured/unstructured, immutable";
          dedup = "page level (POS-Tree)";
          tamper_evidence = true;
          branching = "git-like" };
      commit;
      retrieve;
      storage_bytes = (fun () -> Store.physical_bytes store) },
    store,
    heads )

(* ------------------------------------------------------------------ *)
(* Table I: comparison with related data versioning systems.          *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  header
    "TABLE I: comparison with related data versioning systems\n\
     (paper: qualitative claims; here: measured on 24 versions x ~2000 rows)";
  let snapshots = List.map kv_of_rows (dataset_versions ~versions:24 ~rows:2000) in
  let logical =
    List.fold_left (fun a rows -> a + Baseline.rows_bytes rows) 0 snapshots
  in
  Printf.printf "logical data volume: %.1f KB over %d versions\n\n"
    (kb logical) (List.length snapshots);
  let fb, fb_store, fb_heads = forkbase_baseline () in
  let systems =
    [ fb;
      Fb_baselines.Gitfile_store.create ();
      Fb_baselines.Delta_store.create ();
      Fb_baselines.Kv_store.create ();
      Fb_baselines.Fixed_chunk_store.create ();
      Fb_baselines.Snapshot_store.create () ]
  in
  Printf.printf "%-26s %-12s %-8s %-9s %-8s %-10s %s\n" "System" "Physical"
    "Ratio" "Retrieve" "Tamper" "Branching" "Dedup granularity";
  List.iter
    (fun (b : Baseline.t) ->
      List.iter (fun rows -> ignore (b.commit rows)) snapshots;
      let physical = b.storage_bytes () in
      (* Retrieval correctness + latency of the oldest version (delta
         chains pay here). *)
      let first = List.hd snapshots in
      let got, retrieve_ms = time_ms (fun () -> b.retrieve 0) in
      assert (got = first);
      Printf.printf "%-26s %8.1f KB  %5.2fx  %6.2fms  %-8s %-10s %s\n" b.name
        (kb physical)
        (float_of_int logical /. float_of_int physical)
        retrieve_ms
        (if b.caps.Baseline.tamper_evidence then "yes" else "none")
        b.caps.Baseline.branching b.caps.Baseline.dedup)
    systems;
  (* ForkBase's tamper evidence is not just a flag: verify the tip. *)
  (match !fb_heads with
   | tip :: _ ->
     let report, ms =
       time_ms (fun () ->
           match Fb_repr.Verify.verify fb_store tip with
           | Ok r -> r
           | Error e -> failwith e)
     in
     Printf.printf
       "\nForkBase verify(tip): %d versions, %d value chunks re-hashed in %.1f ms\n"
       report.Fb_repr.Verify.versions_checked report.Fb_repr.Verify.value_chunks
       ms
   | [] -> ());
  (* Branching cost: a fork copies nothing. *)
  let fb2 = FB.create (Mem_store.create ()) in
  ignore
    (ok_fb
       (FB.put fb2 ~key:"d"
          (Value.map_of_bindings (FB.store fb2) (List.hd snapshots))));
  let before = Store.physical_bytes (FB.store fb2) in
  let _, fork_ms = time_ms (fun () -> ok_fb (FB.fork fb2 ~key:"d" ~new_branch:"b")) in
  Printf.printf
    "ForkBase branch creation: %.3f ms, %d bytes copied (git-like, O(1))\n"
    fork_ms
    (Store.physical_bytes (FB.store fb2) - before)

(* ------------------------------------------------------------------ *)
(* Fig. 2: POS-Tree structure.                                        *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let run_fig2 () =
  header
    "FIG. 2: POS-Tree structure (index/data chunks, pattern-terminated nodes)\n\
     validated invariant: every node ends at a rolling-hash pattern (or is\n\
     level-last / size-capped); node ids are SHA-256 of content";
  Printf.printf "%-10s %-7s %-22s %-24s %s\n" "entries" "height"
    "nodes/level (root..leaf)" "leaf bytes mean/p50/p99" "validate";
  List.iter
    (fun n ->
      let store = Mem_store.create () in
      let rng = Prng.create 55L in
      let bindings =
        List.init n (fun i ->
            ( Printf.sprintf "key-%08d" i,
              Printf.sprintf "payload-%Ld" (Prng.next_int64 rng) ))
      in
      let t = Pmap.of_bindings store bindings in
      let ns = Pmap.node_stats t in
      let sizes = Array.of_list (List.sort compare ns.Pmap.leaf_node_sizes) in
      let mean =
        float_of_int (Array.fold_left ( + ) 0 sizes)
        /. float_of_int (max 1 (Array.length sizes))
      in
      let valid = match Pmap.validate t with Ok () -> "ok" | Error e -> e in
      Printf.printf "%-10d %-7d %-22s %6.0f / %d / %d        %s\n" n
        ns.Pmap.levels
        (String.concat "," (List.map string_of_int ns.Pmap.nodes_per_level))
        mean
        (percentile sizes 0.5)
        (percentile sizes 0.99)
        valid)
    [ 1_000; 10_000; 100_000 ];
  Printf.printf
    "\nexpected node payload ~ 2^q = %d bytes (q = %d, window = %d)\n"
    (1 lsl Fb_hash.Rolling.default_node_params.q)
    Fb_hash.Rolling.default_node_params.q
    Fb_hash.Rolling.default_node_params.window

(* ------------------------------------------------------------------ *)
(* Fig. 3: three-way merge reuses disjointly modified sub-trees.      *)
(* ------------------------------------------------------------------ *)

let run_fig3 () =
  header
    "FIG. 3: three-way merge reuses disjointly-modified sub-trees\n\
     'calculated' = fresh chunks written by merge; 'reused' = chunks shared\n\
     with base/ours/theirs (dedup hits during the merge)";
  let n = 100_000 in
  let store = Mem_store.create () in
  let bindings =
    List.init n (fun i -> (Printf.sprintf "key-%08d" i, "baseline-value"))
  in
  let base = Pmap.of_bindings store bindings in
  let total_chunks = List.length (Pmap.node_hashes base) in
  Printf.printf "base: %d entries, %d chunks\n\n" n total_chunks;
  Printf.printf "%-14s %-12s %-12s %-12s %-14s %s\n" "edits/side"
    "calculated" "reused" "merge ms" "elementwise ms" "speedup";
  List.iter
    (fun k ->
      let rng = Prng.create (Int64.of_int (77 + k)) in
      let pick () = Prng.next_int rng (n / 2) in
      (* Ours edits the first half, theirs the second: disjoint. *)
      let ours =
        Pmap.update base
          (List.init k (fun _ ->
               Pmap.Put
                 (Pmap.binding (Printf.sprintf "key-%08d" (pick ())) "ours")))
      in
      let theirs =
        Pmap.update base
          (List.init k (fun _ ->
               Pmap.Put
                 (Pmap.binding
                    (Printf.sprintf "key-%08d" (n / 2 + pick ()))
                    "theirs")))
      in
      let s0 = Store.stats store in
      let merged, merge_ms =
        time_ms (fun () ->
            match Pmap.merge ~base ~ours ~theirs () with
            | Ok m -> m
            | Error _ -> failwith "unexpected conflict")
      in
      let s1 = Store.stats store in
      let calculated = s1.Store.physical_chunks - s0.Store.physical_chunks in
      let reused = s1.Store.dedup_hits - s0.Store.dedup_hits in
      (* Element-wise baseline: materialize both sides and merge entry by
         entry, rebuilding the result from scratch. *)
      let _, naive_ms =
        time_ms (fun () ->
            let o = Pmap.bindings ours and t = Pmap.bindings theirs in
            let b = Pmap.bindings base in
            let tbl = Hashtbl.create (2 * n) in
            List.iter (fun (k, v) -> Hashtbl.replace tbl k v) b;
            List.iter (fun (k, v) -> Hashtbl.replace tbl k v) o;
            List.iter (fun (k, v) -> Hashtbl.replace tbl k v) t;
            ignore
              (Pmap.of_bindings (Mem_store.create ())
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])))
      in
      ignore merged;
      Printf.printf "%-14d %-12d %-12d %-12.2f %-14.2f %.0fx\n" k calculated
        reused merge_ms naive_ms
        (naive_ms /. merge_ms))
    [ 1; 10; 100; 1000 ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: fine-grained deduplication (the +338.54 KB / +0.04 KB demo) *)
(* ------------------------------------------------------------------ *)

let run_fig4 () =
  header
    "FIG. 4 (demo III-A): loading two CSVs with a single-word difference\n\
     paper: first load +338.54 KB, second load +0.04 KB";
  let csv1 = Csvgen.generate_of_size ~target_bytes:338_540 () in
  let csv2 = Edits.change_one_word csv1 in
  Printf.printf "dataset-1: %.2f KB csv; dataset-2 differs in one word\n\n"
    (kb (String.length csv1));
  Printf.printf "%-30s %-16s %-16s\n" "System" "load 1 (+KB)" "load 2 (+KB)";
  (* ForkBase, dataset as relational table. *)
  let fb = FB.create (Mem_store.create ()) in
  let delta_after f =
    let before = Store.physical_bytes (FB.store fb) in
    f ();
    Store.physical_bytes (FB.store fb) - before
  in
  let d1 =
    delta_after (fun () -> ignore (ok_fb (FB.import_csv fb ~key:"dataset-1" csv1)))
  in
  let d2 =
    delta_after (fun () -> ignore (ok_fb (FB.import_csv fb ~key:"dataset-2" csv2)))
  in
  Printf.printf "%-30s %+13.2f   %+13.2f\n" "ForkBase (table value)" (kb d1) (kb d2);
  (* ForkBase, dataset as raw blob (content-defined chunking only). *)
  let fbb = FB.create (Mem_store.create ()) in
  let delta_after_b f =
    let before = Store.physical_bytes (FB.store fbb) in
    f ();
    Store.physical_bytes (FB.store fbb) - before
  in
  let b1 =
    delta_after_b (fun () ->
        ignore
          (ok_fb
             (FB.put fbb ~key:"dataset-1"
                (Value.blob_of_string (FB.store fbb) csv1))))
  in
  let b2 =
    delta_after_b (fun () ->
        ignore
          (ok_fb
             (FB.put fbb ~key:"dataset-2"
                (Value.blob_of_string (FB.store fbb) csv2))))
  in
  Printf.printf "%-30s %+13.2f   %+13.2f\n" "ForkBase (blob value)" (kb b1) (kb b2);
  (* Baselines load the same two snapshots. *)
  let rows1 = kv_of_rows (Csv.parse_exn csv1)
  and rows2 = kv_of_rows (Csv.parse_exn csv2) in
  List.iter
    (fun (b : Baseline.t) ->
      let before = b.storage_bytes () in
      ignore (b.commit rows1);
      let mid = b.storage_bytes () in
      ignore (b.commit rows2);
      let after = b.storage_bytes () in
      Printf.printf "%-30s %+13.2f   %+13.2f\n" b.name
        (kb (mid - before))
        (kb (after - mid)))
    [ Fb_baselines.Gitfile_store.create ();
      Fb_baselines.Fixed_chunk_store.create ();
      Fb_baselines.Delta_store.create ();
      Fb_baselines.Snapshot_store.create () ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: fast differential query.                                   *)
(* ------------------------------------------------------------------ *)

let run_fig5 () =
  header
    "FIG. 5 (demo III-B): differential query between branches\n\
     POS-Tree diff prunes equal sub-trees: O(D log N) vs element-wise O(N)";
  Printf.printf "%-10s %-8s %-14s %-16s %-10s %s\n" "N" "D" "pos-tree ms"
    "elementwise ms" "speedup" "chunks read";
  List.iter
    (fun n ->
      List.iter
        (fun d ->
          if d <= n then begin
            let store = Mem_store.create () in
            let bindings =
              List.init n (fun i -> (Printf.sprintf "key-%08d" i, "value"))
            in
            let t1 = Pmap.of_bindings store bindings in
            let rng = Prng.create (Int64.of_int (n + d)) in
            let t2 =
              Pmap.update t1
                (List.init d (fun _ ->
                     Pmap.Put
                       (Pmap.binding
                          (Printf.sprintf "key-%08d" (Prng.next_int rng n))
                          "changed")))
            in
            let gets0 = (Store.stats store).Store.gets in
            let changes, pos_ms = time_ms (fun () -> Pmap.diff t1 t2) in
            let gets = (Store.stats store).Store.gets - gets0 in
            (* Element-wise baseline: compare both full materializations. *)
            let _, naive_ms =
              time_ms (fun () ->
                  let b1 = Pmap.bindings t1 and b2 = Pmap.bindings t2 in
                  let rec walk a b acc =
                    match a, b with
                    | [], [] -> acc
                    | (k, v) :: ra, (k', v') :: rb when k = k' ->
                      walk ra rb (if v = v' then acc else acc + 1)
                    | (k, _) :: ra, ((k', _) :: _ as b) when k < k' ->
                      walk ra b (acc + 1)
                    | a, _ :: rb -> walk a rb (acc + 1)
                    | a, [] -> acc + List.length a
                  in
                  ignore (walk b1 b2 0))
            in
            Printf.printf "%-10d %-8d %-14.3f %-16.2f %6.0fx    %d\n" n
              (List.length changes) pos_ms naive_ms (naive_ms /. pos_ms) gets
          end)
        [ 1; 10; 100; 1000 ])
    [ 10_000; 100_000 ];
  (* A rendered sample in the spirit of the UI screenshot. *)
  Printf.printf "\nsample rendered differential query (master vs VendorX):\n";
  let fb = FB.create (Mem_store.create ()) in
  ignore
    (ok_fb
       (FB.import_csv fb ~key:"Dataset-1"
          "id,vendor,qty\n1,acme,10\n2,generic,20\n3,acme,30\n"));
  ignore (ok_fb (FB.fork fb ~key:"Dataset-1" ~new_branch:"VendorX"));
  ignore
    (ok_fb
       (FB.import_csv fb ~key:"Dataset-1" ~branch:"VendorX"
          "id,vendor,qty\n1,acme,10\n2,vendorx,20\n3,acme,35\n4,vendorx,5\n"));
  let d = ok_fb (FB.diff fb ~key:"Dataset-1" ~branch1:"master" ~branch2:"VendorX") in
  Printf.printf "summary: %s\n%s" (Fb_core.Diffview.summary d)
    (Format.asprintf "%a" Fb_core.Diffview.render d)

(* ------------------------------------------------------------------ *)
(* Fig. 6: versioning, validation, tamper evidence.                   *)
(* ------------------------------------------------------------------ *)

let run_fig6 () =
  header
    "FIG. 6 (demo III-C): version stamps (RFC 4648 Base32 of Merkle root)\n\
     and validation against a malicious storage provider";
  let store, handle = Mem_store.create_with_handle () in
  let fb = FB.create store in
  (* A chain of Puts, as in the screenshot's version list. *)
  let csv = Csvgen.generate { Csvgen.rows = 500; string_columns = 2; int_columns = 1; seed = 9L } in
  let rec commit_chain i last =
    if i > 5 then last
    else begin
      let doc = if i = 1 then csv else Edits.change_one_word ~seed:(Int64.of_int i) csv in
      let uid = ok_fb (FB.import_csv fb ~key:"dataset" ~message:(Printf.sprintf "Put #%d" i) doc) in
      Printf.printf "  version %d: %s\n" i (FB.version_string uid);
      commit_chain (i + 1) (Some uid)
    end
  in
  let tip = Option.get (commit_chain 1 None) in
  (* Validation latency as a function of value size. *)
  Printf.printf "\nverification latency (recompute Merkle root on the spot):\n";
  Printf.printf "%-14s %-10s %-12s %s\n" "value size" "chunks" "verify ms"
    "versions walked";
  List.iter
    (fun target ->
      let store2 = Mem_store.create () in
      let fb2 = FB.create store2 in
      let doc = Csvgen.generate_of_size ~target_bytes:target () in
      let uid = ok_fb (FB.import_csv fb2 ~key:"d" doc) in
      let report, ms =
        time_ms (fun () -> ok_fb (FB.verify fb2 uid))
      in
      Printf.printf "%10.0f KB %-10d %-12.2f %d\n" (kb target)
        report.Fb_repr.Verify.value_chunks ms
        report.Fb_repr.Verify.versions_checked)
    [ 10_000; 100_000; 1_000_000 ];
  (* Malicious storage: random bit flips must always be detected. *)
  let reachable =
    Fb_chunk.Gc.reachable store ~children:Fb_repr.Dag.fnode_children
      ~roots:[ tip ]
  in
  let chunks = Array.of_list (Hash.Set.elements reachable) in
  let rng = Prng.create 4242L in
  let trials = 100 in
  let detected = ref 0 in
  for _ = 1 to trials do
    let victim = chunks.(Prng.next_int rng (Array.length chunks)) in
    let original = ref "" in
    ignore
      (Mem_store.tamper handle victim ~f:(fun s ->
           original := s;
           let b = Bytes.of_string s in
           let i = Prng.next_int rng (Bytes.length b) in
           Bytes.set b i
             (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.next_int rng 8)));
           Bytes.to_string b));
    (match FB.verify ~check_history_values:true fb tip with
     | Error _ -> incr detected
     | Ok _ -> ());
    (* Restore for the next trial. *)
    ignore (Mem_store.tamper handle victim ~f:(fun _ -> !original))
  done;
  Printf.printf
    "\nmalicious-storage simulation: %d/%d random single-bit flips detected \
     (paper: tamper-proof in spite of the storage infrastructure)\n"
    !detected trials

(* ------------------------------------------------------------------ *)
(* SIRI: structural invariance / page sharing (paper II-A, Def. 1).   *)
(* ------------------------------------------------------------------ *)

let run_siri () =
  header
    "SIRI properties (paper II-A): page sharing between logically equal\n\
     index instances -- POS-Tree vs an ordinary B+-tree with hashed pages";
  let n = 20_000 in
  let entries = List.init n (fun i -> (Printf.sprintf "key-%07d" i, "v")) in
  let shuffled =
    let rng = Prng.create 123L in
    let arr = Array.of_list entries in
    for i = Array.length arr - 1 downto 1 do
      let j = Prng.next_int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list arr
  in
  (* POS-Tree: bulk-sorted vs shuffled incremental. *)
  let store = Mem_store.create () in
  let t1 = Pmap.of_bindings store entries in
  let t2 =
    List.fold_left (fun t (k, v) -> Pmap.put t k v) (Pmap.empty store) shuffled
  in
  let pages t =
    List.fold_left (fun s h -> Hash.Set.add h s) Hash.Set.empty (Pmap.node_hashes t)
  in
  let p1 = pages t1 and p2 = pages t2 in
  let shared = Hash.Set.cardinal (Hash.Set.inter p1 p2) in
  Printf.printf "%-34s pages=%-6d shared=%-6d (%.1f%%)\n"
    "POS-Tree sorted vs shuffled" (Hash.Set.cardinal p1) shared
    (100.0 *. float_of_int shared /. float_of_int (Hash.Set.cardinal p1));
  (* B+-tree strawman. *)
  let b1 = Fb_baselines.Btree_baseline.of_bindings entries in
  let b2 = Fb_baselines.Btree_baseline.of_bindings shuffled in
  let s1 = Fb_baselines.Btree_baseline.page_hashes b1 in
  let s2 = Fb_baselines.Btree_baseline.page_hashes b2 in
  let bshared = Hash.Set.cardinal (Hash.Set.inter s1 s2) in
  Printf.printf "%-34s pages=%-6d shared=%-6d (%.1f%%)\n"
    "B+-tree sorted vs shuffled" (Hash.Set.cardinal s1) bshared
    (100.0 *. float_of_int bshared /. float_of_int (Hash.Set.cardinal s1));
  (* Property 3: page reuse across cardinalities (prefix instances). *)
  Printf.printf "\nProperty 3 (universal reuse): pages of an instance reused by \
                 a superset instance\n";
  Printf.printf "%-12s %-12s %-16s %s\n" "small N" "large N" "small pages"
    "reused by large";
  List.iter
    (fun small_n ->
      let store = Mem_store.create () in
      let small =
        Pmap.of_bindings store (List.filteri (fun i _ -> i < small_n) entries)
      in
      let large = Pmap.of_bindings store entries in
      let sp = pages small and lp = pages large in
      let reused = Hash.Set.cardinal (Hash.Set.inter sp lp) in
      Printf.printf "%-12d %-12d %-16d %d (%.1f%%)\n" small_n n
        (Hash.Set.cardinal sp) reused
        (100.0 *. float_of_int reused /. float_of_int (Hash.Set.cardinal sp)))
    [ 1_000; 5_000; 10_000 ]

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice sweeps called out in DESIGN.md.           *)
(* ------------------------------------------------------------------ *)

(* Content-defined chunking of raw bytes at a given pattern width [q];
   returns the chunk list (the parametrized core of Pblob). *)
let chunk_bytes ~q s =
  let params = { Fb_hash.Rolling.window = 48; q } in
  let max_bytes = 16 * (1 lsl q) in
  let rolling = Fb_hash.Rolling.create params in
  let chunks = ref [] in
  let start = ref 0 in
  let cut stop =
    if stop > !start then chunks := String.sub s !start (stop - !start) :: !chunks;
    start := stop;
    Fb_hash.Rolling.reset rolling
  in
  String.iteri
    (fun i c ->
      let hit = Fb_hash.Rolling.feed rolling c in
      if hit || i + 1 - !start >= max_bytes then cut (i + 1))
    s;
  cut (String.length s);
  List.rev !chunks

let run_ablation () =
  header
    "ABLATION 1: pattern width q (expected chunk size 2^q) vs dedup delta\n\
     the Fig. 4 experiment re-run across chunk sizes: smaller chunks track\n\
     edits more tightly but cost more metadata (hashes, index entries)";
  let csv1 = Csvgen.generate_of_size ~target_bytes:338_540 () in
  let csv2 = Edits.change_one_word csv1 in
  Printf.printf "%-6s %-14s %-10s %-18s %-16s\n" "q" "mean chunk B"
    "chunks" "2nd copy delta KB" "hash overhead KB";
  List.iter
    (fun q ->
      let c1 = chunk_bytes ~q csv1 in
      let c2 = chunk_bytes ~q csv2 in
      let set1 =
        List.fold_left
          (fun s c -> Hash.Set.add (Hash.of_string c) s)
          Hash.Set.empty c1
      in
      let delta =
        List.fold_left
          (fun acc c ->
            if Hash.Set.mem (Hash.of_string c) set1 then acc
            else acc + String.length c)
          0 c2
      in
      let mean =
        float_of_int (String.length csv1) /. float_of_int (List.length c1)
      in
      (* 32-byte identity per chunk is the fixed price of addressing. *)
      let overhead = 32 * (List.length c1 + List.length c2) in
      Printf.printf "%-6d %-14.0f %-10d %-18.2f %-16.2f\n" q mean
        (List.length c1) (kb delta) (kb overhead))
    [ 8; 9; 10; 11; 12; 13; 14 ];
  header
    "ABLATION 2: update batch size — cluster-local rebuild cost\n\
     batched point edits against a 100k-entry POS-Tree map";
  let n = 100_000 in
  let store = Mem_store.create () in
  let tree =
    Pmap.of_bindings store
      (List.init n (fun i -> (Printf.sprintf "key-%08d" i, "value")))
  in
  Printf.printf "%-10s %-12s %-14s %-14s\n" "batch" "ms/batch" "us/edit"
    "fresh chunks";
  List.iter
    (fun k ->
      let rng = Prng.create (Int64.of_int (31 * k)) in
      let edits =
        List.init k (fun _ ->
            Pmap.Put
              (Pmap.binding (Printf.sprintf "key-%08d" (Prng.next_int rng n))
                 "edited"))
      in
      let before = (Store.stats store).Store.physical_chunks in
      let _, ms = time_ms (fun () -> ignore (Pmap.update tree edits)) in
      let fresh = (Store.stats store).Store.physical_chunks - before in
      Printf.printf "%-10d %-12.2f %-14.1f %-14d\n" k ms
        (1000.0 *. ms /. float_of_int k)
        fresh)
    [ 1; 10; 100; 1000; 10_000 ];
  header
    "ABLATION 3: skewed-update throughput (Zipf 0.99 over 100k keys)";
  let rng = Prng.create 2024L in
  let zipf = Fb_workload.Zipf.create rng ~n in
  let updates = 2_000 in
  let t = ref tree in
  let (), put_ms =
    time_ms (fun () ->
        for _ = 1 to updates do
          let key = Printf.sprintf "key-%08d" (Fb_workload.Zipf.next zipf) in
          t := Pmap.put !t key "hot"
        done)
  in
  let reads = 20_000 in
  let (), get_ms =
    time_ms (fun () ->
        for _ = 1 to reads do
          ignore
            (Pmap.find !t
               (Printf.sprintf "key-%08d" (Fb_workload.Zipf.next zipf)))
        done)
  in
  Printf.printf
    "point puts: %.0f ops/s (each creating a tamper-evident version's worth \
     of chunks)\nlookups:    %.0f ops/s\n"
    (1000.0 *. float_of_int updates /. put_ms)
    (1000.0 *. float_of_int reads /. get_ms);
  header
    "ABLATION 4: secondary index vs table scan (equality lookups on a\n\
     non-key column; index maintained incrementally from table diffs)";
  let rows = 100_000 in
  let store4 = Mem_store.create () in
  let schema =
    Fb_types.Schema.v_exn
      [ { Fb_types.Schema.name = "id"; ty = Fb_types.Schema.T_int };
        { Fb_types.Schema.name = "city"; ty = Fb_types.Schema.T_string };
        { Fb_types.Schema.name = "qty"; ty = Fb_types.Schema.T_int } ]
  in
  let mk_row i =
    [ Fb_types.Primitive.Int (Int64.of_int i);
      Fb_types.Primitive.String (Printf.sprintf "city%03d" (i mod 500));
      Fb_types.Primitive.Int (Int64.of_int (i mod 97)) ]
  in
  let table =
    match
      Table.insert_many (Table.create store4 schema) (List.init rows mk_row)
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let idx, build_ms =
    time_ms (fun () ->
        match Fb_types.Table_index.build table ~column:"city" with
        | Ok idx -> idx
        | Error e -> failwith e)
  in
  let target = Fb_types.Primitive.String "city123" in
  let via_index, idx_ms =
    time_ms (fun () -> Fb_types.Table_index.lookup idx table target)
  in
  let via_scan, scan_ms =
    time_ms (fun () ->
        Table.select table (fun row ->
            Fb_types.Primitive.equal (List.nth row 1) target))
  in
  assert (List.length via_index = List.length via_scan);
  Printf.printf
    "%d rows, 500 distinct cities; index build %.0f ms\n\
     equality lookup (%d matches): index %.3f ms vs scan %.1f ms (%.0fx)\n"
    rows build_ms (List.length via_index) idx_ms scan_ms (scan_ms /. idx_ms);
  let table2 =
    match Table.insert table (mk_row 42) with
    | Ok t -> t
    | Error e -> failwith e
  in
  let _, maint_ms =
    time_ms (fun () ->
        match Table.diff table table2 with
        | Ok changes ->
          ignore (Fb_types.Table_index.apply_changes idx table2 changes)
        | Error e -> failwith e)
  in
  Printf.printf
    "incremental index maintenance after one row upsert: %.2f ms\n" maint_ms

(* ------------------------------------------------------------------ *)
(* Storage-tier ablation: wrapper costs and benefits.                 *)
(* ------------------------------------------------------------------ *)

let run_storage () =
  header
    "STORAGE TIER: durable backend, LRU cache, verified reads, pack files\n\
     (100k-entry map; 2000 random lookups per configuration)";
  let bindings =
    List.init 100_000 (fun i -> (Printf.sprintf "key-%08d" i, "value-payload"))
  in
  let rng = Prng.create 31337L in
  let lookups = 2_000 in
  let bench_tree ?(extra = "") name t =
    let h = Obs.histogram ("bench.storage." ^ name) in
    Obs.reset_histogram h;
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to lookups do
            let key = Printf.sprintf "key-%08d" (Prng.next_int rng 100_000) in
            Obs.time h (fun () -> ignore (Pmap.find t key))
          done)
    in
    Printf.printf "%-34s %8.2f us/lookup  p50 %6.2f  p99 %6.2f%s\n" name
      (1000.0 *. ms /. float_of_int lookups)
      (1e6 *. Obs.quantile h 0.5)
      (1e6 *. Obs.quantile h 0.99)
      extra
  in
  let bench_lookups name store = bench_tree name (Pmap.of_bindings store bindings) in
  bench_lookups "mem" (Mem_store.create ());
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "fb_bench_store" in
  ignore (Sys.command ("rm -rf " ^ Filename.quote tmp));
  let file_store = Fb_chunk.File_store.create ~root:tmp () in
  bench_lookups "file (directory backend)" file_store;
  let cached, cstats = Fb_chunk.Cache_store.wrap ~capacity:4096 file_store in
  bench_lookups "file + lru(4096)" cached;
  Printf.printf "  cache: %d hits, %d misses, %d evictions (hit ratio %.1f%%)\n"
    cstats.Fb_chunk.Cache_store.hits cstats.Fb_chunk.Cache_store.misses
    cstats.Fb_chunk.Cache_store.evictions
    (100.0 *. Fb_chunk.Cache_store.hit_ratio cstats);
  let verified, _ = Fb_chunk.Verified_store.wrap (Mem_store.create ()) in
  bench_lookups "mem + verify-on-read (paranoid)" verified;
  (* Pack: freeze the file store and read through the archive. *)
  let pack_path = tmp ^ ".pack" in
  (match Fb_chunk.Pack.pack_store file_store ~path:pack_path with
   | Ok n ->
     let pack = Result.get_ok (Fb_chunk.Pack.open_file ~path:pack_path) in
     let overlay =
       Fb_chunk.Pack.with_overlay ~packs:[ pack ] (Mem_store.create ())
     in
     (* Reuse the frozen chunks: the tree handle re-attaches by root. *)
     let t = Pmap.of_bindings (Mem_store.create ()) bindings in
     let t = Pmap.of_root overlay (Pmap.root t) in
     bench_tree "pack archive + overlay"
       ~extra:(Printf.sprintf "  (%d chunks in one file)" n)
       t
   | Error e -> Printf.printf "pack failed: %s\n" e);
  ignore (Sys.command ("rm -rf " ^ Filename.quote tmp));
  (try Sys.remove pack_path with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Resilience: clean-path cost of the self-healing read stack.        *)
(* ------------------------------------------------------------------ *)

let run_resilience () =
  header
    "RESILIENCE: clean-path overhead of retries + verified reads\n\
     (100k-entry map; 2000 random lookups per configuration; no faults \
     injected)";
  let bindings =
    List.init 100_000 (fun i -> (Printf.sprintf "key-%08d" i, "value-payload"))
  in
  let lookups = 2_000 in
  let bench name store =
    let t = Pmap.of_bindings store bindings in
    let h = Obs.histogram ("bench.resilience." ^ name) in
    Obs.reset_histogram h;
    let sweep ~record rng =
      for _ = 1 to lookups do
        let key = Printf.sprintf "key-%08d" (Prng.next_int rng 100_000) in
        if record then Obs.time h (fun () -> ignore (Pmap.find t key))
        else ignore (Pmap.find t key)
      done
    in
    (* Steady state on a working set: an untimed pass over the same key
       sequence first, so one-time costs (first-read verification) are
       paid before the clock starts — all configurations warm alike. *)
    sweep ~record:false (Prng.create 424242L);
    let (), ms = time_ms (fun () -> sweep ~record:true (Prng.create 424242L)) in
    let us = 1000.0 *. ms /. float_of_int lookups in
    Printf.printf "%-42s %8.2f us/lookup  p50 %6.2f  p99 %6.2f\n" name us
      (1e6 *. Obs.quantile h 0.5)
      (1e6 *. Obs.quantile h 0.99);
    us
  in
  let bare = bench "mem (baseline)" (Mem_store.create ()) in
  let paranoid, _ = Fb_chunk.Verified_store.wrap (Mem_store.create ()) in
  let p = bench "mem + verified every read (paranoid)" paranoid in
  (* The deployable stack: first-read verification below (media-fault
     threat model — a healthy chunk is immutable), retry + replica
     fallback above ([~verify_reads:false]: the inner wrapper hashes). *)
  let inner, _ = Fb_chunk.Verified_store.wrap ~once:true (Mem_store.create ()) in
  let stack, _ =
    Fb_chunk.Resilient_store.wrap ~replica:(Mem_store.create ())
      ~verify_reads:false inner
  in
  let r = bench "mem + verified-once + resilient" stack in
  let pct x = 100.0 *. (x -. bare) /. bare in
  Printf.printf
    "\nclean-path overhead vs bare: paranoid %+.1f%%; verified-once + \
     resilient %+.1f%% (target < 15%%)\n"
    (pct p) (pct r)

(* ------------------------------------------------------------------ *)
(* Sharded: ForkBase on the in-process sharded/replicated store (the  *)
(* simulated distributed deployment; DESIGN.md substitutions).  The   *)
(* real multi-node deployment is the `cluster` experiment below.      *)
(* ------------------------------------------------------------------ *)

let run_sharded () =
  header
    "SHARDED: ForkBase over an in-process sharded, replicated chunk store\n\
     (5 members, replication factor 2, consistent-hash placement)";
  let members =
    List.init 5 (fun i -> (Printf.sprintf "node%d" i, Mem_store.create ()))
  in
  let cluster = Fb_chunk.Sharded_store.create ~replicas:2 ~members () in
  let store = Fb_chunk.Sharded_store.store cluster in
  let fb = FB.create store in
  let csv = Csvgen.generate_of_size ~target_bytes:500_000 () in
  let _, load_ms =
    time_ms (fun () -> ignore (ok_fb (FB.import_csv fb ~key:"ds" csv)))
  in
  let tip = ok_fb (FB.head fb ~key:"ds") in
  Printf.printf "loaded %.0f KB in %.0f ms; placement:\n"
    (kb (String.length csv)) load_ms;
  let healths = Fb_chunk.Sharded_store.health cluster in
  let total_chunks = List.fold_left (fun a h -> a + h.Fb_chunk.Sharded_store.chunks) 0 healths in
  List.iter
    (fun h ->
      Printf.printf "  %-7s %5d chunks (%4.1f%%)  %7.1f KB\n"
        h.Fb_chunk.Sharded_store.member h.Fb_chunk.Sharded_store.chunks
        (100.0 *. float_of_int h.Fb_chunk.Sharded_store.chunks
         /. float_of_int total_chunks)
        (kb h.Fb_chunk.Sharded_store.bytes))
    healths;
  let agg = Store.stats store in
  Printf.printf
    "logical (distinct chunks): %.1f KB; stored with 2x replication: %.1f \
     KB\n"
    (kb agg.Store.physical_bytes)
    (kb (List.fold_left (fun a h -> a + h.Fb_chunk.Sharded_store.bytes) 0 healths));
  (* Failure: lose a member mid-flight; reads fail over transparently. *)
  Fb_chunk.Sharded_store.set_down cluster "node2" true;
  let report, verify_ms =
    time_ms (fun () -> ok_fb (FB.verify ~check_history_values:true fb tip))
  in
  let rs = Fb_chunk.Sharded_store.repair_stats cluster in
  Printf.printf
    "\nnode2 down: full verification still passes (%d chunks, %.0f ms), %d \
     reads served by fallback replicas\n"
    report.Fb_repr.Verify.value_chunks verify_ms
    rs.Fb_chunk.Sharded_store.fallback_reads;
  (* Writes continue during the outage; rebalance heals afterwards. *)
  ignore (ok_fb (FB.import_csv fb ~key:"ds" (Edits.change_one_word csv)));
  Fb_chunk.Sharded_store.set_down cluster "node2" false;
  let copies, heal_ms =
    time_ms (fun () -> Fb_chunk.Sharded_store.rebalance cluster)
  in
  Printf.printf
    "outage writes accepted; rebalance restored %d replica copies in %.0f \
     ms\n"
    copies heal_ms

(* ------------------------------------------------------------------ *)
(* Cluster: the real multi-node deployment — chunks routed over TCP   *)
(* to live server nodes through the cluster store, with a node kill,  *)
(* failover latency, read repair after restart, and the rebalance     *)
(* delta vs the ideal ring delta.                                     *)
(* ------------------------------------------------------------------ *)

let run_cluster_net ?(quick = false) () =
  header
    (if quick then
       "cluster-quick: 3 live nodes, W=2 — availability under a node kill"
     else
       "CLUSTER: 3 live forkbase nodes over TCP, W=2 replication\n\
        (node kill -> failover reads; restart -> read repair; ring growth \
        -> rebalance delta)");
  let module Server = Fb_net.Server in
  let module Net_cluster = Fb_net.Cluster in
  let module Cluster = Fb_chunk.Cluster_store in
  let module Chunk = Fb_chunk.Chunk in
  let ok_net = function Ok v -> v | Error e -> failwith e in
  let config = { Server.default_config with port = 0; save_every_s = 0.0 } in
  let start_node () =
    ok_net (Server.start ~config (FB.create (Mem_store.create ())))
  in
  let servers = Array.init 3 (fun _ -> start_node ()) in
  let ports = Array.map Server.port servers in
  let nodes =
    Array.to_list
      (Array.map (fun port -> { Net_cluster.host = "127.0.0.1"; port }) ports)
  in
  let t = ok_fb (Net_cluster.connect ~replicas:2 ~nodes ()) in
  let store = Net_cluster.store t in
  let n_chunks = if quick then 150 else 1_500 in
  let payload i =
    let prng = Prng.create (Int64.of_int (7_000 + i)) in
    String.init 512 (fun _ -> Char.chr (32 + (Prng.next_int prng 95)))
  in
  let ids = Array.init n_chunks (fun i ->
      Store.put store (Chunk.v Chunk.Leaf_blob (payload i)))
  in
  let fpercentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))
  in
  let read_sweep () =
    let lat = Array.make n_chunks 0.0 in
    let served = ref 0 in
    Array.iteri
      (fun i id ->
        let got, ms = time_ms (fun () -> Store.get store id) in
        lat.(i) <- ms;
        if got <> None then incr served)
      ids;
    Array.sort compare lat;
    (!served, fpercentile lat 0.5, fpercentile lat 0.99)
  in
  let _, healthy_ms = time_ms (fun () -> ignore (read_sweep ())) in
  let healthy_served, healthy_p50, healthy_p99 = read_sweep () in
  Printf.printf
    "healthy: %d/%d reads in %.0f ms  p50 %.2f ms  p99 %.2f ms\n"
    healthy_served n_chunks healthy_ms healthy_p50 healthy_p99;
  (* Kill one node outright: W=2 placement must keep everything
     readable, served by the surviving replica. *)
  Server.stop servers.(1);
  let killed_served, kill_p50, kill_p99 = read_sweep () in
  let availability = float_of_int killed_served /. float_of_int n_chunks in
  let cs = Cluster.cluster_stats (Net_cluster.cluster t) in
  Printf.printf
    "node 1 killed: %d/%d reads served (%.2f%% availability), %d failover \
     reads\n  p50 %.2f ms  p99 %.2f ms (healthy p99 %.2f ms)\n"
    killed_served n_chunks (100.0 *. availability)
    cs.Cluster.failover_reads kill_p50 kill_p99 healthy_p99;
  if availability < 0.99 then
    failwith
      (Printf.sprintf "cluster: availability %.2f%% under a node kill, \
                       below the 99%% bar" (100.0 *. availability));
  (* Restart the node empty on the same port: reads that prefer it now
     miss, fail over, and repair the copy back — replica counts converge
     under the workload alone. *)
  servers.(1) <-
    ok_net
      (Server.start
         ~config:{ config with Server.port = ports.(1) }
         (FB.create (Mem_store.create ())));
  ignore (Net_cluster.probe t);
  let repaired_before = (Cluster.cluster_stats (Net_cluster.cluster t)).Cluster.repaired in
  let (_, _, _), repair_ms = time_ms read_sweep in
  let repaired =
    (Cluster.cluster_stats (Net_cluster.cluster t)).Cluster.repaired
    - repaired_before
  in
  Printf.printf
    "node 1 restarted empty: one read pass repaired %d copies back onto it \
     (%.0f ms)\n"
    repaired repair_ms;
  Net_cluster.close t;
  Array.iter Server.stop servers;
  (* Rebalance delta vs the ideal ring delta, on the routing engine
     alone (mem members — no wire noise): growing 3 -> 4 members must
     move exactly the chunks whose owner set changed, nothing else. *)
  let members =
    List.init 3 (fun i -> (Printf.sprintf "m%d" i, Mem_store.create ()))
  in
  let c = Cluster.create ~replicas:2 ~members () in
  let cstore = Cluster.store c in
  let sizes =
    Array.init n_chunks (fun i ->
        let ch = Chunk.v Chunk.Leaf_blob (payload i) in
        ignore (Store.put cstore ch);
        (Chunk.hash ch, Chunk.encoded_size ch))
  in
  let owners_before =
    Array.map (fun (id, _) -> Cluster.owners c id) sizes
  in
  Cluster.add_member c ("m3", Mem_store.create ());
  let ideal_bytes = ref 0 in
  Array.iteri
    (fun i (id, size) ->
      let now = Cluster.owners c id in
      List.iter
        (fun o -> if not (List.mem o owners_before.(i)) then
            ideal_bytes := !ideal_bytes + size)
        now)
    sizes;
  let report, rebalance_ms = time_ms (fun () -> Cluster.rebalance c) in
  let ratio =
    float_of_int report.Cluster.moved_bytes
    /. float_of_int (max 1 !ideal_bytes)
  in
  Printf.printf
    "ring growth 3->4: rebalance moved %d chunks / %.1f KB in %.0f ms; \
     ideal ring delta %.1f KB (ratio %.2f)\n"
    report.Cluster.moved_chunks
    (kb report.Cluster.moved_bytes)
    rebalance_ms (kb !ideal_bytes) ratio;
  Cluster.close c;
  if report.Cluster.moved_bytes <> !ideal_bytes then
    failwith
      (Printf.sprintf
         "cluster: rebalance moved %d bytes, ring delta is %d — movement \
          must equal the delta exactly"
         report.Cluster.moved_bytes !ideal_bytes);
  if not quick then begin
    let oc = open_out "BENCH_cluster.json" in
    Printf.fprintf oc
      "{\"nodes\":3,\"replicas\":2,\"chunks\":%d,\
       \"healthy\":{\"served\":%d,\"p50_ms\":%.3f,\"p99_ms\":%.3f},\
       \"node_killed\":{\"served\":%d,\"availability\":%.4f,\
       \"failover_reads\":%d,\"p50_ms\":%.3f,\"p99_ms\":%.3f},\
       \"read_repair\":{\"repaired\":%d,\"pass_ms\":%.0f},\
       \"rebalance\":{\"moved_chunks\":%d,\"moved_bytes\":%d,\
       \"ideal_bytes\":%d,\"ratio\":%.4f,\"ms\":%.0f}}\n"
      n_chunks healthy_served healthy_p50 healthy_p99 killed_served
      availability cs.Cluster.failover_reads kill_p50 kill_p99 repaired
      repair_ms report.Cluster.moved_chunks report.Cluster.moved_bytes
      !ideal_bytes ratio rebalance_ms;
    close_out oc;
    Printf.printf "machine-readable results written to BENCH_cluster.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment.           *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  header
    "Bechamel micro-benchmarks (ns/op, OLS estimate over monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* Shared prebuilt state. *)
  let store = Mem_store.create () in
  let n = 50_000 in
  let bindings =
    List.init n (fun i -> (Printf.sprintf "key-%08d" i, "value-payload"))
  in
  let tree = Pmap.of_bindings store bindings in
  let tree2 = Pmap.put tree "key-00025000" "changed" in
  let ours = Pmap.put tree "key-00010000" "ours" in
  let theirs = Pmap.put tree "key-00040000" "theirs" in
  let csv = Csvgen.generate_of_size ~target_bytes:100_000 () in
  let counter = ref 0 in
  let tests =
    [ (* Table I / Fig. 4: the cost of committing a one-word-changed
         version (dominant op of the dedup experiments). *)
      Test.make ~name:"put_point_edit_50k"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Pmap.put tree
                  (Printf.sprintf "key-%08d" (!counter mod n))
                  "poked")));
      (* Fig. 5: differential query. *)
      Test.make ~name:"diff_1_of_50k"
        (Staged.stage (fun () -> ignore (Pmap.diff tree tree2)));
      (* Fig. 3: three-way merge with disjoint edits. *)
      Test.make ~name:"merge_disjoint_50k"
        (Staged.stage (fun () ->
             match Pmap.merge ~base:tree ~ours ~theirs () with
             | Ok _ -> ()
             | Error _ -> failwith "conflict"));
      (* Fig. 6: tamper-evident lookup path (get + root known). *)
      Test.make ~name:"find_50k"
        (Staged.stage (fun () -> ignore (Pmap.find tree "key-00031337")));
      (* Fig. 4 substrate: content-defined chunking throughput. *)
      Test.make ~name:"blob_chunking_100k"
        (Staged.stage (fun () ->
             ignore (Pblob.of_string (Mem_store.create ()) csv)));
      (* Fig. 6 substrate: SHA-256 throughput on a chunk-sized buffer. *)
      Test.make ~name:"sha256_4k"
        (Staged.stage
           (let buf = String.make 4096 'x' in
            fun () -> ignore (Fb_hash.Sha256.digest buf))) ]
  in
  let grouped = Test.make_grouped ~name:"forkbase" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  Printf.printf "%-40s %14s\n" "benchmark" "ns/op";
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %14.0f\n" name ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Observability: histogram readout, self-overhead, trace spans.      *)
(* ------------------------------------------------------------------ *)

let run_obs ?(quick = false) () =
  header
    "OBSERVABILITY: fb_obs latency histograms, self-overhead, trace spans";
  (* 1. Instrumentation overhead on the lookup hot path.  Three configs
     over the same 20k-entry tree: bare store, metered store with the
     registry enabled, metered store with the registry disabled.  The
     bare and enabled configs both pay the postree/forkbase span hooks,
     so their delta isolates Metered_store's per-op timing.

     Methodology matters here: a single timed sweep after a 2k-op warmup
     reported the enabled overhead anywhere from 3% to 12% run to run —
     the measurement was dominated by allocator/GC phase, not by the
     instrumentation (see DESIGN.md §7).  Each config now gets a full
     warmup sweep plus best-of-3 measured sweeps, interleaved round-robin
     so slow drift (GC heap growth) hits all three configs equally. *)
  let n = 20_000 in
  let lookups = if quick then 10_000 else 30_000 in
  let rounds = 3 in
  let small = List.init n (fun i -> (Printf.sprintf "key-%06d" i, "v")) in
  let make_bench store =
    let t = Pmap.of_bindings store small in
    let sweep count rng =
      for _ = 1 to count do
        ignore (Pmap.find t (Printf.sprintf "key-%06d" (Prng.next_int rng n)))
      done
    in
    sweep lookups (Prng.create 7L);
    fun () ->
      let (), ms = time_ms (fun () -> sweep lookups (Prng.create 7L)) in
      1000.0 *. ms /. float_of_int lookups
  in
  let bare_bench = make_bench (Mem_store.create ()) in
  let on_bench =
    make_bench (Fb_chunk.Metered_store.wrap ~prefix:"bench.ovh" (Mem_store.create ()))
  in
  let off_store =
    Fb_chunk.Metered_store.wrap ~prefix:"bench.ovh" (Mem_store.create ())
  in
  let off_bench = make_bench off_store in
  let bare = ref infinity and on_us = ref infinity and off_us = ref infinity in
  for _ = 1 to rounds do
    bare := Float.min !bare (bare_bench ());
    on_us := Float.min !on_us (on_bench ());
    Obs.set_enabled false;
    off_us := Float.min !off_us (off_bench ());
    Obs.set_enabled true
  done;
  let bare = !bare and on_us = !on_us and off_us = !off_us in
  let pct x = 100.0 *. (x -. bare) /. bare in
  Printf.printf
    "overhead on %d lookups, best of %d (us/op):\n\
    \  bare store          %8.3f  (tree hooks enabled, store untimed)\n\
    \  metered, enabled    %8.3f  (%+.1f%% = Metered_store's own cost)\n\
    \  metered, disabled   %8.3f  (%+.1f%% = FB_OBS=0 removes ALL hooks,\n\
    \                                incl. the tree hooks bare pays)\n"
    lookups rounds bare on_us (pct on_us) off_us (pct off_us);
  (* 2. Operation-level latency distributions through the public API:
     warmup, then N measured reps feeding the fb.* histograms. *)
  Obs.reset ();
  let store =
    Fb_chunk.Metered_store.wrap ~prefix:"bench.store" (Mem_store.create ())
  in
  let fb = FB.create store in
  let n_ops = if quick then 500 else 2_000 in
  let n_merges = if quick then 50 else 200 in
  let put i =
    ignore
      (ok_fb
         (FB.put fb ~key:(Printf.sprintf "k%d" (i mod 64))
            (Value.string (Printf.sprintf "value-%d" i))))
  in
  let get i =
    ignore (ok_fb (FB.get fb ~key:(Printf.sprintf "k%d" (i mod 64))))
  in
  (* Both sides diverge from the fork point with disjoint map edits, so
     every cycle is a genuine three-way merge, not a fast-forward. *)
  let merge_cycle i =
    let key = "merged" and b = Printf.sprintf "side%d" i in
    let base = [ ("base", "v"); (Printf.sprintf "m%d" i, "x") ] in
    let value kv = Value.map_of_bindings (FB.store fb) kv in
    ignore (ok_fb (FB.put fb ~key (value base)));
    ignore (ok_fb (FB.fork fb ~key ~new_branch:b));
    ignore
      (ok_fb
         (FB.put fb ~key (value ((Printf.sprintf "ours%d" i, "o") :: base))));
    ignore
      (ok_fb
         (FB.put fb ~branch:b ~key
            (value ((Printf.sprintf "theirs%d" i, "t") :: base))));
    ignore (ok_fb (FB.merge fb ~key ~into:"master" ~from_branch:b))
  in
  for i = 0 to 199 do put i done;
  for i = 0 to 199 do get i done;
  merge_cycle 100_000;
  Obs.reset ();
  for i = 0 to n_ops - 1 do put i done;
  for i = 0 to n_ops - 1 do get i done;
  for i = 0 to n_merges - 1 do merge_cycle i done;
  Printf.printf
    "\nlatency distributions (%d puts, %d gets, %d fork+merge cycles):\n"
    n_ops n_ops n_merges;
  let report name h =
    Printf.printf
      "%-26s n=%-6d p50 %8.2f  p90 %8.2f  p99 %8.2f  max %8.2f us\n" name
      (Obs.hist_count h)
      (1e6 *. Obs.quantile h 0.5)
      (1e6 *. Obs.quantile h 0.9)
      (1e6 *. Obs.quantile h 0.99)
      (1e6 *. Obs.hist_max h)
  in
  report "forkbase.put" (Obs.histogram "fb.put_seconds");
  report "forkbase.get" (Obs.histogram "fb.get_seconds");
  report "forkbase.merge" (Obs.histogram "fb.merge_seconds");
  report "store.put (chunk level)" (Obs.histogram "bench.store.put_seconds");
  report "store.get (chunk level)" (Obs.histogram "bench.store.get_seconds");
  (* 3. A sample trace: one put+get+merge cycle in an empty span ring
     shows how a request decomposes into tree and store work. *)
  Obs.set_span_capacity 64;
  merge_cycle 999_999;
  get 0;
  Printf.printf "\nsample trace (one fork+merge cycle, then one get):\n%s"
    (Format.asprintf "%a" Obs.pp_spans ());
  Obs.set_span_capacity 512;
  (* 4. Wire tracing overhead: the same single-client put/get loop
     against an in-process server with the registry (spans + trace
     headers + histograms) enabled vs disabled.  FB_OBS=0 must keep the
     served path within ~5% of its instrumented self — the trace header
     is only ever stamped when a client span exists, so disabling the
     registry removes it from the wire too. *)
  let net_reqs = if quick then 1_000 else 5_000 in
  let net_rps () =
    let fb = FB.create (Mem_store.create ()) in
    let config =
      { Fb_net.Server.default_config with port = 0; save_every_s = 0.0 }
    in
    match Fb_net.Server.start ~config fb with
    | Error e -> failwith ("obs net bench: " ^ e)
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Server.stop srv)
        (fun () ->
          match
            Fb_net.Client.connect ~port:(Fb_net.Server.port srv) ~user:"bench" ()
          with
          | Error e -> failwith (Fb_net.Client.error_to_string e)
          | Ok c ->
            Fun.protect
              ~finally:(fun () -> Fb_net.Client.close c)
              (fun () ->
                let req i =
                  let key = Printf.sprintf "k%d" (i mod 32) in
                  ignore (Fb_net.Client.request c [ "put"; key; "master"; "v" ]);
                  ignore (Fb_net.Client.request c [ "get"; key; "master" ])
                in
                for i = 0 to (net_reqs / 10) - 1 do req i done;
                let (), ms =
                  time_ms (fun () -> for i = 0 to net_reqs - 1 do req i done)
                in
                2.0 *. float_of_int net_reqs /. (ms /. 1000.0)))
  in
  let net_on = net_rps () in
  Obs.set_enabled false;
  let net_off = net_rps () in
  Obs.set_enabled true;
  let tracing_pct = 100.0 *. (net_off -. net_on) /. net_off in
  Printf.printf
    "\nwire path, 1 client, %d put+get pairs (req/s):\n\
    \  tracing enabled     %10.0f  (spans + trace headers + histograms)\n\
    \  FB_OBS=0            %10.0f  (tracing costs %.1f%% when on; the\n\
    \                                 FB_OBS=0 path must match the\n\
    \                                 untraced build within noise)\n"
    net_reqs net_on net_off tracing_pct;
  (* 5. Machine-readable artifact for tracking runs over time (skipped
     in quick mode: make-check smoke must not clobber the recorded
     numbers of a full run). *)
  if not quick then begin
    let json =
      Printf.sprintf
        "{\"overhead_us\":{\"bare\":%.4f,\"metered_enabled\":%.4f,\
         \"metered_disabled\":%.4f,\"enabled_pct\":%.2f,\"disabled_pct\":%.2f},\n\
         \"net\":{\"requests_per_s_enabled\":%.0f,\"requests_per_s_disabled\":%.0f,\
         \"tracing_pct\":%.2f},\n\
         \"registry\":%s}\n"
        bare on_us off_us (pct on_us) (pct off_us)
        net_on net_off tracing_pct
        (Obs.dump_json ())
    in
    let oc = open_out "BENCH_obs.json" in
    output_string oc json;
    close_out oc;
    Printf.printf "\nmachine-readable registry written to BENCH_obs.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Hot path: SHA-256 kernel, chunker scan, node-cache tree ops.       *)
(* ------------------------------------------------------------------ *)

let run_hotpath ?(quick = false) () =
  header
    (if quick then
       "HOT PATH (quick sanity): kernel equivalence + throughput smoke run"
     else
       "HOT PATH: unboxed SHA-256 kernel, fused chunker scan, decoded-node \
        cache\n\
        (throughputs single-threaded; tree ops on a mem store)");
  let module Sha256 = Fb_hash.Sha256 in
  let module Sha256_ref = Fb_hash.Sha256_ref in
  let module Rolling = Fb_hash.Rolling in
  let module Node_cache = Fb_postree.Node_cache in
  let mb = 1024.0 *. 1024.0 in
  (* Throughput of [f] over [reps] passes of [bytes] input bytes. *)
  let mb_s bytes reps f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (f ()) done;
    float_of_int (bytes * reps) /. (Unix.gettimeofday () -. t0) /. mb
  in
  let rand_string seed n =
    let rng = Prng.create seed in
    String.init n (fun _ -> Char.chr (Prng.next_int rng 256))
  in
  (* --- 1. SHA-256: optimized kernel vs Int32 reference oracle --- *)
  let sha_sizes = if quick then [ 65536 ] else [ 4096; 65536 ] in
  let sha_mib = if quick then 2 else 32 in
  Printf.printf "%-24s %12s %12s %9s\n" "sha256 (buffer size)" "ref MB/s"
    "new MB/s" "speedup";
  let sha_rows =
    List.map
      (fun size ->
        let buf = rand_string 0x5aL size in
        assert (String.equal (Sha256.digest buf) (Sha256_ref.digest buf));
        let reps = max 1 (sha_mib * 1024 * 1024 / size) in
        let new_mb = mb_s size reps (fun () -> Sha256.digest buf) in
        let ref_mb = mb_s size reps (fun () -> Sha256_ref.digest buf) in
        Printf.printf "%-24d %12.1f %12.1f %8.2fx\n" size ref_mb new_mb
          (new_mb /. ref_mb);
        (size, ref_mb, new_mb))
      sha_sizes
  in
  (* --- 2. chunker: fused feed_string vs per-char feed --- *)
  let scan_bytes = (if quick then 2 else 16) * 1024 * 1024 in
  let scan = rand_string 0xbeefL scan_bytes in
  let params = Rolling.default_blob_params in
  let fast_mb =
    mb_s scan_bytes 1 (fun () ->
        let t = Rolling.create params in
        Rolling.feed_string t scan)
  in
  let slow_mb =
    mb_s scan_bytes 1 (fun () ->
        let t = Rolling.create params in
        let hit = ref false in
        String.iter (fun c -> if Rolling.feed t c then hit := true) scan;
        !hit)
  in
  Printf.printf "\n%-24s %12.1f %12.1f %8.2fx\n" "chunker scan" slow_mb fast_mb
    (fast_mb /. slow_mb);
  let rstats = Rolling.stats () in
  Printf.printf
    "gamma tables: %d built, %d served from memo (%d MB scanned so far)\n"
    rstats.Rolling.gamma_builds rstats.Rolling.gamma_memo_hits
    (rstats.Rolling.bytes_scanned / (1024 * 1024));
  (* --- 3. tree ops with the decoded-node cache off/on --- *)
  let n = if quick then 10_000 else 50_000 in
  let lookups = if quick then 1_000 else 5_000 in
  let tree_reps = if quick then 1 else 5 in
  let store = Mem_store.create () in
  let bindings =
    List.init n (fun i -> (Printf.sprintf "key-%08d" i, "value-payload"))
  in
  let tree = Pmap.of_bindings store bindings in
  let tree2 = Pmap.put tree (Printf.sprintf "key-%08d" (n / 2)) "changed" in
  let ours = Pmap.put tree (Printf.sprintf "key-%08d" (n / 5)) "ours" in
  let theirs = Pmap.put tree (Printf.sprintf "key-%08d" (4 * n / 5)) "theirs" in
  let bench_tree label =
    let h = Obs.histogram ("bench.hotpath." ^ label) in
    Obs.reset_histogram h;
    let sweep ~record rng =
      for _ = 1 to lookups do
        let key = Printf.sprintf "key-%08d" (Prng.next_int rng n) in
        if record then Obs.time h (fun () -> ignore (Pmap.find tree key))
        else ignore (Pmap.find tree key)
      done
    in
    (* Same warm pass in both configurations so they start steady-state. *)
    sweep ~record:false (Prng.create 808L);
    sweep ~record:true (Prng.create 808L);
    let diff_res = ref [] in
    let _, diff_ms =
      time_ms (fun () ->
          for _ = 1 to tree_reps do diff_res := Pmap.diff tree tree2 done)
    in
    assert (List.length !diff_res = 1);
    let _, merge_ms =
      time_ms (fun () ->
          for _ = 1 to tree_reps do
            match Pmap.merge ~base:tree ~ours ~theirs () with
            | Ok _ -> ()
            | Error _ -> failwith "unexpected conflict"
          done)
    in
    let p50 = 1e6 *. Obs.quantile h 0.5
    and p99 = 1e6 *. Obs.quantile h 0.99 in
    let diff_ms = diff_ms /. float_of_int tree_reps
    and merge_ms = merge_ms /. float_of_int tree_reps in
    Printf.printf
      "%-26s lookup p50 %6.2f us  p99 %6.2f us  diff %6.2f ms  merge %6.2f \
       ms\n"
      label p50 p99 diff_ms merge_ms;
    (p50, p99, diff_ms, merge_ms)
  in
  Printf.printf "\ntree ops on %d entries (%d lookups):\n" n lookups;
  Node_cache.set_capacity_all 0;
  let off_p50, off_p99, off_diff, off_merge = bench_tree "node cache off" in
  Node_cache.set_capacity_all Node_cache.default_capacity;
  let on_p50, on_p99, on_diff, on_merge = bench_tree "node cache on" in
  Printf.printf "lookup p50 speedup with cache: %.2fx\n" (off_p50 /. on_p50);
  if not quick then begin
    let json =
      Printf.sprintf
        "{\"sha256\":[%s],\n\
         \"chunker\":{\"per_char_mb_s\":%.1f,\"fast_mb_s\":%.1f,\
         \"speedup\":%.2f},\n\
         \"tree\":{\"entries\":%d,\"lookups\":%d,\n\
        \  \"cache_off\":{\"lookup_p50_us\":%.2f,\"lookup_p99_us\":%.2f,\
         \"diff_ms\":%.3f,\"merge_ms\":%.3f},\n\
        \  \"cache_on\":{\"lookup_p50_us\":%.2f,\"lookup_p99_us\":%.2f,\
         \"diff_ms\":%.3f,\"merge_ms\":%.3f},\n\
        \  \"lookup_p50_speedup\":%.2f}}\n"
        (String.concat ","
           (List.map
              (fun (size, ref_mb, new_mb) ->
                Printf.sprintf
                  "{\"buffer\":%d,\"ref_mb_s\":%.1f,\"new_mb_s\":%.1f,\
                   \"speedup\":%.2f}"
                  size ref_mb new_mb (new_mb /. ref_mb))
              sha_rows))
        slow_mb fast_mb (fast_mb /. slow_mb) n lookups off_p50 off_p99
        off_diff off_merge on_p50 on_p99 on_diff on_merge (off_p50 /. on_p50)
    in
    let oc = open_out "BENCH_hotpath.json" in
    output_string oc json;
    close_out oc;
    Printf.printf "\nmachine-readable results written to BENCH_hotpath.json\n"
  end

(* ------------------------------------------------------------------ *)
(* net: N concurrent TCP clients against the framed service.          *)
(* ------------------------------------------------------------------ *)

let run_net ?(quick = false) () =
  header
    (if quick then "net-quick: framed TCP smoke (server + client round trip)"
     else "net: concurrent framed TCP service (mixed put/get/branch/merge)");
  let fb = FB.create (Fb_chunk.Metered_store.wrap (Mem_store.create ())) in
  let config =
    { Fb_net.Server.default_config with
      port = 0; save_every_s = 0.0; read_timeout_s = 30.0 }
  in
  let srv =
    match Fb_net.Server.start ~config fb with
    | Ok s -> s
    | Error e -> failwith ("net bench: " ^ e)
  in
  let port = Fb_net.Server.port srv in
  let clients = if quick then 2 else 8 in
  let per_client = if quick then 30 else 250 in
  let errors = Atomic.make 0 in
  let lat_lock = Mutex.create () in
  let latencies : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let record verb dt =
    Mutex.protect lat_lock (fun () ->
        match Hashtbl.find_opt latencies verb with
        | Some l -> l := dt :: !l
        | None -> Hashtbl.replace latencies verb (ref [ dt ]))
  in
  let ops_done = Atomic.make 0 in
  let worker cid =
    match Fb_net.Client.connect ~port ~user:(Printf.sprintf "bench%d" cid) ()
    with
    | Error e ->
      Atomic.incr errors;
      prerr_endline ("client connect failed: " ^ Fb_net.Client.error_to_string e)
    | Ok c ->
      let req verb tokens =
        let t0 = Unix.gettimeofday () in
        let r = Fb_net.Client.request c tokens in
        record verb (Unix.gettimeofday () -. t0);
        Atomic.incr ops_done;
        match r with
        | Ok payload -> payload
        | Error e ->
          Atomic.incr errors;
          "ERR " ^ Fb_net.Client.error_to_string e
      in
      let key = Printf.sprintf "k%d" cid in
      for i = 0 to per_client - 1 do
        let v = Printf.sprintf "value-%d-%d" cid i in
        ignore (req "put" [ "put"; key; "master"; v ]);
        let got = req "get" [ "get"; key; "master" ] in
        if got <> v then Atomic.incr errors;
        ignore (req "head" [ "head"; key; "master" ]);
        if i mod 10 = 0 then begin
          let b = Printf.sprintf "dev%d" i in
          ignore (req "branch" [ "branch"; key; "master"; b ]);
          ignore
            (req "put" [ "put"; key; b; Printf.sprintf "side-%d-%d" cid i ]);
          (* Master has not moved since the fork, so this merge is a
             clean fast-forward on every iteration. *)
          ignore (req "merge" [ "merge"; key; "master"; b ])
        end
      done;
      Fb_net.Client.close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun cid -> Thread.create worker cid) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let total = Atomic.get ops_done in
  let ops_per_s = float_of_int total /. wall in
  Printf.printf "%d clients x %d iterations: %d requests in %.2f s = %.0f ops/s\n"
    clients per_client total wall ops_per_s;
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let verb_rows =
    List.filter_map
      (fun verb ->
        match Hashtbl.find_opt latencies verb with
        | None -> None
        | Some l ->
          let a = Array.of_list !l in
          Array.sort compare a;
          Some (verb, Array.length a, percentile a 0.5, percentile a 0.99))
      [ "put"; "get"; "head"; "branch"; "merge" ]
  in
  List.iter
    (fun (verb, n, p50, p99) ->
      Printf.printf "%-8s n=%-6d p50 %8.1f us   p99 %8.1f us\n" verb n
        (1e6 *. p50) (1e6 *. p99))
    verb_rows;
  Printf.printf "errors: %d\n" (Atomic.get errors);
  (* Graceful shutdown must leave nothing listening. *)
  Fb_net.Server.stop srv;
  let gone =
    match Fb_net.Client.connect ~port ~timeout_s:1.0 () with
    | Error _ -> true
    | Ok c ->
      (* Accept queue leftovers can win the connect race; a request must
         still fail against a stopped server. *)
      let dead = Result.is_error (Fb_net.Client.request c [ "stat" ]) in
      Fb_net.Client.close c;
      dead
  in
  if not gone then failwith "net bench: server still answering after stop";
  if Atomic.get errors > 0 then
    failwith
      (Printf.sprintf "net bench: %d dropped/corrupt responses"
         (Atomic.get errors));
  Printf.printf "clean shutdown: port no longer serving\n";
  if not quick then begin
    let b = Buffer.create 512 in
    Printf.bprintf b
      "{\"clients\":%d,\"iterations\":%d,\"requests\":%d,\"seconds\":%.3f,\
       \"ops_per_s\":%.1f,\"errors\":%d,\"verbs\":{" clients per_client total
      wall ops_per_s (Atomic.get errors);
    List.iteri
      (fun i (verb, n, p50, p99) ->
        Printf.bprintf b "%s\"%s\":{\"n\":%d,\"p50_us\":%.1f,\"p99_us\":%.1f}"
          (if i > 0 then "," else "")
          verb n (1e6 *. p50) (1e6 *. p99))
      verb_rows;
    Buffer.add_string b "}}\n";
    let oc = open_out "BENCH_net_mixed.json" in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "machine-readable results written to BENCH_net_mixed.json\n"
  end

(* ------------------------------------------------------------------ *)
(* net-scaling: concurrency of the striped read/write server layer.   *)
(*   1. read-only throughput as the reader count sweeps 1 -> 8        *)
(*   2. write p50 under striped vs. coarse locking (regression check) *)
(*   3. 32-op BATCH frames vs. 32 single round trips                  *)
(* ------------------------------------------------------------------ *)

(* Chunk reads with device latency: every get / liveness probe blocks for
   [delay_s], the way a cold NVMe, networked or cloud store would.  The
   blocking releases the OCaml runtime lock, so whether concurrent
   requests overlap those waits is decided purely by the server's lock
   discipline — exactly the variable this experiment isolates (and the
   only one measurable on a single-core host, where pure in-memory verbs
   are CPU-bound and no lock design can scale them). *)
let net_scaling_delay_s = 0.0003

let slow_store ~delay_s (inner : Fb_chunk.Store.t) =
  let d f x =
    Thread.delay delay_s;
    f x
  in
  { inner with
    Fb_chunk.Store.name = "slow+" ^ inner.Fb_chunk.Store.name;
    get = d inner.Fb_chunk.Store.get;
    get_raw = d inner.Fb_chunk.Store.get_raw;
    mem = d inner.Fb_chunk.Store.mem }

let run_net_scaling ?(quick = false) () =
  header
    (if quick then "net-scaling-quick: striped server concurrency smoke"
     else
       Printf.sprintf
         "net-scaling: reader sweep, striped vs coarse writes, batching \
          (simulated %.0f us storage latency)"
         (1e6 *. net_scaling_delay_s));
  let errors = Atomic.make 0 in
  let with_server ?(slow = false) concurrency f =
    let store = Fb_chunk.Metered_store.wrap (Mem_store.create ()) in
    let store =
      if slow then slow_store ~delay_s:net_scaling_delay_s store else store
    in
    let fb = FB.create store in
    let config =
      { Fb_net.Server.default_config with
        port = 0; save_every_s = 0.0; read_timeout_s = 30.0; concurrency }
    in
    match Fb_net.Server.start ~config fb with
    | Error e -> failwith ("net-scaling: " ^ e)
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Server.stop srv)
        (fun () -> f (Fb_net.Server.port srv))
  in
  let connect port cid =
    match
      Fb_net.Client.connect ~port ~user:(Printf.sprintf "c%d" cid) ()
    with
    | Ok c -> c
    | Error e ->
      failwith ("net-scaling connect: " ^ Fb_net.Client.error_to_string e)
  in
  let request c tokens =
    match Fb_net.Client.request c tokens with
    | Ok payload -> payload
    | Error _ ->
      Atomic.incr errors;
      ""
  in
  let keys = 16 in
  let key i = Printf.sprintf "k%d" i in
  let populate port =
    let c = connect port 0 in
    for i = 0 to keys - 1 do
      ignore (request c [ "put"; key i; "master"; "v-" ^ key i ])
    done;
    Fb_net.Client.close c
  in

  (* 1. reader sweep: n clients, each issuing GETs against its own key
     (distinct stripes), fixed ops per client.  Each GET blocks on the
     simulated storage latency; under the shared read side those waits
     overlap, so throughput grows with the reader count. *)
  let reads_per_client = if quick then 100 else 800 in
  let reader_sweep = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let sweep_results =
    with_server ~slow:true `Striped (fun port ->
        populate port;
        List.map
          (fun n ->
            let run () =
              let t0 = Unix.gettimeofday () in
              let threads =
                List.init n (fun cid ->
                    Thread.create
                      (fun () ->
                        let c = connect port cid in
                        let k = key (cid mod keys) in
                        let expect = "v-" ^ k in
                        for _ = 1 to reads_per_client do
                          if request c [ "get"; k; "master" ] <> expect then
                            Atomic.incr errors
                        done;
                        Fb_net.Client.close c)
                      ())
              in
              List.iter Thread.join threads;
              float_of_int (n * reads_per_client)
              /. (Unix.gettimeofday () -. t0)
            in
            (* Two runs, keep the better: the first warms threads,
               sockets and the minor heap. *)
            let ops_per_s = max (run ()) (run ()) in
            Printf.printf "readers=%d  %8.0f ops/s\n%!" n ops_per_s;
            (n, ops_per_s))
          reader_sweep)
  in
  let sweep_ops n = List.assoc n sweep_results in
  let read_scaling =
    match reader_sweep with
    | first :: _ ->
      let last = List.hd (List.rev reader_sweep) in
      sweep_ops last /. sweep_ops first
    | [] -> 1.0
  in
  Printf.printf "read-only scaling %dx clients: %.2fx throughput\n"
    (List.hd (List.rev reader_sweep))
    read_scaling;

  (* 2. write p50, striped vs coarse: 2 writers committing to their own
     keys while 4 readers keep every stripe's read side busy — the
     contention pattern where coarse locking makes writers queue behind
     unrelated reads. *)
  let write_p50 concurrency =
    let writers = 2 and readers = if quick then 2 else 4 in
    let writes = if quick then 30 else 200 in
    with_server ~slow:true concurrency (fun port ->
        populate port;
        let stop = Atomic.make false in
        let reader_threads =
          List.init readers (fun cid ->
              Thread.create
                (fun () ->
                  let c = connect port (100 + cid) in
                  let k = key (cid mod keys) in
                  while not (Atomic.get stop) do
                    ignore (request c [ "get"; k; "master" ])
                  done;
                  Fb_net.Client.close c)
                ())
        in
        let lat_lock = Mutex.create () in
        let lats = ref [] in
        let writer_threads =
          List.init writers (fun cid ->
              Thread.create
                (fun () ->
                  let c = connect port (200 + cid) in
                  let k = Printf.sprintf "w%d" cid in
                  let mine = ref [] in
                  for i = 1 to writes do
                    let t0 = Unix.gettimeofday () in
                    let uid =
                      request c
                        [ "put"; k; "master"; Printf.sprintf "v%d-%d" cid i ]
                    in
                    mine := (Unix.gettimeofday () -. t0) :: !mine;
                    if uid = "" then Atomic.incr errors
                  done;
                  Mutex.protect lat_lock (fun () -> lats := !mine @ !lats);
                  Fb_net.Client.close c)
                ())
        in
        List.iter Thread.join writer_threads;
        Atomic.set stop true;
        List.iter Thread.join reader_threads;
        let a = Array.of_list !lats in
        Array.sort compare a;
        a.(Array.length a / 2))
  in
  (* Interleave the modes and keep each mode's best of two trials:
     loopback p50 is noisy and the comparison must not hinge on which
     mode ran while the machine was busy. *)
  let best f = min (f ()) (f ()) in
  let striped_p50 = best (fun () -> write_p50 `Striped) in
  let coarse_p50 = best (fun () -> write_p50 `Coarse) in
  let write_regression = (striped_p50 -. coarse_p50) /. coarse_p50 in
  Printf.printf
    "write p50: striped %.1f us, coarse %.1f us (%+.1f%% vs coarse)\n"
    (1e6 *. striped_p50) (1e6 *. coarse_p50) (100.0 *. write_regression);

  (* 3. batching: 32 GETs per frame vs 32 single round trips. *)
  let batch_size = 32 in
  let rounds = if quick then 10 else 100 in
  let single_ops_per_s, batch_ops_per_s =
    with_server `Striped (fun port ->
        populate port;
        let c = connect port 0 in
        let gets =
          List.init batch_size (fun i -> [ "get"; key (i mod keys); "master" ])
        in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          List.iter (fun g -> ignore (request c g)) gets
        done;
        let single = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          match Fb_net.Client.batch c gets with
          | Ok replies ->
            List.iter
              (function Ok _ -> () | Error _ -> Atomic.incr errors)
              replies
          | Error _ -> Atomic.incr errors
        done;
        let batched = Unix.gettimeofday () -. t0 in
        Fb_net.Client.close c;
        let total = float_of_int (batch_size * rounds) in
        (total /. single, total /. batched))
  in
  let batch_speedup = batch_ops_per_s /. single_ops_per_s in
  Printf.printf
    "batch(%d): %8.0f sub-ops/s   unbatched: %8.0f ops/s   speedup %.2fx\n"
    batch_size batch_ops_per_s single_ops_per_s batch_speedup;
  Printf.printf "errors: %d\n" (Atomic.get errors);
  if Atomic.get errors > 0 then
    failwith
      (Printf.sprintf "net-scaling: %d failed/corrupt responses"
         (Atomic.get errors));
  if not quick then begin
    let b = Buffer.create 512 in
    Printf.bprintf b "{\"simulated_storage_latency_us\":%.0f,\"reader_sweep\":["
      (1e6 *. net_scaling_delay_s);
    List.iteri
      (fun i (n, ops) ->
        Printf.bprintf b "%s{\"clients\":%d,\"ops_per_s\":%.1f}"
          (if i > 0 then "," else "") n ops)
      sweep_results;
    Printf.bprintf b
      "],\"read_scaling_8_over_1\":%.3f,\"write_p50_us_striped\":%.1f,\
       \"write_p50_us_coarse\":%.1f,\"write_p50_regression\":%.4f,\
       \"batch_size\":%d,\"batch_sub_ops_per_s\":%.1f,\
       \"single_ops_per_s\":%.1f,\"batch_speedup\":%.3f,\"errors\":%d}\n"
      read_scaling (1e6 *. striped_p50) (1e6 *. coarse_p50) write_regression
      batch_size batch_ops_per_s single_ops_per_s batch_speedup
      (Atomic.get errors);
    let oc = open_out "BENCH_net_scaling.json" in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "machine-readable results written to BENCH_net_scaling.json\n"
  end

(* ------------------------------------------------------------------ *)
(* net-c10k: connection scalability of the event-loop engine against  *)
(* the thread-per-connection engine, plus single-connection request   *)
(* pipelining.  Three claims, measured:                                *)
(*   1. the event engine holds >= 10x the concurrent connections the   *)
(*      threaded engine sustains (which is select/thread-bound),       *)
(*   2. its active-request p99 stays flat (<= 1.5x) as idle            *)
(*      connections pile up,                                           *)
(*   3. pipelining depth 32 on one connection beats depth 1 by >= 5x.  *)
(* Writes BENCH_net.json.                                              *)
(* ------------------------------------------------------------------ *)

(* The soft RLIMIT_NOFILE, read from /proc (no getrlimit binding in the
   stdlib).  None on hosts without procfs: the guard then only skips
   nothing, and a genuinely capped host fails connect — visibly. *)
let fd_limit () =
  match open_in "/proc/self/limits" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if
              String.length line >= 14
              && String.equal (String.sub line 0 14) "Max open files"
            then
              match
                String.split_on_char ' ' line
                |> List.filter (fun s -> s <> "")
              with
              | "Max" :: "open" :: "files" :: soft :: _ ->
                int_of_string_opt soft
              | _ -> None
            else go ()
        in
        go ())

let percentile_ms lats p =
  match lats with
  | [] -> -1.0
  | _ ->
    let a = Array.of_list lats in
    Array.sort compare a;
    let n = Array.length a in
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    1000.0 *. a.(max 0 (min (n - 1) idx))

type c10k_point = {
  ck_mode : string;
  ck_conns : int;
  ck_established : int;
  ck_alive : int;
  ck_p99_ms : float;
  ck_ops_per_s : float;
  ck_events : int;
  ck_errors : int;
  ck_sustained : bool;
}

let run_net_c10k ?(quick = false) () =
  header
    (if quick then "net-c10k-quick: event vs threaded connection smoke"
     else
       "net-c10k: idle+active connection sweep (event vs threaded), \
        pipelined depth 1/8/32");
  let limit = fd_limit () in
  (match limit with
   | Some l -> Printf.printf "fd limit (ulimit -n): %d\n" l
   | None -> Printf.printf "fd limit: unknown (no /proc/self/limits)\n");
  let with_server mode f =
    let fb = FB.create (Mem_store.create ()) in
    let config =
      { Fb_net.Server.default_config with
        port = 0; save_every_s = 0.0; read_timeout_s = 120.0;
        backlog = 1024; mode }
    in
    match Fb_net.Server.start ~config fb with
    | Error e -> failwith ("net-c10k: " ^ e)
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Server.stop srv)
        (fun () -> f (Fb_net.Server.port srv))
  in
  (* timeout_s = 0 disables every select-based deadline in the client, so
     the bench process itself has no FD_SETSIZE ceiling; the servers
     under test keep their own discipline (which is the thing measured). *)
  let connect port =
    match Fb_net.Client.connect ~port ~user:"bench" ~timeout_s:0.0 () with
    | Ok c -> Some c
    | Error _ -> None
  in
  let mode_name = function `Event -> "event" | `Threaded -> "threaded" in
  let active_reqs = if quick then 50 else 300 in
  let hot_writes = if quick then 10 else 50 in
  let point mode port n =
    (* Hold [n] idle connections open for the duration of the point. *)
    let idles = Array.init n (fun _ -> connect port) in
    let established =
      Array.fold_left
        (fun acc -> function Some _ -> acc + 1 | None -> acc)
        0 idles
    in
    let errors = Atomic.make 0 in
    let lat_mu = Mutex.create () in
    let lats = ref [] in
    (* SUBSCRIBE under load (event engine only): one pushed watch while
       the getters hammer and a writer moves a branch head. *)
    let events_seen = Atomic.make 0 in
    let sub =
      if mode = `Event then
        match
          Fb_net.Mux.connect ~port ~user:"bench" ~timeout_s:0.0 ()
        with
        | Error _ ->
          Atomic.incr errors;
          None
        | Ok mux -> (
          match
            Fb_net.Mux.subscribe ~key:"hot" mux (fun _ _ ->
                Atomic.incr events_seen)
          with
          | Ok _ -> Some mux
          | Error _ ->
            Atomic.incr errors;
            Fb_net.Mux.close mux;
            None)
      else None
    in
    let t0 = Unix.gettimeofday () in
    let getters =
      List.init 4 (fun _ ->
          Thread.create
            (fun () ->
              match connect port with
              | None -> Atomic.incr errors
              | Some c ->
                let mine = ref [] in
                (* Unmeasured warmup: first round trips pay connection
                   and thread ramp-up, not steady-state latency. *)
                for _ = 1 to 10 do
                  ignore (Fb_net.Client.request c [ "get"; "k0"; "master" ])
                done;
                for _ = 1 to active_reqs do
                  let r0 = Unix.gettimeofday () in
                  match Fb_net.Client.request c [ "get"; "k0"; "master" ] with
                  | Ok _ -> mine := (Unix.gettimeofday () -. r0) :: !mine
                  | Error _ -> Atomic.incr errors
                done;
                Mutex.protect lat_mu (fun () -> lats := !mine @ !lats);
                Fb_net.Client.close c)
            ())
    in
    let writer =
      Thread.create
        (fun () ->
          match connect port with
          | None -> Atomic.incr errors
          | Some c ->
            for i = 1 to hot_writes do
              match
                Fb_net.Client.request c
                  [ "put"; "hot"; "master"; Printf.sprintf "h%d" i ]
              with
              | Ok _ -> ()
              | Error _ -> Atomic.incr errors
            done;
            Fb_net.Client.close c)
        ()
    in
    List.iter Thread.join getters;
    Thread.join writer;
    let elapsed = Unix.gettimeofday () -. t0 in
    let ok_gets = List.length !lats in
    (match sub with
     | Some mux ->
       (* Give the last push a beat to arrive before tearing down. *)
       let deadline = Unix.gettimeofday () +. 2.0 in
       while
         Atomic.get events_seen < hot_writes
         && Unix.gettimeofday () < deadline
       do
         Thread.delay 0.02
       done;
       Fb_net.Mux.close mux
     | None -> ());
    (* Probe every idle connection: a round trip proves the server still
       owns the socket (the threaded engine silently drops connections
       past its select ceiling). *)
    let alive = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some c ->
          (match Fb_net.Client.request c [ "get"; "k0"; "master" ] with
           | Ok _ -> incr alive
           | Error _ -> ());
          Fb_net.Client.close c)
      idles;
    let p99 = percentile_ms !lats 99.0 in
    let pt =
      { ck_mode = mode_name mode;
        ck_conns = n;
        ck_established = established;
        ck_alive = !alive;
        ck_p99_ms = p99;
        ck_ops_per_s =
          (if elapsed > 0.0 then float_of_int ok_gets /. elapsed else 0.0);
        ck_events = Atomic.get events_seen;
        ck_errors = Atomic.get errors;
        ck_sustained =
          established = n && !alive = n && Atomic.get errors = 0 }
    in
    Printf.printf
      "%-8s conns=%-5d held=%d/%d  p99=%6.2f ms  %8.0f gets/s  \
       events=%d/%d%s\n%!"
      pt.ck_mode n pt.ck_alive n pt.ck_p99_ms pt.ck_ops_per_s pt.ck_events
      (if mode = `Event then hot_writes else 0)
      (if pt.ck_sustained then "" else "  [NOT SUSTAINED]");
    pt
  in
  let shared_points = if quick then [ 1; 64 ] else [ 1; 64; 256; 1024 ] in
  let event_points =
    shared_points @ (if quick then [ 256 ] else [ 4096; 8192 ])
  in
  (* Every connection costs two fds in-process (client end + server
     end); skip points the rlimit cannot fit instead of dying on EMFILE. *)
  let fits n =
    match limit with None -> true | Some l -> (2 * n) + 128 <= l
  in
  let run_mode mode points =
    with_server mode (fun port ->
        (match connect port with
         | Some c ->
           ignore (Fb_net.Client.request c [ "put"; "k0"; "master"; "v0" ]);
           ignore (Fb_net.Client.request c [ "put"; "hot"; "master"; "h0" ]);
           Fb_net.Client.close c
         | None -> failwith "net-c10k: populate connect failed");
        List.filter_map
          (fun n ->
            if fits n then Some (point mode port n)
            else begin
              Printf.printf
                "%-8s conns=%-5d skipped (needs %d fds, limit %s)\n"
                (mode_name mode) n
                ((2 * n) + 128)
                (match limit with
                 | Some l -> string_of_int l
                 | None -> "unknown")
              ;
              None
            end)
          points)
  in
  let threaded = run_mode `Threaded shared_points in
  let event = run_mode `Event event_points in
  let max_sustained pts =
    List.fold_left
      (fun acc p -> if p.ck_sustained then max acc p.ck_conns else acc)
      0 pts
  in
  let threaded_max = max_sustained threaded in
  let event_max = max_sustained event in
  let conn_ratio =
    if threaded_max > 0 then
      float_of_int event_max /. float_of_int threaded_max
    else infinity
  in
  let p99_at pts n =
    List.find_map
      (fun p -> if p.ck_conns = n && p.ck_p99_ms >= 0.0 then Some p.ck_p99_ms
                else None)
      pts
  in
  let event_base_p99 = p99_at event (List.hd event_points) in
  let event_max_p99 = p99_at event event_max in
  let p99_flatness =
    match event_base_p99, event_max_p99 with
    | Some b, Some m when b > 0.0 -> m /. b
    | _ -> nan
  in
  Printf.printf
    "max sustained: event %d conns, threaded %d conns (%.1fx); event p99 \
     %s -> %s ms across the sweep (%.2fx)\n"
    event_max threaded_max conn_ratio
    (match event_base_p99 with Some v -> Printf.sprintf "%.2f" v | None -> "?")
    (match event_max_p99 with Some v -> Printf.sprintf "%.2f" v | None -> "?")
    p99_flatness;

  (* Pipelining: one mux connection, a window of [depth] tagged requests
     kept in flight; depth 1 degenerates to strict request/response.
     The store carries the same simulated device latency as net-scaling:
     on a single-core host a pure in-memory get is CPU-bound, so whether
     the pipeline overlaps anything is decided by whether requests block
     on storage — the variable this leg isolates.  Depth 1 pays the full
     storage wait per round trip; deeper windows overlap those waits
     across the worker pool. *)
  let pipeline_total = if quick then 400 else 4_000 in
  let pipeline_depths = [ 1; 8; 32 ] in
  let with_pipeline_server f =
    let store =
      slow_store ~delay_s:net_scaling_delay_s
        (Fb_chunk.Metered_store.wrap (Mem_store.create ()))
    in
    let fb = FB.create store in
    let config =
      { Fb_net.Server.default_config with
        port = 0; save_every_s = 0.0; read_timeout_s = 120.0;
        backlog = 1024; mode = `Event; workers = 8 }
    in
    match Fb_net.Server.start ~config fb with
    | Error e -> failwith ("net-c10k: " ^ e)
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Server.stop srv)
        (fun () -> f (Fb_net.Server.port srv))
  in
  let pipeline_results =
    with_pipeline_server (fun port ->
        (match connect port with
         | Some c ->
           ignore (Fb_net.Client.request c [ "put"; "k0"; "master"; "v0" ]);
           Fb_net.Client.close c
         | None -> failwith "net-c10k: populate connect failed");
        match Fb_net.Mux.connect ~port ~user:"bench" ~timeout_s:0.0 () with
        | Error e ->
          failwith ("net-c10k mux: " ^ Fb_net.Client.error_to_string e)
        | Ok mux ->
          Fun.protect
            ~finally:(fun () -> Fb_net.Mux.close mux)
            (fun () ->
              List.map
                (fun depth ->
                  let inflight = Queue.create () in
                  let failed = ref 0 in
                  let await_one () =
                    match Fb_net.Mux.await mux (Queue.pop inflight) with
                    | Ok (Fb_net.Frame.One (Ok _)) -> ()
                    | _ -> incr failed
                  in
                  let t0 = Unix.gettimeofday () in
                  for _ = 1 to pipeline_total do
                    if Queue.length inflight >= depth then await_one ();
                    match
                      Fb_net.Mux.send mux
                        (Fb_net.Frame.Single [ "get"; "k0"; "master" ])
                    with
                    | Ok ticket -> Queue.push ticket inflight
                    | Error _ -> incr failed
                  done;
                  while not (Queue.is_empty inflight) do
                    await_one ()
                  done;
                  let ops =
                    float_of_int pipeline_total
                    /. (Unix.gettimeofday () -. t0)
                  in
                  if !failed > 0 then
                    failwith
                      (Printf.sprintf "net-c10k: %d pipelined failures"
                         !failed);
                  Printf.printf "pipeline depth=%-3d  %8.0f ops/s\n%!" depth
                    ops;
                  (depth, ops))
                pipeline_depths))
  in
  let depth_ops d = List.assoc d pipeline_results in
  let pipeline_speedup = depth_ops 32 /. depth_ops 1 in
  Printf.printf "pipelining speedup depth-32 over depth-1: %.2fx\n"
    pipeline_speedup;
  (* The event engine must be spotless: any error or dropped connection
     on its side of the sweep is a real regression, not a limitation
     being documented. *)
  List.iter
    (fun p ->
      if not p.ck_sustained then
        failwith
          (Printf.sprintf
             "net-c10k: event engine failed to sustain %d connections \
              (held %d, errors %d)"
             p.ck_conns p.ck_alive p.ck_errors))
    event;
  if not quick then begin
    let b = Buffer.create 1024 in
    let backend =
      let probe = Fb_net.Ev.create () in
      let name = Fb_net.Ev.backend_name probe in
      Fb_net.Ev.close probe;
      name
    in
    Printf.bprintf b "{\"fd_limit\":%s,\"backend\":\"%s\",\"sweep\":["
      (match limit with Some l -> string_of_int l | None -> "null")
      backend;
    List.iteri
      (fun i p ->
        Printf.bprintf b
          "%s{\"mode\":\"%s\",\"conns\":%d,\"established\":%d,\"alive\":%d,\
           \"p99_ms\":%.3f,\"gets_per_s\":%.1f,\"events_pushed\":%d,\
           \"errors\":%d,\"sustained\":%b}"
          (if i > 0 then "," else "")
          p.ck_mode p.ck_conns p.ck_established p.ck_alive p.ck_p99_ms
          p.ck_ops_per_s p.ck_events p.ck_errors p.ck_sustained)
      (threaded @ event);
    Printf.bprintf b
      "],\"threaded_max_sustained\":%d,\"event_max_sustained\":%d,\
       \"conn_ratio\":%.2f,\"event_p99_flatness\":%.3f,\"pipeline\":["
      threaded_max event_max conn_ratio p99_flatness;
    List.iteri
      (fun i (d, ops) ->
        Printf.bprintf b "%s{\"depth\":%d,\"ops_per_s\":%.1f}"
          (if i > 0 then "," else "")
          d ops)
      pipeline_results;
    Printf.bprintf b "],\"pipeline_speedup_32_over_1\":%.3f}\n"
      pipeline_speedup;
    let oc = open_out "BENCH_net.json" in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "machine-readable results written to BENCH_net.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Durability: sustained fully-durable puts through the append-only    *)
(* pack log (group commit) vs the directory backend (one fsync per     *)
(* chunk), recovery time with and without a checkpoint, and a crash-   *)
(* matrix smoke.  Writes BENCH_durability.json.                        *)
(* ------------------------------------------------------------------ *)

module Log_store = Fb_chunk.Log_store

(* ~1 KiB payload, unique per [i] so nothing dedups away. *)
let durability_blob i =
  let head = Printf.sprintf "durability-%08d-" i in
  let pad = String.make (1024 - String.length head) (Char.chr (97 + (i mod 26))) in
  Fb_chunk.Chunk.v Fb_chunk.Chunk.Leaf_blob (head ^ pad)

let durability_rm_rf dir =
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let durability_read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let durability_write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let run_durability ?(quick = false) () =
  header
    (if quick then "DURABILITY (quick): log vs file under fsync, crash smoke"
     else "DURABILITY: fsynced puts, recovery replay, crash matrix");
  let n = if quick then 120 else 2000 in
  let tmp_root name =
    let d =
      Filename.concat (Filename.get_temp_dir_name ()) ("fb_bench_dur_" ^ name)
    in
    durability_rm_rf d;
    d
  in
  (* Baseline: directory backend with one write+fsync+rename per chunk. *)
  let file_root = tmp_root "file" in
  let fstore = Fb_chunk.File_store.create ~fsync:true ~root:file_root () in
  let (), file_ms =
    time_ms (fun () ->
        for i = 0 to n - 1 do
          ignore (Store.put fstore (durability_blob i))
        done)
  in
  let file_puts = float_of_int n /. (file_ms /. 1000.0) in
  (* Pack log, default config: fsync on, group commit batches the syncs.
     The final [sync] is included so both sides end fully durable. *)
  let log_root = tmp_root "log" in
  let log = Log_store.create ~root:log_root () in
  let lstore = Log_store.store log in
  let (), log_ms =
    time_ms (fun () ->
        for i = 0 to n - 1 do
          ignore (Store.put lstore (durability_blob i))
        done;
        Log_store.sync log)
  in
  let log_puts = float_of_int n /. (log_ms /. 1000.0) in
  let speedup = log_puts /. file_puts in
  let flushes = (Log_store.counters log).Log_store.flushes in
  Printf.printf "%d puts of 1 KiB, fully durable before return:\n" n;
  Printf.printf "  file store (fsync per chunk)  %8.0f puts/s\n" file_puts;
  Printf.printf "  pack log   (group commit)     %8.0f puts/s   (%d fsyncs)\n"
    log_puts flushes;
  Printf.printf "  speedup %.1fx\n" speedup;
  (* Recovery time: reopen against the close-time checkpoint, then delete
     the side index and reopen again to force a full tail replay. *)
  let log_path = Log_store.log_path log in
  let idx_path = Log_store.idx_path log in
  Log_store.close log;
  let h, ckpt_ms = time_ms (fun () -> Log_store.create ~root:log_root ()) in
  let ckpt_replayed = (Log_store.counters h).Log_store.replayed_records in
  let live = Log_store.live_chunks h in
  Log_store.close h;
  Sys.remove idx_path;
  let h, replay_ms = time_ms (fun () -> Log_store.create ~root:log_root ()) in
  let replay_replayed = (Log_store.counters h).Log_store.replayed_records in
  let live' = Log_store.live_chunks h in
  Log_store.close h;
  if live <> n || live' <> n then
    failwith
      (Printf.sprintf "durability: recovery lost chunks (%d / %d of %d)" live
         live' n);
  Printf.printf "recovery (reopen of %d records):\n" n;
  Printf.printf "  with checkpoint   %7.2f ms  (%d records replayed)\n" ckpt_ms
    ckpt_replayed;
  Printf.printf "  full tail replay  %7.2f ms  (%d records replayed)\n"
    replay_ms replay_replayed;
  (* Crash-matrix smoke: truncate the log at evenly spaced byte offsets;
     every cut must recover to a prefix of sealed records, every surviving
     read must re-hash, and a second reopen must find nothing to repair.
     (The exhaustive every-byte matrix, including garbled tails, runs in
     the test suite; this keeps the property exercised from `make check`.) *)
  let bytes = durability_read_file log_path in
  let header_size = 16 in
  let points = if quick then 7 else 25 in
  let rig = tmp_root "rig" in
  let crash_ok = ref 0 in
  for p = 0 to points - 1 do
    let cut =
      header_size
      + (String.length bytes - header_size) * (p + 1) / points
    in
    durability_rm_rf rig;
    Unix.mkdir rig 0o755;
    durability_write_file (Filename.concat rig "gen-0.log")
      (String.sub bytes 0 cut);
    durability_write_file (Filename.concat rig "CURRENT") "0\n";
    let r = Log_store.create ~root:rig () in
    let rs = Log_store.store r in
    (* every surviving read must re-hash to its identity *)
    let sound = ref true in
    rs.Store.iter (fun id raw ->
        match Fb_chunk.Chunk.decode raw with
        | Ok c ->
          if not (Fb_hash.Hash.equal (Fb_chunk.Chunk.hash c) id) then
            sound := false
        | Error _ -> sound := false);
    Log_store.close r;
    let r2 = Log_store.create ~root:rig () in
    if (Log_store.counters r2).Log_store.truncated_bytes <> 0 then sound := false;
    Log_store.close r2;
    if !sound then incr crash_ok
    else Printf.printf "  crash point at byte %d FAILED\n" cut
  done;
  Printf.printf "crash matrix: %d/%d truncation points recovered cleanly\n"
    !crash_ok points;
  durability_rm_rf file_root;
  durability_rm_rf log_root;
  durability_rm_rf rig;
  if !crash_ok <> points then failwith "durability: crash matrix failed";
  if (not quick) && speedup < 5.0 then
    failwith
      (Printf.sprintf "durability: group-commit speedup %.1fx below the 5x bar"
         speedup);
  if not quick then begin
    let oc = open_out "BENCH_durability.json" in
    Printf.fprintf oc
      "{\"puts\":%d,\"payload_bytes\":1024,\
       \"file_fsync_puts_per_s\":%.1f,\"log_fsync_puts_per_s\":%.1f,\
       \"speedup\":%.2f,\"log_fsyncs\":%d,\
       \"recovery_checkpoint_ms\":%.2f,\"recovery_checkpoint_replayed\":%d,\
       \"recovery_replay_ms\":%.2f,\"recovery_replay_replayed\":%d,\
       \"crash_points\":%d,\"crash_points_ok\":%d}\n"
      n file_puts log_puts speedup flushes ckpt_ms ckpt_replayed replay_ms
      replay_replayed points !crash_ok;
    close_out oc;
    Printf.printf "machine-readable results written to BENCH_durability.json\n"
  end

(* ------------------------------------------------------------------ *)
(* sync: Merkle-DAG delta sync — bytes on the wire for a 1%-edit      *)
(* update vs the full transfer.  Writes BENCH_sync.json.              *)
(* ------------------------------------------------------------------ *)

let run_sync ?(quick = false) () =
  header
    (if quick then "sync-quick: delta push/pull smoke (wire bytes vs full)"
     else "sync: delta sync of a 1%-edit update across ~1M records");
  let n = if quick then 20_000 else 1_000_000 in
  let edits = n / 100 in
  let key_of i = Printf.sprintf "r%07d" i in
  let base = List.init n (fun i -> (key_of i, Printf.sprintf "v%d" i)) in
  (* The 1% edit is a contiguous key range: the update story of the
     paper's dataset workloads (a segment of rows revised), and the
     case chunk-level dedup is built to exploit. *)
  let edited =
    List.init n (fun i ->
        ( key_of i,
          if i < edits then Printf.sprintf "EDITED%d" i
          else Printf.sprintf "v%d" i ))
  in
  let src_store = Mem_store.create () in
  let src = FB.create src_store in
  let (), build_ms =
    time_ms (fun () ->
        ignore
          (ok_fb
             (FB.put src ~key:"table" (Value.map_of_bindings src_store base))))
  in
  Printf.printf "built v1 (%d records) in %.0f ms\n%!" n build_ms;
  let srv_fb = FB.create (Mem_store.create ()) in
  let config =
    { Fb_net.Server.default_config with port = 0; save_every_s = 0.0 }
  in
  let srv =
    match Fb_net.Server.start ~config srv_fb with
    | Ok s -> s
    | Error e -> failwith ("sync bench: " ^ e)
  in
  let r =
    match Fb_net.Remote.connect ~port:(Fb_net.Server.port srv) () with
    | Ok r -> r
    | Error e -> failwith ("sync bench: " ^ Fb_core.Errors.to_string e)
  in
  Fun.protect
    ~finally:(fun () ->
      Fb_net.Remote.close r;
      Fb_net.Server.stop srv)
    (fun () ->
      let show verb (s : Fb_core.Sync.stats) ms =
        Printf.printf
          "  %-10s %6d chunks  %9.1f KiB on wire  %6d skipped  %4d rounds  \
           %7.0f ms\n%!"
          verb s.Fb_core.Sync.chunks_moved (kb s.Fb_core.Sync.bytes_moved)
          s.Fb_core.Sync.chunks_skipped s.Fb_core.Sync.rounds ms
      in
      (* Full transfer: the server starts empty. *)
      let (_, full_push), full_push_ms =
        time_ms (fun () -> ok_fb (Fb_net.Remote.push r src ~key:"table"))
      in
      show "push-full" full_push full_push_ms;
      let dst = FB.create (Mem_store.create ()) in
      let (_, full_pull), full_pull_ms =
        time_ms (fun () -> ok_fb (Fb_net.Remote.pull r dst ~key:"table"))
      in
      show "pull-full" full_pull full_pull_ms;
      (* The 1% edit, then the same sync again: only the frontier moves. *)
      let (), edit_ms =
        time_ms (fun () ->
            ignore
              (ok_fb
                 (FB.put src ~key:"table"
                    (Value.map_of_bindings src_store edited))))
      in
      Printf.printf "committed 1%% edit (%d records) in %.0f ms\n%!" edits
        edit_ms;
      let (_, delta_push), delta_push_ms =
        time_ms (fun () -> ok_fb (Fb_net.Remote.push r src ~key:"table"))
      in
      show "push-delta" delta_push delta_push_ms;
      let (_, delta_pull), delta_pull_ms =
        time_ms (fun () -> ok_fb (Fb_net.Remote.pull r dst ~key:"table"))
      in
      show "pull-delta" delta_pull delta_pull_ms;
      if not (Hash.equal (ok_fb (FB.head dst ~key:"table"))
                (ok_fb (FB.head src ~key:"table")))
      then failwith "sync bench: replica head diverged from source";
      let ratio what (delta : Fb_core.Sync.stats) (full : Fb_core.Sync.stats) =
        let r =
          float_of_int delta.Fb_core.Sync.bytes_moved
          /. float_of_int (max 1 full.Fb_core.Sync.bytes_moved)
        in
        Printf.printf "  %s delta/full wire bytes: %.2f%%\n" what (100.0 *. r);
        r
      in
      let push_ratio = ratio "push" delta_push full_push in
      let pull_ratio = ratio "pull" delta_pull full_pull in
      if (not quick) && (push_ratio > 0.10 || pull_ratio > 0.10) then
        failwith
          (Printf.sprintf
             "sync: 1%%-edit delta shipped %.1f%%/%.1f%% of full-transfer \
              bytes, above the 10%% bar"
             (100.0 *. push_ratio) (100.0 *. pull_ratio));
      if not quick then begin
        let oc = open_out "BENCH_sync.json" in
        Printf.fprintf oc
          "{\"records\":%d,\"edited_records\":%d,\
           \"full_push\":{\"chunks\":%d,\"bytes\":%d,\"skipped\":%d,\
           \"rounds\":%d,\"ms\":%.0f},\
           \"full_pull\":{\"chunks\":%d,\"bytes\":%d,\"skipped\":%d,\
           \"rounds\":%d,\"ms\":%.0f},\
           \"delta_push\":{\"chunks\":%d,\"bytes\":%d,\"skipped\":%d,\
           \"rounds\":%d,\"ms\":%.0f},\
           \"delta_pull\":{\"chunks\":%d,\"bytes\":%d,\"skipped\":%d,\
           \"rounds\":%d,\"ms\":%.0f},\
           \"push_delta_over_full\":%.4f,\"pull_delta_over_full\":%.4f}\n"
          n edits full_push.Fb_core.Sync.chunks_moved
          full_push.Fb_core.Sync.bytes_moved
          full_push.Fb_core.Sync.chunks_skipped full_push.Fb_core.Sync.rounds
          full_push_ms full_pull.Fb_core.Sync.chunks_moved
          full_pull.Fb_core.Sync.bytes_moved
          full_pull.Fb_core.Sync.chunks_skipped full_pull.Fb_core.Sync.rounds
          full_pull_ms delta_push.Fb_core.Sync.chunks_moved
          delta_push.Fb_core.Sync.bytes_moved
          delta_push.Fb_core.Sync.chunks_skipped delta_push.Fb_core.Sync.rounds
          delta_push_ms delta_pull.Fb_core.Sync.chunks_moved
          delta_pull.Fb_core.Sync.bytes_moved
          delta_pull.Fb_core.Sync.chunks_skipped delta_pull.Fb_core.Sync.rounds
          delta_pull_ms push_ratio pull_ratio;
        close_out oc;
        Printf.printf "machine-readable results written to BENCH_sync.json\n"
      end)

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", run_table1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("siri", run_siri);
    ("ablation", run_ablation);
    ("storage", run_storage);
    ("resilience", run_resilience);
    ("sharded", run_sharded);
    ("cluster", fun () -> run_cluster_net ());
    ("cluster-quick", fun () -> run_cluster_net ~quick:true ());
    ("obs", fun () -> run_obs ());
    ("obs-quick", fun () -> run_obs ~quick:true ());
    ("micro", run_micro);
    ("hotpath", fun () -> run_hotpath ());
    ("hotpath-quick", fun () -> run_hotpath ~quick:true ());
    ("net", fun () -> run_net ());
    ("net-quick", fun () -> run_net ~quick:true ());
    ("net-scaling", fun () -> run_net_scaling ());
    ("net-scaling-quick", fun () -> run_net_scaling ~quick:true ());
    ("net-c10k", fun () -> run_net_c10k ());
    ("net-c10k-quick", fun () -> run_net_c10k ~quick:true ());
    ("durability", fun () -> run_durability ());
    ("durability-quick", fun () -> run_durability ~quick:true ());
    ("sync", fun () -> run_sync ());
    ("sync-quick", fun () -> run_sync ~quick:true ()) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  Printf.printf "\n%s\nall experiments completed\n" line
