(* Write-preferring reader-writer locks and the striped composition. *)

module Rwlock = Fb_net.Rwlock

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* The locks block forever on bugs, so every "eventually" assertion needs
   a deadline; 5 s is far beyond any scheduling hiccup. *)
let eventually ?(timeout = 5.0) p =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if p () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

let test_readers_overlap () =
  let l = Rwlock.create () in
  let inside = Atomic.make 0 in
  let release = Atomic.make false in
  let reader () =
    Rwlock.with_read l (fun () ->
        Atomic.incr inside;
        ignore (eventually (fun () -> Atomic.get release)))
  in
  let ts = List.init 4 (fun _ -> Thread.create reader ()) in
  (* All four must be inside the shared section at the same time. *)
  check bool_ "readers overlap" true
    (eventually (fun () -> Atomic.get inside >= 4));
  Atomic.set release true;
  List.iter Thread.join ts

let test_writer_excludes () =
  let l = Rwlock.create () in
  let release = Atomic.make false in
  let writer_in = Atomic.make false in
  let reader_in = Atomic.make false in
  let second_writer_in = Atomic.make false in
  let w =
    Thread.create
      (fun () ->
        Rwlock.with_write l (fun () ->
            Atomic.set writer_in true;
            ignore (eventually (fun () -> Atomic.get release))))
      ()
  in
  check bool_ "writer entered" true
    (eventually (fun () -> Atomic.get writer_in));
  let r =
    Thread.create
      (fun () -> Rwlock.with_read l (fun () -> Atomic.set reader_in true))
      ()
  in
  let w2 =
    Thread.create
      (fun () ->
        Rwlock.with_write l (fun () -> Atomic.set second_writer_in true))
      ()
  in
  Thread.delay 0.05;
  check bool_ "reader excluded while writer active" false (Atomic.get reader_in);
  check bool_ "second writer excluded too" false (Atomic.get second_writer_in);
  Atomic.set release true;
  Thread.join w;
  Thread.join r;
  Thread.join w2;
  check bool_ "reader ran after release" true (Atomic.get reader_in);
  check bool_ "second writer ran after release" true
    (Atomic.get second_writer_in)

let test_write_preference () =
  let l = Rwlock.create () in
  let release = Atomic.make false in
  let r1_in = Atomic.make false in
  let order = ref [] in
  let om = Mutex.create () in
  let record tag = Mutex.protect om (fun () -> order := tag :: !order) in
  let r1 =
    Thread.create
      (fun () ->
        Rwlock.with_read l (fun () ->
            Atomic.set r1_in true;
            ignore (eventually (fun () -> Atomic.get release))))
      ()
  in
  check bool_ "first reader in" true (eventually (fun () -> Atomic.get r1_in));
  (* A writer queues behind the active reader... *)
  let w = Thread.create (fun () -> Rwlock.with_write l (fun () -> record `W)) () in
  Thread.delay 0.05;
  (* ...and a reader arriving after the writer must NOT slip past it —
     that is the write-preference that prevents reader streams from
     starving writers. *)
  let r2 = Thread.create (fun () -> Rwlock.with_read l (fun () -> record `R2)) () in
  Thread.delay 0.05;
  check int_ "both queued while reader holds" 0
    (Mutex.protect om (fun () -> List.length !order));
  Atomic.set release true;
  Thread.join w;
  Thread.join r2;
  Thread.join r1;
  (match List.rev !order with
   | [ `W; `R2 ] -> ()
   | _ -> Alcotest.fail "late reader overtook a waiting writer")

let two_keys_in_distinct_stripes s =
  let rec find i =
    let k = Printf.sprintf "key-%d" i in
    if Rwlock.Striped.stripe_index s k <> Rwlock.Striped.stripe_index s "key-0"
    then k
    else find (i + 1)
  in
  ("key-0", find 1)

let test_striped_independence () =
  let s = Rwlock.Striped.create () in
  let ka, kb = two_keys_in_distinct_stripes s in
  let release = Atomic.make false in
  let a_in = Atomic.make false in
  let b_done = Atomic.make false in
  let a =
    Thread.create
      (fun () ->
        Rwlock.Striped.with_key s ~mode:`Write ka (fun () ->
            Atomic.set a_in true;
            ignore (eventually (fun () -> Atomic.get release))))
      ()
  in
  check bool_ "stripe A writer in" true
    (eventually (fun () -> Atomic.get a_in));
  (* A writer on a different stripe proceeds while A's stripe is held
     exclusively — the whole point of striping. *)
  let b =
    Thread.create
      (fun () ->
        Rwlock.Striped.with_key s ~mode:`Write kb (fun () ->
            Atomic.set b_done true))
      ()
  in
  check bool_ "stripe B writer unaffected" true
    (eventually (fun () -> Atomic.get b_done));
  (* But a same-stripe reader stays excluded. *)
  let a_read = Atomic.make false in
  let r =
    Thread.create
      (fun () ->
        Rwlock.Striped.with_key s ~mode:`Read ka (fun () ->
            Atomic.set a_read true))
      ()
  in
  Thread.delay 0.05;
  check bool_ "same-stripe reader excluded" false (Atomic.get a_read);
  Atomic.set release true;
  List.iter Thread.join [ a; b; r ];
  check bool_ "same-stripe reader ran after release" true (Atomic.get a_read)

let test_global_excludes_all_keys () =
  let s = Rwlock.Striped.create () in
  let release = Atomic.make false in
  let g_in = Atomic.make false in
  let key_done = Atomic.make false in
  let g =
    Thread.create
      (fun () ->
        Rwlock.Striped.with_global s ~mode:`Write (fun () ->
            Atomic.set g_in true;
            ignore (eventually (fun () -> Atomic.get release))))
      ()
  in
  check bool_ "global writer in" true (eventually (fun () -> Atomic.get g_in));
  let k =
    Thread.create
      (fun () ->
        Rwlock.Striped.with_key s ~mode:`Read "anything" (fun () ->
            Atomic.set key_done true))
      ()
  in
  Thread.delay 0.05;
  check bool_ "key reader excluded by global writer" false
    (Atomic.get key_done);
  Atomic.set release true;
  Thread.join g;
  Thread.join k;
  check bool_ "key reader ran after release" true (Atomic.get key_done)

let test_stripe_index_stable () =
  let s = Rwlock.Striped.create ~stripes:16 () in
  check int_ "stripe count" 16 (Rwlock.Striped.stripe_count s);
  (* Deterministic and in range for arbitrary keys. *)
  List.iter
    (fun k ->
      let i = Rwlock.Striped.stripe_index s k in
      check bool_ "in range" true (i >= 0 && i < 16);
      check int_ "stable" i (Rwlock.Striped.stripe_index s k))
    [ ""; "a"; "key"; String.make 1000 'z'; "\x00\xff\x80" ]

let suite =
  [ Alcotest.test_case "readers overlap" `Quick test_readers_overlap;
    Alcotest.test_case "writer excludes" `Quick test_writer_excludes;
    Alcotest.test_case "write preference" `Quick test_write_preference;
    Alcotest.test_case "striped independence" `Quick test_striped_independence;
    Alcotest.test_case "global excludes all keys" `Quick
      test_global_excludes_all_keys;
    Alcotest.test_case "stripe index stable" `Quick test_stripe_index_stable ]
