(* Durable instances: open/save roundtrips, atomicity, corruption. *)

module FB = Fb_core.Forkbase
module Persistent = Fb_core.Persistent
module Errors = Fb_core.Errors
module Value = Fb_types.Value
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_persist_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

let test_roundtrip_across_sessions () =
  with_temp_root (fun root ->
      (* Session 1: create data, a branch and a tag. *)
      let u1 =
        ok
          (Persistent.with_instance ~root (fun fb ->
               let ( let* ) = Result.bind in
               let* u = FB.import_csv fb ~key:"ds" "id,v\n1,a\n2,b\n" in
               let* _ = FB.fork fb ~key:"ds" ~new_branch:"dev" in
               let* () = FB.tag fb ~key:"ds" ~name:"v1" u in
               Ok u))
      in
      (* Session 2: everything is back. *)
      let fb = ok (Persistent.open_ ~root ()) in
      check bool_ "head" true (Hash.equal u1 (ok (FB.head fb ~key:"ds")));
      check bool_ "branch" true
        (Result.is_ok (FB.get fb ~branch:"dev" ~key:"ds"));
      check bool_ "tag" true
        (Hash.equal u1 (ok (FB.tag_lookup fb ~key:"ds" ~name:"v1")));
      check bool_ "history" true (List.length (ok (FB.log fb ~key:"ds")) = 1);
      check bool_ "verifies" true (Result.is_ok (FB.verify fb u1)))

let test_save_is_explicit () =
  with_temp_root (fun root ->
      let fb = ok (Persistent.open_ ~root ()) in
      ignore (ok (FB.put fb ~key:"k" (Value.string "v")));
      (* Without save, a reopened instance sees the chunks but no head. *)
      let fb2 = ok (Persistent.open_ ~root ()) in
      check bool_ "head not saved" true (Result.is_error (FB.get fb2 ~key:"k"));
      ok (Persistent.save ~root fb);
      let fb3 = ok (Persistent.open_ ~root ()) in
      check bool_ "head after save" true (Result.is_ok (FB.get fb3 ~key:"k")))

let test_failed_action_does_not_save () =
  with_temp_root (fun root ->
      (match
         Persistent.with_instance ~root (fun fb ->
             let ( let* ) = Result.bind in
             let* _ = FB.put fb ~key:"k" (Value.string "v") in
             (Error (Errors.Invalid "simulated failure") : (unit, Errors.t) result))
       with
       | Error (Errors.Invalid _) -> ()
       | _ -> Alcotest.fail "expected failure");
      (* The head must not have been persisted. *)
      let fb = ok (Persistent.open_ ~root ()) in
      check bool_ "no head" true (Result.is_error (FB.get fb ~key:"k")))

let test_corrupt_tables_rejected () =
  with_temp_root (fun root ->
      ignore
        (ok
           (Persistent.with_instance ~root (fun fb ->
                FB.put fb ~key:"k" (Value.string "v"))));
      let oc = open_out_bin (Filename.concat root "BRANCHES") in
      output_string oc "garbage";
      close_out oc;
      match Persistent.open_ ~root () with
      | Error (Errors.Corrupt _) -> ()
      | _ -> Alcotest.fail "corrupt table accepted")

let test_gc_survives_reopen () =
  with_temp_root (fun root ->
      ignore
        (ok
           (Persistent.with_instance ~root (fun fb ->
                let ( let* ) = Result.bind in
                let* _ = FB.put fb ~key:"a" (Value.string "1") in
                let* _ = FB.put fb ~key:"b" (Value.string "2") in
                FB.delete_branch fb ~key:"b" ~branch:"master")));
      let fb = ok (Persistent.open_ ~root ()) in
      let swept = (FB.gc fb).Fb_chunk.Gc.swept_chunks in
      check int_ "b swept on disk" 1 swept;
      check bool_ "a intact" true (Result.is_ok (FB.get fb ~key:"a")))

let test_crash_between_write_and_rename () =
  with_temp_root (fun root ->
      (* Save a real table, then fake a crash that died after writing the
         tmp file but before the rename published it. *)
      let fb = ok (Persistent.open_ ~root ()) in
      let u1 = ok (FB.put fb ~key:"k" (Value.string "v1")) in
      ok (Persistent.save ~fsync:true ~root fb);
      let tmp = Filename.concat root "BRANCHES.tmp" in
      let oc = open_out_bin tmp in
      output_string oc "torn garbage \x00\xff not a table";
      close_out oc;
      (* The published table wins: the orphaned tmp is never read. *)
      let fb2 = ok (Persistent.open_ ~root ()) in
      check bool_ "old head intact" true
        (Hash.equal u1 (ok (FB.head fb2 ~key:"k")));
      (* The next save atomically replaces it with fresh contents. *)
      let u2 = ok (FB.put fb2 ~key:"k" (Value.string "v2")) in
      ok (Persistent.save ~fsync:true ~root fb2);
      let fb3 = ok (Persistent.open_ ~root ()) in
      check bool_ "new head after save" true
        (Hash.equal u2 (ok (FB.head fb3 ~key:"k"))))

let test_crash_before_any_save () =
  with_temp_root (fun root ->
      (* Crash on the very first save: a tmp exists but BRANCHES never
         did.  open_ must treat the root as empty, not corrupt. *)
      let fb = ok (Persistent.open_ ~root ()) in
      ignore (ok (FB.put fb ~key:"k" (Value.string "v")));
      let oc = open_out_bin (Filename.concat root "BRANCHES.tmp") in
      output_string oc "half-written";
      close_out oc;
      let fb2 = ok (Persistent.open_ ~root ()) in
      check bool_ "no head" true (Result.is_error (FB.head fb2 ~key:"k")))

let test_fsync_save_roundtrip () =
  with_temp_root (fun root ->
      let fb = ok (Persistent.open_ ~fsync:true ~root ()) in
      let u = ok (FB.put fb ~key:"k" (Value.string "durable")) in
      ignore (ok (FB.fork fb ~key:"k" ~new_branch:"dev"));
      ok (Persistent.save ~fsync:true ~root fb);
      check bool_ "tmp not left behind" false
        (Sys.file_exists (Filename.concat root "BRANCHES.tmp")
        || Sys.file_exists (Filename.concat root "TAGS.tmp"));
      let fb2 = ok (Persistent.open_ ~root ()) in
      check bool_ "head" true (Hash.equal u (ok (FB.head fb2 ~key:"k")));
      check bool_ "branch" true
        (Result.is_ok (FB.get fb2 ~branch:"dev" ~key:"k")))

let suite =
  [ Alcotest.test_case "roundtrip across sessions" `Quick
      test_roundtrip_across_sessions;
    Alcotest.test_case "save is explicit" `Quick test_save_is_explicit;
    Alcotest.test_case "failed action does not save" `Quick
      test_failed_action_does_not_save;
    Alcotest.test_case "corrupt tables rejected" `Quick
      test_corrupt_tables_rejected;
    Alcotest.test_case "gc survives reopen" `Quick test_gc_survives_reopen;
    Alcotest.test_case "crash between write and rename" `Quick
      test_crash_between_write_and_rename;
    Alcotest.test_case "crash before any save" `Quick
      test_crash_before_any_save;
    Alcotest.test_case "fsync save roundtrip" `Quick
      test_fsync_save_roundtrip ]
