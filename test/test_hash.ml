(* Hash substrate: SHA-256 against FIPS/NIST vectors, Base32 against the
   RFC 4648 vectors, hex, SplitMix64 reference outputs, rolling-hash
   invariants. *)

open Fb_hash

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* ------------------------- SHA-256 ------------------------- *)

let sha_hex s = Hex.encode (Sha256.digest s)

let test_sha_empty () =
  check string_ "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (sha_hex "")

let test_sha_abc () =
  check string_ "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (sha_hex "abc")

let test_sha_448bits () =
  check string_ "two-block NIST vector"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha_896bits () =
  check string_ "four-block NIST vector"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (sha_hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha_million_a () =
  check string_ "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (sha_hex (String.make 1_000_000 'a'))

let test_sha_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding edges. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      (* Incremental one byte at a time must equal the one-shot digest. *)
      let ctx = Sha256.init () in
      String.iter (Sha256.update_char ctx) s;
      check string_
        (Printf.sprintf "len %d incremental" n)
        (Hex.encode (Sha256.digest s))
        (Hex.encode (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 127; 128; 1000 ]

let test_sha_update_sub () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.update_sub ctx s ~pos:0 ~len:10;
  Sha256.update_sub ctx s ~pos:10 ~len:(String.length s - 10);
  check string_ "split update" (sha_hex s) (Hex.encode (Sha256.finalize ctx));
  Alcotest.check_raises "bad range" (Invalid_argument "Sha256.update_sub")
    (fun () -> Sha256.update_sub (Sha256.init ()) "abc" ~pos:2 ~len:5)

let test_sha_digest_strings () =
  check string_ "digest_strings"
    (sha_hex "foobarbaz")
    (Hex.encode (Sha256.digest_strings [ "foo"; "bar"; "baz" ]))

let test_sha_differential () =
  (* The optimized kernel against the Int32 reference oracle: random
     contents, lengths straddling block and padding edges, random
     streaming segmentation, and the bytes/finalize_into entry points. *)
  let rng = Prng.create 0xd1ffL in
  let lengths =
    [ 0; 1; 31; 55; 56; 57; 63; 64; 65; 127; 128; 129; 191; 192; 1000;
      4096; 10_000 ]
    @ List.init 40 (fun _ -> Prng.next_int rng 3000)
  in
  List.iter
    (fun n ->
      let s = String.init n (fun _ -> Char.chr (Prng.next_int rng 256)) in
      let expect = Hex.encode (Sha256_ref.digest s) in
      check string_ (Printf.sprintf "one-shot len %d" n) expect (sha_hex s);
      (* Stream through update_bytes in random-size pieces. *)
      let ctx = Sha256.init () in
      let b = Bytes.of_string s in
      let pos = ref 0 in
      while !pos < n do
        let len = min (1 + Prng.next_int rng 200) (n - !pos) in
        Sha256.update_bytes ctx b ~pos:!pos ~len;
        pos := !pos + len
      done;
      let out = Bytes.make 40 '\xaa' in
      Sha256.finalize_into ctx out ~pos:4;
      check string_
        (Printf.sprintf "streamed len %d" n)
        expect
        (Hex.encode (Bytes.sub_string out 4 32));
      (* finalize_into must not touch bytes outside [pos, pos+32). *)
      check bool_ "no write before pos" true
        (Bytes.get out 3 = '\xaa' && Bytes.get out 36 = '\xaa'))
    lengths;
  Alcotest.check_raises "update_bytes bad range"
    (Invalid_argument "Sha256.update_bytes") (fun () ->
      Sha256.update_bytes (Sha256.init ()) (Bytes.create 3) ~pos:2 ~len:5);
  Alcotest.check_raises "finalize_into bad range"
    (Invalid_argument "Sha256.finalize_into") (fun () ->
      Sha256.finalize_into (Sha256.init ()) (Bytes.create 16) ~pos:0)

(* ------------------------- Hex ------------------------- *)

let test_hex_roundtrip () =
  let s = String.init 256 Char.chr in
  check string_ "roundtrip" s (Hex.decode_exn (Hex.encode s));
  check string_ "known" "00ff10" (Hex.encode "\x00\xff\x10")

let test_hex_errors () =
  check bool_ "odd length" true (Result.is_error (Hex.decode "abc"));
  check bool_ "bad char" true (Result.is_error (Hex.decode "zz"));
  check bool_ "uppercase ok" true (Hex.decode "AB" = Ok "\xab")

(* ------------------------- Base32 ------------------------- *)

(* RFC 4648 §10 test vectors. *)
let rfc4648_vectors =
  [ ("", "");
    ("f", "MY======");
    ("fo", "MZXQ====");
    ("foo", "MZXW6===");
    ("foob", "MZXW6YQ=");
    ("fooba", "MZXW6YTB");
    ("foobar", "MZXW6YTBOI======") ]

let test_base32_rfc () =
  List.iter
    (fun (plain, encoded) ->
      check string_ ("encode " ^ plain) encoded (Base32.encode plain);
      check string_ ("decode " ^ encoded) plain (Base32.decode_exn encoded))
    rfc4648_vectors

let test_base32_no_pad_and_lowercase () =
  check string_ "no padding accepted" "foobar" (Base32.decode_exn "MZXW6YTBOI");
  check string_ "lowercase accepted" "foobar" (Base32.decode_exn "mzxw6ytboi");
  check string_ "encode unpadded" "MZXW6YTBOI" (Base32.encode ~pad:false "foobar")

let test_base32_errors () =
  check bool_ "bad char" true (Result.is_error (Base32.decode "M1======"));
  check bool_ "truncated" true (Result.is_error (Base32.decode "M"));
  check bool_ "non-canonical bits" true (Result.is_error (Base32.decode "MZ"))

(* ------------------------- Prng ------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 123L and b = Prng.create 123L in
  for _ = 1 to 100 do
    check bool_ "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_reference () =
  (* SplitMix64 reference output for seed 1234567, cross-computed from the
     public-domain reference algorithm. *)
  let rng = Prng.create 1234567L in
  check string_ "first" "599ed017fb08fc85"
    (Printf.sprintf "%Lx" (Prng.next_int64 rng))

let test_prng_bounds () =
  let rng = Prng.create 5L in
  for _ = 1 to 1000 do
    let v = Prng.next_int rng 17 in
    check bool_ "in range" true (v >= 0 && v < 17);
    let f = Prng.next_float rng in
    check bool_ "float range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.next_int: bound must be positive") (fun () ->
      ignore (Prng.next_int rng 0))

let test_prng_split () =
  let a = Prng.create 99L in
  let b = Prng.split a in
  check bool_ "split independent" true (Prng.next_int64 a <> Prng.next_int64 b)

(* ------------------------- Rolling ------------------------- *)

let test_rolling_window_dependence () =
  (* The state after feeding a long prefix must equal the state after
     feeding only the last [window] bytes: boundaries depend on local
     content only. *)
  let params = Rolling.default_node_params in
  let rng = Prng.create 31L in
  let s = String.init 4096 (fun _ -> Char.chr (Prng.next_int rng 256)) in
  let suffix = String.sub s (4096 - params.window) params.window in
  let t1 = Rolling.create params in
  let h1 = Rolling.feed_string t1 s in
  ignore h1;
  let t2 = Rolling.create params in
  ignore (Rolling.feed_string t2 suffix);
  (* Compare by extending both with the same probe bytes and checking hit
     agreement for many probes. *)
  let probes = String.init 512 (fun _ -> Char.chr (Prng.next_int rng 256)) in
  String.iter
    (fun c ->
      check bool_ "same hit decisions" (Rolling.feed t2 c) (Rolling.feed t1 c))
    probes

let test_rolling_hit_rate () =
  let params = Rolling.default_node_params in
  let rng = Prng.create 77L in
  let n = 1_000_000 in
  let s = String.init n (fun _ -> Char.chr (Prng.next_int rng 256)) in
  let hits = List.length (Rolling.hits_in params s) in
  let expected = n / (1 lsl params.q) in
  check bool_
    (Printf.sprintf "hit rate %d ~ %d" hits expected)
    true
    (hits > expected / 2 && hits < expected * 2)

let test_rolling_reset () =
  let params = Rolling.default_node_params in
  let t = Rolling.create params in
  ignore (Rolling.feed_string t "some bytes to pollute the state");
  Rolling.reset t;
  let t' = Rolling.create params in
  let probe = String.init 256 (fun i -> Char.chr ((i * 37) land 0xff)) in
  String.iter
    (fun c -> check bool_ "reset = fresh" (Rolling.feed t' c) (Rolling.feed t c))
    probe

let test_rolling_validation () =
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Rolling.create: window must be >= 1") (fun () ->
      ignore (Rolling.create { Rolling.window = 0; q = 10 }));
  Alcotest.check_raises "q range"
    (Invalid_argument "Rolling.create: q must be in [1, 30]") (fun () ->
      ignore (Rolling.create { Rolling.window = 8; q = 31 }))

(* ------------------------- Hash module ------------------------- *)

let test_hash_module () =
  let h = Hash.of_string "hello" in
  check int_ "size" 32 (String.length (Hash.to_raw h));
  check bool_ "hex roundtrip" true (Hash.of_hex (Hash.to_hex h) = Ok h);
  check bool_ "base32 roundtrip" true (Hash.of_base32 (Hash.to_base32 h) = Ok h);
  check bool_ "of_strings" true
    (Hash.equal (Hash.of_strings [ "he"; "llo" ]) h);
  check bool_ "of_raw" true (Hash.of_raw (Hash.to_raw h) = Ok h);
  check bool_ "of_raw bad" true (Result.is_error (Hash.of_raw "short"));
  check int_ "short len" 12 (String.length (Hash.short h));
  check bool_ "compare consistent" true
    (Hash.compare h (Hash.of_string "hello") = 0)

let test_hash_tbl () =
  let tbl = Hash.Tbl.create 16 in
  let hs = List.init 100 (fun i -> Hash.of_string (string_of_int i)) in
  List.iteri (fun i h -> Hash.Tbl.replace tbl h i) hs;
  List.iteri
    (fun i h -> check bool_ "tbl find" true (Hash.Tbl.find_opt tbl h = Some i))
    hs

(* ------------------------- properties ------------------------- *)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"hex roundtrip" ~count:200 (string_gen Gen.char)
      (fun s -> Hex.decode (Hex.encode s) = Ok s);
    Test.make ~name:"base32 roundtrip (padded)" ~count:200
      (string_gen Gen.char)
      (fun s -> Base32.decode (Base32.encode s) = Ok s);
    Test.make ~name:"base32 roundtrip (unpadded)" ~count:200
      (string_gen Gen.char)
      (fun s -> Base32.decode (Base32.encode ~pad:false s) = Ok s);
    Test.make ~name:"sha256 incremental = one-shot" ~count:100
      (pair (string_gen Gen.char) (string_gen Gen.char))
      (fun (a, b) ->
        let ctx = Sha256.init () in
        Sha256.update ctx a;
        Sha256.update ctx b;
        String.equal (Sha256.finalize ctx) (Sha256.digest (a ^ b)));
    Test.make ~name:"sha256 = reference oracle" ~count:200
      (string_gen Gen.char)
      (fun s -> String.equal (Sha256.digest s) (Sha256_ref.digest s));
    Test.make ~name:"rolling: feed_string = per-byte feed" ~count:200
      (pair (list (string_gen Gen.char)) (int_range 0 1_000_000))
      (fun (segments, seed) ->
        (* Same byte stream, arbitrary segmentation: the fused fast path
           must report the same per-segment hits and leave the roller in
           the same state as feeding every byte through [feed].  Small
           window/q so patterns actually fire on short inputs. *)
        ignore seed;
        let params = { Rolling.window = 5; q = 4 } in
        let fast = Rolling.create params in
        let slow = Rolling.create params in
        List.for_all
          (fun seg ->
            let hf = Rolling.feed_string fast seg in
            let hs = ref false in
            String.iter (fun c -> if Rolling.feed slow c then hs := true) seg;
            hf = !hs && Rolling.fingerprint fast = Rolling.fingerprint slow)
          segments);
    Test.make ~name:"rolling: hits depend only on trailing window"
      ~count:100
      (pair (string_gen Gen.char) small_string)
      (fun (prefix, tail) ->
        let params = { Rolling.window = 8; q = 6 } in
        (* Hits inside [tail] beyond the window must agree no matter the
           prefix, once at least window bytes of tail have been seen. *)
        let hits_with p =
          let t = Rolling.create params in
          ignore (Rolling.feed_string t p);
          let acc = ref [] in
          String.iteri (fun i c -> if Rolling.feed t c then acc := i :: !acc) tail;
          List.filter (fun i -> i >= params.window) !acc
        in
        hits_with prefix = hits_with "")
  ]

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_cases
  @ [ Alcotest.test_case "sha256 empty" `Quick test_sha_empty;
      Alcotest.test_case "sha256 abc" `Quick test_sha_abc;
      Alcotest.test_case "sha256 448-bit vector" `Quick test_sha_448bits;
      Alcotest.test_case "sha256 896-bit vector" `Quick test_sha_896bits;
      Alcotest.test_case "sha256 million a" `Slow test_sha_million_a;
      Alcotest.test_case "sha256 block boundaries" `Quick
        test_sha_block_boundaries;
      Alcotest.test_case "sha256 update_sub" `Quick test_sha_update_sub;
      Alcotest.test_case "sha256 digest_strings" `Quick
        test_sha_digest_strings;
      Alcotest.test_case "sha256 differential vs reference" `Quick
        test_sha_differential;
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "hex errors" `Quick test_hex_errors;
      Alcotest.test_case "base32 rfc vectors" `Quick test_base32_rfc;
      Alcotest.test_case "base32 relaxed decode" `Quick
        test_base32_no_pad_and_lowercase;
      Alcotest.test_case "base32 errors" `Quick test_base32_errors;
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng reference" `Quick test_prng_reference;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "prng split" `Quick test_prng_split;
      Alcotest.test_case "rolling window dependence" `Quick
        test_rolling_window_dependence;
      Alcotest.test_case "rolling hit rate" `Slow test_rolling_hit_rate;
      Alcotest.test_case "rolling reset" `Quick test_rolling_reset;
      Alcotest.test_case "rolling validation" `Quick test_rolling_validation;
      Alcotest.test_case "hash module" `Quick test_hash_module;
      Alcotest.test_case "hash table" `Quick test_hash_tbl ]
