(* Request/response service view (the RESTful-layer substitute). *)

module FB = Fb_core.Forkbase
module Service = Fb_core.Service
module Acl = Fb_core.Acl

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let fresh () = FB.create (Fb_chunk.Mem_store.create ())

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let expect_ok fb req =
  let resp = Service.handle fb req in
  if not (starts_with "OK" resp) then
    Alcotest.failf "request %S -> %s" req resp;
  if String.length resp > 3 then String.sub resp 3 (String.length resp - 3)
  else ""

let expect_err fb req =
  let resp = Service.handle fb req in
  check bool_ ("ERR for " ^ req) true (starts_with "ERR" resp)

(* ---------------- tokenizer ---------------- *)

let test_tokenize () =
  check bool_ "plain" true (Service.tokenize "a b c" = Ok [ "a"; "b"; "c" ]);
  check bool_ "extra blanks" true (Service.tokenize "  a\t b " = Ok [ "a"; "b" ]);
  check bool_ "quoted" true
    (Service.tokenize "put k \"two words\"" = Ok [ "put"; "k"; "two words" ]);
  check bool_ "escaped quote" true
    (Service.tokenize "say \"a \\\" b\"" = Ok [ "say"; "a \" b" ]);
  check bool_ "empty arg" true (Service.tokenize "x \"\" y" = Ok [ "x"; ""; "y" ]);
  check bool_ "unterminated" true (Result.is_error (Service.tokenize "\"oops"));
  check bool_ "empty line" true (Service.tokenize "" = Ok []);
  (* Adjacent quoted/plain runs join into one token, shell-style. *)
  check bool_ "quote then plain" true (Service.tokenize "\"ab\"cd" = Ok [ "abcd" ]);
  check bool_ "plain then quote" true (Service.tokenize "a\"\"b" = Ok [ "ab" ]);
  check bool_ "two empty quotes" true (Service.tokenize "\"\"\"\"" = Ok [ "" ]);
  check bool_ "mixed runs" true
    (Service.tokenize "pre\"mid dle\"post x" = Ok [ "premid dlepost"; "x" ])

(* ---------------- verbs ---------------- *)

let test_put_get_roundtrip () =
  let fb = fresh () in
  let uid = expect_ok fb "PUT greeting master \"hello world\"" in
  check bool_ "uid is base32" true (Result.is_ok (FB.parse_version uid));
  check string_ "get" "hello world" (expect_ok fb "GET greeting master");
  check string_ "get-at" "hello world" (expect_ok fb ("GET-AT " ^ uid));
  check string_ "head" uid (expect_ok fb "HEAD greeting master")

let test_csv_branch_diff_merge () =
  let fb = fresh () in
  ignore (expect_ok fb "PUT-CSV ds master \"id,v\n1,x\n2,y\n\"");
  ignore (expect_ok fb "BRANCH ds master dev");
  ignore (expect_ok fb "PUT-CSV ds dev \"id,v\n1,x\n2,z\n\"");
  let diff = expect_ok fb "DIFF ds master dev" in
  check bool_ "diff mentions change" true (Tutil.contains diff "1 modified");
  ignore (expect_ok fb "MERGE ds master dev");
  check bool_ "merged" true
    (Tutil.contains (expect_ok fb "GET ds master") "2,z");
  let verify = expect_ok fb "VERIFY ds master" in
  check bool_ "verify counts" true (Tutil.contains verify "versions");
  let stat = expect_ok fb "STAT" in
  check bool_ "stat" true (Tutil.contains stat "keys=1");
  check bool_ "list" true (expect_ok fb "LIST" = "ds");
  check bool_ "latest lines" true
    (Tutil.contains (expect_ok fb "LATEST ds") "master");
  check bool_ "log lines" true
    (Tutil.contains (expect_ok fb "LOG ds master") " 1 ")

let test_json_verbs () =
  let fb = fresh () in
  ignore (expect_ok fb "PUT-CSV ds master \"id,v\n1,x\n2,y\n\"");
  ignore (expect_ok fb "BRANCH ds master dev");
  ignore (expect_ok fb "PUT-CSV ds dev \"id,v\n1,x\n2,z\n\"");
  let parse s =
    match Fb_types.Json.parse s with
    | Ok v -> v
    | Error e -> Alcotest.failf "bad json %s: %s" s e
  in
  let gj = parse (expect_ok fb "GET-JSON ds master") in
  check bool_ "value type" true
    (Fb_types.Json.member "type" gj = Some (Fb_types.Json.String "table"));
  let dj = parse (expect_ok fb "DIFF-JSON ds master dev") in
  check bool_ "diff kind" true
    (Fb_types.Json.member "kind" dj = Some (Fb_types.Json.String "table"));
  (match parse (expect_ok fb "LOG-JSON ds dev") with
   | Fb_types.Json.Array entries -> check bool_ "log len" true (List.length entries = 2)
   | _ -> Alcotest.fail "log not an array");
  let sj = parse (expect_ok fb "STAT-JSON") in
  check bool_ "stats" true
    (Fb_types.Json.member "keys" sj = Some (Fb_types.Json.int 1));
  (match parse (expect_ok fb "LATEST-JSON ds") with
   | Fb_types.Json.Object heads -> check bool_ "branches" true (List.length heads = 2)
   | _ -> Alcotest.fail "latest not an object")

let test_prove_verb () =
  let fb = fresh () in
  ignore (expect_ok fb "PUT-CSV ledger master \"id,v\n1,x\n\"");
  let hex = expect_ok fb "PROVE ledger master 1" in
  let proof =
    match Fb_hash.Hex.decode hex with
    | Ok raw -> (
      match FB.decode_entry_proof raw with
      | Ok p -> p
      | Error e -> Alcotest.fail (Fb_core.Errors.to_string e))
    | Error e -> Alcotest.fail e
  in
  let uid =
    match FB.parse_version (expect_ok fb "HEAD ledger master") with
    | Ok u -> u
    | Error e -> Alcotest.fail (Fb_core.Errors.to_string e)
  in
  (match FB.verify_entry_proof ~uid ~key:"ledger" ~entry_key:"1" proof with
   | Ok (Some _) -> ()
   | _ -> Alcotest.fail "proof did not verify");
  expect_err fb "PROVE missing master 1"

let test_errors () =
  let fb = fresh () in
  expect_err fb "";
  expect_err fb "NOSUCHVERB a b";
  expect_err fb "GET missing master";
  expect_err fb "PUT onlykey";
  expect_err fb "GET-AT notaversion";
  expect_err fb "\"unterminated"

let test_user_threading () =
  let acl = Acl.create () in
  Acl.grant acl ~user:"writer" ~key:"*" ~branch:"*" Acl.Admin;
  let fb = FB.create ~acl (Fb_chunk.Mem_store.create ()) in
  let resp = Service.handle ~user:"writer" fb "PUT k master v" in
  check bool_ "writer ok" true (starts_with "OK" resp);
  let resp2 = Service.handle ~user:"reader" fb "PUT k master v" in
  check bool_ "reader denied" true (starts_with "ERR" resp2)

let suite =
  [ Alcotest.test_case "tokenize" `Quick test_tokenize;
    Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
    Alcotest.test_case "csv/branch/diff/merge" `Quick
      test_csv_branch_diff_merge;
    Alcotest.test_case "json verbs" `Quick test_json_verbs;
    Alcotest.test_case "prove verb" `Quick test_prove_verb;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "user threading" `Quick test_user_threading ]
