(* Request pipelining (sequence-id tagged frames, out-of-order replies),
   the Mux demultiplexing client, event-loop backpressure, SUBSCRIBE
   push delivery and the Remote reconnect policy. *)

module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Frame = Fb_net.Frame
module Client = Fb_net.Client
module Mux = Fb_net.Mux
module Remote = Fb_net.Remote
module Server = Fb_net.Server
module Obs = Fb_obs.Obs

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok_fb = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let ok_net = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let ok_cl = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Client.error_to_string e)

let test_config =
  { Server.default_config with port = 0; save_every_s = 0.0 }

let with_server ?(config = test_config) fb f =
  let srv = ok_net (Server.start ~config fb) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_mux ?user srv f =
  let m = ok_cl (Mux.connect ?user ~port:(Server.port srv) ()) in
  Fun.protect ~finally:(fun () -> Mux.close m) (fun () -> f m)

(* Wait (bounded) for a cross-thread condition instead of sleeping a
   fixed amount: push delivery is asynchronous by design. *)
let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ---------------- sequence-id codec ---------------- *)

let request_gen =
  let open QCheck.Gen in
  let tokens = small_list (string_size (0 -- 100)) in
  oneof
    [ map (fun t -> Frame.Single t) tokens;
      map (fun b -> Frame.Batch b) (small_list tokens) ]

let trace_gen =
  QCheck.Gen.(
    opt
      (map2
         (fun trace_id parent_span -> { Frame.trace_id; parent_span })
         (string_size (0 -- 40))
         (map2 (fun sign n -> if sign then n else -n - 1) bool
            (int_bound ((1 lsl 30) - 1)))))

let seq_gen = QCheck.Gen.(opt (int_bound ((1 lsl 30) - 1)))

(* Any combination of the two optional headers — absent, trace only, seq
   only, both — must round-trip exactly; the flag bits are independent. *)
let qcheck_seq_roundtrip =
  QCheck.Test.make ~count:400
    ~name:"sequence-id request header round-trip (all flag combinations)"
    (QCheck.make
       QCheck.Gen.(
         quad (string_size (0 -- 20)) trace_gen seq_gen request_gen))
    (fun (user, trace, seq, req) ->
      match
        Frame.decode_request (Frame.encode_request ~user ?trace ?seq req)
      with
      | Ok (u, t, s, r) ->
        String.equal u user && t = trace && s = seq && r = req
      | Error _ -> false)

let reply_gen =
  QCheck.Gen.(
    oneof
      [ map Result.ok (string_size (0 -- 200));
        map (fun m -> Error (Errors.Invalid m)) (string_size (0 -- 40)) ])

let qcheck_response_seq_roundtrip =
  QCheck.Test.make ~count:400 ~name:"sequence-id response echo round-trip"
    (QCheck.make QCheck.Gen.(triple trace_gen seq_gen reply_gen))
    (fun (trace, seq, reply) ->
      match
        Frame.decode_response
          (Frame.encode_response ?trace ?seq (Frame.One reply))
      with
      | Ok (t, s, Frame.One r) -> t = trace && s = seq && r = reply
      | _ -> false)

let event_gen =
  let open QCheck.Gen in
  let s = string_size (0 -- 40) in
  map
    (fun (sub_id, ev_key, ev_branch, (new_head, old_head)) ->
      { Frame.sub_id; ev_key; ev_branch; new_head; old_head })
    (quad (int_bound ((1 lsl 30) - 1)) s s (pair s (opt s)))

let qcheck_event_roundtrip =
  QCheck.Test.make ~count:300 ~name:"event frame encode/decode round-trip"
    (QCheck.make QCheck.Gen.(pair trace_gen event_gen))
    (fun (trace, ev) ->
      match
        Frame.decode_response (Frame.encode_response ?trace (Frame.Event ev))
      with
      | Ok (t, None, Frame.Event e) -> t = trace && e = ev
      | _ -> false)

(* A header-less v2 response (bare kind byte, written by hand) still
   decodes with both headers absent — the pre-pipelining wire form. *)
let test_headerless_response_compat () =
  let open Fb_codec.Codec in
  let payload =
    to_string
      (fun w () ->
        u8 w 0 (* One, no flags *);
        u8 w 0 (* status ok *);
        bytes w "payload")
      ()
  in
  match Frame.decode_response payload with
  | Ok (None, None, Frame.One (Ok "payload")) -> ()
  | Ok _ -> Alcotest.fail "header-less response misparsed"
  | Error e -> Alcotest.failf "header-less response rejected: %s" e

(* ---------------- protocol-level demux (hand-rolled peer) ---------------- *)

(* A scripted server: accept one connection, run [logic] on it.  Lets
   the tests control reply order and reply tags exactly. *)
let with_fake_server logic f =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  let th =
    Thread.create
      (fun () ->
        match Unix.accept lfd with
        | fd, _ ->
          (try logic fd with _ -> ());
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f port)

let read_tagged_single fd =
  match Frame.read_frame ~timeout_s:5.0 fd with
  | Ok p -> (
    match Frame.decode_request p with
    | Ok (_, _, Some seq, Frame.Single [ tok ]) -> (seq, tok)
    | _ -> Alcotest.fail "fake server: expected a tagged single request")
  | Error e -> Alcotest.fail (Frame.error_to_string e)

let send_reply fd ~seq payload =
  match
    Frame.write_frame fd
      (Frame.encode_response ~seq (Frame.One (Ok payload)))
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Frame.error_to_string e)

(* Replies delivered in the reverse of request order must still land on
   the right callers — the demux matches by sequence id, not arrival
   order. *)
let test_out_of_order_replies () =
  with_fake_server
    (fun fd ->
      let s1, t1 = read_tagged_single fd in
      let s2, t2 = read_tagged_single fd in
      send_reply fd ~seq:s2 ("echo:" ^ t2);
      send_reply fd ~seq:s1 ("echo:" ^ t1))
    (fun port ->
      let m = ok_cl (Mux.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Mux.close m)
        (fun () ->
          let ta = ok_cl (Mux.send m (Frame.Single [ "alpha" ])) in
          let tb = ok_cl (Mux.send m (Frame.Single [ "beta" ])) in
          (* Await the FIRST request first even though its reply arrives
             last: matching is by tag. *)
          (match Mux.await m ta with
           | Ok (Frame.One (Ok p)) -> check string_ "first reply" "echo:alpha" p
           | _ -> Alcotest.fail "first await failed");
          match Mux.await m tb with
          | Ok (Frame.One (Ok p)) -> check string_ "second reply" "echo:beta" p
          | _ -> Alcotest.fail "second await failed"))

(* A reply tagged with a sequence id the client never issued is a
   protocol violation: the connection must be poisoned, failing the
   outstanding request rather than hanging it. *)
let test_unknown_sequence_rejected () =
  with_fake_server
    (fun fd ->
      let seq, _ = read_tagged_single fd in
      send_reply fd ~seq:(seq + 999) "stray";
      (* Hold the connection open: the poison must come from the stray
         tag, not from EOF. *)
      ignore (Frame.read_frame ~timeout_s:5.0 fd))
    (fun port ->
      let m = ok_cl (Mux.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Mux.close m)
        (fun () ->
          let t = ok_cl (Mux.send m (Frame.Single [ "hello" ])) in
          (match Mux.await m t with
           | Error (Mux.Transport msg) ->
             check bool_ "names the violation" true
               (Tutil.contains msg "unknown sequence")
           | Ok _ -> Alcotest.fail "stray-tagged reply accepted"
           | Error e -> Alcotest.fail (Client.error_to_string e));
          check bool_ "connection poisoned" false (Mux.is_open m)))

(* ---------------- pipelining against the real server ---------------- *)

let test_pipelined_depth () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_mux srv (fun m ->
          ignore (ok_cl (Mux.request m [ "put"; "k"; "master"; "seed" ]));
          (* Issue a deep pipeline of tagged requests, then await the
             tickets in reverse: every reply must match its own request. *)
          let depth = 64 in
          let tickets =
            List.init depth (fun i ->
                ( i,
                  ok_cl
                    (Mux.send m
                       (Frame.Single
                          [ "put"; "k"; "master"; Printf.sprintf "v%d" i ])) ))
          in
          List.iter
            (fun (_, tk) ->
              match Mux.await m tk with
              | Ok (Frame.One (Ok uid)) ->
                check bool_ "uid parses" true
                  (Result.is_ok (FB.parse_version uid))
              | _ -> Alcotest.fail "pipelined put failed")
            (List.rev tickets);
          (* Interleaved reads/writes across threads over one socket. *)
          let errors = Atomic.make 0 in
          let threads =
            List.init 4 (fun tid ->
                Thread.create
                  (fun () ->
                    for i = 0 to 24 do
                      let key = Printf.sprintf "t%d" tid in
                      let v = Printf.sprintf "%d-%d" tid i in
                      (match Mux.request m [ "put"; key; "master"; v ] with
                       | Ok _ -> ()
                       | Error _ -> Atomic.incr errors);
                      match Mux.request m [ "get"; key; "master" ] with
                      | Ok got when got = v -> ()
                      | _ -> Atomic.incr errors
                    done)
                  ())
          in
          List.iter Thread.join threads;
          check int_ "no pipelined errors" 0 (Atomic.get errors)))

(* ---------------- backpressure ---------------- *)

(* A greedy peer pipelines many large reads and never drains its socket:
   the server must cap the connection's outbox (stop reading — the
   high-water mark proves the cap engaged) and eventually cut the
   stalled connection loose, staying healthy for everyone else. *)
let test_slow_reader_backpressure () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config =
    { test_config with max_outbox = 32_768; write_stall_s = 0.5 }
  in
  with_server ~config fb (fun srv ->
      let port = Server.port srv in
      let big = String.make 65_536 'x' in
      with_mux srv (fun m ->
          ignore (ok_cl (Mux.request m [ "put"; "big"; "master"; big ])));
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (* A tiny receive buffer (set before connect so the window is
         negotiated small) keeps the kernel from absorbing the reply
         flood on our behalf — the congestion must land on the server. *)
      Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.set_nonblock fd;
          (* Fire tagged GETs without ever reading a reply; stop early if
             our own send buffer fills (the server stopped reading). *)
          (try
             for i = 1 to 300 do
               let wire =
                 Frame.encode_frame
                   (Frame.encode_request ~user:"greedy" ~seq:i
                      (Frame.Single [ "get"; "big"; "master" ]))
               in
               ignore
                 (Unix.write fd (Bytes.unsafe_of_string wire) 0
                    (String.length wire))
             done
           with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
          (* Crucially: do NOT read.  Reading would reopen the TCP window
             and unstick the server.  The write-stall deadline must cut
             the connection loose on its own — observable as the loop's
             connection count dropping to zero (ours was the only one). *)
          check bool_ "stalled connection disconnected by the server" true
            (eventually ~timeout:10.0 (fun () ->
                 match Server.loop_stats srv with
                 | Some ls -> ls.Server.ls_conns = 0
                 | None -> false));
          (* And the socket really is dead: a bounded drain of whatever
             was buffered ends in EOF or a reset, never fresh data
             forever. *)
          let buf = Bytes.create 65536 in
          (* Generous: under a fully loaded test machine the kernel can
             take a while to hand us the backlog before the EOF. *)
          let deadline = Unix.gettimeofday () +. 20.0 in
          let rec drain () =
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "peer socket still alive after disconnect"
            else
              match Unix.select [ fd ] [] [] 0.25 with
              | [], _, _ -> drain ()
              | _ -> (
                match Unix.read fd buf 0 65536 with
                | 0 -> ()  (* disconnected: what backpressure promises *)
                | _ -> drain ()
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  ()
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                  ->
                  drain ())
          in
          drain ());
      (* The outbox bound actually engaged... *)
      (match Server.loop_stats srv with
       | Some ls ->
         check bool_ "outbox high-water mark reached the cap" true
           (ls.Server.ls_outbox_hwm >= config.Server.max_outbox)
       | None -> Alcotest.fail "event server reports no loop stats");
      (* ...and the server is still healthy for well-behaved clients. *)
      with_mux srv (fun m ->
          check int_ "value intact after the stall" (String.length big)
            (String.length (ok_cl (Mux.request m [ "get"; "big"; "master" ])))))

(* ---------------- SUBSCRIBE push ---------------- *)

let test_subscribe_push_under_load () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let port = Server.port srv in
      with_mux srv (fun m ->
          let mu = Mutex.create () in
          let received = ref [] in
          let sid =
            ok_cl
              (Mux.subscribe ~key:"k1" m (fun trace ev ->
                   Mutex.protect mu (fun () ->
                       received := (trace, ev) :: !received)))
          in
          (* Load: three writers on three keys; only k1 must reach us. *)
          let writes = 20 in
          let writers =
            List.init 3 (fun w ->
                Thread.create
                  (fun () ->
                    let c = ok_cl (Client.connect ~port ()) in
                    let key = Printf.sprintf "k%d" w in
                    for i = 1 to writes do
                      ignore
                        (ok_cl
                           (Client.request c
                              [ "put"; key; "master"; string_of_int i ]))
                    done;
                    Client.close c)
                  ())
          in
          List.iter Thread.join writers;
          check bool_ "all k1 events delivered" true
            (eventually (fun () ->
                 Mutex.protect mu (fun () -> List.length !received) = writes));
          let evs = Mutex.protect mu (fun () -> List.rev !received) in
          List.iter
            (fun (trace, (ev : Frame.event)) ->
              check string_ "event key" "k1" ev.Frame.ev_key;
              check string_ "event branch" "master" ev.Frame.ev_branch;
              check int_ "event tagged with our subscription" sid
                ev.Frame.sub_id;
              check bool_ "head parses" true
                (Result.is_ok (FB.parse_version ev.Frame.new_head));
              (* The push carries the *writer's* trace context, so it can
                 be correlated with the mutating request in /tracez. *)
              match trace with
              | Some t ->
                check int_ "trace id is well-formed" 32
                  (String.length t.Frame.trace_id)
              | None -> Alcotest.fail "event lost its trace context")
            evs;
          (* The last event's head IS the final head. *)
          let final = ok_fb (FB.head fb ~key:"k1") in
          let _, (last : Frame.event) = List.nth evs (writes - 1) in
          check bool_ "last event carries the final head" true
            (Fb_hash.Hash.equal final
               (ok_fb (FB.parse_version last.Frame.new_head)));
          (* Unsubscribe stops delivery. *)
          ok_cl (Mux.unsubscribe m sid);
          let before = Mutex.protect mu (fun () -> List.length !received) in
          with_mux srv (fun m2 ->
              ignore (ok_cl (Mux.request m2 [ "put"; "k1"; "master"; "after" ])));
          Thread.delay 0.3;
          check int_ "no delivery after unsubscribe" before
            (Mutex.protect mu (fun () -> List.length !received))))

(* The typed Remote layer: events arrive as Forkbase.head_event with
   parsed uids, the same vocabulary as the local watch API. *)
let test_remote_subscribe () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let r =
        match Remote.connect ~port:(Server.port srv) () with
        | Ok r -> r
        | Error e -> Alcotest.fail (Errors.to_string e)
      in
      Fun.protect
        ~finally:(fun () -> Remote.close r)
        (fun () ->
          let mu = Mutex.create () in
          let got = ref [] in
          let sub =
            ok_fb
              (Remote.subscribe ~key:"watched" r (fun ev ->
                   Mutex.protect mu (fun () -> got := ev :: !got)))
          in
          let uid = ok_fb (Remote.put r ~key:"watched" "v1") in
          ignore (ok_fb (Remote.put r ~key:"ignored" "x"));
          check bool_ "event arrives" true
            (eventually (fun () ->
                 Mutex.protect mu (fun () -> !got <> [])));
          (match Mutex.protect mu (fun () -> !got) with
           | [ (ev : FB.head_event) ] ->
             check string_ "key" "watched" ev.FB.key;
             check string_ "branch" "master" ev.FB.branch;
             check bool_ "uid matches the put" true
               (Fb_hash.Hash.equal uid ev.FB.new_head);
             check bool_ "first put has no old head" true (ev.FB.old_head = None)
           | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
          ok_fb (Remote.unsubscribe r sub)))

(* Threaded mode has no push path and must say so, typed. *)
let test_subscribe_rejected_threaded () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with mode = `Threaded } in
  with_server ~config fb (fun srv ->
      check bool_ "threaded server reports no loop stats" true
        (Server.loop_stats srv = None);
      with_mux srv (fun m ->
          match Mux.subscribe ~key:"k" m (fun _ _ -> ()) with
          | Error (Mux.Remote (Errors.Invalid msg)) ->
            check bool_ "points at the event loop" true
              (Tutil.contains msg "event-loop")
          | Ok _ -> Alcotest.fail "threaded server accepted subscribe"
          | Error e -> Alcotest.fail (Client.error_to_string e)))

(* ---------------- transparent reconnect ---------------- *)

let test_remote_reconnect () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let srv1 = ok_net (Server.start ~config:test_config fb) in
  let port = Server.port srv1 in
  let r =
    match Remote.connect ~port () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Errors.to_string e)
  in
  Fun.protect
    ~finally:(fun () -> Remote.close r)
    (fun () ->
      ignore (ok_fb (Remote.put r ~key:"k" "v1"));
      check string_ "pre-restart" "v1" (ok_fb (Remote.get r ~key:"k"));
      (* Tear the transport under the handle, then bring a server back on
         the same port. *)
      Server.stop srv1;
      let srv2 =
        ok_net (Server.start ~config:{ test_config with port } fb)
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv2)
        (fun () ->
          (* An idempotent read reconnects transparently... *)
          check string_ "read after restart" "v1"
            (ok_fb (Remote.get r ~key:"k"));
          (* ...and the handle is fully alive again: writes work. *)
          ignore (ok_fb (Remote.put r ~key:"k" "v2"));
          check string_ "write after reconnect" "v2"
            (ok_fb (Remote.get r ~key:"k"))));
  (* A mutating verb must NOT be replayed over a dead transport: it
     surfaces Transient for the caller to decide. *)
  let srv3 = ok_net (Server.start ~config:test_config fb) in
  let port3 = Server.port srv3 in
  let r3 =
    match Remote.connect ~port:port3 () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Errors.to_string e)
  in
  Fun.protect
    ~finally:(fun () -> Remote.close r3)
    (fun () ->
      ignore (ok_fb (Remote.put r3 ~key:"w" "1"));
      Server.stop srv3;
      let srv4 =
        ok_net (Server.start ~config:{ test_config with port = port3 } fb)
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv4)
        (fun () ->
          (match Remote.put r3 ~key:"w" "2" with
           | Error (Errors.Transient msg) ->
             check bool_ "network-tagged" true (Tutil.contains msg "network")
           | Ok _ -> Alcotest.fail "write was silently replayed"
           | Error e -> Alcotest.fail (Errors.to_string e));
          (* The next read heals the handle; the write was not applied
             twice (head history shows exactly one "1" put + whatever
             the healed client does next). *)
          check string_ "read heals" "1" (ok_fb (Remote.get r3 ~key:"w"))))

(* ---------------- push racing the subscribe reply ---------------- *)

(* The window documented in mux.mli: a kind-2 push for a new
   subscription can arrive immediately behind the SUBSCRIBE reply — in
   the same TCP segment.  The reader thread installs the callback at
   reply-completion time, before decoding the next frame, so the push
   must be delivered, never dropped. *)
let test_push_races_subscribe_reply () =
  with_fake_server
    (fun fd ->
      let seq =
        match Frame.read_frame ~timeout_s:5.0 fd with
        | Ok p -> (
          match Frame.decode_request p with
          | Ok (_, _, Some seq, Frame.Single ("subscribe" :: _)) -> seq
          | _ -> Alcotest.fail "fake server: expected a tagged subscribe")
        | Error e -> Alcotest.fail (Frame.error_to_string e)
      in
      (* Reply and push in ONE write so both land in one segment: the
         client cannot see a gap between them. *)
      let wire =
        Frame.encode_frame
          (Frame.encode_response ~seq (Frame.One (Ok "7")))
        ^ Frame.encode_frame
            (Frame.encode_response
               (Frame.Event
                  { Frame.sub_id = 7; ev_key = "k"; ev_branch = "master";
                    new_head = "deadbeef"; old_head = None }))
      in
      ignore (Unix.write_substring fd wire 0 (String.length wire));
      (* Hold the connection open: a drop must not be masked by EOF. *)
      ignore (Frame.read_frame ~timeout_s:5.0 fd))
    (fun port ->
      let m = ok_cl (Mux.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Mux.close m)
        (fun () ->
          let mu = Mutex.create () in
          let got = ref [] in
          let sid =
            ok_cl
              (Mux.subscribe ~key:"k" m (fun _ ev ->
                   Mutex.protect mu (fun () -> got := ev :: !got)))
          in
          check int_ "server-assigned sid" 7 sid;
          check bool_ "the racing push is delivered, not dropped" true
            (eventually (fun () -> Mutex.protect mu (fun () -> !got <> [])));
          match Mutex.protect mu (fun () -> !got) with
          | [ (ev : Frame.event) ] ->
            check string_ "event key" "k" ev.Frame.ev_key;
            check string_ "event head" "deadbeef" ev.Frame.new_head
          | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)))

(* ---------------- subscriptions survive a server bounce ---------------- *)

(* Satellite regression: a server restart under an active subscription
   must not silently kill the watch (`forkbase watch` used to hang
   forever).  The handle's monitor re-dials, re-issues the registration,
   and delivers a Gap marker; pushes then flow again. *)
let test_watch_survives_restart () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let srv1 = ok_net (Server.start ~config:test_config fb) in
  let port = Server.port srv1 in
  let r =
    match Remote.connect ~port () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Errors.to_string e)
  in
  Fun.protect
    ~finally:(fun () -> Remote.close r)
    (fun () ->
      let mu = Mutex.create () in
      let heads = ref [] and gaps = ref [] in
      let sub =
        ok_fb
          (Remote.subscribe_events ~key:"w" r (function
            | Remote.Head_moved ev ->
              Mutex.protect mu (fun () -> heads := ev :: !heads)
            | Remote.Gap { resubscribed } ->
              Mutex.protect mu (fun () -> gaps := resubscribed :: !gaps)))
      in
      ignore (ok_fb (Remote.put r ~key:"w" "v1"));
      check bool_ "push before the bounce" true
        (eventually (fun () -> Mutex.protect mu (fun () -> !heads <> [])));
      (* Bounce the server.  While it is down, the subscribed handle
         still reports open — the monitor is dialing on its behalf. *)
      Server.stop srv1;
      check bool_ "subscribed handle stays open through the outage" true
        (Remote.is_open r);
      let srv2 = ok_net (Server.start ~config:{ test_config with port } fb) in
      Fun.protect
        ~finally:(fun () -> Server.stop srv2)
        (fun () ->
          check bool_ "gap marker delivered after resubscribe" true
            (eventually ~timeout:10.0 (fun () ->
                 Mutex.protect mu (fun () -> List.mem true !gaps)));
          (* A write from a different client reaches the original
             callback through the resurrected subscription. *)
          with_mux srv2 (fun m ->
              ignore (ok_cl (Mux.request m [ "put"; "w"; "master"; "v2" ])));
          check bool_ "push after the bounce" true
            (eventually ~timeout:10.0 (fun () ->
                 Mutex.protect mu (fun () -> List.length !heads >= 2)));
          ok_fb (Remote.unsubscribe r sub)))

(* ---------------- EINTR under a signal storm ---------------- *)

(* [Server.stop] must complete promptly while signals interrupt the
   event loop's poll/epoll wait continuously: the wait path treats
   EINTR as a zero-ready wakeup instead of retrying with a fresh
   timeout, so the loop keeps re-checking its lifecycle flag. *)
let test_stop_under_signal_storm () =
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
    (fun () ->
      let fb = FB.create (Fb_chunk.Mem_store.create ()) in
      let srv = ok_net (Server.start ~config:test_config fb) in
      let port = Server.port srv in
      (* A live connection so stop has real teardown to do. *)
      let m = ok_cl (Mux.connect ~port ()) in
      ignore (ok_cl (Mux.request m [ "put"; "k"; "master"; "v" ]));
      let storming = Atomic.make true in
      let pid = Unix.getpid () in
      let storm =
        Thread.create
          (fun () ->
            while Atomic.get storming do
              Unix.kill pid Sys.sigusr1;
              Thread.delay 0.001
            done)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set storming false;
          Thread.join storm;
          Mux.close m)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          Server.stop srv;
          let elapsed = Unix.gettimeofday () -. t0 in
          check bool_
            (Printf.sprintf "stop completed under the storm (%.2fs)" elapsed)
            true (elapsed < 5.0));
      (* The port is genuinely free again: a fresh server binds on it
         and serves. *)
      let srv2 = ok_net (Server.start ~config:{ test_config with port } fb) in
      Fun.protect
        ~finally:(fun () -> Server.stop srv2)
        (fun () ->
          with_mux srv2 (fun m2 ->
              check string_ "fresh server serves after the storm" "v"
                (ok_cl (Mux.request m2 [ "get"; "k"; "master" ])))))

(* ---------------- threaded A/B engine parity ---------------- *)

(* The serial engine answers a deep tagged pipeline correctly: requests
   queue in the socket and are processed in order, but every reply must
   echo its request's sequence id so the demux matches them up. *)
let test_threaded_pipelined_depth () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with mode = `Threaded } in
  with_server ~config fb (fun srv ->
      with_mux srv (fun m ->
          let depth = 64 in
          let tickets =
            List.init depth (fun i ->
                ok_cl
                  (Mux.send m
                     (Frame.Single
                        [ "put"; "k"; "master"; Printf.sprintf "v%d" i ])))
          in
          List.iter
            (fun tk ->
              match Mux.await m tk with
              | Ok (Frame.One (Ok uid)) ->
                check bool_ "uid parses" true
                  (Result.is_ok (FB.parse_version uid))
              | _ -> Alcotest.fail "pipelined put failed on threaded engine")
            (List.rev tickets);
          check string_ "last pipelined write won"
            (Printf.sprintf "v%d" (depth - 1))
            (ok_cl (Mux.request m [ "get"; "k"; "master" ]))))

(* Both halves of the conn-verb pair are rejected typed, not ignored. *)
let test_unsubscribe_rejected_threaded () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with mode = `Threaded } in
  with_server ~config fb (fun srv ->
      with_mux srv (fun m ->
          match Mux.request m [ "unsubscribe"; "1" ] with
          | Error (Mux.Remote (Errors.Invalid msg)) ->
            check bool_ "typed rejection points at the event loop" true
              (Tutil.contains msg "event-loop")
          | Ok _ -> Alcotest.fail "threaded server accepted unsubscribe"
          | Error e -> Alcotest.fail (Client.error_to_string e)))

(* ---------------- event-loop health introspection ---------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_loop_health () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with metrics_port = Some 0 } in
  with_server ~config fb (fun srv ->
      let mport =
        match Server.metrics_port srv with
        | Some p -> p
        | None -> Alcotest.fail "sidecar did not start"
      in
      with_mux srv (fun m ->
          ignore (ok_cl (Mux.request m [ "put"; "k"; "master"; "v" ]));
          let sid = ok_cl (Mux.subscribe ~key:"k" m (fun _ _ -> ())) in
          (match Server.loop_stats srv with
           | None -> Alcotest.fail "no loop stats in event mode"
           | Some ls ->
             check bool_ "a connection is open" true (ls.Server.ls_conns >= 1);
             check int_ "subscription registered" 1 ls.Server.ls_subscriptions);
          let healthz = http_get mport "/healthz" in
          List.iter
            (fun needle ->
              check bool_ ("healthz has " ^ needle) true
                (Tutil.contains healthz needle))
            [ "\"mode\":\"event\""; "outbox_hwm_bytes"; "worker_queue_depth";
              "subscriptions"; "connections" ];
          let metrics = http_get mport "/metrics" in
          List.iter
            (fun needle ->
              check bool_ ("gauge " ^ needle) true
                (Tutil.contains metrics needle))
            [ "fb_net_loop_connections"; "fb_net_loop_outbox_hwm_bytes";
              "fb_net_loop_worker_queue_depth"; "fb_net_loop_subscriptions" ];
          ok_cl (Mux.unsubscribe m sid)))

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_seq_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_seq_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_event_roundtrip;
    Alcotest.test_case "header-less response compatibility" `Quick
      test_headerless_response_compat;
    Alcotest.test_case "out-of-order replies demuxed by tag" `Quick
      test_out_of_order_replies;
    Alcotest.test_case "reply to unknown sequence id poisons" `Quick
      test_unknown_sequence_rejected;
    Alcotest.test_case "pipelined depth + concurrent mux" `Quick
      test_pipelined_depth;
    Alcotest.test_case "slow-reader backpressure" `Quick
      test_slow_reader_backpressure;
    Alcotest.test_case "subscribe push under load" `Quick
      test_subscribe_push_under_load;
    Alcotest.test_case "typed remote subscribe" `Quick test_remote_subscribe;
    Alcotest.test_case "subscribe rejected in threaded mode" `Quick
      test_subscribe_rejected_threaded;
    Alcotest.test_case "remote transparent reconnect" `Quick
      test_remote_reconnect;
    Alcotest.test_case "push racing the subscribe reply" `Quick
      test_push_races_subscribe_reply;
    Alcotest.test_case "watch survives a server restart" `Quick
      test_watch_survives_restart;
    Alcotest.test_case "stop under a signal storm" `Quick
      test_stop_under_signal_storm;
    Alcotest.test_case "threaded pipelined depth" `Quick
      test_threaded_pipelined_depth;
    Alcotest.test_case "unsubscribe rejected in threaded mode" `Quick
      test_unsubscribe_rejected_threaded;
    Alcotest.test_case "event-loop health introspection" `Quick
      test_loop_health ]
