(* Multi-node cluster store: routing purity, replication, failover,
   read repair, rebalance, the store-provider registry, the Bloom
   have-exchange, and the networked composition over live servers. *)

module Cluster = Fb_chunk.Cluster_store
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module Mem_store = Fb_chunk.Mem_store
module Faulty = Fb_chunk.Faulty_store
module Provider = Fb_chunk.Store_provider
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Persistent = Fb_core.Persistent
module Sync = Fb_core.Sync
module Service = Fb_core.Service
module Server = Fb_net.Server
module Remote = Fb_net.Remote
module Net_cluster = Fb_net.Cluster

let () = Net_cluster.register_provider ()

let check = Alcotest.check
let contains ~affix s =
  let n = String.length affix and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok_fb = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_cluster_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

let blob i = Chunk.v Chunk.Leaf_blob (Printf.sprintf "cluster chunk %d" i)

(* n mem members with tamper handles, wrapped in a cluster. *)
let mk_cluster ?(n = 3) ?(replicas = 2) () =
  let members =
    List.init n (fun i ->
        let name = Printf.sprintf "node%d" i in
        let store, handle = Mem_store.create_with_handle ~name () in
        (name, store, handle))
  in
  let c =
    Cluster.create ~replicas
      ~members:(List.map (fun (n, s, _) -> (n, s)) members)
      ()
  in
  (c, Cluster.store c, members)

(* ---------------- pure placement ---------------- *)

let test_ring_determinism () =
  let ring = Cluster.ring_of ~virtual_nodes:64 [ "a"; "b"; "c" ] in
  let id = Chunk.hash (blob 1) in
  check bool_ "same ranks" true
    (Cluster.owner_ranks ~ring ~replicas:2 id
    = Cluster.owner_ranks ~ring ~replicas:2 id);
  (* Ranks are distinct member indices. *)
  let ranks = Cluster.owner_ranks ~ring ~replicas:3 id in
  check int_ "three members" 3 (List.length (List.sort_uniq compare ranks));
  (* Replicas clamp to the member population on the ring. *)
  check int_ "clamped" 3
    (List.length (Cluster.owner_ranks ~ring ~replicas:9 id))

let qcheck_routing_pure =
  QCheck.Test.make ~count:200 ~name:"owner_ranks pure in (id, ring)"
    QCheck.(pair (int_range 1 8) (string_of_size QCheck.Gen.(1 -- 64)))
    (fun (n, seed) ->
      let names = List.init n (Printf.sprintf "m%d") in
      let ring = Cluster.ring_of ~virtual_nodes:16 names in
      let id = Hash.of_string seed in
      let ranks = Cluster.owner_ranks ~ring ~replicas:2 id in
      ranks = Cluster.owner_ranks ~ring ~replicas:2 id
      && List.length ranks = min 2 n
      && List.length (List.sort_uniq compare ranks) = List.length ranks
      && List.for_all (fun r -> r >= 0 && r < n) ranks)

let test_ring_delta () =
  (* Growing the ring reassigns only a minority of the key space: with
     virtual nodes, going 3 -> 4 members should move roughly 1/4 of
     ownership, and certainly not most of it. *)
  let before = Cluster.ring_of ~virtual_nodes:64 [ "a"; "b"; "c" ] in
  let after = Cluster.ring_of ~virtual_nodes:64 [ "a"; "b"; "c"; "d" ] in
  let ids = List.init 500 (fun i -> Chunk.hash (blob i)) in
  let changed =
    List.length
      (List.filter
         (fun id ->
           Cluster.owner_ranks ~ring:before ~replicas:2 id
           <> Cluster.owner_ranks ~ring:after ~replicas:2 id)
         ids)
  in
  check bool_ "some movement" true (changed > 0);
  check bool_
    (Printf.sprintf "minority moved (%d/500)" changed)
    true
    (changed < 350)

(* ---------------- replication and failover ---------------- *)

let test_put_replication () =
  let c, store, members = mk_cluster () in
  let ids = List.init 100 (fun i -> Store.put store (blob i)) in
  List.iter
    (fun id ->
      let owners = Cluster.owners c id in
      check int_ "W owners" 2 (List.length owners);
      (* The copies live on exactly the owners. *)
      List.iter
        (fun (name, s, _) ->
          check bool_ (name ^ " placement") (List.mem name owners)
            (s.Store.mem id))
        members)
    ids;
  Cluster.close c

let test_one_down_reads () =
  (* ISSUE acceptance: a 3-node cluster at W=2 survives the loss of any
     single member with every read still answered. *)
  let c, store, members = mk_cluster () in
  let ids = List.init 100 (fun i -> (i, Store.put store (blob i))) in
  List.iter
    (fun (name, _, _) ->
      Cluster.set_down c name true;
      List.iter
        (fun (i, id) ->
          match Store.get store id with
          | Some chunk ->
            check string_ "payload intact"
              (Printf.sprintf "cluster chunk %d" i)
              chunk.Chunk.payload
          | None -> Alcotest.failf "chunk %d unreadable with %s down" i name)
        ids;
      Cluster.set_down c name false)
    members;
  let cs = Cluster.cluster_stats c in
  check bool_ "failovers happened" true (cs.Cluster.failover_reads > 0);
  check int_ "nothing unavailable" 0 cs.Cluster.unavailable;
  Cluster.close c

let test_read_repair () =
  let c, store, members = mk_cluster () in
  let id = Store.put store (blob 42) in
  let primary = List.hd (Cluster.owners c id) in
  let _, pstore, _ = List.find (fun (n, _, _) -> n = primary) members in
  (* Lose the primary's copy; a read through the cluster must both serve
     the chunk and put the copy back. *)
  check bool_ "copy dropped" true (pstore.Store.delete id);
  check bool_ "replica serves" true (Store.get store id <> None);
  check bool_ "primary repaired" true (pstore.Store.mem id);
  let cs = Cluster.cluster_stats c in
  check bool_ "repair counted" true (cs.Cluster.repaired >= 1);
  Cluster.close c

let test_corrupt_replica_rejected () =
  let c, store, members = mk_cluster () in
  let id = Store.put store (blob 7) in
  let primary = List.hd (Cluster.owners c id) in
  let _, pstore, phandle = List.find (fun (n, _, _) -> n = primary) members in
  check bool_ "tampered" true
    (Mem_store.tamper phandle id ~f:(fun bytes ->
         String.map (fun ch -> if ch = 'c' then 'X' else ch) bytes));
  (* The forged bytes fail the hash check: the read fails over, and the
     repair path replaces the primary's copy with healthy bytes. *)
  (match Store.get store id with
  | Some chunk -> check string_ "healthy payload" "cluster chunk 7" chunk.Chunk.payload
  | None -> Alcotest.fail "read failed despite healthy replica");
  let cs = Cluster.cluster_stats c in
  check bool_ "rejection counted" true (cs.Cluster.rejected >= 1);
  (match pstore.Store.get_raw id with
  | Some raw -> check bool_ "primary healed" true (Hash.equal (Hash.of_string raw) id)
  | None -> Alcotest.fail "primary lost the chunk");
  Cluster.close c

let test_transient_members_retry () =
  (* Flaky-but-honest members: every op may transiently fail, yet the
     retry + failover stack must still answer everything correctly. *)
  let members =
    List.init 3 (fun i ->
        let name = Printf.sprintf "flaky%d" i in
        let inner = Mem_store.create ~name () in
        let faulty, _ =
          Faulty.wrap
            { Faulty.calm with
              seed = Int64.of_int (1000 + i);
              transient_read_p = 0.3;
              transient_put_p = 0.2 }
            inner
        in
        (name, faulty))
  in
  let c = Cluster.create ~replicas:2 ~max_retries:4 ~members () in
  let store = Cluster.store c in
  let ids = List.init 100 (fun i -> (i, Store.put store (blob i))) in
  List.iter
    (fun (i, id) ->
      match Store.get store id with
      | Some chunk ->
        check string_ "payload" (Printf.sprintf "cluster chunk %d" i)
          chunk.Chunk.payload
      | None -> Alcotest.failf "chunk %d lost to transient faults" i)
    ids;
  Cluster.close c

let test_unavailable_put () =
  let c, store, _ = mk_cluster () in
  List.iter (fun n -> Cluster.set_down c n true) (Cluster.members c);
  (match Store.put store (blob 0) with
  | (_ : Hash.t) -> Alcotest.fail "put succeeded with every member down"
  | exception Store.Transient _ -> ());
  check bool_ "unavailable counted" true
    ((Cluster.cluster_stats c).Cluster.unavailable >= 1);
  Cluster.close c

(* ---------------- rebalance ---------------- *)

let test_rebalance_moves_only_delta () =
  let c, store, _ = mk_cluster () in
  let ids = List.init 300 (fun i -> Store.put store (blob i)) in
  let owners_before =
    List.map (fun id -> (id, Cluster.owners c id)) ids
  in
  let extra = Mem_store.create ~name:"node3" () in
  Cluster.add_member c ("node3", extra);
  (* Expected copies = owner-set delta: for each chunk, the new owners
     that do not already hold it (old owners keep their copies). *)
  let expected =
    List.fold_left
      (fun acc (id, old_owners) ->
        let now = Cluster.owners c id in
        acc
        + List.length (List.filter (fun o -> not (List.mem o old_owners)) now))
      0 owners_before
  in
  let report = Cluster.rebalance c in
  check int_ "scanned all" 300 report.Cluster.scanned;
  check int_ "moved exactly the ring delta" expected
    report.Cluster.moved_chunks;
  check bool_ "delta nonempty" true (expected > 0);
  check int_ "nothing unplaceable" 0 report.Cluster.unplaceable;
  (* Convergence: a second pass finds nothing to move, and the new node
     can serve its share alone. *)
  let again = Cluster.rebalance c in
  check int_ "second pass idle" 0 again.Cluster.moved_chunks;
  List.iter
    (fun id ->
      check bool_ "readable post-rebalance" true (Store.mem store id))
    ids;
  Cluster.close c

(* ---------------- store-provider registry ---------------- *)

let test_provider_unknown_backend () =
  (match Provider.resolve ~backend:"punchcard" ~root:"/nonexistent" with
  | Ok _ -> Alcotest.fail "unknown backend resolved"
  | Error msg ->
    check bool_ "names the backend" true
      (contains ~affix:"punchcard" msg);
    (* The error lists what IS registered, so the operator can fix the
       flag without reading source. *)
    check bool_ "lists log" true (contains ~affix:"log" msg);
    check bool_ "lists mem" true (contains ~affix:"mem" msg));
  with_temp_root (fun root ->
      match Persistent.open_ ~backend:"punchcard" ~root () with
      | Ok _ -> Alcotest.fail "Persistent accepted unknown backend"
      | Error (Errors.Invalid _) -> ()
      | Error e -> Alcotest.failf "wrong error class: %s" (Errors.to_string e))

let test_provider_interchangeable () =
  (* The same application code runs against any registered engine. *)
  List.iter
    (fun backend ->
      with_temp_root (fun root ->
          let fb = ok_fb (Persistent.open_ ~backend ~root ()) in
          let _uid =
            ok_fb (FB.put fb ~key:"k" (Fb_types.Value.string backend))
          in
          match ok_fb (FB.get fb ~key:"k") with
          | Fb_types.Value.Primitive (Fb_types.Primitive.String s) ->
            check string_ (backend ^ " roundtrip") backend s;
            Persistent.close ~root
          | _ -> Alcotest.fail "wrong value shape"))
    [ "mem"; "file"; "log" ]

let test_provider_auto_detect () =
  with_temp_root (fun root ->
      let fb = ok_fb (Persistent.open_ ~backend:"file" ~root ()) in
      let _ = ok_fb (FB.put fb ~key:"k" (Fb_types.Value.string "v1")) in
      ok_fb (Persistent.save ~root fb);
      Persistent.close ~root;
      (* Reopening with "auto" must find the file engine, not default to
         the log engine and see an empty store. *)
      let fb2 = ok_fb (Persistent.open_ ~backend:"auto" ~root ()) in
      (match ok_fb (FB.get fb2 ~key:"k") with
      | Fb_types.Value.Primitive (Fb_types.Primitive.String s) -> check string_ "auto reopen" "v1" s
      | _ -> Alcotest.fail "wrong value shape");
      Persistent.close ~root)

(* ---------------- Bloom have-exchange ---------------- *)

let test_bloom_no_false_negatives () =
  let ids = List.init 500 (fun i -> Chunk.hash (blob i)) in
  let b = Sync.Bloom.create ~expected:500 in
  List.iter (Sync.Bloom.add b) ids;
  List.iter
    (fun id -> check bool_ "member" true (Sync.Bloom.mem b id))
    ids;
  (* Absent ids mostly miss (the whole point of shipping the filter). *)
  let absent =
    List.init 500 (fun i -> Chunk.hash (blob (100_000 + i)))
  in
  let fp = List.length (List.filter (Sync.Bloom.mem b) absent) in
  check bool_ (Printf.sprintf "few false positives (%d/500)" fp) true (fp < 50)

let test_bloom_roundtrip () =
  let b = Sync.Bloom.create ~expected:100 in
  let ids = List.init 100 (fun i -> Chunk.hash (blob i)) in
  List.iter (Sync.Bloom.add b) ids;
  (match Sync.Bloom.decode (Sync.Bloom.encode b) with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok b2 ->
    check int_ "m preserved" (Sync.Bloom.m b) (Sync.Bloom.m b2);
    check int_ "k preserved" (Sync.Bloom.k b) (Sync.Bloom.k b2);
    List.iter
      (fun id -> check bool_ "membership survives" true (Sync.Bloom.mem b2 id))
      ids);
  List.iter
    (fun junk ->
      check bool_ ("rejects " ^ junk) true
        (Result.is_error (Sync.Bloom.decode junk)))
    [ ""; "garbage"; "10:7:"; "0:7:x"; "8:0:x"; "16:7:x" ]

let test_bloom_saturation () =
  let b = Sync.Bloom.create ~expected:1 in
  (* ~expected is clamped to a small floor; drowning it must flip the
     saturation signal that forces the exact-wave fallback. *)
  List.iteri
    (fun i () -> Sync.Bloom.add b (Chunk.hash (blob i)))
    (List.init 500 (fun _ -> ()));
  check bool_ "saturated" true (Sync.Bloom.saturated b);
  check bool_ "fill high" true (Sync.Bloom.fill_ratio b > 0.5)

(* ---------------- service verbs ---------------- *)

let test_chunk_verbs () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let chunk = Chunk.v Chunk.Leaf_blob "verb payload" in
  let id = Chunk.hash chunk in
  let hex = Hash.to_hex id in
  (match Service.dispatch fb [ "chunk-put"; hex; Chunk.encode chunk ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Errors.to_string e));
  (* Verified ingest: bytes that do not hash to the declared id bounce. *)
  check bool_ "forged id refused" true
    (Result.is_error
       (Service.dispatch fb
          [ "chunk-put"; Hash.to_hex (Chunk.hash (blob 1)); Chunk.encode chunk ]));
  (* Idempotent: the same put again is fine. *)
  (match Service.dispatch fb [ "chunk-put"; hex; Chunk.encode chunk ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Errors.to_string e));
  (match Service.dispatch fb [ "chunk-stat" ] with
  | Ok s ->
    check bool_ ("chunk-stat shape: " ^ s) true
      (Scanf.sscanf_opt s "chunks=%d bytes=%d" (fun c _ -> c) = Some 1)
  | Error e -> Alcotest.fail (Errors.to_string e));
  match Service.dispatch fb [ "sync-bloom" ] with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok encoded -> (
    match Sync.Bloom.decode encoded with
    | Error e -> Alcotest.fail (Errors.to_string e)
    | Ok b -> check bool_ "bloom holds the chunk" true (Sync.Bloom.mem b id))

(* ---------------- networked composition ---------------- *)

let test_config = { Server.default_config with port = 0; save_every_s = 0.0 }

let with_servers n f =
  let nodes =
    List.init n (fun _ ->
        let fb = FB.create (Fb_chunk.Mem_store.create ()) in
        match Server.start ~config:test_config fb with
        | Ok srv -> srv
        | Error e -> Alcotest.fail e)
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun s -> try Server.stop s with _ -> ()) nodes)
    (fun () -> f nodes)

let test_remote_chunk_store () =
  with_servers 1 (fun nodes ->
      let srv = List.hd nodes in
      let r = ok_fb (Remote.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Remote.close r)
        (fun () ->
          let s = Remote.chunk_store r in
          let chunk = Chunk.v Chunk.Leaf_blob "over the wire" in
          let id = s.Store.put chunk in
          check bool_ "id is content hash" true
            (Hash.equal id (Chunk.hash chunk));
          check bool_ "mem" true (s.Store.mem id);
          check bool_ "absent mem" false (s.Store.mem (Chunk.hash (blob 9)));
          (match s.Store.get id with
          | Some c -> check string_ "payload" "over the wire" c.Chunk.payload
          | None -> Alcotest.fail "get lost the chunk");
          check bool_ "absent get" true (s.Store.get (Chunk.hash (blob 9)) = None);
          let st = s.Store.stats () in
          check bool_ "server-side shape" true (st.Store.physical_chunks >= 1);
          (* Physical enumeration and GC stay on the member node. *)
          check bool_ "iter refused" true
            (match s.Store.iter (fun _ _ -> ()) with
            | () -> false
            | exception Failure _ -> true);
          check bool_ "delete refused" true
            (match s.Store.delete id with
            | (_ : bool) -> false
            | exception Failure _ -> true)))

let test_net_cluster_failover () =
  with_servers 3 (fun nodes ->
      let node_list =
        List.map
          (fun srv -> { Net_cluster.host = "127.0.0.1"; port = Server.port srv })
          nodes
      in
      let t =
        ok_fb (Net_cluster.connect ~replicas:2 ~nodes:node_list ())
      in
      Fun.protect
        ~finally:(fun () -> Net_cluster.close t)
        (fun () ->
          let store = Net_cluster.store t in
          let ids = List.init 50 (fun i -> (i, Store.put store (blob i))) in
          (* Healthy reads. *)
          List.iter
            (fun (i, id) ->
              match Store.get store id with
              | Some c ->
                check string_ "payload" (Printf.sprintf "cluster chunk %d" i)
                  c.Chunk.payload
              | None -> Alcotest.failf "chunk %d unreadable (healthy)" i)
            ids;
          (* Kill one live server process-equivalent and read everything
             again: W=2 placement must keep all 50 readable. *)
          Server.stop (List.nth nodes 1);
          let served = ref 0 in
          List.iter
            (fun (_, id) -> if Store.get store id <> None then incr served)
            ids;
          check int_ "all reads survive a node kill" 50 !served;
          (* probe agrees with reality and marks the dead member down. *)
          let probed = Net_cluster.probe t in
          let down =
            List.filter (fun (_, up) -> not up) probed |> List.length
          in
          check int_ "one node down" 1 down))

let test_cluster_provider_end_to_end () =
  (* forkbase serve --backend cluster equivalent, in-process: a router
     Forkbase over the "cluster" provider, members being live servers. *)
  with_servers 2 (fun nodes ->
      with_temp_root (fun root ->
          let nodes_param =
            String.concat ","
              (List.map
                 (fun srv -> Printf.sprintf "127.0.0.1:%d" (Server.port srv))
                 nodes)
          in
          let fb =
            ok_fb
              (Persistent.open_ ~backend:"cluster"
                 ~params:[ ("nodes", nodes_param); ("replicas", "2") ]
                 ~root ())
          in
          let _ = ok_fb (FB.put fb ~key:"k" (Fb_types.Value.string "routed")) in
          (match ok_fb (FB.get fb ~key:"k") with
          | Fb_types.Value.Primitive (Fb_types.Primitive.String s) -> check string_ "routed value" "routed" s
          | _ -> Alcotest.fail "wrong value shape");
          (* The data physically lives on the member servers. *)
          let member_chunks =
            List.fold_left
              (fun acc srv ->
                let r = ok_fb (Remote.connect ~port:(Server.port srv) ()) in
                Fun.protect
                  ~finally:(fun () -> Remote.close r)
                  (fun () ->
                    match Remote.raw r [ "chunk-stat" ] with
                    | Ok s ->
                      acc
                      + Option.value ~default:0
                          (Scanf.sscanf_opt s "chunks=%d bytes=%d"
                             (fun c _ -> c))
                    | Error _ -> acc))
              0 nodes
          in
          check bool_ "members hold the chunks" true (member_chunks > 0);
          Persistent.close ~root))

let test_push_bloom_stats () =
  (* The Bloom round rides push: a second push with overlapping history
     must skip already-present chunks without shipping them. *)
  with_servers 1 (fun nodes ->
      let srv = List.hd nodes in
      let local = FB.create (Fb_chunk.Mem_store.create ()) in
      let _ =
        ok_fb (FB.put local ~key:"doc" (Fb_types.Value.string "rev one"))
      in
      let r = ok_fb (Remote.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Remote.close r)
        (fun () ->
          let _, s1 = ok_fb (Remote.push r local ~key:"doc") in
          check bool_ "first push ships" true (s1.Sync.chunks_moved > 0);
          let _ =
            ok_fb (FB.put local ~key:"doc" (Fb_types.Value.string "rev two"))
          in
          let _, s2 = ok_fb (Remote.push r local ~key:"doc") in
          check bool_ "second push skips shared history" true
            (s2.Sync.chunks_skipped > 0);
          check bool_ "fp counter sane" true (s2.Sync.bloom_fp >= 0)))

let suite =
  [ Alcotest.test_case "ring determinism" `Quick test_ring_determinism;
    QCheck_alcotest.to_alcotest qcheck_routing_pure;
    Alcotest.test_case "ring delta bounded" `Quick test_ring_delta;
    Alcotest.test_case "put replicates to owners" `Quick test_put_replication;
    Alcotest.test_case "reads survive any single node down" `Quick
      test_one_down_reads;
    Alcotest.test_case "read repair restores lost copies" `Quick
      test_read_repair;
    Alcotest.test_case "corrupt replica rejected and healed" `Quick
      test_corrupt_replica_rejected;
    Alcotest.test_case "transient members retried" `Quick
      test_transient_members_retry;
    Alcotest.test_case "no live owner -> Transient" `Quick
      test_unavailable_put;
    Alcotest.test_case "rebalance moves only the ring delta" `Quick
      test_rebalance_moves_only_delta;
    Alcotest.test_case "unknown backend is typed Invalid" `Quick
      test_provider_unknown_backend;
    Alcotest.test_case "backends interchangeable" `Quick
      test_provider_interchangeable;
    Alcotest.test_case "auto detects the on-disk engine" `Quick
      test_provider_auto_detect;
    Alcotest.test_case "bloom: no false negatives" `Quick
      test_bloom_no_false_negatives;
    Alcotest.test_case "bloom: wire roundtrip" `Quick test_bloom_roundtrip;
    Alcotest.test_case "bloom: saturation flips fallback" `Quick
      test_bloom_saturation;
    Alcotest.test_case "chunk-put/chunk-stat/sync-bloom verbs" `Quick
      test_chunk_verbs;
    Alcotest.test_case "remote chunk store over the wire" `Quick
      test_remote_chunk_store;
    Alcotest.test_case "net cluster survives a node kill" `Quick
      test_net_cluster_failover;
    Alcotest.test_case "cluster provider end-to-end" `Quick
      test_cluster_provider_end_to_end;
    Alcotest.test_case "push rides the bloom exchange" `Quick
      test_push_bloom_stats ]
