(* Framed wire protocol and the concurrent TCP server/client. *)

module FB = Fb_core.Forkbase
module Persistent = Fb_core.Persistent
module Value = Fb_types.Value
module Frame = Fb_net.Frame
module Client = Fb_net.Client
module Server = Fb_net.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok_fb = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Fb_core.Errors.to_string e)

let ok_net = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_net_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

(* No periodic saver and no fixed port: tests must not collide. *)
let test_config =
  { Server.default_config with port = 0; save_every_s = 0.0 }

let with_server ?(config = test_config) ?save fb f =
  let srv = ok_net (Server.start ~config ?save fb) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client ?user srv f =
  let c = ok_net (Client.connect ?user ~port:(Server.port srv) ()) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ---------------- pure framing ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode_frame (Frame.encode_frame payload) with
      | Ok (`Frame (p, next)) ->
        check string_ "payload" payload p;
        check int_ "consumed all" (String.length (Frame.encode_frame payload)) next
      | _ -> Alcotest.fail "frame did not round-trip")
    [ ""; "x"; "hello\nworld"; String.make 300 'a'; String.make 70000 '\x00' ]

let test_frame_stream () =
  (* Several frames back to back decode in sequence. *)
  let payloads = [ "one"; ""; "three\nlines\nhere"; String.make 500 'z' ] in
  let buf = String.concat "" (List.map Frame.encode_frame payloads) in
  let rec go pos acc =
    if pos >= String.length buf then List.rev acc
    else
      match Frame.decode_frame ~pos buf with
      | Ok (`Frame (p, next)) -> go next (p :: acc)
      | _ -> Alcotest.fail "stream decode failed"
  in
  check bool_ "all frames" true (go 0 [] = payloads)

let test_frame_truncated () =
  let full = Frame.encode_frame (String.make 300 'q') in
  for cut = 0 to String.length full - 1 do
    match Frame.decode_frame (String.sub full 0 cut) with
    | Ok `Need_more -> ()
    | _ -> Alcotest.failf "prefix of %d bytes should need more" cut
  done

let test_frame_limits () =
  (match Frame.decode_frame ~max_frame:10 (Frame.encode_frame (String.make 100 'x')) with
  | Error (Frame.Too_large 100) -> ()
  | _ -> Alcotest.fail "oversize frame accepted");
  (* Non-minimal varint length: 0x80 0x00 encodes 0 in two bytes. *)
  (match Frame.decode_frame "\x80\x00" with
  | Error (Frame.Malformed _) -> ()
  | _ -> Alcotest.fail "non-minimal length accepted");
  (* A length varint longer than 5 bytes is not a frame. *)
  (match Frame.decode_frame "\xff\xff\xff\xff\xff\xff" with
  | Error (Frame.Malformed _) -> ()
  | _ -> Alcotest.fail "runaway varint accepted")

let qcheck_frame_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame encode/decode round-trip"
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun payload ->
      match Frame.decode_frame (Frame.encode_frame payload) with
      | Ok (`Frame (p, _)) -> String.equal p payload
      | _ -> false)

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:200 ~name:"request encode/decode round-trip"
    QCheck.(pair (string_of_size Gen.(0 -- 30))
              (small_list (string_of_size Gen.(0 -- 200))))
    (fun (user, tokens) ->
      match Frame.decode_request (Frame.encode_request ~user tokens) with
      | Ok (u, ts) -> String.equal u user && ts = tokens
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:200 ~name:"response encode/decode round-trip"
    QCheck.(pair bool (string_of_size Gen.(0 -- 2000)))
    (fun (ok, payload) ->
      match Frame.decode_response (Frame.encode_response ~ok payload) with
      | Ok (o, p) -> o = ok && String.equal p payload
      | Error _ -> false)

let test_request_rejects_garbage () =
  check bool_ "bad version" true
    (Result.is_error (Frame.decode_request "\xff"));
  check bool_ "empty" true (Result.is_error (Frame.decode_request ""));
  check bool_ "trailing garbage" true
    (Result.is_error
       (Frame.decode_request (Frame.encode_request ~user:"u" [ "a" ] ^ "x")))

(* ---------------- server round trips ---------------- *)

let test_server_roundtrip () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client srv (fun c ->
          (* Values with newlines and quotes survive framing verbatim —
             exactly what the line transport could not carry. *)
          let value = "line one\nline two \"quoted\"\nline three" in
          let uid = ok_net (Client.request c [ "put"; "k"; "master"; value ]) in
          check bool_ "uid parses" true (Result.is_ok (FB.parse_version uid));
          check string_ "get" value (ok_net (Client.request c [ "get"; "k"; "master" ]));
          check string_ "head" uid (ok_net (Client.request c [ "head"; "k"; "master" ]));
          ignore (ok_net (Client.request c [ "branch"; "k"; "master"; "dev" ]));
          ignore (ok_net (Client.request c [ "put"; "k"; "dev"; "v2" ]));
          ignore (ok_net (Client.request c [ "merge"; "k"; "master"; "dev" ]));
          check string_ "merged" "v2" (ok_net (Client.request c [ "get"; "k"; "master" ]));
          (* request_line tokenizes client-side. *)
          check string_ "request_line" "v2"
            (ok_net (Client.request_line c "get k master"));
          (* Application errors come back as Error, connection stays up. *)
          (match Client.request c [ "get"; "missing"; "master" ] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "missing key should fail");
          (match Client.request c [ "frobnicate" ] with
          | Error e -> check bool_ "bad verb" true (Tutil.contains e "bad request")
          | Ok _ -> Alcotest.fail "unknown verb accepted");
          check string_ "still alive" "v2"
            (ok_net (Client.request c [ "get"; "k"; "master" ]))))

let test_server_user_identity () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client ~user:"alice" srv (fun c ->
          ignore (ok_net (Client.request c [ "put"; "k"; "master"; "v" ]));
          let log = ok_net (Client.request c [ "log"; "k"; "master" ]) in
          check bool_ "author recorded" true (Tutil.contains log "alice");
          (* Per-request override. *)
          ignore (ok_net (Client.request ~user:"bob" c [ "put"; "k"; "master"; "w" ]));
          let log = ok_net (Client.request c [ "log"; "k"; "master" ]) in
          check bool_ "override recorded" true (Tutil.contains log "bob")))

let test_server_durability () =
  with_temp_root (fun root ->
      let fb = ok_fb (Persistent.open_ ~root ()) in
      let save () = ignore (Persistent.save ~fsync:true ~root fb) in
      let uid =
        with_server ~save fb (fun srv ->
            with_client srv (fun c ->
                ok_net (Client.request c [ "put"; "k"; "master"; "durable" ])))
      in
      (* with_server stopped the server; stop runs the final save, so a
         fresh instance sees the head. *)
      let fb2 = ok_fb (Persistent.open_ ~root ()) in
      check bool_ "head persisted" true
        (Fb_hash.Hash.equal (ok_fb (FB.parse_version uid))
           (ok_fb (FB.head fb2 ~key:"k"))))

let test_server_shutdown () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let srv = ok_net (Server.start ~config:test_config fb) in
  let port = Server.port srv in
  let c = ok_net (Client.connect ~port ()) in
  ignore (ok_net (Client.request c [ "put"; "k"; "master"; "v" ]));
  Server.stop srv;
  check bool_ "stopped" false (Server.is_running srv);
  (* The open connection was kicked. *)
  check bool_ "old conn dead" true (Result.is_error (Client.request c [ "stat" ]));
  Client.close c;
  (* New connections are refused (or dead on arrival via the backlog). *)
  (match Client.connect ~port ~timeout_s:1.0 () with
  | Error _ -> ()
  | Ok c2 ->
    check bool_ "no service after stop" true
      (Result.is_error (Client.request c2 [ "stat" ]));
    Client.close c2);
  (* stop is idempotent. *)
  Server.stop srv

(* ---------------- bad peers ---------------- *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_slow_peer () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with read_timeout_s = 10.0 } in
  with_server ~config fb (fun srv ->
      (* One byte at a time, with pauses: the read deadline covers the
         whole frame, so a slow-but-moving peer still gets served. *)
      let fd = raw_connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let frame =
            Frame.encode_frame
              (Frame.encode_request ~user:"slow" [ "put"; "s"; "master"; "v" ])
          in
          String.iter
            (fun ch ->
              ignore (Unix.write fd (Bytes.make 1 ch) 0 1);
              Thread.delay 0.002)
            frame;
          match Frame.read_frame ~timeout_s:5.0 fd with
          | Ok payload -> (
            match Frame.decode_response payload with
            | Ok (true, _) -> ()
            | _ -> Alcotest.fail "slow peer got an error")
          | Error e -> Alcotest.fail (Frame.error_to_string e)))

let test_read_timeout () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with read_timeout_s = 0.15 } in
  with_server ~config fb (fun srv ->
      let fd = raw_connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Send nothing: the server must give up on its own. *)
          match Frame.read_frame ~timeout_s:5.0 fd with
          | Ok payload -> (
            match Frame.decode_response payload with
            | Ok (false, msg) ->
              check bool_ "timeout reported" true (Tutil.contains msg "timeout")
            | _ -> Alcotest.fail "expected an error response")
          | Error Frame.Eof -> ()  (* already hung up: also acceptable *)
          | Error e -> Alcotest.fail (Frame.error_to_string e)))

let test_max_frame () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with max_frame = 256 } in
  with_server ~config fb (fun srv ->
      let c = ok_net (Client.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.request c [ "put"; "k"; "master"; String.make 4096 'x' ] with
          | Error e -> check bool_ "too large" true (Tutil.contains e "large")
          | Ok _ -> Alcotest.fail "oversize frame accepted");
          (* The stream was desynchronized: the server hung up. *)
          check bool_ "connection closed" true
            (Result.is_error (Client.request c [ "stat" ]))));
  (* A small-but-legal request still works under the same limit. *)
  with_server ~config fb (fun srv ->
      with_client srv (fun c ->
          ignore (ok_net (Client.request c [ "put"; "k"; "master"; "small" ]))))

(* ---------------- concurrency soak ---------------- *)

let test_soak () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let port = Server.port srv in
      let clients = 8 and iterations = 25 in
      let errors = Atomic.make 0 in
      let fail fmt =
        Printf.ksprintf (fun s -> Atomic.incr errors; prerr_endline s) fmt
      in
      let worker cid () =
        match Client.connect ~port ~user:(Printf.sprintf "u%d" cid) () with
        | Error e -> fail "c%d connect: %s" cid e
        | Ok c ->
          let key = Printf.sprintf "k%d" cid in
          for i = 0 to iterations - 1 do
            let v = Printf.sprintf "%d-%d\npayload line" cid i in
            (match Client.request c [ "put"; key; "master"; v ] with
            | Ok _ -> ()
            | Error e -> fail "c%d put %d: %s" cid i e);
            (match Client.request c [ "get"; key; "master" ] with
            | Ok got when got = v -> ()
            | Ok got -> fail "c%d get %d: corrupt %S" cid i got
            | Error e -> fail "c%d get %d: %s" cid i e);
            if i mod 5 = 0 then begin
              let b = Printf.sprintf "dev%d" i in
              (match Client.request c [ "branch"; key; "master"; b ] with
              | Ok _ -> ()
              | Error e -> fail "c%d branch %d: %s" cid i e);
              match Client.request c [ "merge"; key; "master"; b ] with
              | Ok _ -> ()
              | Error e -> fail "c%d merge %d: %s" cid i e
            end
          done;
          Client.close c
      in
      (* A byte-at-a-time peer runs alongside the fleet; everyone must
         still complete without corruption. *)
      let slow () =
        match raw_connect port with
        | exception Unix.Unix_error (e, _, _) ->
          fail "slow connect: %s" (Unix.error_message e)
        | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let frame =
                Frame.encode_frame
                  (Frame.encode_request ~user:"slow"
                     [ "put"; "slowkey"; "master"; "slow value" ])
              in
              String.iter
                (fun ch ->
                  ignore (Unix.write fd (Bytes.make 1 ch) 0 1);
                  Thread.delay 0.001)
                frame;
              match Frame.read_frame ~timeout_s:10.0 fd with
              | Ok payload -> (
                match Frame.decode_response payload with
                | Ok (true, _) -> ()
                | _ -> fail "slow peer: error response")
              | Error e -> fail "slow peer: %s" (Frame.error_to_string e))
      in
      let threads =
        Thread.create slow ()
        :: List.init clients (fun cid -> Thread.create (worker cid) ())
      in
      List.iter Thread.join threads;
      check int_ "soak errors" 0 (Atomic.get errors);
      (* Every client's last write is visible and uncorrupted. *)
      for cid = 0 to clients - 1 do
        let v = ok_fb (FB.get fb ~key:(Printf.sprintf "k%d" cid)) in
        check string_ "final value"
          (Printf.sprintf "%d-%d\npayload line" cid (iterations - 1))
          (match v with Value.Primitive (Fb_types.Primitive.String s) -> s | _ -> "?")
      done)

let suite =
  [ Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame stream" `Quick test_frame_stream;
    Alcotest.test_case "frame truncated prefixes" `Quick test_frame_truncated;
    Alcotest.test_case "frame limits" `Quick test_frame_limits;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    Alcotest.test_case "request rejects garbage" `Quick
      test_request_rejects_garbage;
    Alcotest.test_case "server round-trip" `Quick test_server_roundtrip;
    Alcotest.test_case "server user identity" `Quick test_server_user_identity;
    Alcotest.test_case "server durability" `Quick test_server_durability;
    Alcotest.test_case "server shutdown" `Quick test_server_shutdown;
    Alcotest.test_case "slow peer" `Quick test_slow_peer;
    Alcotest.test_case "read timeout" `Quick test_read_timeout;
    Alcotest.test_case "max frame" `Quick test_max_frame;
    Alcotest.test_case "concurrent soak" `Quick test_soak ]
