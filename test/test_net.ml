(* Framed wire protocol (v2: typed status + batching) and the
   concurrently-readable TCP server/client/remote stack. *)

module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Persistent = Fb_core.Persistent
module Value = Fb_types.Value
module Frame = Fb_net.Frame
module Client = Fb_net.Client
module Remote = Fb_net.Remote
module Server = Fb_net.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok_fb = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let ok_net = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let ok_cl = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Client.error_to_string e)

let with_temp_root f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_net_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

(* No periodic saver and no fixed port: tests must not collide. *)
let test_config =
  { Server.default_config with port = 0; save_every_s = 0.0 }

let with_server ?(config = test_config) ?save fb f =
  let srv = ok_net (Server.start ~config ?save fb) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client ?user srv f =
  let c = ok_cl (Client.connect ?user ~port:(Server.port srv) ()) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ---------------- pure framing ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode_frame (Frame.encode_frame payload) with
      | Ok (`Frame (p, next)) ->
        check string_ "payload" payload p;
        check int_ "consumed all" (String.length (Frame.encode_frame payload)) next
      | _ -> Alcotest.fail "frame did not round-trip")
    [ ""; "x"; "hello\nworld"; String.make 300 'a'; String.make 70000 '\x00' ]

let test_frame_stream () =
  (* Several frames back to back decode in sequence. *)
  let payloads = [ "one"; ""; "three\nlines\nhere"; String.make 500 'z' ] in
  let buf = String.concat "" (List.map Frame.encode_frame payloads) in
  let rec go pos acc =
    if pos >= String.length buf then List.rev acc
    else
      match Frame.decode_frame ~pos buf with
      | Ok (`Frame (p, next)) -> go next (p :: acc)
      | _ -> Alcotest.fail "stream decode failed"
  in
  check bool_ "all frames" true (go 0 [] = payloads)

let test_frame_truncated () =
  let full = Frame.encode_frame (String.make 300 'q') in
  for cut = 0 to String.length full - 1 do
    match Frame.decode_frame (String.sub full 0 cut) with
    | Ok `Need_more -> ()
    | _ -> Alcotest.failf "prefix of %d bytes should need more" cut
  done

let test_frame_limits () =
  (match Frame.decode_frame ~max_frame:10 (Frame.encode_frame (String.make 100 'x')) with
  | Error (Frame.Too_large 100) -> ()
  | _ -> Alcotest.fail "oversize frame accepted");
  (* Non-minimal varint length: 0x80 0x00 encodes 0 in two bytes. *)
  (match Frame.decode_frame "\x80\x00" with
  | Error (Frame.Malformed _) -> ()
  | _ -> Alcotest.fail "non-minimal length accepted");
  (* A length varint longer than 5 bytes is not a frame. *)
  (match Frame.decode_frame "\xff\xff\xff\xff\xff\xff" with
  | Error (Frame.Malformed _) -> ()
  | _ -> Alcotest.fail "runaway varint accepted")

let qcheck_frame_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame encode/decode round-trip"
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun payload ->
      match Frame.decode_frame (Frame.encode_frame payload) with
      | Ok (`Frame (p, _)) -> String.equal p payload
      | _ -> false)

let request_gen =
  let open QCheck.Gen in
  let tokens = small_list (string_size (0 -- 100)) in
  oneof
    [ map (fun t -> Frame.Single t) tokens;
      map (fun b -> Frame.Batch b) (small_list tokens) ]

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request encode/decode round-trip"
    (QCheck.make QCheck.Gen.(pair (string_size (0 -- 20)) request_gen))
    (fun (user, req) ->
      match Frame.decode_request (Frame.encode_request ~user req) with
      | Ok (u, None, None, r) -> String.equal u user && r = req
      | _ -> false)

(* The trace header (any trace-id bytes, any — including negative —
   parent span id) must survive the envelope exactly, and its absence
   must decode as [None]. *)
let trace_gen =
  QCheck.Gen.(
    opt
      (map2
         (fun trace_id parent_span -> { Frame.trace_id; parent_span })
         (string_size (0 -- 40))
         (map2
            (fun sign n -> if sign then n else -n - 1)
            bool (int_bound ((1 lsl 30) - 1)))))

let qcheck_trace_roundtrip =
  QCheck.Test.make ~count:300 ~name:"trace header encode/decode round-trip"
    (QCheck.make
       QCheck.Gen.(triple (string_size (0 -- 20)) trace_gen request_gen))
    (fun (user, trace, req) ->
      match Frame.decode_request (Frame.encode_request ~user ?trace req) with
      | Ok (u, t, None, r) -> String.equal u user && t = trace && r = req
      | _ -> false)

let test_headerless_v2_compat () =
  (* A v2 frame written by a tracing-unaware peer — version byte, bare
     kind byte (no 0x80 flag), user, body, built by hand so this pins
     the wire bytes rather than today's encoder. *)
  let open Fb_codec.Codec in
  let payload =
    to_string
      (fun w () ->
        u8 w 2;
        u8 w 0 (* Single, no trace flag *);
        bytes w "alice";
        list w bytes [ "get"; "k"; "master" ])
      ()
  in
  (match Frame.decode_request payload with
   | Ok ("alice", None, None, Frame.Single [ "get"; "k"; "master" ]) -> ()
   | Ok _ -> Alcotest.fail "header-less v2 frame misparsed"
   | Error e -> Alcotest.failf "header-less v2 frame rejected: %s" e);
  (* And the flagged form decodes the header. *)
  let traced =
    to_string
      (fun w () ->
        u8 w 2;
        u8 w (1 lor 0x80) (* Batch + trace flag *);
        bytes w "bob";
        bytes w "00112233445566778899aabbccddeeff";
        zigzag w 42;
        list w (fun w t -> list w bytes t) [ [ "list" ] ])
      ()
  in
  match Frame.decode_request traced with
  | Ok ("bob", Some t, None, Frame.Batch [ [ "list" ] ]) ->
    check string_ "trace id" "00112233445566778899aabbccddeeff"
      t.Frame.trace_id;
    check int_ "parent span" 42 t.Frame.parent_span
  | Ok _ -> Alcotest.fail "traced v2 frame misparsed"
  | Error e -> Alcotest.failf "traced v2 frame rejected: %s" e

(* Every Errors.t constructor, arbitrary fields: the status-tagged reply
   encoding must reproduce the exact typed value on the far side. *)
let errors_gen =
  let open QCheck.Gen in
  let s = string_size (0 -- 40) in
  oneof
    [ map (fun k -> Errors.Key_not_found k) s;
      map2 (fun key branch -> Errors.Branch_not_found { key; branch }) s s;
      map (fun v -> Errors.Version_not_found v) s;
      map2 (fun user action -> Errors.Permission_denied { user; action }) s s;
      map2
        (fun key details -> Errors.Merge_conflict { key; details })
        s (small_list s);
      map2 (fun expected got -> Errors.Type_mismatch { expected; got }) s s;
      map (fun m -> Errors.Corrupt m) s;
      map (fun m -> Errors.Transient m) s;
      map (fun m -> Errors.Invalid m) s ]

let reply_gen =
  QCheck.Gen.(
    oneof
      [ map Result.ok (string_size (0 -- 500)); map Result.error errors_gen ])

let response_gen =
  QCheck.Gen.(
    oneof
      [ map (fun r -> Frame.One r) reply_gen;
        map (fun rs -> Frame.Many rs) (small_list reply_gen) ])

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"typed response encode/decode round-trip"
    (QCheck.make response_gen)
    (fun resp ->
      match Frame.decode_response (Frame.encode_response resp) with
      | Ok (None, None, r) -> r = resp
      | _ -> false)

let test_request_rejects_garbage () =
  check bool_ "bad version" true
    (Result.is_error (Frame.decode_request "\xff"));
  check bool_ "empty" true (Result.is_error (Frame.decode_request ""));
  check bool_ "trailing garbage" true
    (Result.is_error
       (Frame.decode_request
          (Frame.encode_request ~user:"u" (Frame.Single [ "a" ]) ^ "x")));
  check bool_ "unknown request kind" true
    (Result.is_error (Frame.decode_request "\x02\x07"))

let test_v1_frames_rejected () =
  let open Fb_codec.Codec in
  (* Protocol v1 request: u8 1 | bytes user | list tokens.  Rejected by
     version number with a message naming both versions — old clients get
     a clean diagnosis, not a misparse. *)
  let v1_request =
    to_string
      (fun w () ->
        u8 w 1;
        bytes w "alice";
        list w bytes [ "get"; "k"; "master" ])
      ()
  in
  (match Frame.decode_request v1_request with
   | Error e -> check bool_ "names version" true (Tutil.contains e "version")
   | Ok _ -> Alcotest.fail "v1 request accepted");
  (* Protocol v1 response: u8 ok-flag | bytes rendered-text.  The v2
     decoder must refuse it cleanly (an error, never an exception). *)
  let v1_response =
    to_string
      (fun w () ->
        u8 w 1;
        bytes w "OK deadbeef")
      ()
  in
  check bool_ "v1 response rejected" true
    (Result.is_error (Frame.decode_response v1_response))

(* ---------------- server round trips ---------------- *)

let test_server_roundtrip () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client srv (fun c ->
          (* Values with newlines and quotes survive framing verbatim —
             exactly what the line transport could not carry. *)
          let value = "line one\nline two \"quoted\"\nline three" in
          let uid = ok_cl (Client.request c [ "put"; "k"; "master"; value ]) in
          check bool_ "uid parses" true (Result.is_ok (FB.parse_version uid));
          check string_ "get" value (ok_cl (Client.request c [ "get"; "k"; "master" ]));
          check string_ "head" uid (ok_cl (Client.request c [ "head"; "k"; "master" ]));
          ignore (ok_cl (Client.request c [ "branch"; "k"; "master"; "dev" ]));
          ignore (ok_cl (Client.request c [ "put"; "k"; "dev"; "v2" ]));
          ignore (ok_cl (Client.request c [ "merge"; "k"; "master"; "dev" ]));
          check string_ "merged" "v2" (ok_cl (Client.request c [ "get"; "k"; "master" ]));
          (* request_line tokenizes client-side. *)
          check string_ "request_line" "v2"
            (ok_cl (Client.request_line c "get k master"));
          (* Application errors come back typed; the connection stays up. *)
          (match Client.request c [ "get"; "missing"; "master" ] with
          | Error (Client.Remote (Errors.Key_not_found _ | Errors.Branch_not_found _)) -> ()
          | Error e -> Alcotest.fail ("wrong error: " ^ Client.error_to_string e)
          | Ok _ -> Alcotest.fail "missing key should fail");
          (match Client.request c [ "frobnicate" ] with
          | Error (Client.Remote (Errors.Invalid msg)) ->
            check bool_ "bad verb" true (Tutil.contains msg "bad request")
          | Error e -> Alcotest.fail ("wrong error: " ^ Client.error_to_string e)
          | Ok _ -> Alcotest.fail "unknown verb accepted");
          check string_ "still alive" "v2"
            (ok_cl (Client.request c [ "get"; "k"; "master" ]))))

let test_batch_roundtrip () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client srv (fun c ->
          (* Same-key batch: one stripe, one lock acquisition. *)
          let replies =
            ok_cl
              (Client.batch c
                 [ [ "put"; "k"; "master"; "v1" ];
                   [ "get"; "k"; "master" ];
                   [ "get"; "missing"; "master" ];
                   [ "head"; "k"; "master" ] ])
          in
          (match replies with
           | [ Ok uid; Ok "v1"; Error _; Ok head ] ->
             check string_ "head matches put" uid head
           | _ -> Alcotest.fail "unexpected same-key batch replies");
          (* The failing sub-request poisoned neither its batch nor the
             connection. *)
          check string_ "alive after partial failure" "v1"
            (ok_cl (Client.request c [ "get"; "k"; "master" ]));
          (* Cross-key batch: the combined scope is global. *)
          (match
             ok_cl
               (Client.batch c
                  [ [ "put"; "a"; "master"; "1" ];
                    [ "put"; "b"; "master"; "2" ];
                    [ "get"; "a"; "master" ];
                    [ "get"; "b"; "master" ] ])
           with
           | [ Ok _; Ok _; Ok "1"; Ok "2" ] -> ()
           | _ -> Alcotest.fail "cross-key batch failed");
          (* Read-only batch (shared lock path). *)
          (match
             ok_cl (Client.batch c [ [ "get"; "a"; "master" ]; [ "list" ] ])
           with
           | [ Ok "1"; Ok keys ] ->
             check bool_ "list sees keys" true (Tutil.contains keys "k")
           | _ -> Alcotest.fail "read-only batch failed");
          (* An empty batch is answered, emptily. *)
          check int_ "empty batch" 0 (List.length (ok_cl (Client.batch c [])))))

let test_remote_typed () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let r =
        match Remote.connect ~port:(Server.port srv) ~user:"alice" () with
        | Ok r -> r
        | Error e -> Alcotest.fail (Errors.to_string e)
      in
      Fun.protect
        ~finally:(fun () -> Remote.close r)
        (fun () ->
          let uid = ok_fb (Remote.put r ~key:"k" "v1") in
          check string_ "get" "v1" (ok_fb (Remote.get r ~key:"k"));
          check bool_ "head = put uid" true
            (Fb_hash.Hash.equal uid (ok_fb (Remote.head r ~key:"k")));
          ignore (ok_fb (Remote.fork r ~key:"k" ~new_branch:"dev"));
          ignore (ok_fb (Remote.put r ~branch:"dev" ~key:"k" "v2"));
          ignore
            (ok_fb (Remote.merge r ~key:"k" ~into:"master" ~from_branch:"dev"));
          check string_ "merged" "v2" (ok_fb (Remote.get r ~key:"k"));
          ok_fb
            (Remote.rename_branch r ~key:"k" ~from_branch:"dev"
               ~to_branch:"feature");
          let heads = ok_fb (Remote.latest r ~key:"k") in
          check bool_ "renamed branch listed" true
            (List.mem_assoc "feature" heads);
          check bool_ "old name gone" false (List.mem_assoc "dev" heads);
          check bool_ "master head typed" true
            (Fb_hash.Hash.equal
               (List.assoc "master" heads)
               (ok_fb (FB.head fb ~key:"k")));
          check bool_ "list_keys" true (List.mem "k" (ok_fb (Remote.list_keys r)));
          let meta = ok_fb (Remote.meta r (ok_fb (Remote.head r ~key:"k"))) in
          check bool_ "meta has author" true (Tutil.contains meta "alice");
          check bool_ "log lines" true
            (List.length (ok_fb (Remote.log r ~key:"k")) >= 2);
          (* The same typed constructor a local caller would get. *)
          (match Remote.get r ~key:"nope" with
           | Error (Errors.Key_not_found _ | Errors.Branch_not_found _) -> ()
           | Error e -> Alcotest.fail ("wrong error: " ^ Errors.to_string e)
           | Ok _ -> Alcotest.fail "missing key should fail");
          (* Typed batch: uids come back parsed, failures stay per-op. *)
          match
            ok_fb
              (Remote.batch r
                 [ Remote.Put { key = "b"; branch = "master"; value = "x" };
                   Remote.Get { key = "b"; branch = "master" };
                   Remote.Head { key = "b"; branch = "master" };
                   Remote.Get { key = "nope"; branch = "master" } ])
          with
          | [ Ok (Remote.Uid u1); Ok (Remote.Value "x"); Ok (Remote.Uid u2);
              Error _ ] ->
            check bool_ "batch put/head agree" true (Fb_hash.Hash.equal u1 u2)
          | _ -> Alcotest.fail "typed batch replies");
      (* A closed handle fails fast with a typed transient. *)
      match Remote.get r ~key:"k" with
      | Error (Errors.Transient msg) ->
        check bool_ "network-tagged" true (Tutil.contains msg "network")
      | _ -> Alcotest.fail "closed handle should be Transient")

let test_server_user_identity () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client ~user:"alice" srv (fun c ->
          ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "v" ]));
          let log = ok_cl (Client.request c [ "log"; "k"; "master" ]) in
          check bool_ "author recorded" true (Tutil.contains log "alice");
          (* Per-request override. *)
          ignore (ok_cl (Client.request ~user:"bob" c [ "put"; "k"; "master"; "w" ]));
          let log = ok_cl (Client.request c [ "log"; "k"; "master" ]) in
          check bool_ "override recorded" true (Tutil.contains log "bob")))

let test_server_durability () =
  with_temp_root (fun root ->
      let fb = ok_fb (Persistent.open_ ~root ()) in
      let save () = ignore (Persistent.save ~fsync:true ~root fb) in
      let uid =
        with_server ~save fb (fun srv ->
            with_client srv (fun c ->
                ok_cl (Client.request c [ "put"; "k"; "master"; "durable" ])))
      in
      (* with_server stopped the server; stop runs the final save, so a
         fresh instance sees the head. *)
      let fb2 = ok_fb (Persistent.open_ ~root ()) in
      check bool_ "head persisted" true
        (Fb_hash.Hash.equal (ok_fb (FB.parse_version uid))
           (ok_fb (FB.head fb2 ~key:"k"))))

let test_server_shutdown () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let srv = ok_net (Server.start ~config:test_config fb) in
  let port = Server.port srv in
  let c = ok_cl (Client.connect ~port ()) in
  ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "v" ]));
  Server.stop srv;
  check bool_ "stopped" false (Server.is_running srv);
  (* The open connection was kicked. *)
  check bool_ "old conn dead" true (Result.is_error (Client.request c [ "stat" ]));
  Client.close c;
  (* New connections are refused (or dead on arrival via the backlog). *)
  (match Client.connect ~port ~timeout_s:1.0 () with
  | Error _ -> ()
  | Ok c2 ->
    check bool_ "no service after stop" true
      (Result.is_error (Client.request c2 [ "stat" ]));
    Client.close c2);
  (* stop is idempotent. *)
  Server.stop srv

(* ---------------- bad peers and failed connects ---------------- *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_slow_peer () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with read_timeout_s = 10.0 } in
  with_server ~config fb (fun srv ->
      (* One byte at a time, with pauses: the read deadline covers the
         whole frame, so a slow-but-moving peer still gets served. *)
      let fd = raw_connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let frame =
            Frame.encode_frame
              (Frame.encode_request ~user:"slow"
                 (Frame.Single [ "put"; "s"; "master"; "v" ]))
          in
          String.iter
            (fun ch ->
              ignore (Unix.write fd (Bytes.make 1 ch) 0 1);
              Thread.delay 0.002)
            frame;
          match Frame.read_frame ~timeout_s:5.0 fd with
          | Ok payload -> (
            match Frame.decode_response payload with
            | Ok (_, _, Frame.One (Ok _)) -> ()
            | _ -> Alcotest.fail "slow peer got an error")
          | Error e -> Alcotest.fail (Frame.error_to_string e)))

let test_read_timeout () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with read_timeout_s = 0.15 } in
  with_server ~config fb (fun srv ->
      let fd = raw_connect (Server.port srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Send nothing: the server must give up on its own — with a
             typed Transient, not prose parsing. *)
          match Frame.read_frame ~timeout_s:5.0 fd with
          | Ok payload -> (
            match Frame.decode_response payload with
            | Ok (_, _, Frame.One (Error (Errors.Transient msg))) ->
              check bool_ "timeout reported" true (Tutil.contains msg "timeout")
            | _ -> Alcotest.fail "expected a Transient error response")
          | Error Frame.Eof -> ()  (* already hung up: also acceptable *)
          | Error e -> Alcotest.fail (Frame.error_to_string e)))

let test_max_frame () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with max_frame = 256 } in
  with_server ~config fb (fun srv ->
      let c = ok_cl (Client.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.request c [ "put"; "k"; "master"; String.make 4096 'x' ] with
          | Error (Client.Remote (Errors.Invalid msg)) ->
            check bool_ "too large" true (Tutil.contains msg "large")
          | Error e -> Alcotest.fail ("wrong error: " ^ Client.error_to_string e)
          | Ok _ -> Alcotest.fail "oversize frame accepted");
          (* The stream was desynchronized: the server hung up. *)
          check bool_ "connection closed" true
            (Result.is_error (Client.request c [ "stat" ]))));
  (* A small-but-legal request still works under the same limit. *)
  with_server ~config fb (fun srv ->
      with_client srv (fun c ->
          ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "small" ]))))

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_connect_failure_leaks_no_fd () =
  (* Learn a port with nothing listening behind it. *)
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close s;
  let before = count_fds () in
  for _ = 1 to 20 do
    match Client.connect ~port ~timeout_s:0.5 () with
    | Error _ -> ()
    | Ok c -> Client.close c (* something raced onto the port; still no leak *)
  done;
  check int_ "no fd leaked by failed connects" before (count_fds ())

(* ---------------- deferred watch ---------------- *)

let test_deferred_watch () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let events = ref [] in
  let _w = FB.watch fb (fun (ev : FB.head_event) -> events := ev.new_head :: !events) in
  let uid, flush =
    FB.with_deferred_watch fb (fun () ->
        let u = ok_fb (FB.put fb ~key:"k" (Value.string "v")) in
        check int_ "not delivered inside the section" 0 (List.length !events);
        u)
  in
  check int_ "not delivered before flush" 0 (List.length !events);
  flush ();
  check int_ "delivered by flush" 1 (List.length !events);
  check bool_ "event carries the committed head" true
    (Fb_hash.Hash.equal uid (List.hd !events));
  (* Undeferred delivery still works afterwards. *)
  ignore (ok_fb (FB.put fb ~key:"k" (Value.string "v2")));
  check int_ "immediate delivery restored" 2 (List.length !events)

(* ---------------- concurrency soaks ---------------- *)

let test_soak () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let port = Server.port srv in
      let clients = 8 and iterations = 25 in
      let errors = Atomic.make 0 in
      let fail fmt =
        Printf.ksprintf (fun s -> Atomic.incr errors; prerr_endline s) fmt
      in
      let worker cid () =
        match Client.connect ~port ~user:(Printf.sprintf "u%d" cid) () with
        | Error e -> fail "c%d connect: %s" cid (Client.error_to_string e)
        | Ok c ->
          let key = Printf.sprintf "k%d" cid in
          for i = 0 to iterations - 1 do
            let v = Printf.sprintf "%d-%d\npayload line" cid i in
            (match Client.request c [ "put"; key; "master"; v ] with
            | Ok _ -> ()
            | Error e -> fail "c%d put %d: %s" cid i (Client.error_to_string e));
            (match Client.request c [ "get"; key; "master" ] with
            | Ok got when got = v -> ()
            | Ok got -> fail "c%d get %d: corrupt %S" cid i got
            | Error e -> fail "c%d get %d: %s" cid i (Client.error_to_string e));
            if i mod 5 = 0 then begin
              let b = Printf.sprintf "dev%d" i in
              (match Client.request c [ "branch"; key; "master"; b ] with
              | Ok _ -> ()
              | Error e ->
                fail "c%d branch %d: %s" cid i (Client.error_to_string e));
              match Client.request c [ "merge"; key; "master"; b ] with
              | Ok _ -> ()
              | Error e ->
                fail "c%d merge %d: %s" cid i (Client.error_to_string e)
            end
          done;
          Client.close c
      in
      (* A byte-at-a-time peer runs alongside the fleet; everyone must
         still complete without corruption. *)
      let slow () =
        match raw_connect port with
        | exception Unix.Unix_error (e, _, _) ->
          fail "slow connect: %s" (Unix.error_message e)
        | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let frame =
                Frame.encode_frame
                  (Frame.encode_request ~user:"slow"
                     (Frame.Single [ "put"; "slowkey"; "master"; "slow value" ]))
              in
              String.iter
                (fun ch ->
                  ignore (Unix.write fd (Bytes.make 1 ch) 0 1);
                  Thread.delay 0.001)
                frame;
              match Frame.read_frame ~timeout_s:10.0 fd with
              | Ok payload -> (
                match Frame.decode_response payload with
                | Ok (_, _, Frame.One (Ok _)) -> ()
                | _ -> fail "slow peer: error response")
              | Error e -> fail "slow peer: %s" (Frame.error_to_string e))
      in
      let threads =
        Thread.create slow ()
        :: List.init clients (fun cid -> Thread.create (worker cid) ())
      in
      List.iter Thread.join threads;
      check int_ "soak errors" 0 (Atomic.get errors);
      (* Every client's last write is visible and uncorrupted. *)
      for cid = 0 to clients - 1 do
        let v = ok_fb (FB.get fb ~key:(Printf.sprintf "k%d" cid)) in
        check string_ "final value"
          (Printf.sprintf "%d-%d\npayload line" cid (iterations - 1))
          (match v with Value.Primitive (Fb_types.Primitive.String s) -> s | _ -> "?")
      done)

(* 8 readers against 2 writers: every read must be a value some writer
   actually committed (no torn reads), and the sequence each reader
   observes on one branch must be monotone (heads never move backwards —
   a shared-lock read can never see a half-applied or rolled-back
   write). *)
let test_mixed_soak () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      let port = Server.port srv in
      let writers = 2 and readers = 8 and writes = 40 in
      let errors = Atomic.make 0 in
      let fail fmt =
        Printf.ksprintf (fun s -> Atomic.incr errors; prerr_endline s) fmt
      in
      (* Seed so readers never race branch creation. *)
      with_client srv (fun c ->
          for w = 0 to writers - 1 do
            ignore
              (ok_cl
                 (Client.request c
                    [ "put"; Printf.sprintf "w%d" w; "master"; "0" ]))
          done);
      let writers_done = Atomic.make 0 in
      let writer wid () =
        (match Client.connect ~port () with
        | Error e -> fail "w%d connect: %s" wid (Client.error_to_string e)
        | Ok c ->
          let key = Printf.sprintf "w%d" wid in
          for i = 1 to writes do
            match Client.request c [ "put"; key; "master"; string_of_int i ] with
            | Ok _ -> ()
            | Error e -> fail "w%d put %d: %s" wid i (Client.error_to_string e)
          done;
          Client.close c);
        Atomic.incr writers_done
      in
      let reader rid () =
        match Client.connect ~port () with
        | Error e -> fail "r%d connect: %s" rid (Client.error_to_string e)
        | Ok c ->
          let key = Printf.sprintf "w%d" (rid mod writers) in
          let last = ref (-1) in
          let observed = ref 0 in
          while Atomic.get writers_done < writers do
            (match Client.request c [ "get"; key; "master" ] with
            | Ok v -> (
              incr observed;
              match int_of_string_opt v with
              | None -> fail "r%d torn read: %S" rid v
              | Some n ->
                if n < !last then
                  fail "r%d head went backwards: %d after %d" rid n !last;
                last := n)
            | Error e -> fail "r%d get: %s" rid (Client.error_to_string e))
          done;
          if !observed = 0 then fail "r%d observed nothing" rid;
          Client.close c
      in
      let threads =
        List.init writers (fun w -> Thread.create (writer w) ())
        @ List.init readers (fun r -> Thread.create (reader r) ())
      in
      List.iter Thread.join threads;
      check int_ "mixed soak errors" 0 (Atomic.get errors);
      (* Final state: every writer's last value is the head. *)
      for w = 0 to writers - 1 do
        match ok_fb (FB.get fb ~key:(Printf.sprintf "w%d" w)) with
        | Value.Primitive (Fb_types.Primitive.String s) ->
          check string_ "final head value" (string_of_int writes) s
        | _ -> Alcotest.fail "unexpected value shape"
      done)

(* ---------------- tracing & telemetry ---------------- *)

module Obs = Fb_obs.Obs

let span_named name spans = List.filter (fun s -> s.Obs.name = name) spans

(* One request, one trace: the client stamps its span into the frame
   header, the server joins it — the span ring (shared here because
   client and server are one process) must show a single trace id
   spanning both sides, with the server span parented on the client span
   and the lock wait visible inside it. *)
let test_trace_propagation () =
  Obs.reset ();
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client srv (fun c ->
          ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "v" ]))));
  let spans = Obs.spans () in
  match span_named "net.client.request" spans,
        span_named "net.server.request" spans with
  | [ cl ], [ sv ] ->
    check string_ "client and server share one trace id" cl.Obs.trace
      sv.Obs.trace;
    check int_ "server span is a child of the client span" cl.Obs.id
      sv.Obs.parent;
    let waits =
      List.filter
        (fun s -> s.Obs.name = "rwlock.wait" && s.Obs.trace = cl.Obs.trace)
        spans
    in
    check bool_ "rwlock wait span joins the trace" true (waits <> []);
    (match span_named "net.server.put" spans with
     | [ d ] ->
       check string_ "dispatch span in trace" cl.Obs.trace d.Obs.trace;
       check int_ "dispatch span under server span" sv.Obs.id d.Obs.parent
     | l -> Alcotest.failf "expected 1 dispatch span, got %d" (List.length l));
    (* The Chrome export carries the same trace id. *)
    check bool_ "chrome trace export carries the trace id" true
      (Tutil.contains (Obs.dump_chrome_trace ()) cl.Obs.trace)
  | cl, sv ->
    Alcotest.failf "expected 1 client + 1 server span, got %d + %d"
      (List.length cl) (List.length sv)

(* A BATCH is one wire frame but N dispatches: each sub-request must get
   its own child span under the server batch span, all in the client's
   trace. *)
let test_batch_trace_spans () =
  Obs.reset ();
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  with_server fb (fun srv ->
      with_client srv (fun c ->
          match
            Client.batch c
              [ [ "put"; "k"; "master"; "v1" ]; [ "get"; "k"; "master" ] ]
          with
          | Ok [ Ok _; Ok "v1" ] -> ()
          | Ok _ -> Alcotest.fail "unexpected batch replies"
          | Error e -> Alcotest.fail (Client.error_to_string e)));
  let spans = Obs.spans () in
  match span_named "net.client.batch" spans,
        span_named "net.server.batch" spans with
  | [ cl ], [ sv ] ->
    check string_ "batch trace id propagated" cl.Obs.trace sv.Obs.trace;
    check int_ "server batch parented on client batch" cl.Obs.id sv.Obs.parent;
    List.iter
      (fun name ->
        match span_named name spans with
        | [ sub ] ->
          check string_ (name ^ " in batch trace") sv.Obs.trace sub.Obs.trace;
          (* Children of the batch span via the lock-wait-free path:
             parent chain must reach the server batch span. *)
          let rec reaches id =
            id = sv.Obs.id
            || match List.find_opt (fun s -> s.Obs.id = id) spans with
               | Some s when s.Obs.parent >= 0 -> reaches s.Obs.parent
               | _ -> false
          in
          check bool_ (name ^ " descends from batch span") true
            (reaches sub.Obs.parent)
        | l ->
          Alcotest.failf "expected 1 %s span, got %d" name (List.length l))
      [ "net.server.put"; "net.server.get" ]
  | cl, sv ->
    Alcotest.failf "expected 1 client + 1 server batch span, got %d + %d"
      (List.length cl) (List.length sv)

let http_get port path =
  let fd = raw_connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let status_of reply =
  match String.index_opt reply ' ' with
  | Some i when String.length reply >= i + 4 -> String.sub reply (i + 1) 3
  | _ -> "???"

let test_metrics_sidecar () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let config = { test_config with metrics_port = Some 0 } in
  with_server ~config fb (fun srv ->
      let mport =
        match Server.metrics_port srv with
        | Some p -> p
        | None -> Alcotest.fail "sidecar did not start"
      in
      with_client srv (fun c ->
          ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "v" ])));
      let metrics = http_get mport "/metrics" in
      check string_ "metrics 200" "200" (status_of metrics);
      check bool_ "prometheus exposition has the frame counter" true
        (Tutil.contains metrics "fb_net_frames");
      check bool_ "per-verb histogram exported" true
        (Tutil.contains metrics "fb_net_put_seconds");
      let healthz = http_get mport "/healthz" in
      check string_ "healthz 200" "200" (status_of healthz);
      check bool_ "healthz reports ok" true (Tutil.contains healthz "\"ok\"");
      check string_ "tracez 200" "200" (status_of (http_get mport "/tracez"));
      let trace_json = http_get mport "/trace.json" in
      check string_ "trace.json 200" "200" (status_of trace_json);
      check bool_ "chrome trace payload" true
        (Tutil.contains trace_json "traceEvents");
      check string_ "unknown path is 404" "404"
        (status_of (http_get mport "/nope"));
      (* A second scrape must work: connections are one-shot
         (Connection: close), not keep-alive. *)
      check string_ "second scrape" "200"
        (status_of (http_get mport "/metrics")))

let test_slow_request_log () =
  Obs.reset ();
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  (* Threshold 0: every request is "slow", so one put must land in the
     ring and emit a Warn event carrying its trace id. *)
  let config = { test_config with slow_ms = 0.0 } in
  with_server ~config fb (fun srv ->
      with_client srv (fun c ->
          ignore (ok_cl (Client.request c [ "put"; "k"; "master"; "v" ])));
      check bool_ "slow ring captured the request" true
        (Server.slow_trace_count srv > 0));
  let warns =
    List.filter
      (fun (e : Obs.event) -> e.Obs.ev_level = Obs.Warn
                              && e.Obs.ev_msg = "slow request")
      (Obs.events ())
  in
  match warns with
  | [] -> Alcotest.fail "no slow-request event logged"
  | e :: _ ->
    check bool_ "event names the verb" true
      (List.mem_assoc "verb" e.Obs.ev_fields);
    let trace = Option.value (List.assoc_opt "trace" e.Obs.ev_fields) ~default:"" in
    check bool_ "event carries a trace id" true (String.length trace = 32);
    check bool_ "span tree renders for that trace" true
      (Tutil.contains (Obs.render_trace trace) "net.server.request")

let suite =
  [ Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame stream" `Quick test_frame_stream;
    Alcotest.test_case "frame truncated prefixes" `Quick test_frame_truncated;
    Alcotest.test_case "frame limits" `Quick test_frame_limits;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_trace_roundtrip;
    Alcotest.test_case "header-less v2 compatibility" `Quick
      test_headerless_v2_compat;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    Alcotest.test_case "request rejects garbage" `Quick
      test_request_rejects_garbage;
    Alcotest.test_case "v1 frames rejected" `Quick test_v1_frames_rejected;
    Alcotest.test_case "server round-trip" `Quick test_server_roundtrip;
    Alcotest.test_case "batch round-trip" `Quick test_batch_roundtrip;
    Alcotest.test_case "typed remote handle" `Quick test_remote_typed;
    Alcotest.test_case "server user identity" `Quick test_server_user_identity;
    Alcotest.test_case "server durability" `Quick test_server_durability;
    Alcotest.test_case "server shutdown" `Quick test_server_shutdown;
    Alcotest.test_case "slow peer" `Quick test_slow_peer;
    Alcotest.test_case "read timeout" `Quick test_read_timeout;
    Alcotest.test_case "max frame" `Quick test_max_frame;
    Alcotest.test_case "failed connect leaks no fd" `Quick
      test_connect_failure_leaks_no_fd;
    Alcotest.test_case "deferred watch delivery" `Quick test_deferred_watch;
    Alcotest.test_case "concurrent soak" `Quick test_soak;
    Alcotest.test_case "mixed reader/writer soak" `Quick test_mixed_soak;
    Alcotest.test_case "trace propagation end-to-end" `Quick
      test_trace_propagation;
    Alcotest.test_case "batch sub-request spans" `Quick test_batch_trace_spans;
    Alcotest.test_case "metrics sidecar" `Quick test_metrics_sidecar;
    Alcotest.test_case "slow request log" `Quick test_slow_request_log ]
