let () =
  Alcotest.run "forkbase"
    [ ("hash", Test_hash.suite);
      ("codec", Test_codec.suite);
      ("chunk", Test_chunk.suite);
      ("postree", Test_postree.suite);
      ("seqtree", Test_seqtree.suite);
      ("types", Test_types.suite);
      ("repr", Test_repr.suite);
      ("core", Test_core.suite);
      ("dataset", Test_dataset.suite);
      ("service", Test_service.suite);
      ("sharded", Test_sharded.suite);
      ("pack", Test_pack.suite);
      ("index", Test_index.suite);
      ("proof", Test_proof.suite);
      ("json", Test_json.suite);
      ("persistent", Test_persistent.suite);
      ("log", Test_log.suite);
      ("soak", Test_soak.suite);
      ("edge", Test_edge.suite);
      ("faults", Test_faults.suite);
      ("patch", Test_patch.suite);
      ("indexer", Test_indexer.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("obs", Test_obs.suite);
      ("rwlock", Test_rwlock.suite);
      ("net", Test_net.suite);
      ("cluster", Test_cluster.suite);
      ("pipeline", Test_pipeline.suite);
      ("sync", Test_sync.suite) ]
