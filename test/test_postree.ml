(* POS-Tree (keyed): construction, lookup, incremental update, SIRI
   properties, diff, three-way merge, validation and corruption
   detection. *)

module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Store = Fb_chunk.Store
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module Prng = Fb_hash.Prng

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let mk_bindings ?(seed = 1L) n =
  let rng = Prng.create seed in
  List.init n (fun i ->
      ( Printf.sprintf "key-%06d" i,
        Printf.sprintf "value-%d-%Ld" i (Prng.next_int64 rng) ))

let shuffle ?(seed = 2L) l =
  let rng = Prng.create seed in
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.next_int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let same_root a b = Option.equal Hash.equal (Pmap.root a) (Pmap.root b)

(* ---------------- basics ---------------- *)

let test_empty () =
  let store = Mem_store.create () in
  let t = Pmap.empty store in
  check bool_ "is_empty" true (Pmap.is_empty t);
  check int_ "cardinal" 0 (Pmap.cardinal t);
  check int_ "height" 0 (Pmap.height t);
  check bool_ "find" true (Pmap.find t "x" = None);
  check bool_ "min" true (Pmap.min_entry t = None);
  check bool_ "max" true (Pmap.max_entry t = None);
  check bool_ "to_list" true (Pmap.to_list t = []);
  check bool_ "validate" true (Pmap.validate t = Ok ());
  check bool_ "diff empty empty" true (Pmap.diff t t = [])

let test_build_and_find () =
  let store = Mem_store.create () in
  let bs = mk_bindings 5000 in
  let t = Pmap.of_bindings store bs in
  check int_ "cardinal" 5000 (Pmap.cardinal t);
  check bool_ "height > 1" true (Pmap.height t >= 2);
  List.iteri
    (fun i (k, v) ->
      if i mod 97 = 0 then
        check bool_ ("find " ^ k) true (Pmap.find_value t k = Some v))
    bs;
  check bool_ "find absent" true (Pmap.find_value t "zzz" = None);
  check bool_ "find below range" true (Pmap.find_value t "aaa" = None);
  check bool_ "mem" true (Pmap.mem t "key-000000");
  check bool_ "bindings sorted" true (Pmap.bindings t = bs);
  (match Pmap.min_entry t, Pmap.max_entry t with
   | Some lo, Some hi ->
     check bool_ "min" true (String.equal lo.Pmap.key "key-000000");
     check bool_ "max" true (String.equal hi.Pmap.key "key-004999")
   | _ -> Alcotest.fail "min/max missing")

let test_single_entry () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store [ ("only", "one") ] in
  check int_ "cardinal" 1 (Pmap.cardinal t);
  check int_ "height" 1 (Pmap.height t);
  check bool_ "find" true (Pmap.find_value t "only" = Some "one");
  check bool_ "validate" true (Pmap.validate t = Ok ())

let test_build_dedups_keys () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store [ ("a", "1"); ("b", "2"); ("a", "3") ] in
  check int_ "cardinal" 2 (Pmap.cardinal t);
  (* Last binding wins. *)
  check bool_ "last wins" true (Pmap.find_value t "a" = Some "3")

let test_of_root () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 500) in
  let t' = Pmap.of_root store (Pmap.root t) in
  check bool_ "same content" true (Pmap.bindings t' = Pmap.bindings t)

(* ---------------- updates ---------------- *)

let test_update_insert_remove () =
  let store = Mem_store.create () in
  let bs = mk_bindings 2000 in
  let t = Pmap.of_bindings store bs in
  let t = Pmap.put t "key-000500x" "inserted" in
  check int_ "after insert" 2001 (Pmap.cardinal t);
  check bool_ "inserted" true (Pmap.find_value t "key-000500x" = Some "inserted");
  let t = Pmap.remove t "key-000500x" in
  check int_ "after remove" 2000 (Pmap.cardinal t);
  check bool_ "removed" true (Pmap.find_value t "key-000500x" = None);
  (* Removing an absent key is a no-op that preserves the root. *)
  let t2 = Pmap.remove t "not-there" in
  check bool_ "no-op remove" true (same_root t t2)

let test_update_equals_rebuild () =
  let store = Mem_store.create () in
  let bs = mk_bindings 3000 in
  let t = Pmap.of_bindings store bs in
  (* A mixed batch: overwrite, fresh insert at front, middle, back, and
     deletions. *)
  let edits =
    [ Pmap.Put (Pmap.binding "key-000100" "overwritten");
      Pmap.Put (Pmap.binding "aaa-front" "front");
      Pmap.Put (Pmap.binding "key-001500m" "middle");
      Pmap.Put (Pmap.binding "zzz-back" "back");
      Pmap.Remove "key-002000";
      Pmap.Remove "key-000001" ]
  in
  let t' = Pmap.update t edits in
  let rebuilt =
    Pmap.of_bindings store
      ((("aaa-front", "front") :: ("key-001500m", "middle")
        :: ("zzz-back", "back")
        :: List.filter_map
             (fun (k, v) ->
               if k = "key-002000" || k = "key-000001" then None
               else if k = "key-000100" then Some (k, "overwritten")
               else Some (k, v))
             bs))
  in
  check bool_ "update = rebuild (bit identical)" true (same_root t' rebuilt);
  check bool_ "validate" true (Pmap.validate t' = Ok ())

let test_update_empty_edits () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 100) in
  check bool_ "no edits no change" true (same_root t (Pmap.update t []))

let test_update_to_empty () =
  let store = Mem_store.create () in
  let bs = mk_bindings 300 in
  let t = Pmap.of_bindings store bs in
  let t' = Pmap.update t (List.map (fun (k, _) -> Pmap.Remove k) bs) in
  check bool_ "emptied" true (Pmap.is_empty t');
  check int_ "cardinal 0" 0 (Pmap.cardinal t')

let test_update_from_empty () =
  let store = Mem_store.create () in
  let t = Pmap.empty store in
  let t' =
    Pmap.update t
      [ Pmap.Put (Pmap.binding "b" "2"); Pmap.Put (Pmap.binding "a" "1");
        Pmap.Remove "c" ]
  in
  check bool_ "built" true (Pmap.bindings t' = [ ("a", "1"); ("b", "2") ])

let test_update_localized_writes () =
  (* SIRI Property 2 (recursively identical): a point insert creates only
     O(height) fresh chunks; everything else is dedup-shared. *)
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 20_000) in
  let before = (Store.stats store).Store.physical_chunks in
  let t' = Pmap.put t "key-010000" "CHANGED" in
  let created = (Store.stats store).Store.physical_chunks - before in
  check bool_
    (Printf.sprintf "new chunks %d <= 4 + 3*height" created)
    true
    (created <= 4 + (3 * Pmap.height t'));
  check bool_ "validate" true (Pmap.validate t' = Ok ())

let test_to_seq_lazy () =
  let store = Mem_store.create () in
  let bs = mk_bindings 20_000 in
  let t = Pmap.of_bindings store bs in
  (* Full traversal agrees with to_list. *)
  check bool_ "full" true (List.of_seq (Pmap.to_seq t) = Pmap.to_list t);
  (* Early termination reads only a prefix of the chunks. *)
  let gets0 = (Store.stats store).Store.gets in
  let first10 = List.of_seq (Seq.take 10 (Pmap.to_seq t)) in
  let gets = (Store.stats store).Store.gets - gets0 in
  check int_ "ten entries" 10 (List.length first10);
  check bool_ (Printf.sprintf "few reads %d" gets) true (gets <= 8);
  check bool_ "empty seq" true
    (List.of_seq (Pmap.to_seq (Pmap.empty store)) = [])

let test_build_sorted_seq () =
  let store = Mem_store.create () in
  let bs = mk_bindings 5000 in
  let streamed =
    Pmap.build_sorted_seq store
      (Seq.map (fun (k, v) -> Pmap.binding k v) (List.to_seq bs))
  in
  check bool_ "streamed = bulk" true
    (same_root streamed (Pmap.of_bindings store bs));
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "build_sorted_seq: keys not strictly increasing")
    (fun () ->
      ignore
        (Pmap.build_sorted_seq store
           (List.to_seq [ Pmap.binding "b" "1"; Pmap.binding "a" "2" ])));
  check bool_ "empty stream" true
    (Pmap.is_empty (Pmap.build_sorted_seq store Seq.empty))

(* ---------------- range queries ---------------- *)

let test_range_queries () =
  let store = Mem_store.create () in
  let bs = mk_bindings 5000 in
  let t = Pmap.of_bindings store bs in
  let slice lo hi =
    List.filter (fun (k, _) -> k >= lo && k <= hi) bs
    |> List.map (fun (k, v) -> Pmap.binding k v)
  in
  let got = Pmap.to_list_range ~lo:"key-001000" ~hi:"key-001999" t in
  check bool_ "middle slice" true (got = slice "key-001000" "key-001999");
  check int_ "slice size" 1000 (List.length got);
  (* Unbounded sides. *)
  check int_ "from lo" 2000
    (List.length (Pmap.to_list_range ~lo:"key-003000" t));
  check int_ "to hi" 10 (List.length (Pmap.to_list_range ~hi:"key-000009" t));
  check int_ "whole" 5000 (List.length (Pmap.to_list_range t));
  (* Bounds between keys and outside the key space. *)
  check int_ "between keys" 1
    (List.length (Pmap.to_list_range ~lo:"key-000001a" ~hi:"key-000002z" t));
  check int_ "beyond" 0 (List.length (Pmap.to_list_range ~lo:"zzz" t));
  check int_ "inverted" 0
    (List.length (Pmap.to_list_range ~lo:"key-002000" ~hi:"key-001000" t));
  (* Empty tree. *)
  check int_ "empty tree" 0
    (List.length (Pmap.to_list_range ~lo:"a" (Pmap.empty store)))

let test_count_range_matches_list () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 5000) in
  List.iter
    (fun (lo, hi) ->
      let by_list =
        List.length (Pmap.to_list_range ?lo ?hi t)
      in
      check int_ "count = list length" by_list (Pmap.count_range ?lo ?hi t))
    [ (Some "key-001000", Some "key-001999");
      (Some "key-000000", Some "key-004999");
      (None, Some "key-002500");
      (Some "key-004990", None);
      (None, None);
      (Some "nope", None) ]

let test_nth () =
  let store = Mem_store.create () in
  let bs = mk_bindings 3000 in
  let t = Pmap.of_bindings store bs in
  List.iter
    (fun i ->
      check bool_ (Printf.sprintf "nth %d" i) true
        (Pmap.nth t i
         = Some (let k, v = List.nth bs i in Pmap.binding k v)))
    [ 0; 1; 499; 1500; 2999 ];
  check bool_ "out of range" true (Pmap.nth t 3000 = None);
  check bool_ "negative" true (Pmap.nth t (-1) = None);
  check bool_ "empty" true (Pmap.nth (Pmap.empty store) 0 = None)

let test_count_range_reads_few_chunks () =
  (* A wide interior range must be counted from index statistics. *)
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 50_000) in
  let total = List.length (Pmap.node_hashes t) in
  let gets0 = (Store.stats store).Store.gets in
  let n = Pmap.count_range ~lo:"key-005000" ~hi:"key-045000" t in
  let gets = (Store.stats store).Store.gets - gets0 in
  check int_ "count" 40_001 n;
  check bool_ (Printf.sprintf "gets %d << chunks %d" gets total) true
    (gets * 20 < total)

(* ---------------- SIRI properties ---------------- *)

let test_structural_invariance_orders () =
  let store = Mem_store.create () in
  let bs = mk_bindings 2000 in
  let bulk = Pmap.of_bindings store bs in
  let incremental =
    List.fold_left
      (fun t (k, v) -> Pmap.put t k v)
      (Pmap.empty store)
      (shuffle bs)
  in
  check bool_ "bulk = shuffled incremental" true (same_root bulk incremental);
  (* Batched in two halves, reversed. *)
  let half = List.filteri (fun i _ -> i < 1000) bs
  and rest = List.filteri (fun i _ -> i >= 1000) bs in
  let batched =
    Pmap.update
      (Pmap.of_bindings store rest)
      (List.map (fun (k, v) -> Pmap.Put (Pmap.binding k v)) half)
  in
  check bool_ "batched halves" true (same_root bulk batched)

let test_history_independence () =
  (* Insert then delete extra records: the detour leaves no trace. *)
  let store = Mem_store.create () in
  let bs = mk_bindings 1000 in
  let direct = Pmap.of_bindings store bs in
  let detour =
    let t = Pmap.of_bindings store bs in
    let t = Pmap.put t "key-000500a" "temp1" in
    let t = Pmap.put t "key-000999z" "temp2" in
    let t = Pmap.remove t "key-000500a" in
    Pmap.remove t "key-000999z"
  in
  check bool_ "detour erased" true (same_root direct detour)

let test_universal_reuse () =
  (* SIRI Property 3: a larger instance reuses pages of a smaller one when
     content overlaps (same store, count dedup hits). *)
  let store = Mem_store.create () in
  let small = Pmap.of_bindings store (mk_bindings 5000) in
  let small_pages =
    List.fold_left
      (fun s h -> Hash.Set.add h s)
      Hash.Set.empty (Pmap.node_hashes small)
  in
  (* Superset: same 5000 plus 5000 more appended after. *)
  let more =
    mk_bindings 5000
    @ List.init 5000 (fun i -> (Printf.sprintf "tail-%06d" i, "t"))
  in
  let large = Pmap.of_bindings store more in
  let large_pages =
    List.fold_left
      (fun s h -> Hash.Set.add h s)
      Hash.Set.empty (Pmap.node_hashes large)
  in
  let shared = Hash.Set.cardinal (Hash.Set.inter small_pages large_pages) in
  (* The small instance's leaves are almost all reused; only the boundary
     region and index levels can differ. *)
  check bool_
    (Printf.sprintf "shared %d of %d" shared (Hash.Set.cardinal small_pages))
    true
    (float_of_int shared
     >= 0.8 *. float_of_int (Hash.Set.cardinal small_pages))

(* ---------------- diff ---------------- *)

let naive_diff bs1 bs2 =
  (* Reference diff on sorted association lists. *)
  let m1 = List.to_seq bs1 |> Hashtbl.of_seq in
  let m2 = List.to_seq bs2 |> Hashtbl.of_seq in
  let changes = ref [] in
  List.iter
    (fun (k, v1) ->
      match Hashtbl.find_opt m2 k with
      | None -> changes := `Removed (k, v1) :: !changes
      | Some v2 -> if v1 <> v2 then changes := `Modified (k, v1, v2) :: !changes)
    bs1;
  List.iter
    (fun (k, v2) ->
      if not (Hashtbl.mem m1 k) then changes := `Added (k, v2) :: !changes)
    bs2;
  List.sort compare !changes

let to_naive (c : Pmap.change) =
  match c with
  | Pmap.Added b -> `Added (b.Pmap.key, b.Pmap.value)
  | Pmap.Removed b -> `Removed (b.Pmap.key, b.Pmap.value)
  | Pmap.Modified (b1, b2) -> `Modified (b1.Pmap.key, b1.Pmap.value, b2.Pmap.value)

let test_diff_correctness () =
  let store = Mem_store.create () in
  let bs = mk_bindings 4000 in
  let bs' =
    List.filter_map
      (fun (k, v) ->
        if k = "key-000777" then None
        else if k = "key-002222" then Some (k, "changed")
        else Some (k, v))
      bs
    @ [ ("key-009999x", "fresh") ]
  in
  let t1 = Pmap.of_bindings store bs in
  let t2 = Pmap.of_bindings store bs' in
  let got = List.sort compare (List.map to_naive (Pmap.diff t1 t2)) in
  check bool_ "diff matches reference" true (got = naive_diff bs bs');
  check int_ "diff size" 3 (List.length got);
  (* Symmetry: reversing swaps added/removed. *)
  let rev = Pmap.diff t2 t1 in
  check int_ "reverse size" 3 (List.length rev);
  check bool_ "self diff" true (Pmap.diff t1 t1 = [])

let test_diff_prunes_shared_subtrees () =
  (* O(D log N): diffing two large trees differing in one entry must touch
     far fewer chunks than a full scan.  Count store gets. *)
  let store = Mem_store.create () in
  let bs = mk_bindings 50_000 in
  let t1 = Pmap.of_bindings store bs in
  let t2 = Pmap.put t1 "key-025000" "poked" in
  let before = (Store.stats store).Store.gets in
  let d = Pmap.diff t1 t2 in
  let gets = (Store.stats store).Store.gets - before in
  check int_ "one change" 1 (List.length d);
  let total_chunks = List.length (Pmap.node_hashes t1) in
  check bool_
    (Printf.sprintf "gets %d << chunks %d" gets total_chunks)
    true
    (gets * 10 < total_chunks)

let test_diff_disjoint_trees () =
  let store = Mem_store.create () in
  let t1 = Pmap.of_bindings store [ ("a", "1"); ("b", "2") ] in
  let t2 = Pmap.of_bindings store [ ("c", "3") ] in
  check int_ "all differ" 3 (List.length (Pmap.diff t1 t2));
  check int_ "vs empty" 2
    (List.length (Pmap.diff t1 (Pmap.empty store)))

(* ---------------- merge ---------------- *)

let test_merge_disjoint () =
  let store = Mem_store.create () in
  let base = Pmap.of_bindings store (mk_bindings 2000) in
  let ours = Pmap.put base "key-000100" "ours-change" in
  let theirs = Pmap.put base "key-001900" "theirs-change" in
  match Pmap.merge ~base ~ours ~theirs () with
  | Error _ -> Alcotest.fail "unexpected conflict"
  | Ok merged ->
    check bool_ "ours kept" true
      (Pmap.find_value merged "key-000100" = Some "ours-change");
    check bool_ "theirs applied" true
      (Pmap.find_value merged "key-001900" = Some "theirs-change");
    check int_ "cardinal" 2000 (Pmap.cardinal merged);
    (* Merge must equal the rebuild with both edits. *)
    let expected =
      Pmap.update base
        [ Pmap.Put (Pmap.binding "key-000100" "ours-change");
          Pmap.Put (Pmap.binding "key-001900" "theirs-change") ]
    in
    check bool_ "merge canonical" true (same_root merged expected)

let test_merge_identical_edits () =
  let store = Mem_store.create () in
  let base = Pmap.of_bindings store (mk_bindings 100) in
  let ours = Pmap.put base "k" "same" in
  let theirs = Pmap.put base "k" "same" in
  match Pmap.merge ~base ~ours ~theirs () with
  | Error _ -> Alcotest.fail "identical edits are not a conflict"
  | Ok merged ->
    check bool_ "value" true (Pmap.find_value merged "k" = Some "same")

let test_merge_conflict () =
  let store = Mem_store.create () in
  let base = Pmap.of_bindings store (mk_bindings 100) in
  let ours = Pmap.put base "key-000050" "ours" in
  let theirs = Pmap.put base "key-000050" "theirs" in
  (match Pmap.merge ~base ~ours ~theirs () with
   | Ok _ -> Alcotest.fail "expected conflict"
   | Error [ c ] ->
     check bool_ "conflict key" true (String.equal c.Pmap.key "key-000050");
     check bool_ "base present" true (c.Pmap.base <> None)
   | Error _ -> Alcotest.fail "expected exactly one conflict");
  (* Resolvers. *)
  (match Pmap.merge ~on_conflict:Pmap.resolve_ours ~base ~ours ~theirs () with
   | Ok m -> check bool_ "ours wins" true (Pmap.find_value m "key-000050" = Some "ours")
   | Error _ -> Alcotest.fail "resolver failed");
  match Pmap.merge ~on_conflict:Pmap.resolve_theirs ~base ~ours ~theirs () with
  | Ok m ->
    check bool_ "theirs wins" true
      (Pmap.find_value m "key-000050" = Some "theirs")
  | Error _ -> Alcotest.fail "resolver failed"

let test_merge_remove_vs_modify () =
  let store = Mem_store.create () in
  let base = Pmap.of_bindings store [ ("a", "1"); ("b", "2") ] in
  let ours = Pmap.remove base "a" in
  let theirs = Pmap.put base "a" "3" in
  match Pmap.merge ~base ~ours ~theirs () with
  | Ok _ -> Alcotest.fail "remove vs modify must conflict"
  | Error [ c ] -> check bool_ "key a" true (String.equal c.Pmap.key "a")
  | Error _ -> Alcotest.fail "one conflict expected"

let test_merge_page_reuse () =
  (* Fig. 3: disjoint merges mostly reuse pages; measure dedup hits. *)
  let store = Mem_store.create () in
  let base = Pmap.of_bindings store (mk_bindings 20_000) in
  let ours = Pmap.put base "key-000100" "A" in
  let theirs = Pmap.put base "key-019000" "B" in
  let s0 = Store.stats store in
  (match Pmap.merge ~base ~ours ~theirs () with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "conflict");
  let s1 = Store.stats store in
  let puts = s1.Store.puts - s0.Store.puts in
  let fresh = s1.Store.physical_chunks - s0.Store.physical_chunks in
  check bool_
    (Printf.sprintf "fresh %d << puts %d" fresh puts)
    true
    (fresh <= 4 + (3 * Pmap.height base))

(* ---------------- validation / corruption ---------------- *)

let test_validate_detects_bitflip () =
  let store, handle = Mem_store.create_with_handle () in
  let t = Pmap.of_bindings store (mk_bindings 2000) in
  check bool_ "clean validates" true (Pmap.validate t = Ok ());
  (* Flip one byte in one reachable chunk. *)
  let victim = List.nth (Pmap.node_hashes t) 3 in
  ignore
    (Mem_store.tamper handle victim ~f:(fun s ->
         let b = Bytes.of_string s in
         let i = Bytes.length b / 2 in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
         Bytes.to_string b));
  check bool_ "bitflip detected" true (Result.is_error (Pmap.validate t))

let test_validate_detects_missing_chunk () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 2000) in
  let victim = List.nth (Pmap.node_hashes t) 1 in
  ignore (store.Store.delete victim);
  check bool_ "missing detected" true (Result.is_error (Pmap.validate t))

let test_corrupt_exception_on_navigation () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 2000) in
  (match Pmap.root t with
   | None -> Alcotest.fail "root"
   | Some root ->
     ignore (store.Store.delete root);
     (try
        ignore (Pmap.find t "key-000001");
        Alcotest.fail "expected Corrupt"
      with Fb_postree.Postree.Corrupt _ -> ()))

let test_node_stats () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 10_000) in
  let ns = Pmap.node_stats t in
  check int_ "levels = height" (Pmap.height t) ns.Pmap.levels;
  check int_ "leaf entries" 10_000 ns.Pmap.leaf_entries;
  check bool_ "root level single" true (List.hd ns.Pmap.nodes_per_level = 1);
  let leaves = List.nth ns.Pmap.nodes_per_level (ns.Pmap.levels - 1) in
  check int_ "leaf sizes count" leaves (List.length ns.Pmap.leaf_node_sizes);
  (* Mean leaf size should be in the ballpark of 2^q = 2048 bytes. *)
  let mean =
    float_of_int (List.fold_left ( + ) 0 ns.Pmap.leaf_node_sizes)
    /. float_of_int leaves
  in
  check bool_ (Printf.sprintf "mean leaf %.0fB" mean) true
    (mean > 500.0 && mean < 8000.0)

(* ---------------- decoded-node cache ---------------- *)

module Node_cache = Fb_postree.Node_cache
module Gc = Fb_chunk.Gc
module Chunk = Fb_chunk.Chunk

let test_node_cache_serves_repeat_reads () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 5000) in
  let probe () =
    for i = 0 to 99 do
      ignore (Pmap.find t (Printf.sprintf "key-%06d" (i * 41)))
    done
  in
  probe ();
  (* Warm: every node on the probed paths is now cached, so re-probing must
     not read the store at all (the liveness check uses [mem], which is not
     a [get]). *)
  let gets_before = (Store.stats store).Store.gets in
  probe ();
  check int_ "warm finds bypass the store" gets_before
    (Store.stats store).Store.gets

let test_node_cache_invalidated_by_gc () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store (mk_bindings 3000) in
  ignore (Pmap.find t "key-000001");
  (* A no-roots sweep deletes every chunk through the notifying
     [Store.delete]; the warm cache must not keep serving their decodes. *)
  ignore (Gc.sweep store ~children:(fun _ -> []) ~roots:[]);
  (try
     ignore (Pmap.find t "key-000001");
     Alcotest.fail "expected Corrupt after GC"
   with Fb_postree.Postree.Corrupt _ -> ())

let test_node_cache_unit () =
  let store = Mem_store.create () in
  let cache : string Node_cache.t = Node_cache.create ~name:"test" in
  let c = Chunk.v Chunk.Leaf_blob "cached-bytes" in
  let id = Store.put store c in
  Node_cache.add cache id "decoded";
  check bool_ "hit" true (Node_cache.find_live cache store id = Some "decoded");
  (* A notifying delete invalidates eagerly. *)
  ignore (Store.delete store id);
  check bool_ "miss after delete" true
    (Node_cache.find_live cache store id = None);
  (* An entry for a chunk the store does not hold is never served: the
     per-hit liveness probe catches deletions that bypassed the hook. *)
  Node_cache.add cache id "ghost";
  check bool_ "liveness probe blocks stale entry" true
    (Node_cache.find_live cache store id = None);
  let s = Node_cache.stats cache in
  check bool_ "stats counted" true
    (s.Node_cache.hits = 1 && s.Node_cache.misses >= 2);
  (* Capacity 0 disables caching entirely. *)
  let off : string Node_cache.t = Node_cache.create ~name:"test-off" in
  Node_cache.set_capacity off 0;
  let id2 = Store.put store c in
  Node_cache.add off id2 "x";
  check bool_ "disabled cache stores nothing" true
    (Node_cache.find_live off store id2 = None)

(* ---------------- golden hashes ---------------- *)

let test_golden_hashes () =
  (* Pinned identities captured from the seed implementation.  Any change
     to chunk encoding, SHA-256, the Γ table, or boundary placement breaks
     this test — which is the point: the performance work must be
     bit-compatible with already-stored data. *)
  let store = Mem_store.create () in
  let hex h = Hash.to_hex h in
  let root_hex = function Some h -> hex h | None -> "NONE" in
  check Alcotest.string "chunk blob id"
    "8fe6b4673dfd2b69a3fba1776e8689fbe408ae30f6b6bde4cf4e534adc385adc"
    (hex (Chunk.hash (Chunk.v Chunk.Leaf_blob "hello world")));
  check Alcotest.string "chunk map id"
    "a18fc488d723f16bf20a1c490f7e0f63a40b879ccdff563b30677cb0dbdfd47b"
    (hex (Chunk.hash (Chunk.v Chunk.Leaf_map "payload-map")));
  check Alcotest.string "chunk index id"
    "cfbe3b848f1206ee1c73da2f0faf3b0c3bab2d6d992b81b5411f68c0df46efed"
    (hex (Chunk.hash (Chunk.v Chunk.Index "payload-index")));
  let t = Pmap.of_bindings store (mk_bindings 2000) in
  check Alcotest.string "pmap root"
    "5e07c43fa4674e63908ef8514ef1192a0020374cdf70a47513c5655d6042d09c"
    (root_hex (Pmap.root t));
  let s = Pset.of_elements store (List.map fst (mk_bindings 1500)) in
  check Alcotest.string "pset root"
    "d34eab318c3f2fa729f56c235cc6dd37f8a4630344323414434661e31bc84b72"
    (root_hex (Pset.root s));
  let rng = Prng.create 7L in
  let blob = String.init 300_000 (fun _ -> Char.chr (Prng.next_int rng 256)) in
  let b = Fb_postree.Pblob.of_string store blob in
  check Alcotest.string "pblob root"
    "041ac133f3493d2291554846e6b0b47b2ed3ea4524188c2f04cc720ca92e5451"
    (root_hex (Fb_postree.Pblob.root b));
  let l = Fb_postree.Plist.of_list store (List.map snd (mk_bindings ~seed:3L 1200)) in
  check Alcotest.string "plist root"
    "2f10abfaef889420ab2ad705dec1346579aeaca68cbe775ab2468a71ec8876af"
    (root_hex (Fb_postree.Plist.root l))

(* ---------------- Pset ---------------- *)

let test_pset_proofs () =
  (* Proofs come with the functor: sets prove membership/absence too. *)
  let store = Mem_store.create () in
  let s = Pset.of_elements store (List.init 3000 (Printf.sprintf "el-%05d")) in
  let root = Option.get (Pset.root s) in
  (match Pset.prove s "el-01500" with
   | Error e -> Alcotest.fail e
   | Ok proof -> (
     match Pset.verify_proof ~root "el-01500" proof with
     | Ok (Some e) -> check bool_ "member" true (String.equal e "el-01500")
     | _ -> Alcotest.fail "membership not proven"));
  match Pset.prove s "not-there" with
  | Error e -> Alcotest.fail e
  | Ok proof -> (
    match Pset.verify_proof ~root "not-there" proof with
    | Ok None -> ()
    | _ -> Alcotest.fail "absence not proven")

let test_pset_basics () =
  let store = Mem_store.create () in
  let elems = List.init 1000 (Printf.sprintf "element-%04d") in
  let s = Pset.of_elements store (shuffle elems) in
  check int_ "cardinal" 1000 (Pset.cardinal s);
  check bool_ "mem" true (Pset.mem s "element-0500");
  check bool_ "not mem" false (Pset.mem s "nope");
  check bool_ "sorted elements" true (Pset.elements s = elems);
  let s2 = Pset.add s "element-9999" in
  check int_ "added" 1001 (Pset.cardinal s2);
  let d = Pset.diff s s2 in
  check int_ "diff" 1 (List.length d);
  check bool_ "invariance" true
    (Option.equal Hash.equal (Pset.root (Pset.of_elements store elems))
       (Pset.root s))

(* ---------------- qcheck properties ---------------- *)

let qcheck_cases =
  let open QCheck in
  let kv_list =
    list_of_size (Gen.int_range 0 150)
      (pair (string_gen_of_size (Gen.int_range 1 12) Gen.printable)
         (string_gen_of_size (Gen.int_range 0 20) Gen.printable))
  in
  [ Test.make ~name:"pos-tree: build = to_list modulo sort/dedup" ~count:60
      kv_list
      (fun bs ->
        let store = Mem_store.create () in
        let t = Pmap.of_bindings store bs in
        let expected =
          (* last-wins dedup on sorted keys *)
          let tbl = Hashtbl.create 16 in
          List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort compare
        in
        Pmap.bindings t = expected);
    Test.make ~name:"pos-tree: insertion order invariance" ~count:40 kv_list
      (fun bs ->
        let store = Mem_store.create () in
        let t1 = Pmap.of_bindings store bs in
        let t2 =
          List.fold_left
            (fun t (k, v) -> Pmap.put t k v)
            (Pmap.empty store) (List.rev bs)
        in
        (* Reverse-order incremental insert; duplicates make last-wins differ,
           so skip those inputs. *)
        let keys = List.map fst bs in
        List.length (List.sort_uniq compare keys) <> List.length keys
        || Option.equal Hash.equal (Pmap.root t1) (Pmap.root t2));
    Test.make ~name:"pos-tree: update = rebuild" ~count:40
      (pair kv_list kv_list)
      (fun (bs, edits) ->
        let store = Mem_store.create () in
        let t = Pmap.of_bindings store bs in
        let updated =
          Pmap.update t
            (List.map (fun (k, v) -> Pmap.Put (Pmap.binding k v)) edits)
        in
        let tbl = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) edits;
        let merged = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        Option.equal Hash.equal (Pmap.root updated)
          (Pmap.root (Pmap.of_bindings store merged)));
    Test.make ~name:"pos-tree: update with removes = rebuild" ~count:40
      (triple kv_list kv_list (list_of_size (Gen.int_range 0 30)
         (string_gen_of_size (Gen.int_range 1 12) Gen.printable)))
      (fun (bs, puts, removes) ->
        let store = Mem_store.create () in
        let t = Pmap.of_bindings store bs in
        (* Interleave puts and removes; last edit per key wins. *)
        let edits =
          List.map (fun (k, v) -> Pmap.Put (Pmap.binding k v)) puts
          @ List.map (fun k -> Pmap.Remove k) removes
        in
        let updated = Pmap.update t edits in
        let tbl = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) puts;
        List.iter (Hashtbl.remove tbl) removes;
        let expected = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        Option.equal Hash.equal (Pmap.root updated)
          (Pmap.root (Pmap.of_bindings store expected))
        && Pmap.validate updated = Ok ());
    Test.make ~name:"pos-tree: apply diff reproduces target" ~count:40
      (pair kv_list kv_list)
      (fun (bs1, bs2) ->
        let store = Mem_store.create () in
        let t1 = Pmap.of_bindings store bs1 in
        let t2 = Pmap.of_bindings store bs2 in
        let edits = List.map Pmap.edit_of_change (Pmap.diff t1 t2) in
        Option.equal Hash.equal
          (Pmap.root (Pmap.update t1 edits))
          (Pmap.root t2));
    Test.make ~name:"pos-tree: validate accepts every build" ~count:40
      kv_list
      (fun bs ->
        let store = Mem_store.create () in
        Pmap.validate (Pmap.of_bindings store bs) = Ok ());
    Test.make ~name:"pos-tree: merge = reference model (theirs-wins)"
      ~count:40
      (triple kv_list kv_list kv_list)
      (fun (base_bs, ours_edits, theirs_edits) ->
        let store = Mem_store.create () in
        let to_tbl bs =
          let tbl = Hashtbl.create 16 in
          List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
          tbl
        in
        let base = Pmap.of_bindings store base_bs in
        let puts edits =
          List.map (fun (k, v) -> Pmap.Put (Pmap.binding k v)) edits
        in
        let ours = Pmap.update base (puts ours_edits) in
        let theirs = Pmap.update base (puts theirs_edits) in
        match
          Pmap.merge ~on_conflict:Pmap.resolve_theirs ~base ~ours ~theirs ()
        with
        | Error _ -> false
        | Ok merged ->
          (* Model: ours' content, overridden by every key theirs actually
             changed relative to base (an edit restating the base value is
             not a change, so ours keeps those keys). *)
          let base_tbl = to_tbl base_bs in
          let expected = to_tbl base_bs in
          List.iter (fun (k, v) -> Hashtbl.replace expected k v) ours_edits;
          Hashtbl.iter
            (fun k v ->
              if Hashtbl.find_opt base_tbl k <> Some v then
                Hashtbl.replace expected k v)
            (to_tbl theirs_edits);
          Pmap.bindings merged
          = List.sort compare
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) expected []));
    Test.make ~name:"pos-tree: diff is antisymmetric" ~count:40
      (pair kv_list kv_list)
      (fun (bs1, bs2) ->
        let store = Mem_store.create () in
        let t1 = Pmap.of_bindings store bs1 in
        let t2 = Pmap.of_bindings store bs2 in
        let flip = function
          | Pmap.Added e -> Pmap.Removed e
          | Pmap.Removed e -> Pmap.Added e
          | Pmap.Modified (a, b) -> Pmap.Modified (b, a)
        in
        Pmap.diff t2 t1 = List.map flip (Pmap.diff t1 t2))
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "empty tree" `Quick test_empty;
      Alcotest.test_case "build and find" `Quick test_build_and_find;
      Alcotest.test_case "single entry" `Quick test_single_entry;
      Alcotest.test_case "build dedups keys" `Quick test_build_dedups_keys;
      Alcotest.test_case "of_root" `Quick test_of_root;
      Alcotest.test_case "update insert/remove" `Quick
        test_update_insert_remove;
      Alcotest.test_case "update = rebuild" `Quick test_update_equals_rebuild;
      Alcotest.test_case "update empty edits" `Quick test_update_empty_edits;
      Alcotest.test_case "update to empty" `Quick test_update_to_empty;
      Alcotest.test_case "update from empty" `Quick test_update_from_empty;
      Alcotest.test_case "update localized writes" `Slow
        test_update_localized_writes;
      Alcotest.test_case "to_seq lazy" `Quick test_to_seq_lazy;
      Alcotest.test_case "build_sorted_seq" `Quick test_build_sorted_seq;
      Alcotest.test_case "range queries" `Quick test_range_queries;
      Alcotest.test_case "count_range = list length" `Quick
        test_count_range_matches_list;
      Alcotest.test_case "nth" `Quick test_nth;
      Alcotest.test_case "count_range prunes" `Slow
        test_count_range_reads_few_chunks;
      Alcotest.test_case "structural invariance (orders)" `Quick
        test_structural_invariance_orders;
      Alcotest.test_case "history independence" `Quick
        test_history_independence;
      Alcotest.test_case "universal reuse" `Slow test_universal_reuse;
      Alcotest.test_case "diff correctness" `Quick test_diff_correctness;
      Alcotest.test_case "diff prunes shared subtrees" `Slow
        test_diff_prunes_shared_subtrees;
      Alcotest.test_case "diff disjoint trees" `Quick test_diff_disjoint_trees;
      Alcotest.test_case "merge disjoint" `Quick test_merge_disjoint;
      Alcotest.test_case "merge identical edits" `Quick
        test_merge_identical_edits;
      Alcotest.test_case "merge conflict" `Quick test_merge_conflict;
      Alcotest.test_case "merge remove vs modify" `Quick
        test_merge_remove_vs_modify;
      Alcotest.test_case "merge page reuse" `Slow test_merge_page_reuse;
      Alcotest.test_case "validate detects bitflip" `Quick
        test_validate_detects_bitflip;
      Alcotest.test_case "validate detects missing chunk" `Quick
        test_validate_detects_missing_chunk;
      Alcotest.test_case "corrupt raises on navigation" `Quick
        test_corrupt_exception_on_navigation;
      Alcotest.test_case "node stats" `Quick test_node_stats;
      Alcotest.test_case "node cache serves repeat reads" `Quick
        test_node_cache_serves_repeat_reads;
      Alcotest.test_case "node cache invalidated by gc" `Quick
        test_node_cache_invalidated_by_gc;
      Alcotest.test_case "node cache unit semantics" `Quick
        test_node_cache_unit;
      Alcotest.test_case "golden hashes stable" `Quick test_golden_hashes;
      Alcotest.test_case "pset basics" `Quick test_pset_basics;
      Alcotest.test_case "pset proofs" `Quick test_pset_proofs ]
