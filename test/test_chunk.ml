(* Chunk model, content-addressed stores (memory and file), dedup
   accounting, tamper hook, garbage collection. *)

open Fb_chunk
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let test_chunk_roundtrip () =
  List.iter
    (fun kind ->
      let c = Chunk.v kind "payload bytes" in
      match Chunk.decode (Chunk.encode c) with
      | Ok c' ->
        check bool_ "kind" true (Chunk.equal_kind c.Chunk.kind c'.Chunk.kind);
        check bool_ "payload" true (String.equal c.Chunk.payload c'.Chunk.payload)
      | Error e -> Alcotest.fail e)
    [ Chunk.Index; Chunk.Leaf_map; Chunk.Leaf_set; Chunk.Leaf_list;
      Chunk.Leaf_blob; Chunk.Seq_index; Chunk.Fnode ]

let test_chunk_decode_errors () =
  check bool_ "short" true (Result.is_error (Chunk.decode "FB"));
  check bool_ "magic" true (Result.is_error (Chunk.decode "XY\x01\x00data"));
  check bool_ "version" true (Result.is_error (Chunk.decode "FB\x09\x00data"));
  check bool_ "kind" true (Result.is_error (Chunk.decode "FB\x01\x63data"))

let test_chunk_identity () =
  let a = Chunk.v Chunk.Leaf_blob "same" in
  let b = Chunk.v Chunk.Leaf_blob "same" in
  let c = Chunk.v Chunk.Leaf_map "same" in
  check bool_ "equal content equal id" true (Hash.equal (Chunk.hash a) (Chunk.hash b));
  check bool_ "kind in identity" false (Hash.equal (Chunk.hash a) (Chunk.hash c));
  check int_ "encoded size" (4 + 4) (Chunk.encoded_size a)

let store_semantics (store : Store.t) =
  let c1 = Chunk.v Chunk.Leaf_blob "hello world" in
  let id1 = Store.put store c1 in
  check bool_ "mem" true (Store.mem store id1);
  check bool_ "get" true
    (match Store.get store id1 with
     | Some c -> String.equal c.Chunk.payload "hello world"
     | None -> false);
  check bool_ "get missing" true
    (Store.get store (Hash.of_string "nothing") = None);
  (* Dedup: same chunk twice -> one physical copy. *)
  let id1' = Store.put store c1 in
  check bool_ "same id" true (Hash.equal id1 id1');
  let s = Store.stats store in
  check int_ "physical chunks" 1 s.Store.physical_chunks;
  check int_ "puts" 2 s.Store.puts;
  check int_ "dedup hits" 1 s.Store.dedup_hits;
  check int_ "physical bytes" (Chunk.encoded_size c1) s.Store.physical_bytes;
  check int_ "logical bytes" (2 * Chunk.encoded_size c1) s.Store.logical_bytes;
  (* Distinct chunk adds bytes. *)
  let c2 = Chunk.v Chunk.Leaf_blob "other" in
  let id2 = Store.put store c2 in
  check bool_ "distinct ids" false (Hash.equal id1 id2);
  check int_ "two chunks" 2 (Store.stats store).Store.physical_chunks;
  (* Iteration sees both. *)
  let seen = ref 0 in
  store.Store.iter (fun _ _ -> incr seen);
  check int_ "iter count" 2 !seen;
  (* Delete. *)
  check bool_ "delete" true (store.Store.delete id2);
  check bool_ "delete gone" false (Store.mem store id2);
  check bool_ "delete missing" false (store.Store.delete id2);
  check int_ "after delete" 1 (Store.stats store).Store.physical_chunks

let test_mem_store () = store_semantics (Mem_store.create ())

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_test_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let test_file_store () =
  with_temp_dir (fun dir -> store_semantics (File_store.create ~root:dir ()))

let test_file_store_persistence () =
  with_temp_dir (fun dir ->
      let c = Chunk.v Chunk.Leaf_blob "persisted" in
      let store1 = File_store.create ~root:dir () in
      let id = Store.put store1 c in
      (* Reopen: the chunk and physical stats must survive. *)
      let store2 = File_store.create ~root:dir () in
      check bool_ "persisted" true (Store.mem store2 id);
      check int_ "rescanned bytes" (Chunk.encoded_size c)
        (Store.stats store2).Store.physical_bytes;
      check bool_ "content" true
        (match Store.get store2 id with
         | Some c' -> String.equal c'.Chunk.payload "persisted"
         | None -> false))

let test_tamper_hook () =
  let store, handle = Mem_store.create_with_handle () in
  let id = Store.put store (Chunk.v Chunk.Leaf_blob "genuine") in
  check bool_ "tamper applies" true
    (Mem_store.tamper handle id ~f:(fun s -> s ^ "!"));
  (* The store now serves bytes that do not hash to the id. *)
  (match store.Store.get_raw id with
   | Some raw -> check bool_ "raw differs" false (Hash.equal (Hash.of_string raw) id)
   | None -> Alcotest.fail "raw gone");
  check bool_ "tamper missing" false
    (Mem_store.tamper handle (Hash.of_string "no") ~f:Fun.id)

let test_dedup_ratio () =
  let s =
    { Store.empty_stats with logical_bytes = 300; physical_bytes = 100 }
  in
  check bool_ "ratio" true (abs_float (Store.dedup_ratio s -. 3.0) < 1e-9);
  check bool_ "empty ratio" true
    (abs_float (Store.dedup_ratio Store.empty_stats -. 1.0) < 1e-9)

(* GC over a synthetic parent/child chunk graph: parents reference children
   by embedding their raw hash bytes in the payload. *)
let test_gc () =
  let store = Mem_store.create () in
  let leaf name = Chunk.v Chunk.Leaf_blob name in
  let l1 = Store.put store (leaf "leaf-one") in
  let l2 = Store.put store (leaf "leaf-two") in
  let l3 = Store.put store (leaf "leaf-orphan") in
  let parent children =
    Chunk.v Chunk.Index (String.concat "" (List.map Hash.to_raw children))
  in
  let p = Store.put store (parent [ l1; l2 ]) in
  let children chunk =
    match chunk.Chunk.kind with
    | Chunk.Index ->
      let s = chunk.Chunk.payload in
      List.init
        (String.length s / Hash.size)
        (fun i -> Hash.of_raw_exn (String.sub s (i * Hash.size) Hash.size))
    | _ -> []
  in
  let reach = Gc.reachable store ~children ~roots:[ p ] in
  check int_ "reachable" 3 (Hash.Set.cardinal reach);
  check bool_ "orphan not reachable" false (Hash.Set.mem l3 reach);
  let result = Gc.sweep store ~children ~roots:[ p ] in
  check int_ "swept" 1 result.Gc.swept_chunks;
  check int_ "live" 3 result.Gc.live_chunks;
  check bool_ "orphan gone" false (Store.mem store l3);
  check bool_ "live kept" true (Store.mem store l1 && Store.mem store l2);
  (* Sweeping again is a no-op. *)
  check int_ "idempotent" 0 (Gc.sweep store ~children ~roots:[ p ]).Gc.swept_chunks

let test_gc_no_roots () =
  let store = Mem_store.create () in
  ignore (Store.put store (Chunk.v Chunk.Leaf_blob "a"));
  ignore (Store.put store (Chunk.v Chunk.Leaf_blob "b"));
  let result = Gc.sweep store ~children:(fun _ -> []) ~roots:[] in
  check int_ "all swept" 2 result.Gc.swept_chunks;
  check int_ "nothing left" 0 (Store.stats store).Store.physical_chunks

(* ---------------- wrappers ---------------- *)

let test_verified_store_rejects_forged_reads () =
  let inner, handle = Mem_store.create_with_handle () in
  let store, violations = Verified_store.wrap inner in
  let id = Store.put store (Chunk.v Chunk.Leaf_blob "honest bytes") in
  check bool_ "clean read" true (Store.get store id <> None);
  check int_ "no violations yet" 0 violations.Verified_store.rejected_reads;
  ignore (Mem_store.tamper handle id ~f:(fun s -> s ^ "!"));
  check bool_ "forged read refused" true (Store.get store id = None);
  check bool_ "raw refused too" true (store.Store.get_raw id = None);
  check int_ "violations counted" 2 violations.Verified_store.rejected_reads;
  check bool_ "offender recorded" true
    (violations.Verified_store.last_offender = Some id);
  (* A whole POS-Tree over a verified store never yields forged entries. *)
  let vstore, _ = Verified_store.wrap inner in
  let t =
    Fb_postree.Pmap.of_bindings vstore
      (List.init 500 (fun i -> (Printf.sprintf "%04d" i, "v")))
  in
  let victim = List.nth (Fb_postree.Pmap.node_hashes t) 1 in
  ignore (Mem_store.tamper handle victim ~f:(fun s -> s ^ "x"));
  (try
     ignore (Fb_postree.Pmap.to_list t);
     Alcotest.fail "forged chunk served"
   with Fb_postree.Postree.Corrupt _ -> ())

let test_cache_store_semantics () =
  let inner = Mem_store.create () in
  let store, stats = Cache_store.wrap ~capacity:2 inner in
  (* Cached stores behave identically. *)
  store_semantics store;
  ignore stats

let test_cache_store_hits_and_eviction () =
  let inner = Mem_store.create () in
  let store, stats = Cache_store.wrap ~capacity:2 inner in
  let id1 = Store.put store (Chunk.v Chunk.Leaf_blob "one") in
  let id2 = Store.put store (Chunk.v Chunk.Leaf_blob "two") in
  let id3 = Store.put store (Chunk.v Chunk.Leaf_blob "three") in
  (* id1 was evicted by id3 (capacity 2, LRU). *)
  check int_ "evictions" 1 stats.Cache_store.evictions;
  ignore (Store.get store id3);
  ignore (Store.get store id2);
  check int_ "hits" 2 stats.Cache_store.hits;
  ignore (Store.get store id1);
  check int_ "miss refills" 1 stats.Cache_store.misses;
  (* Inner reads dropped: id1 came from inner once. *)
  check bool_ "content correct" true
    (match Store.get store id1 with
     | Some c -> String.equal c.Chunk.payload "one"
     | None -> false);
  (* Deleting forgets the cache entry. *)
  ignore (store.Store.delete id2);
  check bool_ "deleted gone" true (Store.get store id2 = None);
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Cache_store.wrap: capacity must be >= 1") (fun () ->
      ignore (Cache_store.wrap ~capacity:0 inner))

let test_cache_store_avoids_inner_reads () =
  (* The decoded-node cache sits above the chunk-level LRU under test and
     would absorb these reads before they reach it; switch it off for the
     duration. *)
  Fb_postree.Node_cache.set_capacity_all 0;
  Fun.protect
    ~finally:(fun () ->
      Fb_postree.Node_cache.set_capacity_all
        Fb_postree.Node_cache.default_capacity)
    (fun () ->
      let inner = Mem_store.create () in
      let store, stats = Cache_store.wrap ~capacity:1000 inner in
      let t =
        Fb_postree.Pmap.of_bindings store
          (List.init 5000 (fun i -> (Printf.sprintf "%05d" i, "value")))
      in
      let inner_gets_before = (Store.stats inner).Store.gets in
      for i = 0 to 99 do
        ignore (Fb_postree.Pmap.find t (Printf.sprintf "%05d" (i * 37)))
      done;
      check int_ "all served from cache" inner_gets_before
        (Store.stats inner).Store.gets;
      check bool_ "hits counted" true (stats.Cache_store.hits > 100))

let suite =
  [ Alcotest.test_case "chunk roundtrip" `Quick test_chunk_roundtrip;
    Alcotest.test_case "verified store rejects forgeries" `Quick
      test_verified_store_rejects_forged_reads;
    Alcotest.test_case "cache store semantics" `Quick
      test_cache_store_semantics;
    Alcotest.test_case "cache hits/eviction" `Quick
      test_cache_store_hits_and_eviction;
    Alcotest.test_case "cache avoids inner reads" `Quick
      test_cache_store_avoids_inner_reads;
    Alcotest.test_case "chunk decode errors" `Quick test_chunk_decode_errors;
    Alcotest.test_case "chunk identity" `Quick test_chunk_identity;
    Alcotest.test_case "mem store semantics" `Quick test_mem_store;
    Alcotest.test_case "file store semantics" `Quick test_file_store;
    Alcotest.test_case "file store persistence" `Quick
      test_file_store_persistence;
    Alcotest.test_case "tamper hook" `Quick test_tamper_hook;
    Alcotest.test_case "dedup ratio" `Quick test_dedup_ratio;
    Alcotest.test_case "gc mark and sweep" `Quick test_gc;
    Alcotest.test_case "gc without roots" `Quick test_gc_no_roots ]
