(* Log_store: the crash-consistent append-only pack log.

   The centerpiece is a power-cut simulator: build a reference log with a
   known acknowledgment boundary, then replay recovery at EVERY byte
   offset — the file truncated there (a short write) and the file garbled
   from there (tail sectors that never made it).  At each point the
   recovered store must hold exactly the maximal sealed-record prefix: no
   acknowledged chunk lost, no torn record served. *)

module Log_store = Fb_chunk.Log_store
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module Scrub = Fb_chunk.Scrub
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Persistent = Fb_core.Persistent
module Errors = Fb_core.Errors
module Value = Fb_types.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_log_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

(* Recovery semantics do not depend on fsync actually reaching the
   platters; keep the matrix fast. *)
let quick_config = { Log_store.default_config with fsync = false }

let blob i = Chunk.v Chunk.Leaf_blob (Printf.sprintf "log payload %d" i)
let blob_id i = Hash.of_string (Chunk.encode (blob i))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let live_ids store =
  let acc = ref [] in
  store.Store.iter (fun id _ -> acc := id :: !acc);
  List.sort_uniq Hash.compare !acc

(* ------------------------- basics ------------------------- *)

let test_roundtrip_reopen () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      let s = Log_store.store h in
      let ids = List.init 20 (fun i -> (i, Store.put s (blob i))) in
      (* Tombstone a few, including a re-put that must dedup. *)
      check bool_ "delete" true (Store.delete s (blob_id 3));
      check bool_ "delete" true (Store.delete s (blob_id 7));
      check bool_ "delete absent is false" false (Store.delete s (blob_id 3));
      ignore (Store.put s (blob 0));
      check int_ "dedup hit" 1 (Store.stats s).Store.dedup_hits;
      Log_store.close h;
      let h2 = Log_store.create ~config:quick_config ~root:dir () in
      let s2 = Log_store.store h2 in
      (* Close checkpointed the full prefix: nothing left to replay. *)
      check int_ "no tail replay after clean close" 0
        (Log_store.counters h2).Log_store.replayed_records;
      List.iter
        (fun (i, id) ->
          if i = 3 || i = 7 then
            check bool_ "tombstoned stays dead" false (Store.mem s2 id)
          else
            match Store.get s2 id with
            | Some c ->
              check bool_ "payload intact" true
                (String.equal c.Chunk.payload (Printf.sprintf "log payload %d" i))
            | None -> Alcotest.fail "chunk lost across reopen")
        ids;
      check int_ "live count" 18 (Log_store.live_chunks h2);
      Log_store.close h2)

let test_full_replay_without_idx () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      let s = Log_store.store h in
      ignore (Store.put s (blob 1));
      ignore (Store.put s (blob 2));
      ignore (Store.delete s (blob_id 1));
      Log_store.close h;
      (* Without the checkpoint the whole log replays — same state. *)
      Sys.remove (Filename.concat dir "gen-0.idx");
      let h2 = Log_store.create ~config:quick_config ~root:dir () in
      let s2 = Log_store.store h2 in
      check int_ "all records replayed" 3
        (Log_store.counters h2).Log_store.replayed_records;
      check bool_ "tombstone replayed" false (Store.mem s2 (blob_id 1));
      check bool_ "live replayed" true (Store.mem s2 (blob_id 2));
      Log_store.close h2)

let test_group_commit () =
  with_temp_dir (fun dir ->
      let config =
        { quick_config with group_chunks = 4; group_window_s = 3600.0 }
      in
      let h = Log_store.create ~config ~root:dir () in
      let s = Log_store.store h in
      for i = 0 to 2 do
        ignore (Store.put s (blob i))
      done;
      (* Three appends: under the group size, nothing flushed yet. *)
      check int_ "no flush below group size" 0
        (Log_store.counters h).Log_store.flushes;
      check bool_ "unsynced tail exists" true
        (Log_store.synced_bytes h < Log_store.file_bytes h);
      ignore (Store.put s (blob 3));
      check int_ "group boundary flushes" 1
        (Log_store.counters h).Log_store.flushes;
      check int_ "ack boundary caught up" (Log_store.file_bytes h)
        (Log_store.synced_bytes h);
      ignore (Store.put s (blob 4));
      Log_store.sync h;
      check int_ "explicit sync flushes" 2
        (Log_store.counters h).Log_store.flushes;
      Log_store.close h)

(* ------------------------- the power-cut matrix ------------------------- *)

(* Parse the sealed records of a generation file: (end_offset, kind, id)
   per record, computed independently of the store's own replay. *)
let parse_records bytes =
  let header_size = 16 in
  let rec_head = 37 in
  let u32 s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF in
  let rec go pos acc =
    if pos + rec_head + 4 > String.length bytes then List.rev acc
    else
      let kind = Char.code bytes.[pos] in
      let len = u32 bytes (pos + 1) in
      let stop = pos + rec_head + len + 4 in
      if stop > String.length bytes then List.rev acc
      else
        let id = Hash.of_raw_exn (String.sub bytes (pos + 5) 32) in
        go stop ((stop, kind, id) :: acc)
  in
  go header_size []

(* The live set a correct recovery reaches when every sealed record
   ending at or before [cut] survives and nothing after it does. *)
let expected_live records cut =
  List.fold_left
    (fun acc (stop, kind, id) ->
      if stop > cut then acc
      else if kind = 0 then id :: List.filter (fun x -> not (Hash.equal x id)) acc
      else List.filter (fun x -> not (Hash.equal x id)) acc)
    [] records
  |> List.sort_uniq Hash.compare

(* Deterministic garbage that always differs from the byte it replaces:
   a power cut that left stale sectors, not a no-op. *)
let garble bytes cut =
  let b = Bytes.of_string bytes in
  for i = cut to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xA5))
  done;
  Bytes.to_string b

let test_power_cut_matrix () =
  with_temp_dir (fun dir ->
      let src = Filename.concat dir "src" in
      let h = Log_store.create ~config:quick_config ~root:src () in
      let s = Log_store.store h in
      (* Acknowledged prefix: five puts and a delete, then a sync. *)
      for i = 0 to 4 do
        ignore (Store.put s (blob i))
      done;
      ignore (Store.delete s (blob_id 1));
      Log_store.sync h;
      let ack = Log_store.synced_bytes h in
      let acked = live_ids s in
      (* Unacknowledged tail: three more puts, NO sync, no close. *)
      for i = 5 to 7 do
        ignore (Store.put s (blob i))
      done;
      let bytes = read_file (Log_store.log_path h) in
      check int_ "file holds the full tail" (String.length bytes)
        (Log_store.file_bytes h);
      let records = parse_records bytes in
      check int_ "reference parse sees every record" 9 (List.length records);
      (* The simulated crash: [h] is abandoned, never closed. *)
      let header_size = 16 in
      let rig = Filename.concat dir "rig" in
      let cases = ref 0 in
      for cut = 0 to String.length bytes do
        List.iter
          (fun (variant, data) ->
            incr cases;
            let ctx what =
              Printf.sprintf "%s cut=%d %s" variant cut what
            in
            ignore (Sys.command ("rm -rf " ^ Filename.quote rig));
            Unix.mkdir rig 0o755;
            write_file (Filename.concat rig "gen-0.log") data;
            write_file (Filename.concat rig "CURRENT") "0\n";
            match Log_store.create ~config:quick_config ~root:rig () with
            | exception Failure _
              when String.equal variant "tear" && cut < header_size ->
              (* The header was fsynced before anything was acknowledged,
                 so a full-size file with garbled magic is media damage,
                 not a crash shape — refusing it (rather than silently
                 re-initializing) is the correct recovery. *)
              ()
            | r ->
            let rs = Log_store.store r in
            let expected =
              if cut < header_size then [] else expected_live records cut
            in
            let got = live_ids rs in
            check int_ (ctx "live count") (List.length expected)
              (List.length got);
            check bool_ (ctx "live set exact") true
              (List.for_all2 Hash.equal expected got);
            (* No torn record surfaced: every served read re-hashes. *)
            List.iter
              (fun id ->
                match rs.Store.get_raw id with
                | Some raw ->
                  check bool_ (ctx "read hashes to id") true
                    (Hash.equal (Hash.of_string raw) id)
                | None -> Alcotest.fail (ctx "live chunk unreadable"))
              got;
            (* No acknowledged chunk lost once the cut spares the synced
               prefix. *)
            if cut >= ack then
              List.iter
                (fun id ->
                  if not (Store.mem rs id) then
                    Alcotest.fail (ctx "acknowledged chunk lost"))
                acked;
            (* The torn tail was physically dropped: a second open has
               nothing left to repair. *)
            let stop = Log_store.file_bytes r in
            check bool_ (ctx "no torn bytes retained") true
              (stop
              = List.fold_left
                  (fun acc (e, _, _) -> if e <= cut then max acc e else acc)
                  header_size records
              || cut < header_size);
            Log_store.close r;
            let r2 = Log_store.create ~config:quick_config ~root:rig () in
            check int_ (ctx "recovery is stable") 0
              (Log_store.counters r2).Log_store.truncated_bytes;
            Log_store.close r2)
          [ ("truncate", String.sub bytes 0 cut);
            ("tear", if cut < String.length bytes then garble bytes cut else bytes) ]
      done;
      check bool_ "matrix covered both variants at every offset" true
        (!cases = 2 * (String.length bytes + 1)))

(* A cut inside the checkpoint file must never corrupt recovery: any
   damaged index falls back to a full replay with identical state. *)
let test_idx_cut_matrix () =
  with_temp_dir (fun dir ->
      let src = Filename.concat dir "src" in
      let h = Log_store.create ~config:quick_config ~root:src () in
      let s = Log_store.store h in
      for i = 0 to 4 do
        ignore (Store.put s (blob i))
      done;
      Log_store.checkpoint h;
      let idx = read_file (Log_store.idx_path h) in
      for i = 5 to 7 do
        ignore (Store.put s (blob i))
      done;
      ignore (Store.delete s (blob_id 0));
      Log_store.sync h;
      let bytes = read_file (Log_store.log_path h) in
      let full_live = live_ids s in
      check int_ "reference live" 7 (List.length full_live);
      let rig = Filename.concat dir "rig" in
      let variants cut =
        [ ("truncate", String.sub idx 0 cut);
          ("tear", if cut < String.length idx then garble idx cut else idx) ]
      in
      for cut = 0 to String.length idx do
        List.iter
          (fun (variant, data) ->
            let ctx what =
              Printf.sprintf "idx %s cut=%d %s" variant cut what
            in
            ignore (Sys.command ("rm -rf " ^ Filename.quote rig));
            Unix.mkdir rig 0o755;
            write_file (Filename.concat rig "gen-0.log") bytes;
            write_file (Filename.concat rig "gen-0.idx") data;
            write_file (Filename.concat rig "CURRENT") "0\n";
            let r = Log_store.create ~config:quick_config ~root:rig () in
            let got = live_ids (Log_store.store r) in
            check int_ (ctx "live count") (List.length full_live)
              (List.length got);
            check bool_ (ctx "checkpoint damage never changes state") true
              (List.for_all2 Hash.equal full_live got);
            Log_store.close r)
          (variants cut)
      done;
      Log_store.close h)

(* ------------------------- checkpoint equivalence ------------------------- *)

(* QCheck: for ANY operation sequence, recovery through the checkpoint
   (when intact) and a full replay (checkpoint deleted) reach exactly the
   state a model Hashtbl predicts. *)
let qcheck_checkpoint_replay_equivalence =
  let op_gen =
    QCheck.Gen.(
      frequency
        [ (6, map (fun i -> `Put (i mod 12)) (int_bound 100));
          (3, map (fun i -> `Delete (i mod 12)) (int_bound 100));
          (1, return `Sync);
          (1, return `Checkpoint) ])
  in
  let ops_arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Put i -> Printf.sprintf "put %d" i
               | `Delete i -> Printf.sprintf "del %d" i
               | `Sync -> "sync"
               | `Checkpoint -> "ckpt")
             ops))
      QCheck.Gen.(list_size (int_range 1 40) op_gen)
  in
  QCheck.Test.make ~name:"log: checkpoint replay == full replay == model"
    ~count:30 ops_arb (fun ops ->
      with_temp_dir (fun dir ->
          let model : (string, unit) Hashtbl.t = Hashtbl.create 16 in
          let h = Log_store.create ~config:quick_config ~root:dir () in
          let s = Log_store.store h in
          List.iter
            (function
              | `Put i ->
                ignore (Store.put s (blob i));
                Hashtbl.replace model (Hash.to_hex (blob_id i)) ()
              | `Delete i ->
                ignore (Store.delete s (blob_id i));
                Hashtbl.remove model (Hash.to_hex (blob_id i))
              | `Sync -> Log_store.sync h
              | `Checkpoint -> Log_store.checkpoint h)
            ops;
          Log_store.close h;
          let agrees () =
            let r = Log_store.create ~config:quick_config ~root:dir () in
            let got = live_ids (Log_store.store r) in
            Log_store.close r;
            List.length got = Hashtbl.length model
            && List.for_all
                 (fun id -> Hashtbl.mem model (Hash.to_hex id))
                 got
          in
          let via_checkpoint = agrees () in
          (try Sys.remove (Filename.concat dir "gen-0.idx")
           with Sys_error _ -> ());
          let via_full_replay = agrees () in
          via_checkpoint && via_full_replay))

(* ------------------------- compaction ------------------------- *)

let test_compaction () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      let s = Log_store.store h in
      let _ids = List.init 10 (fun i -> Store.put s (blob i)) in
      for i = 0 to 4 do
        ignore (Store.delete s (blob_id i))
      done;
      check bool_ "garbage accumulated" true (Log_store.garbage_bytes h > 0);
      let before = Log_store.file_bytes h in
      Log_store.compact h;
      check int_ "generation advanced" 1 (Log_store.generation h);
      check bool_ "file shrank" true (Log_store.file_bytes h < before);
      check int_ "garbage reclaimed" 0 (Log_store.garbage_bytes h);
      check bool_ "old generation deleted" false
        (Sys.file_exists (Filename.concat dir "gen-0.log"));
      for i = 5 to 9 do
        match Store.get s (blob_id i) with
        | Some c ->
          check bool_ "survivor intact" true
            (String.equal c.Chunk.payload (Printf.sprintf "log payload %d" i))
        | None -> Alcotest.fail "live chunk lost by compaction"
      done;
      (* Writes keep flowing into the new generation, and a reopen sees
         everything. *)
      ignore (Store.put s (blob 42));
      Log_store.close h;
      let h2 = Log_store.create ~config:quick_config ~root:dir () in
      check int_ "post-compaction state persists" 6 (Log_store.live_chunks h2);
      check bool_ "post-compaction append persists" true
        (Store.mem (Log_store.store h2) (blob_id 42));
      Log_store.close h2)

let test_compaction_gc_liveness () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      let s = Log_store.store h in
      ignore (List.init 6 (fun i -> Store.put s (blob i)));
      (* A GC marks only even blobs reachable — no tombstones needed. *)
      let keep = List.init 3 (fun i -> blob_id (2 * i)) in
      Log_store.compact ~live:(fun id -> List.exists (Hash.equal id) keep) h;
      check int_ "only live survive" 3 (Log_store.live_chunks h);
      List.iter
        (fun id -> check bool_ "kept" true (Store.mem s id))
        keep;
      check bool_ "dropped" false (Store.mem s (blob_id 1));
      Log_store.close h)

(* Crash at each labelled point of the compaction protocol: recovery must
   land on a fully intact generation (old before the CURRENT swap, new
   after) with no stray files. *)
let test_compaction_crash_stages () =
  List.iter
    (fun (stage, expect_gen) ->
      with_temp_dir (fun dir ->
          let h = Log_store.create ~config:quick_config ~root:dir () in
          let s = Log_store.store h in
          ignore (List.init 8 (fun i -> Store.put s (blob i)));
          ignore (Store.delete s (blob_id 0));
          Log_store.sync h;
          let want = live_ids s in
          (match
             Log_store.compact
               ~on_stage:(fun st -> if st = stage then raise Exit)
               h
           with
          | () -> Alcotest.fail "stage hook did not fire"
          | exception Exit -> ());
          (* The process is gone; [h] is abandoned un-closed. *)
          let r = Log_store.create ~config:quick_config ~root:dir () in
          let ctx what =
            Printf.sprintf "crash@%s %s"
              (match stage with
              | Log_store.After_data -> "after-data"
              | Log_store.Before_switch -> "before-switch"
              | Log_store.After_switch -> "after-switch")
              what
          in
          check int_ (ctx "generation") expect_gen (Log_store.generation r);
          let got = live_ids (Log_store.store r) in
          check int_ (ctx "live count") (List.length want) (List.length got);
          check bool_ (ctx "live set") true (List.for_all2 Hash.equal want got);
          (* Only the surviving generation's files remain on disk. *)
          let keep_prefix = Printf.sprintf "gen-%d." expect_gen in
          let strays =
            Array.to_list (Sys.readdir dir)
            |> List.filter (fun f ->
                   (Filename.check_suffix f ".log"
                   || Filename.check_suffix f ".idx"
                   || Filename.check_suffix f ".tmp")
                   && not
                        (String.length f >= String.length keep_prefix
                        && String.equal
                             (String.sub f 0 (String.length keep_prefix))
                             keep_prefix))
          in
          check int_ (ctx "no stray generation files") 0 (List.length strays);
          Log_store.close r))
    [ (Log_store.After_data, 0);
      (Log_store.Before_switch, 0);
      (Log_store.After_switch, 1) ]

let test_background_compactor () =
  with_temp_dir (fun dir ->
      let config =
        { quick_config with
          compactor = true; tick_s = 0.005; group_window_s = 0.01;
          auto_compact = 0.2; compact_min_bytes = 1 }
      in
      let h = Log_store.create ~config ~root:dir () in
      let s = Log_store.store h in
      ignore (List.init 20 (fun i -> Store.put s (blob i)));
      for i = 0 to 15 do
        ignore (Store.delete s (blob_id i))
      done;
      (* The thread must flush the aged group and compact the garbage
         away without any explicit sync/compact call. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        let c = Log_store.counters h in
        if c.Log_store.auto_compactions >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "background compactor never ran"
        else begin
          Thread.delay 0.01;
          wait ()
        end
      in
      wait ();
      check bool_ "generation advanced" true (Log_store.generation h >= 1);
      check int_ "synced to the tip" (Log_store.file_bytes h)
        (Log_store.synced_bytes h);
      for i = 16 to 19 do
        check bool_ "survivors readable" true (Store.mem s (blob_id i))
      done;
      check int_ "no background errors" 0
        (Log_store.counters h).Log_store.background_errors;
      Log_store.close h)

(* ------------------------- fsck ------------------------- *)

let test_fsck () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      let s = Log_store.store h in
      ignore (List.init 5 (fun i -> Store.put s (blob i)));
      ignore (Store.delete s (blob_id 0));
      Log_store.close h;
      (match Scrub.fsck_log ~root:dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check bool_ "clean after close" true (Scrub.fsck_log_clean r);
        check int_ "records" 6 r.Log_store.fsck_records;
        check int_ "live" 4 r.Log_store.fsck_live;
        check int_ "no torn tail" 0 r.Log_store.fsck_torn_bytes);
      (* A flipped payload byte breaks that record's seal: fsck must see
         the damage (truncated coverage / index disagreement). *)
      let path = Filename.concat dir "gen-0.log" in
      let bytes = Bytes.of_string (read_file path) in
      let mid = Bytes.length bytes - 10 in
      Bytes.set bytes mid
        (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x40));
      write_file path (Bytes.to_string bytes);
      (match Scrub.fsck_log ~root:dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check bool_ "damage detected" false (Scrub.fsck_log_clean r);
        check bool_ "torn bytes reported" true
          (r.Log_store.fsck_torn_bytes > 0));
      (* A stray generation from a crashed compaction is reported too. *)
      write_file (Filename.concat dir "gen-9.log") "leftover";
      (match Scrub.fsck_log ~root:dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check bool_ "orphan generation listed" true
          (r.Log_store.fsck_orphan_gens = [ 9 ])))

let test_fsck_bad_hash () =
  with_temp_dir (fun dir ->
      let h = Log_store.create ~config:quick_config ~root:dir () in
      ignore (Store.put (Log_store.store h) (blob 1));
      Log_store.close h;
      (* Hand-craft a sealed record whose payload does not hash to its
         declared id: the CRC passes (physical integrity) but the
         content-address lies — only fsck's re-hash pass can tell. *)
      let payload = Chunk.encode (blob 2) in
      let fake_id = blob_id 3 in
      let len = String.length payload in
      let b = Bytes.create (41 + len) in
      Bytes.set b 0 '\000';
      Bytes.set_int32_be b 1 (Int32.of_int len);
      Bytes.blit_string (Hash.to_raw fake_id) 0 b 5 32;
      Bytes.blit_string payload 0 b 37 len;
      let crc = Fb_hash.Crc32.update_bytes_sub Fb_hash.Crc32.empty b ~pos:0 ~len:(37 + len) in
      Bytes.set_int32_be b (37 + len) (Int32.of_int crc);
      let path = Filename.concat dir "gen-0.log" in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_bytes oc b;
      close_out oc;
      match Scrub.fsck_log ~root:dir with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check bool_ "dishonest record caught" false (Scrub.fsck_log_clean r);
        check bool_ "bad hash attributed" true
          (match r.Log_store.fsck_bad_hash with
          | [ id ] -> Hash.equal id fake_id
          | _ -> false);
        check int_ "physically sealed" 0 r.Log_store.fsck_torn_bytes)

(* ------------------------- the Persistent seam ------------------------- *)

(* The fsync-ordering invariant end to end: after [save], a power cut
   anywhere at or past the log's acknowledgment boundary leaves a root
   whose branch table and log agree — every saved head loads, reads and
   verifies. *)
let test_persistent_power_cut () =
  with_temp_dir (fun dir ->
      let src = Filename.concat dir "src" in
      let ok = function
        | Ok v -> v
        | Error e -> Alcotest.fail (Errors.to_string e)
      in
      let fb = ok (Persistent.open_ ~fsync:false ~backend:"log" ~root:src ()) in
      let keys = [ "alpha"; "beta"; "gamma" ] in
      List.iter
        (fun k -> ignore (ok (FB.put fb ~key:k (Value.string ("v-" ^ k)))))
        keys;
      ok (Persistent.save ~root:src fb);
      let h =
        match Persistent.log_handle ~root:src with
        | Some h -> h
        | None -> Alcotest.fail "log engine not registered"
      in
      let ack = Log_store.synced_bytes h in
      check int_ "save acknowledged the whole log" (Log_store.file_bytes h) ack;
      (* Unacknowledged work after the save: lost by the cut, harmless. *)
      ignore (ok (FB.put fb ~key:"delta" (Value.string "not saved")));
      let log_bytes = read_file (Log_store.log_path h) in
      let branches = read_file (Filename.concat src "BRANCHES") in
      let cuts =
        [ ack; min (ack + 1) (String.length log_bytes);
          (ack + String.length log_bytes) / 2; String.length log_bytes ]
      in
      List.iteri
        (fun n cut ->
          let rig = Filename.concat dir (Printf.sprintf "rig%d" n) in
          Unix.mkdir rig 0o755;
          Unix.mkdir (Filename.concat rig "log") 0o755;
          write_file (Filename.concat rig "BRANCHES") branches;
          write_file
            (Filename.concat (Filename.concat rig "log") "gen-0.log")
            (String.sub log_bytes 0 cut);
          write_file (Filename.concat (Filename.concat rig "log") "CURRENT") "0\n";
          let fb2 = ok (Persistent.open_ ~fsync:false ~root:rig ()) in
          List.iter
            (fun k ->
              (match FB.get fb2 ~key:k with
              | Ok v ->
                check bool_
                  (Printf.sprintf "cut=%d saved key %s intact" cut k)
                  true
                  (Value.equal v (Value.string ("v-" ^ k)))
              | Error e ->
                Alcotest.fail
                  (Printf.sprintf "cut=%d saved key %s lost: %s" cut k
                     (Errors.to_string e)));
              let uid = ok (FB.head fb2 ~key:k) in
              check bool_ (Printf.sprintf "cut=%d %s verifies" cut k) true
                (Result.is_ok (FB.verify fb2 uid)))
            keys;
          Persistent.close ~root:rig)
        cuts;
      Persistent.close ~root:src)

let test_persistent_backend_autodetect () =
  with_temp_dir (fun dir ->
      let ok = function
        | Ok v -> v
        | Error e -> Alcotest.fail (Errors.to_string e)
      in
      (* A fresh root gets the log engine... *)
      let file_root = Filename.concat dir "file" in
      let log_root = Filename.concat dir "log" in
      let fb = ok (Persistent.open_ ~root:log_root ()) in
      ignore (ok (FB.put fb ~key:"k" (Value.string "v")));
      ok (Persistent.save ~root:log_root fb);
      check bool_ "fresh root is log-backed" true
        (Persistent.log_handle ~root:log_root <> None);
      check bool_ "log dir exists" true
        (Sys.file_exists (Filename.concat log_root "log"));
      Persistent.close ~root:log_root;
      (* ...an existing chunks/ root keeps the file engine... *)
      let fbf =
        ok (Persistent.open_ ~backend:"file" ~root:file_root ())
      in
      ignore (ok (FB.put fbf ~key:"k" (Value.string "v")));
      ok (Persistent.save ~root:file_root fbf);
      let fbf2 = ok (Persistent.open_ ~root:file_root ()) in
      check bool_ "chunks root stays file-backed" true
        (Persistent.log_handle ~root:file_root = None);
      check bool_ "file data readable" true
        (Result.is_ok (FB.get fbf2 ~key:"k"));
      (* ...and a log root auto-detects on reopen. *)
      let fb2 = ok (Persistent.open_ ~root:log_root ()) in
      check bool_ "log root reopens onto the log" true
        (Persistent.log_handle ~root:log_root <> None);
      check bool_ "log data readable" true (Result.is_ok (FB.get fb2 ~key:"k"));
      Persistent.close ~root:log_root)

let suite =
  [ Alcotest.test_case "roundtrip and reopen" `Quick test_roundtrip_reopen;
    Alcotest.test_case "full replay without idx" `Quick
      test_full_replay_without_idx;
    Alcotest.test_case "group commit boundaries" `Quick test_group_commit;
    Alcotest.test_case "power-cut matrix: every offset, torn and truncated"
      `Quick test_power_cut_matrix;
    Alcotest.test_case "power-cut matrix: checkpoint file" `Quick
      test_idx_cut_matrix;
    QCheck_alcotest.to_alcotest qcheck_checkpoint_replay_equivalence;
    Alcotest.test_case "compaction" `Quick test_compaction;
    Alcotest.test_case "compaction honours gc liveness" `Quick
      test_compaction_gc_liveness;
    Alcotest.test_case "compaction crash stages" `Quick
      test_compaction_crash_stages;
    Alcotest.test_case "background compactor" `Quick test_background_compactor;
    Alcotest.test_case "fsck" `Quick test_fsck;
    Alcotest.test_case "fsck: dishonest sealed record" `Quick
      test_fsck_bad_hash;
    Alcotest.test_case "persistent: power cut after save" `Quick
      test_persistent_power_cut;
    Alcotest.test_case "persistent: backend autodetect" `Quick
      test_persistent_backend_autodetect ]
