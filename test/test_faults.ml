(* Fault injection, self-healing reads, scrub/repair, crash recovery.

   The invariant under test everywhere: no API call ever returns corrupt
   data.  Under injected faults an operation either succeeds with exactly
   the bytes that were written, or surfaces a typed error
   ([Errors.Transient] / [Errors.Corrupt]); silently serving damage is
   the only failure mode that is never acceptable. *)

open Fb_chunk
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Value = Fb_types.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let blob i = Chunk.v Chunk.Leaf_blob (Printf.sprintf "payload %d" i)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_faults_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

(* ---------------- faulty store ---------------- *)

(* Same seed, same op sequence -> the same fault schedule. *)
let test_faulty_determinism () =
  let run () =
    let base = Mem_store.create () in
    let cfg =
      { Faulty_store.calm with
        seed = 42L; transient_read_p = 0.3; bit_flip_p = 0.2;
        transient_put_p = 0.2; torn_write_p = 0.2 }
    in
    let faulty, c = Faulty_store.wrap cfg base in
    let ids = ref [] in
    for i = 0 to 49 do
      match Store.put faulty (blob i) with
      | id -> ids := id :: !ids
      | exception Store.Transient _ -> ()
    done;
    List.iter
      (fun id ->
        try ignore (Store.get faulty id) with Store.Transient _ -> ())
      !ids;
    c
  in
  let a = run () and b = run () in
  check int_ "reads" a.Faulty_store.reads b.Faulty_store.reads;
  check int_ "transient reads" a.Faulty_store.transient_reads
    b.Faulty_store.transient_reads;
  check int_ "transient puts" a.Faulty_store.transient_puts
    b.Faulty_store.transient_puts;
  check int_ "bit flips" a.Faulty_store.bit_flips b.Faulty_store.bit_flips;
  check int_ "torn writes" a.Faulty_store.torn_writes
    b.Faulty_store.torn_writes;
  check bool_ "faults occurred" true (Faulty_store.total_faults a > 0)

let test_faulty_crash_trigger () =
  let base = Mem_store.create () in
  let faulty, c =
    Faulty_store.wrap { Faulty_store.calm with seed = 3L; crash_on_put = Some 2 }
      base
  in
  ignore (Store.put faulty (blob 0));
  (match Store.put faulty (blob 1) with
   | _ -> Alcotest.fail "second put should crash"
   | exception Faulty_store.Crash -> ());
  check int_ "crashes" 1 c.Faulty_store.crashes;
  check int_ "torn writes" 1 c.Faulty_store.torn_writes;
  (* The torn prefix is visible to maintenance interfaces... *)
  let torn_id = Hash.of_string (Chunk.encode (blob 1)) in
  check bool_ "mem sees torn" true (Store.mem faulty torn_id);
  (match Store.peek faulty torn_id with
   | Some raw ->
     check bool_ "torn bytes differ" false
       (Hash.equal (Hash.of_string raw) torn_id)
   | None -> Alcotest.fail "peek should see the torn chunk");
  (* ...and a content-addressed re-put does NOT repair it (name taken). *)
  ignore (Store.put faulty (blob 1));
  (match Store.peek faulty torn_id with
   | Some raw ->
     check bool_ "still torn after re-put" false
       (Hash.equal (Hash.of_string raw) torn_id)
   | None -> Alcotest.fail "torn chunk vanished")

(* ---------------- resilient store ---------------- *)

let test_retry_absorbs_transients () =
  let base = Mem_store.create () in
  let faulty, _ =
    Faulty_store.wrap
      { Faulty_store.calm with seed = 9L; transient_read_p = 0.5;
        transient_put_p = 0.5 }
      base
  in
  let store, rs = Resilient_store.wrap ~max_retries:40 faulty in
  let ids = List.init 30 (fun i -> (i, Store.put store (blob i))) in
  List.iter
    (fun (i, id) ->
      match Store.get store id with
      | Some c ->
        check bool_ "payload intact" true
          (String.equal c.Chunk.payload (Printf.sprintf "payload %d" i))
      | None -> Alcotest.fail "retried read lost a chunk")
    ids;
  check bool_ "retries happened" true (rs.Resilient_store.retries > 0);
  check bool_ "ops recovered" true (rs.Resilient_store.absorbed > 0);
  check int_ "nothing gave up" 0 rs.Resilient_store.gave_up

(* Bit flips on the read path are rejected and re-read, never served.
   Three seeds, per the acceptance bar. *)
let test_bit_flips_never_served () =
  List.iter
    (fun seed ->
      let base = Mem_store.create () in
      let faulty, _ =
        Faulty_store.wrap
          { Faulty_store.calm with seed; bit_flip_p = 0.3 } base
      in
      let store, rs = Resilient_store.wrap ~max_retries:30 faulty in
      let ids = List.init 40 (fun i -> (i, Store.put store (blob i))) in
      List.iter
        (fun (i, id) ->
          match store.Store.get_raw id with
          | Some raw ->
            check bool_ "served bytes hash to id" true
              (Hash.equal (Hash.of_string raw) id);
            check bool_ "payload intact" true
              (match Chunk.decode raw with
               | Ok c ->
                 String.equal c.Chunk.payload (Printf.sprintf "payload %d" i)
               | Error _ -> false)
          | None -> Alcotest.fail "flip-rejected read not recovered")
        ids;
      check bool_ "flips were caught" true
        (rs.Resilient_store.corrupt_rejected > 0))
    [ 1L; 2L; 3L ]

let test_read_repair_from_replica () =
  let primary, handle = Mem_store.create_with_handle () in
  let replica = Mem_store.create () in
  let c = Chunk.v Chunk.Leaf_blob "precious" in
  let id = Store.put primary c in
  ignore (Store.put replica c);
  check bool_ "tampered" true (Mem_store.tamper handle id ~f:(fun s -> "X" ^ s));
  let store, rs = Resilient_store.wrap ~replica ~max_retries:2 primary in
  (match Store.get store id with
   | Some c' -> check bool_ "served from replica" true
       (String.equal c'.Chunk.payload "precious")
   | None -> Alcotest.fail "replica fallback failed");
  check int_ "fallbacks" 1 rs.Resilient_store.fallback_reads;
  check int_ "heals" 1 rs.Resilient_store.heals;
  (* The primary now holds healthy bytes again: the next read is local. *)
  (match primary.Store.get_raw id with
   | Some raw ->
     check bool_ "primary healed" true (Hash.equal (Hash.of_string raw) id)
   | None -> Alcotest.fail "healed chunk missing from primary");
  ignore (Store.get store id);
  check int_ "no second fallback" 1 rs.Resilient_store.fallback_reads

let test_torn_write_recovery () =
  let cfg = { Faulty_store.calm with seed = 7L; torn_write_p = 1.0 } in
  (* With a replica: the mirrored put holds the healthy bytes, reads fall
     back and stay correct. *)
  let faulty, fc = Faulty_store.wrap cfg (Mem_store.create ()) in
  let replica = Mem_store.create () in
  let store, rs = Resilient_store.wrap ~replica ~max_retries:2 faulty in
  let c = Chunk.v Chunk.Leaf_blob "torn victim" in
  let id = Store.put store c in
  check int_ "write tore" 1 fc.Faulty_store.torn_writes;
  (match Store.get store id with
   | Some c' ->
     check bool_ "correct via replica" true
       (String.equal c'.Chunk.payload "torn victim")
   | None -> Alcotest.fail "torn chunk not recovered");
  check bool_ "fallback used" true (rs.Resilient_store.fallback_reads >= 1);
  (* Without a replica: the damage is surfaced as absence, never served. *)
  let faulty2, _ = Faulty_store.wrap cfg (Mem_store.create ()) in
  let store2, rs2 = Resilient_store.wrap ~max_retries:2 faulty2 in
  let id2 = Store.put store2 c in
  check bool_ "unrecoverable torn read is None" true
    (Store.get store2 id2 = None);
  check bool_ "counted unrecovered" true (rs2.Resilient_store.unrecovered >= 1)

(* A torn append keeps the declared length but the tail is garbage — the
   power-cut shape at the end of an append-only log.  Deterministic under
   the seed; re-put does not repair (name taken). *)
let test_torn_append_garbage_tail () =
  let cfg = { Faulty_store.calm with seed = 11L; torn_append_p = 1.0 } in
  let run () =
    let faulty, fc = Faulty_store.wrap cfg (Mem_store.create ()) in
    let c = Chunk.v Chunk.Leaf_blob "append victim" in
    let id = Store.put faulty c in
    (faulty, fc, c, id)
  in
  let faulty, fc, c, id = run () in
  let encoded = Chunk.encode c in
  check int_ "append tore" 1 fc.Faulty_store.torn_appends;
  check bool_ "mem sees torn append" true (Store.mem faulty id);
  (match Store.peek faulty id with
   | Some raw ->
     check int_ "full length survives" (String.length encoded)
       (String.length raw);
     check bool_ "tail is garbage" false (Hash.equal (Hash.of_string raw) id)
   | None -> Alcotest.fail "peek should see the torn append");
  (* Content-addressed re-put sees the name taken and skips the write. *)
  ignore (Store.put faulty c);
  (match Store.peek faulty id with
   | Some raw ->
     check bool_ "still garbled after re-put" false
       (Hash.equal (Hash.of_string raw) id)
   | None -> Alcotest.fail "torn append vanished");
  (* Same seed, same op sequence: byte-identical damage. *)
  let faulty2, fc2, _, id2 = run () in
  check bool_ "same id" true (Hash.equal id id2);
  check int_ "deterministic count" fc.Faulty_store.torn_appends
    fc2.Faulty_store.torn_appends;
  (match (Store.peek faulty id, Store.peek faulty2 id2) with
   | Some a, Some b ->
     check bool_ "deterministic garbage" true (String.equal a b)
   | _ -> Alcotest.fail "torn bytes missing");
  (* Resilient stack with a replica recovers; without one the damage
     surfaces as absence, never as wrong bytes. *)
  let faulty3, _ = Faulty_store.wrap cfg (Mem_store.create ()) in
  let store3, rs3 = Resilient_store.wrap ~max_retries:2 faulty3 in
  let id3 = Store.put store3 c in
  check bool_ "unrecoverable garbled read is None" true
    (Store.get store3 id3 = None);
  check bool_ "counted unrecovered" true
    (rs3.Resilient_store.unrecovered >= 1)

(* ---------------- typed surfacing at the API ---------------- *)

let test_api_surfaces_transient () =
  let faulty, _ =
    Faulty_store.wrap
      { Faulty_store.calm with seed = 5L; transient_read_p = 1.0 }
      (Mem_store.create ())
  in
  let store, _ = Resilient_store.wrap ~max_retries:0 faulty in
  let fb = FB.create store in
  (* Every read fails and retries are off: whichever operation first
     touches the store must surface the typed error, never raise. *)
  match FB.put fb ~key:"k" (Value.string "v") with
  | Error (Errors.Transient _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Errors.to_string e)
  | Ok _ -> (
    match FB.get fb ~key:"k" with
    | Error (Errors.Transient _) -> ()
    | Error e -> Alcotest.fail ("wrong error: " ^ Errors.to_string e)
    | Ok _ -> Alcotest.fail "read succeeded with every read failing")

(* Full API over a fault-injecting stack: seeds x fault kinds.  Every
   operation either succeeds with exactly the value written or returns a
   typed storage error. *)
let test_api_fault_matrix () =
  let kinds =
    [ ("transient",
       fun seed ->
         { Faulty_store.calm with seed; transient_read_p = 0.3;
           transient_put_p = 0.2 });
      ("bitflip",
       fun seed -> { Faulty_store.calm with seed; bit_flip_p = 0.25 });
      ("torn", fun seed -> { Faulty_store.calm with seed; torn_write_p = 0.3 });
      ("torn-append",
       fun seed -> { Faulty_store.calm with seed; torn_append_p = 0.3 });
      ("mixed",
       fun seed ->
         { Faulty_store.calm with seed; transient_read_p = 0.15;
           transient_put_p = 0.1; bit_flip_p = 0.1; torn_write_p = 0.1;
           torn_append_p = 0.1 }) ]
  in
  List.iter
    (fun seed ->
      List.iter
        (fun (kind, cfg) ->
          let ctx op = Printf.sprintf "%s seed=%Ld %s" kind seed op in
          let faulty, _ = Faulty_store.wrap (cfg seed) (Mem_store.create ()) in
          let replica = Mem_store.create () in
          let store, _ =
            Resilient_store.wrap ~replica ~max_retries:8 faulty
          in
          let fb = FB.create store in
          let expected : (string, string) Hashtbl.t = Hashtbl.create 8 in
          let typed_or op = function
            | Ok _ -> ()
            | Error (Errors.Transient _ | Errors.Corrupt _) -> ()
            | Error e ->
              Alcotest.fail (ctx op ^ ": untyped error " ^ Errors.to_string e)
          in
          for i = 0 to 39 do
            let key = Printf.sprintf "k%d" (i mod 5) in
            let v = Printf.sprintf "v%d-%Ld-%s" i seed kind in
            match FB.put fb ~key (Value.string v) with
            | Ok _ -> Hashtbl.replace expected key v
            | Error (Errors.Transient _ | Errors.Corrupt _) -> ()
            | Error e ->
              Alcotest.fail (ctx "put" ^ ": " ^ Errors.to_string e)
          done;
          (* Reads: correct value or typed error — never wrong data. *)
          Hashtbl.iter
            (fun key v ->
              match FB.get fb ~key with
              | Ok got ->
                check bool_ (ctx ("get " ^ key)) true
                  (Value.equal got (Value.string v))
              | Error (Errors.Transient _ | Errors.Corrupt _) -> ()
              | Error e ->
                Alcotest.fail (ctx "get" ^ ": " ^ Errors.to_string e))
            expected;
          (* The rest of the surface must stay typed under faults too. *)
          typed_or "log" (FB.log fb ~key:"k0");
          typed_or "fork" (FB.fork fb ~key:"k0" ~new_branch:"side");
          typed_or "head" (FB.head fb ~key:"k0");
          (* Scrub with the replica, then every key must read back
             correctly (the replica holds every mirrored chunk). *)
          ignore (FB.scrub ~replica fb);
          Hashtbl.iter
            (fun key v ->
              match FB.get fb ~key with
              | Ok got ->
                check bool_ (ctx ("post-scrub get " ^ key)) true
                  (Value.equal got (Value.string v))
              | Error (Errors.Transient _) -> ()
              | Error e ->
                Alcotest.fail (ctx "post-scrub get" ^ ": " ^ Errors.to_string e))
            expected)
        kinds)
    [ 101L; 202L; 303L ]

(* ---------------- scrub ---------------- *)

let corrupt_file dir id ~f =
  let hex = Hash.to_hex id in
  let path =
    Filename.concat
      (Filename.concat dir (String.sub hex 0 2))
      (String.sub hex 2 (String.length hex - 2))
  in
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (f raw))

let flip_byte raw =
  let b = Bytes.of_string raw in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xff));
  Bytes.to_string b

let truncate_half raw = String.sub raw 0 (String.length raw / 2)

let test_scrub_finds_and_repairs () =
  with_temp_dir (fun dir ->
      let store = File_store.create ~root:dir () in
      let replica = Mem_store.create () in
      let ids =
        List.init 8 (fun i ->
            ignore (Store.put replica (blob i));
            Store.put store (blob i))
      in
      let bad0 = List.nth ids 0 and bad1 = List.nth ids 1 in
      corrupt_file dir bad0 ~f:flip_byte;
      corrupt_file dir bad1 ~f:truncate_half;
      (* Dry run: report only, nothing deleted. *)
      let dry = Scrub.run ~replica ~dry_run:true store in
      check int_ "dry corrupt" 2 (List.length dry.Scrub.corrupt);
      check int_ "dry quarantined" 0 dry.Scrub.quarantined;
      check int_ "dry repaired" 0 dry.Scrub.repaired;
      check bool_ "dry not clean" false (Scrub.clean dry);
      (* Real run: 100% of the damage found, quarantined, repaired. *)
      let seen = ref [] in
      let report =
        Scrub.run ~replica
          ~quarantine:(fun id raw -> seen := (id, raw) :: !seen)
          store
      in
      check int_ "scanned" 8 report.Scrub.scanned;
      check int_ "corrupt" 2 (List.length report.Scrub.corrupt);
      check int_ "quarantined" 2 report.Scrub.quarantined;
      check int_ "repaired" 2 report.Scrub.repaired;
      check int_ "unrepaired" 0 (List.length report.Scrub.unrepaired);
      check int_ "quarantine callback" 2 (List.length !seen);
      check bool_ "quarantined bytes are the damaged ones" true
        (List.for_all
           (fun (id, raw) -> not (Hash.equal (Hash.of_string raw) id))
           !seen);
      (* Repaired in place: every chunk healthy again, re-scrub clean. *)
      List.iter
        (fun id ->
          match store.Store.get_raw id with
          | Some raw ->
            check bool_ "healed" true (Hash.equal (Hash.of_string raw) id)
          | None -> Alcotest.fail "repaired chunk missing")
        ids;
      check bool_ "re-scrub clean" true (Scrub.clean (Scrub.run ~replica store)))

let test_scrub_without_replica_quarantines () =
  with_temp_dir (fun dir ->
      let store = File_store.create ~root:dir () in
      let ids = List.init 4 (fun i -> Store.put store (blob i)) in
      let bad = List.nth ids 2 in
      corrupt_file dir bad ~f:flip_byte;
      let report = Scrub.run store in
      check int_ "corrupt" 1 (List.length report.Scrub.corrupt);
      check int_ "quarantined" 1 report.Scrub.quarantined;
      check int_ "repaired" 0 report.Scrub.repaired;
      check int_ "unrepaired" 1 (List.length report.Scrub.unrepaired);
      (* Damage never served again: the chunk is simply gone now. *)
      check bool_ "quarantined chunk gone" false (Store.mem store bad);
      let again = Scrub.run store in
      check int_ "physically clean now" 0 (List.length again.Scrub.corrupt))

let test_scrub_reachability () =
  with_temp_dir (fun dir ->
      let store = File_store.create ~root:dir () in
      let fb = FB.create store in
      (match FB.put fb ~key:"doc" (Value.string "v1") with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Errors.to_string e));
      let uid =
        match FB.head fb ~key:"doc" with
        | Ok uid -> uid
        | Error e -> Alcotest.fail (Errors.to_string e)
      in
      (* Mirror everything, then damage the head FNode's chunk file. *)
      let replica = Mem_store.create () in
      store.Store.iter (fun _ raw ->
          match Chunk.decode raw with
          | Ok c -> ignore (Store.put replica c)
          | Error _ -> ());
      corrupt_file dir uid ~f:flip_byte;
      (* Without a replica the reachable chunk is reported missing. *)
      let dry = FB.scrub ~dry_run:true fb in
      check int_ "corrupt found" 1 (List.length dry.Scrub.corrupt);
      check bool_ "reachable damage reported" true
        (List.exists (fun (_, child) -> Hash.equal child uid) dry.Scrub.missing);
      (* With the replica the same pass repairs it and the API recovers. *)
      let report = FB.scrub ~replica fb in
      check int_ "repaired" 1 report.Scrub.repaired;
      check bool_ "clean" true (Scrub.clean report);
      match FB.get fb ~key:"doc" with
      | Ok v -> check bool_ "value restored" true (Value.equal v (Value.string "v1"))
      | Error e -> Alcotest.fail (Errors.to_string e))

(* Crash -> torn overlay -> scrub quarantines and repairs, end to end. *)
let test_crash_then_scrub () =
  let base = Mem_store.create () in
  let faulty, _ =
    Faulty_store.wrap { Faulty_store.calm with seed = 13L; crash_on_put = Some 2 }
      base
  in
  let replica = Mem_store.create () in
  ignore (Store.put replica (blob 0));
  ignore (Store.put replica (blob 1));
  ignore (Store.put faulty (blob 0));
  (try ignore (Store.put faulty (blob 1)) with Faulty_store.Crash -> ());
  let torn_id = Hash.of_string (Chunk.encode (blob 1)) in
  let report = Scrub.run ~replica faulty in
  check int_ "corrupt" 1 (List.length report.Scrub.corrupt);
  check int_ "repaired" 1 report.Scrub.repaired;
  (match Store.get faulty torn_id with
   | Some c -> check bool_ "restored" true (String.equal c.Chunk.payload "payload 1")
   | None -> Alcotest.fail "torn chunk not restored");
  check bool_ "re-scrub clean" true (Scrub.clean (Scrub.run ~replica faulty))

(* ---------------- crash recovery on reopen ---------------- *)

let test_tmp_cleanup_on_reopen () =
  with_temp_dir (fun dir ->
      let store = File_store.create ~root:dir () in
      let id = Store.put store (blob 0) in
      (* Fake a crash artifact next to a real chunk. *)
      let shard = Filename.concat dir (String.sub (Hash.to_hex id) 0 2) in
      let stray = Filename.concat shard "cafe.tmp" in
      let oc = open_out_bin stray in
      output_string oc "half-written";
      close_out oc;
      let store2 = File_store.create ~root:dir () in
      check bool_ "tmp removed" false (Sys.file_exists stray);
      check bool_ "real chunk survives" true (Store.mem store2 id);
      check int_ "stats exclude artifact" 1
        (Store.stats store2).Store.physical_chunks)

let test_fsync_store_roundtrip () =
  with_temp_dir (fun dir ->
      let store = File_store.create ~fsync:true ~root:dir () in
      let id = Store.put store (blob 0) in
      match Store.get store id with
      | Some c -> check bool_ "fsync path intact" true
          (String.equal c.Chunk.payload "payload 0")
      | None -> Alcotest.fail "fsynced chunk unreadable")

(* ---------------- satellite regressions ---------------- *)

let test_delete_stats_clamp () =
  (* Memory store: delete/put/delete never drives counters negative. *)
  let mem = Mem_store.create () in
  let id = Store.put mem (blob 0) in
  check bool_ "del" true (mem.Store.delete id);
  check bool_ "del again" false (mem.Store.delete id);
  let s = Store.stats mem in
  check int_ "mem chunks floor" 0 s.Store.physical_chunks;
  check int_ "mem bytes floor" 0 s.Store.physical_bytes;
  ignore (Store.put mem (blob 0));
  check bool_ "del after re-put" true (mem.Store.delete id);
  check int_ "mem still zero" 0 (Store.stats mem).Store.physical_chunks;
  (* File store: a second instance on the same root deletes a chunk its
     own session counters never saw. *)
  with_temp_dir (fun dir ->
      let s2 = File_store.create ~root:dir () in
      (* opened on empty root *)
      let s1 = File_store.create ~root:dir () in
      let id = Store.put s1 (blob 1) in
      check bool_ "cross-instance delete" true (s2.Store.delete id);
      let st = Store.stats s2 in
      check int_ "file chunks clamped" 0 st.Store.physical_chunks;
      check int_ "file bytes clamped" 0 st.Store.physical_bytes)

let test_gc_marking_not_counted_as_gets () =
  let store = Mem_store.create () in
  let fb = FB.create store in
  List.iter
    (fun i ->
      match FB.put fb ~key:(Printf.sprintf "k%d" i) (Value.string "x") with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Errors.to_string e))
    [ 0; 1; 2 ];
  let before = (Store.stats store).Store.gets in
  ignore (FB.gc fb);
  check int_ "gc marking does not inflate gets" before
    (Store.stats store).Store.gets

let test_verified_mem_checks () =
  let inner, handle = Mem_store.create_with_handle () in
  let store, v = Verified_store.wrap inner in
  let id = Store.put store (blob 0) in
  check bool_ "mem before tamper" true (Store.mem store id);
  check bool_ "tampered" true (Mem_store.tamper handle id ~f:(fun s -> s ^ "!"));
  check bool_ "mem refuses tampered chunk" false (Store.mem store id);
  check bool_ "violation recorded" true (v.Verified_store.rejected_reads > 0);
  check bool_ "offender" true
    (match v.Verified_store.last_offender with
     | Some o -> Hash.equal o id
     | None -> false)

let test_persistent_crash_recovery () =
  (* File engine specifically: the crash artifact is a torn per-chunk tmp
     file; the log engine's recovery is exercised in test_log.ml. *)
  with_temp_dir (fun dir ->
      (match Fb_core.Persistent.open_ ~backend:"file" ~root:dir () with
       | Error e -> Alcotest.fail (Errors.to_string e)
       | Ok fb ->
         (match FB.put fb ~key:"k" (Value.string "v") with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Errors.to_string e));
         match Fb_core.Persistent.save ~root:dir fb with
         | Ok () -> ()
         | Error e -> Alcotest.fail (Errors.to_string e));
      (* Crash artifact in the chunk tree; reopening recovers. *)
      let shard = Filename.concat (Filename.concat dir "chunks") "00" in
      (try Unix.mkdir shard 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let stray = Filename.concat shard "dead.tmp" in
      let oc = open_out_bin stray in
      output_string oc "torn";
      close_out oc;
      match Fb_core.Persistent.open_ ~fsync:true ~root:dir () with
      | Error e -> Alcotest.fail (Errors.to_string e)
      | Ok fb2 ->
        check bool_ "artifact removed" false (Sys.file_exists stray);
        (match FB.get fb2 ~key:"k" with
         | Ok v -> check bool_ "data intact" true (Value.equal v (Value.string "v"))
         | Error e -> Alcotest.fail (Errors.to_string e)))

let test_service_fsck_verbs () =
  let store = Mem_store.create () in
  let fb = FB.create store in
  (match FB.put fb ~key:"k" (Value.string "v") with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Errors.to_string e));
  let reply = Fb_core.Service.handle fb "fsck" in
  check bool_ "fsck ok" true (Tutil.contains reply "OK");
  check bool_ "fsck reports scan" true (Tutil.contains reply "corrupt");
  let reply = Fb_core.Service.handle fb "scrub" in
  check bool_ "scrub ok" true (Tutil.contains reply "OK")

(* ---------------- backoff caps ---------------- *)

let test_backoff_duration () =
  let d = Resilient_store.backoff_duration in
  (* Base schedule, no jitter: backoff_s * 2^attempt * 0.5. *)
  check (Alcotest.float 1e-9) "attempt 0" 0.005
    (d ~backoff_s:0.01 ~jitter:0.0 0);
  check (Alcotest.float 1e-9) "attempt 3" 0.04 (d ~backoff_s:0.01 ~jitter:0.0 3);
  (* Jitter scales into [0.5x, 1.5x). *)
  check (Alcotest.float 1e-9) "full jitter" 0.015
    (d ~backoff_s:0.01 ~jitter:1.0 0);
  (* Per-sleep cap: big attempts land exactly on max_backoff_s... *)
  check (Alcotest.float 1e-9) "default cap" 1.0 (d ~backoff_s:0.01 ~jitter:0.5 20);
  check (Alcotest.float 1e-9) "custom cap" 0.25
    (d ~max_backoff_s:0.25 ~backoff_s:0.01 ~jitter:0.5 20);
  (* ...and the exponent cap keeps huge attempt counts finite (the old
     unbounded shift overflowed past attempt 62). *)
  let big = d ~max_backoff_s:infinity ~backoff_s:0.01 ~jitter:0.0 1000 in
  check bool_ "no overflow" true (Float.is_finite big && big > 0.0);
  check (Alcotest.float 1e-9) "exponent capped" big
    (d ~max_backoff_s:infinity ~backoff_s:0.01 ~jitter:0.0 17);
  (* Monotone in attempt up to the caps. *)
  let prev = ref 0.0 in
  for a = 0 to 30 do
    let v = d ~backoff_s:0.001 ~jitter:0.25 a in
    check bool_ "monotone" true (v >= !prev);
    prev := v
  done

let test_backoff_total_clamp () =
  (* Every read fails: 10 retries at 50 ms doubling would sleep ~25 s
     unbounded.  The lifetime budget clamps the whole ordeal. *)
  let faulty, _ =
    Faulty_store.wrap
      { Faulty_store.calm with seed = 17L; transient_read_p = 1.0 }
      (Mem_store.create ())
  in
  let store, _ =
    Resilient_store.wrap ~max_retries:10 ~backoff_s:0.05
      ~max_total_backoff_s:0.05 faulty
  in
  let h = Store.put faulty (blob 0) in
  let t0 = Unix.gettimeofday () in
  (match Store.get store h with
  | exception Store.Transient _ -> ()
  | Some _ | None -> Alcotest.fail "all-failing read should raise Transient");
  let elapsed = Unix.gettimeofday () -. t0 in
  check bool_ "total sleep clamped" true (elapsed < 1.0)

let suite =
  [ Alcotest.test_case "faulty: deterministic under a seed" `Quick
      test_faulty_determinism;
    Alcotest.test_case "faulty: crash tears the in-flight put" `Quick
      test_faulty_crash_trigger;
    Alcotest.test_case "resilient: retries absorb transients" `Quick
      test_retry_absorbs_transients;
    Alcotest.test_case "resilient: bit flips never served (3 seeds)" `Quick
      test_bit_flips_never_served;
    Alcotest.test_case "resilient: read repair from replica" `Quick
      test_read_repair_from_replica;
    Alcotest.test_case "resilient: torn writes recovered or surfaced" `Quick
      test_torn_write_recovery;
    Alcotest.test_case "faulty: torn append garbles the tail" `Quick
      test_torn_append_garbage_tail;
    Alcotest.test_case "api: transient surfaces as typed error" `Quick
      test_api_surfaces_transient;
    Alcotest.test_case "api: fault matrix, seeds x kinds" `Quick
      test_api_fault_matrix;
    Alcotest.test_case "scrub: finds, quarantines, repairs all damage" `Quick
      test_scrub_finds_and_repairs;
    Alcotest.test_case "scrub: quarantine without replica" `Quick
      test_scrub_without_replica_quarantines;
    Alcotest.test_case "scrub: reachable damage reported and repaired" `Quick
      test_scrub_reachability;
    Alcotest.test_case "scrub: crash artifact healed from replica" `Quick
      test_crash_then_scrub;
    Alcotest.test_case "file store: tmp cleanup on reopen" `Quick
      test_tmp_cleanup_on_reopen;
    Alcotest.test_case "backoff: duration caps and overflow" `Quick
      test_backoff_duration;
    Alcotest.test_case "backoff: lifetime sleep budget" `Quick
      test_backoff_total_clamp;
    Alcotest.test_case "file store: fsync write path" `Quick
      test_fsync_store_roundtrip;
    Alcotest.test_case "stats: delete clamps at zero" `Quick
      test_delete_stats_clamp;
    Alcotest.test_case "gc: marking does not inflate gets" `Quick
      test_gc_marking_not_counted_as_gets;
    Alcotest.test_case "verified: mem answers via checked path" `Quick
      test_verified_mem_checks;
    Alcotest.test_case "persistent: crash recovery on open" `Quick
      test_persistent_crash_recovery;
    Alcotest.test_case "service: fsck and scrub verbs" `Quick
      test_service_fsck_verbs ]
