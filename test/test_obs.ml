(* Observability layer: histogram accuracy, metered stores, span ring,
   METRICS exposition through the service. *)

module Obs = Fb_obs.Obs
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module FB = Fb_core.Forkbase
module Service = Fb_core.Service

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* The registry is process-global and shared with every other suite in
   this binary: tests only assert on names they own and on deltas. *)

let within_rel ~tol expected actual =
  expected > 0.0 && Float.abs (actual -. expected) /. expected <= tol

(* ---------------- histograms ---------------- *)

let test_quantile_accuracy () =
  let h = Obs.histogram "test.obs.quantiles" in
  Obs.reset_histogram h;
  (* Uniform 0.1ms..100ms, shuffled order must not matter. *)
  let n = 1000 in
  let values = Array.init n (fun i -> float_of_int (i + 1) *. 1e-4) in
  let rng = Fb_hash.Prng.create 99L in
  for i = n - 1 downto 1 do
    let j = Fb_hash.Prng.next_int rng (i + 1) in
    let tmp = values.(i) in
    values.(i) <- values.(j);
    values.(j) <- tmp
  done;
  Array.iter (fun v -> Obs.observe h v) values;
  check int_ "count" n (Obs.hist_count h);
  check bool_ "sum exact" true
    (within_rel ~tol:1e-9 (Array.fold_left ( +. ) 0.0 values) (Obs.hist_sum h));
  check bool_ "min exact" true (Obs.hist_min h = 1e-4);
  check bool_ "max exact" true (Obs.hist_max h = 0.1);
  (* Log-bucketing with ratio 1.1 promises < ~5% relative error; allow 6%. *)
  List.iter
    (fun (q, expected) ->
      let got = Obs.quantile h q in
      if not (within_rel ~tol:0.06 expected got) then
        Alcotest.failf "q=%.2f: expected ~%g, got %g" q expected got)
    [ (0.5, 0.05); (0.9, 0.09); (0.99, 0.099); (1.0, 0.1) ];
  check bool_ "empty quantile" true
    (Obs.quantile (Obs.histogram "test.obs.empty") 0.5 = 0.0)

let test_histogram_reset () =
  let h = Obs.histogram "test.obs.reset" in
  Obs.observe h 0.5;
  Obs.reset_histogram h;
  check int_ "count zero" 0 (Obs.hist_count h);
  check bool_ "sum zero" true (Obs.hist_sum h = 0.0);
  check bool_ "quantile zero" true (Obs.quantile h 0.5 = 0.0)

(* ---------------- metered store ---------------- *)

let test_metered_store () =
  let h_put = Obs.histogram "test.metered.put_seconds" in
  let h_get = Obs.histogram "test.metered.get_seconds" in
  let h_mem = Obs.histogram "test.metered.mem_seconds" in
  List.iter Obs.reset_histogram [ h_put; h_get; h_mem ];
  let s =
    Fb_chunk.Metered_store.wrap ~prefix:"test.metered"
      (Fb_chunk.Mem_store.create ())
  in
  let ids =
    List.init 5 (fun i ->
        Store.put s (Chunk.v Chunk.Leaf_blob (Printf.sprintf "payload-%d" i)))
  in
  List.iter (fun id -> ignore (Store.get s id)) ids;
  ignore (s.Store.mem (List.hd ids));
  check int_ "puts timed" 5 (Obs.hist_count h_put);
  check int_ "gets timed" 5 (Obs.hist_count h_get);
  check int_ "mems timed" 1 (Obs.hist_count h_mem);
  (* peek is the maintenance read: outside both the store's own gets
     accounting and the latency histograms. *)
  let gets_before = (s.Store.stats ()).Store.gets in
  List.iter (fun id -> ignore (Store.peek s id)) ids;
  check int_ "peek not timed" 5 (Obs.hist_count h_get);
  check int_ "peek not counted" gets_before (s.Store.stats ()).Store.gets;
  (* The wrapped store still stores: durations are non-negative and the
     payloads round-trip. *)
  check bool_ "min >= 0" true (Obs.hist_min h_get >= 0.0);
  check bool_ "roundtrip" true
    (match Store.get s (List.hd ids) with
     | Some c -> String.equal c.Chunk.payload "payload-0"
     | None -> false)

let test_disabled_is_noop () =
  let was = Obs.is_enabled () in
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      Obs.set_enabled true;
      let c = Obs.counter "test.obs.disabled_counter" in
      let h = Obs.histogram "test.obs.disabled_hist" in
      Obs.reset_histogram h;
      Obs.incr c;
      let base = Obs.counter_value c in
      let spans_base = Obs.spans_recorded () in
      Obs.set_enabled false;
      Obs.incr c;
      Obs.add c 10;
      Obs.observe h 0.5;
      let r = Obs.time h (fun () -> 42) in
      check int_ "time still runs thunk" 42 r;
      let r' = Obs.with_span "test.disabled" (fun () -> 7) in
      check int_ "with_span still runs thunk" 7 r';
      check int_ "counter untouched" base (Obs.counter_value c);
      check int_ "histogram untouched" 0 (Obs.hist_count h);
      check int_ "no span recorded" spans_base (Obs.spans_recorded ()))

(* ---------------- spans ---------------- *)

let test_span_ring () =
  let cap = Obs.span_capacity () in
  Fun.protect
    ~finally:(fun () -> Obs.set_span_capacity cap)
    (fun () ->
      Obs.set_span_capacity 8;
      for i = 1 to 20 do
        Obs.with_span (Printf.sprintf "ring-%d" i) (fun () -> ())
      done;
      let kept = Obs.spans () in
      check int_ "ring keeps capacity" 8 (List.length kept);
      check int_ "total recorded" 20 (Obs.spans_recorded ());
      (* Oldest-first: the survivors are ring-13 .. ring-20. *)
      check bool_ "oldest evicted" true
        (List.for_all
           (fun (s : Obs.span) ->
             Scanf.sscanf s.Obs.name "ring-%d" (fun i -> i > 12))
           kept);
      (* Parent linkage: a nested span records its enclosing span's id,
         and completes before it. *)
      Obs.set_span_capacity 8;
      Obs.with_span "outer" (fun () ->
          Obs.with_span "inner" (fun () -> ()));
      (match Obs.spans () with
       | [ inner; outer ] ->
         check bool_ "inner first" true (inner.Obs.name = "inner");
         check bool_ "outer is root" true (outer.Obs.parent = -1);
         check int_ "inner parent" outer.Obs.id inner.Obs.parent
       | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
      (* Exceptions still record the span and pop the stack. *)
      (try Obs.with_span "thrower" (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.with_span "after" (fun () -> ());
      let by_name n =
        List.find (fun (s : Obs.span) -> s.Obs.name = n) (Obs.spans ())
      in
      check bool_ "thrower recorded" true
        (match by_name "thrower" with _ -> true | exception Not_found -> false);
      check bool_ "after is root" true ((by_name "after").Obs.parent = -1))

(* ---------------- exposition ---------------- *)

let test_metrics_verbs () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let expect_ok req =
    let resp = Service.handle fb req in
    if String.length resp < 2 || String.sub resp 0 2 <> "OK" then
      Alcotest.failf "request %S -> %s" req resp;
    if String.length resp > 3 then String.sub resp 3 (String.length resp - 3)
    else ""
  in
  ignore (expect_ok "put answer master fortytwo");
  ignore (expect_ok "get answer master");
  let prom = expect_ok "metrics" in
  check bool_ "prometheus has put histogram" true
    (Tutil.contains prom "fb_put_seconds");
  check bool_ "prometheus has quantile label" true
    (Tutil.contains prom "quantile=\"0.99\"");
  check bool_ "prometheus has TYPE lines" true
    (Tutil.contains prom "# TYPE");
  let json = expect_ok "metrics-json" in
  (match Fb_types.Json.parse json with
   | Error e -> Alcotest.failf "metrics-json is not valid JSON: %s" e
   | Ok _ -> ());
  check bool_ "json has histograms" true (Tutil.contains json "\"histograms\"");
  check bool_ "json has put latency" true (Tutil.contains json "fb.put_seconds");
  check bool_ "json has spans" true (Tutil.contains json "\"spans\"");
  (* dump_json without spans stays lean (the bench artifact path). *)
  check bool_ "spans only on request" false
    (Tutil.contains (Obs.dump_json ()) "\"spans\"")

let suite =
  [ Alcotest.test_case "quantile accuracy" `Quick test_quantile_accuracy;
    Alcotest.test_case "histogram reset" `Quick test_histogram_reset;
    Alcotest.test_case "metered store" `Quick test_metered_store;
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span ring" `Quick test_span_ring;
    Alcotest.test_case "metrics verbs" `Quick test_metrics_verbs ]
