(* Observability layer: histogram accuracy, metered stores, span ring,
   METRICS exposition through the service. *)

module Obs = Fb_obs.Obs
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module FB = Fb_core.Forkbase
module Service = Fb_core.Service

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* The registry is process-global and shared with every other suite in
   this binary: tests only assert on names they own and on deltas. *)

let within_rel ~tol expected actual =
  expected > 0.0 && Float.abs (actual -. expected) /. expected <= tol

(* ---------------- histograms ---------------- *)

let test_quantile_accuracy () =
  let h = Obs.histogram "test.obs.quantiles" in
  Obs.reset_histogram h;
  (* Uniform 0.1ms..100ms, shuffled order must not matter. *)
  let n = 1000 in
  let values = Array.init n (fun i -> float_of_int (i + 1) *. 1e-4) in
  let rng = Fb_hash.Prng.create 99L in
  for i = n - 1 downto 1 do
    let j = Fb_hash.Prng.next_int rng (i + 1) in
    let tmp = values.(i) in
    values.(i) <- values.(j);
    values.(j) <- tmp
  done;
  Array.iter (fun v -> Obs.observe h v) values;
  check int_ "count" n (Obs.hist_count h);
  check bool_ "sum exact" true
    (within_rel ~tol:1e-9 (Array.fold_left ( +. ) 0.0 values) (Obs.hist_sum h));
  check bool_ "min exact" true (Obs.hist_min h = 1e-4);
  check bool_ "max exact" true (Obs.hist_max h = 0.1);
  (* Log-bucketing with ratio 1.1 promises < ~5% relative error; allow 6%. *)
  List.iter
    (fun (q, expected) ->
      let got = Obs.quantile h q in
      if not (within_rel ~tol:0.06 expected got) then
        Alcotest.failf "q=%.2f: expected ~%g, got %g" q expected got)
    [ (0.5, 0.05); (0.9, 0.09); (0.99, 0.099); (1.0, 0.1) ];
  check bool_ "empty quantile" true
    (Obs.quantile (Obs.histogram "test.obs.empty") 0.5 = 0.0)

let test_histogram_reset () =
  let h = Obs.histogram "test.obs.reset" in
  Obs.observe h 0.5;
  Obs.reset_histogram h;
  check int_ "count zero" 0 (Obs.hist_count h);
  check bool_ "sum zero" true (Obs.hist_sum h = 0.0);
  check bool_ "quantile zero" true (Obs.quantile h 0.5 = 0.0)

(* ---------------- metered store ---------------- *)

let test_metered_store () =
  let h_put = Obs.histogram "test.metered.put_seconds" in
  let h_get = Obs.histogram "test.metered.get_seconds" in
  let h_mem = Obs.histogram "test.metered.mem_seconds" in
  List.iter Obs.reset_histogram [ h_put; h_get; h_mem ];
  let s =
    Fb_chunk.Metered_store.wrap ~prefix:"test.metered"
      (Fb_chunk.Mem_store.create ())
  in
  let ids =
    List.init 5 (fun i ->
        Store.put s (Chunk.v Chunk.Leaf_blob (Printf.sprintf "payload-%d" i)))
  in
  List.iter (fun id -> ignore (Store.get s id)) ids;
  ignore (s.Store.mem (List.hd ids));
  check int_ "puts timed" 5 (Obs.hist_count h_put);
  check int_ "gets timed" 5 (Obs.hist_count h_get);
  check int_ "mems timed" 1 (Obs.hist_count h_mem);
  (* peek is the maintenance read: outside both the store's own gets
     accounting and the latency histograms. *)
  let gets_before = (s.Store.stats ()).Store.gets in
  List.iter (fun id -> ignore (Store.peek s id)) ids;
  check int_ "peek not timed" 5 (Obs.hist_count h_get);
  check int_ "peek not counted" gets_before (s.Store.stats ()).Store.gets;
  (* The wrapped store still stores: durations are non-negative and the
     payloads round-trip. *)
  check bool_ "min >= 0" true (Obs.hist_min h_get >= 0.0);
  check bool_ "roundtrip" true
    (match Store.get s (List.hd ids) with
     | Some c -> String.equal c.Chunk.payload "payload-0"
     | None -> false)

let test_disabled_is_noop () =
  let was = Obs.is_enabled () in
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      Obs.set_enabled true;
      let c = Obs.counter "test.obs.disabled_counter" in
      let h = Obs.histogram "test.obs.disabled_hist" in
      Obs.reset_histogram h;
      Obs.incr c;
      let base = Obs.counter_value c in
      let spans_base = Obs.spans_recorded () in
      Obs.set_enabled false;
      Obs.incr c;
      Obs.add c 10;
      Obs.observe h 0.5;
      let r = Obs.time h (fun () -> 42) in
      check int_ "time still runs thunk" 42 r;
      let r' = Obs.with_span "test.disabled" (fun () -> 7) in
      check int_ "with_span still runs thunk" 7 r';
      check int_ "counter untouched" base (Obs.counter_value c);
      check int_ "histogram untouched" 0 (Obs.hist_count h);
      check int_ "no span recorded" spans_base (Obs.spans_recorded ()))

(* ---------------- spans ---------------- *)

let test_span_ring () =
  let cap = Obs.span_capacity () in
  Fun.protect
    ~finally:(fun () -> Obs.set_span_capacity cap)
    (fun () ->
      Obs.set_span_capacity 8;
      for i = 1 to 20 do
        Obs.with_span (Printf.sprintf "ring-%d" i) (fun () -> ())
      done;
      let kept = Obs.spans () in
      check int_ "ring keeps capacity" 8 (List.length kept);
      check int_ "total recorded" 20 (Obs.spans_recorded ());
      (* Oldest-first: the survivors are ring-13 .. ring-20. *)
      check bool_ "oldest evicted" true
        (List.for_all
           (fun (s : Obs.span) ->
             Scanf.sscanf s.Obs.name "ring-%d" (fun i -> i > 12))
           kept);
      (* Parent linkage: a nested span records its enclosing span's id,
         and completes before it. *)
      Obs.set_span_capacity 8;
      Obs.with_span "outer" (fun () ->
          Obs.with_span "inner" (fun () -> ()));
      (match Obs.spans () with
       | [ inner; outer ] ->
         check bool_ "inner first" true (inner.Obs.name = "inner");
         check bool_ "outer is root" true (outer.Obs.parent = -1);
         check int_ "inner parent" outer.Obs.id inner.Obs.parent
       | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
      (* Exceptions still record the span and pop the stack. *)
      (try Obs.with_span "thrower" (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.with_span "after" (fun () -> ());
      let by_name n =
        List.find (fun (s : Obs.span) -> s.Obs.name = n) (Obs.spans ())
      in
      check bool_ "thrower recorded" true
        (match by_name "thrower" with _ -> true | exception Not_found -> false);
      check bool_ "after is root" true ((by_name "after").Obs.parent = -1))

(* ---------------- exposition ---------------- *)

let test_metrics_verbs () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let expect_ok req =
    let resp = Service.handle fb req in
    if String.length resp < 2 || String.sub resp 0 2 <> "OK" then
      Alcotest.failf "request %S -> %s" req resp;
    if String.length resp > 3 then String.sub resp 3 (String.length resp - 3)
    else ""
  in
  ignore (expect_ok "put answer master fortytwo");
  ignore (expect_ok "get answer master");
  let prom = expect_ok "metrics" in
  check bool_ "prometheus has put histogram" true
    (Tutil.contains prom "fb_put_seconds");
  check bool_ "prometheus has quantile label" true
    (Tutil.contains prom "quantile=\"0.99\"");
  check bool_ "prometheus has TYPE lines" true
    (Tutil.contains prom "# TYPE");
  let json = expect_ok "metrics-json" in
  (match Fb_types.Json.parse json with
   | Error e -> Alcotest.failf "metrics-json is not valid JSON: %s" e
   | Ok _ -> ());
  check bool_ "json has histograms" true (Tutil.contains json "\"histograms\"");
  check bool_ "json has put latency" true (Tutil.contains json "fb.put_seconds");
  check bool_ "json has spans" true (Tutil.contains json "\"spans\"");
  (* dump_json without spans stays lean (the bench artifact path). *)
  check bool_ "spans only on request" false
    (Tutil.contains (Obs.dump_json ()) "\"spans\"")

(* ---------------- exposition lint ---------------- *)

(* Hand-rolled validator for the Prometheus text exposition grammar:
   every line is either a [# TYPE name kind] comment or a sample
   [name[{labels}] value] with a legal metric name and a value the
   format allows (decimal float, NaN, +Inf, -Inf).  Scrapers reject
   anything else, so the whole dump must pass — including gauges that
   currently read NaN. *)
let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_metric_name s =
  s <> ""
  && (match s.[0] with '0' .. '9' -> false | c -> is_name_char c)
  && String.for_all is_name_char s

let valid_value v =
  match v with
  | "NaN" | "+Inf" | "-Inf" -> true
  | _ -> Option.is_some (float_of_string_opt v)

let lint_prometheus text =
  List.iteri
    (fun i line ->
      let fail fmt = Alcotest.failf ("line %d: " ^^ fmt ^^ ": %S") (i + 1) line in
      if line = "" then ()
      else if String.length line > 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (valid_metric_name name) then fail "bad name in TYPE";
          if not (List.mem kind [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ])
          then fail "unknown metric kind"
        | "#" :: ("HELP" | "EOF") :: _ -> ()
        | _ -> fail "malformed comment"
      end
      else begin
        let n = String.length line in
        let name_end =
          let rec go j = if j < n && is_name_char line.[j] then go (j + 1) else j in
          go 0
        in
        if name_end = 0 || not (valid_metric_name (String.sub line 0 name_end))
        then fail "bad metric name";
        let rest = String.sub line name_end (n - name_end) in
        let rest =
          if rest <> "" && rest.[0] = '{' then (
            match String.index_opt rest '}' with
            | None -> fail "unterminated label set"
            | Some j ->
              let labels = String.sub rest 1 (j - 1) in
              if not (String.contains labels '=' && String.contains labels '"')
              then fail "malformed labels";
              String.sub rest (j + 1) (String.length rest - j - 1))
          else rest
        in
        match String.split_on_char ' ' (String.trim rest) with
        | [ v ] when valid_value v -> ()
        | _ -> fail "bad sample value"
      end)
    (String.split_on_char '\n' text)

let test_prometheus_lint () =
  (* Seed the registry with every shape, including the values "%g" would
     print illegally. *)
  let c = Obs.counter "test.lint.requests" in
  Obs.incr c;
  let h = Obs.histogram "test.lint.latency_seconds" in
  Obs.reset_histogram h;
  List.iter (Obs.observe h) [ 0.001; 0.01; 0.1 ];
  Obs.gauge "test.lint.nan_ratio" (fun () -> Float.nan);
  Obs.gauge "test.lint.pos_inf" (fun () -> Float.infinity);
  Obs.gauge "test.lint.neg_inf" (fun () -> Float.neg_infinity);
  Fun.protect
    ~finally:(fun () -> Obs.unregister_gauges_prefix "test.lint.")
    (fun () ->
      let dump = Obs.dump_prometheus () in
      lint_prometheus dump;
      check bool_ "NaN spelled per grammar" true (Tutil.contains dump " NaN");
      check bool_ "+Inf spelled per grammar" true (Tutil.contains dump " +Inf");
      check bool_ "-Inf spelled per grammar" true (Tutil.contains dump " -Inf"))

(* ---------------- snapshots & deltas ---------------- *)

(* The interval readout forkbase top relies on: two snapshots of a
   growing histogram subtract into the distribution of just the interval
   between them. *)
let test_snapshot_delta () =
  let h = Obs.histogram "test.obs.delta" in
  Obs.reset_histogram h;
  List.iter (Obs.observe h) [ 0.001; 0.002; 0.003 ];
  let s1 = Obs.snapshot h in
  check int_ "first snapshot total" 3 (Obs.snapshot_total s1);
  let interval = List.init 100 (fun i -> 0.01 +. (float_of_int i *. 1e-4)) in
  List.iter (Obs.observe h) interval;
  let s2 = Obs.snapshot h in
  let d = Obs.snapshot_sub s2 s1 in
  check int_ "delta count" 100 d.Obs.snap_count;
  check int_ "delta bucket total" 100 (Obs.snapshot_total d);
  check bool_ "delta sum" true
    (within_rel ~tol:1e-9
       (List.fold_left ( +. ) 0.0 interval)
       d.Obs.snap_sum);
  (* The delta's median sits in the interval's range (~15ms), unpolluted
     by the pre-snapshot 1–3ms samples; log buckets are ~5% accurate. *)
  check bool_ "delta p50 reflects only the interval" true
    (within_rel ~tol:0.08 0.015 (Obs.snapshot_quantile d 0.5));
  check bool_ "delta p99 near interval max" true
    (within_rel ~tol:0.08 0.0199 (Obs.snapshot_quantile d 0.99));
  (* Self-delta is empty; reversed order (a remote reset) clamps to
     empty instead of going negative. *)
  check int_ "self delta empty" 0 (Obs.snapshot_total (Obs.snapshot_sub s2 s2));
  let r = Obs.snapshot_sub s1 s2 in
  check int_ "reversed delta clamps count" 0 r.Obs.snap_count;
  check int_ "reversed delta clamps buckets" 0 (Obs.snapshot_total r);
  check bool_ "reversed delta clamps sum" true (r.Obs.snap_sum = 0.0)

let test_snapshot_of_buckets () =
  (* The wire form: unsorted, with out-of-range junk a bad peer could
     send — rebuilt sorted and filtered. *)
  let s =
    Obs.snapshot_of_buckets ~count:5 ~sum:1.0
      [ (50, 3); (10, 2); (-1, 9); (100000, 4); (20, 0) ]
  in
  check bool_ "sorted and filtered" true (s.Obs.snap_buckets = [ (10, 2); (50, 3) ]);
  check int_ "total" 5 (Obs.snapshot_total s);
  let q25 = Obs.snapshot_quantile s 0.25 in
  let q95 = Obs.snapshot_quantile s 0.95 in
  check bool_ "quantiles positive and monotone" true (q25 > 0.0 && q95 > q25);
  check int_ "empty snapshot" 0 (Obs.snapshot_total Obs.empty_snapshot);
  check bool_ "empty quantile is zero" true
    (Obs.snapshot_quantile Obs.empty_snapshot 0.5 = 0.0)

(* ---------------- structured events ---------------- *)

let test_event_log () =
  Obs.reset ();
  Obs.set_log_level Obs.Info;
  Obs.log_event Obs.Debug "dropped";
  Obs.log_event ~fields:[ ("k", "v \"quoted\"\n") ] Obs.Warn "kept";
  (match Obs.events () with
   | [ e ] ->
     check bool_ "below-threshold event dropped" true (e.Obs.ev_msg = "kept");
     check bool_ "no trace outside a span" true (e.Obs.ev_trace = None);
     (* The JSON line a sink would receive must be valid JSON even with
        quotes and newlines in field values. *)
     (match Fb_types.Json.parse (Obs.event_to_json e) with
      | Error err -> Alcotest.failf "event json invalid: %s" err
      | Ok j ->
        check bool_ "json msg field" true
          (Fb_types.Json.member "msg" j = Some (Fb_types.Json.String "kept")))
   | l -> Alcotest.failf "expected 1 ring event, got %d" (List.length l));
  (* An event emitted inside a span carries that span's trace id. *)
  Obs.with_span "evspan" (fun () -> Obs.log_event Obs.Error "inside");
  let inside =
    List.find (fun (e : Obs.event) -> e.Obs.ev_msg = "inside") (Obs.events ())
  in
  let span =
    List.find (fun (s : Obs.span) -> s.Obs.name = "evspan") (Obs.spans ())
  in
  (match inside.Obs.ev_trace with
   | Some t ->
     check int_ "trace id is 32 hex chars" 32 (String.length t);
     check Alcotest.string "event joins the span's trace" span.Obs.trace t
   | None -> Alcotest.fail "no trace attached inside span");
  (* A sink diverts events away from the ring. *)
  let captured = ref [] in
  Obs.set_log_sink (Some (fun line -> captured := line :: !captured));
  Fun.protect
    ~finally:(fun () -> Obs.set_log_sink None)
    (fun () ->
      Obs.log_event Obs.Info "to sink";
      check int_ "sink received the line" 1 (List.length !captured);
      check bool_ "sink line is json" true
        (Result.is_ok (Fb_types.Json.parse (List.hd !captured)));
      check bool_ "sinked event bypasses the ring" true
        (not
           (List.exists
              (fun (e : Obs.event) -> e.Obs.ev_msg = "to sink")
              (Obs.events ()))))

let test_chrome_trace_json () =
  Obs.reset ();
  Obs.with_span ~attrs:[ ("key", "va\"lue") ] "chrome-span" (fun () ->
      Obs.with_span "chrome-child" (fun () -> ()));
  match Fb_types.Json.parse (Obs.dump_chrome_trace ()) with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok j -> (
    match Fb_types.Json.member "traceEvents" j with
    | Some (Fb_types.Json.Array evs) ->
      check bool_ "both spans exported" true (List.length evs >= 2);
      List.iter
        (fun ev ->
          check bool_ "complete event" true
            (Fb_types.Json.member "ph" ev = Some (Fb_types.Json.String "X"));
          check bool_ "microsecond timestamp" true
            (match Fb_types.Json.member "ts" ev with
             | Some (Fb_types.Json.Number _) -> true
             | _ -> false))
        evs
    | _ -> Alcotest.fail "no traceEvents array")

(* ---------------- gauge lifecycle ---------------- *)

let gauge_value name =
  match Fb_types.Json.parse (Obs.dump_json ()) with
  | Error e -> Alcotest.failf "dump_json invalid: %s" e
  | Ok j -> (
    match Fb_types.Json.member "gauges" j with
    | Some g -> Fb_types.Json.member name g
    | None -> None)

let test_gauge_reregistration () =
  (* Close/reopen cycles re-register under the same names: registration
     must be idempotent-by-name with the newest closure winning, never a
     duplicated time series. *)
  Obs.gauge "test.lww.g" (fun () -> 1.0);
  Obs.gauge "test.lww.g" (fun () -> 2.0);
  Fun.protect
    ~finally:(fun () -> Obs.unregister_gauges_prefix "test.lww.")
    (fun () ->
      check bool_ "last registration wins" true
        (gauge_value "test.lww.g" = Some (Fb_types.Json.Number 2.0));
      let dump = Obs.dump_prometheus () in
      let occurrences =
        let rec go pos acc =
          if pos >= String.length dump then acc
          else
            match String.index_from_opt dump pos '\n' with
            | None -> acc
            | Some nl ->
              let line = String.sub dump pos (nl - pos) in
              go (nl + 1)
                (if Tutil.contains line "test_lww_g" then acc + 1 else acc)
        in
        go 0 0
      in
      (* One TYPE line + one sample — not two series. *)
      check int_ "no duplicate series" 2 occurrences)

let test_persistent_gauge_retirement () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_obs_gauges_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail (Fb_core.Errors.to_string e)
  in
  let gname = "log." ^ Filename.concat root "log" ^ ".generation" in
  Fun.protect
    ~finally:(fun () ->
      Fb_core.Persistent.close ~root;
      ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () ->
      let fb = ok (Fb_core.Persistent.open_ ~backend:"log" ~root ()) in
      ignore (ok (FB.put fb ~key:"k" (Fb_types.Value.string "v")));
      ignore (Fb_core.Persistent.save ~root fb);
      check bool_ "gauges live while open" true (gauge_value gname <> None);
      Fb_core.Persistent.close ~root;
      check bool_ "gauges retired on close" true (gauge_value gname = None);
      (* Reopen takes the same names back. *)
      let fb2 = ok (Fb_core.Persistent.open_ ~backend:"log" ~root ()) in
      ignore fb2;
      check bool_ "gauges return on reopen" true (gauge_value gname <> None))

let suite =
  [ Alcotest.test_case "quantile accuracy" `Quick test_quantile_accuracy;
    Alcotest.test_case "histogram reset" `Quick test_histogram_reset;
    Alcotest.test_case "metered store" `Quick test_metered_store;
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span ring" `Quick test_span_ring;
    Alcotest.test_case "metrics verbs" `Quick test_metrics_verbs;
    Alcotest.test_case "prometheus exposition lint" `Quick test_prometheus_lint;
    Alcotest.test_case "snapshot delta math" `Quick test_snapshot_delta;
    Alcotest.test_case "snapshot from wire buckets" `Quick
      test_snapshot_of_buckets;
    Alcotest.test_case "structured event log" `Quick test_event_log;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_json;
    Alcotest.test_case "gauge re-registration" `Quick test_gauge_reregistration;
    Alcotest.test_case "persistent gauge retirement" `Quick
      test_persistent_gauge_retirement ]
