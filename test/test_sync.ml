(* Merkle-DAG delta sync: the pure pieces (plan_order, verify_encoded,
   have codec), the Forkbase ingest gates (sync_put / advance_head), the
   wire round trip over both server engines, delta efficiency on a small
   edit, and tamper refusal on ingest. *)

module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Sync = Fb_core.Sync
module Value = Fb_types.Value
module Hash = Fb_hash.Hash
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module Mem_store = Fb_chunk.Mem_store
module Frame = Fb_net.Frame
module Remote = Fb_net.Remote
module Server = Fb_net.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok_fb = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let ok_net = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_config =
  { Server.default_config with port = 0; save_every_s = 0.0 }

let with_server ?(config = test_config) fb f =
  let srv = ok_net (Server.start ~config fb) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_remote srv f =
  let r =
    match Remote.connect ~port:(Server.port srv) () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Errors.to_string e)
  in
  Fun.protect ~finally:(fun () -> Remote.close r) (fun () -> f r)

let bindings n tag =
  List.init n (fun i -> (Printf.sprintf "r%06d" i, Printf.sprintf "%s%d" tag i))

(* ---------------- plan_order ---------------- *)

(* Random acyclic graphs: node i's children are drawn from nodes < i, so
   edges always point down.  The property: every emitted id appears
   after all of its missing children, each reachable-and-missing id is
   emitted exactly once, and nothing else is. *)
let qcheck_plan_order =
  let gen =
    QCheck.Gen.(
      int_range 1 24 >>= fun n ->
      let edge_lists =
        List.init n (fun i ->
            if i = 0 then return []
            else small_list (int_bound (i - 1)))
      in
      flatten_l edge_lists >>= fun edges ->
      list_size (int_range 1 4) (int_bound (n - 1)) >>= fun roots ->
      list_repeat n bool >>= fun missing_mask ->
      return (n, edges, roots, missing_mask))
  in
  QCheck.Test.make ~count:300 ~name:"plan_order is child-first and complete"
    (QCheck.make gen)
    (fun (n, edges, roots, missing_mask) ->
      let id_of = Array.init n (fun i -> Hash.of_string (string_of_int i)) in
      let idx_of = Hashtbl.create n in
      Array.iteri (fun i id -> Hashtbl.replace idx_of id i) id_of;
      let children id =
        List.map (fun j -> id_of.(j)) (List.nth edges (Hashtbl.find idx_of id))
      in
      let missing id = List.nth missing_mask (Hashtbl.find idx_of id) in
      let roots = List.map (fun i -> id_of.(i)) roots in
      let order = Sync.plan_order ~children ~missing ~roots in
      (* Expected membership: missing nodes reachable from roots through
         missing nodes only (descent stops at a held chunk). *)
      let expected = Hashtbl.create n in
      let rec reach id =
        if missing id && not (Hashtbl.mem expected id) then begin
          Hashtbl.replace expected id ();
          List.iter reach (children id)
        end
      in
      List.iter reach roots;
      let seen = Hashtbl.create n in
      List.for_all
        (fun id ->
          let child_first =
            List.for_all
              (fun c -> (not (missing c)) || Hashtbl.mem seen c)
              (children id)
          in
          let fresh = not (Hashtbl.mem seen id) in
          Hashtbl.replace seen id ();
          child_first && fresh && Hashtbl.mem expected id)
        order
      && Hashtbl.length seen = Hashtbl.length expected)

(* ---------------- have-bitmap codec ---------------- *)

let qcheck_have_roundtrip =
  QCheck.Test.make ~count:200 ~name:"have bitmap round-trip"
    QCheck.(list bool)
    (fun bits ->
      match Sync.decode_have (Sync.encode_have bits) with
      | Ok got -> got = bits
      | Error _ -> false)

let test_have_rejects_garbage () =
  List.iter
    (fun s ->
      match Sync.decode_have s with
      | Error (Errors.Invalid _) -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error e -> Alcotest.fail (Errors.to_string e))
    [ "2"; "10x01"; "yes"; "1 0" ]

(* ---------------- sync frame encodings ---------------- *)

(* Chunk payloads are raw binary; the length-prefixed token framing must
   carry them byte-exact alongside the seq header. *)
let qcheck_sync_put_frame_roundtrip =
  let any_string n = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- n)) in
  QCheck.Test.make ~count:300 ~name:"sync-put request frame round-trip"
    (QCheck.make
       QCheck.Gen.(
         quad (any_string 40) (any_string 40) (any_string 2000)
           (opt (int_bound ((1 lsl 30) - 1)))))
    (fun (key, branch, bytes, seq) ->
      let req =
        Frame.Single [ "sync-put"; key; branch; "deadbeef"; bytes ]
      in
      match
        Frame.decode_request (Frame.encode_request ~user:"sync" ?seq req)
      with
      | Ok (u, _, s, r) -> u = "sync" && s = seq && r = req
      | Error _ -> false)

(* Any strict prefix of an encoded frame must decode as [`Need_more] or
   a malformed-prefix error — never as a complete (bogus) frame. *)
let qcheck_truncated_frame =
  let any_string n = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- n)) in
  QCheck.Test.make ~count:300 ~name:"truncated frames never parse"
    (QCheck.make QCheck.Gen.(pair (any_string 500) (float_bound_inclusive 1.0)))
    (fun (payload, frac) ->
      let wire = Frame.encode_frame payload in
      let cut = int_of_float (frac *. float_of_int (String.length wire)) in
      let cut = min cut (String.length wire - 1) in
      let truncated = String.sub wire 0 (max 0 cut) in
      match Frame.decode_frame truncated with
      | Ok `Need_more -> true
      | Error (Frame.Malformed _) -> true
      | Ok (`Frame _) -> false
      | Error _ -> false)

let test_oversize_frame_rejected () =
  let wire = Frame.encode_frame (String.make 4096 'x') in
  match Frame.decode_frame ~max_frame:1024 wire with
  | Error (Frame.Too_large n) ->
    check bool_ "announces the oversize length" true (n >= 4096)
  | _ -> Alcotest.fail "oversize frame accepted"

(* ---------------- verify_encoded ---------------- *)

let test_verify_encoded () =
  let store = Mem_store.create () in
  let fb = FB.create store in
  ignore (ok_fb (FB.put fb ~key:"k" (Value.string "payload")));
  let head = ok_fb (FB.head fb ~key:"k") in
  let encoded = Option.get (Store.peek store head) in
  (* Pristine bytes verify. *)
  (match Sync.verify_encoded head encoded with
   | Ok chunk -> check bool_ "hash matches" true (Hash.equal (Chunk.hash chunk) head)
   | Error e -> Alcotest.fail (Errors.to_string e));
  (* One flipped byte is refused. *)
  let tampered = Bytes.of_string encoded in
  let last = Bytes.length tampered - 1 in
  Bytes.set tampered last (Char.chr (Char.code (Bytes.get tampered last) lxor 1));
  (match Sync.verify_encoded head (Bytes.to_string tampered) with
   | Error (Errors.Corrupt _) -> ()
   | Ok _ -> Alcotest.fail "tampered bytes verified"
   | Error e -> Alcotest.fail (Errors.to_string e));
  (* Bytes of a different (genuine) chunk are refused against this id. *)
  ignore (ok_fb (FB.put fb ~key:"k2" (Value.string "other")));
  let other = ok_fb (FB.head fb ~key:"k2") in
  match Sync.verify_encoded head (Option.get (Store.peek store other)) with
  | Error (Errors.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "wrong chunk accepted under this id"
  | Error e -> Alcotest.fail (Errors.to_string e)

(* ---------------- sync_put / advance_head (wire-free) ---------------- *)

(* Walk a head's full closure out of [src]'s store in child-first order. *)
let closure_plan src_store head =
  Sync.plan_order
    ~children:(fun id ->
      match Store.peek src_store id with
      | None -> []
      | Some encoded -> (
        match Chunk.decode encoded with
        | Ok chunk -> Sync.children chunk
        | Error _ -> []))
    ~missing:(fun _ -> true) ~roots:[ head ]

let test_sync_put_and_advance () =
  let src_store = Mem_store.create () in
  let src = FB.create src_store in
  ignore
    (ok_fb (FB.put src ~key:"m" (Value.map_of_bindings src_store (bindings 1200 "v"))));
  let head = ok_fb (FB.head src ~key:"m") in
  let plan = closure_plan src_store head in
  check bool_ "multi-chunk value" true (List.length plan > 3);
  let dst = FB.create (Mem_store.create ()) in
  (* Parent before children is refused: the closure invariant. *)
  (match
     FB.sync_put dst ~key:"m" head (Option.get (Store.peek src_store head))
   with
   | Error (Errors.Invalid msg) ->
     check bool_ "names the missing children" true
       (Tutil.contains msg "children")
   | Ok _ -> Alcotest.fail "orphaning sync_put accepted"
   | Error e -> Alcotest.fail (Errors.to_string e));
  (* advance_head without the version present is refused. *)
  (match FB.advance_head dst ~key:"m" head with
   | Error (Errors.Version_not_found _) -> ()
   | Ok _ -> Alcotest.fail "advanced onto an absent version"
   | Error e -> Alcotest.fail (Errors.to_string e));
  (* Child-first streaming is accepted chunk by chunk... *)
  List.iter
    (fun id ->
      ignore
        (ok_fb
           (FB.sync_put dst ~key:"m" id (Option.get (Store.peek src_store id)))))
    plan;
  (* ...and a watcher sees the atomic head jump. *)
  let events = ref [] in
  ignore (FB.watch dst (fun ev -> events := ev :: !events));
  let uid = ok_fb (FB.advance_head dst ~key:"m" head) in
  check bool_ "advanced to the source head" true (Hash.equal uid head);
  check int_ "one watch event for the whole transfer" 1 (List.length !events);
  check bool_ "replica head equal" true
    (Hash.equal (ok_fb (FB.head dst ~key:"m")) head);
  check bool_ "replica scrubs clean" true
    (Fb_chunk.Scrub.clean (FB.scrub ~dry_run:true dst));
  (* Divergence is refused: advance is fast-forward only. *)
  let fork = FB.create (Mem_store.create ()) in
  ignore (ok_fb (FB.put fork ~key:"m" (Value.string "divergent")));
  let plan_to fb' =
    List.iter
      (fun id ->
        ignore
          (ok_fb
             (FB.sync_put fb' ~key:"m" id
                (Option.get (Store.peek src_store id)))))
      plan
  in
  plan_to fork;
  match FB.advance_head fork ~key:"m" head with
  | Error (Errors.Invalid msg) ->
    check bool_ "names fast-forward" true (Tutil.contains msg "fast-forward")
  | Ok _ -> Alcotest.fail "non-fast-forward advance accepted"
  | Error e -> Alcotest.fail (Errors.to_string e)

let test_sync_put_refuses_mismatch () =
  let src_store = Mem_store.create () in
  let src = FB.create src_store in
  ignore (ok_fb (FB.put src ~key:"k" (Value.string "v")));
  let head = ok_fb (FB.head src ~key:"k") in
  let encoded = Option.get (Store.peek src_store head) in
  let dst = FB.create (Mem_store.create ()) in
  let bogus = Hash.of_string "not-these-bytes" in
  match FB.sync_put dst ~key:"k" bogus encoded with
  | Error (Errors.Corrupt msg) ->
    check bool_ "calls out tampering" true (Tutil.contains msg "refusing")
  | Ok _ -> Alcotest.fail "mismatched id accepted"
  | Error e -> Alcotest.fail (Errors.to_string e)

(* ---------------- wire round trip (both engines) ---------------- *)

let run_push_pull_roundtrip mode () =
  let config = { test_config with mode } in
  let src_store = Mem_store.create () in
  let src = FB.create src_store in
  ignore
    (ok_fb
       (FB.put src ~key:"table"
          (Value.map_of_bindings src_store (bindings 1500 "v"))));
  let srv_fb = FB.create (Mem_store.create ()) in
  with_server ~config srv_fb (fun srv ->
      with_remote srv (fun r ->
          (* Full push: the server starts empty, everything crosses. *)
          let uid, full = ok_fb (Remote.push r src ~key:"table") in
          check bool_ "pushed head is the source head" true
            (Hash.equal uid (ok_fb (FB.head src ~key:"table")));
          check bool_ "server head advanced" true
            (Hash.equal uid (ok_fb (FB.head srv_fb ~key:"table")));
          check bool_ "chunks crossed" true (full.Sync.chunks_moved > 3);
          check bool_ "server value scrubs clean" true
            (Fb_chunk.Scrub.clean (FB.scrub ~dry_run:true srv_fb));
          (* Idempotent: nothing to send when heads agree. *)
          let _, again = ok_fb (Remote.push r src ~key:"table") in
          check int_ "no chunks on an up-to-date push" 0
            again.Sync.chunks_moved;
          (* A small edit ships a small delta: shared subtrees are
             skipped at the frontier. *)
          ignore
            (ok_fb
               (FB.put src ~key:"table"
                  (Value.map_of_bindings src_store
                     (("r000000", "EDITED")
                      :: List.tl (bindings 1500 "v")))));
          let _, delta = ok_fb (Remote.push r src ~key:"table") in
          check bool_ "delta moved something" true (delta.Sync.chunks_moved > 0);
          check bool_ "delta far smaller than full" true
            (delta.Sync.chunks_moved * 2 < full.Sync.chunks_moved);
          check bool_ "frontier cut at shared chunks" true
            (delta.Sync.chunks_skipped > 0);
          (* Pull the whole thing into a fresh replica. *)
          let dst = FB.create (Mem_store.create ()) in
          let puid, pfull = ok_fb (Remote.pull r dst ~key:"table") in
          check bool_ "pulled head matches" true
            (Hash.equal puid (ok_fb (FB.head src ~key:"table")));
          check bool_ "pull moved the closure" true
            (pfull.Sync.chunks_moved > 3);
          check bool_ "freshly-pulled root scrubs clean" true
            (Fb_chunk.Scrub.clean (FB.scrub ~dry_run:true dst));
          (* Pull is idempotent too... *)
          let _, pagain = ok_fb (Remote.pull r dst ~key:"table") in
          check int_ "no chunks on an up-to-date pull" 0
            pagain.Sync.chunks_moved;
          (* ...and an incremental pull after another small edit is a
             delta, not a full transfer. *)
          ignore
            (ok_fb
               (FB.put src ~key:"table"
                  (Value.map_of_bindings src_store
                     (("r000001", "EDITED2")
                      :: List.tl (bindings 1500 "v")))));
          ignore (ok_fb (Remote.push r src ~key:"table"));
          let _, pdelta = ok_fb (Remote.pull r dst ~key:"table") in
          check bool_ "incremental pull is a delta" true
            (pdelta.Sync.chunks_moved * 2 < pfull.Sync.chunks_moved);
          check bool_ "incremental pull skipped shared chunks" true
            (pdelta.Sync.chunks_skipped > 0);
          (* Divergent histories are refused over the wire as well. *)
          let rogue_store = Mem_store.create () in
          let rogue = FB.create rogue_store in
          ignore (ok_fb (FB.put rogue ~key:"table" (Value.string "divergent")));
          match Remote.push r rogue ~key:"table" with
          | Error (Errors.Invalid msg) ->
            check bool_ "non-fast-forward push refused" true
              (Tutil.contains msg "fast-forward")
          | Ok _ -> Alcotest.fail "divergent push accepted"
          | Error e -> Alcotest.fail (Errors.to_string e)))

(* ---------------- tamper refusal over the wire ---------------- *)

(* A malicious server answers sync-get with corrupted bytes.  The puller
   re-hashes every chunk against the id it asked for, refuses the
   transfer, and leaves the local store untouched. *)
let test_pull_refuses_tampered_chunks () =
  let store = Mem_store.create () in
  let corrupting =
    { store with
      Store.name = "tampering";
      get_raw =
        (fun id ->
          Option.map
            (fun s ->
              let b = Bytes.of_string s in
              let last = Bytes.length b - 1 in
              Bytes.set b last
                (Char.chr (Char.code (Bytes.get b last) lxor 1));
              Bytes.to_string b)
            (store.Store.get_raw id)) }
  in
  let srv_fb = FB.create corrupting in
  ignore (ok_fb (FB.put srv_fb ~key:"k" (Value.string "honest value")));
  with_server srv_fb (fun srv ->
      with_remote srv (fun r ->
          let dst_store = Mem_store.create () in
          let dst = FB.create dst_store in
          (match Remote.pull r dst ~key:"k" with
           | Error (Errors.Corrupt _) -> ()
           | Ok _ -> Alcotest.fail "tampered pull accepted"
           | Error e -> Alcotest.fail (Errors.to_string e));
          check int_ "nothing reached the local store" 0
            (Store.stats dst_store).Store.physical_chunks;
          match FB.head dst ~key:"k" with
          | Error (Errors.Key_not_found _) -> ()
          | Ok _ -> Alcotest.fail "branch head advanced on a refused pull"
          | Error e -> Alcotest.fail (Errors.to_string e)))

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_plan_order;
    QCheck_alcotest.to_alcotest qcheck_have_roundtrip;
    Alcotest.test_case "have bitmap rejects garbage" `Quick
      test_have_rejects_garbage;
    QCheck_alcotest.to_alcotest qcheck_sync_put_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_truncated_frame;
    Alcotest.test_case "oversize frame rejected" `Quick
      test_oversize_frame_rejected;
    Alcotest.test_case "verify_encoded gates ingest" `Quick
      test_verify_encoded;
    Alcotest.test_case "sync_put closure + advance_head" `Quick
      test_sync_put_and_advance;
    Alcotest.test_case "sync_put refuses id mismatch" `Quick
      test_sync_put_refuses_mismatch;
    Alcotest.test_case "push/pull round trip (event)" `Quick
      (run_push_pull_roundtrip `Event);
    Alcotest.test_case "push/pull round trip (threaded)" `Quick
      (run_push_pull_roundtrip `Threaded);
    Alcotest.test_case "pull refuses tampered chunks" `Quick
      test_pull_refuses_tampered_chunks ]
