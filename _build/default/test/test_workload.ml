(* Workload generators: determinism and shape. *)

module Csvgen = Fb_workload.Csvgen
module Edits = Fb_workload.Edits
module Zipf = Fb_workload.Zipf
module Csv = Fb_types.Csv
module Prng = Fb_hash.Prng

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let spec = { Csvgen.rows = 200; string_columns = 2; int_columns = 1; seed = 3L }

let test_csvgen_shape () =
  let rows = Csvgen.generate_rows spec in
  check int_ "row count" 201 (List.length rows);
  check bool_ "header" true (List.hd rows = [ "id"; "s0"; "s1"; "n0" ]);
  List.iteri
    (fun i row ->
      if i > 0 then check int_ "arity" 4 (List.length row))
    rows;
  (* Unique ids. *)
  let ids = List.map List.hd (List.tl rows) in
  check int_ "unique ids" 200 (List.length (List.sort_uniq compare ids))

let test_csvgen_deterministic () =
  check bool_ "same seed same doc" true
    (Csvgen.generate spec = Csvgen.generate spec);
  check bool_ "different seed different doc" false
    (Csvgen.generate spec = Csvgen.generate { spec with seed = 4L })

let test_csvgen_parses () =
  match Csv.parse (Csvgen.generate spec) with
  | Ok rows -> check int_ "parses" 201 (List.length rows)
  | Error e -> Alcotest.fail e

let test_generate_of_size () =
  let target = 338_540 (* the Fig. 4 dataset size *) in
  let doc = Csvgen.generate_of_size ~target_bytes:target () in
  let err =
    abs (String.length doc - target)
  in
  check bool_
    (Printf.sprintf "size %d within 2%% of %d" (String.length doc) target)
    true
    (float_of_int err < 0.02 *. float_of_int target)

let test_change_one_word () =
  let doc = Csvgen.generate spec in
  let doc' = Edits.change_one_word doc in
  check bool_ "changed" false (String.equal doc doc');
  (* Same row structure; exactly one cell differs. *)
  match Csv.parse doc, Csv.parse doc' with
  | Ok r1, Ok r2 ->
    check int_ "same rows" (List.length r1) (List.length r2);
    let diffs =
      List.fold_left2
        (fun acc row1 row2 ->
          acc
          + List.fold_left2
              (fun a c1 c2 -> if String.equal c1 c2 then a else a + 1)
              0 row1 row2)
        0 r1 r2
    in
    check int_ "one cell" 1 diffs;
    check bool_ "header intact" true (List.hd r1 = List.hd r2)
  | _ -> Alcotest.fail "parse"

let test_point_edits () =
  let rows = Csvgen.generate_rows spec in
  let rows' = Edits.point_edit_cells ~cells:5 rows in
  check int_ "rows kept" (List.length rows) (List.length rows');
  check bool_ "header intact" true (List.hd rows = List.hd rows')

let test_append_delete () =
  let rows = Csvgen.generate_rows spec in
  let more = Edits.append_rows ~rows:50 rows in
  check int_ "appended" (List.length rows + 50) (List.length more);
  let fewer = Edits.delete_rows ~rows:30 rows in
  check int_ "deleted" (List.length rows - 30) (List.length fewer);
  (* Deleting more rows than exist empties the data. *)
  let none = Edits.delete_rows ~rows:10_000 rows in
  check int_ "over-delete" 1 (List.length none)

let test_zipf () =
  let rng = Prng.create 8L in
  let z = Zipf.create rng ~n:100 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.next z in
    check bool_ "in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate rank 50 heavily. *)
  check bool_
    (Printf.sprintf "skew %d >> %d" counts.(0) counts.(50))
    true
    (counts.(0) > 5 * max 1 counts.(50));
  Alcotest.check_raises "n >= 1" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create rng ~n:0))

let suite =
  [ Alcotest.test_case "csvgen shape" `Quick test_csvgen_shape;
    Alcotest.test_case "csvgen deterministic" `Quick test_csvgen_deterministic;
    Alcotest.test_case "csvgen parses" `Quick test_csvgen_parses;
    Alcotest.test_case "generate_of_size" `Quick test_generate_of_size;
    Alcotest.test_case "change one word" `Quick test_change_one_word;
    Alcotest.test_case "point edits" `Quick test_point_edits;
    Alcotest.test_case "append/delete rows" `Quick test_append_delete;
    Alcotest.test_case "zipf" `Quick test_zipf ]
