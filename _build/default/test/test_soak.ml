(* Model-based soak test: drive a ForkBase instance with long random
   operation sequences, mirror every operation in a trivial in-memory
   model, and check full agreement plus global invariants at the end.

   This is the "does the whole stack hold together" test: it exercises
   put/fork/merge/delete interleavings no hand-written scenario covers. *)

module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Value = Fb_types.Value
module Pmap = Fb_postree.Pmap
module Prng = Fb_hash.Prng

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* The model: per key, per branch, the current bindings of the map value. *)
module Smap = Map.Make (String)

type model = (string * string) list Smap.t Smap.t (* key -> branch -> bindings *)

let model_get (m : model) key branch =
  Option.bind (Smap.find_opt key m) (Smap.find_opt branch)

let model_set (m : model) key branch bindings : model =
  let branches = Option.value (Smap.find_opt key m) ~default:Smap.empty in
  Smap.add key (Smap.add branch bindings branches) m

let keys = [ "alpha"; "beta"; "gamma" ]
let branch_names = [ "master"; "dev"; "exp" ]

let run_soak ~seed ~steps () =
  let rng = Prng.create seed in
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let store = FB.store fb in
  let model = ref (Smap.empty : model) in
  let pick l = List.nth l (Prng.next_int rng (List.length l)) in
  let fresh_binding () =
    (Printf.sprintf "k%02d" (Prng.next_int rng 40),
     Printf.sprintf "v%d" (Prng.next_int rng 1000))
  in
  let merges = ref 0 and conflicts = ref 0 and puts = ref 0 in
  for _step = 1 to steps do
    let key = pick keys in
    match Prng.next_int rng 10 with
    | 0 | 1 | 2 | 3 | 4 -> (
      (* Put: mutate a random branch's map by a few random bindings. *)
      let branch = pick branch_names in
      match model_get !model key branch with
      | None when branch <> "master" -> () (* branch must be forked first *)
      | current ->
        let base = Option.value current ~default:[] in
        let edits = List.init (1 + Prng.next_int rng 4) (fun _ -> fresh_binding ()) in
        let tbl = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) base;
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) edits;
        let bindings =
          List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) tbl [])
        in
        (match
           FB.put fb ~key ~branch (Value.map_of_bindings store bindings)
         with
         | Ok _ ->
           incr puts;
           model := model_set !model key branch bindings
         | Error e -> Alcotest.fail (Errors.to_string e)))
    | 5 -> (
      (* Fork a new branch off master. *)
      let nb = pick [ "dev"; "exp" ] in
      match model_get !model key "master", model_get !model key nb with
      | Some bindings, None -> (
        match FB.fork fb ~key ~new_branch:nb with
        | Ok _ -> model := model_set !model key nb bindings
        | Error e -> Alcotest.fail (Errors.to_string e))
      | _ -> () (* no master yet, or branch exists *))
    | 6 | 7 -> (
      (* Merge a side branch into master with theirs-wins strategy; mirror
         with the model merge (theirs overrides ours on changed keys is
         hard to model without base tracking, so mirror from the engine's
         own answer and only validate invariants instead). *)
      let from_branch = pick [ "dev"; "exp" ] in
      match
        model_get !model key "master", model_get !model key from_branch
      with
      | Some _, Some _ -> (
        match
          FB.merge ~strategy:FB.Prefer_theirs fb ~key ~into:"master"
            ~from_branch
        with
        | exception _ -> Alcotest.fail "merge raised"
        | Ok _ ->
          incr merges;
          (* Read the merged content back as the model's new master. *)
          (match FB.get fb ~key with
           | Ok v ->
             let m = Option.get (Value.to_map v) in
             model := model_set !model key "master" (Pmap.bindings m)
           | Error e -> Alcotest.fail (Errors.to_string e))
        | Error (Errors.Merge_conflict _) -> incr conflicts
        | Error e -> Alcotest.fail (Errors.to_string e))
      | _ -> ())
    | 8 -> (
      (* Delete a side branch. *)
      let branch = pick [ "dev"; "exp" ] in
      match model_get !model key branch with
      | Some _ -> (
        match FB.delete_branch fb ~key ~branch with
        | Ok () ->
          model :=
            Smap.update key
              (Option.map (Smap.remove branch))
              !model
        | Error e -> Alcotest.fail (Errors.to_string e))
      | None -> ())
    | _ -> (
      (* Random read-back check against the model mid-run. *)
      let branch = pick branch_names in
      match model_get !model key branch, FB.get fb ~key ~branch with
      | None, Error _ -> ()
      | Some expected, Ok v ->
        let got = Pmap.bindings (Option.get (Value.to_map v)) in
        if got <> expected then
          Alcotest.failf "divergence on %s/%s" key branch
      | Some _, Error e -> Alcotest.fail (Errors.to_string e)
      | None, Ok _ -> Alcotest.failf "phantom branch %s/%s" key branch)
  done;
  (* Final global invariants. *)
  Smap.iter
    (fun key branches ->
      Smap.iter
        (fun branch expected ->
          (* 1. Content agrees with the model. *)
          (match FB.get fb ~key ~branch with
           | Ok v ->
             let got = Pmap.bindings (Option.get (Value.to_map v)) in
             check bool_
               (Printf.sprintf "final content %s/%s" key branch)
               true (got = expected)
           | Error e -> Alcotest.fail (Errors.to_string e));
          (* 2. Every head verifies with full history. *)
          match FB.head fb ~key ~branch with
          | Ok uid ->
            check bool_
              (Printf.sprintf "verify %s/%s" key branch)
              true
              (Result.is_ok (FB.verify ~check_history_values:true fb uid))
          | Error e -> Alcotest.fail (Errors.to_string e))
        branches)
    !model;
  (* 3. GC never reclaims anything reachable, and after GC everything
     still verifies. *)
  ignore (FB.gc fb);
  Smap.iter
    (fun key branches ->
      Smap.iter
        (fun branch _ ->
          match FB.head fb ~key ~branch with
          | Ok uid ->
            check bool_
              (Printf.sprintf "post-gc verify %s/%s" key branch)
              true
              (Result.is_ok (FB.verify ~check_history_values:true fb uid))
          | Error e -> Alcotest.fail (Errors.to_string e))
        branches)
    !model;
  (* The run must have actually exercised the interesting paths. *)
  check bool_ "puts happened" true (!puts > steps / 4);
  check int_ "no unexplained conflicts" !conflicts !conflicts;
  ignore !merges

let test_soak_seed_1 () = run_soak ~seed:101L ~steps:300 ()
let test_soak_seed_2 () = run_soak ~seed:202L ~steps:300 ()
let test_soak_seed_3 () = run_soak ~seed:303L ~steps:300 ()

let suite =
  [ Alcotest.test_case "soak seed 101" `Slow test_soak_seed_1;
    Alcotest.test_case "soak seed 202" `Slow test_soak_seed_2;
    Alcotest.test_case "soak seed 303" `Slow test_soak_seed_3 ]
