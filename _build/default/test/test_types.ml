(* Value model: primitives, CSV, schema, table, value descriptors. *)

module Primitive = Fb_types.Primitive
module Csv = Fb_types.Csv
module Schema = Fb_types.Schema
module Table = Fb_types.Table
module Value = Fb_types.Value
module Mem_store = Fb_chunk.Mem_store

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* ---------------- primitives ---------------- *)

let prim_roundtrip p =
  Fb_codec.Codec.of_string Primitive.decode
    (Fb_codec.Codec.to_string Primitive.encode p)
  = Ok p

let test_primitive_roundtrip () =
  List.iter
    (fun p -> check bool_ "roundtrip" true (prim_roundtrip p))
    [ Primitive.Null; Primitive.Bool true; Primitive.Bool false;
      Primitive.Int 0L; Primitive.Int Int64.min_int;
      Primitive.Int Int64.max_int; Primitive.Float 3.25;
      Primitive.Float (-0.0); Primitive.String ""; Primitive.String "héllo" ]

let test_primitive_parse () =
  check bool_ "null" true (Primitive.parse "" = Primitive.Null);
  check bool_ "true" true (Primitive.parse "true" = Primitive.Bool true);
  check bool_ "false" true (Primitive.parse "false" = Primitive.Bool false);
  check bool_ "int" true (Primitive.parse "42" = Primitive.Int 42L);
  check bool_ "negative int" true (Primitive.parse "-7" = Primitive.Int (-7L));
  check bool_ "float" true (Primitive.parse "2.5" = Primitive.Float 2.5);
  check bool_ "exp float" true (Primitive.parse "1e3" = Primitive.Float 1000.0);
  check bool_ "string" true (Primitive.parse "hello" = Primitive.String "hello");
  check bool_ "nan stays string" true
    (Primitive.parse "nan" = Primitive.String "nan");
  check bool_ "leading zero int ok" true (Primitive.parse "007" = Primitive.Int 7L)

let test_primitive_to_string_parse () =
  (* to_string then parse is the identity for cleanly-rendered values. *)
  List.iter
    (fun p ->
      check bool_ "print/parse" true (Primitive.parse (Primitive.to_string p) = p))
    [ Primitive.Null; Primitive.Bool true; Primitive.Int 123L;
      Primitive.Float 0.125; Primitive.String "word" ]

let test_primitive_compare () =
  check bool_ "int order" true
    (Primitive.compare (Primitive.Int 1L) (Primitive.Int 2L) < 0);
  check bool_ "cross-type stable" true
    (Primitive.compare Primitive.Null (Primitive.String "x") < 0);
  check bool_ "equal" true
    (Primitive.equal (Primitive.Float 1.5) (Primitive.Float 1.5))

(* ---------------- CSV ---------------- *)

let test_csv_simple () =
  check bool_ "basic" true
    (Csv.parse "a,b\n1,2\n" = Ok [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  check bool_ "no trailing newline" true
    (Csv.parse "a,b\n1,2" = Ok [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  check bool_ "crlf" true
    (Csv.parse "a,b\r\n1,2\r\n" = Ok [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  check bool_ "empty cells" true (Csv.parse ",\n" = Ok [ [ ""; "" ] ]);
  check bool_ "empty doc" true (Csv.parse "" = Ok [])

let test_csv_quoting () =
  check bool_ "quoted comma" true
    (Csv.parse "\"a,b\",c\n" = Ok [ [ "a,b"; "c" ] ]);
  check bool_ "escaped quote" true
    (Csv.parse "\"say \"\"hi\"\"\"\n" = Ok [ [ "say \"hi\"" ] ]);
  check bool_ "embedded newline" true
    (Csv.parse "\"line1\nline2\",x\n" = Ok [ [ "line1\nline2"; "x" ] ]);
  check bool_ "unterminated" true (Result.is_error (Csv.parse "\"oops"));
  check bool_ "stray quote" true (Result.is_error (Csv.parse "ab\"c\n"));
  check bool_ "garbage after quote" true (Result.is_error (Csv.parse "\"a\"b\n"))

let test_csv_render_roundtrip () =
  let rows =
    [ [ "id"; "name"; "notes" ];
      [ "1"; "has,comma"; "has \"quotes\"" ];
      [ "2"; "multi\nline"; "" ] ]
  in
  check bool_ "roundtrip" true (Csv.parse (Csv.render rows) = Ok rows);
  check string_ "render row" "a,\"b,c\"" (Csv.render_row [ "a"; "b,c" ])

(* ---------------- schema ---------------- *)

let col name ty = { Schema.name; ty }

let test_schema_validation () =
  check bool_ "ok" true (Result.is_ok (Schema.v [ col "id" Schema.T_int ]));
  check bool_ "empty" true (Result.is_error (Schema.v []));
  check bool_ "dup names" true
    (Result.is_error (Schema.v [ col "x" Schema.T_int; col "x" Schema.T_int ]));
  check bool_ "bad key idx" true
    (Result.is_error (Schema.v ~key_column:5 [ col "id" Schema.T_int ]))

let test_schema_roundtrip () =
  let s =
    Schema.v_exn ~key_column:1
      [ col "a" Schema.T_string; col "b" Schema.T_int; col "c" Schema.T_float;
        col "d" Schema.T_bool; col "e" Schema.T_any ]
  in
  let decoded =
    Fb_codec.Codec.of_string Schema.decode
      (Fb_codec.Codec.to_string Schema.encode s)
  in
  (match decoded with
   | Ok s' -> check bool_ "equal" true (Schema.equal s s')
   | Error e -> Alcotest.fail e);
  check string_ "key name" "b" (Schema.key_name s);
  check bool_ "column_index" true (Schema.column_index s "c" = Some 2);
  check bool_ "column_index missing" true (Schema.column_index s "zz" = None)

let test_schema_check_row () =
  let s = Schema.v_exn [ col "id" Schema.T_int; col "name" Schema.T_string ] in
  check bool_ "good row" true
    (Schema.check_row s [ Primitive.Int 1L; Primitive.String "x" ] = Ok ());
  check bool_ "null non-key ok" true
    (Schema.check_row s [ Primitive.Int 1L; Primitive.Null ] = Ok ());
  check bool_ "null key rejected" true
    (Result.is_error (Schema.check_row s [ Primitive.Null; Primitive.String "x" ]));
  check bool_ "wrong arity" true
    (Result.is_error (Schema.check_row s [ Primitive.Int 1L ]));
  check bool_ "wrong type" true
    (Result.is_error
       (Schema.check_row s [ Primitive.String "1"; Primitive.String "x" ]));
  (* Ints are acceptable in float columns. *)
  let sf = Schema.v_exn [ col "v" Schema.T_float ] in
  check bool_ "int in float col" true
    (Schema.check_row sf [ Primitive.Int 2L ] = Ok ())

let test_schema_infer () =
  let rows =
    [ [ Primitive.Int 1L; Primitive.String "a"; Primitive.Float 0.5 ];
      [ Primitive.Int 2L; Primitive.Null; Primitive.Int 3L ] ]
  in
  let s = Schema.infer ~header:[ "id"; "s"; "mix" ] rows in
  let tys = List.map (fun c -> c.Schema.ty) (s.Schema.columns :> Schema.column list) in
  check bool_ "types" true (tys = [ Schema.T_int; Schema.T_string; Schema.T_float ])

(* ---------------- table ---------------- *)

let sample_schema () =
  Schema.v_exn
    [ col "id" Schema.T_int; col "name" Schema.T_string; col "qty" Schema.T_int ]

let row id name qty =
  [ Primitive.Int (Int64.of_int id); Primitive.String name;
    Primitive.Int (Int64.of_int qty) ]

let test_table_crud () =
  let store = Mem_store.create () in
  let t = Table.create store (sample_schema ()) in
  check int_ "empty" 0 (Table.cardinal t);
  let t = Table.insert_exn t (row 1 "apple" 10) in
  let t = Table.insert_exn t (row 2 "banana" 20) in
  check int_ "two rows" 2 (Table.cardinal t);
  check bool_ "find" true (Table.find t "1" = Some (row 1 "apple" 10));
  check bool_ "mem" true (Table.mem t "2");
  (* Upsert. *)
  let t = Table.insert_exn t (row 1 "apple" 99) in
  check int_ "still two" 2 (Table.cardinal t);
  check bool_ "updated" true (Table.find t "1" = Some (row 1 "apple" 99));
  let t = Table.delete t "1" in
  check int_ "one left" 1 (Table.cardinal t);
  check bool_ "gone" true (Table.find t "1" = None);
  check bool_ "bad row rejected" true
    (Result.is_error (Table.insert t [ Primitive.Int 1L ]))

let test_table_select_project () =
  let store = Mem_store.create () in
  let t = Table.create store (sample_schema ()) in
  let t =
    List.fold_left Table.insert_exn t
      [ row 1 "apple" 10; row 2 "banana" 20; row 3 "cherry" 30 ]
  in
  let big =
    Table.select t (fun r ->
        match List.nth r 2 with Primitive.Int q -> q > 15L | _ -> false)
  in
  check int_ "select" 2 (List.length big);
  (match Table.project t [ "name" ] with
   | Ok cells ->
     check bool_ "project" true
       (cells
        = [ [ Primitive.String "apple" ]; [ Primitive.String "banana" ];
            [ Primitive.String "cherry" ] ])
   | Error e -> Alcotest.fail e);
  check bool_ "project missing col" true (Result.is_error (Table.project t [ "zz" ]))

let test_table_diff () =
  let store = Mem_store.create () in
  let t = Table.create store (sample_schema ()) in
  let t1 =
    List.fold_left Table.insert_exn t
      [ row 1 "apple" 10; row 2 "banana" 20; row 3 "cherry" 30 ]
  in
  let t2 = Table.insert_exn (Table.delete t1 "3") (row 2 "banana" 25) in
  let t2 = Table.insert_exn t2 (row 4 "durian" 5) in
  match Table.diff t1 t2 with
  | Error e -> Alcotest.fail e
  | Ok changes ->
    check int_ "changes" 3 (List.length changes);
    let modified =
      List.find_map
        (function Table.Row_modified (k, cs) -> Some (k, cs) | _ -> None)
        changes
    in
    (match modified with
     | Some ("2", [ c ]) ->
       check string_ "column" "qty" c.Table.column;
       check bool_ "before" true (c.Table.before = Primitive.Int 20L);
       check bool_ "after" true (c.Table.after = Primitive.Int 25L)
     | _ -> Alcotest.fail "expected row 2 with one cell change")

let test_table_diff_schema_mismatch () =
  let store = Mem_store.create () in
  let t1 = Table.create store (sample_schema ()) in
  let t2 =
    Table.create store (Schema.v_exn [ col "other" Schema.T_string ])
  in
  check bool_ "schemas differ" true (Result.is_error (Table.diff t1 t2))

let test_table_stat () =
  let store = Mem_store.create () in
  let t = Table.create store (sample_schema ()) in
  let t =
    List.fold_left Table.insert_exn t
      [ row 1 "apple" 10; row 2 "banana" 20;
        [ Primitive.Int 3L; Primitive.Null; Primitive.Int 10L ] ]
  in
  let stats = Table.stat t in
  check int_ "columns" 3 (List.length stats);
  let qty = List.nth stats 2 in
  check int_ "values" 3 qty.Table.values;
  check int_ "distinct" 2 qty.Table.distinct;
  check bool_ "min" true (qty.Table.min = Some (Primitive.Int 10L));
  check bool_ "max" true (qty.Table.max = Some (Primitive.Int 20L));
  let name = List.nth stats 1 in
  check int_ "nulls" 1 name.Table.nulls

let test_table_migrate () =
  let store = Mem_store.create () in
  let t = Table.create store (sample_schema ()) in
  let t =
    List.fold_left Table.insert_exn t [ row 1 "apple" 10; row 2 "banana" 20 ]
  in
  match
    Table.migrate t
      [ Table.Add_column ({ Schema.name = "origin"; ty = Schema.T_string },
                          Primitive.String "unknown");
        Table.Rename_column ("qty", "stock");
        Table.Drop_column ("name") ]
  with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    check bool_ "columns" true
      (Schema.column_names (Table.schema t') = [ "id"; "stock"; "origin" ]);
    check int_ "rows kept" 2 (Table.cardinal t');
    check bool_ "row contents" true
      (Table.find t' "1"
       = Some [ Primitive.Int 1L; Primitive.Int 10L; Primitive.String "unknown" ]);
    (* Errors. *)
    check bool_ "drop key" true
      (Result.is_error (Table.migrate t [ Table.Drop_column "id" ]));
    check bool_ "drop unknown" true
      (Result.is_error (Table.migrate t [ Table.Drop_column "zz" ]));
    check bool_ "add duplicate" true
      (Result.is_error
         (Table.migrate t
            [ Table.Add_column ({ Schema.name = "id"; ty = Schema.T_int },
                                Primitive.Int 0L) ]));
    check bool_ "bad default type" true
      (Result.is_error
         (Table.migrate t
            [ Table.Add_column ({ Schema.name = "n"; ty = Schema.T_int },
                                Primitive.String "not an int") ]));
    check bool_ "rename collision" true
      (Result.is_error
         (Table.migrate t [ Table.Rename_column ("name", "qty") ]));
    (* Renaming the key column keeps it the key. *)
    (match Table.migrate t [ Table.Rename_column ("id", "pk") ] with
     | Ok t'' ->
       check bool_ "key renamed" true
         (Schema.key_name (Table.schema t'') = "pk");
       check bool_ "rows intact" true (Table.find t'' "2" <> None)
     | Error e -> Alcotest.fail e)

let test_table_csv_roundtrip () =
  let store = Mem_store.create () in
  let csv = "id,name,qty\n1,apple,10\n2,banana,20\n3,cherry,30\n" in
  match Table.of_csv store csv with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check int_ "rows" 3 (Table.cardinal t);
    check string_ "roundtrip" csv (Table.to_csv t);
    (* Import of the export is stable. *)
    (match Table.of_csv store (Table.to_csv t) with
     | Ok t' ->
       check bool_ "stable root" true
         (Option.equal Fb_hash.Hash.equal (Table.rows_root t) (Table.rows_root t'))
     | Error e -> Alcotest.fail e)

let test_table_csv_errors () =
  let store = Mem_store.create () in
  check bool_ "empty" true (Result.is_error (Table.of_csv store ""));
  check bool_ "ragged row" true
    (Result.is_error (Table.of_csv store "a,b\n1\n"));
  check bool_ "bad csv" true (Result.is_error (Table.of_csv store "\"x\n"))

(* ---------------- value descriptors ---------------- *)

let test_value_descriptor_roundtrip () =
  let store = Mem_store.create () in
  let values =
    [ Value.string "hello"; Value.int 42; Value.bool true; Value.float 2.5;
      Value.Primitive Primitive.Null;
      Value.blob_of_string store (String.make 10_000 'b');
      Value.map_of_bindings store [ ("k1", "v1"); ("k2", "v2") ];
      Value.set_of_elements store [ "a"; "b" ];
      Value.list_of_strings store [ "x"; "y"; "z" ] ]
  in
  List.iter
    (fun v ->
      match Value.of_descriptor store (Value.descriptor v) with
      | Ok v' -> check bool_ (Value.type_name v) true (Value.equal v v')
      | Error e -> Alcotest.fail e)
    values

let test_value_table_descriptor () =
  let store = Mem_store.create () in
  match Table.of_csv store "id,v\n1,a\n2,b\n" with
  | Error e -> Alcotest.fail e
  | Ok t -> (
    let v = Value.Table t in
    match Value.of_descriptor store (Value.descriptor v) with
    | Ok (Value.Table t') ->
      check bool_ "schema kept" true
        (Schema.equal (Table.schema t) (Table.schema t'));
      check bool_ "rows kept" true (Table.to_rows t' = Table.to_rows t)
    | Ok _ -> Alcotest.fail "wrong kind"
    | Error e -> Alcotest.fail e)

let test_value_equality_is_content () =
  let store = Mem_store.create () in
  let m1 = Value.map_of_bindings store [ ("a", "1"); ("b", "2") ] in
  let m2 = Value.map_of_bindings store [ ("b", "2"); ("a", "1") ] in
  check bool_ "order-insensitive" true (Value.equal m1 m2);
  let m3 = Value.map_of_bindings store [ ("a", "1") ] in
  check bool_ "different content" false (Value.equal m1 m3)

let test_value_roots () =
  let store = Mem_store.create () in
  check bool_ "primitive no roots" true (Value.roots (Value.int 5) = []);
  let m = Value.map_of_bindings store [ ("a", "1") ] in
  check int_ "map one root" 1 (List.length (Value.roots m));
  check bool_ "descriptor roots agree" true
    (Value.roots_of_descriptor (Value.descriptor m) = Ok (Value.roots m));
  check bool_ "bad descriptor" true
    (Result.is_error (Value.roots_of_descriptor "\xff\xffgarbage"))

let qcheck_cases =
  let open QCheck in
  let cell = Gen.oneof [
    Gen.return Primitive.Null;
    Gen.map (fun b -> Primitive.Bool b) Gen.bool;
    Gen.map (fun i -> Primitive.Int (Int64.of_int i)) Gen.int;
    Gen.map (fun s -> Primitive.String s) (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 10));
  ] in
  [ Test.make ~name:"primitive codec roundtrip" ~count:300 (make cell)
      prim_roundtrip;
    Test.make ~name:"csv render/parse roundtrip" ~count:100
      (list_of_size (Gen.int_range 1 10)
         (list_of_size (Gen.int_range 1 6)
            (string_gen_of_size (Gen.int_range 0 12) Gen.char)))
      (fun rows ->
        (* Rows of equal nonzero arity roundtrip exactly. *)
        Csv.parse (Csv.render rows) = Ok rows)
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "primitive roundtrip" `Quick test_primitive_roundtrip;
      Alcotest.test_case "primitive parse" `Quick test_primitive_parse;
      Alcotest.test_case "primitive print/parse" `Quick
        test_primitive_to_string_parse;
      Alcotest.test_case "primitive compare" `Quick test_primitive_compare;
      Alcotest.test_case "csv simple" `Quick test_csv_simple;
      Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
      Alcotest.test_case "csv render roundtrip" `Quick
        test_csv_render_roundtrip;
      Alcotest.test_case "schema validation" `Quick test_schema_validation;
      Alcotest.test_case "schema roundtrip" `Quick test_schema_roundtrip;
      Alcotest.test_case "schema check_row" `Quick test_schema_check_row;
      Alcotest.test_case "schema infer" `Quick test_schema_infer;
      Alcotest.test_case "table crud" `Quick test_table_crud;
      Alcotest.test_case "table select/project" `Quick
        test_table_select_project;
      Alcotest.test_case "table diff" `Quick test_table_diff;
      Alcotest.test_case "table diff schema mismatch" `Quick
        test_table_diff_schema_mismatch;
      Alcotest.test_case "table stat" `Quick test_table_stat;
      Alcotest.test_case "table migrate" `Quick test_table_migrate;
      Alcotest.test_case "table csv roundtrip" `Quick test_table_csv_roundtrip;
      Alcotest.test_case "table csv errors" `Quick test_table_csv_errors;
      Alcotest.test_case "value descriptor roundtrip" `Quick
        test_value_descriptor_roundtrip;
      Alcotest.test_case "value table descriptor" `Quick
        test_value_table_descriptor;
      Alcotest.test_case "value content equality" `Quick
        test_value_equality_is_content;
      Alcotest.test_case "value roots" `Quick test_value_roots ]
