(* Edge cases across layers: oversized entries, binary keys, degenerate
   trees, hostile identifiers. *)

module Pmap = Fb_postree.Pmap
module Pblob = Fb_postree.Pblob
module Mem_store = Fb_chunk.Mem_store
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Value = Fb_types.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let test_oversized_entries () =
  (* Entries far larger than the node size cap: each gets a node of its
     own, the size cap fires, the tree stays valid and invariant. *)
  let store = Mem_store.create () in
  let big i = (Printf.sprintf "big-%02d" i, String.make 100_000 (Char.chr (65 + i))) in
  let bs = List.init 8 big in
  let t = Pmap.of_bindings store bs in
  check int_ "cardinal" 8 (Pmap.cardinal t);
  check bool_ "validate" true (Pmap.validate t = Ok ());
  check bool_ "find big" true
    (Pmap.find_value t "big-03" = Some (String.make 100_000 'D'));
  (* Incremental build produces the identical tree. *)
  let t2 = List.fold_left (fun t (k, v) -> Pmap.put t k v) (Pmap.empty store) (List.rev bs) in
  check bool_ "invariance with oversize" true
    (Option.equal Hash.equal (Pmap.root t) (Pmap.root t2))

let test_binary_keys_and_values () =
  let store = Mem_store.create () in
  let nasty =
    [ ("\x00", "nul key"); ("\x00\x01\x02", "low bytes");
      ("\xff\xfe", "high bytes"); ("key with spaces", "v");
      ("ключ", "cyrillic"); ("\"quoted\"", "v2"); ("new\nline", "v3") ]
  in
  let t = Pmap.of_bindings store nasty in
  List.iter
    (fun (k, v) ->
      check bool_ ("find " ^ Fb_hash.Hex.encode k) true
        (Pmap.find_value t k = Some v))
    nasty;
  check bool_ "validate" true (Pmap.validate t = Ok ());
  (* Proofs work for binary keys too. *)
  let root = Option.get (Pmap.root t) in
  let proof = Result.get_ok (Pmap.prove t "\x00") in
  check bool_ "binary key proof" true
    (match Pmap.verify_proof ~root "\x00" proof with
     | Ok (Some e) -> e.Pmap.value = "nul key"
     | _ -> false)

let test_hostile_forkbase_identifiers () =
  let fb = FB.create (Mem_store.create ()) in
  (* Keys and branch names are arbitrary strings — the engine must not
     choke on separators, blanks or unicode. *)
  List.iter
    (fun key ->
      ignore (ok (FB.put fb ~key (Value.string "v")));
      check bool_ ("read back " ^ Fb_hash.Hex.encode key) true
        (Result.is_ok (FB.get fb ~key)))
    [ ""; " "; "a/b/c"; "ключ-данных"; "key\twith\ttabs"; String.make 1000 'k' ];
  ignore (ok (FB.fork fb ~key:"a/b/c" ~new_branch:"feature/x y"));
  check bool_ "weird branch" true
    (Result.is_ok (FB.get fb ~key:"a/b/c" ~branch:"feature/x y"))

let test_single_and_empty_degenerates () =
  let store = Mem_store.create () in
  (* Blob of one byte; list of one element; map of one entry — all valid,
     all proofs/diffs behave. *)
  let b = Pblob.of_string store "x" in
  check bool_ "tiny blob" true (Pblob.to_string b = "x" && Pblob.validate b = Ok ());
  let t = Pmap.of_bindings store [ ("k", "") ] in
  check bool_ "empty value" true (Pmap.find_value t "k" = Some "");
  check bool_ "diff to empty" true
    (List.length (Pmap.diff t (Pmap.empty store)) = 1);
  (* Put of an empty-string key round-trips through a whole version. *)
  let fb = FB.create store in
  ignore (ok (FB.put fb ~key:"m" (Value.Map t)));
  check bool_ "verify tiny" true
    (Result.is_ok (FB.verify fb (ok (FB.head fb ~key:"m"))))

let test_sharded_replicas_exceed_members () =
  let members = [ ("only", Mem_store.create ()) ] in
  let cluster = Fb_chunk.Sharded_store.create ~replicas:5 ~members () in
  let store = Fb_chunk.Sharded_store.store cluster in
  let id = Store.put store (Fb_chunk.Chunk.v Fb_chunk.Chunk.Leaf_blob "x") in
  (* Replicas capped at member count: one copy, still readable. *)
  check bool_ "readable" true (Store.get store id <> None);
  check int_ "one owner" 1
    (List.length (Fb_chunk.Sharded_store.owners cluster id))

let test_store_stats_consistency_after_mixed_ops () =
  let store = Mem_store.create () in
  let t = ref (Pmap.empty store) in
  for i = 0 to 200 do
    t := Pmap.put !t (Printf.sprintf "%03d" i) "v"
  done;
  for i = 0 to 99 do
    t := Pmap.remove !t (Printf.sprintf "%03d" (2 * i))
  done;
  let s = Store.stats store in
  check bool_ "stats sane" true
    (s.Store.physical_chunks > 0
     && s.Store.physical_bytes > 0
     && s.Store.logical_bytes >= s.Store.physical_bytes
     && s.Store.puts = s.Store.dedup_hits + s.Store.physical_chunks);
  check int_ "content" 101 (Pmap.cardinal !t)

let test_csv_injection_resistance () =
  (* Cells that look like CSV structure survive a full import/export/import
     cycle byte-for-byte. *)
  let fb = FB.create (Mem_store.create ()) in
  let csv =
    "id,payload\n1,\"a,b\"\n2,\"line\nbreak\"\n3,\"quote\"\"inside\"\n"
  in
  ignore (ok (FB.import_csv fb ~key:"t" csv));
  let exported = ok (FB.export_csv fb ~key:"t") in
  ignore (ok (FB.import_csv fb ~key:"t2" exported));
  check bool_ "same content" true
    (ok (FB.export_csv fb ~key:"t2") = exported);
  check bool_ "cells intact" true (Tutil.contains exported "quote\"\"inside")

let suite =
  [ Alcotest.test_case "oversized entries" `Quick test_oversized_entries;
    Alcotest.test_case "binary keys and values" `Quick
      test_binary_keys_and_values;
    Alcotest.test_case "hostile identifiers" `Quick
      test_hostile_forkbase_identifiers;
    Alcotest.test_case "degenerate sizes" `Quick
      test_single_and_empty_degenerates;
    Alcotest.test_case "replicas exceed members" `Quick
      test_sharded_replicas_exceed_members;
    Alcotest.test_case "stats consistency" `Quick
      test_store_stats_consistency_after_mixed_ops;
    Alcotest.test_case "csv structure in cells" `Quick
      test_csv_injection_resistance ]
