(* Sharded/replicated chunk store: placement, failover, read repair,
   corruption handling, and a full ForkBase instance running on top. *)

module Sharded = Fb_chunk.Sharded_store
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Value = Fb_types.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let mk_cluster ?(n = 4) ?(replicas = 2) () =
  let members =
    List.init n (fun i ->
        let name = Printf.sprintf "node%d" i in
        let store, handle = Mem_store.create_with_handle () in
        ((name, store), handle))
  in
  let cluster =
    Sharded.create ~replicas ~members:(List.map fst members) ()
  in
  (cluster, Sharded.store cluster, List.map snd members)

let blob i = Chunk.v Chunk.Leaf_blob (Printf.sprintf "chunk number %d" i)

let test_placement_and_replication () =
  let cluster, store, _ = mk_cluster () in
  let ids = List.init 200 (fun i -> Store.put store (blob i)) in
  (* Every chunk is on exactly its 2 owners. *)
  List.iter
    (fun id ->
      let owners = Sharded.owners cluster id in
      check int_ "two owners" 2 (List.length owners);
      check bool_ "readable" true (Store.mem store id))
    ids;
  (* Placement is reasonably balanced: each member holds some chunks, and
     total copies = 2x chunks. *)
  let h = Sharded.health cluster in
  let total = List.fold_left (fun a m -> a + m.Sharded.chunks) 0 h in
  check int_ "replication factor" (2 * 200) total;
  List.iter
    (fun m -> check bool_ (m.Sharded.member ^ " nonempty") true (m.Sharded.chunks > 0))
    h

let test_owner_determinism () =
  let cluster, store, _ = mk_cluster () in
  let id = Store.put store (blob 1) in
  check bool_ "stable owners" true
    (Sharded.owners cluster id = Sharded.owners cluster id)

let test_failover_read () =
  let cluster, store, _ = mk_cluster () in
  let id = Store.put store (blob 7) in
  (* Kill the primary: reads fail over to the replica. *)
  let primary = List.hd (Sharded.owners cluster id) in
  Sharded.set_down cluster primary true;
  check bool_ "still readable" true (Store.get store id <> None);
  check bool_ "fallback counted" true
    ((Sharded.repair_stats cluster).Sharded.fallback_reads >= 1);
  (* Kill both owners: the chunk is gone until one returns. *)
  let secondary = List.nth (Sharded.owners cluster id) 1 in
  Sharded.set_down cluster secondary true;
  check bool_ "both down -> miss" true (Store.get store id = None);
  Sharded.set_down cluster primary false;
  check bool_ "back up -> hit" true (Store.get store id <> None)

let test_write_with_down_member_then_rebalance () =
  let cluster, store, _ = mk_cluster () in
  (* Write 100 chunks with one member down. *)
  Sharded.set_down cluster "node1" true;
  let ids = List.init 100 (fun i -> Store.put store (blob (1000 + i))) in
  List.iter
    (fun id -> check bool_ "written and readable" true (Store.mem store id))
    ids;
  (* Bring it back; rebalance restores full replication. *)
  Sharded.set_down cluster "node1" false;
  let copies = Sharded.rebalance cluster in
  check bool_ "rebalance copied" true (copies > 0);
  let h = Sharded.health cluster in
  let total = List.fold_left (fun a m -> a + m.Sharded.chunks) 0 h in
  check int_ "full replication restored" (2 * 100) total

let test_corrupt_replica_repair () =
  let cluster, store, handles = mk_cluster () in
  let id = Store.put store (blob 42) in
  (* Corrupt the copy on every member that holds it (malicious node). *)
  let corrupted =
    List.exists
      (fun handle -> Fb_chunk.Mem_store.tamper handle id ~f:(fun s -> s ^ "!"))
      [ List.hd handles ]
  in
  ignore corrupted;
  (* The read must never return corrupt bytes: either the good replica
     serves it, or (if we hit the bad one first) it is rejected, dropped
     and the fallback answers. *)
  (match Store.get store id with
   | Some c -> check bool_ "payload intact" true (Chunk.hash c = id)
   | None -> Alcotest.fail "lost despite a good replica");
  let stats = Sharded.repair_stats cluster in
  check bool_ "no corrupt bytes served" true
    (stats.Sharded.rejected >= 0 (* may be 0 if good owner answered first *))

let test_forkbase_on_cluster () =
  (* The whole engine runs unmodified on the sharded store. *)
  let cluster, store, _ = mk_cluster ~n:5 ~replicas:3 () in
  let fb = FB.create store in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail (Fb_core.Errors.to_string e)
  in
  ignore (ok (FB.import_csv fb ~key:"ds" "id,v\n1,a\n2,b\n3,c\n"));
  ignore (ok (FB.fork fb ~key:"ds" ~new_branch:"dev"));
  ignore (ok (FB.import_csv fb ~key:"ds" ~branch:"dev" "id,v\n1,a\n2,B\n3,c\n"));
  ignore (ok (FB.merge fb ~key:"ds" ~into:"master" ~from_branch:"dev"));
  let tip = ok (FB.head fb ~key:"ds") in
  check bool_ "verifies on cluster" true
    (Result.is_ok (FB.verify ~check_history_values:true fb tip));
  (* Lose any two nodes: with replicas=3 everything survives. *)
  Sharded.set_down cluster "node0" true;
  Sharded.set_down cluster "node3" true;
  check bool_ "verifies with 2 nodes down" true
    (Result.is_ok (FB.verify ~check_history_values:true fb tip));
  check bool_ "still queryable" true
    (Result.is_ok (FB.export_csv fb ~key:"ds"))

let test_parameter_validation () =
  Alcotest.check_raises "no members"
    (Invalid_argument "Sharded_store.create: no members") (fun () ->
      ignore (Sharded.create ~members:[] ()));
  let cluster, _, _ = mk_cluster () in
  Alcotest.check_raises "unknown member"
    (Invalid_argument "Sharded_store.set_down: unknown member ghost")
    (fun () -> Sharded.set_down cluster "ghost" true)

let suite =
  [ Alcotest.test_case "placement and replication" `Quick
      test_placement_and_replication;
    Alcotest.test_case "owner determinism" `Quick test_owner_determinism;
    Alcotest.test_case "failover read" `Quick test_failover_read;
    Alcotest.test_case "write around failure + rebalance" `Quick
      test_write_with_down_member_then_rebalance;
    Alcotest.test_case "corrupt replica repair" `Quick
      test_corrupt_replica_repair;
    Alcotest.test_case "forkbase on cluster" `Quick test_forkbase_on_cluster;
    Alcotest.test_case "parameter validation" `Quick
      test_parameter_validation ]
