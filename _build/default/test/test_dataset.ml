(* Dataset layer: row-level operations committing tamper-evident versions. *)

module FB = Fb_core.Forkbase
module Dataset = Fb_core.Dataset
module Errors = Fb_core.Errors
module Schema = Fb_types.Schema
module Primitive = Fb_types.Primitive
module Store = Fb_chunk.Store

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let col name ty = { Schema.name; ty }

let sample_schema () =
  Schema.v_exn
    [ col "id" Schema.T_int; col "name" Schema.T_string;
      col "qty" Schema.T_int ]

let row id name qty =
  [ Primitive.Int (Int64.of_int id); Primitive.String name;
    Primitive.Int (Int64.of_int qty) ]

let fresh_with_dataset () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (Dataset.create fb ~key:"inv" (sample_schema ())));
  ignore
    (ok
       (Dataset.insert_rows fb ~key:"inv"
          [ row 1 "apple" 10; row 2 "banana" 20; row 3 "cherry" 30 ]));
  fb

let test_create_and_insert () =
  let fb = fresh_with_dataset () in
  check int_ "rows" 3 (ok (Dataset.row_count fb ~key:"inv"));
  check bool_ "get_row" true
    (ok (Dataset.get_row fb ~key:"inv" ~row:"2") = Some (row 2 "banana" 20));
  check bool_ "schema" true
    (Schema.equal (ok (Dataset.schema fb ~key:"inv")) (sample_schema ()));
  (* Each operation was a version. *)
  check int_ "two versions" 2 (List.length (ok (FB.log fb ~key:"inv")))

let test_delete_rows () =
  let fb = fresh_with_dataset () in
  ignore (ok (Dataset.delete_rows fb ~key:"inv" [ "1"; "nope" ]));
  check int_ "rows" 2 (ok (Dataset.row_count fb ~key:"inv"));
  check bool_ "gone" true (ok (Dataset.get_row fb ~key:"inv" ~row:"1") = None)

let test_update_cell () =
  let fb = fresh_with_dataset () in
  ignore
    (ok
       (Dataset.update_cell fb ~key:"inv" ~row:"2" ~column:"qty"
          (Primitive.Int 99L)));
  check bool_ "updated" true
    (ok (Dataset.get_row fb ~key:"inv" ~row:"2") = Some (row 2 "banana" 99));
  check int_ "count unchanged" 3 (ok (Dataset.row_count fb ~key:"inv"));
  (* Bad column / row / type. *)
  check bool_ "bad column" true
    (Result.is_error
       (Dataset.update_cell fb ~key:"inv" ~row:"2" ~column:"zz"
          (Primitive.Int 1L)));
  check bool_ "bad row" true
    (Result.is_error
       (Dataset.update_cell fb ~key:"inv" ~row:"9" ~column:"qty"
          (Primitive.Int 1L)));
  check bool_ "bad type" true
    (Result.is_error
       (Dataset.update_cell fb ~key:"inv" ~row:"2" ~column:"qty"
          (Primitive.String "lots")))

let test_update_key_cell_moves_row () =
  let fb = fresh_with_dataset () in
  ignore
    (ok
       (Dataset.update_cell fb ~key:"inv" ~row:"3" ~column:"id"
          (Primitive.Int 7L)));
  check int_ "no duplicate" 3 (ok (Dataset.row_count fb ~key:"inv"));
  check bool_ "old gone" true (ok (Dataset.get_row fb ~key:"inv" ~row:"3") = None);
  check bool_ "new present" true
    (ok (Dataset.get_row fb ~key:"inv" ~row:"7") = Some (row 7 "cherry" 30))

let test_row_edits_are_page_local () =
  (* The point of datasets-on-POS-Trees: editing one row of a large table
     stores only a few fresh chunks, not a new table. *)
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (Dataset.create fb ~key:"big" (sample_schema ())));
  ignore
    (ok
       (Dataset.insert_rows fb ~key:"big"
          (List.init 20_000 (fun i -> row i "bulk" i))));
  let before = (FB.stats fb).FB.store.Store.physical_chunks in
  ignore
    (ok
       (Dataset.update_cell fb ~key:"big" ~row:"10000" ~column:"qty"
          (Primitive.Int 0L)));
  let fresh = (FB.stats fb).FB.store.Store.physical_chunks - before in
  check bool_ (Printf.sprintf "fresh chunks %d <= 15" fresh) true (fresh <= 15)

let test_dataset_type_mismatch () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (FB.put fb ~key:"s" (Fb_types.Value.string "not a table")));
  match Dataset.row_count fb ~key:"s" with
  | Error (Errors.Type_mismatch _) -> ()
  | _ -> Alcotest.fail "expected type mismatch"

let test_dataset_branches () =
  let fb = fresh_with_dataset () in
  ignore (ok (FB.fork fb ~key:"inv" ~new_branch:"audit"));
  ignore
    (ok
       (Dataset.update_cell fb ~key:"inv" ~branch:"audit" ~row:"1"
          ~column:"qty" (Primitive.Int 0L)));
  (* Master untouched. *)
  check bool_ "master isolated" true
    (ok (Dataset.get_row fb ~key:"inv" ~row:"1") = Some (row 1 "apple" 10));
  check bool_ "audit changed" true
    (ok (Dataset.get_row fb ~key:"inv" ~branch:"audit" ~row:"1")
     = Some (row 1 "apple" 0))

let suite =
  [ Alcotest.test_case "create and insert" `Quick test_create_and_insert;
    Alcotest.test_case "delete rows" `Quick test_delete_rows;
    Alcotest.test_case "update cell" `Quick test_update_cell;
    Alcotest.test_case "update key cell moves row" `Quick
      test_update_key_cell_moves_row;
    Alcotest.test_case "row edits are page-local" `Slow
      test_row_edits_are_page_local;
    Alcotest.test_case "type mismatch" `Quick test_dataset_type_mismatch;
    Alcotest.test_case "branch isolation" `Quick test_dataset_branches ]
