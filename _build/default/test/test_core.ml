(* Public ForkBase API: put/get/branch/merge/diff/verify, ACL enforcement,
   diff views, stats and GC. *)

module FB = Fb_core.Forkbase
module Acl = Fb_core.Acl
module Errors = Fb_core.Errors
module Diffview = Fb_core.Diffview
module Value = Fb_types.Value
module Primitive = Fb_types.Primitive
module Mem_store = Fb_chunk.Mem_store
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let is_err = function Ok _ -> false | Error _ -> true

let fresh () = FB.create (Mem_store.create ())

(* ---------------- put / get / head / meta ---------------- *)

let test_put_get () =
  let fb = fresh () in
  let u = ok (FB.put fb ~key:"greeting" (Value.string "hello")) in
  (match ok (FB.get fb ~key:"greeting") with
   | Value.Primitive (Primitive.String s) -> check string_ "value" "hello" s
   | _ -> Alcotest.fail "wrong value");
  check bool_ "head" true (Hash.equal (ok (FB.head fb ~key:"greeting")) u);
  check bool_ "missing key" true (is_err (FB.get fb ~key:"nope"));
  check bool_ "missing branch" true
    (is_err (FB.get fb ~branch:"dev" ~key:"greeting"))

let test_versions_accumulate () =
  let fb = fresh () in
  let u1 = ok (FB.put fb ~key:"k" (Value.string "v1")) in
  let u2 = ok (FB.put fb ~key:"k" (Value.string "v2")) in
  check bool_ "distinct" false (Hash.equal u1 u2);
  (* Head moved, but the old version remains reachable by uid. *)
  (match ok (FB.get_at fb u1) with
   | Value.Primitive (Primitive.String s) -> check string_ "old" "v1" s
   | _ -> Alcotest.fail "wrong");
  let log = ok (FB.log fb ~key:"k") in
  check int_ "log" 2 (List.length log);
  let meta = ok (FB.meta fb u2) in
  check bool_ "bases link" true
    (meta.Fb_repr.Fnode.bases = [ u1 ]);
  check int_ "seq" 2 meta.Fb_repr.Fnode.seq

let test_idempotent_put_dedups () =
  let fb = fresh () in
  let u1 = ok (FB.put fb ~key:"k" ~message:"same" (Value.string "v")) in
  (* Identical value and message on top of the same base: the FNode differs
     (different bases), so a new version appears — but value chunks dedup
     wholesale. *)
  let before = (FB.stats fb).FB.store.Store.physical_bytes in
  let u2 = ok (FB.put fb ~key:"k" ~message:"same" (Value.string "v")) in
  check bool_ "new version" false (Hash.equal u1 u2);
  let added = (FB.stats fb).FB.store.Store.physical_bytes - before in
  (* Only the new FNode's bytes. *)
  check bool_ (Printf.sprintf "added %d < 200" added) true (added < 200)

let test_latest_and_list () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"a" (Value.int 1)));
  ignore (ok (FB.put fb ~key:"b" (Value.int 2)));
  ignore (ok (FB.fork fb ~key:"a" ~new_branch:"dev"));
  check bool_ "keys" true (FB.list_keys fb = [ "a"; "b" ]);
  let heads = ok (FB.latest fb ~key:"a") in
  check int_ "two branches" 2 (List.length heads);
  check bool_ "names" true (List.map fst heads = [ "dev"; "master" ])

(* ---------------- branching ---------------- *)

let test_fork_shares_everything () =
  let fb = fresh () in
  let bindings = List.init 5000 (fun i -> (Printf.sprintf "%06d" i, "data")) in
  ignore
    (ok (FB.put fb ~key:"m" (Value.map_of_bindings (FB.store fb) bindings)));
  let before = (FB.stats fb).FB.store.Store.physical_bytes in
  let u = ok (FB.fork fb ~key:"m" ~new_branch:"copy") in
  check bool_ "O(1) fork" true
    ((FB.stats fb).FB.store.Store.physical_bytes = before);
  check bool_ "same head" true (Hash.equal u (ok (FB.head fb ~key:"m")));
  check bool_ "double fork fails" true
    (is_err (FB.fork fb ~key:"m" ~new_branch:"copy"))

let test_fork_at_historical () =
  let fb = fresh () in
  let u1 = ok (FB.put fb ~key:"k" (Value.string "old")) in
  ignore (ok (FB.put fb ~key:"k" (Value.string "new")));
  ignore (ok (FB.fork_at fb ~key:"k" ~new_branch:"retro" u1));
  (match ok (FB.get fb ~branch:"retro" ~key:"k") with
   | Value.Primitive (Primitive.String s) -> check string_ "old value" "old" s
   | _ -> Alcotest.fail "wrong");
  (* Key mismatch rejected. *)
  let w = ok (FB.put fb ~key:"other" (Value.string "x")) in
  check bool_ "wrong key" true
    (is_err (FB.fork_at fb ~key:"k" ~new_branch:"bad" w))

let test_rename_delete_branch () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"k" (Value.int 1)));
  ignore (ok (FB.fork fb ~key:"k" ~new_branch:"tmp"));
  ok (FB.rename_branch fb ~key:"k" ~from_branch:"tmp" ~to_branch:"kept");
  check bool_ "renamed readable" true (Result.is_ok (FB.get fb ~branch:"kept" ~key:"k"));
  ok (FB.delete_branch fb ~key:"k" ~branch:"kept");
  check bool_ "deleted" true (is_err (FB.get fb ~branch:"kept" ~key:"k"));
  check bool_ "delete missing" true
    (is_err (FB.delete_branch fb ~key:"k" ~branch:"kept"))

(* ---------------- diff / merge ---------------- *)

let test_diff_branches_table () =
  let fb = fresh () in
  let csv = "id,name,qty\n1,apple,10\n2,banana,20\n3,cherry,30\n" in
  ignore (ok (FB.import_csv fb ~key:"ds" csv));
  ignore (ok (FB.fork fb ~key:"ds" ~new_branch:"vendorX"));
  let csv2 = "id,name,qty\n1,apple,10\n2,banana,25\n3,cherry,30\n4,durian,5\n" in
  ignore (ok (FB.import_csv fb ~key:"ds" ~branch:"vendorX" csv2));
  let d = ok (FB.diff fb ~key:"ds" ~branch1:"master" ~branch2:"vendorX") in
  check bool_ "not same" false (Diffview.is_same d);
  check string_ "summary" "1 rows added, 0 removed, 1 modified (1 cells)"
    (Diffview.summary d);
  (* Same branch diff is empty. *)
  let d0 = ok (FB.diff fb ~key:"ds" ~branch1:"master" ~branch2:"master") in
  check bool_ "self same" true (Diffview.is_same d0)

let test_merge_divergent_tables () =
  let fb = fresh () in
  let csv = "id,name,qty\n1,apple,10\n2,banana,20\n3,cherry,30\n" in
  ignore (ok (FB.import_csv fb ~key:"ds" csv));
  ignore (ok (FB.fork fb ~key:"ds" ~new_branch:"b"));
  (* Divergent, disjoint edits. *)
  ignore
    (ok
       (FB.import_csv fb ~key:"ds"
          "id,name,qty\n1,apple,11\n2,banana,20\n3,cherry,30\n"));
  ignore
    (ok
       (FB.import_csv fb ~key:"ds" ~branch:"b"
          "id,name,qty\n1,apple,10\n2,banana,20\n3,cherry,33\n"));
  let m = ok (FB.merge fb ~key:"ds" ~into:"master" ~from_branch:"b") in
  let rows = ok (FB.select fb ~key:"ds" (fun _ -> true)) in
  check int_ "rows" 3 (List.length rows);
  let qty id =
    match
      List.find
        (fun r -> List.hd r = Primitive.Int (Int64.of_int id))
        rows
    with
    | [ _; _; Primitive.Int q ] -> Int64.to_int q
    | _ -> -1
  in
  check int_ "ours kept" 11 (qty 1);
  check int_ "theirs merged" 33 (qty 3);
  (* Merge version has two bases. *)
  let meta = ok (FB.meta fb m) in
  check int_ "two bases" 2 (List.length meta.Fb_repr.Fnode.bases)

let test_merge_fast_forward () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"k" (Value.string "base")));
  ignore (ok (FB.fork fb ~key:"k" ~new_branch:"dev"));
  let u = ok (FB.put fb ~key:"k" ~branch:"dev" (Value.string "ahead")) in
  let m = ok (FB.merge fb ~key:"k" ~into:"master" ~from_branch:"dev") in
  check bool_ "fast forward" true (Hash.equal m u);
  (* Merging an ancestor into a descendant is a no-op. *)
  let m2 = ok (FB.merge fb ~key:"k" ~into:"master" ~from_branch:"dev") in
  check bool_ "no-op" true (Hash.equal m2 u)

let test_merge_conflict_and_strategies () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"k" (Value.string "base")));
  ignore (ok (FB.fork fb ~key:"k" ~new_branch:"dev"));
  ignore (ok (FB.put fb ~key:"k" (Value.string "ours")));
  ignore (ok (FB.put fb ~key:"k" ~branch:"dev" (Value.string "theirs")));
  (match FB.merge fb ~key:"k" ~into:"master" ~from_branch:"dev" with
   | Error (Errors.Merge_conflict _) -> ()
   | Error e -> Alcotest.fail (Errors.to_string e)
   | Ok _ -> Alcotest.fail "expected conflict");
  ignore
    (ok
       (FB.merge ~strategy:FB.Prefer_theirs fb ~key:"k" ~into:"master"
          ~from_branch:"dev"));
  match ok (FB.get fb ~key:"k") with
  | Value.Primitive (Primitive.String s) -> check string_ "theirs won" "theirs" s
  | _ -> Alcotest.fail "wrong"

let test_merge_map_conflict_detail () =
  let fb = fresh () in
  let store = FB.store fb in
  ignore (ok (FB.put fb ~key:"m" (Value.map_of_bindings store [ ("a", "0") ])));
  ignore (ok (FB.fork fb ~key:"m" ~new_branch:"dev"));
  ignore (ok (FB.put fb ~key:"m" (Value.map_of_bindings store [ ("a", "1") ])));
  ignore
    (ok (FB.put fb ~key:"m" ~branch:"dev" (Value.map_of_bindings store [ ("a", "2") ])));
  match FB.merge fb ~key:"m" ~into:"master" ~from_branch:"dev" with
  | Error (Errors.Merge_conflict { details; _ }) ->
    check bool_ "entry named" true
      (List.exists (fun d -> d = "entry \"a\"") details)
  | _ -> Alcotest.fail "expected conflict"

let test_merge_lists_disjoint () =
  let fb = fresh () in
  let store = FB.store fb in
  let items = List.init 100 (Printf.sprintf "item-%03d") in
  ignore (ok (FB.put fb ~key:"l" (Value.list_of_strings store items)));
  ignore (ok (FB.fork fb ~key:"l" ~new_branch:"dev"));
  (* Ours edits the front, theirs the back: disjoint ranges. *)
  let edit branch pos v =
    let l =
      Option.get (Value.to_list (ok (FB.get fb ~branch ~key:"l")))
    in
    ignore
      (ok (FB.put fb ~branch ~key:"l"
             (Value.List (Fb_postree.Plist.set l pos v))))
  in
  edit "master" 5 "OURS";
  edit "dev" 90 "THEIRS";
  ignore (ok (FB.merge fb ~key:"l" ~into:"master" ~from_branch:"dev"));
  let merged = Option.get (Value.to_list (ok (FB.get fb ~key:"l"))) in
  check bool_ "ours kept" true (Fb_postree.Plist.get merged 5 = Some "OURS");
  check bool_ "theirs applied" true
    (Fb_postree.Plist.get merged 90 = Some "THEIRS");
  check int_ "length" 100 (Fb_postree.Plist.length merged);
  (* Overlapping edits conflict. *)
  edit "master" 50 "A";
  edit "dev" 50 "B";
  match FB.merge fb ~key:"l" ~into:"master" ~from_branch:"dev" with
  | Error (Errors.Merge_conflict _) -> ()
  | _ -> Alcotest.fail "overlapping list edits must conflict"

let test_merge_blobs_disjoint () =
  let fb = fresh () in
  let store = FB.store fb in
  let text = String.concat "" (List.init 2000 (Printf.sprintf "line-%04d\n")) in
  ignore (ok (FB.put fb ~key:"doc" (Value.blob_of_string store text)));
  ignore (ok (FB.fork fb ~key:"doc" ~new_branch:"dev"));
  let splice branch pos remove insert =
    let b = Option.get (Value.to_blob (ok (FB.get fb ~branch ~key:"doc"))) in
    ignore
      (ok (FB.put fb ~branch ~key:"doc"
             (Value.Blob (Fb_postree.Pblob.splice b ~pos ~remove ~insert))))
  in
  splice "master" 100 4 "OURS";
  splice "dev" 19_000 4 "THEIRS!";
  ignore (ok (FB.merge fb ~key:"doc" ~into:"master" ~from_branch:"dev"));
  let merged =
    Fb_postree.Pblob.to_string
      (Option.get (Value.to_blob (ok (FB.get fb ~key:"doc"))))
  in
  check bool_ "ours kept" true (Tutil.contains merged "OURS");
  check bool_ "theirs applied" true (Tutil.contains merged "THEIRS!");
  check int_ "length delta" (String.length text + 3) (String.length merged)

let test_merge_preview () =
  let fb = fresh () in
  ignore (ok (FB.import_csv fb ~key:"d" "id,v\n1,a\n2,b\n"));
  ignore (ok (FB.fork fb ~key:"d" ~new_branch:"dev"));
  check bool_ "already merged" true
    (ok (FB.merge_preview fb ~key:"d" ~into:"master" ~from_branch:"dev")
     = `Already_merged);
  ignore (ok (FB.import_csv fb ~key:"d" ~branch:"dev" "id,v\n1,a\n2,B\n"));
  check bool_ "fast forward" true
    (ok (FB.merge_preview fb ~key:"d" ~into:"master" ~from_branch:"dev")
     = `Fast_forward);
  ignore (ok (FB.import_csv fb ~key:"d" "id,v\n1,A\n2,b\n"));
  check bool_ "clean" true
    (ok (FB.merge_preview fb ~key:"d" ~into:"master" ~from_branch:"dev")
     = `Clean);
  ignore (ok (FB.import_csv fb ~key:"d" "id,v\n1,A\n2,x\n"));
  (match ok (FB.merge_preview fb ~key:"d" ~into:"master" ~from_branch:"dev") with
   | `Conflicts (_ :: _) -> ()
   | _ -> Alcotest.fail "expected conflicts");
  (* Preview never moves heads. *)
  check bool_ "heads untouched" true
    (Tutil.contains (ok (FB.export_csv fb ~key:"d")) "2,x")

(* ---------------- CSV / select / stat ---------------- *)

let test_csv_export_import () =
  let fb = fresh () in
  let csv = "id,name\n1,one\n2,two\n" in
  ignore (ok (FB.import_csv fb ~key:"t" csv));
  check string_ "export" csv (ok (FB.export_csv fb ~key:"t"));
  check bool_ "bad csv" true (is_err (FB.import_csv fb ~key:"t" "\"broken"));
  check bool_ "select on non-table" true
    (let fb2 = fresh () in
     ignore (ok (FB.put fb2 ~key:"p" (Value.int 7)));
     is_err (FB.select fb2 ~key:"p" (fun _ -> true)))

let test_table_stat_api () =
  let fb = fresh () in
  ignore (ok (FB.import_csv fb ~key:"t" "id,v\n1,10\n2,20\n3,20\n"));
  let stats = ok (FB.table_stat fb ~key:"t") in
  let v = List.nth stats 1 in
  check int_ "distinct" 2 v.Fb_types.Table.distinct;
  check bool_ "max" true (v.Fb_types.Table.max = Some (Primitive.Int 20L))

(* ---------------- verification ---------------- *)

let test_verify_api_detects_tamper () =
  let store, handle = Mem_store.create_with_handle () in
  let fb = FB.create store in
  let bindings = List.init 3000 (fun i -> (Printf.sprintf "%06d" i, "payload")) in
  let u = ok (FB.put fb ~key:"m" (Value.map_of_bindings store bindings)) in
  check bool_ "clean" true (Result.is_ok (FB.verify fb u));
  (* Flip a random data chunk. *)
  let v = ok (FB.get fb ~key:"m") in
  let m = Option.get (Value.to_map v) in
  let victim = List.nth (Fb_postree.Pmap.node_hashes m) 4 in
  ignore
    (Mem_store.tamper handle victim ~f:(fun s ->
         let b = Bytes.of_string s in
         Bytes.set b 10 'X';
         Bytes.to_string b));
  (match FB.verify fb u with
   | Error (Errors.Corrupt _) -> ()
   | _ -> Alcotest.fail "tamper undetected");
  match FB.verify_branch fb ~key:"m" ~branch:"master" with
  | Error (Errors.Corrupt _) -> ()
  | _ -> Alcotest.fail "branch verify undetected"

let test_version_string_roundtrip () =
  let fb = fresh () in
  let u = ok (FB.put fb ~key:"k" (Value.int 1)) in
  let s = FB.version_string u in
  check bool_ "base32" true (FB.parse_version s = Ok u);
  check bool_ "hex too" true (FB.parse_version (Hash.to_hex u) = Ok u);
  check bool_ "garbage" true (is_err (FB.parse_version "!!!"))

(* ---------------- optimistic concurrency / time travel ---------------- *)

let test_put_cas () =
  let fb = fresh () in
  (* First writer creates the branch with expected_head = None. *)
  let u1 = ok (FB.put_cas fb ~key:"k" ~expected_head:None (Value.string "v1")) in
  (* Stale expectation rejected. *)
  (match FB.put_cas fb ~key:"k" ~expected_head:None (Value.string "clobber") with
   | Error (Errors.Merge_conflict _) -> ()
   | _ -> Alcotest.fail "stale CAS accepted");
  (* Correct expectation succeeds. *)
  let u2 =
    ok (FB.put_cas fb ~key:"k" ~expected_head:(Some u1) (Value.string "v2"))
  in
  check bool_ "advanced" true (Hash.equal u2 (ok (FB.head fb ~key:"k")));
  (* Two racers on the same head: exactly one wins. *)
  let r1 = FB.put_cas fb ~key:"k" ~expected_head:(Some u2) (Value.string "a") in
  let r2 = FB.put_cas fb ~key:"k" ~expected_head:(Some u2) (Value.string "b") in
  check bool_ "one winner" true (Result.is_ok r1 && Result.is_error r2)

let test_get_as_of () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"k" (Value.string "first")));
  ignore (ok (FB.put fb ~key:"k" (Value.string "second")));
  ignore (ok (FB.put fb ~key:"k" (Value.string "third")));
  let at n =
    match ok (FB.get_as_of fb ~key:"k" ~seq:n) with
    | Value.Primitive (Primitive.String s) -> s
    | _ -> Alcotest.fail "wrong value"
  in
  check string_ "seq 1" "first" (at 1);
  check string_ "seq 2" "second" (at 2);
  check string_ "seq 3" "third" (at 3);
  check string_ "future seq clamps to head" "third" (at 99);
  check bool_ "before history" true
    (Result.is_error (FB.get_as_of fb ~key:"k" ~seq:0))

let test_put_all_atomic () =
  let fb = fresh () in
  let pairs = [ ("a", Value.int 1); ("b", Value.int 2); ("c", Value.int 3) ] in
  let uids = ok (FB.put_all fb pairs) in
  check int_ "all committed" 3 (List.length uids);
  List.iter
    (fun (key, uid) ->
      check bool_ ("head " ^ key) true
        (Hash.equal uid (ok (FB.head fb ~key))))
    uids;
  (* Duplicate keys refused before anything moves. *)
  check bool_ "dup keys" true
    (is_err (FB.put_all fb [ ("x", Value.int 1); ("x", Value.int 2) ]));
  check bool_ "x never created" true (is_err (FB.head fb ~key:"x"))

let test_put_all_permission_atomicity () =
  let acl = Acl.create () in
  Acl.grant acl ~user:"u" ~key:"allowed" ~branch:"*" Acl.Write;
  let fb = FB.create ~acl (Mem_store.create ()) in
  (* One denied key poisons the whole batch: nothing moves. *)
  (match
     FB.put_all ~user:"u" fb
       [ ("allowed", Value.int 1); ("forbidden", Value.int 2) ]
   with
   | Error (Errors.Permission_denied _) -> ()
   | _ -> Alcotest.fail "expected denial");
  Acl.grant acl ~user:"u" ~key:"allowed" ~branch:"*" Acl.Read;
  check bool_ "allowed untouched" true
    (Result.is_error (FB.head ~user:"u" fb ~key:"allowed"))

let test_watch () =
  let fb = fresh () in
  let events = ref [] in
  let w = FB.watch fb (fun e -> events := e :: !events) in
  let u1 = ok (FB.put fb ~key:"a" (Value.int 1)) in
  ignore (ok (FB.fork fb ~key:"a" ~new_branch:"dev"));
  ignore (ok (FB.put fb ~key:"b" (Value.int 2)));
  check int_ "three events" 3 (List.length !events);
  (match List.rev !events with
   | first :: second :: _ ->
     check bool_ "creation has no old head" true (first.FB.old_head = None);
     check bool_ "first is a/master" true
       (first.FB.key = "a" && first.FB.branch = "master"
        && Hash.equal first.FB.new_head u1);
     check bool_ "fork event" true
       (second.FB.branch = "dev" && second.FB.old_head = None)
   | _ -> Alcotest.fail "missing events");
  (* Filtered watcher. *)
  let only_b = ref 0 in
  let w2 = FB.watch ~key:"b" fb (fun _ -> incr only_b) in
  ignore (ok (FB.put fb ~key:"a" (Value.int 3)));
  ignore (ok (FB.put fb ~key:"b" (Value.int 4)));
  check int_ "filter" 1 !only_b;
  (* Unwatch stops delivery; callback exceptions are contained. *)
  FB.unwatch fb w;
  FB.unwatch fb w2;
  let boom = FB.watch fb (fun _ -> failwith "boom") in
  check bool_ "exn contained" true
    (Result.is_ok (FB.put fb ~key:"a" (Value.int 5)));
  FB.unwatch fb boom;
  let n = List.length !events in
  ignore (ok (FB.put fb ~key:"a" (Value.int 6)));
  check int_ "unwatched" n (List.length !events)

(* ---------------- tags ---------------- *)

let test_tags () =
  let fb = fresh () in
  let u1 = ok (FB.put fb ~key:"k" (Value.string "v1")) in
  let u2 = ok (FB.put fb ~key:"k" (Value.string "v2")) in
  ok (FB.tag fb ~key:"k" ~name:"release-1" u1);
  ok (FB.tag fb ~key:"k" ~name:"release-2" u2);
  check bool_ "lookup" true
    (Hash.equal (ok (FB.tag_lookup fb ~key:"k" ~name:"release-1")) u1);
  check bool_ "list" true
    (List.map fst (FB.tags fb ~key:"k") = [ "release-1"; "release-2" ]);
  (* Immutability: retagging fails. *)
  check bool_ "immutable" true (is_err (FB.tag fb ~key:"k" ~name:"release-1" u2));
  (* Wrong key rejected. *)
  let w = ok (FB.put fb ~key:"other" (Value.string "x")) in
  check bool_ "wrong key" true (is_err (FB.tag fb ~key:"k" ~name:"bad" w));
  (* Tagged versions are GC roots even when no branch reaches them. *)
  ok (FB.delete_branch fb ~key:"k" ~branch:"master");
  check int_ "tags protect" 0 (FB.gc fb).Fb_chunk.Gc.swept_chunks;
  check bool_ "still readable" true (Result.is_ok (FB.get_at fb u1));
  (* Delete the tags: versions become garbage. *)
  ok (FB.delete_tag fb ~key:"k" ~name:"release-1");
  ok (FB.delete_tag fb ~key:"k" ~name:"release-2");
  check bool_ "now swept" true ((FB.gc fb).Fb_chunk.Gc.swept_chunks > 0);
  check bool_ "delete missing" true
    (is_err (FB.delete_tag fb ~key:"k" ~name:"release-1"))

(* ---------------- row history (blame) ---------------- *)

let test_row_history () =
  let fb = fresh () in
  ignore
    (ok (FB.import_csv fb ~key:"t" ~message:"v1" "id,v\n1,a\n2,b\n"));
  ignore
    (ok (FB.import_csv fb ~key:"t" ~message:"v2" "id,v\n1,a\n2,B\n3,c\n"));
  ignore
    (ok (FB.import_csv fb ~key:"t" ~message:"v3" "id,v\n1,a\n3,c\n"));
  (* Row 2: added in v1, modified in v2, removed in v3 -> 3 events,
     newest first. *)
  let events = ok (FB.row_history fb ~key:"t" ~row:"2") in
  check int_ "three events" 3 (List.length events);
  let kinds =
    List.map
      (fun (e : FB.row_event) ->
        match e.FB.change with
        | Fb_types.Table.Row_added _ -> `A
        | Fb_types.Table.Row_removed _ -> `R
        | Fb_types.Table.Row_modified _ -> `M)
      events
  in
  check bool_ "removed, modified, added" true (kinds = [ `R; `M; `A ]);
  check bool_ "messages" true
    (List.map (fun (e : FB.row_event) -> e.FB.message) events
     = [ "v3"; "v2"; "v1" ]);
  (* Row 1 never changed after v1: one event. *)
  check int_ "stable row" 1
    (List.length (ok (FB.row_history fb ~key:"t" ~row:"1")));
  (* Unknown row: no events. *)
  check int_ "ghost row" 0
    (List.length (ok (FB.row_history fb ~key:"t" ~row:"99")));
  (* Limit caps versions examined. *)
  check bool_ "limit" true
    (List.length (ok (FB.row_history ~limit:1 fb ~key:"t" ~row:"2")) <= 1)

let test_row_history_non_table () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"s" (Value.string "x")));
  (* Non-table versions contribute no row events rather than failing. *)
  check int_ "no events" 0
    (List.length (ok (FB.row_history fb ~key:"s" ~row:"1")))

(* ---------------- bundles ---------------- *)

let test_bundle_exchange () =
  (* Site A works, bundles, site B imports and continues. *)
  let a = fresh () in
  ignore (ok (FB.import_csv a ~key:"ds" "id,v\n1,x\n2,y\n"));
  ignore (ok (FB.import_csv a ~key:"ds" "id,v\n1,x\n2,z\n3,w\n"));
  let bundle = ok (FB.export_bundle a ~key:"ds") in
  let b = fresh () in
  let root = ok (FB.import_bundle b ~key:"ds" bundle) in
  check bool_ "heads match" true
    (Hash.equal root (ok (FB.head b ~key:"ds")));
  check string_ "content arrived" (ok (FB.export_csv a ~key:"ds"))
    (ok (FB.export_csv b ~key:"ds"));
  (* Full history crossed over and verifies. *)
  check int_ "history" 2 (List.length (ok (FB.log b ~key:"ds")));
  check bool_ "verifies" true (Result.is_ok (FB.verify b root));
  (* B continues, bundles back; A fast-forwards. *)
  ignore (ok (FB.import_csv b ~key:"ds" "id,v\n1,x\n2,z\n3,w\n4,q\n"));
  let back = ok (FB.export_bundle b ~key:"ds") in
  let root2 = ok (FB.import_bundle a ~key:"ds" back) in
  check bool_ "ff applied" true (Hash.equal root2 (ok (FB.head a ~key:"ds")));
  check int_ "a history" 3 (List.length (ok (FB.log a ~key:"ds")))

let test_bundle_rejects_non_fast_forward () =
  let a = fresh () in
  ignore (ok (FB.put a ~key:"k" (Value.string "base")));
  let bundle = ok (FB.export_bundle a ~key:"k") in
  let b = fresh () in
  ignore (ok (FB.put b ~key:"k" (Value.string "divergent")));
  match FB.import_bundle b ~key:"k" bundle with
  | Error (Errors.Invalid _) -> ()
  | _ -> Alcotest.fail "divergent import must be refused"

let test_bundle_wrong_key () =
  let a = fresh () in
  ignore (ok (FB.put a ~key:"real" (Value.string "x")));
  let bundle = ok (FB.export_bundle a ~key:"real") in
  let b = fresh () in
  match FB.import_bundle b ~key:"other" bundle with
  | Error (Errors.Invalid _) -> ()
  | _ -> Alcotest.fail "key mismatch must be refused"

(* ---------------- stats / gc ---------------- *)

let test_stats_and_gc () =
  let fb = fresh () in
  ignore (ok (FB.put fb ~key:"a" (Value.string "1")));
  ignore (ok (FB.put fb ~key:"a" (Value.string "2")));
  ignore (ok (FB.fork fb ~key:"a" ~new_branch:"dev"));
  ignore (ok (FB.put fb ~key:"b" (Value.string "3")));
  let st = FB.stats fb in
  check int_ "keys" 2 st.FB.keys;
  check int_ "branches" 3 st.FB.branches;
  check int_ "versions" 3 st.FB.versions;
  (* Nothing is garbage: all versions reachable from heads. *)
  check int_ "gc keeps history" 0 (FB.gc fb).Fb_chunk.Gc.swept_chunks;
  (* Delete the only branch of b: its version becomes garbage. *)
  ok (FB.delete_branch fb ~key:"b" ~branch:"master");
  check bool_ "gc sweeps b" true ((FB.gc fb).Fb_chunk.Gc.swept_chunks > 0)

(* ---------------- ACL ---------------- *)

let test_acl_levels () =
  check bool_ "admin implies write" true (Acl.implies Acl.Admin Acl.Write);
  check bool_ "write implies read" true (Acl.implies Acl.Write Acl.Read);
  check bool_ "read not write" false (Acl.implies Acl.Read Acl.Write);
  check bool_ "parse" true (Acl.level_of_string "write" = Some Acl.Write);
  check bool_ "parse bad" true (Acl.level_of_string "boss" = None)

let test_acl_enforcement () =
  let acl = Acl.create () in
  Acl.grant acl ~user:"alice" ~key:"*" ~branch:"*" Acl.Admin;
  Acl.grant acl ~user:"bob" ~key:"ds" ~branch:"master" Acl.Read;
  Acl.grant acl ~user:"bob" ~key:"ds" ~branch:"bob-dev" Acl.Admin;
  let fb = FB.create ~acl (Mem_store.create ()) in
  (* Alice sets up the dataset. *)
  ignore (ok (FB.put ~user:"alice" fb ~key:"ds" (Value.string "v1")));
  (* Bob can read master but not write it. *)
  check bool_ "bob reads" true (Result.is_ok (FB.get ~user:"bob" fb ~key:"ds"));
  (match FB.put ~user:"bob" fb ~key:"ds" (Value.string "nope") with
   | Error (Errors.Permission_denied _) -> ()
   | _ -> Alcotest.fail "bob wrote master");
  (* Bob forks to his own branch and works there. *)
  ignore (ok (FB.fork ~user:"bob" fb ~key:"ds" ~new_branch:"bob-dev"));
  ignore
    (ok (FB.put ~user:"bob" fb ~key:"ds" ~branch:"bob-dev" (Value.string "bob's")));
  (* Mallory sees nothing. *)
  check bool_ "mallory denied" true
    (is_err (FB.get ~user:"mallory" fb ~key:"ds"));
  check bool_ "mallory sees no keys" true (FB.list_keys ~user:"mallory" fb = []);
  check bool_ "bob sees ds" true (FB.list_keys ~user:"bob" fb = [ "ds" ]);
  (* Revocation applies immediately. *)
  Acl.revoke acl ~user:"bob" ~key:"ds" ~branch:"master";
  check bool_ "bob revoked" true (is_err (FB.get ~user:"bob" fb ~key:"ds"))

let test_acl_wildcards_and_default () =
  let acl = Acl.create ~default_level:(Some Acl.Read) () in
  Acl.grant acl ~user:"dev" ~key:"app-*" ~branch:"*" Acl.Write;
  (* Literal pattern "app-*" is not a glob — only "*" is special. *)
  check bool_ "literal star key" true
    (Acl.allowed acl ~user:"dev" ~key:"app-*" ~branch:"b" Acl.Write);
  check bool_ "no glob expansion" false
    (Acl.allowed acl ~user:"dev" ~key:"app-1" ~branch:"b" Acl.Write);
  check bool_ "default read" true
    (Acl.allowed acl ~user:"anyone" ~key:"k" ~branch:"b" Acl.Read);
  check bool_ "default not write" false
    (Acl.allowed acl ~user:"anyone" ~key:"k" ~branch:"b" Acl.Write);
  check int_ "grants listed" 1 (List.length (Acl.grants acl))

(* ---------------- diffview rendering ---------------- *)

let test_diffview_primitives_and_types () =
  let d = ok (Diffview.compute (Value.int 1) (Value.int 2)) in
  check bool_ "primitive change" true
    (match d with Diffview.Primitive_change _ -> true | _ -> false);
  let d2 = ok (Diffview.compute (Value.int 1) (Value.string "x")) in
  (match d2 with
   | Diffview.Type_change (Value.K_primitive, Value.K_primitive) ->
     Alcotest.fail "both primitive is not a type change"
   | _ -> ());
  let store = Mem_store.create () in
  let d3 = ok (Diffview.compute (Value.int 1) (Value.map_of_bindings store [])) in
  check bool_ "type change" true
    (match d3 with Diffview.Type_change _ -> true | _ -> false);
  check bool_ "same" true
    (Diffview.is_same (ok (Diffview.compute (Value.int 3) (Value.int 3))))

let test_diffview_render_table () =
  let store = Mem_store.create () in
  let t1 = Result.get_ok (Fb_types.Table.of_csv store "id,v\n1,a\n2,b\n") in
  let t2 = Result.get_ok (Fb_types.Table.of_csv store "id,v\n1,a\n2,c\n3,d\n") in
  let d = ok (Diffview.compute (Value.Table t1) (Value.Table t2)) in
  let rendered = Format.asprintf "%a" Diffview.render d in
  check bool_ "mentions modified row" true
    (Tutil.contains rendered "~ row \"2\"");
  check bool_ "mentions added row" true
    (Tutil.contains rendered "+ row")

let suite =
  [ Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "versions accumulate" `Quick test_versions_accumulate;
    Alcotest.test_case "identical put dedups" `Quick
      test_idempotent_put_dedups;
    Alcotest.test_case "latest and list" `Quick test_latest_and_list;
    Alcotest.test_case "fork shares everything" `Quick
      test_fork_shares_everything;
    Alcotest.test_case "fork at historical" `Quick test_fork_at_historical;
    Alcotest.test_case "rename/delete branch" `Quick test_rename_delete_branch;
    Alcotest.test_case "diff branches (table)" `Quick test_diff_branches_table;
    Alcotest.test_case "merge divergent tables" `Quick
      test_merge_divergent_tables;
    Alcotest.test_case "merge fast-forward" `Quick test_merge_fast_forward;
    Alcotest.test_case "merge conflict/strategies" `Quick
      test_merge_conflict_and_strategies;
    Alcotest.test_case "merge map conflict detail" `Quick
      test_merge_map_conflict_detail;
    Alcotest.test_case "merge preview" `Quick test_merge_preview;
    Alcotest.test_case "merge lists disjoint" `Quick
      test_merge_lists_disjoint;
    Alcotest.test_case "merge blobs disjoint" `Quick
      test_merge_blobs_disjoint;
    Alcotest.test_case "csv export/import" `Quick test_csv_export_import;
    Alcotest.test_case "table stat api" `Quick test_table_stat_api;
    Alcotest.test_case "verify api detects tamper" `Quick
      test_verify_api_detects_tamper;
    Alcotest.test_case "version string roundtrip" `Quick
      test_version_string_roundtrip;
    Alcotest.test_case "put_all atomic" `Quick test_put_all_atomic;
    Alcotest.test_case "put_all permission atomicity" `Quick
      test_put_all_permission_atomicity;
    Alcotest.test_case "watch" `Quick test_watch;
    Alcotest.test_case "tags" `Quick test_tags;
    Alcotest.test_case "put_cas" `Quick test_put_cas;
    Alcotest.test_case "get_as_of" `Quick test_get_as_of;
    Alcotest.test_case "row history" `Quick test_row_history;
    Alcotest.test_case "row history non-table" `Quick
      test_row_history_non_table;
    Alcotest.test_case "bundle exchange" `Quick test_bundle_exchange;
    Alcotest.test_case "bundle non-fast-forward" `Quick
      test_bundle_rejects_non_fast_forward;
    Alcotest.test_case "bundle wrong key" `Quick test_bundle_wrong_key;
    Alcotest.test_case "stats and gc" `Quick test_stats_and_gc;
    Alcotest.test_case "acl levels" `Quick test_acl_levels;
    Alcotest.test_case "acl enforcement" `Quick test_acl_enforcement;
    Alcotest.test_case "acl wildcards/default" `Quick
      test_acl_wildcards_and_default;
    Alcotest.test_case "diffview primitives/types" `Quick
      test_diffview_primitives_and_types;
    Alcotest.test_case "diffview render table" `Quick
      test_diffview_render_table ]
