(* Pack files: freezing, lookup, read-only semantics, overlay layering,
   corruption rejection, ForkBase running over pack + overlay. *)

module Pack = Fb_chunk.Pack
module Store = Fb_chunk.Store
module Chunk = Fb_chunk.Chunk
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let with_temp_file f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fb_pack_%d_%d.pack" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let populate store n =
  List.init n (fun i ->
      Store.put store (Chunk.v Chunk.Leaf_blob (Printf.sprintf "payload %d" i)))

let test_pack_roundtrip () =
  with_temp_file (fun path ->
      let store = Mem_store.create () in
      let ids = populate store 500 in
      (match Pack.pack_store store ~path with
       | Ok n -> check int_ "count" 500 n
       | Error e -> Alcotest.fail e);
      match Pack.open_file ~path with
      | Error e -> Alcotest.fail e
      | Ok pack ->
        check int_ "reopened count" 500 (Pack.count pack);
        List.iter
          (fun id ->
            match Pack.find pack id with
            | Some raw -> check bool_ "self-addressed" true (Hash.equal (Hash.of_string raw) id)
            | None -> Alcotest.fail "missing from pack")
          ids;
        check bool_ "absent id" true
          (Pack.find pack (Hash.of_string "nope") = None))

let test_pack_reader_store () =
  with_temp_file (fun path ->
      let store = Mem_store.create () in
      let ids = populate store 50 in
      ignore (Pack.pack_store store ~path);
      let pack = Result.get_ok (Pack.open_file ~path) in
      let reader = Pack.reader pack in
      check bool_ "get" true (Store.get reader (List.hd ids) <> None);
      check bool_ "mem" true (Store.mem reader (List.hd ids));
      check int_ "stats chunks" 50 (Store.stats reader).Store.physical_chunks;
      let seen = ref 0 in
      reader.Store.iter (fun _ _ -> incr seen);
      check int_ "iter" 50 !seen;
      (* Writes are refused. *)
      (try
         ignore (Store.put reader (Chunk.v Chunk.Leaf_blob "new"));
         Alcotest.fail "pack accepted a write"
       with Failure _ -> ());
      try
        ignore (reader.Store.delete (List.hd ids));
        Alcotest.fail "pack accepted a delete"
      with Failure _ -> ())

let test_pack_rejects_dishonest_entries () =
  with_temp_file (fun path ->
      let bad = [ (Hash.of_string "claimed", "actual different bytes") ] in
      check bool_ "dishonest refused" true
        (Result.is_error (Pack.write_file ~path bad)))

let test_pack_rejects_corrupt_file () =
  with_temp_file (fun path ->
      let store = Mem_store.create () in
      ignore (populate store 20);
      ignore (Pack.pack_store store ~path);
      (* Truncate the file mid-index. *)
      let content =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin path in
      output_string oc (String.sub content 0 40);
      close_out oc;
      check bool_ "truncated refused" true
        (Result.is_error (Pack.open_file ~path));
      let oc = open_out_bin path in
      output_string oc "garbage garbage garbage";
      close_out oc;
      check bool_ "garbage refused" true
        (Result.is_error (Pack.open_file ~path)))

let test_overlay_layering () =
  with_temp_file (fun path ->
      let base = Mem_store.create () in
      let frozen_ids = populate base 100 in
      ignore (Pack.pack_store base ~path);
      let pack = Result.get_ok (Pack.open_file ~path) in
      let overlay = Mem_store.create () in
      let store = Pack.with_overlay ~packs:[ pack ] overlay in
      (* Frozen chunks are visible. *)
      List.iter
        (fun id -> check bool_ "pack read-through" true (Store.mem store id))
        frozen_ids;
      (* New writes land in the overlay only. *)
      let fresh = Store.put store (Chunk.v Chunk.Leaf_blob "fresh") in
      check bool_ "fresh readable" true (Store.get store fresh <> None);
      check int_ "overlay holds it" 1
        (Store.stats overlay).Store.physical_chunks;
      (* Re-putting a packed chunk is a dedup hit, not a copy. *)
      ignore (Store.put store (Chunk.v Chunk.Leaf_blob "payload 0"));
      check int_ "no duplicate" 1 (Store.stats overlay).Store.physical_chunks;
      check bool_ "dedup hit counted" true
        ((Store.stats store).Store.dedup_hits >= 1);
      (* iter covers both layers without duplicates. *)
      let seen = ref 0 in
      store.Store.iter (fun _ _ -> incr seen);
      check int_ "union iter" 101 !seen)

let test_forkbase_on_pack_overlay () =
  with_temp_file (fun path ->
      (* Yesterday's instance, frozen into a pack... *)
      let yesterday = Mem_store.create () in
      let fb1 = FB.create yesterday in
      let ok = function
        | Ok v -> v
        | Error e -> Alcotest.fail (Fb_core.Errors.to_string e)
      in
      ignore (ok (FB.import_csv fb1 ~key:"ds" "id,v\n1,a\n2,b\n"));
      let tip = ok (FB.head fb1 ~key:"ds") in
      ignore (Pack.pack_store yesterday ~path);
      (* ...today continues on pack + fresh overlay. *)
      let pack = Result.get_ok (Pack.open_file ~path) in
      let store = Pack.with_overlay ~packs:[ pack ] (Mem_store.create ()) in
      let fb2 = FB.create store in
      ignore (ok (FB.fork_at fb2 ~key:"ds" ~new_branch:"master" tip));
      ignore (ok (FB.import_csv fb2 ~key:"ds" "id,v\n1,a\n2,b\n3,c\n"));
      check bool_ "history spans layers" true
        (List.length (ok (FB.log fb2 ~key:"ds")) = 2);
      check bool_ "verifies across layers" true
        (Result.is_ok (FB.verify fb2 (ok (FB.head fb2 ~key:"ds")))))

let suite =
  [ Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
    Alcotest.test_case "pack reader store" `Quick test_pack_reader_store;
    Alcotest.test_case "pack rejects dishonest entries" `Quick
      test_pack_rejects_dishonest_entries;
    Alcotest.test_case "pack rejects corrupt file" `Quick
      test_pack_rejects_corrupt_file;
    Alcotest.test_case "overlay layering" `Quick test_overlay_layering;
    Alcotest.test_case "forkbase on pack+overlay" `Quick
      test_forkbase_on_pack_overlay ]
