(* Binary patches: export a delta, ship it, replay it. *)

module FB = Fb_core.Forkbase
module Patch = Fb_core.Patch
module Errors = Fb_core.Errors
module Value = Fb_types.Value
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let test_patch_roundtrip_table () =
  (* Site A evolves a table; B holds the old version and replays A's
     patch. *)
  let a = FB.create (Fb_chunk.Mem_store.create ()) in
  let u1 = ok (FB.import_csv a ~key:"ds" "id,v\n1,a\n2,b\n3,c\n") in
  let u2 = ok (FB.import_csv a ~key:"ds" "id,v\n1,a\n2,B\n4,d\n") in
  let patch = ok (Patch.diff a ~key:"ds" ~from_uid:u1 ~to_uid:u2) in
  let wire = Patch.encode patch in
  (* Compact: proportional to the delta, not the table. *)
  check bool_ "compact" true (String.length wire < 200);
  let b = FB.create (Fb_chunk.Mem_store.create ()) in
  let bundle = ok (FB.export_bundle a ~key:"ds") in
  ignore bundle;
  (* B starts from u1's content but with its own history (a different
     commit message gives a different FNode — a byte-identical import
     would content-address to exactly A's u1). *)
  ignore
    (ok (FB.import_csv b ~key:"ds" ~message:"B's own load"
           "id,v\n1,a\n2,b\n3,c\n"));
  let patch' = ok (Patch.decode wire) in
  check bool_ "uids carried" true
    (Hash.equal (Patch.base_uid patch') u1
     && Hash.equal (Patch.target_uid patch') u2);
  (* B's head is not A's u1 (different history), so strict apply fails
     and force succeeds. *)
  check bool_ "strict refuses" true
    (Result.is_error (Patch.apply b ~key:"ds" patch'));
  ignore (ok (Patch.apply ~force:true b ~key:"ds" patch'));
  check bool_ "content matches A" true
    (ok (FB.export_csv b ~key:"ds") = ok (FB.export_csv a ~key:"ds"));
  (* Strict apply works when the head IS the base: replay on A itself from
     a branch parked at u1. *)
  ignore (ok (FB.fork_at a ~key:"ds" ~new_branch:"replay" u1));
  ignore (ok (Patch.apply a ~key:"ds" ~branch:"replay" patch'));
  (* Structural invariance: the replayed value is bit-identical to u2's
     value (same rows root), though the version uid differs. *)
  let v_replayed = ok (FB.get a ~key:"ds" ~branch:"replay") in
  let v_target = ok (FB.get_at a u2) in
  check bool_ "value identical" true (Value.equal v_replayed v_target)

let test_patch_map_value () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let store = FB.store fb in
  let u1 =
    ok (FB.put fb ~key:"m" (Value.map_of_bindings store [ ("a", "1"); ("b", "2") ]))
  in
  let u2 =
    ok (FB.put fb ~key:"m" (Value.map_of_bindings store [ ("a", "1"); ("c", "3") ]))
  in
  let patch = ok (Patch.diff fb ~key:"m" ~from_uid:u1 ~to_uid:u2) in
  ignore (ok (FB.fork_at fb ~key:"m" ~new_branch:"replay" u1));
  ignore (ok (Patch.apply fb ~key:"m" ~branch:"replay" patch));
  let v = ok (FB.get fb ~key:"m" ~branch:"replay") in
  check bool_ "map patched" true
    (Fb_postree.Pmap.bindings (Option.get (Value.to_map v))
     = [ ("a", "1"); ("c", "3") ])

let test_patch_rejections () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  check bool_ "garbage" true (Result.is_error (Patch.decode "nonsense"));
  check bool_ "empty" true (Result.is_error (Patch.decode ""));
  let u1 = ok (FB.put fb ~key:"s" (Value.string "x")) in
  let u2 = ok (FB.put fb ~key:"s" (Value.string "y")) in
  (* Primitives have no entry-level delta. *)
  match Patch.diff fb ~key:"s" ~from_uid:u1 ~to_uid:u2 with
  | Error (Errors.Type_mismatch _) -> ()
  | _ -> Alcotest.fail "expected type mismatch"

let test_patch_empty_delta () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let u1 = ok (FB.import_csv fb ~key:"d" "id,v\n1,a\n") in
  let patch = ok (Patch.diff fb ~key:"d" ~from_uid:u1 ~to_uid:u1) in
  let before = ok (FB.export_csv fb ~key:"d") in
  ignore (ok (Patch.apply fb ~key:"d" patch));
  check bool_ "no-op content" true (ok (FB.export_csv fb ~key:"d") = before);
  check int_ "two versions (patch commit)" 2
    (List.length (ok (FB.log fb ~key:"d")))

let suite =
  [ Alcotest.test_case "table patch roundtrip" `Quick
      test_patch_roundtrip_table;
    Alcotest.test_case "map patch" `Quick test_patch_map_value;
    Alcotest.test_case "rejections" `Quick test_patch_rejections;
    Alcotest.test_case "empty delta" `Quick test_patch_empty_delta ]
