(* Baseline comparison systems: correctness of commit/retrieve and the
   storage characteristics Table I claims. *)

module Baseline = Fb_baselines.Baseline
module Btree = Fb_baselines.Btree_baseline
module Hash = Fb_hash.Hash
module Prng = Fb_hash.Prng

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let mk_rows ?(seed = 21L) n =
  let rng = Prng.create seed in
  List.init n (fun i ->
      ( Printf.sprintf "row-%06d" i,
        Printf.sprintf "payload-%Ld-%d" (Prng.next_int64 rng) i ))

let edit_one rows =
  List.map
    (fun (k, v) -> if k = "row-000100" then (k, "EDITED") else (k, v))
    rows

let all_baselines () =
  [ Fb_baselines.Snapshot_store.create ();
    Fb_baselines.Delta_store.create ();
    Fb_baselines.Kv_store.create ();
    Fb_baselines.Gitfile_store.create ();
    Fb_baselines.Fixed_chunk_store.create () ]

let test_commit_retrieve_roundtrip () =
  let v0 = mk_rows 500 in
  let v1 = edit_one v0 in
  let v2 = List.filteri (fun i _ -> i < 400) v1 in
  List.iter
    (fun (b : Baseline.t) ->
      let i0 = b.commit v0 in
      let i1 = b.commit v1 in
      let i2 = b.commit v2 in
      check int_ (b.name ^ " v0") 0 i0;
      check int_ (b.name ^ " v2") 2 i2;
      check bool_ (b.name ^ " retrieve v0") true (b.retrieve i0 = v0);
      check bool_ (b.name ^ " retrieve v1") true (b.retrieve i1 = v1);
      check bool_ (b.name ^ " retrieve v2") true (b.retrieve i2 = v2);
      check bool_ (b.name ^ " bad version") true
        (try
           ignore (b.retrieve 99);
           false
         with Invalid_argument _ -> true))
    (all_baselines ())

let test_snapshot_grows_linearly () =
  let b = Fb_baselines.Snapshot_store.create () in
  let rows = mk_rows 1000 in
  ignore (b.commit rows);
  let one = b.storage_bytes () in
  ignore (b.commit rows);
  ignore (b.commit rows);
  check int_ "3x" (3 * one) (b.storage_bytes ())

let test_delta_small_for_small_edits () =
  let b = Fb_baselines.Delta_store.create () in
  let rows = mk_rows 2000 in
  ignore (b.commit rows);
  let base = b.storage_bytes () in
  ignore (b.commit (edit_one rows));
  let delta = b.storage_bytes () - base in
  check bool_ (Printf.sprintf "delta %d << base %d" delta base) true
    (delta * 20 < base)

let test_gitfile_dedups_identical_only () =
  let b = Fb_baselines.Gitfile_store.create () in
  let rows = mk_rows 2000 in
  ignore (b.commit rows);
  let one = b.storage_bytes () in
  (* Identical snapshot: free. *)
  ignore (b.commit rows);
  check int_ "identical free" one (b.storage_bytes ());
  (* One-word edit: pays the full file again. *)
  ignore (b.commit (edit_one rows));
  check bool_ "edit pays full" true (b.storage_bytes () >= 2 * one - 100)

let test_kv_stores_changed_rows_only () =
  let b = Fb_baselines.Kv_store.create () in
  let rows = mk_rows 2000 in
  ignore (b.commit rows);
  let base = b.storage_bytes () in
  ignore (b.commit (edit_one rows));
  let delta = b.storage_bytes () - base in
  (* Changed row + per-version manifest, well below a full copy. *)
  check bool_ (Printf.sprintf "delta %d < base %d" delta base) true
    (delta < base)

let test_fixed_chunks_suffer_from_shift () =
  let b = Fb_baselines.Fixed_chunk_store.create ~chunk_size:1024 () in
  let rows = mk_rows 2000 in
  ignore (b.commit rows);
  let base = b.storage_bytes () in
  (* Insert one row near the front: fixed-offset chunking shifts every
     boundary after it, so most chunks are new. *)
  let shifted = ("row-0000005x", "INSERTED") :: rows in
  let shifted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) shifted
  in
  ignore (b.commit shifted);
  let delta = b.storage_bytes () - base in
  check bool_ (Printf.sprintf "shift hurts: %d > 0.5*%d" delta base) true
    (2 * delta > base)

let test_caps_populated () =
  List.iter
    (fun (b : Baseline.t) ->
      check bool_ (b.name ^ " caps") true
        (String.length b.caps.Baseline.data_model > 0
         && String.length b.caps.Baseline.dedup > 0
         && String.length b.caps.Baseline.branching > 0))
    (all_baselines ())

(* ---------------- B+-tree strawman ---------------- *)

let test_btree_correctness () =
  let entries = List.init 2000 (fun i -> (Printf.sprintf "k%05d" i, string_of_int i)) in
  let t = Btree.of_bindings entries in
  check int_ "cardinal" 2000 (Btree.cardinal t);
  check bool_ "sorted" true (Btree.bindings t = entries);
  check bool_ "find" true (Btree.find t "k01000" = Some "1000");
  check bool_ "find missing" true (Btree.find t "zz" = None);
  (* Upsert does not change cardinality. *)
  Btree.insert t "k01000" "updated";
  check int_ "upsert" 2000 (Btree.cardinal t);
  check bool_ "updated" true (Btree.find t "k01000" = Some "updated")

let test_btree_random_order_correctness () =
  let entries = List.init 1000 (fun i -> (Printf.sprintf "k%05d" i, string_of_int i)) in
  let rng = Prng.create 4L in
  let arr = Array.of_list entries in
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.next_int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let t = Btree.of_bindings (Array.to_list arr) in
  check bool_ "content independent of order" true (Btree.bindings t = entries)

let test_btree_not_structurally_invariant () =
  (* The point of the strawman: same content, different build order, almost
     no page sharing — violating SIRI Property 1. *)
  let entries = List.init 3000 (fun i -> (Printf.sprintf "k%05d" i, "v")) in
  let t1 = Btree.of_bindings entries in
  let t2 = Btree.of_bindings (List.rev entries) in
  check bool_ "same records" true (Btree.bindings t1 = Btree.bindings t2);
  let shared =
    Hash.Set.cardinal (Hash.Set.inter (Btree.page_hashes t1) (Btree.page_hashes t2))
  in
  let total = Btree.page_count t1 in
  check bool_
    (Printf.sprintf "shared %d / %d pages" shared total)
    true
    (float_of_int shared < 0.2 *. float_of_int total)

let suite =
  [ Alcotest.test_case "commit/retrieve roundtrip" `Quick
      test_commit_retrieve_roundtrip;
    Alcotest.test_case "snapshot grows linearly" `Quick
      test_snapshot_grows_linearly;
    Alcotest.test_case "delta small for small edits" `Quick
      test_delta_small_for_small_edits;
    Alcotest.test_case "gitfile dedups identical only" `Quick
      test_gitfile_dedups_identical_only;
    Alcotest.test_case "kv stores changed rows only" `Quick
      test_kv_stores_changed_rows_only;
    Alcotest.test_case "fixed chunks suffer from shift" `Quick
      test_fixed_chunks_suffer_from_shift;
    Alcotest.test_case "caps populated" `Quick test_caps_populated;
    Alcotest.test_case "btree correctness" `Quick test_btree_correctness;
    Alcotest.test_case "btree random order" `Quick
      test_btree_random_order_correctness;
    Alcotest.test_case "btree lacks structural invariance" `Quick
      test_btree_not_structurally_invariant ]
