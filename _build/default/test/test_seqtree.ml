(* Sequence POS-Trees: content-defined blob chunking and positional
   lists. *)

module Pblob = Fb_postree.Pblob
module Plist = Fb_postree.Plist
module Store = Fb_chunk.Store
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module Prng = Fb_hash.Prng

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let random_text ?(seed = 5L) n =
  let rng = Prng.create seed in
  String.init n (fun _ -> Char.chr (32 + Prng.next_int rng 95))

let blob_roots_equal a b = Option.equal Hash.equal (Pblob.root a) (Pblob.root b)
let list_roots_equal a b = Option.equal Hash.equal (Plist.root a) (Plist.root b)

(* ---------------- Pblob ---------------- *)

let test_blob_empty () =
  let store = Mem_store.create () in
  let b = Pblob.of_string store "" in
  check bool_ "empty" true (Pblob.is_empty b);
  check int_ "length" 0 (Pblob.length b);
  check string_ "to_string" "" (Pblob.to_string b);
  check bool_ "validate" true (Pblob.validate b = Ok ());
  check bool_ "self diff" true (Pblob.diff b b = None)

let test_blob_roundtrip () =
  let store = Mem_store.create () in
  List.iter
    (fun n ->
      let s = random_text ~seed:(Int64.of_int n) n in
      let b = Pblob.of_string store s in
      check int_ ("length " ^ string_of_int n) n (Pblob.length b);
      check bool_ ("roundtrip " ^ string_of_int n) true
        (String.equal (Pblob.to_string b) s);
      check bool_ "validate" true (Pblob.validate b = Ok ()))
    [ 1; 100; 5000; 100_000 ]

let test_blob_read () =
  let store = Mem_store.create () in
  let s = random_text 50_000 in
  let b = Pblob.of_string store s in
  check string_ "middle" (String.sub s 20_000 100) (Pblob.read b ~pos:20_000 ~len:100);
  check string_ "start" (String.sub s 0 10) (Pblob.read b ~pos:0 ~len:10);
  check string_ "end" (String.sub s 49_990 10) (Pblob.read b ~pos:49_990 ~len:10);
  check string_ "empty read" "" (Pblob.read b ~pos:123 ~len:0);
  Alcotest.check_raises "oob" (Invalid_argument "Pblob.read: range out of bounds")
    (fun () -> ignore (Pblob.read b ~pos:49_999 ~len:2))

let test_blob_determinism () =
  let store = Mem_store.create () in
  let s = random_text 30_000 in
  let b1 = Pblob.of_string store s in
  let b2 = Pblob.of_string store s in
  check bool_ "same root" true (blob_roots_equal b1 b2);
  (* The second build stored zero new physical chunks. *)
  let before = (Store.stats store).Store.physical_chunks in
  let _ = Pblob.of_string store s in
  check int_ "all dedup" before (Store.stats store).Store.physical_chunks

let test_blob_splice_equals_rebuild () =
  let store = Mem_store.create () in
  let s = random_text 80_000 in
  let cases =
    [ (0, 0, "front-insert");         (* prepend *)
      (40_000, 5, "middle-replace");  (* replace *)
      (80_000, 0, "tail-append");     (* append *)
      (10_000, 3000, "");             (* pure delete *)
      (0, 80_000, "total rewrite") ]  (* replace everything *)
  in
  List.iter
    (fun (pos, remove, insert) ->
      let b = Pblob.of_string store s in
      let expected =
        String.sub s 0 pos ^ insert
        ^ String.sub s (pos + remove) (String.length s - pos - remove)
      in
      let spliced = Pblob.splice b ~pos ~remove ~insert in
      check bool_
        (Printf.sprintf "splice(%d,%d) bit-identical" pos remove)
        true
        (blob_roots_equal spliced (Pblob.of_string store expected));
      check bool_ "content" true
        (String.equal (Pblob.to_string spliced) expected);
      check bool_ "validate" true (Pblob.validate spliced = Ok ()))
    cases

let test_blob_splice_oob () =
  let store = Mem_store.create () in
  let b = Pblob.of_string store "0123456789" in
  Alcotest.check_raises "oob"
    (Invalid_argument "Pblob.splice: range out of bounds") (fun () ->
      ignore (Pblob.splice b ~pos:8 ~remove:5 ~insert:""))

let test_blob_splice_locality () =
  (* A one-word edit in a large blob creates only a handful of chunks. *)
  let store = Mem_store.create () in
  let s = random_text 500_000 in
  let b = Pblob.of_string store s in
  let before = (Store.stats store).Store.physical_chunks in
  let b' = Pblob.splice b ~pos:250_000 ~remove:4 ~insert:"WORD" in
  let created = (Store.stats store).Store.physical_chunks - before in
  check bool_ (Printf.sprintf "created %d <= 8" created) true (created <= 8);
  check bool_ "content intact" true
    (String.length (Pblob.to_string b') = 500_000)

let test_blob_append () =
  let store = Mem_store.create () in
  let b = Pblob.of_string store "hello " in
  let b = Pblob.append b "world" in
  check string_ "appended" "hello world" (Pblob.to_string b)

let test_blob_diff () =
  let store = Mem_store.create () in
  let s = random_text 200_000 in
  let b1 = Pblob.of_string store s in
  let b2 = Pblob.splice b1 ~pos:100_000 ~remove:10 ~insert:"0123456789AB" in
  (match Pblob.diff b1 b2 with
   | None -> Alcotest.fail "expected a diff"
   | Some d ->
     (* Chunk-aligned window containing the edit; it must be local. *)
     check bool_ "old window contains edit" true
       (d.Pblob.old_pos <= 100_000 && d.Pblob.old_pos + d.Pblob.old_len >= 100_010);
     check bool_ "length delta" true
       (d.Pblob.new_len - d.Pblob.old_len = 2);
     check bool_ "window local" true (d.Pblob.old_len < 200_000 / 4));
  check bool_ "equal blobs" true (Pblob.diff b1 b1 = None)

let test_blob_chunk_sizes () =
  let store = Mem_store.create () in
  let b = Pblob.of_string store (random_text 400_000) in
  let sizes = Pblob.leaf_sizes b in
  let mean =
    float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes)
  in
  (* Expected ~4096 (q = 12). *)
  check bool_ (Printf.sprintf "mean chunk %.0f" mean) true
    (mean > 1000.0 && mean < 16000.0)

let test_blob_tamper_detection () =
  let store, handle = Mem_store.create_with_handle () in
  let b = Pblob.of_string store (random_text 50_000) in
  let victim = List.nth (Pblob.node_hashes b) 2 in
  ignore
    (Mem_store.tamper handle victim ~f:(fun s ->
         let bs = Bytes.of_string s in
         Bytes.set bs (Bytes.length bs - 1) 'X';
         Bytes.to_string bs));
  check bool_ "tamper detected" true (Result.is_error (Pblob.validate b))

(* ---------------- Plist ---------------- *)

let mk_items n = List.init n (fun i -> Printf.sprintf "item-%05d:%d" i (i * i mod 911))

let test_list_empty () =
  let store = Mem_store.create () in
  let l = Plist.of_list store [] in
  check bool_ "empty" true (Plist.is_empty l);
  check int_ "length" 0 (Plist.length l);
  check bool_ "get" true (Plist.get l 0 = None);
  check bool_ "validate" true (Plist.validate l = Ok ())

let test_list_roundtrip () =
  let store = Mem_store.create () in
  let items = mk_items 10_000 in
  let l = Plist.of_list store items in
  check int_ "length" 10_000 (Plist.length l);
  check bool_ "to_list" true (Plist.to_list l = items);
  check bool_ "get 0" true (Plist.get l 0 = Some (List.hd items));
  check bool_ "get mid" true (Plist.get l 5000 = Some (List.nth items 5000));
  check bool_ "get last" true (Plist.get l 9999 = Some (List.nth items 9999));
  check bool_ "get oob" true (Plist.get l 10_000 = None);
  check bool_ "get negative" true (Plist.get l (-1) = None);
  check bool_ "validate" true (Plist.validate l = Ok ())

let test_list_empty_elements () =
  (* Zero-length elements are legal. *)
  let store = Mem_store.create () in
  let items = [ ""; "a"; ""; ""; "b" ] in
  let l = Plist.of_list store items in
  check bool_ "roundtrip" true (Plist.to_list l = items);
  check bool_ "get empty" true (Plist.get l 2 = Some "")

let test_list_splice_equals_rebuild () =
  let store = Mem_store.create () in
  let items = mk_items 5000 in
  let l = Plist.of_list store items in
  let cases =
    [ (0, 0, [ "front" ]);
      (2500, 1, [ "replaced" ]);
      (5000, 0, [ "appended"; "twice" ]);
      (1000, 500, []);
      (0, 5000, [ "everything"; "replaced" ]) ]
  in
  List.iter
    (fun (pos, remove, insert) ->
      let expected =
        List.filteri (fun i _ -> i < pos) items
        @ insert
        @ List.filteri (fun i _ -> i >= pos + remove) items
      in
      let spliced = Plist.splice l ~pos ~remove ~insert in
      check bool_
        (Printf.sprintf "splice(%d,%d) bit-identical" pos remove)
        true
        (list_roots_equal spliced (Plist.of_list store expected));
      check bool_ "validate" true (Plist.validate spliced = Ok ()))
    cases

let test_list_set_push () =
  let store = Mem_store.create () in
  let l = Plist.of_list store [ "a"; "b"; "c" ] in
  let l2 = Plist.set l 1 "B" in
  check bool_ "set" true (Plist.to_list l2 = [ "a"; "B"; "c" ]);
  let l3 = Plist.push_back l2 "d" in
  check bool_ "push" true (Plist.to_list l3 = [ "a"; "B"; "c"; "d" ]);
  Alcotest.check_raises "set oob" (Invalid_argument "Plist.set: out of bounds")
    (fun () -> ignore (Plist.set l 3 "x"))

let test_list_diff () =
  let store = Mem_store.create () in
  let items = mk_items 8000 in
  let l1 = Plist.of_list store items in
  let l2 = Plist.set l1 4000 "REPLACED" in
  (match Plist.diff l1 l2 with
   | None -> Alcotest.fail "expected diff"
   | Some d ->
     check int_ "old_pos" 4000 d.Plist.old_pos;
     check int_ "old_len" 1 d.Plist.old_len;
     check int_ "new_len" 1 d.Plist.new_len);
  check bool_ "self" true (Plist.diff l1 l1 = None);
  (* Insertion shifts. *)
  let l3 = Plist.splice l1 ~pos:100 ~remove:0 ~insert:[ "x"; "y" ] in
  match Plist.diff l1 l3 with
  | None -> Alcotest.fail "expected diff"
  | Some d ->
    check int_ "insert old_len" 0 d.Plist.old_len;
    check int_ "insert new_len" 2 d.Plist.new_len;
    check int_ "insert pos" 100 d.Plist.old_pos

let test_list_order_sensitivity () =
  (* Unlike maps, lists are positional: different orders are different
     lists with different roots. *)
  let store = Mem_store.create () in
  let l1 = Plist.of_list store [ "a"; "b" ] in
  let l2 = Plist.of_list store [ "b"; "a" ] in
  check bool_ "order matters" false (list_roots_equal l1 l2)

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"blob: of_string/to_string roundtrip" ~count:50
      (string_gen_of_size (Gen.int_range 0 5000) Gen.char)
      (fun s ->
        let store = Mem_store.create () in
        String.equal (Pblob.to_string (Pblob.of_string store s)) s);
    Test.make ~name:"blob: splice = rebuild" ~count:50
      (quad
         (string_gen_of_size (Gen.int_range 0 3000) Gen.char)
         (int_bound 3000) (int_bound 500)
         (string_gen_of_size (Gen.int_range 0 200) Gen.char))
      (fun (s, pos, remove, insert) ->
        let store = Mem_store.create () in
        let pos = min pos (String.length s) in
        let remove = min remove (String.length s - pos) in
        let b = Pblob.of_string store s in
        let expected =
          String.sub s 0 pos ^ insert
          ^ String.sub s (pos + remove) (String.length s - pos - remove)
        in
        Option.equal Hash.equal
          (Pblob.root (Pblob.splice b ~pos ~remove ~insert))
          (Pblob.root (Pblob.of_string store expected)));
    Test.make ~name:"list: splice = rebuild" ~count:50
      (quad
         (list_of_size (Gen.int_range 0 200) (string_gen_of_size (Gen.int_range 0 12) Gen.printable))
         (int_bound 200) (int_bound 50)
         (list_of_size (Gen.int_range 0 20) (string_gen_of_size (Gen.int_range 0 12) Gen.printable)))
      (fun (items, pos, remove, insert) ->
        let store = Mem_store.create () in
        let n = List.length items in
        let pos = min pos n in
        let remove = min remove (n - pos) in
        let l = Plist.of_list store items in
        let expected =
          List.filteri (fun i _ -> i < pos) items
          @ insert
          @ List.filteri (fun i _ -> i >= pos + remove) items
        in
        Option.equal Hash.equal
          (Plist.root (Plist.splice l ~pos ~remove ~insert))
          (Plist.root (Plist.of_list store expected)))
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "blob empty" `Quick test_blob_empty;
      Alcotest.test_case "blob roundtrip" `Quick test_blob_roundtrip;
      Alcotest.test_case "blob read" `Quick test_blob_read;
      Alcotest.test_case "blob determinism" `Quick test_blob_determinism;
      Alcotest.test_case "blob splice = rebuild" `Quick
        test_blob_splice_equals_rebuild;
      Alcotest.test_case "blob splice oob" `Quick test_blob_splice_oob;
      Alcotest.test_case "blob splice locality" `Slow
        test_blob_splice_locality;
      Alcotest.test_case "blob append" `Quick test_blob_append;
      Alcotest.test_case "blob diff" `Quick test_blob_diff;
      Alcotest.test_case "blob chunk sizes" `Quick test_blob_chunk_sizes;
      Alcotest.test_case "blob tamper detection" `Quick
        test_blob_tamper_detection;
      Alcotest.test_case "list empty" `Quick test_list_empty;
      Alcotest.test_case "list roundtrip" `Quick test_list_roundtrip;
      Alcotest.test_case "list empty elements" `Quick
        test_list_empty_elements;
      Alcotest.test_case "list splice = rebuild" `Quick
        test_list_splice_equals_rebuild;
      Alcotest.test_case "list set/push" `Quick test_list_set_push;
      Alcotest.test_case "list diff" `Quick test_list_diff;
      Alcotest.test_case "list order sensitivity" `Quick
        test_list_order_sensitivity ]
