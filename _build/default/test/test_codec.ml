(* Binary codec: roundtrips, canonical-form enforcement, truncation and
   garbage rejection. *)

open Fb_codec

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let roundtrip enc dec v = Codec.of_string dec (Codec.to_string enc v)

let test_varint_values () =
  List.iter
    (fun v ->
      check bool_ (string_of_int v) true
        (roundtrip Codec.varint Codec.read_varint v = Ok v))
    [ 0; 1; 127; 128; 255; 256; 16383; 16384; 1 lsl 20; 1 lsl 40; max_int ]

let test_varint_encoding_bytes () =
  check string_ "0" "\x00" (Codec.to_string Codec.varint 0);
  check string_ "127" "\x7f" (Codec.to_string Codec.varint 127);
  check string_ "128" "\x80\x01" (Codec.to_string Codec.varint 128);
  check string_ "300" "\xac\x02" (Codec.to_string Codec.varint 300)

let test_varint_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Codec.varint: negative")
    (fun () -> ignore (Codec.to_string Codec.varint (-1)))

let test_varint_non_minimal () =
  (* 0x80 0x00 is a non-minimal zero. *)
  check bool_ "non-minimal rejected" true
    (Result.is_error (Codec.of_string Codec.read_varint "\x80\x00"))

let test_varint_truncated () =
  check bool_ "truncated" true
    (Result.is_error (Codec.of_string Codec.read_varint "\x80"))

let test_zigzag () =
  List.iter
    (fun v ->
      check bool_ (string_of_int v) true
        (roundtrip Codec.zigzag Codec.read_zigzag v = Ok v))
    [ 0; -1; 1; -64; 64; min_int / 2; max_int / 2; -1000000; 1000000 ]

let test_fixed_width () =
  List.iter
    (fun v ->
      check bool_ (Int64.to_string v) true
        (roundtrip Codec.i64 Codec.read_i64 v = Ok v))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x0123456789abcdefL ];
  List.iter
    (fun v ->
      check bool_ (string_of_float v) true
        (roundtrip Codec.f64 Codec.read_f64 v = Ok v))
    [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; 1e300; Float.min_float ];
  (* NaN round-trips bit-exactly. *)
  (match roundtrip Codec.f64 Codec.read_f64 nan with
   | Ok v -> check bool_ "nan" true (Float.is_nan v)
   | Error _ -> Alcotest.fail "nan roundtrip")

let test_bool () =
  check bool_ "true" true (roundtrip Codec.bool Codec.read_bool true = Ok true);
  check bool_ "false" true
    (roundtrip Codec.bool Codec.read_bool false = Ok false);
  check bool_ "bad byte" true
    (Result.is_error (Codec.of_string Codec.read_bool "\x02"))

let test_bytes () =
  List.iter
    (fun s ->
      check bool_ "bytes" true
        (roundtrip Codec.bytes Codec.read_bytes s = Ok s))
    [ ""; "a"; String.make 1000 'x'; "\x00\xff" ]

let test_list () =
  let enc w l = Codec.list w Codec.bytes l in
  let dec r = Codec.read_list r Codec.read_bytes in
  List.iter
    (fun l -> check bool_ "list" true (roundtrip enc dec l = Ok l))
    [ []; [ "a" ]; [ "x"; ""; "yy" ]; List.init 100 string_of_int ];
  (* A huge claimed count must not allocate. *)
  check bool_ "hostile count" true
    (Result.is_error (Codec.of_string dec "\xff\xff\xff\xff\x07"))

let test_trailing_garbage () =
  check bool_ "trailing" true
    (Result.is_error (Codec.of_string Codec.read_u8 "\x01\x02"))

let test_hash_codec () =
  let h = Fb_hash.Hash.of_string "x" in
  check bool_ "hash roundtrip" true
    (roundtrip Codec.hash Codec.read_hash h = Ok h)

let test_reader_positions () =
  let r = Codec.reader "\x01\x02\x03" in
  check int_ "pos0" 0 (Codec.pos r);
  ignore (Codec.read_u8 r);
  check int_ "pos1" 1 (Codec.pos r);
  check int_ "remaining" 2 (Codec.remaining r);
  ignore (Codec.read_raw r 2);
  Codec.expect_end r

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"varint roundtrip" ~count:500 (int_bound max_int)
      (fun v -> roundtrip Codec.varint Codec.read_varint v = Ok v);
    Test.make ~name:"zigzag roundtrip" ~count:500 int (fun v ->
        roundtrip Codec.zigzag Codec.read_zigzag v = Ok v);
    Test.make ~name:"bytes roundtrip" ~count:500 (string_gen Gen.char)
      (fun s -> roundtrip Codec.bytes Codec.read_bytes s = Ok s);
    Test.make ~name:"decoder never raises on garbage" ~count:500
      (string_gen Gen.char)
      (fun s ->
        (* Any input either decodes or errors; no exceptions escape. *)
        match
          Codec.of_string
            (fun r ->
              let _ = Codec.read_varint r in
              let _ = Codec.read_bytes r in
              Codec.read_list r Codec.read_bytes)
            s
        with
        | Ok _ | Error _ -> true)
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "varint values" `Quick test_varint_values;
      Alcotest.test_case "varint encoding" `Quick test_varint_encoding_bytes;
      Alcotest.test_case "varint negative" `Quick test_varint_negative;
      Alcotest.test_case "varint non-minimal" `Quick test_varint_non_minimal;
      Alcotest.test_case "varint truncated" `Quick test_varint_truncated;
      Alcotest.test_case "zigzag" `Quick test_zigzag;
      Alcotest.test_case "fixed width" `Quick test_fixed_width;
      Alcotest.test_case "bool" `Quick test_bool;
      Alcotest.test_case "bytes" `Quick test_bytes;
      Alcotest.test_case "list" `Quick test_list;
      Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
      Alcotest.test_case "hash" `Quick test_hash_codec;
      Alcotest.test_case "reader positions" `Quick test_reader_positions ]
