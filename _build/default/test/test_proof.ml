(* Merkle entry proofs: POS-Tree level and Forkbase level, including
   forgery attempts. *)

module Pmap = Fb_postree.Pmap
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash
module FB = Fb_core.Forkbase
module Errors = Fb_core.Errors
module Value = Fb_types.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let mk_tree n =
  let store = Mem_store.create () in
  let bindings =
    List.init n (fun i -> (Printf.sprintf "key-%06d" i, Printf.sprintf "val-%d" i))
  in
  (Pmap.of_bindings store bindings, bindings)

(* ---------------- tree-level proofs ---------------- *)

let test_membership_proof () =
  let t, bindings = mk_tree 10_000 in
  let root = Option.get (Pmap.root t) in
  List.iter
    (fun i ->
      let k, v = List.nth bindings i in
      match Pmap.prove t k with
      | Error e -> Alcotest.fail e
      | Ok proof -> (
        (* Proof is small: O(log N) chunks, not the tree. *)
        check bool_ "short proof" true
          (List.length proof <= Pmap.height t);
        match Pmap.verify_proof ~root k proof with
        | Ok (Some e) ->
          check bool_ "entry" true
            (String.equal e.Pmap.key k && String.equal e.Pmap.value v)
        | Ok None -> Alcotest.fail "proven absent but present"
        | Error e -> Alcotest.fail e))
    [ 0; 1; 5000; 9999 ]

let test_absence_proof () =
  let t, _ = mk_tree 5000 in
  let root = Option.get (Pmap.root t) in
  List.iter
    (fun k ->
      match Pmap.prove t k with
      | Error e -> Alcotest.fail e
      | Ok proof -> (
        match Pmap.verify_proof ~root k proof with
        | Ok None -> ()
        | Ok (Some _) -> Alcotest.fail "absent key proven present"
        | Error e -> Alcotest.fail e))
    [ "aaaa"; "key-002500x"; "zzzz" ]

let test_proof_rejects_forgery () =
  let t, _ = mk_tree 5000 in
  let root = Option.get (Pmap.root t) in
  let proof = Result.get_ok (Pmap.prove t "key-002500") in
  (* Flip a byte anywhere in any chunk: verification must fail. *)
  List.iteri
    (fun i _raw ->
      let forged =
        List.mapi
          (fun j r ->
            if i <> j then r
            else begin
              let b = Bytes.of_string r in
              let p = Bytes.length b / 2 in
              Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 1));
              Bytes.to_string b
            end)
          proof
      in
      check bool_
        (Printf.sprintf "forged chunk %d rejected" i)
        true
        (Result.is_error (Pmap.verify_proof ~root "key-002500" forged)))
    proof;
  (* Wrong root, truncated path, trailing garbage. *)
  check bool_ "wrong root" true
    (Result.is_error
       (Pmap.verify_proof ~root:(Hash.of_string "other") "key-002500" proof));
  check bool_ "truncated" true
    (Result.is_error
       (Pmap.verify_proof ~root "key-002500"
          (List.filteri (fun i _ -> i < List.length proof - 1) proof)));
  check bool_ "empty" true
    (Result.is_error (Pmap.verify_proof ~root "key-002500" []));
  (* A valid proof for one key must not authenticate a different key's
     value (routing is re-derived by the verifier). *)
  match Pmap.verify_proof ~root "key-000000" proof with
  | Ok (Some _) -> Alcotest.fail "cross-key proof accepted"
  | Ok None | Error _ -> ()

let test_proof_single_leaf_tree () =
  let store = Mem_store.create () in
  let t = Pmap.of_bindings store [ ("a", "1"); ("b", "2") ] in
  let root = Option.get (Pmap.root t) in
  let proof = Result.get_ok (Pmap.prove t "a") in
  check int_ "one chunk" 1 (List.length proof);
  check bool_ "verifies" true
    (match Pmap.verify_proof ~root "a" proof with
     | Ok (Some e) -> e.Pmap.value = "1"
     | _ -> false)

(* ---------------- positional (list) proofs ---------------- *)

let test_list_positional_proofs () =
  let store = Mem_store.create () in
  let items = List.init 20_000 (Printf.sprintf "element-%05d") in
  let l = Fb_postree.Plist.of_list store items in
  let root = Option.get (Fb_postree.Plist.root l) in
  List.iter
    (fun n ->
      match Fb_postree.Plist.prove l n with
      | Error e -> Alcotest.fail e
      | Ok proof -> (
        match Fb_postree.Plist.verify_proof ~root n proof with
        | Ok (Some e) ->
          check bool_ (Printf.sprintf "element %d" n) true
            (String.equal e (List.nth items n))
        | Ok None -> Alcotest.fail "in-range proven absent"
        | Error e -> Alcotest.fail e))
    [ 0; 1; 9_999; 19_999 ];
  (* Out of range: provable. *)
  (match Fb_postree.Plist.prove l 20_000 with
   | Error e -> Alcotest.fail e
   | Ok proof -> (
     match Fb_postree.Plist.verify_proof ~root 20_000 proof with
     | Ok None -> ()
     | _ -> Alcotest.fail "out-of-range not proven"));
  (* Forgery rejected. *)
  let proof = Result.get_ok (Fb_postree.Plist.prove l 10_000) in
  let forged =
    List.mapi
      (fun i raw ->
        if i <> 1 then raw
        else begin
          let b = Bytes.of_string raw in
          Bytes.set b (Bytes.length b - 1)
            (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
          Bytes.to_string b
        end)
      proof
  in
  check bool_ "forged rejected" true
    (Result.is_error (Fb_postree.Plist.verify_proof ~root 10_000 forged));
  check bool_ "wrong index wrong answer impossible" true
    (match Fb_postree.Plist.verify_proof ~root 0 proof with
     | Ok (Some _) -> false (* proof for 10000 cannot serve index 0 *)
     | _ -> true)

(* ---------------- blob byte-range proofs ---------------- *)

let test_blob_range_proofs () =
  let store = Mem_store.create () in
  let rng = Fb_hash.Prng.create 9L in
  let content =
    String.init 300_000 (fun _ -> Char.chr (32 + Fb_hash.Prng.next_int rng 95))
  in
  let b = Fb_postree.Pblob.of_string store content in
  let root = Option.get (Fb_postree.Pblob.root b) in
  List.iter
    (fun (pos, len) ->
      match Fb_postree.Pblob.prove b ~pos ~len with
      | Error e -> Alcotest.fail e
      | Ok proof -> (
        (* The proof is much smaller than the blob for small ranges. *)
        let size = List.fold_left (fun a c -> a + String.length c) 0 proof in
        if len < 1000 then
          check bool_ (Printf.sprintf "compact (%d bytes)" size) true
            (size < 60_000);
        match Fb_postree.Pblob.verify_proof ~root ~pos ~len proof with
        | Ok bytes ->
          check bool_
            (Printf.sprintf "range [%d,+%d)" pos len)
            true
            (String.equal bytes (String.sub content pos len))
        | Error e -> Alcotest.fail e))
    [ (0, 10); (150_000, 256); (299_990, 10); (0, 300_000); (123, 0) ];
  (* Out of range refused at prove and at verify. *)
  check bool_ "prove oob" true
    (Result.is_error (Fb_postree.Pblob.prove b ~pos:299_999 ~len:2));
  (* Forged content rejected. *)
  let proof = Result.get_ok (Fb_postree.Pblob.prove b ~pos:1000 ~len:50) in
  let forged =
    List.mapi
      (fun i raw ->
        if i <> List.length proof - 1 then raw
        else begin
          let bts = Bytes.of_string raw in
          Bytes.set bts 20 (Char.chr (Char.code (Bytes.get bts 20) lxor 1));
          Bytes.to_string bts
        end)
      proof
  in
  check bool_ "forged rejected" true
    (Result.is_error
       (Fb_postree.Pblob.verify_proof ~root ~pos:1000 ~len:50 forged));
  (* A proof cannot serve a range beyond the chunks it carries (a small
     extension may land inside the same authenticated leaf, which is sound;
     a large one cannot). *)
  check bool_ "range extension rejected" true
    (Result.is_error
       (Fb_postree.Pblob.verify_proof ~root ~pos:1000 ~len:150_000 proof))

(* ---------------- forkbase-level proofs ---------------- *)

let test_entry_proof_roundtrip () =
  let fb = FB.create (Mem_store.create ()) in
  ignore
    (ok (FB.import_csv fb ~key:"ledger" "account,balance\nalice,100\nbob,50\n"));
  let uid = ok (FB.head fb ~key:"ledger") in
  let proof = ok (FB.prove_entry fb ~key:"ledger" ~entry_key:"alice") in
  (* Transportable. *)
  let proof =
    ok (FB.decode_entry_proof (FB.encode_entry_proof proof))
  in
  (match FB.verify_entry_proof ~uid ~key:"ledger" ~entry_key:"alice" proof with
   | Ok (Some row_bytes) -> (
     match Fb_types.Table.decode_row row_bytes with
     | Ok [ _; Fb_types.Primitive.Int 100L ] -> ()
     | _ -> Alcotest.fail "wrong row proven")
   | Ok None -> Alcotest.fail "alice proven absent"
   | Error e -> Alcotest.fail (Errors.to_string e));
  (* Absence. *)
  let pnone = ok (FB.prove_entry fb ~key:"ledger" ~entry_key:"mallory") in
  (match FB.verify_entry_proof ~uid ~key:"ledger" ~entry_key:"mallory" pnone with
   | Ok None -> ()
   | _ -> Alcotest.fail "mallory not proven absent");
  (* Wrong uid (e.g. an older version) must reject. *)
  ignore (ok (FB.import_csv fb ~key:"ledger" "account,balance\nalice,999\nbob,50\n"));
  let uid2 = ok (FB.head fb ~key:"ledger") in
  check bool_ "stale proof rejected" true
    (Result.is_error
       (FB.verify_entry_proof ~uid:uid2 ~key:"ledger" ~entry_key:"alice" proof));
  (* Wrong object key rejected. *)
  check bool_ "wrong key rejected" true
    (Result.is_error
       (FB.verify_entry_proof ~uid ~key:"other" ~entry_key:"alice" proof))

let test_entry_proof_on_map_value () =
  let fb = FB.create (Mem_store.create ()) in
  let store = FB.store fb in
  ignore
    (ok
       (FB.put fb ~key:"conf"
          (Value.map_of_bindings store
             (List.init 3000 (fun i -> (Printf.sprintf "opt%05d" i, "on"))))));
  let uid = ok (FB.head fb ~key:"conf") in
  let proof = ok (FB.prove_entry fb ~key:"conf" ~entry_key:"opt01500") in
  (match FB.verify_entry_proof ~uid ~key:"conf" ~entry_key:"opt01500" proof with
   | Ok (Some v) -> check bool_ "map value" true (String.equal v "on")
   | _ -> Alcotest.fail "map entry not proven");
  (* Proof bytes are tiny compared to the value. *)
  check bool_ "compact" true
    (String.length (FB.encode_entry_proof proof) < 30_000)

let test_entry_proof_wrong_type () =
  let fb = FB.create (Mem_store.create ()) in
  ignore (ok (FB.put fb ~key:"s" (Value.string "scalar")));
  match FB.prove_entry fb ~key:"s" ~entry_key:"x" with
  | Error (Errors.Type_mismatch _) -> ()
  | _ -> Alcotest.fail "expected type mismatch"

let qcheck_cases =
  let open QCheck in
  [ Test.make ~name:"proofs verify for every key" ~count:25
      (list_of_size (Gen.int_range 1 120)
         (pair (string_gen_of_size (Gen.int_range 1 8) Gen.printable)
            (string_gen_of_size (Gen.int_range 0 8) Gen.printable)))
      (fun bindings ->
        let store = Mem_store.create () in
        let t = Pmap.of_bindings store bindings in
        let root = Option.get (Pmap.root t) in
        List.for_all
          (fun (k, _) ->
            match Pmap.prove t k with
            | Error _ -> false
            | Ok proof -> (
              match Pmap.verify_proof ~root k proof with
              | Ok (Some e) ->
                (* last-wins duplicate semantics *)
                Pmap.find_value t k = Some e.Pmap.value
              | _ -> false))
          bindings) ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "membership proof" `Quick test_membership_proof;
      Alcotest.test_case "absence proof" `Quick test_absence_proof;
      Alcotest.test_case "proof rejects forgery" `Quick
        test_proof_rejects_forgery;
      Alcotest.test_case "single-leaf proof" `Quick
        test_proof_single_leaf_tree;
      Alcotest.test_case "list positional proofs" `Quick
        test_list_positional_proofs;
      Alcotest.test_case "blob range proofs" `Quick test_blob_range_proofs;
      Alcotest.test_case "entry proof roundtrip" `Quick
        test_entry_proof_roundtrip;
      Alcotest.test_case "entry proof on map" `Quick
        test_entry_proof_on_map_value;
      Alcotest.test_case "entry proof wrong type" `Quick
        test_entry_proof_wrong_type ]
