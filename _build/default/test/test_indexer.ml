(* Auto-maintained secondary indexes following a branch. *)

module FB = Fb_core.Forkbase
module Indexer = Fb_core.Indexer
module Errors = Fb_core.Errors
module Dataset = Fb_core.Dataset
module Primitive = Fb_types.Primitive

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let test_follows_branch () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore
    (ok (FB.import_csv fb ~key:"cities"
           "id,city\n1,tokyo\n2,delhi\n3,tokyo\n"));
  let idx = ok (Indexer.attach fb ~key:"cities" ~column:"city") in
  check int_ "initial" 2 (Indexer.count idx (Primitive.String "tokyo"));
  (* Subsequent puts keep the index current automatically. *)
  ignore
    (ok (FB.import_csv fb ~key:"cities"
           "id,city\n1,tokyo\n2,tokyo\n3,tokyo\n4,osaka\n"));
  check int_ "after update" 3 (Indexer.count idx (Primitive.String "tokyo"));
  check int_ "new value" 1 (Indexer.count idx (Primitive.String "osaka"));
  check int_ "gone value" 0 (Indexer.count idx (Primitive.String "delhi"));
  let rows = ok (Indexer.lookup fb idx (Primitive.String "tokyo")) in
  check int_ "lookup rows" 3 (List.length rows);
  check bool_ "healthy" true (Indexer.healthy idx);
  (* Detach: further puts stop updating. *)
  Indexer.detach fb idx;
  ignore (ok (FB.import_csv fb ~key:"cities" "id,city\n1,kyoto\n"));
  check int_ "frozen after detach" 3
    (Indexer.count idx (Primitive.String "tokyo"))

let test_branch_isolation () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (FB.import_csv fb ~key:"d" "id,g\n1,x\n2,y\n"));
  ignore (ok (FB.fork fb ~key:"d" ~new_branch:"dev"));
  let idx = ok (Indexer.attach ~branch:"dev" fb ~key:"d" ~column:"g") in
  (* Master movement must not touch a dev-attached index. *)
  ignore (ok (FB.import_csv fb ~key:"d" "id,g\n1,x\n2,x\n3,x\n"));
  check int_ "dev index unchanged" 1 (Indexer.count idx (Primitive.String "x"));
  ignore (ok (FB.import_csv fb ~key:"d" ~branch:"dev" "id,g\n1,y\n2,y\n"));
  check int_ "dev index follows dev" 0
    (Indexer.count idx (Primitive.String "x"));
  check int_ "ys" 2 (Indexer.count idx (Primitive.String "y"));
  Indexer.detach fb idx

let test_breaks_gracefully () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (FB.import_csv fb ~key:"d" "id,g\n1,x\n"));
  let idx = ok (Indexer.attach fb ~key:"d" ~column:"g") in
  (* The key stops being a table: the index marks itself broken instead of
     raising inside the watcher. *)
  ignore (ok (FB.put fb ~key:"d" (Fb_types.Value.string "not a table")));
  check bool_ "unhealthy" false (Indexer.healthy idx);
  check bool_ "lookup fails" true
    (Result.is_error (Indexer.lookup fb idx (Primitive.String "x")));
  Indexer.detach fb idx;
  (* Attaching to a non-table or missing column fails up front. *)
  check bool_ "attach non-table" true
    (Result.is_error (Indexer.attach fb ~key:"d" ~column:"g"));
  ignore (ok (FB.import_csv fb ~key:"t" "id,v\n1,a\n"));
  check bool_ "attach bad column" true
    (Result.is_error (Indexer.attach fb ~key:"t" ~column:"zz"))

let test_row_level_ops_maintain () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (FB.import_csv fb ~key:"d" "id,g\n1,a\n2,b\n"));
  let idx = ok (Indexer.attach fb ~key:"d" ~column:"g") in
  ignore
    (ok (Dataset.update_cell fb ~key:"d" ~row:"2" ~column:"g"
           (Primitive.String "a")));
  check int_ "after cell update" 2 (Indexer.count idx (Primitive.String "a"));
  ignore (ok (Dataset.delete_rows fb ~key:"d" [ "1" ]));
  check int_ "after delete" 1 (Indexer.count idx (Primitive.String "a"));
  Indexer.detach fb idx

let suite =
  [ Alcotest.test_case "follows branch" `Quick test_follows_branch;
    Alcotest.test_case "branch isolation" `Quick test_branch_isolation;
    Alcotest.test_case "breaks gracefully" `Quick test_breaks_gracefully;
    Alcotest.test_case "row-level ops maintain" `Quick
      test_row_level_ops_maintain ]
