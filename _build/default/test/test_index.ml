(* Secondary indexes, order-preserving key encodings, and table
   aggregation. *)

module Table = Fb_types.Table
module Table_index = Fb_types.Table_index
module Schema = Fb_types.Schema
module Primitive = Fb_types.Primitive
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let col name ty = { Schema.name; ty }

let schema () =
  Schema.v_exn
    [ col "id" Schema.T_int; col "city" Schema.T_string;
      col "pop" Schema.T_int ]

let row id city pop =
  [ Primitive.Int (Int64.of_int id); Primitive.String city;
    Primitive.Int (Int64.of_int pop) ]

let sample_table () =
  let store = Mem_store.create () in
  let t = Table.create store (schema ()) in
  List.fold_left Table.insert_exn t
    [ row 1 "tokyo" 37; row 2 "delhi" 29; row 3 "tokyo" 37;
      row 4 "shanghai" 26; row 5 "delhi" 31; row 6 "osaka" 19 ]

(* ---------------- sortable keys ---------------- *)

let test_sortable_key_order () =
  let values =
    [ Primitive.Null; Primitive.Bool false; Primitive.Bool true;
      Primitive.Int Int64.min_int; Primitive.Int (-7L); Primitive.Int 0L;
      Primitive.Int 7L; Primitive.Int Int64.max_int;
      Primitive.Float neg_infinity; Primitive.Float (-2.5);
      Primitive.Float (-0.0); Primitive.Float 0.0; Primitive.Float 1.5;
      Primitive.Float infinity; Primitive.String ""; Primitive.String "a";
      Primitive.String "ab"; Primitive.String "b" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = compare (Primitive.sortable_key a) (Primitive.sortable_key b) in
          let expected = Primitive.compare a b in
          (* -0.0 and 0.0 have distinct sortable keys but compare equal via
             Float.compare? (Float.compare (-0.) 0. = -1, consistent.) *)
          check bool_
            (Format.asprintf "%a vs %a" Primitive.pp a Primitive.pp b)
            true
            (compare c 0 = compare expected 0))
        values)
    values

(* ---------------- index build and lookup ---------------- *)

let test_index_lookup () =
  let t = sample_table () in
  match Table_index.build t ~column:"city" with
  | Error e -> Alcotest.fail e
  | Ok idx ->
    check int_ "cardinal" 6 (Table_index.cardinal idx);
    check bool_ "lookup keys" true
      (Table_index.lookup_keys idx (Primitive.String "tokyo") = [ "1"; "3" ]);
    check int_ "lookup rows" 2
      (List.length (Table_index.lookup idx t (Primitive.String "tokyo")));
    check int_ "count" 2 (Table_index.count idx (Primitive.String "delhi"));
    check int_ "count absent" 0
      (Table_index.count idx (Primitive.String "paris"));
    check bool_ "lookup absent" true
      (Table_index.lookup idx t (Primitive.String "paris") = []);
    check bool_ "validate" true (Table_index.validate idx = Ok ());
    check bool_ "unknown column" true
      (Result.is_error (Table_index.build t ~column:"nope"))

let test_index_numeric_range () =
  let t = sample_table () in
  let idx = Result.get_ok (Table_index.build t ~column:"pop") in
  let keys_between lo hi =
    List.map snd
      (Table_index.range_keys ~lo:(Primitive.Int lo) ~hi:(Primitive.Int hi) idx)
  in
  (* pop in [26, 31]: shanghai(26), delhi(29), delhi(31). *)
  check bool_ "range" true (keys_between 26L 31L = [ "4"; "2"; "5" ]);
  (* Ordered scan over everything: ascending pop. *)
  let all = Table_index.range_keys idx in
  check bool_ "ordered" true
    (List.map (fun (v, _) -> v) all
     = List.sort Primitive.compare (List.map (fun (v, _) -> v) all))

let test_index_incremental_maintenance () =
  let t1 = sample_table () in
  let idx1 = Result.get_ok (Table_index.build t1 ~column:"city") in
  (* Change the table: move row 6 to tokyo, delete row 2, add row 7. *)
  let t2 = Table.insert_exn (Table.delete t1 "2") (row 6 "tokyo" 19) in
  let t2 = Table.insert_exn t2 (row 7 "delhi" 12) in
  let changes = Result.get_ok (Table.diff t1 t2) in
  match Table_index.apply_changes idx1 t2 changes with
  | Error e -> Alcotest.fail e
  | Ok idx2 ->
    (* Incrementally maintained index is bit-identical to a fresh build:
       structural invariance extends to derived data. *)
    let fresh = Result.get_ok (Table_index.build t2 ~column:"city") in
    check bool_ "incremental = rebuild" true
      (Option.equal Hash.equal (Table_index.root idx2)
         (Table_index.root fresh));
    check bool_ "tokyo grew" true
      (Table_index.lookup_keys idx2 (Primitive.String "tokyo")
       = [ "1"; "3"; "6" ]);
    check int_ "delhi rotated" 2
      (Table_index.count idx2 (Primitive.String "delhi"))

let test_index_versions_share_pages () =
  (* Index versions of lightly-edited tables share pages like their
     tables do. *)
  let store = Mem_store.create () in
  let t = Table.create store (schema ()) in
  let t1 =
    List.fold_left Table.insert_exn t
      (List.init 5000 (fun i -> row i (Printf.sprintf "city%d" (i mod 50)) i))
  in
  let idx1 = Result.get_ok (Table_index.build t1 ~column:"city") in
  let before = (Fb_chunk.Store.stats store).Fb_chunk.Store.physical_chunks in
  let t2 = Table.insert_exn t1 (row 2500 "moved" 0) in
  let changes = Result.get_ok (Table.diff t1 t2) in
  let _idx2 = Result.get_ok (Table_index.apply_changes idx1 t2 changes) in
  let created =
    (Fb_chunk.Store.stats store).Fb_chunk.Store.physical_chunks - before
  in
  check bool_ (Printf.sprintf "fresh chunks %d small" created) true
    (created <= 20)

(* Strings containing NULs and separator-looking bytes must not bleed
   between index buckets. *)
let test_index_adversarial_strings () =
  let store = Mem_store.create () in
  let s = Schema.v_exn [ col "id" Schema.T_int; col "v" Schema.T_string ] in
  let t = Table.create store s in
  let mk id v = [ Primitive.Int (Int64.of_int id); Primitive.String v ] in
  let t =
    List.fold_left Table.insert_exn t
      [ mk 1 "a"; mk 2 "a\x00b"; mk 3 "a\x00"; mk 4 "a\x01"; mk 5 "" ]
  in
  let idx = Result.get_ok (Table_index.build t ~column:"v") in
  List.iter
    (fun (v, expect) ->
      check bool_ (Printf.sprintf "bucket %S" v) true
        (Table_index.lookup_keys idx (Primitive.String v) = expect))
    [ ("a", [ "1" ]); ("a\x00b", [ "2" ]); ("a\x00", [ "3" ]);
      ("a\x01", [ "4" ]); ("", [ "5" ]); ("zz", []) ]

(* ---------------- group_by ---------------- *)

let test_group_by () =
  let t = sample_table () in
  match
    Table.group_by t ~by:"city"
      ~targets:[ ("pop", Table.Sum); ("pop", Table.Count); ("pop", Table.Max) ]
  with
  | Error e -> Alcotest.fail e
  | Ok groups ->
    check int_ "group count" 4 (List.length groups);
    let find city = List.assoc (Primitive.String city) groups in
    check bool_ "tokyo sum" true
      (find "tokyo" = [ Primitive.Int 74L; Primitive.Int 2L; Primitive.Int 37L ]);
    check bool_ "delhi sum" true
      (find "delhi" = [ Primitive.Int 60L; Primitive.Int 2L; Primitive.Int 31L ]);
    check bool_ "groups sorted" true
      (List.map fst groups
       = List.sort Primitive.compare (List.map fst groups))

let test_group_by_avg_and_nulls () =
  let store = Mem_store.create () in
  let s = Schema.v_exn [ col "id" Schema.T_int; col "g" Schema.T_string; col "v" Schema.T_float ] in
  let t = Table.create store s in
  let mk id g v =
    [ Primitive.Int (Int64.of_int id); Primitive.String g; v ]
  in
  let t =
    List.fold_left Table.insert_exn t
      [ mk 1 "a" (Primitive.Float 1.0); mk 2 "a" (Primitive.Float 2.0);
        mk 3 "a" Primitive.Null; mk 4 "b" (Primitive.Float 10.0) ]
  in
  match Table.group_by t ~by:"g" ~targets:[ ("v", Table.Avg); ("v", Table.Count) ] with
  | Error e -> Alcotest.fail e
  | Ok groups ->
    check bool_ "avg skips nulls" true
      (List.assoc (Primitive.String "a") groups
       = [ Primitive.Float 1.5; Primitive.Int 2L ]);
    check bool_ "b avg" true
      (List.assoc (Primitive.String "b") groups
       = [ Primitive.Float 10.0; Primitive.Int 1L ])

let test_group_by_errors () =
  let t = sample_table () in
  check bool_ "unknown by" true
    (Result.is_error (Table.group_by t ~by:"zz" ~targets:[]));
  check bool_ "unknown target" true
    (Result.is_error (Table.group_by t ~by:"city" ~targets:[ ("zz", Table.Sum) ]));
  check bool_ "sum over strings" true
    (Result.is_error (Table.group_by t ~by:"pop" ~targets:[ ("city", Table.Sum) ]))

let qcheck_cases =
  let open QCheck in
  let prim =
    make
      (Gen.oneof
         [ Gen.return Primitive.Null;
           Gen.map (fun b -> Primitive.Bool b) Gen.bool;
           Gen.map (fun i -> Primitive.Int (Int64.of_int i)) Gen.int;
           Gen.map (fun f -> Primitive.Float f) Gen.float;
           Gen.map (fun s -> Primitive.String s) (Gen.string_size ~gen:Gen.char (Gen.int_range 0 8)) ])
  in
  [ Test.make ~name:"sortable_key preserves order" ~count:500 (pair prim prim)
      (fun (a, b) ->
        let is_nan = function
          | Primitive.Float f -> Float.is_nan f
          | _ -> false
        in
        is_nan a || is_nan b
        || compare
             (compare (Primitive.sortable_key a) (Primitive.sortable_key b))
             0
           = compare (Primitive.compare a b) 0) ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "sortable key order" `Quick test_sortable_key_order;
      Alcotest.test_case "index lookup" `Quick test_index_lookup;
      Alcotest.test_case "index numeric range" `Quick test_index_numeric_range;
      Alcotest.test_case "index incremental maintenance" `Quick
        test_index_incremental_maintenance;
      Alcotest.test_case "index versions share pages" `Quick
        test_index_versions_share_pages;
      Alcotest.test_case "index adversarial strings" `Quick
        test_index_adversarial_strings;
      Alcotest.test_case "group_by" `Quick test_group_by;
      Alcotest.test_case "group_by avg/nulls" `Quick
        test_group_by_avg_and_nulls;
      Alcotest.test_case "group_by errors" `Quick test_group_by_errors ]
