(* Representation layer: FNodes, version DAG, branch table, tamper-evident
   verification. *)

module Fnode = Fb_repr.Fnode
module Dag = Fb_repr.Dag
module Branch = Fb_repr.Branch
module Verify = Fb_repr.Verify
module Value = Fb_types.Value
module Store = Fb_chunk.Store
module Mem_store = Fb_chunk.Mem_store
module Hash = Fb_hash.Hash

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let mk_fnode ?(key = "k") ?(bases = []) ?(seq = 1) ?(msg = "m") store value =
  let f =
    Fnode.v ~key ~value_descriptor:(Value.descriptor value) ~bases
      ~author:"tester" ~message:msg ~seq
  in
  (f, Fnode.store store f)

(* ---------------- fnode ---------------- *)

let test_fnode_roundtrip () =
  let store = Mem_store.create () in
  let value = Value.string "payload" in
  let f, uid = mk_fnode store value in
  (match Fnode.load store uid with
   | Error e -> Alcotest.fail e
   | Ok f' ->
     check bool_ "key" true (String.equal f'.Fnode.key f.Fnode.key);
     check bool_ "descriptor" true
       (String.equal f'.Fnode.value_descriptor f.Fnode.value_descriptor);
     check bool_ "uid stable" true (Hash.equal (Fnode.uid f') uid));
  match Fnode.load store (Hash.of_string "absent") with
  | Ok _ -> Alcotest.fail "expected missing"
  | Error _ -> ()

let test_fnode_uid_covers_value_and_history () =
  let store = Mem_store.create () in
  let _, u1 = mk_fnode store (Value.string "a") in
  let _, u2 = mk_fnode store (Value.string "b") in
  check bool_ "value in uid" false (Hash.equal u1 u2);
  (* Same value, different history -> different uid. *)
  let _, u3 = mk_fnode ~bases:[ u1 ] ~seq:2 store (Value.string "a") in
  let _, u4 = mk_fnode ~bases:[ u2 ] ~seq:2 store (Value.string "a") in
  check bool_ "history in uid" false (Hash.equal u3 u4);
  (* Same value, same history -> same uid (FNode equality, paper II-D). *)
  let _, u5 = mk_fnode ~bases:[ u1 ] ~seq:2 store (Value.string "a") in
  check bool_ "identical equal" true (Hash.equal u3 u5)

let test_fnode_bases_canonical_order () =
  let store = Mem_store.create () in
  let _, u1 = mk_fnode ~key:"x" store (Value.string "1") in
  let _, u2 = mk_fnode ~key:"y" store (Value.string "2") in
  let f12 = Fnode.v ~key:"m" ~value_descriptor:"" ~bases:[ u1; u2 ]
      ~author:"a" ~message:"" ~seq:3 in
  let f21 = Fnode.v ~key:"m" ~value_descriptor:"" ~bases:[ u2; u1 ]
      ~author:"a" ~message:"" ~seq:3 in
  check bool_ "merge parents order-insensitive" true
    (Hash.equal (Fnode.uid f12) (Fnode.uid f21))

let test_fnode_value_reattach () =
  let store = Mem_store.create () in
  let v = Value.map_of_bindings store [ ("a", "1"); ("b", "2") ] in
  let f, _ = mk_fnode store v in
  match Fnode.value store f with
  | Ok v' -> check bool_ "value" true (Value.equal v v')
  | Error e -> Alcotest.fail e

(* ---------------- dag ---------------- *)

(* Build a small history:  u1 <- u2 <- u4 ; u1 <- u3 ;  u5 = merge(u4,u3) *)
let build_dag store =
  let _, u1 = mk_fnode ~seq:1 ~msg:"v1" store (Value.string "1") in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:2 ~msg:"v2" store (Value.string "2") in
  let _, u3 = mk_fnode ~bases:[ u1 ] ~seq:2 ~msg:"v3" store (Value.string "3") in
  let _, u4 = mk_fnode ~bases:[ u2 ] ~seq:3 ~msg:"v4" store (Value.string "4") in
  let _, u5 =
    mk_fnode ~bases:[ u4; u3 ] ~seq:4 ~msg:"merge" store (Value.string "5")
  in
  (u1, u2, u3, u4, u5)

let test_dag_history () =
  let store = Mem_store.create () in
  let u1, _, _, _, u5 = build_dag store in
  match Dag.history store u5 with
  | Error e -> Alcotest.fail e
  | Ok nodes ->
    check int_ "all ancestors" 5 (List.length nodes);
    check bool_ "newest first" true
      ((List.hd nodes).Fnode.message = "merge");
    check bool_ "oldest last" true
      ((List.nth nodes 4).Fnode.message = "v1");
    (* Limit. *)
    (match Dag.history ~limit:2 store u5 with
     | Ok l -> check int_ "limited" 2 (List.length l)
     | Error e -> Alcotest.fail e);
    match Dag.history store u1 with
    | Ok l -> check int_ "root history" 1 (List.length l)
    | Error e -> Alcotest.fail e

let test_dag_ancestry () =
  let store = Mem_store.create () in
  let u1, u2, u3, u4, u5 = build_dag store in
  let is_anc a d = Dag.is_ancestor store ~ancestor:a d = Ok true in
  check bool_ "u1 anc u5" true (is_anc u1 u5);
  check bool_ "u3 anc u5" true (is_anc u3 u5);
  check bool_ "u5 self" true (is_anc u5 u5);
  check bool_ "u4 not anc u3" false (is_anc u4 u3);
  check bool_ "u2 anc u4" true (is_anc u2 u4)

let test_dag_merge_base () =
  let store = Mem_store.create () in
  let u1, u2, u3, u4, u5 = build_dag store in
  check bool_ "base(u4,u3) = u1" true
    (Dag.merge_base store u4 u3 = Ok (Some u1));
  check bool_ "base(u2,u4) = u2 (ff)" true
    (Dag.merge_base store u2 u4 = Ok (Some u2));
  check bool_ "base(u5,u3) = u3" true
    (Dag.merge_base store u5 u3 = Ok (Some u3));
  (* Unrelated histories. *)
  let _, w = mk_fnode ~key:"other" store (Value.string "w") in
  check bool_ "unrelated" true (Dag.merge_base store u5 w = Ok None)

let test_dag_children_extraction () =
  let store = Mem_store.create () in
  let v = Value.map_of_bindings store (List.init 500 (fun i -> (string_of_int i, "v"))) in
  let _, u1 = mk_fnode store (Value.string "base") in
  let f, _ = mk_fnode ~bases:[ u1 ] ~seq:2 store v in
  let children = Dag.fnode_children (Fnode.to_chunk f) in
  (* Value root + one base. *)
  check int_ "children count" 2 (List.length children);
  check bool_ "base included" true (List.exists (Hash.equal u1) children);
  (* Index chunks expose their children so GC can walk the tree. *)
  let m = Option.get (Value.to_map v) in
  (match Fb_postree.Pmap.root m with
   | Some root when Fb_postree.Pmap.height m > 1 ->
     let chunk = Option.get (Store.get store root) in
     check bool_ "index children nonempty" true
       (Dag.fnode_children chunk <> [])
   | _ -> ())

(* ---------------- branch table ---------------- *)

let uidx i = Hash.of_string (string_of_int i)

let test_branch_table () =
  let b = Branch.create () in
  check bool_ "empty" true (Branch.keys b = []);
  Branch.set_head b ~key:"k1" ~branch:"master" (uidx 1);
  Branch.set_head b ~key:"k1" ~branch:"dev" (uidx 2);
  Branch.set_head b ~key:"k2" ~branch:"master" (uidx 3);
  check bool_ "keys" true (Branch.keys b = [ "k1"; "k2" ]);
  check bool_ "head" true
    (Branch.head b ~key:"k1" ~branch:"dev" = Some (uidx 2));
  check bool_ "missing head" true
    (Branch.head b ~key:"k1" ~branch:"zz" = None);
  check int_ "branches" 2 (List.length (Branch.branches b ~key:"k1"));
  check bool_ "exists" true (Branch.exists b ~key:"k2" ~branch:"master");
  (* Overwrite moves the head. *)
  Branch.set_head b ~key:"k1" ~branch:"master" (uidx 9);
  check bool_ "moved" true
    (Branch.head b ~key:"k1" ~branch:"master" = Some (uidx 9))

let test_branch_rename_remove () =
  let b = Branch.create () in
  Branch.set_head b ~key:"k" ~branch:"master" (uidx 1);
  Branch.set_head b ~key:"k" ~branch:"dev" (uidx 2);
  check bool_ "rename ok" true
    (Branch.rename b ~key:"k" ~from_branch:"dev" ~to_branch:"feature" = Ok ());
  check bool_ "renamed" true
    (Branch.head b ~key:"k" ~branch:"feature" = Some (uidx 2));
  check bool_ "old gone" true (Branch.head b ~key:"k" ~branch:"dev" = None);
  check bool_ "rename missing" true
    (Result.is_error (Branch.rename b ~key:"k" ~from_branch:"zz" ~to_branch:"a"));
  check bool_ "rename collision" true
    (Result.is_error
       (Branch.rename b ~key:"k" ~from_branch:"feature" ~to_branch:"master"));
  check bool_ "remove" true (Branch.remove b ~key:"k" ~branch:"feature");
  check bool_ "remove again" false (Branch.remove b ~key:"k" ~branch:"feature");
  (* Removing the last branch drops the key. *)
  check bool_ "remove master" true (Branch.remove b ~key:"k" ~branch:"master");
  check bool_ "key gone" true (Branch.keys b = [])

let test_branch_serialization () =
  let b = Branch.create () in
  Branch.set_head b ~key:"alpha" ~branch:"master" (uidx 1);
  Branch.set_head b ~key:"alpha" ~branch:"x" (uidx 2);
  Branch.set_head b ~key:"beta" ~branch:"master" (uidx 3);
  match Branch.deserialize (Branch.serialize b) with
  | Error e -> Alcotest.fail e
  | Ok b' ->
    check bool_ "keys" true (Branch.keys b' = Branch.keys b);
    check bool_ "heads" true
      (Branch.branches b' ~key:"alpha" = Branch.branches b ~key:"alpha");
    check bool_ "garbage rejected" true
      (Result.is_error (Branch.deserialize "not branches"))

(* ---------------- verification ---------------- *)

let test_verify_clean () =
  let store = Mem_store.create () in
  let v = Value.map_of_bindings store (List.init 300 (fun i -> (Printf.sprintf "%04d" i, "v"))) in
  let _, u1 = mk_fnode store (Value.string "first") in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:2 store v in
  match Verify.verify store u2 with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check int_ "versions" 2 report.Verify.versions_checked;
    check bool_ "value chunks > 0" true (report.Verify.value_chunks > 0)

let test_verify_detects_fnode_tamper () =
  let store, handle = Mem_store.create_with_handle () in
  let _, u1 = mk_fnode store (Value.string "x") in
  ignore (Mem_store.tamper handle u1 ~f:(fun s -> s ^ " "));
  check bool_ "detected" true (Result.is_error (Verify.verify store u1))

let test_verify_detects_value_tamper () =
  let store, handle = Mem_store.create_with_handle () in
  let v = Value.map_of_bindings store (List.init 2000 (fun i -> (Printf.sprintf "%05d" i, "val"))) in
  let _, uid = mk_fnode store v in
  let m = Option.get (Value.to_map v) in
  let victim = List.nth (Fb_postree.Pmap.node_hashes m) 2 in
  ignore
    (Mem_store.tamper handle victim ~f:(fun s ->
         let b = Bytes.of_string s in
         Bytes.set b (Bytes.length b / 2) '\x00';
         Bytes.to_string b));
  check bool_ "detected" true (Result.is_error (Verify.verify store uid))

let test_verify_detects_history_tamper () =
  let store, handle = Mem_store.create_with_handle () in
  let _, u1 = mk_fnode store (Value.string "v1") in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:2 store (Value.string "v2") in
  let _, u3 = mk_fnode ~bases:[ u2 ] ~seq:3 store (Value.string "v3") in
  (* Damage an ancestor, not the head. *)
  ignore (Mem_store.tamper handle u1 ~f:(fun s -> s ^ "!"));
  check bool_ "history walk detects" true
    (Result.is_error (Verify.verify store u3));
  check bool_ "shallow check passes" true
    (Result.is_ok (Verify.verify ~check_history:false store u3))

let test_verify_detects_forged_clock () =
  let store = Mem_store.create () in
  (* A parent whose seq is not below the child's: forged. *)
  let _, u1 = mk_fnode ~seq:5 store (Value.string "parent") in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:5 store (Value.string "child") in
  check bool_ "forged clock" true (Result.is_error (Verify.verify store u2))

let test_verify_missing_base () =
  let store = Mem_store.create () in
  let phantom = Hash.of_string "never stored" in
  let _, u = mk_fnode ~bases:[ phantom ] ~seq:2 store (Value.string "x") in
  check bool_ "missing base" true (Result.is_error (Verify.verify store u))

let test_verify_history_values () =
  let store, handle = Mem_store.create_with_handle () in
  let v1 = Value.map_of_bindings store (List.init 1000 (fun i -> (Printf.sprintf "%05d" i, "a"))) in
  let _, u1 = mk_fnode store v1 in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:2 store (Value.string "tip") in
  (* Tamper a chunk only reachable from the historical value. *)
  let m = Option.get (Value.to_map v1) in
  let victim = List.nth (Fb_postree.Pmap.node_hashes m) 1 in
  ignore (Mem_store.tamper handle victim ~f:(fun s -> s ^ "x"));
  check bool_ "default skips history values" true
    (Result.is_ok (Verify.verify store u2));
  check bool_ "deep check catches" true
    (Result.is_error (Verify.verify ~check_history_values:true store u2))

(* ---------------- bundles ---------------- *)

let test_bundle_roundtrip () =
  let src = Mem_store.create () in
  let v = Value.map_of_bindings src (List.init 800 (fun i -> (Printf.sprintf "%05d" i, "payload"))) in
  let _, u1 = mk_fnode src (Value.string "first") in
  let _, u2 = mk_fnode ~bases:[ u1 ] ~seq:2 src v in
  match Fb_repr.Bundle.export src ~roots:[ u2 ] with
  | Error e -> Alcotest.fail e
  | Ok bundle ->
    let dst = Mem_store.create () in
    (match Fb_repr.Bundle.import dst bundle with
     | Error e -> Alcotest.fail e
     | Ok (roots, fresh) ->
       check bool_ "roots" true (roots = [ u2 ]);
       check bool_ "chunks moved" true (fresh > 2);
       (* The imported version verifies in the destination store. *)
       (match Verify.verify ~check_history_values:true dst u2 with
        | Ok r -> check int_ "history intact" 2 r.Verify.versions_checked
        | Error e -> Alcotest.fail e);
       (* Re-import is a no-op. *)
       match Fb_repr.Bundle.import dst bundle with
       | Ok (_, fresh2) -> check int_ "idempotent" 0 fresh2
       | Error e -> Alcotest.fail e)

let test_bundle_determinism () =
  let src = Mem_store.create () in
  let _, u = mk_fnode src (Value.string "x") in
  let b1 = Result.get_ok (Fb_repr.Bundle.export src ~roots:[ u ]) in
  let b2 = Result.get_ok (Fb_repr.Bundle.export src ~roots:[ u ]) in
  check bool_ "deterministic" true (String.equal b1 b2)

let test_bundle_rejects_garbage () =
  let dst = Mem_store.create () in
  check bool_ "garbage" true
    (Result.is_error (Fb_repr.Bundle.import dst "not a bundle"));
  check bool_ "empty" true (Result.is_error (Fb_repr.Bundle.import dst ""));
  check int_ "nothing stored" 0
    (Fb_chunk.Store.stats dst).Fb_chunk.Store.physical_chunks

let test_bundle_rejects_incomplete_closure () =
  let src = Mem_store.create () in
  let v = Value.map_of_bindings src (List.init 2000 (fun i -> (Printf.sprintf "%05d" i, "v"))) in
  let _, u = mk_fnode src v in
  let bundle = Result.get_ok (Fb_repr.Bundle.export src ~roots:[ u ]) in
  (* Truncate the final chunk: framing breaks. *)
  let truncated = String.sub bundle 0 (String.length bundle - 10) in
  let dst = Mem_store.create () in
  check bool_ "truncated rejected" true
    (Result.is_error (Fb_repr.Bundle.import dst truncated));
  check int_ "nothing stored after reject" 0
    (Fb_chunk.Store.stats dst).Fb_chunk.Store.physical_chunks;
  (* Export with a missing chunk fails up front. *)
  let m = Option.get (Fb_types.Value.to_map v) in
  let victim = List.nth (Fb_postree.Pmap.node_hashes m) 2 in
  ignore (src.Fb_chunk.Store.delete victim);
  check bool_ "missing chunk refused" true
    (Result.is_error (Fb_repr.Bundle.export src ~roots:[ u ]))

let test_bundle_tampered_content_gets_new_identity () =
  (* Flipping bytes inside a bundled chunk cannot forge the original id:
     the receiver re-derives ids from bytes, so the closure check fails
     (some parent now references a chunk that no longer exists). *)
  let src = Mem_store.create () in
  let v = Value.map_of_bindings src (List.init 2000 (fun i -> (Printf.sprintf "%05d" i, "v"))) in
  let _, u = mk_fnode src v in
  let bundle = Result.get_ok (Fb_repr.Bundle.export src ~roots:[ u ]) in
  (* Flip one byte inside some chunk body (past the header area). *)
  let b = Bytes.of_string bundle in
  let i = String.length bundle / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  let dst = Mem_store.create () in
  match Fb_repr.Bundle.import dst (Bytes.to_string b) with
  | Error _ -> () (* rejected: broken framing or incomplete closure *)
  | Ok (roots, _) ->
    (* If framing survived, the root closure must still be unforgeable:
       verification from the root catches any substitution. *)
    let root = List.hd roots in
    check bool_ "verify catches forgery" true
      (not (Hash.equal root u)
       || Result.is_error (Verify.verify ~check_history_values:true dst root))

let suite =
  [ Alcotest.test_case "fnode roundtrip" `Quick test_fnode_roundtrip;
    Alcotest.test_case "bundle roundtrip" `Quick test_bundle_roundtrip;
    Alcotest.test_case "bundle determinism" `Quick test_bundle_determinism;
    Alcotest.test_case "bundle rejects garbage" `Quick
      test_bundle_rejects_garbage;
    Alcotest.test_case "bundle incomplete closure" `Quick
      test_bundle_rejects_incomplete_closure;
    Alcotest.test_case "bundle tamper resistance" `Quick
      test_bundle_tampered_content_gets_new_identity;
    Alcotest.test_case "uid covers value and history" `Quick
      test_fnode_uid_covers_value_and_history;
    Alcotest.test_case "merge bases canonical" `Quick
      test_fnode_bases_canonical_order;
    Alcotest.test_case "fnode value reattach" `Quick test_fnode_value_reattach;
    Alcotest.test_case "dag history" `Quick test_dag_history;
    Alcotest.test_case "dag ancestry" `Quick test_dag_ancestry;
    Alcotest.test_case "dag merge base" `Quick test_dag_merge_base;
    Alcotest.test_case "dag children extraction" `Quick
      test_dag_children_extraction;
    Alcotest.test_case "branch table" `Quick test_branch_table;
    Alcotest.test_case "branch rename/remove" `Quick test_branch_rename_remove;
    Alcotest.test_case "branch serialization" `Quick test_branch_serialization;
    Alcotest.test_case "verify clean" `Quick test_verify_clean;
    Alcotest.test_case "verify fnode tamper" `Quick
      test_verify_detects_fnode_tamper;
    Alcotest.test_case "verify value tamper" `Quick
      test_verify_detects_value_tamper;
    Alcotest.test_case "verify history tamper" `Quick
      test_verify_detects_history_tamper;
    Alcotest.test_case "verify forged clock" `Quick
      test_verify_detects_forged_clock;
    Alcotest.test_case "verify missing base" `Quick test_verify_missing_base;
    Alcotest.test_case "verify history values" `Quick
      test_verify_history_values ]
