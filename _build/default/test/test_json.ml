(* JSON (RFC 8259) parser/printer and the Web-UI JSON views. *)

module Json = Fb_types.Json
module FB = Fb_core.Forkbase
module Webview = Fb_core.Webview
module Value = Fb_types.Value
module Errors = Fb_core.Errors

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Errors.to_string e)

let parses s expected =
  match Json.parse s with
  | Ok v -> check bool_ ("parse " ^ s) true (Json.equal v expected)
  | Error e -> Alcotest.failf "parse %s: %s" s e

let rejects s =
  check bool_ ("reject " ^ s) true (Result.is_error (Json.parse s))

let test_parse_scalars () =
  parses "null" Json.Null;
  parses "true" (Json.Bool true);
  parses "false" (Json.Bool false);
  parses "0" (Json.Number 0.0);
  parses "-42" (Json.Number (-42.0));
  parses "3.5" (Json.Number 3.5);
  parses "1e3" (Json.Number 1000.0);
  parses "-1.25E-2" (Json.Number (-0.0125));
  parses "\"hi\"" (Json.String "hi");
  parses "  null  " Json.Null

let test_parse_structures () =
  parses "[]" (Json.Array []);
  parses "[1,2,3]" (Json.Array [ Json.Number 1.0; Json.Number 2.0; Json.Number 3.0 ]);
  parses "{}" (Json.Object []);
  parses "{\"a\":1,\"b\":[true,null]}"
    (Json.Object
       [ ("a", Json.Number 1.0);
         ("b", Json.Array [ Json.Bool true; Json.Null ]) ]);
  parses "[[[]]]" (Json.Array [ Json.Array [ Json.Array [] ] ])

let test_parse_escapes () =
  parses "\"a\\nb\"" (Json.String "a\nb");
  parses "\"q\\\"q\"" (Json.String "q\"q");
  parses "\"\\\\\"" (Json.String "\\");
  parses "\"\\u0041\"" (Json.String "A");
  parses "\"\\u00e9\"" (Json.String "\xc3\xa9");          (* é *)
  parses "\"\\u20ac\"" (Json.String "\xe2\x82\xac");      (* € *)
  parses "\"\\ud83d\\ude00\"" (Json.String "\xf0\x9f\x98\x80") (* emoji *)

let test_parse_rejections () =
  rejects "";
  rejects "nul";
  rejects "01";
  rejects "1.";
  rejects "+1";
  rejects "[1,]";
  rejects "{\"a\":}";
  rejects "{\"a\" 1}";
  rejects "\"unterminated";
  rejects "\"bad \\x escape\"";
  rejects "\"\\ud83d\"";   (* lone surrogate *)
  rejects "[1] trailing";
  rejects "\"ctrl \x01\""

let test_print_parse_roundtrip () =
  let v =
    Json.Object
      [ ("s", Json.String "with \"quotes\" and \n newline");
        ("n", Json.Number 2.5);
        ("i", Json.int 123456789);
        ("arr", Json.Array [ Json.Null; Json.Bool false ]);
        ("nested", Json.Object [ ("empty", Json.Array []) ]) ]
  in
  (match Json.parse (Json.to_string v) with
   | Ok v' -> check bool_ "compact roundtrip" true (Json.equal v v')
   | Error e -> Alcotest.fail e);
  match Json.parse (Json.to_string ~pretty:true v) with
  | Ok v' -> check bool_ "pretty roundtrip" true (Json.equal v v')
  | Error e -> Alcotest.fail e

let test_number_rendering () =
  check string_ "integer" "42" (Json.to_string (Json.Number 42.0));
  check string_ "negative" "-7" (Json.to_string (Json.int (-7)));
  check bool_ "fraction keeps precision" true
    (Json.parse (Json.to_string (Json.Number 0.1)) = Ok (Json.Number 0.1))

let test_member () =
  let v = Json.Object [ ("a", Json.int 1); ("b", Json.int 2) ] in
  check bool_ "member" true (Json.member "b" v = Some (Json.int 2));
  check bool_ "missing" true (Json.member "c" v = None);
  check bool_ "non-object" true (Json.member "a" Json.Null = None)

(* ---------------- webview ---------------- *)

let test_webview_table_and_diff () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  ignore (ok (FB.import_csv fb ~key:"ds" "id,v\n1,a\n2,b\n"));
  ignore (ok (FB.fork fb ~key:"ds" ~new_branch:"dev"));
  ignore (ok (FB.import_csv fb ~key:"ds" ~branch:"dev" "id,v\n1,a\n2,c\n"));
  let vj = Webview.value_json (ok (FB.get fb ~key:"ds")) in
  check bool_ "table type" true
    (Json.member "type" vj = Some (Json.String "table"));
  check bool_ "rows" true (Json.member "rows" vj = Some (Json.int 2));
  let d = ok (FB.diff fb ~key:"ds" ~branch1:"master" ~branch2:"dev") in
  let dj = Webview.diff_json d in
  check bool_ "diff kind" true
    (Json.member "kind" dj = Some (Json.String "table"));
  (* The whole view serializes to valid JSON. *)
  check bool_ "serializes" true (Result.is_ok (Json.parse (Json.to_string dj)));
  let lj = Webview.log_json (ok (FB.log fb ~key:"ds" ~branch:"dev")) in
  check bool_ "log serializes" true
    (Result.is_ok (Json.parse (Json.to_string ~pretty:true lj)));
  let sj = Webview.stats_json (FB.stats fb) in
  check bool_ "stats keys" true (Json.member "keys" sj = Some (Json.int 1))

let test_webview_previews_truncate () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let store = FB.store fb in
  let m =
    Value.map_of_bindings store
      (List.init 100 (fun i -> (Printf.sprintf "%03d" i, "v")))
  in
  let vj = Webview.value_json ~preview_rows:5 m in
  (match Json.member "preview" vj with
   | Some (Json.Object entries) ->
     check bool_ "truncated" true (List.length entries = 5)
   | _ -> Alcotest.fail "no preview");
  check bool_ "total kept" true (Json.member "entries" vj = Some (Json.int 100))

let qcheck_cases =
  let open QCheck in
  let rec gen_json depth =
    let open Gen in
    if depth = 0 then
      oneof
        [ return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.int i) (int_range (-1000000) 1000000);
          map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10)) ]
    else
      oneof
        [ map (fun l -> Json.Array l) (list_size (int_range 0 4) (gen_json (depth - 1)));
          map
            (fun l -> Json.Object l)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 0 6)) (gen_json (depth - 1)))) ]
  in
  [ Test.make ~name:"json print/parse roundtrip" ~count:200
      (make (gen_json 3))
      (fun v ->
        match Json.parse (Json.to_string v) with
        | Ok v' -> Json.equal v v'
        | Error _ -> false);
    Test.make ~name:"json pretty roundtrip" ~count:100 (make (gen_json 3))
      (fun v ->
        match Json.parse (Json.to_string ~pretty:true v) with
        | Ok v' -> Json.equal v v'
        | Error _ -> false);
    Test.make ~name:"json parser never raises" ~count:300
      (string_gen Gen.printable)
      (fun s -> match Json.parse s with Ok _ | Error _ -> true) ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_cases
  @ [ Alcotest.test_case "parse scalars" `Quick test_parse_scalars;
      Alcotest.test_case "parse structures" `Quick test_parse_structures;
      Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
      Alcotest.test_case "parse rejections" `Quick test_parse_rejections;
      Alcotest.test_case "print/parse roundtrip" `Quick
        test_print_parse_roundtrip;
      Alcotest.test_case "number rendering" `Quick test_number_rendering;
      Alcotest.test_case "member" `Quick test_member;
      Alcotest.test_case "webview table/diff" `Quick
        test_webview_table_and_diff;
      Alcotest.test_case "webview previews truncate" `Quick
        test_webview_previews_truncate ]
