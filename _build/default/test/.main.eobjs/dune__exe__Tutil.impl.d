test/tutil.ml: String
