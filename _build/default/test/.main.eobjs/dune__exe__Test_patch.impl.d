test/test_patch.ml: Alcotest Fb_chunk Fb_core Fb_hash Fb_postree Fb_types List Option Result String
