test/test_workload.ml: Alcotest Array Fb_hash Fb_types Fb_workload List Printf String
