test/test_postree.ml: Alcotest Array Bytes Char Fb_chunk Fb_hash Fb_postree Gen Hashtbl List Option Printf QCheck QCheck_alcotest Result Seq String Test
