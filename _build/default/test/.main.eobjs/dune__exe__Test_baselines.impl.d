test/test_baselines.ml: Alcotest Array Fb_baselines Fb_hash List Printf String
