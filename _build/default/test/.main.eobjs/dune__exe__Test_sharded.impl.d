test/test_sharded.ml: Alcotest Fb_chunk Fb_core Fb_hash Fb_types List Printf Result
