test/main.mli:
