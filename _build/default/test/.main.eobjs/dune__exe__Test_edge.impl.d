test/test_edge.ml: Alcotest Char Fb_chunk Fb_core Fb_hash Fb_postree Fb_types List Option Printf Result String Tutil
