test/test_chunk.ml: Alcotest Cache_store Chunk Fb_chunk Fb_hash Fb_postree File_store Filename Fun Gc List Mem_store Printf Random Result Store String Sys Unix Verified_store
