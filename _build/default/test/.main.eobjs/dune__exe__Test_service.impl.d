test/test_service.ml: Alcotest Fb_chunk Fb_core Fb_hash Fb_types List Result String Tutil
