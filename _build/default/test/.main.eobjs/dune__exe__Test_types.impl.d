test/test_types.ml: Alcotest Fb_chunk Fb_codec Fb_hash Fb_types Gen Int64 List Option QCheck QCheck_alcotest Result String Test
