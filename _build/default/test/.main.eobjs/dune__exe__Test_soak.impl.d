test/test_soak.ml: Alcotest Fb_chunk Fb_core Fb_hash Fb_postree Fb_types Hashtbl List Map Option Printf Result String
