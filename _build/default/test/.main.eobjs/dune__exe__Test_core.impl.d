test/test_core.ml: Alcotest Bytes Fb_chunk Fb_core Fb_hash Fb_postree Fb_repr Fb_types Format Int64 List Option Printf Result String Tutil
