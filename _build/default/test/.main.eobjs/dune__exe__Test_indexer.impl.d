test/test_indexer.ml: Alcotest Fb_chunk Fb_core Fb_types List Result
