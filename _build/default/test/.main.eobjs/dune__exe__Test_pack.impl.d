test/test_pack.ml: Alcotest Fb_chunk Fb_core Fb_hash Filename Fun List Printf Random Result String Sys Unix
