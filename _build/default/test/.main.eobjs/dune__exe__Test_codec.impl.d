test/test_codec.ml: Alcotest Codec Fb_codec Fb_hash Float Gen Int64 List QCheck QCheck_alcotest Result String Test
