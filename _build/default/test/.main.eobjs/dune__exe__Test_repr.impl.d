test/test_repr.ml: Alcotest Bytes Char Fb_chunk Fb_hash Fb_postree Fb_repr Fb_types List Option Printf Result String
