test/test_json.ml: Alcotest Fb_chunk Fb_core Fb_types Gen List Printf QCheck QCheck_alcotest Result Test
