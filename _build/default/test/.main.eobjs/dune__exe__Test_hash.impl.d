test/test_hash.ml: Alcotest Base32 Char Fb_hash Gen Hash Hex List Printf Prng QCheck QCheck_alcotest Result Rolling Sha256 String Test
