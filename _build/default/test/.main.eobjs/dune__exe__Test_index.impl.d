test/test_index.ml: Alcotest Fb_chunk Fb_hash Fb_types Float Format Gen Int64 List Option Printf QCheck QCheck_alcotest Result Test
