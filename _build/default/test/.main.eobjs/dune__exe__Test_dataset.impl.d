test/test_dataset.ml: Alcotest Fb_chunk Fb_core Fb_types Int64 List Printf Result
