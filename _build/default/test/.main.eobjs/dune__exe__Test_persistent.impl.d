test/test_persistent.ml: Alcotest Fb_chunk Fb_core Fb_hash Fb_types Filename Fun List Printf Random Result Sys Unix
