test/test_seqtree.ml: Alcotest Bytes Char Fb_chunk Fb_hash Fb_postree Gen Int64 List Option Printf QCheck QCheck_alcotest Result String Test
