test/test_proof.ml: Alcotest Bytes Char Fb_chunk Fb_core Fb_hash Fb_postree Fb_types Gen List Option Printf QCheck QCheck_alcotest Result String Test
