module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module Rolling = Fb_hash.Rolling

type t = { store : Store.t; root : Hash.t option }

let store t = t.store
let root t = t.root

let params = Rolling.default_blob_params
let max_chunk_bytes = 16 * (1 lsl params.q)

let leaf_count chunk = String.length chunk.Chunk.payload

let leaf_content store h =
  let chunk = Seqtree.read_chunk store h in
  match chunk.Chunk.kind with
  | Chunk.Leaf_blob -> chunk.Chunk.payload
  | k ->
    raise
      (Postree.Corrupt
         (Printf.sprintf "expected blob leaf, got %s" (Chunk.kind_to_string k)))

(* Byte-granularity content-defined chunker. *)
type bchunker = {
  rolling : Rolling.t;
  buf : Buffer.t;
  emit : string -> unit;
}

let bchunker emit =
  { rolling = Rolling.create params; buf = Buffer.create 8192; emit }

let bflush ch =
  ch.emit (Buffer.contents ch.buf);
  Buffer.clear ch.buf;
  Rolling.reset ch.rolling

let bfeed ch c =
  let hit = Rolling.feed ch.rolling c in
  Buffer.add_char ch.buf c;
  if hit || Buffer.length ch.buf >= max_chunk_bytes then bflush ch

let bfeed_string ch s = String.iter (bfeed ch) s
let bpending ch = Buffer.length ch.buf > 0
let bfinish ch = if bpending ch then bflush ch

let emit_leaf store out content =
  let chunk = Chunk.v Chunk.Leaf_blob content in
  let id = Store.put store chunk in
  out := { Seqtree.child = id; count = String.length content } :: !out

let of_string store s =
  let out = ref [] in
  let ch = bchunker (emit_leaf store out) in
  bfeed_string ch s;
  bfinish ch;
  { store; root = Seqtree.build_up store (List.rev !out) }

let of_root store root = { store; root }

let length t = Seqtree.total_count t.store t.root ~leaf_count
let is_empty t = t.root = None

let leaf_row t = Seqtree.leaf_row t.store t.root ~leaf_count

let iter_leaves t f =
  List.iter
    (fun ie -> f (leaf_content t.store ie.Seqtree.child))
    (leaf_row t)

let to_string t =
  let buf = Buffer.create (length t) in
  iter_leaves t (Buffer.add_string buf);
  Buffer.contents buf

let read t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Pblob.read: range out of bounds";
  let buf = Buffer.create len in
  let off = ref 0 in
  iter_leaves t (fun content ->
      let n = String.length content in
      let lo = max pos !off and hi = min (pos + len) (!off + n) in
      if lo < hi then Buffer.add_substring buf content (lo - !off) (hi - lo);
      off := !off + n);
  Buffer.contents buf

let splice t ~pos ~remove ~insert =
  let total = length t in
  if pos < 0 || remove < 0 || pos + remove > total then
    invalid_arg "Pblob.splice: range out of bounds";
  match t.root with
  | None -> of_string t.store insert
  | Some _ ->
    let row = Array.of_list (leaf_row t) in
    let starts = Array.make (Array.length row) 0 in
    let () =
      let off = ref 0 in
      Array.iteri
        (fun i ie ->
          starts.(i) <- !off;
          off := !off + ie.Seqtree.count)
        row
    in
    (* Leaf containing byte [p]; for p = total, the last leaf. *)
    let leaf_of p =
      let rec go i =
        if i + 1 >= Array.length row then i
        else if p < starts.(i + 1) then i
        else go (i + 1)
      in
      go 0
    in
    let i0 = leaf_of pos in
    let old_end = pos + remove in
    let j = leaf_of (min old_end (total - 1)) in
    let j = if old_end >= starts.(j) + row.(j).Seqtree.count then j + 1 else j in
    (* [j] is now the first leaf whose content (partially) survives past the
       removed range, or row length if the removal reaches the end. *)
    let out = ref [] in
    let ch = bchunker (emit_leaf t.store out) in
    let head =
      String.sub (leaf_content t.store row.(i0).Seqtree.child) 0
        (pos - starts.(i0))
    in
    bfeed_string ch head;
    bfeed_string ch insert;
    if j < Array.length row then begin
      let tail_first = leaf_content t.store row.(j).Seqtree.child in
      let skip = old_end - starts.(j) in
      bfeed_string ch
        (String.sub tail_first skip (String.length tail_first - skip))
    end;
    (* Re-chunk further leaves until a boundary realigns with the original
       layout, then reuse the remaining leaves verbatim. *)
    let rec resync k =
      if k >= Array.length row then (bfinish ch; [])
      else if not (bpending ch) then
        Array.to_list (Array.sub row k (Array.length row - k))
      else begin
        bfeed_string ch (leaf_content t.store row.(k).Seqtree.child);
        resync (k + 1)
      end
    in
    let suffix = resync (j + 1) in
    let prefix = Array.to_list (Array.sub row 0 i0) in
    let new_row = prefix @ List.rev !out @ suffix in
    { t with root = Seqtree.build_up t.store new_row }

let append t s = splice t ~pos:(length t) ~remove:0 ~insert:s

type range_diff = {
  old_pos : int;
  old_len : int;
  new_pos : int;
  new_len : int;
}

let diff t1 t2 =
  match t1.root, t2.root with
  | None, None -> None
  | _ ->
    if Option.equal Hash.equal t1.root t2.root then None
    else begin
      let r1 = Array.of_list (leaf_row t1)
      and r2 = Array.of_list (leaf_row t2) in
      let n1 = Array.length r1 and n2 = Array.length r2 in
      let eq i j = Hash.equal r1.(i).Seqtree.child r2.(j).Seqtree.child in
      let rec pre i = if i < n1 && i < n2 && eq i i then pre (i + 1) else i in
      let p = pre 0 in
      let rec suf k =
        if n1 - 1 - k >= p && n2 - 1 - k >= p && eq (n1 - 1 - k) (n2 - 1 - k)
        then suf (k + 1)
        else k
      in
      let s = suf 0 in
      let sum r lo hi =
        let acc = ref 0 in
        for i = lo to hi - 1 do
          acc := !acc + r.(i).Seqtree.count
        done;
        !acc
      in
      let old_pos = sum r1 0 p and new_pos = sum r2 0 p in
      Some
        { old_pos;
          old_len = sum r1 p (n1 - s);
          new_pos;
          new_len = sum r2 p (n2 - s) }
    end

type proof = string list

(* Prover and verifier walk the tree in the same deterministic pre-order,
   descending only into sub-trees overlapping [pos, pos+len); counts in
   the (hash-covered) index entries drive the offset arithmetic, so a
   forged count breaks its parent's hash. *)
let overlaps pos len start count = start < pos + len && pos < start + count

let prove t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    Error "prove: range out of bounds"
  else
    match t.root with
    | None -> Error "cannot prove against an empty blob"
    | Some root ->
      let out = ref [] in
      let rec walk h start =
        match t.store.Store.get_raw h with
        | None -> Error (Printf.sprintf "missing chunk %s" (Hash.to_hex h))
        | Some raw -> (
          out := raw :: !out;
          let chunk = Seqtree.read_chunk t.store h in
          match chunk.Chunk.kind with
          | Chunk.Seq_index -> (
            match Seqtree.decode_index chunk with
            | Error e -> Error e
            | Ok ies ->
              let rec children start = function
                | [] -> Ok ()
                | ie :: rest ->
                  let r =
                    if overlaps pos len start ie.Seqtree.count then
                      walk ie.Seqtree.child start
                    else Ok ()
                  in
                  (match r with
                   | Error _ as e -> e
                   | Ok () -> children (start + ie.Seqtree.count) rest)
              in
              children start ies)
          | _ -> Ok ())
      in
      (match walk root 0 with
       | Ok () -> Ok (List.rev !out)
       | Error e -> Error e
       | exception Postree.Corrupt m -> Error m)

let verify_proof ~root ~pos ~len proof =
  if pos < 0 || len < 0 then Error "proof: negative range"
  else begin
    let chunks = ref proof in
    let next expected =
      match !chunks with
      | [] -> Error "proof: truncated path"
      | raw :: rest ->
        chunks := rest;
        if not (Hash.equal (Hash.of_string raw) expected) then
          Error "proof: chunk does not hash to the id its parent names"
        else (
          match Chunk.decode raw with
          | Error e -> Error ("proof: " ^ e)
          | Ok c -> Ok c)
    in
    let out = Buffer.create len in
    let rec walk expected start =
      match next expected with
      | Error _ as e -> e
      | Ok chunk -> (
        match chunk.Chunk.kind with
        | Chunk.Seq_index -> (
          match Seqtree.decode_index chunk with
          | Error e -> Error ("proof: " ^ e)
          | Ok ies ->
            let rec children start = function
              | [] -> Ok ()
              | ie :: rest -> (
                let r =
                  if overlaps pos len start ie.Seqtree.count then
                    walk ie.Seqtree.child start
                  else Ok ()
                in
                match r with
                | Error _ as e -> e
                | Ok () -> children (start + ie.Seqtree.count) rest)
            in
            children start ies)
        | Chunk.Leaf_blob ->
          let payload = chunk.Chunk.payload in
          let lo = max pos start
          and hi = min (pos + len) (start + String.length payload) in
          if lo < hi then
            Buffer.add_substring out payload (lo - start) (hi - lo);
          Ok ()
        | k ->
          Error
            (Printf.sprintf "proof: unexpected chunk kind %s"
               (Chunk.kind_to_string k)))
    in
    match walk root 0 with
    | Error _ as e -> e
    | Ok () ->
      if !chunks <> [] then Error "proof: trailing chunks"
      else if Buffer.length out <> len then
        Error "proof: range not fully covered"
      else Ok (Buffer.contents out)
  end

let chunk_count t = List.length (leaf_row t)
let leaf_sizes t = List.map (fun ie -> ie.Seqtree.count) (leaf_row t)

let node_hashes t =
  let acc = ref [] in
  let rec go h =
    acc := h :: !acc;
    let chunk = Seqtree.read_chunk t.store h in
    match chunk.Chunk.kind with
    | Chunk.Seq_index -> (
      match Seqtree.decode_index chunk with
      | Ok ies -> List.iter (fun ie -> go ie.Seqtree.child) ies
      | Error e -> raise (Postree.Corrupt e))
    | _ -> ()
  in
  (match t.root with None -> () | Some h -> go h);
  List.rev !acc

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) = Result.bind in
  let check_integrity h =
    match t.store.Store.get_raw h with
    | None -> err "missing chunk %s" (Hash.to_hex h)
    | Some raw ->
      if not (Hash.equal (Hash.of_string raw) h) then
        err "chunk %s: tampered content" (Hash.to_hex h)
      else (
        match Chunk.decode raw with
        | Error e -> err "chunk %s: %s" (Hash.to_hex h) e
        | Ok c -> Ok c)
  in
  (* A leaf must have its only pattern hit on its final byte, unless it is
     the last leaf or was cut by the size cap. *)
  let check_leaf_boundary ~is_last content h =
    let hits = Rolling.hits_in params content in
    let n = String.length content in
    match hits with
    | [] ->
      if is_last || n >= max_chunk_bytes then Ok ()
      else err "blob leaf %s: no pattern and not last" (Hash.to_hex h)
    | [ hit ] when hit = n - 1 -> Ok ()
    | hit :: _ -> err "blob leaf %s: pattern mid-chunk at %d" (Hash.to_hex h) hit
  in
  let rec check_level hashes =
    let rec per_node hs children_acc =
      match hs with
      | [] -> Ok (List.rev children_acc)
      | h :: rest ->
        let* chunk = check_integrity h in
        (match chunk.Chunk.kind with
         | Chunk.Leaf_blob ->
           let* () =
             check_leaf_boundary ~is_last:(rest = []) chunk.Chunk.payload h
           in
           per_node rest children_acc
         | Chunk.Seq_index ->
           let* ies = Seqtree.decode_index chunk in
           per_node rest (List.rev_append ies children_acc)
         | k ->
           err "chunk %s: unexpected kind %s" (Hash.to_hex h)
             (Chunk.kind_to_string k))
    in
    let* children = per_node hashes [] in
    match children with
    | [] -> Ok ()
    | ies ->
      let* () =
        List.fold_left
          (fun acc ie ->
            let* () = acc in
            let* chunk = check_integrity ie.Seqtree.child in
            let count =
              match chunk.Chunk.kind with
              | Chunk.Seq_index -> (
                match Seqtree.decode_index chunk with
                | Ok ces ->
                  List.fold_left (fun a c -> a + c.Seqtree.count) 0 ces
                | Error _ -> -1)
              | _ -> leaf_count chunk
            in
            if count <> ie.Seqtree.count then
              err "child %s: count %d, index says %d"
                (Hash.to_hex ie.Seqtree.child)
                count ie.Seqtree.count
            else Ok ())
          (Ok ()) ies
      in
      check_level (List.map (fun ie -> ie.Seqtree.child) ies)
  in
  match t.root with
  | None -> Ok ()
  | Some h -> ( try check_level [ h ] with Postree.Corrupt m -> Error m)

let pp fmt t =
  match t.root with
  | None -> Format.pp_print_string fmt "<empty blob>"
  | Some h ->
    Format.fprintf fmt "<blob root=%a bytes=%d chunks=%d>" Hash.pp h
      (length t) (chunk_count t)
