module Codec = Fb_codec.Codec

type binding = { key : string; value : string }

let binding key value = { key; value }

module Entry = struct
  type t = binding
  type key = string

  let key b = b.key
  let compare_key = String.compare
  let equal a b = String.equal a.key b.key && String.equal a.value b.value

  let encode w b =
    Codec.bytes w b.key;
    Codec.bytes w b.value

  let decode r =
    let key = Codec.read_bytes r in
    let value = Codec.read_bytes r in
    { key; value }

  let encode_key = Codec.bytes
  let decode_key = Codec.read_bytes
  let leaf_kind = Fb_chunk.Chunk.Leaf_map
  let pp fmt b = Format.fprintf fmt "%S -> %S" b.key b.value
  let pp_key fmt k = Format.fprintf fmt "%S" k
end

include Postree.Make (Entry)

let find_value t k = Option.map (fun (b : binding) -> b.value) (find t k)

let bindings t =
  List.map (fun (b : binding) -> (b.key, b.value)) (to_list t)

let of_bindings store bs =
  build store (List.map (fun (key, value) -> { key; value }) bs)

let put t key value = insert t { key; value }
