module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module Rolling = Fb_hash.Rolling

type t = { store : Store.t; root : Hash.t option }

let store t = t.store
let root t = t.root

let params = Rolling.default_node_params
let max_node_bytes = 16 * (1 lsl params.q)

let leaf_chunk items =
  let w = Codec.writer () in
  Codec.varint w (List.length items);
  List.iter (Codec.bytes w) items;
  Chunk.v Chunk.Leaf_list (Codec.contents w)

let leaf_items chunk =
  match chunk.Chunk.kind with
  | Chunk.Leaf_list -> (
    match
      Codec.of_string (fun r -> Codec.read_list r Codec.read_bytes)
        chunk.Chunk.payload
    with
    | Ok items -> items
    | Error e -> raise (Postree.Corrupt ("list leaf: " ^ e)))
  | k ->
    raise
      (Postree.Corrupt
         (Printf.sprintf "expected list leaf, got %s" (Chunk.kind_to_string k)))

let leaf_count chunk = List.length (leaf_items chunk)

let encode_item item = Codec.to_string Codec.bytes item

let chunk_leaf_level store items =
  let out = ref [] in
  let emit items =
    let chunk = leaf_chunk items in
    let id = Store.put store chunk in
    out := { Seqtree.child = id; count = List.length items } :: !out
  in
  let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
  List.iter (fun it -> Chunker.add ch it (encode_item it)) items;
  Chunker.finish ch;
  List.rev !out

let of_list store items =
  { store; root = Seqtree.build_up store (chunk_leaf_level store items) }

let of_root store root = { store; root }
let length t = Seqtree.total_count t.store t.root ~leaf_count
let is_empty t = t.root = None
let leaf_row t = Seqtree.leaf_row t.store t.root ~leaf_count

let iter f t =
  List.iter
    (fun ie ->
      List.iter f (leaf_items (Seqtree.read_chunk t.store ie.Seqtree.child)))
    (leaf_row t)

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let get t n =
  if n < 0 then None
  else
    let rec go h n =
      let chunk = Seqtree.read_chunk t.store h in
      match chunk.Chunk.kind with
      | Chunk.Seq_index -> (
        match Seqtree.decode_index chunk with
        | Error e -> raise (Postree.Corrupt e)
        | Ok ies ->
          let rec pick n = function
            | [] -> None
            | ie :: rest ->
              if n < ie.Seqtree.count then go ie.Seqtree.child n
              else pick (n - ie.Seqtree.count) rest
          in
          pick n ies)
      | _ -> List.nth_opt (leaf_items chunk) n
    in
    match t.root with None -> None | Some h -> go h n

let splice t ~pos ~remove ~insert =
  let total = length t in
  if pos < 0 || remove < 0 || pos + remove > total then
    invalid_arg "Plist.splice: range out of bounds";
  match t.root with
  | None -> of_list t.store insert
  | Some _ ->
    let row = Array.of_list (leaf_row t) in
    let starts = Array.make (Array.length row) 0 in
    let () =
      let off = ref 0 in
      Array.iteri
        (fun i ie ->
          starts.(i) <- !off;
          off := !off + ie.Seqtree.count)
        row
    in
    let leaf_of p =
      let rec go i =
        if i + 1 >= Array.length row then i
        else if p < starts.(i + 1) then i
        else go (i + 1)
      in
      go 0
    in
    let i0 = leaf_of pos in
    let old_end = pos + remove in
    let j = leaf_of (min old_end (total - 1)) in
    let j =
      if old_end >= starts.(j) + row.(j).Seqtree.count then j + 1 else j
    in
    let out = ref [] in
    let emit items =
      let chunk = leaf_chunk items in
      let id = Store.put t.store chunk in
      out := { Seqtree.child = id; count = List.length items } :: !out
    in
    let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
    let add_item it = Chunker.add ch it (encode_item it) in
    let items_of k = leaf_items (Seqtree.read_chunk t.store row.(k).Seqtree.child) in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let drop n l = List.filteri (fun i _ -> i >= n) l in
    List.iter add_item (take (pos - starts.(i0)) (items_of i0));
    List.iter add_item insert;
    if j < Array.length row then
      List.iter add_item (drop (old_end - starts.(j)) (items_of j));
    let rec resync k =
      if k >= Array.length row then (Chunker.finish ch; [])
      else if not (Chunker.pending ch) then
        Array.to_list (Array.sub row k (Array.length row - k))
      else begin
        List.iter add_item (items_of k);
        resync (k + 1)
      end
    in
    let suffix = resync (j + 1) in
    let prefix = Array.to_list (Array.sub row 0 i0) in
    let new_row = prefix @ List.rev !out @ suffix in
    { t with root = Seqtree.build_up t.store new_row }

let set t n x =
  if n < 0 || n >= length t then invalid_arg "Plist.set: out of bounds";
  splice t ~pos:n ~remove:1 ~insert:[ x ]

let push_back t x = splice t ~pos:(length t) ~remove:0 ~insert:[ x ]

type range_diff = {
  old_pos : int;
  old_len : int;
  new_pos : int;
  new_len : int;
}

let diff t1 t2 =
  if Option.equal Hash.equal t1.root t2.root then None
  else begin
    let r1 = Array.of_list (leaf_row t1)
    and r2 = Array.of_list (leaf_row t2) in
    let n1 = Array.length r1 and n2 = Array.length r2 in
    let eq i j = Hash.equal r1.(i).Seqtree.child r2.(j).Seqtree.child in
    let rec pre i = if i < n1 && i < n2 && eq i i then pre (i + 1) else i in
    let p = pre 0 in
    let rec suf k =
      if n1 - 1 - k >= p && n2 - 1 - k >= p && eq (n1 - 1 - k) (n2 - 1 - k)
      then suf (k + 1)
      else k
    in
    let s = suf 0 in
    let sum r lo hi =
      let acc = ref 0 in
      for i = lo to hi - 1 do
        acc := !acc + r.(i).Seqtree.count
      done;
      !acc
    in
    (* Chunk-aligned window, then trim equal elements at both ends. *)
    let mid r lo hi st =
      List.concat_map
        (fun k -> leaf_items (Seqtree.read_chunk st k.Seqtree.child))
        (Array.to_list (Array.sub r lo (hi - lo)))
    in
    let m1 = Array.of_list (mid r1 p (n1 - s) t1.store)
    and m2 = Array.of_list (mid r2 p (n2 - s) t2.store) in
    let l1 = Array.length m1 and l2 = Array.length m2 in
    let rec epre i =
      if i < l1 && i < l2 && String.equal m1.(i) m2.(i) then epre (i + 1)
      else i
    in
    let ep = epre 0 in
    let rec esuf k =
      if l1 - 1 - k >= ep && l2 - 1 - k >= ep
         && String.equal m1.(l1 - 1 - k) m2.(l2 - 1 - k)
      then esuf (k + 1)
      else k
    in
    let es = esuf 0 in
    Some
      { old_pos = sum r1 0 p + ep;
        old_len = l1 - ep - es;
        new_pos = sum r2 0 p + ep;
        new_len = l2 - ep - es }
  end

type proof = string list

(* Routing by index: the child whose cumulative count covers it; an
   out-of-range index routes to the last child (whose leaf then proves the
   range bound, like absence proofs in the keyed tree). *)
let route ies n =
  let rec pick n = function
    | [] -> invalid_arg "route: empty index node"
    | [ ie ] -> (ie, n)
    | ie :: rest ->
      if n < ie.Seqtree.count then (ie, n) else pick (n - ie.Seqtree.count) rest
  in
  pick n ies

let prove t n =
  if n < 0 then Error "prove: negative index"
  else
    match t.root with
    | None -> Error "cannot prove against an empty list"
    | Some root ->
      let rec go h n acc =
        match t.store.Store.get_raw h with
        | None -> Error (Printf.sprintf "missing chunk %s" (Hash.to_hex h))
        | Some raw -> (
          let acc = raw :: acc in
          let chunk = Seqtree.read_chunk t.store h in
          match chunk.Chunk.kind with
          | Chunk.Seq_index -> (
            match Seqtree.decode_index chunk with
            | Error e -> Error e
            | Ok [] -> Error "empty index node"
            | Ok ies ->
              let ie, n' = route ies n in
              go ie.Seqtree.child n' acc)
          | _ -> Ok (List.rev acc))
      in
      (try go root n [] with Postree.Corrupt m -> Error m)

let verify_proof ~root n proof =
  if n < 0 then Ok None
  else
    let rec walk expected n = function
      | [] -> Error "proof: truncated path"
      | raw :: rest ->
        if not (Hash.equal (Hash.of_string raw) expected) then
          Error "proof: chunk does not hash to the id its parent names"
        else (
          match Chunk.decode raw with
          | Error e -> Error ("proof: " ^ e)
          | Ok chunk -> (
            match chunk.Chunk.kind with
            | Chunk.Seq_index -> (
              match Seqtree.decode_index chunk with
              | Error e -> Error ("proof: " ^ e)
              | Ok [] -> Error "proof: empty index node"
              | Ok ies ->
                let ie, n' = route ies n in
                walk ie.Seqtree.child n' rest)
            | Chunk.Leaf_list ->
              if rest <> [] then Error "proof: trailing chunks after leaf"
              else (
                match
                  Codec.of_string
                    (fun r -> Codec.read_list r Codec.read_bytes)
                    chunk.Chunk.payload
                with
                | Error e -> Error ("proof: " ^ e)
                | Ok items -> Ok (List.nth_opt items n))
            | k ->
              Error
                (Printf.sprintf "proof: unexpected chunk kind %s"
                   (Chunk.kind_to_string k))))
    in
    walk root n proof

let chunk_count t = List.length (leaf_row t)

let node_hashes t =
  let acc = ref [] in
  let rec go h =
    acc := h :: !acc;
    let chunk = Seqtree.read_chunk t.store h in
    match chunk.Chunk.kind with
    | Chunk.Seq_index -> (
      match Seqtree.decode_index chunk with
      | Ok ies -> List.iter (fun ie -> go ie.Seqtree.child) ies
      | Error e -> raise (Postree.Corrupt e))
    | _ -> ()
  in
  (match t.root with None -> () | Some h -> go h);
  List.rev !acc

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) = Result.bind in
  let check_integrity h =
    match t.store.Store.get_raw h with
    | None -> err "missing chunk %s" (Hash.to_hex h)
    | Some raw ->
      if not (Hash.equal (Hash.of_string raw) h) then
        err "chunk %s: tampered content" (Hash.to_hex h)
      else (
        match Chunk.decode raw with
        | Error e -> err "chunk %s: %s" (Hash.to_hex h) e
        | Ok c -> Ok c)
  in
  let check_boundary ~is_last ~node_bytes encoded_items h =
    let rolling = Rolling.create params in
    let rec scan = function
      | [] -> Ok ()
      | [ last ] ->
        let hit = Rolling.feed_string rolling last in
        if hit || is_last || node_bytes >= max_node_bytes then Ok ()
        else err "node %s: unjustified boundary" (Hash.to_hex h)
      | enc :: rest ->
        if Rolling.feed_string rolling enc then
          err "node %s: pattern before final item" (Hash.to_hex h)
        else scan rest
    in
    scan encoded_items
  in
  let rec check_level hashes =
    let rec per_node hs children_acc =
      match hs with
      | [] -> Ok (List.rev children_acc)
      | h :: rest ->
        let* chunk = check_integrity h in
        (match chunk.Chunk.kind with
         | Chunk.Leaf_list ->
           let items = leaf_items chunk in
           let* () =
             check_boundary ~is_last:(rest = [])
               ~node_bytes:(Chunk.encoded_size chunk)
               (List.map encode_item items) h
           in
           per_node rest children_acc
         | Chunk.Seq_index ->
           let* ies = Seqtree.decode_index chunk in
           per_node rest (List.rev_append ies children_acc)
         | k ->
           err "chunk %s: unexpected kind %s" (Hash.to_hex h)
             (Chunk.kind_to_string k))
    in
    let* children = per_node hashes [] in
    match children with
    | [] -> Ok ()
    | ies ->
      let* () =
        List.fold_left
          (fun acc ie ->
            let* () = acc in
            let* chunk = check_integrity ie.Seqtree.child in
            let count =
              match chunk.Chunk.kind with
              | Chunk.Seq_index -> (
                match Seqtree.decode_index chunk with
                | Ok ces ->
                  List.fold_left (fun a c -> a + c.Seqtree.count) 0 ces
                | Error _ -> -1)
              | _ -> leaf_count chunk
            in
            if count <> ie.Seqtree.count then
              err "child %s: count %d, index says %d"
                (Hash.to_hex ie.Seqtree.child)
                count ie.Seqtree.count
            else Ok ())
          (Ok ()) ies
      in
      check_level (List.map (fun ie -> ie.Seqtree.child) ies)
  in
  match t.root with
  | None -> Ok ()
  | Some h -> ( try check_level [ h ] with Postree.Corrupt m -> Error m)

let pp fmt t =
  match t.root with
  | None -> Format.pp_print_string fmt "<empty list>"
  | Some h ->
    Format.fprintf fmt "<list root=%a items=%d chunks=%d>" Hash.pp h
      (length t) (chunk_count t)
