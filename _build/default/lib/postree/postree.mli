(** Pattern-Oriented-Split Tree — a structurally invariant Merkle B+-tree
    (paper §II-A/B, Figs. 2-3).

    A POS-Tree instance over a set of records has exactly one physical shape
    regardless of the order or batching of the operations that produced it
    (SIRI Property 1): node boundaries are decided by a rolling-hash pattern
    over entry content, and child pointers are the cryptographic hashes of
    child chunks.  Consequences:

    - logically equal trees share {e all} pages, so the chunk store
      deduplicates them to a single copy;
    - [diff] prunes identical sub-trees by id and runs in O(D log N);
    - three-way [merge] splices disjointly-modified sub-trees, reusing
      untouched pages;
    - the root hash authenticates the entire content (tamper evidence).

    The functor is instantiated for maps ({!Pmap}) and sets ({!Pset});
    sequences use {!Seqtree}. *)

exception Corrupt of string
(** Raised when the chunk store returns missing or undecodable chunks while
    navigating a tree.  Use [validate] (or [Forkbase.verify]) for a
    non-raising integrity check. *)

module type ENTRY = Postree_intf.ENTRY
(** Serialized-entry interface a POS-Tree is built over. *)

module type S = Postree_intf.S
(** Output signature of {!Make}. *)

module Make (E : ENTRY) : S with type entry = E.t and type key = E.key
