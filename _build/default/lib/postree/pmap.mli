(** POS-Tree map: sorted string keys to opaque string values.

    The workhorse structure: ForkBase maps, relational tables (row key →
    encoded row) and dataset directories are all Pmaps.  See {!Postree.Make}
    for the semantics of every operation. *)

type binding = { key : string; value : string }

val binding : string -> string -> binding

include Postree.S with type entry := binding and type key := string

val find_value : t -> string -> string option
val bindings : t -> (string * string) list
val of_bindings : Fb_chunk.Store.t -> (string * string) list -> t
val put : t -> string -> string -> t
