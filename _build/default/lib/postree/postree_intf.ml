(** Module types for {!Postree}.  This compilation unit has no
    implementation content; it exists so the [ENTRY] and [S] signatures can
    be referenced from both [postree.mli] and instantiation interfaces
    without duplication. *)

(** Serialized-entry interface a POS-Tree is built over. *)
module type ENTRY = sig
  type t
  type key

  val key : t -> key
  val compare_key : key -> key -> int

  val equal : t -> t -> bool
  (** Structural equality of whole entries (used by [diff]). *)

  val encode : Fb_codec.Codec.writer -> t -> unit
  val decode : Fb_codec.Codec.reader -> t
  val encode_key : Fb_codec.Codec.writer -> key -> unit
  val decode_key : Fb_codec.Codec.reader -> key

  val leaf_kind : Fb_chunk.Chunk.kind
  (** Chunk kind tag for this tree's leaves. *)

  val pp : Format.formatter -> t -> unit
  val pp_key : Format.formatter -> key -> unit
end

(** Output signature of {!Make}. *)
module type S = sig
  type entry
  type key

  type t
  (** A tree handle: a chunk store plus the root id.  The handle is
      immutable; updates return new handles and share unmodified pages. *)

  type edit = Put of entry | Remove of key

  type change =
    | Added of entry              (** present in [t2] only *)
    | Removed of entry            (** present in [t1] only *)
    | Modified of entry * entry   (** same key, different entries *)

  val change_key : change -> key

  (** {1 Construction} *)

  val empty : Fb_chunk.Store.t -> t

  val build : Fb_chunk.Store.t -> entry list -> t
  (** Bulk-build from entries; they are sorted and key-deduplicated
      (last wins) first. *)

  val build_sorted_seq : Fb_chunk.Store.t -> entry Seq.t -> t
  (** Streaming bulk-build from an already strictly-key-sorted sequence —
      the whole entry set never needs to be resident.
      @raise Invalid_argument if keys are not strictly increasing. *)

  val of_root : Fb_chunk.Store.t -> Fb_hash.Hash.t option -> t
  (** Re-attach a handle to a previously stored root. *)

  (** {1 Accessors} *)

  val store : t -> Fb_chunk.Store.t
  val root : t -> Fb_hash.Hash.t option
  val is_empty : t -> bool

  val cardinal : t -> int
  (** Number of entries, from index-node counts: O(root width). *)

  val height : t -> int
  (** Levels in the tree; 0 for empty, 1 for a single-leaf tree. *)

  val find : t -> key -> entry option
  val mem : t -> key -> bool
  val min_entry : t -> entry option
  val max_entry : t -> entry option

  val iter : (entry -> unit) -> t -> unit
  val fold : ('acc -> entry -> 'acc) -> 'acc -> t -> 'acc
  val to_list : t -> entry list

  val to_seq : t -> entry Seq.t
  (** Lazy in-order traversal: chunks are read as the sequence is consumed,
      so early termination reads O(consumed/B + log N) chunks. *)

  (** {1 Range queries}

      Bounds are inclusive; [None] means unbounded on that side.  Sub-trees
      wholly outside the range are pruned via split keys, so a narrow range
      touches O(log N + matches/B) chunks. *)

  val iter_range : ?lo:key -> ?hi:key -> (entry -> unit) -> t -> unit
  val fold_range :
    ?lo:key -> ?hi:key -> ('acc -> entry -> 'acc) -> 'acc -> t -> 'acc
  val to_list_range : ?lo:key -> ?hi:key -> t -> entry list

  val count_range : ?lo:key -> ?hi:key -> t -> int
  (** Entries in the range.  Interior sub-trees are counted from index
      statistics without reading their leaves, so this is O(log N) for any
      range width. *)

  val nth : t -> int -> entry option
  (** The [n]-th smallest entry (0-based), located through index counts in
      O(log N); [None] when out of range. *)

  (** {1 Updates} *)

  val update : t -> edit list -> t
  (** Apply a batch of edits.  Only the leaves overlapping the edited key
      range are re-chunked; chunking is continued past the last edit until
      the node boundary re-synchronizes with the original layout, then the
      remaining pages are reused verbatim.  The result is bit-identical to
      [build] over the edited record set (structural invariance). *)

  val insert : t -> entry -> t
  val remove : t -> key -> t

  (** {1 Diff and merge (paper §II-B)} *)

  val diff : t -> t -> change list
  (** [diff t1 t2] — changes turning [t1] into [t2], sorted by key.
      Sub-trees with equal ids are pruned without being read. *)

  val edit_of_change : change -> edit
  (** Forward direction: the edit that applies the change to [t1]. *)

  type conflict = {
    key : key;
    base : entry option;  (** entry in the common base, if any *)
    ours : edit;          (** what [ours] did to the key *)
    theirs : edit;        (** what [theirs] did to the key *)
  }

  type resolver = conflict -> edit option
  (** Return [Some edit] to resolve, [None] to leave unresolved. *)

  val resolve_ours : resolver
  val resolve_theirs : resolver

  val merge :
    ?on_conflict:resolver -> base:t -> ours:t -> theirs:t -> unit ->
    (t, conflict list) result
  (** Three-way merge: diff [ours] and [theirs] against [base], apply
      [theirs]'s non-conflicting edits onto [ours].  Pages of sub-trees
      modified on only one side are reused, not rebuilt (Fig. 3) — reuse is
      observable as dedup hits in the store statistics.  Default resolver
      resolves nothing: any genuinely conflicting key yields [Error]. *)

  (** {1 Merkle proofs}

      A proof is the chunk path from the root to the leaf responsible for a
      key — O(log N) chunks.  A verifier holding only the trusted root hash
      can check membership ({e this} entry is in the tree) or absence ({e
      no} entry has this key) without any store access: each chunk must
      hash to the id its parent names, and the leaf settles the question.
      This is how a light client audits single rows of a huge dataset from
      a version uid. *)

  type proof = string list
  (** Encoded chunks, root first. *)

  val prove : t -> key -> (proof, string) result
  (** Build the proof path for [key] (works for both present and absent
      keys); fails on an empty tree or corrupt store. *)

  val verify_proof :
    root:Fb_hash.Hash.t -> key -> proof -> (entry option, string) result
  (** Pure check against a trusted [root].  [Ok (Some e)]: [e] is proven to
      be the tree's entry for [key].  [Ok None]: the tree provably has no
      entry for [key].  [Error _]: the proof does not authenticate. *)

  (** {1 Introspection and validation} *)

  type node_stats = {
    levels : int;
    nodes_per_level : int list;    (** root level first *)
    bytes_per_level : int list;
    leaf_entries : int;
    leaf_node_sizes : int list;    (** encoded sizes of every leaf chunk *)
  }

  val node_stats : t -> node_stats

  val leaf_hashes : t -> Fb_hash.Hash.t list
  val node_hashes : t -> Fb_hash.Hash.t list
  (** All chunk ids reachable from the root (for GC and page-sharing
      accounting). *)

  val validate : t -> (unit, string) result
  (** Full integrity check: every chunk's bytes re-hash to its id; nodes
      decode with the right kinds; keys are strictly sorted globally; index
      split keys and counts match the children; leaf depth is uniform; and
      every node boundary is justified (pattern in its final entry, size
      cap, or level-last). *)

  val pp : Format.formatter -> t -> unit
end


