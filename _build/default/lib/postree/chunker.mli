(** Pattern-driven node splitting (paper §II-A).

    Items (serialized entries) are streamed in; the rolling hash scans their
    bytes and a node boundary is placed after the first item in which the
    pattern fires — "if a pattern occurs in the middle of an entry, the page
    boundary is extended to cover the whole entry".  A hard byte cap forces
    a boundary on pathological pattern-free content so node size stays
    bounded.  The rolling state is reset at every boundary, which is what
    makes node layout a function of content alone (structural
    invariance). *)

type 'a t

val create :
  ?params:Fb_hash.Rolling.params ->
  ?max_bytes:int ->
  emit:('a list -> unit) ->
  unit ->
  'a t
(** [emit] receives each completed node's items in order.  [max_bytes]
    defaults to 16 × the expected node size ([2^q] bytes). *)

val add : 'a t -> 'a -> string -> unit
(** Feed one item together with its serialized bytes. *)

val pending : 'a t -> bool
(** [true] if items have been fed since the last boundary. *)

val finish : 'a t -> unit
(** Flush the trailing node, if any (the only node allowed to end without a
    pattern).  The chunker is reusable afterwards. *)
