(** POS-Tree blob: an immutable byte string chunked by content.

    Leaves are raw byte runs cut by the rolling-hash pattern (content-based
    slicing, as in LBFS [8]); internal nodes are {!Seqtree} count-indexed
    nodes.  Two blobs differing in a local edit share every chunk outside a
    small window around the edit, whatever the byte offsets — this is the
    deduplication Fig. 4 demonstrates on CSV files. *)

type t

val store : t -> Fb_chunk.Store.t
val root : t -> Fb_hash.Hash.t option

val of_string : Fb_chunk.Store.t -> string -> t
val of_root : Fb_chunk.Store.t -> Fb_hash.Hash.t option -> t

val length : t -> int
val is_empty : t -> bool

val to_string : t -> string

val read : t -> pos:int -> len:int -> string
(** @raise Invalid_argument if the range exceeds the blob. *)

val splice : t -> pos:int -> remove:int -> insert:string -> t
(** Replace [remove] bytes at [pos] with [insert].  Only chunks around the
    edit are rebuilt; chunking re-synchronizes with the original boundaries
    and the remaining chunks are shared.  The result is bit-identical to
    [of_string] of the edited content. *)

val append : t -> string -> t

type range_diff = {
  old_pos : int; old_len : int;   (** replaced range in the old blob *)
  new_pos : int; new_len : int;   (** replacement range in the new blob *)
}

val diff : t -> t -> range_diff option
(** [None] when equal; otherwise the smallest chunk-aligned replaced range
    (common prefix and suffix chunks are pruned by id without reading). *)

(** {1 Merkle proofs}

    Byte-range proofs: authenticate a substring of a blob against its root
    hash alone.  The proof carries the index path(s) plus only the leaf
    chunks overlapping the range — O(len/chunk + log N) bytes. *)

type proof = string list
(** Encoded chunks in deterministic pre-order, root first. *)

val prove : t -> pos:int -> len:int -> (proof, string) result
(** @raise nothing; errors on out-of-range or corrupt store. *)

val verify_proof :
  root:Fb_hash.Hash.t -> pos:int -> len:int -> proof ->
  (string, string) result
(** [Ok bytes]: the blob provably contains [bytes] at [pos].  [Error _]:
    forged, malformed, or out of range. *)

val chunk_count : t -> int
val leaf_sizes : t -> int list
val node_hashes : t -> Fb_hash.Hash.t list
val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
