(** POS-Tree set of strings.  See {!Postree.S}. *)

include Postree.S with type entry := string and type key := string

val elements : t -> string list
val of_elements : Fb_chunk.Store.t -> string list -> t
val add : t -> string -> t
