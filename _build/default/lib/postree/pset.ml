module Codec = Fb_codec.Codec

module Entry = struct
  type t = string
  type key = string

  let key x = x
  let compare_key = String.compare
  let equal = String.equal
  let encode = Codec.bytes
  let decode = Codec.read_bytes
  let encode_key = Codec.bytes
  let decode_key = Codec.read_bytes
  let leaf_kind = Fb_chunk.Chunk.Leaf_set
  let pp fmt s = Format.fprintf fmt "%S" s
  let pp_key = pp
end

include Postree.Make (Entry)

let elements = to_list
let of_elements = build
let add = insert
