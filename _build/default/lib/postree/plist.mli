(** POS-Tree list: an immutable sequence of opaque string elements with
    positional access.

    Like {!Pblob} but element-granular: node boundaries never split an
    element, and positions index elements instead of bytes.  Backs the
    ForkBase [List] value type. *)

type t

val store : t -> Fb_chunk.Store.t
val root : t -> Fb_hash.Hash.t option

val of_list : Fb_chunk.Store.t -> string list -> t
val of_root : Fb_chunk.Store.t -> Fb_hash.Hash.t option -> t

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> string option
val to_list : t -> string list
val iter : (string -> unit) -> t -> unit
val fold : ('acc -> string -> 'acc) -> 'acc -> t -> 'acc

val splice : t -> pos:int -> remove:int -> insert:string list -> t
(** Replace [remove] elements at [pos] with [insert]; chunk reuse and
    structural invariance as in {!Pblob.splice}. *)

val set : t -> int -> string -> t
(** @raise Invalid_argument if out of bounds. *)

val push_back : t -> string -> t

type range_diff = {
  old_pos : int; old_len : int;
  new_pos : int; new_len : int;
}

val diff : t -> t -> range_diff option
(** Element-granular minimal replaced range: chunk-level pruning by id,
    then element-level prefix/suffix trimming inside the changed window. *)

(** {1 Merkle proofs}

    Positional counterpart of {!Postree.S.prove}: the chunk path to the
    element at an index, verifiable against the root hash alone.  Counts in
    index entries are covered by the hashes, so a prover cannot misroute. *)

type proof = string list
(** Encoded chunks, root first. *)

val prove : t -> int -> (proof, string) result
(** Proof for the element at the index (also proves out-of-range). *)

val verify_proof :
  root:Fb_hash.Hash.t -> int -> proof -> (string option, string) result
(** [Ok (Some e)]: the list provably holds [e] at the index.  [Ok None]:
    the index is provably out of range.  [Error _]: forged or malformed. *)

val chunk_count : t -> int
val node_hashes : t -> Fb_hash.Hash.t list
val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
