lib/postree/pblob.mli: Fb_chunk Fb_hash Format
