lib/postree/postree.mli: Postree_intf
