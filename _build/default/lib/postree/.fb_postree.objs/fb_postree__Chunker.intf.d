lib/postree/chunker.mli: Fb_hash
