lib/postree/seqtree.mli: Fb_chunk Fb_codec Fb_hash
