lib/postree/pset.mli: Fb_chunk Postree
