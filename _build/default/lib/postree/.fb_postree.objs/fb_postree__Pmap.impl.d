lib/postree/pmap.ml: Fb_chunk Fb_codec Format List Option Postree String
