lib/postree/pset.ml: Fb_chunk Fb_codec Format Postree String
