lib/postree/seqtree.ml: Chunker Fb_chunk Fb_codec Fb_hash List Postree Printf
