lib/postree/postree.ml: Chunker Fb_chunk Fb_codec Fb_hash Format List Postree_intf Printf Result Seq
