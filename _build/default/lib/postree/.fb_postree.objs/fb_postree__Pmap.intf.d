lib/postree/pmap.mli: Fb_chunk Postree
