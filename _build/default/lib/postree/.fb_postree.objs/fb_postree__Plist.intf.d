lib/postree/plist.mli: Fb_chunk Fb_hash Format
