lib/postree/pblob.ml: Array Buffer Fb_chunk Fb_codec Fb_hash Format List Option Postree Printf Result Seqtree String
