lib/postree/chunker.ml: Fb_hash List String
