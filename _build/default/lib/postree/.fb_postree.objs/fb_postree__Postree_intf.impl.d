lib/postree/postree_intf.ml: Fb_chunk Fb_codec Fb_hash Format Seq
