(** Shared internals of the positional POS-Trees ({!Pblob}, {!Plist}).

    Sequence trees index by position instead of key: an internal node entry
    carries the element count of its child sub-tree, so the n-th element is
    found by walking cumulative counts.  Node boundaries are pattern-defined
    exactly as in the keyed tree, giving the same structural invariance and
    page sharing. *)

type index_entry = { child : Fb_hash.Hash.t; count : int }

val encode_index_entry : Fb_codec.Codec.writer -> index_entry -> unit
val decode_index_entry : Fb_codec.Codec.reader -> index_entry

val index_chunk : index_entry list -> Fb_chunk.Chunk.t

val decode_index : Fb_chunk.Chunk.t -> (index_entry list, string) result
(** Decode a [Seq_index] chunk. *)

val chunk_index_level :
  Fb_chunk.Store.t -> index_entry list -> index_entry list
(** Pattern-chunk a row of index entries into [Seq_index] nodes, returning
    the parent row. *)

val build_up : Fb_chunk.Store.t -> index_entry list -> Fb_hash.Hash.t option
(** Collapse rows upward until a single root remains ([None] for empty). *)

val leaf_row :
  Fb_chunk.Store.t ->
  Fb_hash.Hash.t option ->
  leaf_count:(Fb_chunk.Chunk.t -> int) ->
  index_entry list
(** The leaf level as index entries; [leaf_count] measures a leaf chunk
    (bytes for blobs, items for lists).
    @raise Postree.Corrupt on missing or undecodable chunks. *)

val total_count : Fb_chunk.Store.t -> Fb_hash.Hash.t option ->
  leaf_count:(Fb_chunk.Chunk.t -> int) -> int

val read_chunk : Fb_chunk.Store.t -> Fb_hash.Hash.t -> Fb_chunk.Chunk.t
(** @raise Postree.Corrupt if absent. *)
