(** Edit scripts over CSV documents and row sets — the version-to-version
    mutations of the benchmark workloads. *)

val change_one_word : ?seed:int64 -> string -> string
(** Replace a single word of a CSV document with ["CHANGED"] (the exact
    Fig. 4 manipulation: "two external CSV datasets with a single-word
    difference").  Header line is left intact. *)

val point_edit_cells :
  ?seed:int64 -> cells:int -> string list list -> string list list
(** Overwrite [cells] random non-header, non-key cells with fresh values. *)

val append_rows : ?seed:int64 -> rows:int -> string list list -> string list list
(** Append synthetic rows continuing the id sequence. *)

val delete_rows : ?seed:int64 -> rows:int -> string list list -> string list list
(** Drop [rows] random data rows. *)
