(* Inverse-CDF sampling over precomputed cumulative weights.  O(log n) per
   sample; exact, which beats the usual rejection approximations for the
   moderate n the benches use. *)
type t = {
  rng : Fb_hash.Prng.t;
  cdf : float array;
}

let create ?(theta = 0.99) rng ~n =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { rng; cdf }

let next t =
  let u = Fb_hash.Prng.next_float t.rng in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
