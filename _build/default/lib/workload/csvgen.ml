module Prng = Fb_hash.Prng

type spec = {
  rows : int;
  string_columns : int;
  int_columns : int;
  seed : int64;
}

let default_word_pool =
  [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf";
     "hotel"; "india"; "juliet"; "kilo"; "lima"; "mike"; "november";
     "oscar"; "papa"; "quebec"; "romeo"; "sierra"; "tango"; "uniform";
     "victor"; "whiskey"; "xray"; "yankee"; "zulu"; "amber"; "basil";
     "cedar"; "dahlia"; "elm"; "fern"; "ginger"; "hazel"; "iris"; "jade" |]

let generate_rows spec =
  let rng = Prng.create spec.seed in
  let header =
    "id"
    :: List.init spec.string_columns (Printf.sprintf "s%d")
    @ List.init spec.int_columns (Printf.sprintf "n%d")
  in
  let data =
    List.init spec.rows (fun i ->
        let id = Printf.sprintf "r%08d" i in
        let strings =
          List.init spec.string_columns (fun _ ->
              let a = default_word_pool.(Prng.next_int rng (Array.length default_word_pool)) in
              let b = default_word_pool.(Prng.next_int rng (Array.length default_word_pool)) in
              a ^ "-" ^ b)
        in
        let ints =
          List.init spec.int_columns (fun _ ->
              string_of_int (Prng.next_int rng 1_000_000))
        in
        (id :: strings) @ ints)
  in
  header :: data

let generate spec = Fb_types.Csv.render (generate_rows spec)

let generate_of_size ?(seed = 42L) ~target_bytes () =
  (* Estimate bytes per row from a sample, then generate and trim. *)
  let sample = { rows = 64; string_columns = 3; int_columns = 2; seed } in
  let sample_csv = generate sample in
  let header_len = String.index sample_csv '\n' + 1 in
  let per_row =
    float_of_int (String.length sample_csv - header_len) /. 64.0
  in
  let rows =
    max 1 (int_of_float (float_of_int (target_bytes - header_len) /. per_row))
  in
  generate { rows; string_columns = 3; int_columns = 2; seed }
