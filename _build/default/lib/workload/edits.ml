module Prng = Fb_hash.Prng

let change_one_word ?(seed = 7L) csv =
  let rng = Prng.create seed in
  match Fb_types.Csv.parse csv with
  | Error e -> invalid_arg ("change_one_word: " ^ e)
  | Ok [] -> invalid_arg "change_one_word: empty document"
  | Ok (header :: data) ->
    if data = [] then invalid_arg "change_one_word: no data rows";
    let r = Prng.next_int rng (List.length data) in
    let width = List.length header in
    (* Avoid column 0, the key, so the edit is an in-place cell change. *)
    let c = if width > 1 then 1 + Prng.next_int rng (width - 1) else 0 in
    let data =
      List.mapi
        (fun i row ->
          if i <> r then row
          else List.mapi (fun j cell -> if j = c then "CHANGED" else cell) row)
        data
    in
    Fb_types.Csv.render (header :: data)

let point_edit_cells ?(seed = 11L) ~cells rows =
  match rows with
  | [] -> []
  | header :: data ->
    let rng = Prng.create seed in
    let arr = Array.of_list (List.map Array.of_list data) in
    let width = List.length header in
    if Array.length arr > 0 && width > 1 then
      for _ = 1 to cells do
        let r = Prng.next_int rng (Array.length arr) in
        let c = 1 + Prng.next_int rng (width - 1) in
        arr.(r).(c) <- Printf.sprintf "edit%d" (Prng.next_int rng 1_000_000)
      done;
    header :: List.map Array.to_list (Array.to_list arr)

let append_rows ?(seed = 13L) ~rows:n rows =
  match rows with
  | [] -> []
  | header :: data ->
    let rng = Prng.create seed in
    let width = List.length header in
    let start = List.length data in
    let fresh =
      List.init n (fun i ->
          Printf.sprintf "r%08d" (start + i)
          :: List.init (width - 1) (fun _ ->
                 Printf.sprintf "new%d" (Prng.next_int rng 1_000_000)))
    in
    header :: (data @ fresh)

let delete_rows ?(seed = 17L) ~rows:n rows =
  match rows with
  | [] -> []
  | header :: data ->
    let rng = Prng.create seed in
    let len = List.length data in
    let n = min n len in
    let victims = Hashtbl.create n in
    let rec pick remaining =
      if remaining > 0 then begin
        let i = Prng.next_int rng len in
        if Hashtbl.mem victims i then pick remaining
        else begin
          Hashtbl.replace victims i ();
          pick (remaining - 1)
        end
      end
    in
    pick n;
    header :: List.filteri (fun i _ -> not (Hashtbl.mem victims i)) data
