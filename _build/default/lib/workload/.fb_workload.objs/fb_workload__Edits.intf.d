lib/workload/edits.mli:
