lib/workload/csvgen.mli:
