lib/workload/csvgen.ml: Array Fb_hash Fb_types List Printf String
