lib/workload/zipf.ml: Array Fb_hash Float
