lib/workload/edits.ml: Array Fb_hash Fb_types Hashtbl List Printf
