lib/workload/zipf.mli: Fb_hash
