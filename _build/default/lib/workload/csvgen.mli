(** Deterministic synthetic CSV datasets.

    Stand-in for the external CSV files of the demo (paper §III-A): the
    Fig. 4 experiment needs a ~340 KB CSV and a copy of it differing in a
    single word, which [generate] and {!Edits} provide reproducibly. *)

type spec = {
  rows : int;
  string_columns : int;   (** word-pool text columns *)
  int_columns : int;
  seed : int64;
}

val default_word_pool : string array

val generate : spec -> string
(** CSV document: header ["id,s0..,n0.."] then [rows] data lines; the [id]
    column is a unique zero-padded key. *)

val generate_rows : spec -> string list list
(** Same data as cell lists (header first). *)

val generate_of_size : ?seed:int64 -> target_bytes:int -> unit -> string
(** A CSV of approximately (within a couple of rows of) the requested
    size — e.g. the 338.54 KB dataset of Fig. 4. *)
