(** Zipfian key selection for skewed update workloads. *)

type t

val create : ?theta:float -> Fb_hash.Prng.t -> n:int -> t
(** Zipf(θ) over ranks [0..n-1]; default skew θ = 0.99 (the YCSB
    constant). *)

val next : t -> int
(** Sample a rank; rank 0 is the hottest. *)
