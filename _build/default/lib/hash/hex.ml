let alphabet = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) alphabet.[b lsr 4];
    Bytes.set out ((2 * i) + 1) alphabet.[b land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "hex: odd length"
  else begin
    let out = Bytes.create (n / 2) in
    let bad = ref None in
    (try
       for i = 0 to (n / 2) - 1 do
         let hi = nibble s.[2 * i] and lo = nibble s.[(2 * i) + 1] in
         if hi < 0 || lo < 0 then begin
           bad := Some (2 * i);
           raise Exit
         end;
         Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
       done
     with Exit -> ());
    match !bad with
    | Some i -> Error (Printf.sprintf "hex: invalid character at offset %d" i)
    | None -> Ok (Bytes.unsafe_to_string out)
  end

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg e
