lib/hash/rolling.mli:
