lib/hash/base32.mli:
