lib/hash/hash.ml: Base32 Format Hashtbl Hex Int64 Map Printf Set Sha256 String
