lib/hash/prng.mli:
