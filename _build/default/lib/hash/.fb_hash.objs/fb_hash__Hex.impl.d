lib/hash/hex.ml: Bytes Char Printf String
