lib/hash/prng.ml: Int64
