lib/hash/base32.ml: Buffer Char Printf String
