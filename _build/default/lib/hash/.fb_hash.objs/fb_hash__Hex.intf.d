lib/hash/hex.mli:
