lib/hash/hash.mli: Format Hashtbl Map Set
