lib/hash/rolling.ml: Array Bytes Char Int64 List Prng String
