(** Pure-OCaml SHA-256 (FIPS 180-4).

    The sealed build environment ships no digest library, so ForkBase carries
    its own implementation.  It is validated against the NIST test vectors in
    the test suite.  The incremental interface mirrors the usual
    [init]/[update]/[finalize] shape so large values can be hashed without
    concatenating their serialized form. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx
(** Fresh context. *)

val update : ctx -> string -> unit
(** Absorb a whole string. *)

val update_sub : ctx -> string -> pos:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val update_char : ctx -> char -> unit
(** Absorb a single byte. *)

val finalize : ctx -> string
(** Produce the 32-byte digest.  The context must not be reused. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val digest_strings : string list -> string
(** Digest of the concatenation of the given strings, without building the
    concatenation. *)
