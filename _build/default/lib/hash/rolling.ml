type params = { window : int; q : int }

let default_node_params = { window = 32; q = 11 }
let default_blob_params = { window = 48; q = 12 }

(* Γ: one fixed pseudo-random table per q, derived from a pinned SplitMix64
   seed.  Chunk boundaries — and hence every stored hash — depend on this
   table, so the seed must never change. *)
let gamma_seed = 0x666f726b62617365L (* "forkbase" *)

let gamma_table q =
  let rng = Prng.create gamma_seed in
  let mask = (1 lsl q) - 1 in
  Array.init 256 (fun _ -> Int64.to_int (Prng.next_int64 rng) land mask)

type t = {
  params : params;
  table : int array;
  mask : int;
  rot_k : int;              (* k mod q, for removing the outgoing byte *)
  ring : Bytes.t;           (* last [window] bytes *)
  mutable pos : int;        (* ring cursor *)
  mutable count : int;      (* bytes absorbed since reset, saturates *)
  mutable state : int;      (* Φ over the current window, q bits *)
}

let create params =
  if params.window < 1 then invalid_arg "Rolling.create: window must be >= 1";
  if params.q < 1 || params.q > 30 then
    invalid_arg "Rolling.create: q must be in [1, 30]";
  { params;
    table = gamma_table params.q;
    mask = (1 lsl params.q) - 1;
    rot_k = params.window mod params.q;
    ring = Bytes.make params.window '\x00';
    pos = 0;
    count = 0;
    state = 0 }

let reset t =
  t.pos <- 0;
  t.count <- 0;
  t.state <- 0
  (* The ring need not be cleared: bytes are only consulted once the window
     has refilled past them. *)

let rotl t v n =
  let n = n mod t.params.q in
  if n = 0 then v
  else ((v lsl n) lor (v lsr (t.params.q - n))) land t.mask

let feed t c =
  let k = t.params.window in
  let incoming = t.table.(Char.code c) in
  if t.count >= k then begin
    (* δ(Φ) ⊕ δ^k(Γ(out)) ⊕ Γ(in) *)
    let outgoing = t.table.(Char.code (Bytes.get t.ring t.pos)) in
    t.state <- rotl t t.state 1 lxor rotl t outgoing t.rot_k lxor incoming
  end else
    t.state <- rotl t t.state 1 lxor incoming;
  Bytes.set t.ring t.pos c;
  t.pos <- (t.pos + 1) mod k;
  if t.count < k then t.count <- t.count + 1;
  t.count >= k && t.state = 0

let feed_string t s =
  let hit = ref false in
  String.iter (fun c -> if feed t c then hit := true) s;
  !hit

let hits_in params s =
  let t = create params in
  let acc = ref [] in
  String.iteri (fun i c -> if feed t c then acc := i :: !acc) s;
  List.rev !acc
