(** SplitMix64 deterministic pseudo-random generator.

    Used wherever ForkBase needs reproducible pseudo-randomness: the Γ byte
    table of the rolling hash, and the synthetic workload generators.  The
    sequence for a given seed is fixed forever — chunk boundaries depend on
    it, so changing it would change every stored hash. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val next_int64 : t -> int64
(** Next 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** Uniform in [\[0, 1)]. *)

val next_bool : t -> bool

val split : t -> t
(** Derive an independent generator; the parent advances. *)
