(* SplitMix64 (Steele, Lea & Flood 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_int t bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  (* Rejection-free for practical purposes: 62 random bits mod bound.  The
     bias is < bound / 2^62, irrelevant for workload generation. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let next_float t =
  (* 53 top bits -> [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = { state = next_int64 t }
