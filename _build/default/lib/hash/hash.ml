type t = string

let size = 32

let of_string s = Sha256.digest s
let of_strings ss = Sha256.digest_strings ss

let of_raw s =
  if String.length s = size then Ok s
  else
    Error
      (Printf.sprintf "hash: expected %d raw bytes, got %d" size
         (String.length s))

let of_raw_exn s =
  match of_raw s with Ok h -> h | Error e -> invalid_arg e

let to_raw h = h
let to_hex = Hex.encode

let of_hex s =
  match Hex.decode s with
  | Error _ as e -> e
  | Ok raw -> of_raw raw

let to_base32 h = Base32.encode h

let of_base32 s =
  match Base32.decode s with
  | Error _ as e -> e
  | Ok raw -> of_raw raw

let equal = String.equal
let compare = String.compare
let short h = String.sub (to_hex h) 0 12
let pp fmt h = Format.pp_print_string fmt (short h)
let pp_full fmt h = Format.pp_print_string fmt (to_hex h)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  (* Digests are uniform: the leading bytes are already a good bucket
     hash. *)
  let hash h = Int64.to_int (String.get_int64_be h 0) land max_int
end)
