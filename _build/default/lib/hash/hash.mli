(** Content hashes (chunk identifiers).

    Every chunk is identified by the SHA-256 of its encoded bytes; the
    mapping from identifier to storage location is maintained externally by
    the chunk store (paper §II-A).  Versions shown to users are the same
    digests rendered in RFC 4648 Base32 (§III-C). *)

type t = private string
(** A 32-byte SHA-256 digest.  [private] so only this module mints them. *)

val size : int
(** Digest length in bytes (32). *)

val of_string : string -> t
(** Hash arbitrary bytes. *)

val of_strings : string list -> t
(** Hash the concatenation of the given strings. *)

val of_raw : string -> (t, string) result
(** Adopt an existing 32-byte digest (e.g. read back from disk). *)

val of_raw_exn : string -> t
(** @raise Invalid_argument if not exactly 32 bytes. *)

val to_raw : t -> string
(** The 32 raw bytes. *)

val to_hex : t -> string
val of_hex : string -> (t, string) result

val to_base32 : t -> string
(** RFC 4648 Base32, the user-facing version-stamp rendering. *)

val of_base32 : string -> (t, string) result

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints the first 12 hex characters — enough to eyeball identity. *)

val pp_full : Format.formatter -> t -> unit

val short : t -> string
(** First 12 hex characters. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
(** Hashtable keyed by digest (uses the first 8 bytes as the bucket hash —
    digests are uniformly distributed already). *)
