(** RFC 4648 Base32 encoding.

    ForkBase stamps every version with the Merkle root hash encoded in the
    RFC 4648 Base32 alphabet (paper §III-C, ref [9]).  Padding with ['='] is
    emitted by default and tolerated on decode. *)

val encode : ?pad:bool -> string -> string
(** [encode s] encodes binary [s]; [pad] (default [true]) appends ['='] to a
    multiple of 8 characters. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}.  Accepts lowercase letters and missing padding;
    rejects characters outside the alphabet and non-canonical trailing
    bits. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)
