let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"

let encode ?(pad = true) s =
  let n = String.length s in
  let buf = Buffer.create ((n * 8 / 5) + 8) in
  (* Accumulate bits MSB-first and drain 5 at a time. *)
  let acc = ref 0 and bits = ref 0 in
  for i = 0 to n - 1 do
    acc := (!acc lsl 8) lor Char.code s.[i];
    bits := !bits + 8;
    while !bits >= 5 do
      bits := !bits - 5;
      Buffer.add_char buf alphabet.[(!acc lsr !bits) land 31]
    done
  done;
  if !bits > 0 then
    Buffer.add_char buf alphabet.[(!acc lsl (5 - !bits)) land 31];
  if pad then begin
    let rem = Buffer.length buf mod 8 in
    if rem <> 0 then Buffer.add_string buf (String.make (8 - rem) '=')
  end;
  Buffer.contents buf

let value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - Char.code 'A'
  | 'a' .. 'z' -> Char.code c - Char.code 'a'
  | '2' .. '7' -> Char.code c - Char.code '2' + 26
  | _ -> -1

let decode s =
  (* Strip padding, then reverse the bit-packing. *)
  let stop =
    let i = ref (String.length s) in
    while !i > 0 && s.[!i - 1] = '=' do decr i done;
    !i
  in
  let buf = Buffer.create ((stop * 5 / 8) + 1) in
  let acc = ref 0 and bits = ref 0 in
  let err = ref None in
  (try
     for i = 0 to stop - 1 do
       let v = value s.[i] in
       if v < 0 then begin
         err := Some (Printf.sprintf "base32: invalid character %C at %d" s.[i] i);
         raise Exit
       end;
       acc := (!acc lsl 5) lor v;
       bits := !bits + 5;
       if !bits >= 8 then begin
         bits := !bits - 8;
         Buffer.add_char buf (Char.chr ((!acc lsr !bits) land 0xff))
       end
     done
   with Exit -> ());
  match !err with
  | Some e -> Error e
  | None ->
    if !bits >= 5 then Error "base32: truncated input"
    else if !acc land ((1 lsl !bits) - 1) <> 0 then
      Error "base32: non-canonical trailing bits"
    else Ok (Buffer.contents buf)

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg e
