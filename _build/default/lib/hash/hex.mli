(** Lowercase hexadecimal encoding of binary strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s], twice its length. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}; accepts upper- and lowercase digits.
    Errors on odd length or non-hex characters. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)
