lib/codec/codec.ml: Buffer Bytes Char Fb_hash Int64 List Printf String Sys
