lib/codec/codec.mli: Fb_hash
