type writer = Buffer.t

let writer ?(initial_size = 256) () = Buffer.create initial_size
let contents = Buffer.contents
let length = Buffer.length

let u8 w v =
  if v < 0 || v > 255 then invalid_arg "Codec.u8: out of range";
  Buffer.add_char w (Char.unsafe_chr v)

(* LEB128 over the 63-bit two's-complement pattern of an OCaml int: at most
   9 bytes (9 × 7 = 63 bits exactly).  [lsr] makes the loop terminate for
   negative patterns too, which zigzag encoding relies on. *)
let varint_bits w v =
  let rec go v =
    if v land lnot 0x7f = 0 then Buffer.add_char w (Char.unsafe_chr v)
    else begin
      Buffer.add_char w (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let varint w v =
  if v < 0 then invalid_arg "Codec.varint: negative";
  varint_bits w v

let zigzag w v = varint_bits w ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let i64 w v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Buffer.add_bytes w b

let f64 w v = i64 w (Int64.bits_of_float v)
let bool w v = u8 w (if v then 1 else 0)

let raw w s = Buffer.add_string w s

let bytes w s =
  varint w (String.length s);
  raw w s

let hash w h = raw w (Fb_hash.Hash.to_raw h)

let list w enc xs =
  varint w (List.length xs);
  List.iter (enc w) xs

let to_string enc v =
  let w = writer () in
  enc w v;
  contents w

(* ------------------------------------------------------------------ *)

type reader = { buf : string; mutable pos : int }

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let reader ?(pos = 0) buf =
  if pos < 0 || pos > String.length buf then fail "reader: bad start position";
  { buf; pos }

let pos r = r.pos
let remaining r = String.length r.buf - r.pos

let need r n =
  if remaining r < n then
    fail "truncated input: need %d bytes at offset %d, have %d" n r.pos
      (remaining r)

let expect_end r =
  if remaining r <> 0 then fail "trailing garbage: %d bytes left" (remaining r)

let read_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_varint_bits r =
  let rec go shift acc =
    if shift > 56 then fail "varint overflow";
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else begin
      (* Reject non-minimal encodings: a final zero byte is only canonical
         when it is the sole byte. *)
      if b = 0 && shift > 0 then fail "non-minimal varint";
      acc
    end
  in
  go 0 0

let read_varint r =
  let v = read_varint_bits r in
  if v < 0 then fail "varint overflow" else v

let read_zigzag r =
  let v = read_varint_bits r in
  (v lsr 1) lxor (- (v land 1))

let read_i64 r =
  need r 8;
  let v = String.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let read_f64 r = Int64.float_of_bits (read_i64 r)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad boolean byte %d" v

let read_raw r n =
  if n < 0 then fail "negative length";
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes r = read_raw r (read_varint r)

let read_hash r =
  match Fb_hash.Hash.of_raw (read_raw r Fb_hash.Hash.size) with
  | Ok h -> h
  | Error e -> fail "%s" e

let read_list r dec =
  let n = read_varint r in
  (* Guard against absurd counts from corrupt data before allocating. *)
  if n > remaining r then fail "list count %d exceeds remaining input" n;
  List.init n (fun _ -> dec r)

let of_string dec s =
  match
    let r = reader s in
    let v = dec r in
    expect_end r;
    v
  with
  | v -> Ok v
  | exception Decode_error e -> Error e

let of_string_exn dec s =
  match of_string dec s with Ok v -> v | Error e -> raise (Decode_error e)
