(** Deterministic binary encoding for chunk payloads.

    Chunk identity is the hash of the encoded bytes, so encodings must be
    canonical: one value, one byte string.  All integers use LEB128 varints
    (minimal form enforced on decode); strings are length-prefixed; there is
    no padding or alignment. *)

(** {1 Writer} *)

type writer

val writer : ?initial_size:int -> unit -> writer
val contents : writer -> string
val length : writer -> int

val u8 : writer -> int -> unit
(** @raise Invalid_argument if outside [\[0, 255\]]. *)

val varint : writer -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on negative input. *)

val zigzag : writer -> int -> unit
(** Signed integer via zigzag + LEB128. *)

val i64 : writer -> int64 -> unit
(** Fixed 8-byte big-endian. *)

val f64 : writer -> float -> unit
(** IEEE 754 bits, big-endian. *)

val bool : writer -> bool -> unit

val bytes : writer -> string -> unit
(** Varint length followed by the raw bytes. *)

val raw : writer -> string -> unit
(** Raw bytes, no length prefix (caller frames them). *)

val hash : writer -> Fb_hash.Hash.t -> unit
(** 32 raw digest bytes. *)

val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
(** Varint count followed by the elements. *)

val to_string : ((writer -> 'a -> unit) -> 'a -> string)
(** [to_string enc v] runs [enc] on a fresh writer. *)

(** {1 Reader} *)

type reader

exception Decode_error of string
(** Raised on malformed input: truncation, non-minimal varints, trailing
    garbage (via {!expect_end}). *)

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val remaining : reader -> int
val expect_end : reader -> unit

val read_u8 : reader -> int
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_i64 : reader -> int64
val read_f64 : reader -> float
val read_bool : reader -> bool
val read_bytes : reader -> string
val read_raw : reader -> int -> string
val read_hash : reader -> Fb_hash.Hash.t
val read_list : reader -> (reader -> 'a) -> 'a list

val of_string : (reader -> 'a) -> string -> ('a, string) result
(** Decode a complete string; checks that all input is consumed. *)

val of_string_exn : (reader -> 'a) -> string -> 'a
(** @raise Decode_error *)
