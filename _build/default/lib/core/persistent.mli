(** Durable ForkBase instances on a directory.

    Bundles the pieces a durable deployment needs: the directory-backed
    chunk store under [root/chunks], plus the branch and tag tables
    serialized to [root/BRANCHES] and [root/TAGS].  Mutating table state is
    only durable after {!save} (the CLI saves after every command); chunk
    writes are durable immediately.

    Layout:
    {v
    root/
      chunks/ab/<hex>   content-addressed chunks
      BRANCHES          serialized branch table
      TAGS              serialized tag table
    v} *)

val open_ : ?acl:Acl.t -> root:string -> unit -> (Forkbase.t, Errors.t) result
(** Open (creating directories as needed) an instance rooted at [root];
    fails on unreadable or corrupt table files. *)

val save : root:string -> Forkbase.t -> (unit, Errors.t) result
(** Persist the branch and tag tables (atomically: temp file + rename). *)

val with_instance :
  ?acl:Acl.t -> root:string -> (Forkbase.t -> ('a, Errors.t) result) ->
  ('a, Errors.t) result
(** Open, run, save on success. *)
