(** Auto-maintained secondary indexes.

    Attach an index to a (key, branch, column) and it follows the branch:
    every head movement triggers an incremental {!Fb_types.Table_index}
    update computed from the table diff between the old and new heads —
    O(changed rows), not O(table).  The moment a lookup runs, the index is
    guaranteed current with the branch head it observed last. *)

type t

val attach :
  ?branch:string -> Forkbase.t -> key:string -> column:string ->
  (t, Errors.t) result
(** Build the initial index from the current head (the key must hold a
    table with that column) and subscribe to the branch. *)

val detach : Forkbase.t -> t -> unit
(** Unsubscribe; the index stops following (its last state remains
    queryable). *)

val lookup :
  Forkbase.t -> t -> Fb_types.Primitive.t ->
  (Fb_types.Table.row list, Errors.t) result
(** Rows whose indexed column equals the value, at the followed head. *)

val count : t -> Fb_types.Primitive.t -> int

val healthy : t -> bool
(** [false] if an update could not be applied (e.g. the key stopped being
    a table, or its schema dropped the column); lookups then fail. *)
