module Table = Fb_types.Table
module Table_index = Fb_types.Table_index
module Value = Fb_types.Value
module Hash = Fb_hash.Hash

let ( let* ) = Result.bind

type state = {
  mutable index : Table_index.t;
  mutable at : Hash.t;        (* the head the index reflects *)
  mutable broken : string option;
}

type t = {
  key : string;
  branch : string;
  state : state;
  watch : Forkbase.watch;
}

let table_at fb uid =
  let* value = Forkbase.get_at fb uid in
  match Value.to_table value with
  | Some table -> Ok table
  | None ->
    Error
      (Errors.Type_mismatch
         { expected = "table"; got = Value.type_name value })

let advance fb state new_head =
  match
    let* old_table = table_at fb state.at in
    let* new_table = table_at fb new_head in
    let* changes =
      match Table.diff old_table new_table with
      | Ok c -> Ok c
      | Error e -> Error (Errors.Invalid e)
    in
    match Table_index.apply_changes state.index new_table changes with
    | Ok index -> Ok index
    | Error e -> Error (Errors.Invalid e)
  with
  | Ok index ->
    state.index <- index;
    state.at <- new_head
  | Error e -> state.broken <- Some (Errors.to_string e)

let attach ?(branch = Fb_repr.Branch.default_branch) fb ~key ~column =
  let* head = Forkbase.head ~branch fb ~key in
  let* table = table_at fb head in
  let* index =
    match Table_index.build table ~column with
    | Ok i -> Ok i
    | Error e -> Error (Errors.Invalid e)
  in
  let state = { index; at = head; broken = None } in
  let watch =
    Forkbase.watch ~key ~branch fb (fun event ->
        if state.broken = None then
          advance fb state event.Forkbase.new_head)
  in
  Ok { key; branch; state; watch }

let detach fb t = Forkbase.unwatch fb t.watch

let lookup fb t value =
  match t.state.broken with
  | Some e -> Error (Errors.Invalid ("index broken: " ^ e))
  | None ->
    let* table = table_at fb t.state.at in
    Ok (Table_index.lookup t.state.index table value)

let count t value = Table_index.count t.state.index value

let healthy t = t.state.broken = None
