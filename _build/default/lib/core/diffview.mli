(** Structured differences between two values — the differential-query
    result ForkBase's UI highlights "at multiple scopes, from dataset to
    data entry" (paper §III-B, Fig. 5). *)

type t =
  | Same
  | Type_change of Fb_types.Value.kind * Fb_types.Value.kind
  | Primitive_change of Fb_types.Primitive.t * Fb_types.Primitive.t
  | Blob_change of Fb_postree.Pblob.range_diff
  | Map_changes of Fb_postree.Pmap.change list
  | Set_changes of Fb_postree.Pset.change list
  | List_change of Fb_postree.Plist.range_diff
  | Table_changes of Fb_types.Table.row_change list

val compute : Fb_types.Value.t -> Fb_types.Value.t -> (t, Errors.t) result
(** Type-directed diff; equal-rooted structures short-circuit to [Same].
    Tables with differing schemas report [Type_change]-style errors as
    [Error (Type_mismatch _)]. *)

val is_same : t -> bool

val summary : t -> string
(** One-line account: ["3 rows added, 1 modified (2 cells)"]. *)

val render : Format.formatter -> t -> unit
(** Multi-scope textual rendering: per-row, then per-cell for tables;
    per-entry for maps and sets; replaced ranges for blobs and lists. *)
