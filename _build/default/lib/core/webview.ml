module Json = Fb_types.Json
module Value = Fb_types.Value
module Table = Fb_types.Table
module Primitive = Fb_types.Primitive
module Schema = Fb_types.Schema
module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Plist = Fb_postree.Plist
module Pblob = Fb_postree.Pblob
module Hash = Fb_hash.Hash

let version_json uid =
  Json.Object
    [ ("uid", Json.String (Hash.to_base32 uid));
      ("short", Json.String (Hash.short uid)) ]

let primitive_json = function
  | Primitive.Null -> Json.Null
  | Primitive.Bool b -> Json.Bool b
  | Primitive.Int i -> Json.Number (Int64.to_float i)
  | Primitive.Float f -> Json.Number f
  | Primitive.String s -> Json.String s

let take n l = List.filteri (fun i _ -> i < n) l

let value_json ?(preview_rows = 20) value =
  let typed kind fields = Json.Object (("type", Json.String kind) :: fields) in
  match (value : Value.t) with
  | Value.Primitive p -> typed "primitive" [ ("value", primitive_json p) ]
  | Value.Blob b ->
    let len = Pblob.length b in
    typed "blob"
      [ ("bytes", Json.int len);
        ("chunks", Json.int (Pblob.chunk_count b));
        ( "head",
          Json.String (if len = 0 then "" else Pblob.read b ~pos:0 ~len:(min 64 len)) ) ]
  | Value.Map m ->
    typed "map"
      [ ("entries", Json.int (Pmap.cardinal m));
        ( "preview",
          Json.Object
            (take preview_rows
               (List.map
                  (fun (k, v) -> (k, Json.String v))
                  (Pmap.bindings m))) ) ]
  | Value.Set s ->
    typed "set"
      [ ("elements", Json.int (Pset.cardinal s));
        ( "preview",
          Json.Array
            (take preview_rows
               (List.map (fun e -> Json.String e) (Pset.elements s))) ) ]
  | Value.List l ->
    typed "list"
      [ ("elements", Json.int (Plist.length l));
        ( "preview",
          Json.Array
            (take preview_rows
               (List.map (fun e -> Json.String e) (Plist.to_list l))) ) ]
  | Value.Table t ->
    let schema = Table.schema t in
    typed "table"
      [ ("rows", Json.int (Table.cardinal t));
        ( "columns",
          Json.Array
            (List.map (fun c -> Json.String c) (Schema.column_names schema)) );
        ("key", Json.String (Schema.key_name schema));
        ( "preview",
          Json.Array
            (take preview_rows
               (List.map
                  (fun row -> Json.Array (List.map primitive_json row))
                  (Table.to_rows t))) ) ]

let row_json row = Json.Array (List.map primitive_json row)

let diff_json d =
  let typed kind fields =
    Json.Object
      (("kind", Json.String kind)
       :: ("summary", Json.String (Diffview.summary d))
       :: fields)
  in
  match (d : Diffview.t) with
  | Diffview.Same -> typed "same" []
  | Diffview.Type_change (k1, k2) ->
    typed "type-change"
      [ ("from", Json.String (Value.kind_name k1));
        ("to", Json.String (Value.kind_name k2)) ]
  | Diffview.Primitive_change (p1, p2) ->
    typed "primitive"
      [ ("before", primitive_json p1); ("after", primitive_json p2) ]
  | Diffview.Blob_change r ->
    typed "blob"
      [ ("old_pos", Json.int r.Pblob.old_pos);
        ("old_len", Json.int r.Pblob.old_len);
        ("new_pos", Json.int r.Pblob.new_pos);
        ("new_len", Json.int r.Pblob.new_len) ]
  | Diffview.List_change r ->
    typed "list"
      [ ("old_pos", Json.int r.Plist.old_pos);
        ("old_len", Json.int r.Plist.old_len);
        ("new_pos", Json.int r.Plist.new_pos);
        ("new_len", Json.int r.Plist.new_len) ]
  | Diffview.Map_changes cs ->
    typed "map"
      [ ( "changes",
          Json.Array
            (List.map
               (fun (c : Pmap.change) ->
                 match c with
                 | Pmap.Added b ->
                   Json.Object
                     [ ("op", Json.String "add"); ("key", Json.String b.Pmap.key);
                       ("value", Json.String b.Pmap.value) ]
                 | Pmap.Removed b ->
                   Json.Object
                     [ ("op", Json.String "remove");
                       ("key", Json.String b.Pmap.key) ]
                 | Pmap.Modified (b1, b2) ->
                   Json.Object
                     [ ("op", Json.String "modify");
                       ("key", Json.String b1.Pmap.key);
                       ("before", Json.String b1.Pmap.value);
                       ("after", Json.String b2.Pmap.value) ])
               cs) ) ]
  | Diffview.Set_changes cs ->
    typed "set"
      [ ( "changes",
          Json.Array
            (List.map
               (fun (c : Pset.change) ->
                 match c with
                 | Pset.Added e ->
                   Json.Object [ ("op", Json.String "add"); ("element", Json.String e) ]
                 | Pset.Removed e ->
                   Json.Object
                     [ ("op", Json.String "remove"); ("element", Json.String e) ]
                 | Pset.Modified (e, _) ->
                   Json.Object
                     [ ("op", Json.String "modify"); ("element", Json.String e) ])
               cs) ) ]
  | Diffview.Table_changes cs ->
    typed "table"
      [ ( "changes",
          Json.Array
            (List.map
               (fun (c : Table.row_change) ->
                 match c with
                 | Table.Row_added row ->
                   Json.Object [ ("op", Json.String "add"); ("row", row_json row) ]
                 | Table.Row_removed row ->
                   Json.Object
                     [ ("op", Json.String "remove"); ("row", row_json row) ]
                 | Table.Row_modified (key, cells) ->
                   Json.Object
                     [ ("op", Json.String "modify");
                       ("key", Json.String key);
                       ( "cells",
                         Json.Array
                           (List.map
                              (fun (cc : Table.cell_change) ->
                                Json.Object
                                  [ ("column", Json.String cc.Table.column);
                                    ("before", primitive_json cc.Table.before);
                                    ("after", primitive_json cc.Table.after) ])
                              cells) ) ])
               cs) ) ]

let log_json nodes =
  Json.Array
    (List.map
       (fun (f : Fb_repr.Fnode.t) ->
         Json.Object
           [ ("uid", Json.String (Hash.to_base32 (Fb_repr.Fnode.uid f)));
             ("seq", Json.int f.Fb_repr.Fnode.seq);
             ("author", Json.String f.Fb_repr.Fnode.author);
             ("message", Json.String f.Fb_repr.Fnode.message);
             ( "bases",
               Json.Array
                 (List.map
                    (fun b -> Json.String (Hash.to_base32 b))
                    f.Fb_repr.Fnode.bases) ) ])
       nodes)

let stats_json (s : Forkbase.stats) =
  Json.Object
    [ ("keys", Json.int s.Forkbase.keys);
      ("branches", Json.int s.Forkbase.branches);
      ("versions", Json.int s.Forkbase.versions);
      ( "store",
        Json.Object
          [ ("chunks", Json.int s.Forkbase.store.Fb_chunk.Store.physical_chunks);
            ("physical_bytes", Json.int s.Forkbase.store.Fb_chunk.Store.physical_bytes);
            ("logical_bytes", Json.int s.Forkbase.store.Fb_chunk.Store.logical_bytes);
            ("dedup_hits", Json.int s.Forkbase.store.Fb_chunk.Store.dedup_hits) ] ) ]

let branches_json heads =
  Json.Object
    (List.map (fun (name, uid) -> (name, Json.String (Hash.to_base32 uid))) heads)
