module Codec = Fb_codec.Codec
module Hash = Fb_hash.Hash
module Value = Fb_types.Value
module Table = Fb_types.Table
module Pmap = Fb_postree.Pmap

let ( let* ) = Result.bind

(* Entry-level edits over the underlying rows map; tables additionally
   remember their schema so the receiving side can rebuild the value. *)
type op = Put_entry of string * string | Remove_entry of string

type shape =
  | Map_shape
  | Table_shape of Fb_types.Schema.t

type t = {
  base : Hash.t;
  target : Hash.t;
  shape : shape;
  ops : op list;
}

let base_uid t = t.base
let target_uid t = t.target

let magic = "FBPATCH1"

let encode t =
  let w = Codec.writer () in
  Codec.raw w magic;
  Codec.hash w t.base;
  Codec.hash w t.target;
  (match t.shape with
   | Map_shape -> Codec.u8 w 0
   | Table_shape schema ->
     Codec.u8 w 1;
     Fb_types.Schema.encode w schema);
  Codec.list w
    (fun w op ->
      match op with
      | Put_entry (k, v) ->
        Codec.u8 w 0;
        Codec.bytes w k;
        Codec.bytes w v
      | Remove_entry k ->
        Codec.u8 w 1;
        Codec.bytes w k)
    t.ops;
  Codec.contents w

let decode s =
  match
    Codec.of_string
      (fun r ->
        let m = Codec.read_raw r (String.length magic) in
        if not (String.equal m magic) then
          raise (Codec.Decode_error "patch: bad magic");
        let base = Codec.read_hash r in
        let target = Codec.read_hash r in
        let shape =
          match Codec.read_u8 r with
          | 0 -> Map_shape
          | 1 -> Table_shape (Fb_types.Schema.decode r)
          | t -> raise (Codec.Decode_error (Printf.sprintf "patch: bad shape %d" t))
        in
        let ops =
          Codec.read_list r (fun r ->
              match Codec.read_u8 r with
              | 0 ->
                let k = Codec.read_bytes r in
                let v = Codec.read_bytes r in
                Put_entry (k, v)
              | 1 -> Remove_entry (Codec.read_bytes r)
              | t ->
                raise (Codec.Decode_error (Printf.sprintf "patch: bad op %d" t)))
        in
        { base; target; shape; ops })
      s
  with
  | Ok p -> Ok p
  | Error e -> Error (Errors.Invalid ("patch: " ^ e))

let rows_and_shape = function
  | Value.Map m -> Ok (m, Map_shape)
  | Value.Table t -> Ok (Table.rows_map t, Table_shape (Table.schema t))
  | v ->
    Error
      (Errors.Type_mismatch
         { expected = "map or table"; got = Value.type_name v })

let diff ?user fb ~key ~from_uid ~to_uid =
  ignore key;
  let* v1 = Forkbase.get_at ?user fb from_uid in
  let* v2 = Forkbase.get_at ?user fb to_uid in
  let* rows1, _ = rows_and_shape v1 in
  let* rows2, shape2 = rows_and_shape v2 in
  let ops =
    List.map
      (fun change ->
        match Pmap.edit_of_change change with
        | Pmap.Put (b : Pmap.binding) -> Put_entry (b.Pmap.key, b.Pmap.value)
        | Pmap.Remove k -> Remove_entry k)
      (Pmap.diff rows1 rows2)
  in
  Ok { base = from_uid; target = to_uid; shape = shape2; ops }

let apply ?user ?(message = "apply patch") ?branch ?(force = false) fb ~key
    patch =
  let* head = Forkbase.head ?user ?branch fb ~key in
  let* () =
    if force || Hash.equal head patch.base then Ok ()
    else
      Errors.invalid
        "patch applies to %s but the branch head is %s (use merge, or force)"
        (Hash.short patch.base) (Hash.short head)
  in
  let* value = Forkbase.get ?user ?branch fb ~key in
  let* rows, _ = rows_and_shape value in
  let edits =
    List.map
      (function
        | Put_entry (k, v) -> Pmap.Put (Pmap.binding k v)
        | Remove_entry k -> Pmap.Remove k)
      patch.ops
  in
  let rows' = Pmap.update rows edits in
  let value' =
    match patch.shape with
    | Map_shape -> Value.Map rows'
    | Table_shape schema ->
      Value.Table
        (Table.of_rows_root (Pmap.store rows') schema (Pmap.root rows'))
  in
  Forkbase.put ?user ~message ?branch fb ~key value'
