(** Typed errors of the public ForkBase API.

    The API never raises across its boundary: storage corruption, missing
    keys, permission failures and merge conflicts all surface as values. *)

type t =
  | Key_not_found of string
  | Branch_not_found of { key : string; branch : string }
  | Version_not_found of string            (** hex uid *)
  | Permission_denied of { user : string; action : string }
  | Merge_conflict of { key : string; details : string list }
  | Type_mismatch of { expected : string; got : string }
  | Corrupt of string                       (** failed integrity check *)
  | Transient of string
      (** storage failed retryably; the operation made no change and may
          be reissued (raised as [Fb_chunk.Store.Transient] below the
          API, converted here at the boundary) *)
  | Invalid of string                       (** bad argument / malformed input *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val invalid : ('a, unit, string, ('b, t) result) format4 -> 'a
(** [invalid fmt ...] is [Error (Invalid msg)]. *)

val corrupt : ('a, unit, string, ('b, t) result) format4 -> 'a
