(** JSON views for data exploration — what the demo's Web UI renders
    (Fig. 1 top layer; Figs. 4–6 screenshots).

    Pure value→JSON projections over the public API's results; a web
    gateway serializes these straight to the browser.  Version identifiers
    appear in their user-facing Base32 form throughout. *)

module Json = Fb_types.Json

val version_json : Forkbase.uid -> Json.t
(** [{"uid": <base32>, "short": <12 hex chars>}] *)

val value_json : ?preview_rows:int -> Fb_types.Value.t -> Json.t
(** Type-tagged value rendering; tables and collections include up to
    [preview_rows] (default 20) leading entries plus totals — the dataset
    preview pane. *)

val diff_json : Diffview.t -> Json.t
(** The differential-query pane: summary plus per-row/cell (or range)
    detail. *)

val log_json : Fb_repr.Fnode.t list -> Json.t
(** The version-list pane of Fig. 6: uid, author, message, logical time,
    bases per entry. *)

val stats_json : Forkbase.stats -> Json.t

val branches_json : (string * Forkbase.uid) list -> Json.t
