(** Branch-based access control (Fig. 1: Admin A / Admin B).

    Grants attach a permission level to a (user, key, branch) triple; [key]
    and [branch] accept the ["*"] wildcard.  Levels are ordered
    [Read < Write < Admin]: a grant implies every lower level.  Admins of a
    branch may create branches from it, merge into it, rename and delete
    it; writers may Put; readers may Get/Diff/Export. *)

type level = Read | Write | Admin

val level_to_string : level -> string
val level_of_string : string -> level option
val implies : level -> level -> bool
(** [implies granted needed]. *)

type t

val create : ?default_level:level option -> unit -> t
(** [default_level] applies to users with no matching grant; [None]
    (the default... of the default) denies them everything.  Pass
    [Some Admin] for an open instance — what a single-tenant deployment
    wants. *)

val open_instance : unit -> t
(** Everyone may do everything; the default for embedded use. *)

val grant : t -> user:string -> key:string -> branch:string -> level -> unit
val revoke : t -> user:string -> key:string -> branch:string -> unit

val check :
  t -> user:string -> key:string -> branch:string -> level ->
  (unit, Errors.t) result

val allowed : t -> user:string -> key:string -> branch:string -> level -> bool

val grants : t -> (string * string * string * level) list
(** All explicit grants as (user, key, branch, level), sorted. *)
