(** Dataset management: row-level operations on table-valued keys.

    The demo's "Dataset Management" view (Fig. 1): a dataset is a relational
    table stored under a key, and day-to-day edits are row-granular — which
    POS-Trees make cheap, since a few-row change re-chunks a few pages
    instead of reloading the CSV.  Every operation commits a new
    tamper-evident version on the chosen branch. *)

type uid = Fb_hash.Hash.t

val create :
  ?user:string -> ?message:string -> ?branch:string ->
  Forkbase.t -> key:string -> Fb_types.Schema.t ->
  (uid, Errors.t) result
(** Commit an empty table with the given schema. *)

val insert_rows :
  ?user:string -> ?message:string -> ?branch:string ->
  Forkbase.t -> key:string -> Fb_types.Table.row list ->
  (uid, Errors.t) result
(** Upsert rows (validated against the schema) and commit. *)

val delete_rows :
  ?user:string -> ?message:string -> ?branch:string ->
  Forkbase.t -> key:string -> string list ->
  (uid, Errors.t) result
(** Delete rows by key-cell rendering; absent keys are no-ops. *)

val update_cell :
  ?user:string -> ?message:string -> ?branch:string ->
  Forkbase.t -> key:string -> row:string -> column:string ->
  Fb_types.Primitive.t ->
  (uid, Errors.t) result
(** Overwrite one cell of one row and commit. *)

val row_count :
  ?user:string -> ?branch:string -> Forkbase.t -> key:string ->
  (int, Errors.t) result

val get_row :
  ?user:string -> ?branch:string -> Forkbase.t -> key:string -> row:string ->
  (Fb_types.Table.row option, Errors.t) result

val schema :
  ?user:string -> ?branch:string -> Forkbase.t -> key:string ->
  (Fb_types.Schema.t, Errors.t) result
