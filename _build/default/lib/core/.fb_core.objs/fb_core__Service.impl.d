lib/core/service.ml: Buffer Diffview Errors Fb_chunk Fb_hash Fb_postree Fb_repr Fb_types Forkbase Format List Printf Result String Webview
