lib/core/indexer.ml: Errors Fb_hash Fb_repr Fb_types Forkbase Result
