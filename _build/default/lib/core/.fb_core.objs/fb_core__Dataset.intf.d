lib/core/dataset.mli: Errors Fb_hash Fb_types Forkbase
