lib/core/forkbase.ml: Acl Diffview Errors Fb_chunk Fb_codec Fb_hash Fb_postree Fb_repr Fb_types List Option Printf Result String
