lib/core/service.mli: Forkbase
