lib/core/patch.mli: Errors Forkbase
