lib/core/diffview.mli: Errors Fb_postree Fb_types Format
