lib/core/acl.ml: Errors List Printf String
