lib/core/persistent.mli: Acl Errors Forkbase
