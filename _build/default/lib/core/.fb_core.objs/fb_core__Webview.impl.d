lib/core/webview.ml: Diffview Fb_chunk Fb_hash Fb_postree Fb_repr Fb_types Forkbase Int64 List
