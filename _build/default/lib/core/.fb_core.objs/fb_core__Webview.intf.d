lib/core/webview.mli: Diffview Fb_repr Fb_types Forkbase
