lib/core/errors.ml: Format Printf String
