lib/core/indexer.mli: Errors Fb_types Forkbase
