lib/core/forkbase.mli: Acl Diffview Errors Fb_chunk Fb_hash Fb_repr Fb_types
