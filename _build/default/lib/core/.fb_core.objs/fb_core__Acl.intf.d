lib/core/acl.mli: Errors
