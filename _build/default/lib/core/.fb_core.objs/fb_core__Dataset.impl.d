lib/core/dataset.ml: Errors Fb_hash Fb_types Forkbase List Printf Result String
