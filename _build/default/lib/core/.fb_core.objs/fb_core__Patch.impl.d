lib/core/patch.ml: Errors Fb_codec Fb_hash Fb_postree Fb_types Forkbase List Printf Result String
