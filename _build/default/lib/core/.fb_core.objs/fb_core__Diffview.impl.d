lib/core/diffview.ml: Errors Fb_postree Fb_types Format List Printf String
