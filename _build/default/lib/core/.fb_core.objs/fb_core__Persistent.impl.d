lib/core/persistent.ml: Errors Fb_chunk Fb_repr Filename Forkbase Fun List Result Sys
