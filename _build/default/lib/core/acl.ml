type level = Read | Write | Admin

let level_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Admin -> "admin"

let level_of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "admin" -> Some Admin
  | _ -> None

let rank = function Read -> 0 | Write -> 1 | Admin -> 2
let implies granted needed = rank granted >= rank needed

type t = {
  default_level : level option;
  (* (user, key-pattern, branch-pattern) -> level; patterns are literal or
     "*".  Few grants are expected, so a scan is fine and keeps wildcard
     semantics obvious. *)
  mutable rules : (string * string * string * level) list;
}

let create ?(default_level = None) () = { default_level; rules = [] }
let open_instance () = create ~default_level:(Some Admin) ()

let matches pattern s = String.equal pattern "*" || String.equal pattern s

let grant t ~user ~key ~branch level =
  (* Re-granting replaces the previous level for the same triple. *)
  t.rules <-
    (user, key, branch, level)
    :: List.filter
         (fun (u, k, b, _) ->
           not (String.equal u user && String.equal k key && String.equal b branch))
         t.rules

let revoke t ~user ~key ~branch =
  t.rules <-
    List.filter
      (fun (u, k, b, _) ->
        not (String.equal u user && String.equal k key && String.equal b branch))
      t.rules

let best_level t ~user ~key ~branch =
  List.fold_left
    (fun acc (u, k, b, level) ->
      if matches u user && matches k key && matches b branch then
        match acc with
        | Some best when rank best >= rank level -> acc
        | _ -> Some level
      else acc)
    t.default_level t.rules

let allowed t ~user ~key ~branch needed =
  match best_level t ~user ~key ~branch with
  | None -> false
  | Some granted -> implies granted needed

let check t ~user ~key ~branch needed =
  if allowed t ~user ~key ~branch needed then Ok ()
  else
    Error
      (Errors.Permission_denied
         { user;
           action =
             Printf.sprintf "%s key %S branch %S" (level_to_string needed) key
               branch })

let grants t =
  List.sort compare t.rules
