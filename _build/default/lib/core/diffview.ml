module Value = Fb_types.Value
module Primitive = Fb_types.Primitive
module Table = Fb_types.Table
module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Plist = Fb_postree.Plist
module Pblob = Fb_postree.Pblob

type t =
  | Same
  | Type_change of Value.kind * Value.kind
  | Primitive_change of Primitive.t * Primitive.t
  | Blob_change of Pblob.range_diff
  | Map_changes of Pmap.change list
  | Set_changes of Pset.change list
  | List_change of Plist.range_diff
  | Table_changes of Table.row_change list

let compute v1 v2 =
  match (v1 : Value.t), (v2 : Value.t) with
  | Value.Primitive p1, Value.Primitive p2 ->
    Ok (if Primitive.equal p1 p2 then Same else Primitive_change (p1, p2))
  | Value.Blob b1, Value.Blob b2 ->
    Ok (match Pblob.diff b1 b2 with None -> Same | Some d -> Blob_change d)
  | Value.Map m1, Value.Map m2 ->
    Ok (match Pmap.diff m1 m2 with [] -> Same | cs -> Map_changes cs)
  | Value.Set s1, Value.Set s2 ->
    Ok (match Pset.diff s1 s2 with [] -> Same | cs -> Set_changes cs)
  | Value.List l1, Value.List l2 ->
    Ok (match Plist.diff l1 l2 with None -> Same | Some d -> List_change d)
  | Value.Table t1, Value.Table t2 -> (
    match Table.diff t1 t2 with
    | Error e -> Error (Errors.Invalid e)
    | Ok [] -> Ok Same
    | Ok cs -> Ok (Table_changes cs))
  | _ ->
    let k1 = Value.kind v1 and k2 = Value.kind v2 in
    if Value.equal_kind k1 k2 then
      Error
        (Errors.Invalid
           (Printf.sprintf "diff unsupported for %s" (Value.kind_name k1)))
    else Ok (Type_change (k1, k2))

let is_same = function Same -> true | _ -> false

let count_table_changes cs =
  List.fold_left
    (fun (a, r, m, cells) c ->
      match c with
      | Table.Row_added _ -> (a + 1, r, m, cells)
      | Table.Row_removed _ -> (a, r + 1, m, cells)
      | Table.Row_modified (_, cc) -> (a, r, m + 1, cells + List.length cc))
    (0, 0, 0, 0) cs

let summary = function
  | Same -> "no differences"
  | Type_change (k1, k2) ->
    Printf.sprintf "type changed: %s -> %s" (Value.kind_name k1)
      (Value.kind_name k2)
  | Primitive_change (p1, p2) ->
    Printf.sprintf "value changed: %s -> %s" (Primitive.to_string p1)
      (Primitive.to_string p2)
  | Blob_change d ->
    Printf.sprintf "blob changed: %d bytes at %d replaced by %d bytes"
      d.Pblob.old_len d.Pblob.old_pos d.Pblob.new_len
  | Map_changes cs ->
    let a = List.length (List.filter (function Pmap.Added _ -> true | _ -> false) cs)
    and r = List.length (List.filter (function Pmap.Removed _ -> true | _ -> false) cs)
    and m = List.length (List.filter (function Pmap.Modified _ -> true | _ -> false) cs) in
    Printf.sprintf "%d entries added, %d removed, %d modified" a r m
  | Set_changes cs ->
    let a = List.length (List.filter (function Pset.Added _ -> true | _ -> false) cs)
    and r = List.length (List.filter (function Pset.Removed _ -> true | _ -> false) cs) in
    Printf.sprintf "%d elements added, %d removed" a r
  | List_change d ->
    Printf.sprintf "list changed: %d elements at %d replaced by %d"
      d.Plist.old_len d.Plist.old_pos d.Plist.new_len
  | Table_changes cs ->
    let a, r, m, cells = count_table_changes cs in
    Printf.sprintf "%d rows added, %d removed, %d modified (%d cells)" a r m
      cells

let render_row fmt row =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map Primitive.to_string row))

let render fmt = function
  | Same -> Format.fprintf fmt "no differences@."
  | Type_change (k1, k2) ->
    Format.fprintf fmt "! type: %s -> %s@." (Value.kind_name k1)
      (Value.kind_name k2)
  | Primitive_change (p1, p2) ->
    Format.fprintf fmt "- %s@.+ %s@." (Primitive.to_string p1)
      (Primitive.to_string p2)
  | Blob_change d ->
    Format.fprintf fmt "@@ bytes [%d,+%d) -> [%d,+%d)@." d.Pblob.old_pos
      d.Pblob.old_len d.Pblob.new_pos d.Pblob.new_len
  | Map_changes cs ->
    List.iter
      (fun c ->
        match (c : Pmap.change) with
        | Pmap.Added b -> Format.fprintf fmt "+ %s = %S@." b.key b.value
        | Pmap.Removed b -> Format.fprintf fmt "- %s = %S@." b.key b.value
        | Pmap.Modified (b1, b2) ->
          Format.fprintf fmt "~ %s: %S -> %S@." b1.key b1.value b2.value)
      cs
  | Set_changes cs ->
    List.iter
      (fun c ->
        match (c : Pset.change) with
        | Pset.Added e -> Format.fprintf fmt "+ %s@." e
        | Pset.Removed e -> Format.fprintf fmt "- %s@." e
        | Pset.Modified (e, _) -> Format.fprintf fmt "~ %s@." e)
      cs
  | List_change d ->
    Format.fprintf fmt "@@ elements [%d,+%d) -> [%d,+%d)@." d.Plist.old_pos
      d.Plist.old_len d.Plist.new_pos d.Plist.new_len
  | Table_changes cs ->
    List.iter
      (fun c ->
        match (c : Table.row_change) with
        | Table.Row_added row ->
          Format.fprintf fmt "+ row %a@." render_row row
        | Table.Row_removed row ->
          Format.fprintf fmt "- row %a@." render_row row
        | Table.Row_modified (key, cells) ->
          Format.fprintf fmt "~ row %S:@." key;
          List.iter
            (fun (cc : Table.cell_change) ->
              Format.fprintf fmt "    %s: %s -> %s@." cc.Table.column
                (Primitive.to_string cc.Table.before)
                (Primitive.to_string cc.Table.after))
            cells)
      cs
