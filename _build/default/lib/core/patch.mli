(** Binary patches: ship a differential query's result and replay it.

    The offline counterpart of {!Forkbase.merge} for loosely-coupled
    collaborators: site A exports the delta between two of its versions as
    a compact byte string; site B applies it to its own branch — far
    smaller than a bundle when histories already mostly agree.  Patches
    carry the base and target uids, so application is checked: by default a
    patch only applies to a branch whose head {e is} the base version
    (three-way drift is what {!Forkbase.merge} is for). *)

type t

val encode : t -> string
val decode : string -> (t, Errors.t) result

val base_uid : t -> Forkbase.uid
val target_uid : t -> Forkbase.uid

val diff :
  ?user:string -> Forkbase.t -> key:string -> from_uid:Forkbase.uid ->
  to_uid:Forkbase.uid -> (t, Errors.t) result
(** Patch turning [from_uid]'s value into [to_uid]'s.  Supported for map-
    and table-valued versions (entry-level deltas). *)

val apply :
  ?user:string -> ?message:string -> ?branch:string -> ?force:bool ->
  Forkbase.t -> key:string -> t -> (Forkbase.uid, Errors.t) result
(** Apply to [branch]'s head and commit.  Unless [force], the head must
    equal the patch's base uid; the committed version's value is then
    bit-identical to the patch's target (structural invariance), though its
    uid differs when histories differ.  With [force], entry edits are
    replayed onto whatever the head is (last-writer-wins per entry). *)
