module Table = Fb_types.Table
module Schema = Fb_types.Schema
module Value = Fb_types.Value
module Primitive = Fb_types.Primitive

type uid = Fb_hash.Hash.t

let ( let* ) = Result.bind

let get_table ?user ?branch fb ~key =
  let* value = Forkbase.get ?user ?branch fb ~key in
  match Value.to_table value with
  | Some table -> Ok table
  | None ->
    Error
      (Errors.Type_mismatch
         { expected = "table"; got = Value.type_name value })

let commit ?user ?message ?branch fb ~key table =
  Forkbase.put ?user ?message ?branch fb ~key (Value.Table table)

let create ?user ?(message = "create dataset") ?branch fb ~key schema =
  commit ?user ~message ?branch fb ~key
    (Table.create (Forkbase.store fb) schema)

let insert_rows ?user ?message ?branch fb ~key rows =
  let* table = get_table ?user ?branch fb ~key in
  match Table.insert_many table rows with
  | Error e -> Error (Errors.Invalid e)
  | Ok table ->
    let message =
      match message with
      | Some m -> m
      | None -> Printf.sprintf "insert %d rows" (List.length rows)
    in
    commit ?user ~message ?branch fb ~key table

let delete_rows ?user ?message ?branch fb ~key row_keys =
  let* table = get_table ?user ?branch fb ~key in
  let table = List.fold_left Table.delete table row_keys in
  let message =
    match message with
    | Some m -> m
    | None -> Printf.sprintf "delete %d rows" (List.length row_keys)
  in
  commit ?user ~message ?branch fb ~key table

let update_cell ?user ?message ?branch fb ~key ~row ~column value =
  let* table = get_table ?user ?branch fb ~key in
  let schema = Table.schema table in
  match Schema.column_index schema column with
  | None -> Errors.invalid "no column %S" column
  | Some idx -> (
    match Table.find table row with
    | None -> Errors.invalid "no row %S" row
    | Some cells ->
      let cells' = List.mapi (fun i c -> if i = idx then value else c) cells in
      (* Editing the key cell moves the row: drop the old key first. *)
      let table =
        if String.equal (Table.key_of_row schema cells') row then table
        else Table.delete table row
      in
      match Table.insert table cells' with
      | Error e -> Error (Errors.Invalid e)
      | Ok table ->
        let message =
          match message with
          | Some m -> m
          | None -> Printf.sprintf "update %s of row %s" column row
        in
        commit ?user ~message ?branch fb ~key table)

let row_count ?user ?branch fb ~key =
  let* table = get_table ?user ?branch fb ~key in
  Ok (Table.cardinal table)

let get_row ?user ?branch fb ~key ~row =
  let* table = get_table ?user ?branch fb ~key in
  Ok (Table.find table row)

let schema ?user ?branch fb ~key =
  let* table = get_table ?user ?branch fb ~key in
  Ok (Table.schema table)
