module Codec = Fb_codec.Codec
module Hash = Fb_hash.Hash
module Pblob = Fb_postree.Pblob
module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Plist = Fb_postree.Plist

type t =
  | Primitive of Primitive.t
  | Blob of Pblob.t
  | Map of Pmap.t
  | Set of Pset.t
  | List of Plist.t
  | Table of Table.t

type kind = K_primitive | K_blob | K_map | K_set | K_list | K_table

let kind = function
  | Primitive _ -> K_primitive
  | Blob _ -> K_blob
  | Map _ -> K_map
  | Set _ -> K_set
  | List _ -> K_list
  | Table _ -> K_table

let kind_name = function
  | K_primitive -> "primitive"
  | K_blob -> "blob"
  | K_map -> "map"
  | K_set -> "set"
  | K_list -> "list"
  | K_table -> "table"

let equal_kind a b = a = b

let kind_tag = function
  | K_primitive -> 0
  | K_blob -> 1
  | K_map -> 2
  | K_set -> 3
  | K_list -> 4
  | K_table -> 5

let encode_root w = function
  | None -> Codec.bool w false
  | Some h ->
    Codec.bool w true;
    Codec.hash w h

let decode_root r =
  if Codec.read_bool r then Some (Codec.read_hash r) else None

let descriptor v =
  let w = Codec.writer () in
  Codec.u8 w (kind_tag (kind v));
  (match v with
   | Primitive p -> Primitive.encode w p
   | Blob b -> encode_root w (Pblob.root b)
   | Map m -> encode_root w (Pmap.root m)
   | Set s -> encode_root w (Pset.root s)
   | List l -> encode_root w (Plist.root l)
   | Table t ->
     Schema.encode w (Table.schema t);
     encode_root w (Table.rows_root t));
  Codec.contents w

let of_descriptor store s =
  Codec.of_string
    (fun r ->
      match Codec.read_u8 r with
      | 0 -> Primitive (Primitive.decode r)
      | 1 -> Blob (Pblob.of_root store (decode_root r))
      | 2 -> Map (Pmap.of_root store (decode_root r))
      | 3 -> Set (Pset.of_root store (decode_root r))
      | 4 -> List (Plist.of_root store (decode_root r))
      | 5 ->
        let schema = Schema.decode r in
        Table (Table.of_rows_root store schema (decode_root r))
      | t ->
        raise (Codec.Decode_error (Printf.sprintf "bad value kind tag %d" t)))
    s

let equal a b = String.equal (descriptor a) (descriptor b)

let roots = function
  | Primitive _ -> []
  | Blob b -> Option.to_list (Pblob.root b)
  | Map m -> Option.to_list (Pmap.root m)
  | Set s -> Option.to_list (Pset.root s)
  | List l -> Option.to_list (Plist.root l)
  | Table t -> Option.to_list (Table.rows_root t)

let roots_of_descriptor s =
  Codec.of_string
    (fun r ->
      match Codec.read_u8 r with
      | 0 ->
        let _ = Primitive.decode r in
        []
      | 1 | 2 | 3 | 4 -> Option.to_list (decode_root r)
      | 5 ->
        let _ = Schema.decode r in
        Option.to_list (decode_root r)
      | t ->
        raise (Codec.Decode_error (Printf.sprintf "bad value kind tag %d" t)))
    s

let type_name v = kind_name (kind v)

let pp fmt = function
  | Primitive p -> Primitive.pp fmt p
  | Blob b -> Pblob.pp fmt b
  | Map m -> Pmap.pp fmt m
  | Set s -> Pset.pp fmt s
  | List l -> Plist.pp fmt l
  | Table t -> Table.pp fmt t

let string s = Primitive (Primitive.String s)
let int i = Primitive (Primitive.Int (Int64.of_int i))
let bool b = Primitive (Primitive.Bool b)
let float f = Primitive (Primitive.Float f)
let blob_of_string store s = Blob (Pblob.of_string store s)
let map_of_bindings store bs = Map (Pmap.of_bindings store bs)
let set_of_elements store es = Set (Pset.of_elements store es)
let list_of_strings store xs = List (Plist.of_list store xs)

let to_primitive = function Primitive p -> Some p | _ -> None
let to_blob = function Blob b -> Some b | _ -> None
let to_map = function Map m -> Some m | _ -> None
let to_set = function Set s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_table = function Table t -> Some t | _ -> None
