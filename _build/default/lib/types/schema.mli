(** Relational table schema: named, typed columns and a primary-key column.

    Tables are the composite data structure the paper's dataset experiments
    are built on (relational table over the primitive types). *)

type col_type = T_string | T_int | T_float | T_bool | T_any

val col_type_name : col_type -> string
val equal_col_type : col_type -> col_type -> bool

type column = { name : string; ty : col_type }

type t = private {
  columns : column list;
  key_column : int;   (** index into [columns] of the primary key *)
}

val v : ?key_column:int -> column list -> (t, string) result
(** Validates: at least one column, unique names, key index in range. *)

val v_exn : ?key_column:int -> column list -> t

val arity : t -> int
val column_names : t -> string list
val key_name : t -> string

val column_index : t -> string -> int option

val equal : t -> t -> bool

val encode : Fb_codec.Codec.writer -> t -> unit
val decode : Fb_codec.Codec.reader -> t

val check_row : t -> Primitive.t list -> (unit, string) result
(** Arity and per-cell type conformance ([Null] matches any type; [T_any]
    matches everything; the key cell must not be [Null]). *)

val infer : header:string list -> Primitive.t list list -> t
(** Schema from a CSV header and parsed sample rows: a column gets the
    narrowest type covering all non-null samples ([T_any] when mixed).
    Key column defaults to 0. *)

val pp : Format.formatter -> t -> unit
