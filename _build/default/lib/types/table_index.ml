module Codec = Fb_codec.Codec
module Pmap = Fb_postree.Pmap
module Hash = Fb_hash.Hash

type t = {
  column : string;
  idx : Pmap.t;
}

let column t = t.column
let map t = t.idx
let root t = Pmap.root t.idx

(* Index entry key: frame(sortable value) ^ row key, where
   [frame s = escape s ^ "\x00\x01"] and [escape] rewrites embedded NULs as
   \x00\xff (the FoundationDB tuple-layer scheme).  Inside escaped content
   a \x00 is always followed by \xff, so the \x00\x01 terminator cannot
   occur early: frames are prefix-free and order-preserving, and arbitrary
   row-key suffixes (even ones full of \xff or \x00) cannot bleed into a
   neighbouring value's range.  The binding value carries the (primitive,
   row key) pair so scans never parse keys back. *)
let escape s =
  if not (String.contains s '\x00') then s
  else begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        Buffer.add_char b c;
        if c = '\x00' then Buffer.add_char b '\xff')
      s;
    Buffer.contents b
  end

let frame value = escape (Primitive.sortable_key value) ^ "\x00\x01"
let entry_key value row_key = frame value ^ row_key

(* Inclusive bounds covering exactly the entries for [value]: every entry
   extends the frame (whose last byte is \x01), and no other value's frame
   can fall strictly between the frame and its \x02-bumped sibling. *)
let lo_bound value = frame value
let hi_bound value = escape (Primitive.sortable_key value) ^ "\x00\x02"

let entry_value value row_key =
  Codec.to_string
    (fun w () ->
      Primitive.encode w value;
      Codec.bytes w row_key)
    ()

let decode_entry s =
  Codec.of_string_exn
    (fun r ->
      let p = Primitive.decode r in
      let row_key = Codec.read_bytes r in
      (p, row_key))
    s

let cell_of table_schema row column =
  match Schema.column_index table_schema column with
  | None -> Error (Printf.sprintf "no column %S" column)
  | Some i -> Ok (List.nth row i)

let build table ~column =
  let schema = Table.schema table in
  match Schema.column_index schema column with
  | None -> Error (Printf.sprintf "no column %S" column)
  | Some i ->
    let bindings =
      Table.fold
        (fun acc row ->
          let v = List.nth row i in
          let rk = Table.key_of_row schema row in
          (entry_key v rk, entry_value v rk) :: acc)
        [] table
    in
    Ok
      { column;
        idx = Pmap.of_bindings (Pmap.store (Table.rows_map table)) bindings }

let of_root store ~column root = { column; idx = Pmap.of_root store root }

let apply_changes t table changes =
  let schema = Table.schema table in
  let ( let* ) = Result.bind in
  let* edits =
    List.fold_left
      (fun acc change ->
        let* acc = acc in
        match (change : Table.row_change) with
        | Table.Row_added row ->
          let* v = cell_of schema row t.column in
          let rk = Table.key_of_row schema row in
          Ok (Pmap.Put (Pmap.binding (entry_key v rk) (entry_value v rk)) :: acc)
        | Table.Row_removed row ->
          let* v = cell_of schema row t.column in
          let rk = Table.key_of_row schema row in
          Ok (Pmap.Remove (entry_key v rk) :: acc)
        | Table.Row_modified (rk, cells) -> (
          match
            List.find_opt
              (fun (c : Table.cell_change) -> String.equal c.Table.column t.column)
              cells
          with
          | None -> Ok acc (* indexed column untouched *)
          | Some c ->
            Ok
              (Pmap.Put
                 (Pmap.binding
                    (entry_key c.Table.after rk)
                    (entry_value c.Table.after rk))
               :: Pmap.Remove (entry_key c.Table.before rk)
               :: acc)))
      (Ok []) changes
  in
  Ok { t with idx = Pmap.update t.idx edits }

let lookup_keys t value =
  List.map
    (fun (b : Pmap.binding) -> snd (decode_entry b.Pmap.value))
    (Pmap.to_list_range ~lo:(lo_bound value) ~hi:(hi_bound value) t.idx)

let lookup t table value =
  List.filter_map (Table.find table) (lookup_keys t value)

let count t value =
  Pmap.count_range ~lo:(lo_bound value) ~hi:(hi_bound value) t.idx

let range_keys ?lo ?hi t =
  let lo = Option.map lo_bound lo and hi = Option.map hi_bound hi in
  List.map
    (fun (b : Pmap.binding) -> decode_entry b.Pmap.value)
    (Pmap.to_list_range ?lo ?hi t.idx)

let cardinal t = Pmap.cardinal t.idx
let validate t = Pmap.validate t.idx
