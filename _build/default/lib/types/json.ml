type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let expect s c =
  match peek s with
  | Some c' when c' = c -> advance s
  | Some c' -> fail "expected %C at %d, found %C" c s.pos c'
  | None -> fail "expected %C at %d, found end of input" c s.pos

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance s;
    skip_ws s
  | _ -> ()

let expect_word s word value =
  if
    s.pos + String.length word <= String.length s.src
    && String.sub s.src s.pos (String.length word) = word
  then begin
    s.pos <- s.pos + String.length word;
    value
  end
  else fail "invalid literal at %d" s.pos

(* Encode a Unicode scalar value as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 s =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek s with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape at %d" s.pos
    in
    advance s;
    v := (!v lsl 4) lor d
  done;
  !v

let parse_string_body s =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek s with
    | None -> fail "unterminated string"
    | Some '"' ->
      advance s;
      Buffer.contents buf
    | Some '\\' -> (
      advance s;
      match peek s with
      | Some 'n' -> advance s; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance s; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance s; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance s; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance s; Buffer.add_char buf '\012'; go ()
      | Some '"' -> advance s; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance s; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance s; Buffer.add_char buf '/'; go ()
      | Some 'u' ->
        advance s;
        let cp = hex4 s in
        let cp =
          (* Surrogate pair? *)
          if cp >= 0xd800 && cp <= 0xdbff then begin
            expect s '\\';
            expect s 'u';
            let lo = hex4 s in
            if lo < 0xdc00 || lo > 0xdfff then fail "lone high surrogate"
            else 0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
          end
          else if cp >= 0xdc00 && cp <= 0xdfff then fail "lone low surrogate"
          else cp
        in
        add_utf8 buf cp;
        go ()
      | _ -> fail "bad escape at %d" s.pos)
    | Some c when Char.code c < 0x20 ->
      fail "unescaped control character at %d" s.pos
    | Some c ->
      advance s;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number s =
  let start = s.pos in
  let consume pred =
    let any = ref false in
    let rec go () =
      match peek s with
      | Some c when pred c ->
        advance s;
        any := true;
        go ()
      | _ -> !any
    in
    go ()
  in
  let digit c = c >= '0' && c <= '9' in
  ignore (match peek s with Some '-' -> advance s; true | _ -> false);
  (* RFC 8259: the integer part is "0" or a nonzero digit followed by
     digits — no leading zeros. *)
  (match peek s with
   | Some '0' -> (
     advance s;
     match peek s with
     | Some c when digit c -> fail "leading zero at %d" start
     | _ -> ())
   | Some c when digit c -> ignore (consume digit)
   | _ -> fail "bad number at %d" start);
  (match peek s with
   | Some '.' ->
     advance s;
     if not (consume digit) then fail "bad fraction at %d" s.pos
   | _ -> ());
  (match peek s with
   | Some ('e' | 'E') ->
     advance s;
     (match peek s with Some ('+' | '-') -> advance s | _ -> ());
     if not (consume digit) then fail "bad exponent at %d" s.pos
   | _ -> ());
  let text = String.sub s.src start (s.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail "unparsable number %S" text

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail "unexpected end of input"
  | Some 'n' -> expect_word s "null" Null
  | Some 't' -> expect_word s "true" (Bool true)
  | Some 'f' -> expect_word s "false" (Bool false)
  | Some '"' ->
    advance s;
    String (parse_string_body s)
  | Some '[' ->
    advance s;
    skip_ws s;
    if peek s = Some ']' then (advance s; Array [])
    else begin
      let rec items acc =
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' -> advance s; items (v :: acc)
        | Some ']' -> advance s; List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at %d" s.pos
      in
      Array (items [])
    end
  | Some '{' ->
    advance s;
    skip_ws s;
    if peek s = Some '}' then (advance s; Object [])
    else begin
      let member () =
        skip_ws s;
        expect s '"';
        let name = parse_string_body s in
        skip_ws s;
        expect s ':';
        let v = parse_value s in
        (name, v)
      in
      let rec members acc =
        let m = member () in
        skip_ws s;
        match peek s with
        | Some ',' -> advance s; members (m :: acc)
        | Some '}' -> advance s; List.rev (m :: acc)
        | _ -> fail "expected ',' or '}' at %d" s.pos
      in
      Object (members [])
    end
  | Some ('-' | '0' .. '9') -> Number (parse_number s)
  | Some c -> fail "unexpected %C at %d" c s.pos

let parse src =
  let s = { src; pos = 0 } in
  match
    let v = parse_value s in
    skip_ws s;
    if s.pos <> String.length src then fail "trailing garbage at %d" s.pos;
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let render_number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (render_number f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | Array [] -> Buffer.add_string buf "[]"
    | Array items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then (Buffer.add_char buf ','; newline ());
          indent (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      indent depth;
      Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object members ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (name, item) ->
          if i > 0 then (Buffer.add_char buf ','; newline ());
          indent (depth + 1);
          Buffer.add_char buf '"';
          escape_into buf name;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) item)
        members;
      newline ();
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y
  | String x, String y -> String.equal x y
  | Array x, Array y -> List.length x = List.length y && List.for_all2 equal x y
  | Object x, Object y ->
    List.length x = List.length y
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2)
         x y
  | (Null | Bool _ | Number _ | String _ | Array _ | Object _), _ -> false

let int i = Number (float_of_int i)

let member name = function
  | Object members -> List.assoc_opt name members
  | _ -> None
