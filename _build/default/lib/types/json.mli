(** Minimal JSON (RFC 8259) — the wire format of the Web-UI/REST semantic
    view (see DESIGN.md substitutions).  Implemented here because the
    sealed build environment ships no JSON library.

    Numbers are carried as [float] (JSON's own model); object member order
    is preserved; duplicate member names are kept as parsed. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Strict parse of a complete document.  Rejects trailing garbage,
    unterminated constructs, bad escapes and malformed numbers.  [\uXXXX]
    escapes (including surrogate pairs) decode to UTF-8. *)

val to_string : ?pretty:bool -> t -> string
(** Render; [pretty] (default [false]) adds newlines and two-space
    indentation.  Strings are escaped minimally (control characters,
    quotes, backslashes). *)

val equal : t -> t -> bool

(** {1 Construction helpers} *)

val int : int -> t
val member : string -> t -> t option
(** Object member lookup (first match). *)
