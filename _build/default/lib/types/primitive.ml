module Codec = Fb_codec.Codec

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string

let equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | String x, String y -> String.equal x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int64.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let encode w = function
  | Null -> Codec.u8 w 0
  | Bool b ->
    Codec.u8 w 1;
    Codec.bool w b
  | Int i ->
    Codec.u8 w 2;
    Codec.i64 w i
  | Float f ->
    Codec.u8 w 3;
    Codec.f64 w f
  | String s ->
    Codec.u8 w 4;
    Codec.bytes w s

let decode r =
  match Codec.read_u8 r with
  | 0 -> Null
  | 1 -> Bool (Codec.read_bool r)
  | 2 -> Int (Codec.read_i64 r)
  | 3 -> Float (Codec.read_f64 r)
  | 4 -> String (Codec.read_bytes r)
  | t -> raise (Codec.Decode_error (Printf.sprintf "bad primitive tag %d" t))

let float_to_string f =
  (* Shortest representation that round-trips. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> Int64.to_string i
  | Float f -> float_to_string f
  | String s -> s

let looks_like_float s =
  (* Reject nan/inf-as-data and hex floats: CSV cells with those spellings
     stay strings. *)
  String.length s > 0
  && String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-')
       s

let parse s =
  if s = "" then Null
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else
    match Int64.of_string_opt s with
    | Some i -> Int i
    | None ->
      if looks_like_float s then
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> String s
      else String s

(* Order-preserving byte encodings.  Ints: flip the sign bit so two's
   complement order becomes unsigned byte order.  Floats: the classic IEEE
   trick — positive values get their sign bit set, negative values are
   bitwise-negated — which makes byte order match numeric order. *)
let sortable_key p =
  let b = Buffer.create 12 in
  Buffer.add_uint8 b (rank p);
  (match p with
   | Null -> ()
   | Bool v -> Buffer.add_uint8 b (if v then 1 else 0)
   | Int v ->
     let flipped = Int64.logxor v Int64.min_int in
     Buffer.add_int64_be b flipped
   | Float v ->
     (* Normalize -0.0: Float.compare treats the zeros as equal, so their
        sortable keys must coincide too. *)
     let v = if v = 0.0 then 0.0 else v in
     let bits = Int64.bits_of_float v in
     let mapped =
       if Int64.compare bits 0L < 0 then Int64.lognot bits
       else Int64.logxor bits Int64.min_int
     in
     Buffer.add_int64_be b mapped
   | String s -> Buffer.add_string b s);
  Buffer.contents b

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"

let pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | String s -> Format.fprintf fmt "%S" s
  | p -> Format.pp_print_string fmt (to_string p)
