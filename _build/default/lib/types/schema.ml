module Codec = Fb_codec.Codec

type col_type = T_string | T_int | T_float | T_bool | T_any

let col_type_name = function
  | T_string -> "string"
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "bool"
  | T_any -> "any"

let equal_col_type a b = a = b

let col_type_tag = function
  | T_string -> 0
  | T_int -> 1
  | T_float -> 2
  | T_bool -> 3
  | T_any -> 4

let col_type_of_tag = function
  | 0 -> T_string
  | 1 -> T_int
  | 2 -> T_float
  | 3 -> T_bool
  | 4 -> T_any
  | t -> raise (Codec.Decode_error (Printf.sprintf "bad column type tag %d" t))

type column = { name : string; ty : col_type }

type t = { columns : column list; key_column : int }

let v ?(key_column = 0) columns =
  if columns = [] then Error "schema: no columns"
  else if key_column < 0 || key_column >= List.length columns then
    Error "schema: key column out of range"
  else
    let names = List.map (fun c -> c.name) columns in
    let sorted = List.sort_uniq String.compare names in
    if List.length sorted <> List.length names then
      Error "schema: duplicate column names"
    else Ok { columns; key_column }

let v_exn ?key_column columns =
  match v ?key_column columns with
  | Ok s -> s
  | Error e -> invalid_arg e

let arity t = List.length t.columns
let column_names t = List.map (fun c -> c.name) t.columns
let key_name t = (List.nth t.columns t.key_column).name

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.equal c.name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let equal a b =
  a.key_column = b.key_column
  && List.length a.columns = List.length b.columns
  && List.for_all2
       (fun x y -> String.equal x.name y.name && equal_col_type x.ty y.ty)
       a.columns b.columns

let encode w t =
  Codec.varint w t.key_column;
  Codec.list w
    (fun w c ->
      Codec.bytes w c.name;
      Codec.u8 w (col_type_tag c.ty))
    t.columns

let decode r =
  let key_column = Codec.read_varint r in
  let columns =
    Codec.read_list r (fun r ->
        let name = Codec.read_bytes r in
        let ty = col_type_of_tag (Codec.read_u8 r) in
        { name; ty })
  in
  match v ~key_column columns with
  | Ok t -> t
  | Error e -> raise (Codec.Decode_error e)

let cell_conforms ty (p : Primitive.t) =
  match ty, p with
  | _, Primitive.Null -> true
  | T_any, _ -> true
  | T_string, Primitive.String _ -> true
  | T_int, Primitive.Int _ -> true
  | T_float, Primitive.Float _ -> true
  | T_float, Primitive.Int _ -> true (* ints embed in float columns *)
  | T_bool, Primitive.Bool _ -> true
  | (T_string | T_int | T_float | T_bool), _ -> false

let check_row t row =
  if List.length row <> arity t then
    Error
      (Printf.sprintf "row arity %d, schema expects %d" (List.length row)
         (arity t))
  else begin
    let key_cell = List.nth row t.key_column in
    if key_cell = Primitive.Null then Error "key cell is null"
    else
      let rec go i cols cells =
        match cols, cells with
        | [], [] -> Ok ()
        | c :: cols, p :: cells ->
          if cell_conforms c.ty p then go (i + 1) cols cells
          else
            Error
              (Printf.sprintf "column %S: %s value in %s column" c.name
                 (Primitive.type_name p) (col_type_name c.ty))
        | _ -> assert false
      in
      go 0 t.columns row
  end

let type_of_primitive (p : Primitive.t) =
  match p with
  | Primitive.Null -> None
  | Primitive.Bool _ -> Some T_bool
  | Primitive.Int _ -> Some T_int
  | Primitive.Float _ -> Some T_float
  | Primitive.String _ -> Some T_string

let join a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y when equal_col_type x y -> Some x
  | Some T_int, Some T_float | Some T_float, Some T_int -> Some T_float
  | Some _, Some _ -> Some T_any

let infer ~header rows =
  let n = List.length header in
  let tys = Array.make n None in
  List.iter
    (fun row ->
      List.iteri
        (fun i p -> if i < n then tys.(i) <- join tys.(i) (type_of_primitive p))
        row)
    rows;
  let columns =
    List.mapi
      (fun i name ->
        { name; ty = Option.value tys.(i) ~default:T_string })
      header
  in
  v_exn ~key_column:0 columns

let pp fmt t =
  Format.fprintf fmt "@[<h>(%a)@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (i, c) ->
         Format.fprintf fmt "%s%s:%s" c.name
           (if i = t.key_column then "*" else "")
           (col_type_name c.ty)))
    (List.mapi (fun i c -> (i, c)) t.columns)
