(** The ForkBase value model: primitives, blobs, maps, sets, lists and
    relational tables (paper §II overview, Fig. 1 API layer).

    A value's {e descriptor} is its canonical serialized identity — inline
    bytes for primitives, the POS-Tree root (plus schema, for tables) for
    structured values.  FNodes store descriptors, so a version uid covers
    the full value content through the Merkle structure. *)

type t =
  | Primitive of Primitive.t
  | Blob of Fb_postree.Pblob.t
  | Map of Fb_postree.Pmap.t
  | Set of Fb_postree.Pset.t
  | List of Fb_postree.Plist.t
  | Table of Table.t

type kind = K_primitive | K_blob | K_map | K_set | K_list | K_table

val kind : t -> kind
val kind_name : kind -> string
val equal_kind : kind -> kind -> bool

val descriptor : t -> string
(** Canonical serialized descriptor (what an FNode embeds). *)

val of_descriptor : Fb_chunk.Store.t -> string -> (t, string) result
(** Re-attach a value from its descriptor and the store holding its
    chunks. *)

val equal : t -> t -> bool
(** Content equality — descriptor equality, O(1) for structured values
    thanks to Merkle roots. *)

val roots : t -> Fb_hash.Hash.t list
(** POS-Tree root chunks referenced by the value (for GC). *)

val roots_of_descriptor : string -> (Fb_hash.Hash.t list, string) result
(** Same, parsed straight from descriptor bytes without re-attaching the
    value to a store. *)

val type_name : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Convenience constructors} *)

val string : string -> t
val int : int -> t
val bool : bool -> t
val float : float -> t
val blob_of_string : Fb_chunk.Store.t -> string -> t
val map_of_bindings : Fb_chunk.Store.t -> (string * string) list -> t
val set_of_elements : Fb_chunk.Store.t -> string list -> t
val list_of_strings : Fb_chunk.Store.t -> string list -> t

(** {1 Projections} *)

val to_primitive : t -> Primitive.t option
val to_blob : t -> Fb_postree.Pblob.t option
val to_map : t -> Fb_postree.Pmap.t option
val to_set : t -> Fb_postree.Pset.t option
val to_list : t -> Fb_postree.Plist.t option
val to_table : t -> Table.t option
