let parse s =
  let n = String.length s in
  let rows = ref [] and row = ref [] in
  let cell = Buffer.create 64 in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  (* States: Start of cell / unquoted / quoted / after closing quote. *)
  let rec start i =
    if i >= n then finish_at_end ~had_cell:false
    else
      match s.[i] with
      | '"' -> quoted (i + 1)
      | ',' -> (flush_cell (); start (i + 1))
      | '\n' -> (flush_row (); start (i + 1))
      | '\r' when i + 1 < n && s.[i + 1] = '\n' -> (flush_row (); start (i + 2))
      | c -> (Buffer.add_char cell c; unquoted (i + 1))
  and unquoted i =
    if i >= n then finish_at_end ~had_cell:true
    else
      match s.[i] with
      | ',' -> (flush_cell (); start (i + 1))
      | '\n' -> (flush_row (); start (i + 1))
      | '\r' when i + 1 < n && s.[i + 1] = '\n' -> (flush_row (); start (i + 2))
      | '"' -> Error (Printf.sprintf "csv: stray quote at offset %d" i)
      | c -> (Buffer.add_char cell c; unquoted (i + 1))
  and quoted i =
    if i >= n then Error "csv: unterminated quoted field"
    else
      match s.[i] with
      | '"' ->
        if i + 1 < n && s.[i + 1] = '"' then (Buffer.add_char cell '"'; quoted (i + 2))
        else after_quote (i + 1)
      | c -> (Buffer.add_char cell c; quoted (i + 1))
  and after_quote i =
    if i >= n then finish_at_end ~had_cell:true
    else
      match s.[i] with
      | ',' -> (flush_cell (); start (i + 1))
      | '\n' -> (flush_row (); start (i + 1))
      | '\r' when i + 1 < n && s.[i + 1] = '\n' -> (flush_row (); start (i + 2))
      | c ->
        Error (Printf.sprintf "csv: unexpected %C after closing quote at %d" c i)
  and finish_at_end ~had_cell =
    (* A pending cell, or a pending row with cells, terminates the last
       row; bare EOF after a newline does not create an empty row. *)
    if had_cell || !row <> [] || Buffer.length cell > 0 then flush_row ();
    Ok (List.rev !rows)
  in
  start 0

let parse_exn s =
  match parse s with Ok rows -> rows | Error e -> invalid_arg e

let needs_quoting cell =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell

let render_cell buf cell =
  if needs_quoting cell then begin
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"'
  end
  else Buffer.add_string buf cell

let render_row row =
  let buf = Buffer.create 128 in
  List.iteri
    (fun i cell ->
      if i > 0 then Buffer.add_char buf ',';
      render_cell buf cell)
    row;
  Buffer.contents buf

let render rows =
  let buf = Buffer.create 4096 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_char buf ',';
          render_cell buf cell)
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
