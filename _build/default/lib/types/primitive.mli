(** Primitive values: string, number (int/float), boolean, null.

    These are the scalar leaves of the ForkBase data model (paper §II
    overview); they appear as standalone object values and as relational
    table cells. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string

val equal : t -> t -> bool
val compare : t -> t -> int

val encode : Fb_codec.Codec.writer -> t -> unit
val decode : Fb_codec.Codec.reader -> t

val to_string : t -> string
(** Human rendering (CSV cell form): [Null] is the empty string, booleans
    are [true]/[false], floats use shortest round-trip notation. *)

val parse : string -> t
(** Inverse-ish of {!to_string} with inference: empty → [Null], [true]/
    [false] → [Bool], integer syntax → [Int], float syntax → [Float],
    anything else → [String]. *)

val sortable_key : t -> string
(** An order-preserving byte rendering: comparing [sortable_key a] and
    [sortable_key b] as strings agrees with {!compare} (for floats, modulo
    NaN, which sorts above every number here).  Used to key secondary
    indexes so that POS-Tree range scans deliver ordered column access. *)

val type_name : t -> string
val pp : Format.formatter -> t -> unit
