lib/types/table.mli: Fb_chunk Fb_hash Fb_postree Format Primitive Schema
