lib/types/csv.mli:
