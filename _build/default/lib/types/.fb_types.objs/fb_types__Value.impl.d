lib/types/value.ml: Fb_codec Fb_hash Fb_postree Int64 Option Primitive Printf Schema String Table
