lib/types/json.ml: Buffer Char Float List Printf String
