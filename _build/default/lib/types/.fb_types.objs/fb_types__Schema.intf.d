lib/types/schema.mli: Fb_codec Format Primitive
