lib/types/primitive.mli: Fb_codec Format
