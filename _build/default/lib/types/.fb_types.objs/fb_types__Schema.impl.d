lib/types/schema.ml: Array Fb_codec Format List Option Primitive Printf String
