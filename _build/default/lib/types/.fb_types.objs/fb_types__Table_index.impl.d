lib/types/table_index.ml: Buffer Fb_codec Fb_hash Fb_postree List Option Primitive Printf Result Schema String Table
