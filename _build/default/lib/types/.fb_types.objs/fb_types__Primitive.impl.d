lib/types/primitive.ml: Bool Buffer Fb_codec Float Format Int Int64 Printf String
