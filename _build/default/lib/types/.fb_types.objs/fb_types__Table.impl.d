lib/types/table.ml: Array Csv Fb_codec Fb_postree Format Fun Int64 List Map Option Primitive Printf Result Schema Set
