lib/types/value.mli: Fb_chunk Fb_hash Fb_postree Format Primitive Table
