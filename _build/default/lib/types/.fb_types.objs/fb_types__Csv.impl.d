lib/types/csv.ml: Buffer List Printf String
