lib/types/json.mli:
