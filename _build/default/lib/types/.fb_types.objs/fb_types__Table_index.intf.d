lib/types/table_index.mli: Fb_chunk Fb_hash Fb_postree Primitive Table
