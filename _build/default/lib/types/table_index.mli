(** Secondary indexes over table columns.

    An index is itself a POS-Tree map whose keys concatenate an
    order-preserving rendering of the column value with the row key
    ({!Primitive.sortable_key} + separator + row key), so

    - equality lookups are a prefix range scan,
    - ordered and range scans over the column come for free,
    - the index enjoys the same structural invariance and page sharing as
      the table: two versions of a table with few changed rows have two
      index versions sharing almost all pages.

    Indexes are derived data: build one from a table, then keep it current
    with {!apply_changes} fed from {!Table.diff} — O(changes), not
    O(table). *)

type t

val column : t -> string
val map : t -> Fb_postree.Pmap.t
val root : t -> Fb_hash.Hash.t option

val build : Table.t -> column:string -> (t, string) result
(** Scan the table once and index the given column.  Null cells are
    indexed too (as the Null sortable key). *)

val of_root :
  Fb_chunk.Store.t -> column:string -> Fb_hash.Hash.t option -> t

val apply_changes : t -> Table.t -> Table.row_change list -> (t, string) result
(** Maintain the index across a batch of row changes ([Table.diff] output
    between the indexed version and the new one).  The second argument is
    the {e new} table version (used to resolve schema positions). *)

val lookup_keys : t -> Primitive.t -> string list
(** Row keys whose indexed column equals the value, in row-key order. *)

val lookup : t -> Table.t -> Primitive.t -> Table.row list
(** The matching rows, fetched from the table. *)

val count : t -> Primitive.t -> int
(** Matching-row count straight from index statistics. *)

val range_keys :
  ?lo:Primitive.t -> ?hi:Primitive.t -> t -> (Primitive.t * string) list
(** (column value, row key) pairs with the column value in [lo, hi]
    (inclusive; [None] = unbounded), ordered by column value then row
    key. *)

val cardinal : t -> int
val validate : t -> (unit, string) result
