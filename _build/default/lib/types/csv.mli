(** RFC 4180-style CSV reading and writing.

    Supports quoted fields with embedded commas, quotes (doubled) and
    newlines; both LF and CRLF row separators.  This is the import/export
    format of the demo's dataset experiments (paper §III-A). *)

val parse : string -> (string list list, string) result
(** Parse a whole document into rows of cells.  A trailing newline does not
    produce an empty row.  Errors on unterminated quotes or stray quote
    characters. *)

val parse_exn : string -> string list list
(** @raise Invalid_argument on malformed input. *)

val render : string list list -> string
(** Render rows, quoting only cells that need it.  Inverse of {!parse}. *)

val render_row : string list -> string
