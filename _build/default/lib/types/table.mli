(** Relational table stored as a POS-Tree map: primary key → encoded row.

    The composite data type of the paper's dataset experiments.  Because
    rows live in a POS-Tree, two table versions differing in a few rows
    share almost all pages, table diff prunes identical sub-trees, and the
    rows root hash authenticates the table content. *)

type t

type row = Primitive.t list

val create : Fb_chunk.Store.t -> Schema.t -> t
val schema : t -> Schema.t
val rows_map : t -> Fb_postree.Pmap.t
val rows_root : t -> Fb_hash.Hash.t option

val of_rows_root :
  Fb_chunk.Store.t -> Schema.t -> Fb_hash.Hash.t option -> t

val cardinal : t -> int

val key_of_row : Schema.t -> row -> string
(** Rendering of the key cell (must not be [Null]). *)

val encode_row : row -> string
val decode_row : string -> (row, string) result

val insert : t -> row -> (t, string) result
(** Upsert after {!Schema.check_row}. *)

val insert_many : t -> row list -> (t, string) result
val insert_exn : t -> row -> t

val delete : t -> string -> t
(** Remove by key; absent keys are a no-op. *)

val find : t -> string -> row option
val mem : t -> string -> bool

val iter : (row -> unit) -> t -> unit
val fold : ('acc -> row -> 'acc) -> 'acc -> t -> 'acc
val to_rows : t -> row list

val select : t -> (row -> bool) -> row list
val project : t -> string list -> (Primitive.t list list, string) result
(** Column subset, by name, over all rows. *)

(** {1 Diff (paper §III-B)} *)

type cell_change = {
  column : string;
  before : Primitive.t;
  after : Primitive.t;
}

type row_change =
  | Row_added of row
  | Row_removed of row
  | Row_modified of string * cell_change list
      (** key, changed cells only *)

val diff : t -> t -> (row_change list, string) result
(** Errors if the schemas differ; POS-Tree sub-tree pruning underneath. *)

(** {1 Column statistics (the [Stat] API)} *)

type col_stat = {
  column : string;
  values : int;          (** non-null cells *)
  nulls : int;
  distinct : int;
  min : Primitive.t option;   (** numeric/string minimum, if comparable *)
  max : Primitive.t option;
}

val stat : t -> col_stat list

(** {1 Schema evolution} *)

type migration =
  | Add_column of Schema.column * Primitive.t
      (** append a column, filling existing rows with the default *)
  | Drop_column of string
  | Rename_column of string * string

val migrate : t -> migration list -> (t, string) result
(** Apply migrations in order, rewriting every row once at the end.  The
    key column may be renamed but not dropped; adding duplicates or
    dropping/renaming unknown columns fails; the default value of an added
    column must conform to its type.  The result is a fresh table version
    whose POS-Tree shares nothing forced — but committing it alongside the
    old version still dedups any untouched row bytes. *)

(** {1 Aggregation} *)

type aggregate = Count | Sum | Avg | Min | Max

val aggregate_name : aggregate -> string

val group_by :
  t -> by:string -> targets:(string * aggregate) list ->
  ((Primitive.t * Primitive.t list) list, string) result
(** [group_by t ~by ~targets] groups rows on column [by] and computes each
    [(column, aggregate)] target per group; groups are sorted by key value.
    [Count] counts non-null cells; [Sum]/[Avg] require numeric cells
    ([Null] skipped) and yield [Float] when any operand is; [Min]/[Max] use
    {!Primitive.compare}.  Errors on unknown columns or non-numeric
    sums. *)

(** {1 CSV} *)

val of_csv :
  Fb_chunk.Store.t -> ?key_column:int -> string -> (t, string) result
(** First row is the header; cell types inferred via {!Schema.infer}. *)

val to_csv : t -> string
(** Header plus one line per row, in key order.  [of_csv] of the result
    reproduces the table (up to inferred schema). *)

val pp : Format.formatter -> t -> unit
