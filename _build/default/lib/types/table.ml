module Codec = Fb_codec.Codec
module Pmap = Fb_postree.Pmap

type t = { schema : Schema.t; rows : Pmap.t }

type row = Primitive.t list

let create store schema = { schema; rows = Pmap.empty store }
let schema t = t.schema
let rows_map t = t.rows
let rows_root t = Pmap.root t.rows

let of_rows_root store schema root =
  { schema; rows = Pmap.of_root store root }

let cardinal t = Pmap.cardinal t.rows

let key_of_row schema row =
  Primitive.to_string (List.nth row schema.Schema.key_column)

let encode_row row = Codec.to_string (fun w r -> Codec.list w Primitive.encode r) row

let decode_row s =
  Codec.of_string (fun r -> Codec.read_list r Primitive.decode) s

let decode_row_exn s =
  match decode_row s with
  | Ok row -> row
  | Error e -> raise (Fb_postree.Postree.Corrupt ("table row: " ^ e))

let insert t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    let key = key_of_row t.schema row in
    Ok { t with rows = Pmap.put t.rows key (encode_row row) }

let insert_many t rows =
  (* Validate everything first, then apply as one batch update. *)
  let rec check = function
    | [] -> Ok ()
    | row :: rest -> (
      match Schema.check_row t.schema row with
      | Error _ as e -> e
      | Ok () -> check rest)
  in
  match check rows with
  | Error _ as e -> e
  | Ok () ->
    let edits =
      List.map
        (fun row ->
          Pmap.Put
            (Pmap.binding (key_of_row t.schema row) (encode_row row)))
        rows
    in
    Ok { t with rows = Pmap.update t.rows edits }

let insert_exn t row =
  match insert t row with Ok t -> t | Error e -> invalid_arg e

let delete t key = { t with rows = Pmap.remove t.rows key }
let find t key = Option.map decode_row_exn (Pmap.find_value t.rows key)
let mem t key = Pmap.mem t.rows key

let iter f t = Pmap.iter (fun (b : Pmap.binding) -> f (decode_row_exn b.value)) t.rows

let fold f acc t =
  let acc = ref acc in
  iter (fun row -> acc := f !acc row) t;
  !acc

let to_rows t = List.rev (fold (fun acc r -> r :: acc) [] t)
let select t pred = List.rev (fold (fun acc r -> if pred r then r :: acc else acc) [] t)

let project t names =
  let rec indices = function
    | [] -> Ok []
    | n :: rest -> (
      match Schema.column_index t.schema n with
      | None -> Error (Printf.sprintf "no column %S" n)
      | Some i -> Result.map (fun is -> i :: is) (indices rest))
  in
  match indices names with
  | Error _ as e -> e
  | Ok is -> Ok (List.map (fun row -> List.map (List.nth row) is) (to_rows t))

type cell_change = {
  column : string;
  before : Primitive.t;
  after : Primitive.t;
}

type row_change =
  | Row_added of row
  | Row_removed of row
  | Row_modified of string * cell_change list

let cell_changes schema r1 r2 =
  let names = Schema.column_names schema in
  List.filteri (fun _ c -> c <> None)
    (List.map2
       (fun column (before, after) ->
         if Primitive.equal before after then None
         else Some { column; before; after })
       names
       (List.combine r1 r2))
  |> List.filter_map Fun.id

let diff t1 t2 =
  if not (Schema.equal t1.schema t2.schema) then
    Error "table diff: schemas differ"
  else
    Ok
      (List.map
         (fun (change : Pmap.change) ->
           match change with
           | Pmap.Added b -> Row_added (decode_row_exn b.value)
           | Pmap.Removed b -> Row_removed (decode_row_exn b.value)
           | Pmap.Modified (b1, b2) ->
             Row_modified
               ( b1.key,
                 cell_changes t1.schema (decode_row_exn b1.value)
                   (decode_row_exn b2.value) ))
         (Pmap.diff t1.rows t2.rows))

type col_stat = {
  column : string;
  values : int;
  nulls : int;
  distinct : int;
  min : Primitive.t option;
  max : Primitive.t option;
}

module Pset_ = Set.Make (struct
  type t = Primitive.t

  let compare = Primitive.compare
end)

let stat t =
  let names = Schema.column_names t.schema in
  let n = List.length names in
  let values = Array.make n 0
  and nulls = Array.make n 0
  and distinct = Array.make n Pset_.empty
  and mins = Array.make n None
  and maxs = Array.make n None in
  iter
    (fun row ->
      List.iteri
        (fun i p ->
          match p with
          | Primitive.Null -> nulls.(i) <- nulls.(i) + 1
          | _ ->
            values.(i) <- values.(i) + 1;
            distinct.(i) <- Pset_.add p distinct.(i);
            (match mins.(i) with
             | None -> mins.(i) <- Some p
             | Some m -> if Primitive.compare p m < 0 then mins.(i) <- Some p);
            (match maxs.(i) with
             | None -> maxs.(i) <- Some p
             | Some m -> if Primitive.compare p m > 0 then maxs.(i) <- Some p))
        row)
    t;
  List.mapi
    (fun i column ->
      { column;
        values = values.(i);
        nulls = nulls.(i);
        distinct = Pset_.cardinal distinct.(i);
        min = mins.(i);
        max = maxs.(i) })
    names

type migration =
  | Add_column of Schema.column * Primitive.t
  | Drop_column of string
  | Rename_column of string * string

(* Migrations are planned as transformations over (column list, row
   transformer) and applied to every row once. *)
let migrate t migrations =
  let ( let* ) = Result.bind in
  let* columns, key_name, transform =
    List.fold_left
      (fun acc m ->
        let* columns, key_name, transform = acc in
        match m with
        | Add_column (col, default) ->
          if List.exists (fun (c : Schema.column) -> c.Schema.name = col.Schema.name) columns
          then Error (Printf.sprintf "migrate: column %S exists" col.Schema.name)
          else if not (Schema.check_row (Schema.v_exn [ col ]) [ default ] = Ok ())
                  && default <> Primitive.Null
          then
            Error
              (Printf.sprintf "migrate: default for %S has the wrong type"
                 col.Schema.name)
          else
            Ok
              ( columns @ [ col ],
                key_name,
                fun row -> transform row @ [ default ] )
        | Drop_column name ->
          if name = key_name then Error "migrate: cannot drop the key column"
          else (
            match
              List.find_index
                (fun (c : Schema.column) -> c.Schema.name = name)
                columns
            with
            | None -> Error (Printf.sprintf "migrate: no column %S" name)
            | Some i ->
              Ok
                ( List.filteri (fun j _ -> j <> i) columns,
                  key_name,
                  fun row ->
                    List.filteri (fun j _ -> j <> i) (transform row) ))
        | Rename_column (from_name, to_name) ->
          if List.exists (fun (c : Schema.column) -> c.Schema.name = to_name) columns
          then Error (Printf.sprintf "migrate: column %S exists" to_name)
          else if
            not
              (List.exists
                 (fun (c : Schema.column) -> c.Schema.name = from_name)
                 columns)
          then Error (Printf.sprintf "migrate: no column %S" from_name)
          else
            Ok
              ( List.map
                  (fun (c : Schema.column) ->
                    if c.Schema.name = from_name then
                      { c with Schema.name = to_name }
                    else c)
                  columns,
                (if key_name = from_name then to_name else key_name),
                transform ))
      (Ok
         ( (t.schema.Schema.columns :> Schema.column list),
           Schema.key_name t.schema,
           Fun.id ))
      migrations
  in
  let key_column =
    match
      List.find_index
        (fun (c : Schema.column) -> c.Schema.name = key_name)
        columns
    with
    | Some i -> i
    | None -> 0
  in
  let* schema =
    match Schema.v ~key_column columns with
    | Ok s -> Ok s
    | Error e -> Error ("migrate: " ^ e)
  in
  let rows = List.map transform (to_rows t) in
  match insert_many (create (Pmap.store t.rows) schema) rows with
  | Ok t' -> Ok t'
  | Error e -> Error ("migrate: " ^ e)

type aggregate = Count | Sum | Avg | Min | Max

let aggregate_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

module Pmap_group = Map.Make (struct
  type t = Primitive.t

  let compare = Primitive.compare
end)

let numeric = function
  | Primitive.Int i -> Some (Int64.to_float i, `Int)
  | Primitive.Float f -> Some (f, `Float)
  | Primitive.Null | Primitive.Bool _ | Primitive.String _ -> None

let group_by t ~by ~targets =
  let schema = t.schema in
  let ( let* ) = Result.bind in
  let* by_idx =
    match Schema.column_index schema by with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "group_by: no column %S" by)
  in
  let* target_idxs =
    List.fold_left
      (fun acc (name, agg) ->
        let* acc = acc in
        match Schema.column_index schema name with
        | Some i -> Ok ((name, i, agg) :: acc)
        | None -> Error (Printf.sprintf "group_by: no column %S" name))
      (Ok []) targets
  in
  let target_idxs = List.rev target_idxs in
  (* Per group and per target: (count, float sum, any-float flag, min, max).
     Sum legality is checked cell by cell so the error names the column. *)
  let groups = ref Pmap_group.empty in
  let error = ref None in
  iter
    (fun row ->
      if !error = None then begin
        let gkey = List.nth row by_idx in
        let states =
          match Pmap_group.find_opt gkey !groups with
          | Some s -> s
          | None ->
            List.map (fun _ -> (0, 0.0, false, None, None)) target_idxs
        in
        let states' =
          List.map2
            (fun (name, i, agg) (n, sum, anyf, mn, mx) ->
              let cell = List.nth row i in
              match cell with
              | Primitive.Null -> (n, sum, anyf, mn, mx)
              | _ ->
                let sum, anyf =
                  match agg, numeric cell with
                  | (Sum | Avg), Some (f, kind) ->
                    (sum +. f, anyf || kind = `Float)
                  | (Sum | Avg), None ->
                    error :=
                      Some
                        (Printf.sprintf
                           "group_by: %s(%s) over non-numeric cell"
                           (aggregate_name agg) name);
                    (sum, anyf)
                  | (Count | Min | Max), _ -> (sum, anyf)
                in
                let mn =
                  match mn with
                  | None -> Some cell
                  | Some m ->
                    if Primitive.compare cell m < 0 then Some cell else Some m
                in
                let mx =
                  match mx with
                  | None -> Some cell
                  | Some m ->
                    if Primitive.compare cell m > 0 then Some cell else Some m
                in
                (n + 1, sum, anyf, mn, mx))
            target_idxs states
        in
        groups := Pmap_group.add gkey states' !groups
      end)
    t;
  match !error with
  | Some e -> Error e
  | None ->
    Ok
      (List.rev
         (Pmap_group.fold
            (fun gkey states acc ->
              let cells =
                List.map2
                  (fun (_, _, agg) (n, sum, anyf, mn, mx) ->
                    match agg with
                    | Count -> Primitive.Int (Int64.of_int n)
                    | Sum ->
                      if anyf then Primitive.Float sum
                      else Primitive.Int (Int64.of_float sum)
                    | Avg ->
                      if n = 0 then Primitive.Null
                      else Primitive.Float (sum /. float_of_int n)
                    | Min -> Option.value mn ~default:Primitive.Null
                    | Max -> Option.value mx ~default:Primitive.Null)
                  target_idxs states
              in
              (gkey, cells) :: acc)
            !groups []))

let of_csv store ?(key_column = 0) content =
  match Csv.parse content with
  | Error _ as e -> e
  | Ok [] -> Error "csv: empty document"
  | Ok (header :: data) ->
    let parsed = List.map (List.map Primitive.parse) data in
    let schema = Schema.infer ~header parsed in
    (match Schema.v ~key_column (schema.Schema.columns :> Schema.column list) with
     | Error _ as e -> e
     | Ok schema ->
       let width = Schema.arity schema in
       let rec pad_check i = function
         | [] -> Ok ()
         | row :: rest ->
           if List.length row <> width then
             Error
               (Printf.sprintf "csv: row %d has %d cells, header has %d"
                  (i + 2) (List.length row) width)
           else pad_check (i + 1) rest
       in
       (match pad_check 0 parsed with
        | Error _ as e -> e
        | Ok () -> insert_many (create store schema) parsed))

let to_csv t =
  let header = Schema.column_names t.schema in
  let rows =
    List.map (fun row -> List.map Primitive.to_string row) (to_rows t)
  in
  Csv.render (header :: rows)

let pp fmt t =
  Format.fprintf fmt "<table %a rows=%d>" Schema.pp t.schema (cardinal t)
