module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module Value = Fb_types.Value
module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Plist = Fb_postree.Plist
module Pblob = Fb_postree.Pblob

type report = {
  versions_checked : int;
  value_chunks : int;
}

let ( let* ) = Result.bind

let verify_value _store value =
  (* [hashes] is a thunk: traversal is only safe once validation passed. *)
  let count_after validate hashes =
    let* () = validate in
    Ok (List.length (hashes ()))
  in
  match (value : Value.t) with
  | Value.Primitive _ -> Ok 0
  | Value.Blob b ->
    count_after (Pblob.validate b) (fun () -> Pblob.node_hashes b)
  | Value.Map m ->
    count_after (Pmap.validate m) (fun () -> Pmap.node_hashes m)
  | Value.Set s ->
    count_after (Pset.validate s) (fun () -> Pset.node_hashes s)
  | Value.List l ->
    count_after (Plist.validate l) (fun () -> Plist.node_hashes l)
  | Value.Table t ->
    let rows = Fb_types.Table.rows_map t in
    let* () = Pmap.validate rows in
    (* Every row must decode and conform to the schema. *)
    let schema = Fb_types.Table.schema t in
    let* () =
      Pmap.fold
        (fun acc (b : Pmap.binding) ->
          let* () = acc in
          match Fb_types.Table.decode_row b.value with
          | Error e -> Error (Printf.sprintf "row %S: %s" b.key e)
          | Ok row -> (
            match Fb_types.Schema.check_row schema row with
            | Error e -> Error (Printf.sprintf "row %S: %s" b.key e)
            | Ok () ->
              if
                String.equal (Fb_types.Table.key_of_row schema row) b.key
              then Ok ()
              else Error (Printf.sprintf "row %S: key cell mismatch" b.key)))
        (Ok ()) rows
    in
    Ok (List.length (Pmap.node_hashes rows))

(* The FNode chunk itself must re-hash to the uid it was requested by. *)
let verify_fnode store uid =
  match store.Store.get_raw uid with
  | None -> Error (Printf.sprintf "no such version %s" (Hash.to_hex uid))
  | Some raw ->
    if not (Hash.equal (Hash.of_string raw) uid) then
      Error
        (Printf.sprintf "version %s: stored bytes hash to %s (tampered)"
           (Hash.to_hex uid)
           (Hash.to_hex (Hash.of_string raw)))
    else
      let* chunk = Fb_chunk.Chunk.decode raw in
      let* fnode = Fnode.of_chunk chunk in
      (* seq must strictly dominate all bases: the hash chain's clock. *)
      Ok fnode

let verify ?(check_history = true) ?(check_history_values = false) store uid =
  let rec go seen frontier report ~first =
    match frontier with
    | [] -> Ok report
    | id :: rest ->
      if Hash.Set.mem id seen then go seen rest report ~first:false
      else
        let* fnode = verify_fnode store id in
        let* value_chunks =
          if first || check_history_values then
            let* value = Value.of_descriptor store fnode.Fnode.value_descriptor in
            verify_value store value
          else Ok 0
        in
        let* () =
          (* Bases must exist (when history checking) and carry smaller
             logical clocks — a cycle would violate this immediately. *)
          List.fold_left
            (fun acc base ->
              let* () = acc in
              match Fnode.load store base with
              | Error e -> Error e
              | Ok parent ->
                if parent.Fnode.seq >= fnode.Fnode.seq then
                  Error
                    (Printf.sprintf
                       "version %s: base %s has seq %d >= %d (cycle or forged \
                        clock)"
                       (Hash.to_hex id) (Hash.to_hex base) parent.Fnode.seq
                       fnode.Fnode.seq)
                else Ok ())
            (Ok ())
            (if check_history then fnode.Fnode.bases else [])
        in
        let report =
          { versions_checked = report.versions_checked + 1;
            value_chunks = report.value_chunks + value_chunks }
        in
        let frontier =
          if check_history then fnode.Fnode.bases @ rest else rest
        in
        go (Hash.Set.add id seen) frontier report ~first:false
  in
  go Hash.Set.empty [ uid ]
    { versions_checked = 0; value_chunks = 0 }
    ~first:true
