lib/repr/dag.mli: Fb_chunk Fb_hash Fnode
