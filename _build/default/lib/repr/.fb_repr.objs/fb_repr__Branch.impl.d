lib/repr/branch.ml: Fb_codec Fb_hash Hashtbl List Printf String
