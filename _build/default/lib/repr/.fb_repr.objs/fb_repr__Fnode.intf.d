lib/repr/fnode.mli: Fb_chunk Fb_hash Fb_types Format
