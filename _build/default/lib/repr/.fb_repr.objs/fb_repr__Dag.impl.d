lib/repr/dag.ml: Fb_chunk Fb_codec Fb_hash Fb_types Fnode Int List Result
