lib/repr/bundle.mli: Fb_chunk Fb_hash
