lib/repr/verify.ml: Fb_chunk Fb_hash Fb_postree Fb_types Fnode List Printf Result String
