lib/repr/verify.mli: Fb_chunk Fb_hash Fb_types
