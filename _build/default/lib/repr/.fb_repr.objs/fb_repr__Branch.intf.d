lib/repr/branch.mli: Fb_hash
