lib/repr/bundle.ml: Dag Fb_chunk Fb_codec Fb_hash List Printf Result String
