lib/repr/fnode.ml: Fb_chunk Fb_codec Fb_hash Fb_types Format List Printf
