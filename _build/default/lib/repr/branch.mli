(** Branch table: per-key branch heads.

    In ForkBase every object key may carry multiple named branches (paper
    §II-D).  Heads are the one piece of mutable state in the system; under
    the tamper-evidence threat model they are what "the users keep track
    of", so the table lives {e outside} the (possibly malicious) chunk
    store.  [serialize]/[deserialize] let a CLI persist it locally. *)

type t

val default_branch : string
(** ["master"], the branch a key's first Put creates. *)

val create : unit -> t

val head : t -> key:string -> branch:string -> Fb_hash.Hash.t option
val set_head : t -> key:string -> branch:string -> Fb_hash.Hash.t -> unit

val branches : t -> key:string -> (string * Fb_hash.Hash.t) list
(** Branch names and heads of a key, sorted by name. *)

val keys : t -> string list
(** All keys with at least one branch, sorted. *)

val exists : t -> key:string -> branch:string -> bool

val remove : t -> key:string -> branch:string -> bool
(** [true] if the branch existed. *)

val rename :
  t -> key:string -> from_branch:string -> to_branch:string ->
  (unit, string) result
(** Fails if [from_branch] is missing or [to_branch] exists. *)

val serialize : t -> string
val deserialize : string -> (t, string) result
