module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash

let ( let* ) = Result.bind

let parents store id =
  let* fnode = Fnode.load store id in
  Ok fnode.Fnode.bases

(* Walk ancestors breadth-first; visits each uid once. *)
let fold_ancestors store start ~init ~f =
  let rec go seen frontier acc =
    match frontier with
    | [] -> Ok acc
    | id :: rest ->
      if Hash.Set.mem id seen then go seen rest acc
      else
        let* fnode = Fnode.load store id in
        let* acc = f acc id fnode in
        go (Hash.Set.add id seen) (fnode.Fnode.bases @ rest) acc
  in
  go Hash.Set.empty [ start ] init

let history ?limit store id =
  let* nodes =
    fold_ancestors store id ~init:[] ~f:(fun acc _ fnode -> Ok (fnode :: acc))
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare b.Fnode.seq a.Fnode.seq with
        | 0 -> Hash.compare (Fnode.uid a) (Fnode.uid b)
        | c -> c)
      nodes
  in
  Ok
    (match limit with
     | None -> sorted
     | Some n -> List.filteri (fun i _ -> i < n) sorted)

let ancestors store id =
  fold_ancestors store id ~init:Hash.Set.empty ~f:(fun acc uid _ ->
      Ok (Hash.Set.add uid acc))

let is_ancestor store ~ancestor id =
  let* set = ancestors store id in
  Ok (Hash.Set.mem ancestor set)

let merge_base store a b =
  let* ancestors_a = ancestors store a in
  let* common =
    fold_ancestors store b ~init:[] ~f:(fun acc uid fnode ->
        if Hash.Set.mem uid ancestors_a then Ok ((uid, fnode.Fnode.seq) :: acc)
        else Ok acc)
  in
  match common with
  | [] -> Ok None
  | _ ->
    let best =
      List.fold_left
        (fun (bu, bs) (u, s) ->
          if s > bs || (s = bs && Hash.compare u bu < 0) then (u, s)
          else (bu, bs))
        (List.hd common) (List.tl common)
    in
    Ok (Some (fst best))

(* Chunk-level child extraction for GC.  Keyed POS-Tree index chunks encode
   split keys as length-prefixed bytes (all shipped instantiations use
   string keys), so their layout is parseable without the entry functor. *)
let fnode_children chunk =
  let or_empty = function Ok l -> l | Error _ -> [] in
  match chunk.Chunk.kind with
  | Chunk.Fnode ->
    (match Fnode.of_chunk chunk with
     | Error _ -> []
     | Ok fnode ->
       let value_roots =
         or_empty
           (Fb_types.Value.roots_of_descriptor fnode.Fnode.value_descriptor)
       in
       value_roots @ fnode.Fnode.bases)
  | Chunk.Index ->
    or_empty
      (Codec.of_string
         (fun r ->
           Codec.read_list r (fun r ->
               let _split = Codec.read_bytes r in
               let child = Codec.read_hash r in
               let _count = Codec.read_varint r in
               child))
         chunk.Chunk.payload)
  | Chunk.Seq_index ->
    or_empty
      (Codec.of_string
         (fun r ->
           Codec.read_list r (fun r ->
               let child = Codec.read_hash r in
               let _count = Codec.read_varint r in
               child))
         chunk.Chunk.payload)
  | Chunk.Leaf_map | Chunk.Leaf_set | Chunk.Leaf_list | Chunk.Leaf_blob -> []
