(** Tamper-evident verification (paper §II-D, §III-C).

    Threat model: the chunk store is malicious; the user holds the latest
    uid of every branch they committed.  Given a uid, verification
    recomputes every hash on the spot — the FNode chunk, every POS-Tree
    node of the value, and (optionally) the whole derivation chain — and
    compares against the ids the data is served under.  Any altered,
    truncated or substituted byte changes some hash and is reported. *)

type report = {
  versions_checked : int;  (** FNodes walked *)
  value_chunks : int;      (** POS-Tree chunks re-hashed *)
}

val verify :
  ?check_history:bool ->
  ?check_history_values:bool ->
  Fb_chunk.Store.t ->
  Fb_hash.Hash.t ->
  (report, string) result
(** [verify store uid] — re-hash the FNode at [uid] and fully validate its
    value.  [check_history] (default [true]) walks and re-hashes every
    ancestor FNode; [check_history_values] (default [false]) additionally
    validates every historical value's POS-Tree. *)

val verify_value : Fb_chunk.Store.t -> Fb_types.Value.t -> (int, string) result
(** Validate one value's POS-Tree; returns the number of chunks checked. *)
