module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash

let magic = "FBBUNDLE1"

let export store ~roots =
  (* Deterministic order: sorted ids make equal closures equal bundles. *)
  let closure =
    Fb_chunk.Gc.reachable store ~children:Dag.fnode_children ~roots
  in
  let ids = Hash.Set.elements closure in
  let missing =
    List.filter (fun id -> not (Store.mem store id)) ids
    @ List.filter (fun id -> not (Store.mem store id)) roots
  in
  match missing with
  | id :: _ ->
    Error (Printf.sprintf "bundle export: missing chunk %s" (Hash.to_hex id))
  | [] ->
    let w = Codec.writer ~initial_size:65536 () in
    Codec.raw w magic;
    Codec.list w Codec.hash roots;
    Codec.varint w (List.length ids);
    List.iter
      (fun id ->
        match store.Store.get_raw id with
        | Some encoded -> Codec.bytes w encoded
        | None -> assert false (* checked above *))
      ids;
    Ok (Codec.contents w)

let import store bundle =
  let decode r =
    let m = Codec.read_raw r (String.length magic) in
    if not (String.equal m magic) then
      raise (Codec.Decode_error "bundle: bad magic");
    let roots = Codec.read_list r Codec.read_hash in
    let n = Codec.read_varint r in
    let chunks = List.init n (fun _ -> Codec.read_bytes r) in
    (roots, chunks)
  in
  match Codec.of_string decode bundle with
  | Error e -> Error ("bundle: " ^ e)
  | Ok (roots, encoded_chunks) ->
    (* Stage and verify everything before touching the store. *)
    let staged = Hash.Tbl.create (List.length encoded_chunks) in
    let rec stage = function
      | [] -> Ok ()
      | encoded :: rest -> (
        match Chunk.decode encoded with
        | Error e -> Error ("bundle: " ^ e)
        | Ok chunk ->
          Hash.Tbl.replace staged (Chunk.hash chunk) chunk;
          stage rest)
    in
    let ( let* ) = Result.bind in
    let* () = stage encoded_chunks in
    (* Closure completeness: every child of every staged chunk must be
       staged or already present locally. *)
    let available id = Hash.Tbl.mem staged id || Store.mem store id in
    let* () =
      Hash.Tbl.fold
        (fun id chunk acc ->
          let* () = acc in
          match
            List.find_opt
              (fun child -> not (available child))
              (Dag.fnode_children chunk)
          with
          | Some child ->
            Error
              (Printf.sprintf "bundle: chunk %s references missing %s"
                 (Hash.to_hex id) (Hash.to_hex child))
          | None -> Ok ())
        staged (Ok ())
    in
    let* () =
      match List.find_opt (fun r -> not (available r)) roots with
      | Some r ->
        Error (Printf.sprintf "bundle: root %s not included" (Hash.to_hex r))
      | None -> Ok ()
    in
    let fresh = ref 0 in
    Hash.Tbl.iter
      (fun id chunk ->
        if not (Store.mem store id) then begin
          ignore (Store.put store chunk);
          incr fresh
        end)
      staged;
    Ok (roots, !fresh)
