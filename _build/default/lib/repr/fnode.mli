(** FNode — a node of the version derivation graph (paper §II-D).

    An FNode binds an object key to a value descriptor and to the uids of
    the versions it was derived from ([bases]).  FNodes are stored as
    chunks, so a version's {e uid is the hash of its FNode chunk}: it
    uniquely identifies both the value (through the POS-Tree Merkle root in
    the descriptor) and the full derivation history (through the hash chain
    of bases).  Two FNodes are equal — same uid — iff value and history
    are identical. *)

type t = private {
  key : string;             (** object key this version belongs to *)
  value_descriptor : string; (** {!Fb_types.Value.descriptor} bytes *)
  bases : Fb_hash.Hash.t list;
      (** parent version uids: one for an ordinary Put, two for a merge,
          none for an initial version *)
  author : string;
  message : string;
  seq : int;
      (** logical timestamp: 1 + max of the bases' [seq]; gives a
          deterministic topological order without wall clocks *)
}

val v :
  key:string ->
  value_descriptor:string ->
  bases:Fb_hash.Hash.t list ->
  author:string ->
  message:string ->
  seq:int ->
  t

val to_chunk : t -> Fb_chunk.Chunk.t
val of_chunk : Fb_chunk.Chunk.t -> (t, string) result

val uid : t -> Fb_hash.Hash.t
(** The version identifier: hash of the encoded FNode chunk. *)

val store : Fb_chunk.Store.t -> t -> Fb_hash.Hash.t
(** Persist and return the uid. *)

val load : Fb_chunk.Store.t -> Fb_hash.Hash.t -> (t, string) result
(** Fetch by uid.  Does {e not} re-check integrity; see {!Verify}. *)

val value : Fb_chunk.Store.t -> t -> (Fb_types.Value.t, string) result
(** Re-attach the value from the descriptor. *)

val pp : Format.formatter -> t -> unit
