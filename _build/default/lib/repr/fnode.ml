module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash

type t = {
  key : string;
  value_descriptor : string;
  bases : Hash.t list;
  author : string;
  message : string;
  seq : int;
}

let v ~key ~value_descriptor ~bases ~author ~message ~seq =
  (* Bases are sorted so that logically identical derivations (e.g. the two
     orders of naming merge parents) canonicalize to one uid. *)
  let bases = List.sort_uniq Hash.compare bases in
  { key; value_descriptor; bases; author; message; seq }

let encode w t =
  Codec.bytes w t.key;
  Codec.bytes w t.value_descriptor;
  Codec.list w Codec.hash t.bases;
  Codec.bytes w t.author;
  Codec.bytes w t.message;
  Codec.varint w t.seq

let decode r =
  let key = Codec.read_bytes r in
  let value_descriptor = Codec.read_bytes r in
  let bases = Codec.read_list r Codec.read_hash in
  let author = Codec.read_bytes r in
  let message = Codec.read_bytes r in
  let seq = Codec.read_varint r in
  { key; value_descriptor; bases; author; message; seq }

let to_chunk t = Chunk.v Chunk.Fnode (Codec.to_string encode t)

let of_chunk chunk =
  match chunk.Chunk.kind with
  | Chunk.Fnode -> Codec.of_string decode chunk.Chunk.payload
  | k ->
    Error (Printf.sprintf "expected fnode chunk, got %s" (Chunk.kind_to_string k))

let uid t = Chunk.hash (to_chunk t)
let store st t = Store.put st (to_chunk t)

let load st id =
  match Store.get st id with
  | None -> Error (Printf.sprintf "no such version %s" (Hash.to_hex id))
  | Some chunk -> of_chunk chunk

let value st t = Fb_types.Value.of_descriptor st t.value_descriptor

let pp fmt t =
  Format.fprintf fmt "@[<v>version %s@ key: %S@ seq: %d@ author: %s@ %s@]"
    (Hash.to_base32 (uid t))
    t.key t.seq t.author t.message
