(** Version bundles — self-contained exchange of a version's chunk closure
    (the moral equivalent of [git bundle] for ForkBase data).

    A bundle packs the root uids plus every chunk reachable from them.
    Because chunks are self-addressed, the receiver re-derives every id
    from the bytes: a bundle cannot smuggle content under a false identity,
    and [import] additionally checks that the closure is complete, so a
    successfully imported version is immediately verifiable. *)

val export :
  Fb_chunk.Store.t -> roots:Fb_hash.Hash.t list -> (string, string) result
(** Serialize [roots] and their reachable closure.  Fails if any reachable
    chunk is missing from the store. *)

val import :
  Fb_chunk.Store.t -> string ->
  (Fb_hash.Hash.t list * int, string) result
(** Unpack into the store; returns the bundle's roots and how many chunks
    were new to the store.  Fails (storing nothing) on malformed framing,
    undecodable chunks, or an incomplete closure. *)
