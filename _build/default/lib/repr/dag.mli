(** Navigation over the version derivation DAG.

    Versions form a directed acyclic graph through their [bases] links;
    these helpers walk it for history listing, ancestry tests and the
    common-base computation three-way merge needs. *)

val parents :
  Fb_chunk.Store.t -> Fb_hash.Hash.t -> (Fb_hash.Hash.t list, string) result

val history :
  ?limit:int -> Fb_chunk.Store.t -> Fb_hash.Hash.t ->
  (Fnode.t list, string) result
(** Ancestors of (and including) the given version, in decreasing [seq]
    order — the [git log] view.  [limit] caps the count. *)

val ancestors :
  Fb_chunk.Store.t -> Fb_hash.Hash.t -> (Fb_hash.Hash.Set.t, string) result
(** All reachable uids, including the start. *)

val is_ancestor :
  Fb_chunk.Store.t -> ancestor:Fb_hash.Hash.t -> Fb_hash.Hash.t ->
  (bool, string) result

val merge_base :
  Fb_chunk.Store.t -> Fb_hash.Hash.t -> Fb_hash.Hash.t ->
  (Fb_hash.Hash.t option, string) result
(** Deepest common ancestor (max [seq]; ties broken by uid) — the base of a
    three-way merge.  [None] when the histories are unrelated. *)

val fnode_children : Fb_chunk.Chunk.t -> Fb_hash.Hash.t list
(** Chunk-child relation for GC: an FNode chunk references its value roots
    and its bases; POS-Tree index chunks reference their children; leaves
    reference nothing.  Works for every ForkBase chunk kind. *)
