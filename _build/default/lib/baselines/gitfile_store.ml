module Hash = Fb_hash.Hash

let create () =
  let blobs : string Hash.Tbl.t = Hash.Tbl.create 64 in
  let versions : Hash.t list ref = ref [] in
  let bytes = ref 0 in
  let commit rows =
    let encoded = Baseline.encode_rows rows in
    let id = Hash.of_string encoded in
    if not (Hash.Tbl.mem blobs id) then begin
      Hash.Tbl.replace blobs id encoded;
      bytes := !bytes + String.length encoded
    end;
    versions := id :: !versions;
    List.length !versions - 1
  in
  let retrieve v =
    match List.nth_opt (List.rev !versions) v with
    | None -> invalid_arg "gitfile_store: no such version"
    | Some id -> Baseline.decode_rows (Hash.Tbl.find blobs id)
  in
  { Baseline.name = "git file-granule";
    caps =
      { data_model = "unstructured (file), immutable";
        dedup = "whole-file";
        tamper_evidence = true;
        branching = "git-like" };
    commit;
    retrieve;
    storage_bytes = (fun () -> !bytes) }
