(** Common interface of the comparison systems in Table I.

    Each baseline is a versioned dataset store: it accepts successive full
    snapshots of a dataset (as sorted key/row-bytes pairs), persists them
    its own way, and reports how many physical bytes it holds.  The bench
    harness feeds the same workload to every system — including ForkBase —
    and prints the measured storage and retrieval characteristics the
    paper's Table I states qualitatively. *)

type version = int

type caps = {
  data_model : string;       (** Table I "Data Model" column *)
  dedup : string;            (** Table I "Deduplication" column *)
  tamper_evidence : bool;    (** Table I "Tamper Evidence" column *)
  branching : string;        (** Table I "Branching" column *)
}

type t = {
  name : string;
  caps : caps;
  commit : (string * string) list -> version;
      (** Persist the next dataset snapshot (sorted rows); returns its
          version number (0-based). *)
  retrieve : version -> (string * string) list;
      (** Reconstruct a snapshot.  @raise Invalid_argument on bad version. *)
  storage_bytes : unit -> int;
      (** Physical bytes currently held. *)
}

val rows_bytes : (string * string) list -> int
(** Serialized size of a snapshot (the logical data volume). *)

val encode_rows : (string * string) list -> string
val decode_rows : string -> (string * string) list
(** Canonical snapshot serialization shared by the baselines, so storage
    numbers are comparable. @raise Fb_codec.Codec.Decode_error *)
