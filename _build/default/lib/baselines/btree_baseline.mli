(** Ordinary B+-tree with content-addressed pages — the non-SIRI strawman.

    Pages split when they overflow a fixed capacity, so the physical layout
    depends on insertion order and history, not only on content.  Hashing
    its pages shows why page-level deduplication is ineffective for
    conventional indexes (paper §II-A): two logically identical instances
    built differently share few or no pages, where POS-Trees share all. *)

type t

val create : ?leaf_capacity:int -> ?node_capacity:int -> unit -> t
val insert : t -> string -> string -> unit
(** Upsert. *)

val of_bindings : ?leaf_capacity:int -> ?node_capacity:int ->
  (string * string) list -> t
(** Insert one by one, in the given order. *)

val find : t -> string -> string option
val cardinal : t -> int
val bindings : t -> (string * string) list
(** Sorted. *)

val page_hashes : t -> Fb_hash.Hash.Set.t
(** Merkle hash of every page (children hashed into parents). *)

val page_count : t -> int
val total_page_bytes : t -> int
