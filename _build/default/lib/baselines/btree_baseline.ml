module Codec = Fb_codec.Codec
module Hash = Fb_hash.Hash

(* A textbook mutable B+-tree.  Separator keys route lookups: a child is
   followed when the search key is <= its separator (last child catches the
   rest). *)
type node =
  | Leaf of { mutable entries : (string * string) list }
  | Node of { mutable keys : string list; mutable children : node list }

type t = {
  leaf_capacity : int;
  node_capacity : int;
  mutable root : node;
  mutable count : int;
}

let create ?(leaf_capacity = 32) ?(node_capacity = 32) () =
  if leaf_capacity < 2 || node_capacity < 2 then
    invalid_arg "Btree_baseline.create: capacities must be >= 2";
  { leaf_capacity; node_capacity; root = Leaf { entries = [] }; count = 0 }

let rec find_node node k =
  match node with
  | Leaf { entries } -> List.assoc_opt k entries
  | Node { keys; children } ->
    let rec route keys children =
      match keys, children with
      | [], [ c ] -> find_node c k
      | key :: krest, c :: crest ->
        if String.compare k key <= 0 then find_node c k
        else route krest crest
      | _ -> invalid_arg "btree: malformed node"
    in
    route keys children

let find t k = find_node t.root k

(* Insert into a subtree; if the node overflows it splits and returns the
   new right sibling with its separator key. *)
let rec insert_node t node k v =
  match node with
  | Leaf leaf ->
    let rec put = function
      | [] -> ([ (k, v) ], true)
      | (k', _) :: rest when String.equal k' k -> ((k, v) :: rest, false)
      | (k', v') :: rest when String.compare k' k > 0 ->
        ((k, v) :: (k', v') :: rest, true)
      | e :: rest ->
        let rest', added = put rest in
        (e :: rest', added)
    in
    let entries, added = put leaf.entries in
    if added then t.count <- t.count + 1;
    if List.length entries <= t.leaf_capacity then begin
      leaf.entries <- entries;
      None
    end
    else begin
      let n = List.length entries in
      let left = List.filteri (fun i _ -> i < n / 2) entries in
      let right = List.filteri (fun i _ -> i >= n / 2) entries in
      leaf.entries <- left;
      let sep = fst (List.nth left (List.length left - 1)) in
      Some (sep, Leaf { entries = right })
    end
  | Node inner ->
    let rec route i keys children =
      match keys, children with
      | [], [ _ ] -> i
      | key :: krest, _ :: crest ->
        if String.compare k key <= 0 then i else route (i + 1) krest crest
      | _ -> invalid_arg "btree: malformed node"
    in
    let idx = route 0 inner.keys inner.children in
    let child = List.nth inner.children idx in
    (match insert_node t child k v with
     | None -> None
     | Some (sep, right) ->
       (* Splice the new sibling after the split child. *)
       let children =
         List.concat
           (List.mapi
              (fun i c -> if i = idx then [ c; right ] else [ c ])
              inner.children)
       in
       (* keys has one fewer element than children; the separator for the
          split child is inserted at position idx. *)
       let rec ins_at i l =
         if i = 0 then sep :: l
         else
           match l with
           | [] -> [ sep ]
           | x :: rest -> x :: ins_at (i - 1) rest
       in
       let keys = ins_at idx inner.keys in
       if List.length children <= t.node_capacity then begin
         inner.keys <- keys;
         inner.children <- children;
         None
       end
       else begin
         let nc = List.length children in
         let lc = List.filteri (fun i _ -> i < nc / 2) children in
         let rc = List.filteri (fun i _ -> i >= nc / 2) children in
         (* keys: nc-1 separators; left gets first nc/2 - 1, the middle one
            moves up, right gets the rest. *)
         let lk = List.filteri (fun i _ -> i < (nc / 2) - 1) keys in
         let mid = List.nth keys ((nc / 2) - 1) in
         let rk = List.filteri (fun i _ -> i >= nc / 2) keys in
         inner.keys <- lk;
         inner.children <- lc;
         Some (mid, Node { keys = rk; children = rc })
       end)

let insert t k v =
  match insert_node t t.root k v with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Node { keys = [ sep ]; children = [ t.root; right ] }

let of_bindings ?leaf_capacity ?node_capacity bs =
  let t = create ?leaf_capacity ?node_capacity () in
  List.iter (fun (k, v) -> insert t k v) bs;
  t

let cardinal t = t.count

let bindings t =
  let rec go node acc =
    match node with
    | Leaf { entries } -> List.rev_append entries acc
    | Node { children; _ } ->
      List.fold_left (fun acc c -> go c acc) acc children
  in
  List.rev (go t.root [])

(* Merkle-style page hashing: a page's identity covers its content and its
   children's identities, mirroring how a content-addressed page store
   would address it. *)
let rec page_digests node acc =
  match node with
  | Leaf { entries } ->
    let w = Codec.writer () in
    Codec.u8 w 0;
    Codec.list w
      (fun w (k, v) ->
        Codec.bytes w k;
        Codec.bytes w v)
      entries;
    let payload = Codec.contents w in
    let h = Hash.of_string payload in
    ((h, String.length payload) :: acc, h)
  | Node { keys; children } ->
    let acc, child_hashes =
      List.fold_left
        (fun (acc, hs) c ->
          let acc, h = page_digests c acc in
          (acc, h :: hs))
        (acc, []) children
    in
    let w = Codec.writer () in
    Codec.u8 w 1;
    Codec.list w Codec.bytes keys;
    Codec.list w Codec.hash (List.rev child_hashes);
    let payload = Codec.contents w in
    let h = Hash.of_string payload in
    ((h, String.length payload) :: acc, h)

let pages t = fst (page_digests t.root [])

let page_hashes t =
  List.fold_left (fun s (h, _) -> Hash.Set.add h s) Hash.Set.empty (pages t)

let page_count t = List.length (pages t)
let total_page_bytes t = List.fold_left (fun a (_, n) -> a + n) 0 (pages t)
