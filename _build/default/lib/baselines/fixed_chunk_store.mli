(** Fixed-size chunking with content addressing.

    Snapshots are split at fixed 4 KiB offsets and chunks stored by hash.
    The ablation for content-defined chunking: an insertion near the front
    shifts every later boundary, so almost all chunks change even though
    almost no content did. *)

val create : ?chunk_size:int -> unit -> Baseline.t
