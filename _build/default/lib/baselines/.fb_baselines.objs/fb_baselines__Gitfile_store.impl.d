lib/baselines/gitfile_store.ml: Baseline Fb_hash List String
