lib/baselines/fixed_chunk_store.mli: Baseline
