lib/baselines/fixed_chunk_store.ml: Baseline Buffer Fb_hash List Printf String
