lib/baselines/btree_baseline.mli: Fb_hash
