lib/baselines/kv_store.mli: Baseline
