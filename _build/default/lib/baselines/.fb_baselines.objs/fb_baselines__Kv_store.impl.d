lib/baselines/kv_store.ml: Baseline Hashtbl List Map String
