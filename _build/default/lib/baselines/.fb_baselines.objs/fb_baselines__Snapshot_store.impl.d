lib/baselines/snapshot_store.ml: Baseline List String
