lib/baselines/gitfile_store.mli: Baseline
