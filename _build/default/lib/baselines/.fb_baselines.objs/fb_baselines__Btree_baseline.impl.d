lib/baselines/btree_baseline.ml: Fb_codec Fb_hash List String
