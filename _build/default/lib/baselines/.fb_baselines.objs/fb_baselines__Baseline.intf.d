lib/baselines/baseline.mli:
