lib/baselines/snapshot_store.mli: Baseline
