lib/baselines/baseline.ml: Fb_codec String
