lib/baselines/delta_store.ml: Baseline Fb_codec List Map String
