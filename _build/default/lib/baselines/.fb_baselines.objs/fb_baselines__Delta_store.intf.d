lib/baselines/delta_store.mli: Baseline
