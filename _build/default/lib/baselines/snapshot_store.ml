let create () =
  let versions : string list ref = ref [] in
  let bytes = ref 0 in
  let commit rows =
    let encoded = Baseline.encode_rows rows in
    versions := encoded :: !versions;
    bytes := !bytes + String.length encoded;
    List.length !versions - 1
  in
  let retrieve v =
    let all = List.rev !versions in
    match List.nth_opt all v with
    | Some encoded -> Baseline.decode_rows encoded
    | None -> invalid_arg "snapshot_store: no such version"
  in
  { Baseline.name = "snapshot (MusaeusDB-like)";
    caps =
      { data_model = "structured (table), mutable";
        dedup = "none (full copy)";
        tamper_evidence = false;
        branching = "none" };
    commit;
    retrieve;
    storage_bytes = (fun () -> !bytes) }
