module Hash = Fb_hash.Hash

let create ?(chunk_size = 4096) () =
  if chunk_size < 1 then invalid_arg "fixed_chunk_store: chunk_size";
  let chunks : string Hash.Tbl.t = Hash.Tbl.create 1024 in
  let versions : Hash.t list list ref = ref [] in
  let bytes = ref 0 in
  let commit rows =
    let encoded = Baseline.encode_rows rows in
    let n = String.length encoded in
    let ids = ref [] in
    let pos = ref 0 in
    while !pos < n do
      let len = min chunk_size (n - !pos) in
      let piece = String.sub encoded !pos len in
      let id = Hash.of_string piece in
      if not (Hash.Tbl.mem chunks id) then begin
        Hash.Tbl.replace chunks id piece;
        bytes := !bytes + len
      end;
      ids := id :: !ids;
      pos := !pos + len
    done;
    versions := List.rev !ids :: !versions;
    List.length !versions - 1
  in
  let retrieve v =
    match List.nth_opt (List.rev !versions) v with
    | None -> invalid_arg "fixed_chunk_store: no such version"
    | Some ids ->
      let buf = Buffer.create 4096 in
      List.iter (fun id -> Buffer.add_string buf (Hash.Tbl.find chunks id)) ids;
      Baseline.decode_rows (Buffer.contents buf)
  in
  { Baseline.name = Printf.sprintf "fixed %dB chunks" chunk_size;
    caps =
      { data_model = "unstructured, immutable";
        dedup = "fixed-size chunk";
        tamper_evidence = true;
        branching = "git-like" };
    commit;
    retrieve;
    storage_bytes = (fun () -> !bytes) }
