(** Row-level forward-delta versioning (Decibel / OrpheusDB style).

    The first commit stores the full snapshot; each later commit stores the
    row-level difference against its parent (added / removed / modified
    rows).  Table-oriented deduplication: effective for small edits, but no
    cross-version content addressing, no tamper evidence, and retrieval
    cost grows with chain length. *)

val create : unit -> Baseline.t
