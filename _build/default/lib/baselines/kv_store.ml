module Smap = Map.Make (String)

let create () =
  (* cells: (key, version-written) -> value bytes.
     manifests: version -> key -> version-written pointer. *)
  let cells : (string * int, string) Hashtbl.t = Hashtbl.create 1024 in
  let manifests : int Smap.t list ref = ref [] in
  let bytes = ref 0 in
  let manifest_entry_cost key = String.length key + 8 in
  let commit rows =
    let v = List.length !manifests in
    let parent =
      match !manifests with m :: _ -> m | [] -> Smap.empty
    in
    let manifest =
      List.fold_left
        (fun acc (k, value) ->
          let unchanged =
            match Smap.find_opt k parent with
            | Some pv -> (
              match Hashtbl.find_opt cells (k, pv) with
              | Some old -> String.equal old value
              | None -> false)
            | None -> false
          in
          if unchanged then Smap.add k (Smap.find k parent) acc
          else begin
            Hashtbl.replace cells (k, v) value;
            bytes := !bytes + String.length value + manifest_entry_cost k;
            Smap.add k v acc
          end)
        Smap.empty rows
    in
    (* Every version pays for its manifest entries (pointer table). *)
    bytes :=
      !bytes + Smap.fold (fun k _ acc -> acc + manifest_entry_cost k) manifest 0;
    manifests := manifest :: !manifests;
    v
  in
  let retrieve v =
    let all = List.rev !manifests in
    match List.nth_opt all v with
    | None -> invalid_arg "kv_store: no such version"
    | Some manifest ->
      Smap.fold
        (fun k ptr acc -> (k, Hashtbl.find cells (k, ptr)) :: acc)
        manifest []
      |> List.rev
  in
  { Baseline.name = "multi-version KV (RStore-like)";
    caps =
      { data_model = "unstructured, mutable";
        dedup = "key-value (changed rows only)";
        tamper_evidence = false;
        branching = "ad-hoc" };
    commit;
    retrieve;
    storage_bytes = (fun () -> !bytes) }
