module Codec = Fb_codec.Codec

type version = int

type caps = {
  data_model : string;
  dedup : string;
  tamper_evidence : bool;
  branching : string;
}

type t = {
  name : string;
  caps : caps;
  commit : (string * string) list -> version;
  retrieve : version -> (string * string) list;
  storage_bytes : unit -> int;
}

let encode_rows rows =
  Codec.to_string
    (fun w rows ->
      Codec.list w
        (fun w (k, v) ->
          Codec.bytes w k;
          Codec.bytes w v)
        rows)
    rows

let decode_rows s =
  Codec.of_string_exn
    (fun r ->
      Codec.read_list r (fun r ->
          let k = Codec.read_bytes r in
          let v = Codec.read_bytes r in
          (k, v)))
    s

let rows_bytes rows = String.length (encode_rows rows)
