(** Multi-version key-value store (RStore-style).

    Every changed row value is stored again in full under (key, version);
    a per-version manifest lists which stored cell each key resolves to.
    Row-granularity versioning with no content deduplication (two keys with
    equal values store the bytes twice) and no tamper evidence. *)

val create : unit -> Baseline.t
