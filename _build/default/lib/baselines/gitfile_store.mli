(** File-granule content-addressed versioning — "the original Git design
    handles data at the file granule" (paper §I).

    Each snapshot is serialized to one blob and stored under its SHA-256:
    identical snapshots deduplicate perfectly, but changing one word stores
    the whole file again.  The comparator the Fig. 4 experiment is aimed
    at. *)

val create : unit -> Baseline.t
