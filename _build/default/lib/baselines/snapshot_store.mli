(** Full-copy snapshot versioning (MusaeusDB-style).

    Every commit stores the complete serialized snapshot; no sharing of any
    kind.  The floor every dedup scheme is measured against. *)

val create : unit -> Baseline.t
