module Codec = Fb_codec.Codec
module Smap = Map.Make (String)

type delta = {
  added : (string * string) list;     (* also covers modified: last wins *)
  removed : string list;
}

let encode_delta d =
  Codec.to_string
    (fun w d ->
      Codec.list w
        (fun w (k, v) ->
          Codec.bytes w k;
          Codec.bytes w v)
        d.added;
      Codec.list w Codec.bytes d.removed)
    d

let to_map rows =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty rows

let compute_delta ~parent ~current =
  let pm = to_map parent and cm = to_map current in
  let added =
    Smap.fold
      (fun k v acc ->
        match Smap.find_opt k pm with
        | Some pv when String.equal pv v -> acc
        | _ -> (k, v) :: acc)
      cm []
  in
  let removed =
    Smap.fold
      (fun k _ acc -> if Smap.mem k cm then acc else k :: acc)
      pm []
  in
  { added = List.rev added; removed = List.rev removed }

let apply_delta rows d =
  let m = to_map rows in
  let m = List.fold_left (fun m k -> Smap.remove k m) m d.removed in
  let m = List.fold_left (fun m (k, v) -> Smap.add k v m) m d.added in
  Smap.bindings m

let create () =
  (* Version 0 is a full snapshot; deltas follow.  We keep decoded deltas
     in memory but account storage by their serialized size. *)
  let base : (string * string) list ref = ref [] in
  let deltas : delta list ref = ref [] in
  let nversions = ref 0 in
  let bytes = ref 0 in
  let commit rows =
    (if !nversions = 0 then begin
       base := rows;
       bytes := String.length (Baseline.encode_rows rows)
     end
     else begin
       let parent =
         List.fold_left apply_delta !base (List.rev !deltas)
       in
       let d = compute_delta ~parent ~current:rows in
       deltas := d :: !deltas;
       bytes := !bytes + String.length (encode_delta d)
     end);
    incr nversions;
    !nversions - 1
  in
  let retrieve v =
    if v < 0 || v >= !nversions then
      invalid_arg "delta_store: no such version";
    let ds = List.filteri (fun i _ -> i < v) (List.rev !deltas) in
    List.fold_left apply_delta !base ds
  in
  { Baseline.name = "row delta (OrpheusDB-like)";
    caps =
      { data_model = "structured (table), mutable";
        dedup = "table oriented (row deltas)";
        tamper_evidence = false;
        branching = "ad-hoc" };
    commit;
    retrieve;
    storage_bytes = (fun () -> !bytes) }
