(** Sharded, replicated chunk store — the single-process simulation of
    ForkBase's distributed deployment (the paper describes ForkBase as "a
    distributed storage system"; see DESIGN.md substitutions).

    Chunks are placed on a consistent-hash ring of member stores and
    written to [replicas] consecutive distinct members.  Reads try the
    owners in order, re-hash what they serve (a remote node is just another
    untrusted provider), fall back to the other replicas on miss or
    corruption, and repair the failed owner when a good copy is found.
    Members can be marked down to simulate failures; writes performed while
    a member is down land on the next owners, so data stays available as
    long as any replica of each chunk survives.

    Content addressing makes all of this trivially consistent: replicas
    can never disagree about a chunk's value, only about its presence. *)

type t

val create :
  ?replicas:int ->
  ?virtual_nodes:int ->
  members:(string * Store.t) list ->
  unit ->
  t
(** A ring over named member stores.  [replicas] (default 2, capped at the
    member count) copies per chunk; [virtual_nodes] (default 64) ring
    points per member for placement smoothness.
    @raise Invalid_argument on an empty member list or non-positive
    parameters. *)

val store : t -> Store.t
(** The aggregate viewed as an ordinary chunk store. *)

val owners : t -> Fb_hash.Hash.t -> string list
(** The member names responsible for a chunk, preference order. *)

val set_down : t -> string -> bool -> unit
(** Mark a member unavailable/available.
    @raise Invalid_argument for an unknown member. *)

type health = {
  member : string;
  down : bool;
  chunks : int;
  bytes : int;
}

val health : t -> health list

type repair_stats = {
  mutable fallback_reads : int;  (** reads served by a non-primary replica *)
  mutable repaired : int;        (** chunks re-replicated during reads *)
  mutable rejected : int;        (** corrupt copies refused and replaced *)
}

val repair_stats : t -> repair_stats

val rebalance : t -> int
(** Re-replicate every chunk to its current owner set (run after membership
    or availability changes); returns the number of copies written. *)
