(** Integrity-checking store wrapper — tamper {e rejection} at read time.

    Wraps any backend so that every [get]/[get_raw] re-hashes the served
    bytes and refuses (returns [None] and counts a violation) anything that
    does not match the requested identity.  This is the paranoid-client
    mode: instead of detecting tampering during an explicit [verify] pass,
    a malicious provider simply cannot get forged bytes past a read. *)

type violations = {
  mutable rejected_reads : int;
      (** reads whose bytes did not hash to the requested id *)
  mutable last_offender : Fb_hash.Hash.t option;
}

val wrap : ?once:bool -> Store.t -> Store.t * violations
(** [wrap inner] — same contents, verified reads.  Writes pass through
    (they are self-addressed already).  [mem] also answers through the
    checked read path: a chunk whose stored bytes fail verification is
    reported absent (and counted as a violation), never vouched for.

    [once] (default [false]) verifies each chunk only the first time its
    bytes are served and trusts repeats — the cheap clean path when the
    threat is media damage rather than a malicious provider that could
    swap bytes between reads.  The default re-hashes every read. *)
