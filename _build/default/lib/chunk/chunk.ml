type kind =
  | Index
  | Leaf_map
  | Leaf_set
  | Leaf_list
  | Leaf_blob
  | Seq_index
  | Fnode

let kind_to_string = function
  | Index -> "index"
  | Leaf_map -> "leaf-map"
  | Leaf_set -> "leaf-set"
  | Leaf_list -> "leaf-list"
  | Leaf_blob -> "leaf-blob"
  | Seq_index -> "seq-index"
  | Fnode -> "fnode"

let kind_tag = function
  | Index -> 0
  | Leaf_map -> 1
  | Leaf_set -> 2
  | Leaf_list -> 3
  | Leaf_blob -> 4
  | Seq_index -> 5
  | Fnode -> 6

let kind_of_tag = function
  | 0 -> Some Index
  | 1 -> Some Leaf_map
  | 2 -> Some Leaf_set
  | 3 -> Some Leaf_list
  | 4 -> Some Leaf_blob
  | 5 -> Some Seq_index
  | 6 -> Some Fnode
  | _ -> None

let equal_kind a b = kind_tag a = kind_tag b
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type t = { kind : kind; payload : string }

let v kind payload = { kind; payload }

(* 'F' 'B' magic, format version 1, kind tag, payload.  The header is part
   of the hashed bytes: a chunk reinterpreted under another kind gets a
   different identity. *)
let magic0 = 'F'
let magic1 = 'B'
let format_version = 1
let header_size = 4

let encode c =
  let n = String.length c.payload in
  let b = Bytes.create (header_size + n) in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set b 2 (Char.chr format_version);
  Bytes.set b 3 (Char.chr (kind_tag c.kind));
  Bytes.blit_string c.payload 0 b header_size n;
  Bytes.unsafe_to_string b

let decode s =
  if String.length s < header_size then Error "chunk: too short"
  else if s.[0] <> magic0 || s.[1] <> magic1 then Error "chunk: bad magic"
  else if Char.code s.[2] <> format_version then
    Error (Printf.sprintf "chunk: unsupported format version %d" (Char.code s.[2]))
  else
    match kind_of_tag (Char.code s.[3]) with
    | None -> Error (Printf.sprintf "chunk: unknown kind tag %d" (Char.code s.[3]))
    | Some kind ->
      Ok { kind; payload = String.sub s header_size (String.length s - header_size) }

let hash c = Fb_hash.Hash.of_string (encode c)
let encoded_size c = header_size + String.length c.payload

let pp fmt c =
  Format.fprintf fmt "%a[%a, %d bytes]" pp_kind c.kind Fb_hash.Hash.pp (hash c)
    (String.length c.payload)
