(** Mark-and-sweep garbage collection over a chunk store.

    Chunks are immutable and shared, so deletion is only safe from the
    roots: everything reachable from a live version uid stays.  The child
    relation is supplied by the caller (the chunk layer cannot parse
    POS-Tree or FNode payloads without depending on those libraries). *)

type result = {
  live_chunks : int;
  swept_chunks : int;
  swept_bytes : int;
}

val reachable :
  Store.t ->
  children:(Chunk.t -> Fb_hash.Hash.t list) ->
  roots:Fb_hash.Hash.t list ->
  Fb_hash.Hash.Set.t
(** Transitive closure of [roots] under [children].  Missing chunks are
    skipped (they are surfaced by verification, not by GC).  Reads go
    through the store's non-counting [peek], so marking does not inflate
    the [gets] statistic. *)

val sweep :
  Store.t ->
  children:(Chunk.t -> Fb_hash.Hash.t list) ->
  roots:Fb_hash.Hash.t list ->
  result
(** Delete every chunk not reachable from [roots]. *)
