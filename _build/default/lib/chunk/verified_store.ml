module Hash = Fb_hash.Hash

type violations = {
  mutable rejected_reads : int;
  mutable last_offender : Hash.t option;
}

let wrap (inner : Store.t) =
  let v = { rejected_reads = 0; last_offender = None } in
  let checked id =
    match inner.Store.get_raw id with
    | None -> None
    | Some raw ->
      if Hash.equal (Hash.of_string raw) id then Some raw
      else begin
        v.rejected_reads <- v.rejected_reads + 1;
        v.last_offender <- Some id;
        None
      end
  in
  let get id =
    match checked id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  ( { inner with
      Store.name = "verified:" ^ inner.Store.name;
      get;
      get_raw = checked },
    v )
