lib/chunk/file_store.mli: Store
