lib/chunk/store.mli: Chunk Fb_hash Format
