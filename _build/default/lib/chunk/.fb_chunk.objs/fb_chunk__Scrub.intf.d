lib/chunk/scrub.mli: Chunk Fb_hash Format Store
