lib/chunk/store.ml: Chunk Fb_hash Format
