lib/chunk/sharded_store.ml: Array Chunk Fb_hash Hashtbl List Printf Store String
