lib/chunk/scrub.ml: Chunk Fb_hash Format List Result Store String
