lib/chunk/mem_store.ml: Chunk Fb_hash Store String
