lib/chunk/pack.mli: Fb_hash Store
