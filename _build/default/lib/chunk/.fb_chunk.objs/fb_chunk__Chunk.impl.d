lib/chunk/chunk.ml: Bytes Char Fb_hash Format Printf String
