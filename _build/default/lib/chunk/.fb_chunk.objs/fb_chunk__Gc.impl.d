lib/chunk/gc.ml: Fb_hash List Store String
