lib/chunk/gc.ml: Chunk Fb_hash List Store String
