lib/chunk/cache_store.mli: Store
