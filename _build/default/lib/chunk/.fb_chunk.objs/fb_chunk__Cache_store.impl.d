lib/chunk/cache_store.ml: Chunk Fb_hash Printf Store
