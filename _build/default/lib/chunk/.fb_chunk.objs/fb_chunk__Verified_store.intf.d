lib/chunk/verified_store.mli: Fb_hash Store
