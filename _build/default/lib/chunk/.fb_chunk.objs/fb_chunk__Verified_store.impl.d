lib/chunk/verified_store.ml: Chunk Fb_hash Store
