lib/chunk/chunk.mli: Fb_hash Format
