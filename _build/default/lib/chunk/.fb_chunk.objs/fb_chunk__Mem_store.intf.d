lib/chunk/mem_store.mli: Fb_hash Store
