lib/chunk/pack.ml: Array Bytes Chunk Fb_hash Fun Int64 List Printexc Printf Store String Sys
