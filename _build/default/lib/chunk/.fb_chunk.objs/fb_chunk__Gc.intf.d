lib/chunk/gc.mli: Chunk Fb_hash Store
