lib/chunk/file_store.ml: Array Chunk Fb_hash Filename Fun Store String Sys Unix
