lib/chunk/faulty_store.mli: Store
