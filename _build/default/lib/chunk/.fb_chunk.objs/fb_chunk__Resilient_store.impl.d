lib/chunk/resilient_store.ml: Chunk Fb_hash Option Store Unix
