lib/chunk/faulty_store.ml: Bytes Char Chunk Fb_hash Printf Store String
