lib/chunk/sharded_store.mli: Fb_hash Store
