lib/chunk/resilient_store.mli: Store
