(** Self-healing wrapper: retries, replica fallback, read repair.

    [wrap primary] returns a store that absorbs {!Store.Transient}
    failures with bounded exponential-backoff retries, and — when a
    [replica] is supplied — serves reads the primary cannot, re-putting
    the healthy bytes into the primary so the damage does not survive the
    read (self-healing reads).  Writes go to the primary first and are
    mirrored to the replica best-effort.

    Read path, in order:

    + read the primary, retrying on {!Store.Transient}; bytes failing the
      hash check count as a retryable failure too (a flipped bit on the
      way out heals on re-read, latent media damage does not);
    + still damaged or absent → read the replica (verified against the
      chunk id unconditionally);
    + replica had healthy bytes for a {e damaged} primary chunk →
      delete-then-put them back into the primary ([delete] first, because
      a content-addressed [put] skips names that already exist).

    The clean path does one extra hash per read at most ([verify_reads]),
    and none when the primary is already a {!Verified_store} (pass
    [~verify_reads:false]).

    After [max_retries] extra attempts a transient failure is re-raised
    for the caller (Forkbase surfaces it as a typed [Errors.Transient]).

    [iter], [delete] and [stats] address the primary only. *)

type stats = {
  mutable retries : int;  (** extra attempts made after a transient fault *)
  mutable absorbed : int;  (** ops that succeeded after at least one retry *)
  mutable gave_up : int;  (** ops re-raised after exhausting [max_retries] *)
  mutable fallback_reads : int;  (** reads served by the replica *)
  mutable heals : int;  (** healthy chunks re-put into the primary *)
  mutable corrupt_rejected : int;  (** primary reads failing the hash check *)
  mutable unrecovered : int;  (** damaged reads no replica could satisfy *)
}

val wrap :
  ?replica:Store.t ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?verify_reads:bool ->
  Store.t ->
  Store.t * stats
(** Defaults: no replica, [max_retries = 4], [backoff_s = 0.] (no
    sleeping — tests stay fast; production might pass [0.01]),
    [verify_reads = true]. *)
