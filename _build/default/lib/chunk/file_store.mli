(** Directory-backed chunk store.

    Chunks live as individual files under [root/ab/<hex>] where [ab] is the
    first hex byte of the identity — the same fan-out layout Git uses for
    loose objects.  Durable across processes; reopening an existing root
    recomputes the physical statistics by scanning.  Writes are atomic
    (write to a temp file, then rename), so a crash can leave behind only
    uncommitted [*.tmp] files — which {!create} deletes on open (crash
    recovery): the interrupted put never published an identity, so nothing
    readable is lost. *)

val create : ?fsync:bool -> root:string -> unit -> Store.t
(** Open (or initialize) a store rooted at directory [root].  Leftover
    [*.tmp] crash artifacts are removed.  [fsync] (default [false]) forces
    every chunk write to stable storage before the publishing rename —
    slower, but a power loss cannot leave a committed name with torn
    contents. *)
