(** Directory-backed chunk store.

    Chunks live as individual files under [root/ab/<hex>] where [ab] is the
    first hex byte of the identity — the same fan-out layout Git uses for
    loose objects.  Durable across processes; reopening an existing root
    recomputes the physical statistics by scanning.  Writes are atomic
    (write to a temp file, then rename). *)

val create : root:string -> Store.t
(** Open (or initialize) a store rooted at directory [root]. *)
