(** In-memory chunk store backend.

    The default backend for experiments: deterministic, fast, and it exposes
    a {!tamper} hook so the tamper-evidence experiments (paper §III-C) can
    simulate a malicious storage provider that alters bytes in place while
    keeping the advertised identity. *)

type handle

val create : ?name:string -> unit -> Store.t
(** Fresh empty store. *)

val create_with_handle : ?name:string -> unit -> Store.t * handle

val tamper :
  handle -> Fb_hash.Hash.t -> f:(string -> string) -> bool
(** [tamper h id ~f] replaces the stored encoded bytes of chunk [id] with
    [f bytes], {e without} changing the identity it is served under — the
    malicious-provider move.  Returns [false] if the chunk is absent. *)

val chunk_ids : handle -> Fb_hash.Hash.t list
(** All identities currently stored (test/bench introspection). *)
