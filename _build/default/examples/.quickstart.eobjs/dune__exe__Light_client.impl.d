examples/light_client.ml: Bytes Char Fb_chunk Fb_core Fb_types Fb_workload List Printf Result String
