examples/blockchain_state.mli:
