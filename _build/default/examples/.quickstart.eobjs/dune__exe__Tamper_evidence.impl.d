examples/tamper_evidence.ml: Bytes Char Fb_chunk Fb_core Fb_hash Fb_repr Fb_types List Option Printf
