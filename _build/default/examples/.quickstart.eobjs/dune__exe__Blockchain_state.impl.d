examples/blockchain_state.ml: Fb_chunk Fb_core Fb_postree Fb_repr Fb_types List Option Printf String
