examples/collaborative_analytics.mli:
