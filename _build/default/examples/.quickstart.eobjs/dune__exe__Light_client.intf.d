examples/light_client.mli:
