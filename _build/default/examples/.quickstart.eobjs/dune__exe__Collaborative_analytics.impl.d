examples/collaborative_analytics.ml: Fb_chunk Fb_core Fb_repr Fb_types Format List Printf String
