examples/quickstart.ml: Fb_chunk Fb_core Fb_repr Fb_types Format Printf
