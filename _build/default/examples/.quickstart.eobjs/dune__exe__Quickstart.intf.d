examples/quickstart.mli:
