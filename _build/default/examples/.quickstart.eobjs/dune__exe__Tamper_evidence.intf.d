examples/tamper_evidence.mli:
