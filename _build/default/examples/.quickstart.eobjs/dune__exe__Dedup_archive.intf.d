examples/dedup_archive.mli:
