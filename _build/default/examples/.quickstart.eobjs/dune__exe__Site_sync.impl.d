examples/site_sync.ml: Bytes Fb_chunk Fb_core Fb_repr Fb_types List Printf String
