examples/dedup_archive.ml: Fb_chunk Fb_core Fb_repr Fb_types Fb_workload Int64 List Printf String
