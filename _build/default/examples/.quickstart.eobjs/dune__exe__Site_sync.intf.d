examples/site_sync.mli:
