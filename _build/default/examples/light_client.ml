(* Light-client row audits with Merkle entry proofs.

   An auditor trusts exactly one thing: the version uid published by the
   data owner (a 32-byte hash).  The storage provider is untrusted.  To
   audit individual rows of a huge table, the auditor asks the provider for
   an entry proof — the FNode bytes plus the O(log N) POS-Tree chunk path —
   and verifies it locally.  No store, no full download, no trust.

     dune exec examples/light_client.exe *)

module FB = Fb_core.Forkbase
module Table = Fb_types.Table
module Primitive = Fb_types.Primitive
module Csvgen = Fb_workload.Csvgen

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  (* The provider hosts a sizable dataset. *)
  let provider = FB.create (Fb_chunk.Mem_store.create ()) in
  let csv =
    Csvgen.generate
      { Csvgen.rows = 50_000; string_columns = 2; int_columns = 2; seed = 77L }
  in
  ignore (ok (FB.import_csv provider ~key:"payroll" csv));
  let published_uid = ok (FB.head provider ~key:"payroll") in
  let physical =
    (FB.stats provider).FB.store.Fb_chunk.Store.physical_bytes
  in
  Printf.printf "provider hosts 50000 rows, %.1f MB physical\n"
    (float_of_int physical /. 1024.0 /. 1024.0);
  Printf.printf "owner publishes uid: %s...\n\n"
    (String.sub (FB.version_string published_uid) 0 16);

  (* The auditor requests proofs for a few rows (over the wire: the encoded
     proof string).  Each proof is a few KB against a multi-MB dataset. *)
  List.iter
    (fun row_id ->
      let wire =
        FB.encode_entry_proof
          (ok (FB.prove_entry provider ~key:"payroll" ~entry_key:row_id))
      in
      let proof = ok (FB.decode_entry_proof wire) in
      match
        FB.verify_entry_proof ~uid:published_uid ~key:"payroll"
          ~entry_key:row_id proof
      with
      | Ok (Some row_bytes) ->
        let row = Result.get_ok (Table.decode_row row_bytes) in
        Printf.printf "row %-10s proven present (%d-byte proof): %s\n" row_id
          (String.length wire)
          (String.concat ", " (List.map Primitive.to_string row))
      | Ok None ->
        Printf.printf "row %-10s proven ABSENT (%d-byte proof)\n" row_id
          (String.length wire)
      | Error e -> failwith (Fb_core.Errors.to_string e))
    [ "r00000000"; "r00025000"; "r00049999"; "r99999999" ];

  (* A lying provider: forged row bytes cannot be authenticated. *)
  Printf.printf "\na dishonest provider forges a proof...\n";
  let honest = ok (FB.prove_entry provider ~key:"payroll" ~entry_key:"r00025000") in
  let wire = FB.encode_entry_proof honest in
  let forged_wire =
    let b = Bytes.of_string wire in
    let i = Bytes.length b - 5 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
    Bytes.to_string b
  in
  (match FB.decode_entry_proof forged_wire with
   | Error e ->
     Printf.printf "  rejected at decode: %s\n" (Fb_core.Errors.to_string e)
   | Ok forged -> (
     match
       FB.verify_entry_proof ~uid:published_uid ~key:"payroll"
         ~entry_key:"r00025000" forged
     with
     | Error e ->
       Printf.printf "  rejected at verification: %s\n"
         (Fb_core.Errors.to_string e)
     | Ok _ -> failwith "forged proof accepted!"));
  Printf.printf
    "\nthe auditor never stored a byte and never trusted the provider.\n"
