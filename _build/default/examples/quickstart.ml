(* Quickstart: the ForkBase workflow in one page.

     dune exec examples/quickstart.exe

   Creates an in-memory instance, imports a CSV dataset, branches it,
   diverges the branch, runs a differential query, merges, and verifies the
   result against the (hypothetically untrusted) store. *)

module FB = Fb_core.Forkbase
module Value = Fb_types.Value

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  (* 1. An instance over an in-memory chunk store.  Swap in
     [Fb_chunk.File_store.create ~root:"..."] for durability. *)
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in

  (* 2. Put a CSV dataset; every Put returns a tamper-evident version. *)
  let v1 =
    ok
      (FB.import_csv fb ~key:"fruit" ~message:"initial load"
         "id,name,qty\n1,apple,10\n2,banana,20\n3,cherry,30\n")
  in
  Printf.printf "v1 = %s\n" (FB.version_string v1);

  (* 3. Branch it: O(1), no data copied; both branches share every chunk. *)
  ignore (ok (FB.fork fb ~key:"fruit" ~new_branch:"experiment"));

  (* 4. Change the branch independently. *)
  ignore
    (ok
       (FB.import_csv fb ~key:"fruit" ~branch:"experiment"
          ~message:"restock bananas"
          "id,name,qty\n1,apple,10\n2,banana,99\n3,cherry,30\n4,durian,5\n"));

  (* 5. Differential query between the branches (fast: equal sub-trees are
     pruned by Merkle id without being read). *)
  let diff = ok (FB.diff fb ~key:"fruit" ~branch1:"master" ~branch2:"experiment") in
  Printf.printf "\nmaster vs experiment: %s\n%s"
    (Fb_core.Diffview.summary diff)
    (Format.asprintf "%a" Fb_core.Diffview.render diff);

  (* 6. Merge the branch back (three-way, sub-tree reusing). *)
  let merged = ok (FB.merge fb ~key:"fruit" ~into:"master" ~from_branch:"experiment") in
  Printf.printf "\nmerged -> %s\n" (FB.version_string merged);
  print_string (ok (FB.export_csv fb ~key:"fruit"));

  (* 7. Verify: recompute every hash and compare with the version id. *)
  let report = ok (FB.verify fb merged) in
  Printf.printf
    "\nverified: %d versions, %d value chunks re-hashed, all match\n"
    report.Fb_repr.Verify.versions_checked
    report.Fb_repr.Verify.value_chunks;

  (* 8. Storage: both branches and all versions share chunks. *)
  let stats = FB.stats fb in
  Printf.printf "store: %d chunks, %d bytes physical (%.2fx dedup)\n"
    stats.FB.store.Fb_chunk.Store.physical_chunks
    stats.FB.store.Fb_chunk.Store.physical_bytes
    (Fb_chunk.Store.dedup_ratio stats.FB.store)
