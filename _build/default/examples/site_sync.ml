(* Site-to-site dataset exchange over an untrusted channel.

   Two collaborating sites never share a database: they pass self-contained
   bundles (a version plus its full history closure).  Because every chunk
   is self-addressed and the importer re-derives all hashes before storing
   anything, the channel — email, object storage, a USB stick — needs no
   integrity guarantees of its own.

     dune exec examples/site_sync.exe *)

module FB = Fb_core.Forkbase
module Dataset = Fb_core.Dataset
module Value = Fb_types.Value
module Primitive = Fb_types.Primitive
module Schema = Fb_types.Schema

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let col name ty = { Schema.name; ty }

let () =
  (* Site A: a lab collecting measurements. *)
  let site_a = FB.create (Fb_chunk.Mem_store.create ()) in
  let schema =
    Schema.v_exn
      [ col "sample" Schema.T_string; col "reading" Schema.T_float ]
  in
  ignore (ok (Dataset.create site_a ~key:"readings" schema));
  ignore
    (ok
       (Dataset.insert_rows site_a ~key:"readings"
          [ [ Primitive.String "s-001"; Primitive.Float 1.25 ];
            [ Primitive.String "s-002"; Primitive.Float 0.75 ];
            [ Primitive.String "s-003"; Primitive.Float 2.5 ] ]));
  Printf.printf "site A: %d rows over %d versions\n"
    (ok (Dataset.row_count site_a ~key:"readings"))
    (List.length (ok (FB.log site_a ~key:"readings")));

  (* A -> B: bundle the branch; ship it however. *)
  let shipment = ok (FB.export_bundle site_a ~key:"readings") in
  Printf.printf "shipping %d bytes to site B...\n" (String.length shipment);

  (* Site B imports, getting content AND provenance, then verifies. *)
  let site_b = FB.create (Fb_chunk.Mem_store.create ()) in
  let root = ok (FB.import_bundle site_b ~key:"readings" shipment) in
  let report = ok (FB.verify ~check_history_values:true site_b root) in
  Printf.printf
    "site B imported %s: %d versions of history verified, %d chunks\n"
    (String.sub (FB.version_string root) 0 12)
    report.Fb_repr.Verify.versions_checked report.Fb_repr.Verify.value_chunks;

  (* Site B extends the data and ships it back. *)
  ignore
    (ok
       (Dataset.insert_rows site_b ~key:"readings"
          [ [ Primitive.String "s-004"; Primitive.Float 3.125 ] ]));
  let return_shipment = ok (FB.export_bundle site_b ~key:"readings") in

  (* Site A fast-forwards; histories interleave cleanly. *)
  ignore (ok (FB.import_bundle site_a ~key:"readings" return_shipment));
  Printf.printf "site A after round-trip: %d rows, history:\n"
    (ok (Dataset.row_count site_a ~key:"readings"));
  List.iter
    (fun (f : Fb_repr.Fnode.t) ->
      Printf.printf "  seq=%d %s\n" f.Fb_repr.Fnode.seq f.Fb_repr.Fnode.message)
    (ok (FB.log site_a ~key:"readings"));

  (* A hostile channel: bytes corrupted in flight are rejected outright —
     nothing enters the store. *)
  let corrupted = Bytes.of_string return_shipment in
  Bytes.set corrupted (Bytes.length corrupted / 2) '\xff';
  let site_c = FB.create (Fb_chunk.Mem_store.create ()) in
  (match FB.import_bundle site_c ~key:"readings" (Bytes.to_string corrupted) with
   | Error e ->
     Printf.printf "\ncorrupted shipment rejected: %s\n"
       (Fb_core.Errors.to_string e)
   | Ok _ ->
     (* If framing happened to survive the flip, verification still must
        fail before the data is trusted. *)
     failwith "corrupted bundle accepted");
  assert ((FB.stats site_c).FB.store.Fb_chunk.Store.physical_chunks = 0);
  Printf.printf "site C stored nothing from the bad shipment.\n"
