(* Tamper evidence against a malicious storage provider (paper §II-D,
   §III-C).

   Threat model: the chunk store is untrusted; the client keeps only the
   latest uid of each branch it committed.  The provider may alter, replace
   or truncate any stored bytes — but every chunk is addressed by its
   SHA-256 and every version id is the Merkle root of the FNode, so any
   modification is detected by recomputing hashes on the spot.

     dune exec examples/tamper_evidence.exe *)

module FB = Fb_core.Forkbase
module Value = Fb_types.Value
module Hash = Fb_hash.Hash

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  (* The client talks to storage it does not trust; Mem_store's tamper
     handle plays the malicious provider. *)
  let store, provider = Fb_chunk.Mem_store.create_with_handle () in
  let fb = FB.create store in

  Printf.printf "client commits three versions of a ledger...\n";
  let _v1 =
    ok
      (FB.import_csv fb ~key:"ledger" ~message:"opening balances"
         "account,balance\nalice,1000\nbob,500\ncarol,750\n")
  in
  let _v2 =
    ok
      (FB.import_csv fb ~key:"ledger" ~message:"alice pays bob 100"
         "account,balance\nalice,900\nbob,600\ncarol,750\n")
  in
  let v3 =
    ok
      (FB.import_csv fb ~key:"ledger" ~message:"carol pays alice 50"
         "account,balance\nalice,950\nbob,600\ncarol,700\n")
  in
  Printf.printf "client records only the tip: %s\n\n" (FB.version_string v3);

  (* Honest storage passes the check. *)
  let report = ok (FB.verify ~check_history_values:true fb v3) in
  Printf.printf "honest provider: verified %d versions, %d chunks\n\n"
    report.Fb_repr.Verify.versions_checked report.Fb_repr.Verify.value_chunks;

  (* Attack 1: the provider edits a balance inside a current data chunk. *)
  Printf.printf "attack 1: provider rewrites bytes of a live data chunk\n";
  let ledger = ok (FB.get fb ~key:"ledger") in
  let rows_root =
    match ledger with
    | Value.Table t -> Option.get (Fb_types.Table.rows_root t)
    | _ -> failwith "expected table"
  in
  let original = ref "" in
  ignore
    (Fb_chunk.Mem_store.tamper provider rows_root ~f:(fun bytes ->
         original := bytes;
         (* Forge a balance in place: same length, same structure,
            different content (rows are binary-encoded, so flip a bit in
            the value region at the chunk's tail). *)
         let b = Bytes.of_string bytes in
         let i = Bytes.length b - 2 in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
         Bytes.to_string b));
  (match FB.verify fb v3 with
   | Error e -> Printf.printf "  detected: %s\n\n" (Fb_core.Errors.to_string e)
   | Ok _ -> failwith "tampering went undetected!");
  ignore (Fb_chunk.Mem_store.tamper provider rows_root ~f:(fun _ -> !original));

  (* Attack 2: the provider rewrites history — swaps an ancestor FNode for
     a forged one.  The bases hash chain breaks. *)
  Printf.printf "attack 2: provider replaces an ancestor version (history rewrite)\n";
  let history = ok (FB.log fb ~key:"ledger") in
  let ancestor = Fb_repr.Fnode.uid (List.nth history 2) in
  let saved = ref "" in
  ignore
    (Fb_chunk.Mem_store.tamper provider ancestor ~f:(fun bytes ->
         saved := bytes;
         bytes ^ "\x00"));
  (match FB.verify fb v3 with
   | Error e -> Printf.printf "  detected: %s\n\n" (Fb_core.Errors.to_string e)
   | Ok _ -> failwith "history rewrite went undetected!");
  ignore (Fb_chunk.Mem_store.tamper provider ancestor ~f:(fun _ -> !saved));

  (* Attack 3: the provider deletes a historical chunk (data withholding). *)
  Printf.printf "attack 3: provider withholds a historical chunk\n";
  ignore (store.Fb_chunk.Store.delete ancestor);
  (match FB.verify fb v3 with
   | Error e -> Printf.printf "  detected: %s\n\n" (Fb_core.Errors.to_string e)
   | Ok _ -> failwith "withholding went undetected!");

  Printf.printf
    "all attacks detected from the tip uid alone — the storage needs no \
     trust.\n"
