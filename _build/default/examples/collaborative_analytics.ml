(* Collaborative analytics with branch-based access control — the Fig. 1
   scenario: two administrators share a dataset; analysts work on isolated
   branches they own; results flow back through reviewed merges.

     dune exec examples/collaborative_analytics.exe *)

module FB = Fb_core.Forkbase
module Acl = Fb_core.Acl
module Value = Fb_types.Value
module Primitive = Fb_types.Primitive

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let expect_denied what = function
  | Error (Fb_core.Errors.Permission_denied _) ->
    Printf.printf "  denied (as intended): %s\n" what
  | Ok _ -> failwith ("should have been denied: " ^ what)
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  (* Admin A owns everything; admin B administers the sales dataset.
     Analysts carol and dave get read on master and admin on their own
     branches — the branch-based access control of the demo. *)
  let acl = Acl.create () in
  Acl.grant acl ~user:"adminA" ~key:"*" ~branch:"*" Acl.Admin;
  Acl.grant acl ~user:"adminB" ~key:"sales" ~branch:"*" Acl.Admin;
  List.iter
    (fun analyst ->
      Acl.grant acl ~user:analyst ~key:"sales" ~branch:"master" Acl.Read;
      Acl.grant acl ~user:analyst ~key:"sales" ~branch:(analyst ^ "-dev")
        Acl.Admin)
    [ "carol"; "dave" ];
  let fb = FB.create ~acl (Fb_chunk.Mem_store.create ()) in

  (* Admin A loads the shared dataset. *)
  Printf.printf "adminA loads sales/master\n";
  ignore
    (ok
       (FB.import_csv ~user:"adminA" ~message:"Q3 raw numbers" fb ~key:"sales"
          "region,revenue,units\nnorth,1200,40\nsouth,800,25\neast,1500,55\nwest,900,31\n"));

  (* Analysts cannot touch master... *)
  expect_denied "carol writes master"
    (FB.put ~user:"carol" fb ~key:"sales" (Value.string "nope"));

  (* ...but fork their own branches and work in isolation. *)
  Printf.printf "carol and dave fork private branches\n";
  ignore (ok (FB.fork ~user:"carol" fb ~key:"sales" ~new_branch:"carol-dev"));
  ignore (ok (FB.fork ~user:"dave" fb ~key:"sales" ~new_branch:"dave-dev"));

  (* Carol cleans the north region; Dave adds a missing region.  Disjoint
     rows: the three-way merge will take both without conflict. *)
  ignore
    (ok
       (FB.import_csv ~user:"carol" ~branch:"carol-dev"
          ~message:"fix north units" fb ~key:"sales"
          "region,revenue,units\nnorth,1200,42\nsouth,800,25\neast,1500,55\nwest,900,31\n"));
  ignore
    (ok
       (FB.import_csv ~user:"dave" ~branch:"dave-dev"
          ~message:"add central region" fb ~key:"sales"
          "region,revenue,units\nnorth,1200,40\nsouth,800,25\neast,1500,55\nwest,900,31\ncentral,650,18\n"));

  (* Each analyst's diff against master is visible to the admins. *)
  List.iter
    (fun branch ->
      let d =
        ok (FB.diff ~user:"adminB" fb ~key:"sales" ~branch1:"master" ~branch2:branch)
      in
      Printf.printf "\nmaster vs %s: %s\n%s" branch
        (Fb_core.Diffview.summary d)
        (Format.asprintf "%a" Fb_core.Diffview.render d))
    [ "carol-dev"; "dave-dev" ];

  (* Admin B reviews and merges both. *)
  Printf.printf "\nadminB merges carol-dev, then dave-dev\n";
  ignore
    (ok (FB.merge ~user:"adminB" fb ~key:"sales" ~into:"master"
           ~from_branch:"carol-dev"));
  ignore
    (ok (FB.merge ~user:"adminB" fb ~key:"sales" ~into:"master"
           ~from_branch:"dave-dev"));
  print_string (ok (FB.export_csv ~user:"adminB" fb ~key:"sales"));

  (* The provenance of the result is the version DAG. *)
  Printf.printf "\nhistory of sales/master:\n";
  List.iter
    (fun (f : Fb_repr.Fnode.t) ->
      Printf.printf "  %s %-8s %s\n"
        (String.sub (FB.version_string (Fb_repr.Fnode.uid f)) 0 12)
        f.Fb_repr.Fnode.author f.Fb_repr.Fnode.message)
    (ok (FB.log ~user:"adminB" fb ~key:"sales"));

  (* Column statistics over the merged table (the Stat API). *)
  Printf.printf "\ncolumn stats:\n";
  List.iter
    (fun (s : Fb_types.Table.col_stat) ->
      Printf.printf "  %-8s values=%d distinct=%d min=%s max=%s\n"
        s.Fb_types.Table.column s.Fb_types.Table.values
        s.Fb_types.Table.distinct
        (match s.Fb_types.Table.min with
         | Some p -> Primitive.to_string p
         | None -> "-")
        (match s.Fb_types.Table.max with
         | Some p -> Primitive.to_string p
         | None -> "-"))
    (ok (FB.table_stat ~user:"adminB" fb ~key:"sales"));

  (* Mallory, who has no grants, sees nothing at all. *)
  expect_denied "mallory reads sales"
    (FB.get ~user:"mallory" fb ~key:"sales");
  assert (FB.list_keys ~user:"mallory" fb = []);
  Printf.printf "\nmallory sees no keys; collaboration stayed contained.\n"
