(* Archiving massive version counts cheaply — the storage-efficiency story
   of the demo (paper §III-A): an evolving dataset committed many times
   costs little more than one copy, because POS-Tree pages shared between
   versions are stored once.

     dune exec examples/dedup_archive.exe *)

module FB = Fb_core.Forkbase
module Store = Fb_chunk.Store
module Value = Fb_types.Value
module Csvgen = Fb_workload.Csvgen
module Edits = Fb_workload.Edits

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in
  let versions = 50 in

  (* A ~200 KB dataset that receives a few point edits per day. *)
  let doc = ref (Csvgen.generate_of_size ~target_bytes:200_000 ()) in
  let logical = ref 0 in
  Printf.printf "archiving %d daily versions of a %.0f KB dataset...\n\n"
    versions
    (float_of_int (String.length !doc) /. 1024.0);
  Printf.printf "%-8s %-14s %-16s %-10s\n" "version" "logical KB"
    "physical KB" "ratio";
  for day = 1 to versions do
    ignore
      (ok
         (FB.import_csv fb ~key:"daily"
            ~message:(Printf.sprintf "day %d" day)
            !doc));
    logical := !logical + String.length !doc;
    if day mod 10 = 0 || day = 1 then begin
      let s = FB.stats fb in
      Printf.printf "%-8d %-14.1f %-16.1f %.1fx\n" day
        (float_of_int !logical /. 1024.0)
        (float_of_int s.FB.store.Store.physical_bytes /. 1024.0)
        (float_of_int !logical
         /. float_of_int s.FB.store.Store.physical_bytes)
    end;
    (* Tomorrow's edition: a handful of cell edits. *)
    doc :=
      Fb_types.Csv.render
        (Edits.point_edit_cells ~seed:(Int64.of_int day) ~cells:3
           (Fb_types.Csv.parse_exn !doc))
  done;

  (* Every historical version stays retrievable by uid. *)
  let log = ok (FB.log fb ~key:"daily") in
  Printf.printf "\n%d versions retained; spot-checking day 1...\n"
    (List.length log);
  let day1 = List.nth log (List.length log - 1) in
  (match ok (FB.get_at fb (Fb_repr.Fnode.uid day1)) with
   | Value.Table t ->
     Printf.printf "day-1 table has %d rows, as archived\n"
       (Fb_types.Table.cardinal t)
   | _ -> failwith "expected a table");

  (* Retire history older than the head: after dropping the branch and
     re-pointing at the tip only, GC reclaims unshared chunks. *)
  let tip = ok (FB.head fb ~key:"daily") in
  ok (FB.delete_branch fb ~key:"daily" ~branch:"master");
  ignore (ok (FB.fork_at fb ~key:"daily" ~new_branch:"master" tip));
  (* The tip still references its whole ancestry through the FNode chain,
     so only chunks reachable from no head vanish — here, nothing, which is
     itself the point: history is cheap to keep. *)
  let swept = FB.gc fb in
  let s = FB.stats fb in
  Printf.printf
    "\nafter GC: %d chunks swept; %d versions still verifiable from the tip\n"
    swept.Fb_chunk.Gc.swept_chunks s.FB.versions;
  let report = ok (FB.verify fb tip) in
  Printf.printf "verify(tip): %d versions re-hashed, all match\n"
    report.Fb_repr.Verify.versions_checked
