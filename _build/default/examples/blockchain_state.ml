(* Blockchain state storage — the original ForkBase motivation (the VLDB'18
   paper targets "blockchain and forkable applications").

   A toy chain keeps its account state in ForkBase: every block commits a
   new version of the state map, the version uid is the block's state root,
   chain forks are branches, and a reorg is switching which branch wins.
   Light clients audit balances against the state root with Merkle entry
   proofs.

     dune exec examples/blockchain_state.exe *)

module FB = Fb_core.Forkbase
module Value = Fb_types.Value
module Pmap = Fb_postree.Pmap

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let key = "state"

(* Apply a list of transfers to the current state of a branch and commit
   the new state as one block. *)
let apply_block fb ~branch ~miner transfers =
  let state =
    match FB.get fb ~branch ~key with
    | Ok v -> Option.get (Value.to_map v)
    | Error _ -> Pmap.empty (FB.store fb)
  in
  let balance who =
    match Pmap.find_value state who with
    | Some v -> int_of_string v
    | None -> 0
  in
  let edits =
    List.concat_map
      (fun (src, dst, amount) ->
        if balance src < amount then
          failwith (Printf.sprintf "%s cannot afford %d" src amount)
        else
          [ Pmap.Put (Pmap.binding src (string_of_int (balance src - amount)));
            Pmap.Put (Pmap.binding dst (string_of_int (balance dst + amount)))
          ])
      transfers
  in
  (* Deduplicate sequential edits to the same account within the block. *)
  let state' =
    List.fold_left
      (fun s e -> Pmap.update s [ e ])
      state edits
  in
  ok
    (FB.put fb ~key ~branch ~user:miner
       ~message:(Printf.sprintf "block with %d txs" (List.length transfers))
       (Value.Map state'))

let () =
  let fb = FB.create (Fb_chunk.Mem_store.create ()) in

  (* Genesis allocates coins. *)
  let genesis =
    ok
      (FB.put fb ~key ~user:"genesis" ~message:"genesis"
         (Value.map_of_bindings (FB.store fb)
            [ ("alice", "1000"); ("bob", "500"); ("carol", "250") ]))
  in
  Printf.printf "genesis state root: %s...\n"
    (String.sub (FB.version_string genesis) 0 16);

  (* Two miners extend the chain; block 2 is contested (a fork). *)
  let _b1 = apply_block fb ~branch:"master" ~miner:"miner-1" [ ("alice", "bob", 100) ] in
  ignore (ok (FB.fork fb ~key ~new_branch:"fork-B"));
  let b2a = apply_block fb ~branch:"master" ~miner:"miner-1" [ ("bob", "carol", 50) ] in
  let b2b =
    apply_block fb ~branch:"fork-B" ~miner:"miner-2"
      [ ("alice", "carol", 200); ("carol", "bob", 25) ]
  in
  Printf.printf "contested block 2: chain A %s... vs chain B %s...\n"
    (String.sub (FB.version_string b2a) 0 12)
    (String.sub (FB.version_string b2b) 0 12);

  (* Chain B grows longer: the network reorgs onto it.  In ForkBase that is
     just moving which branch is canonical — no state copying, and chain
     A's history stays intact and auditable. *)
  let _b3b = apply_block fb ~branch:"fork-B" ~miner:"miner-2" [ ("bob", "alice", 10) ] in
  ok (FB.rename_branch fb ~key ~from_branch:"master" ~to_branch:"stale-A");
  ok (FB.rename_branch fb ~key ~from_branch:"fork-B" ~to_branch:"master");
  Printf.printf "reorg: fork-B is now canonical; stale chain kept for audit\n\n";

  (* Balances on the canonical chain. *)
  let state = Option.get (Value.to_map (ok (FB.get fb ~key))) in
  List.iter
    (fun who ->
      Printf.printf "  %-6s %4s coins\n" who
        (Option.value (Pmap.find_value state who) ~default:"0"))
    [ "alice"; "bob"; "carol" ];

  (* The full history of the canonical chain is a hash chain of blocks. *)
  Printf.printf "\ncanonical chain (newest first):\n";
  List.iter
    (fun (f : Fb_repr.Fnode.t) ->
      Printf.printf "  %s %-8s %s\n"
        (String.sub (FB.version_string (Fb_repr.Fnode.uid f)) 0 12)
        f.Fb_repr.Fnode.author f.Fb_repr.Fnode.message)
    (ok (FB.log fb ~key));

  (* A light client audits carol's balance against the published state
     root only. *)
  let root = ok (FB.head fb ~key) in
  let proof = ok (FB.prove_entry fb ~key ~entry_key:"carol") in
  (match FB.verify_entry_proof ~uid:root ~key ~entry_key:"carol" proof with
   | Ok (Some balance) ->
     Printf.printf
       "\nlight client: carol = %s coins, proven against state root %s...\n"
       balance
       (String.sub (FB.version_string root) 0 12)
   | _ -> failwith "proof failed");

  (* Tamper evidence: verify the whole canonical chain from the root. *)
  let report = ok (FB.verify ~check_history_values:true fb root) in
  Printf.printf
    "full chain verified: %d blocks, %d state chunks re-hashed — any forged \
     balance anywhere in history would break the chain.\n"
    report.Fb_repr.Verify.versions_checked report.Fb_repr.Verify.value_chunks;

  (* Storage: four blocks x full state, but POS-Tree pages shared across
     blocks mean near-zero growth per block. *)
  let stats = FB.stats fb in
  Printf.printf "storage: %d versions in %d chunks (%.1f KB total)\n"
    stats.FB.versions stats.FB.store.Fb_chunk.Store.physical_chunks
    (float_of_int stats.FB.store.Fb_chunk.Store.physical_bytes /. 1024.0)
