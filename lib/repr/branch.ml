module Codec = Fb_codec.Codec
module Hash = Fb_hash.Hash

let default_branch = "master"

(* Heads are the one piece of mutable state in the system, and with the
   network service executing read-only verbs concurrently (Fb_net's
   striped reader-writer locking) the table is read from many threads
   while a writer on a different key mutates it.  Every operation
   therefore runs under a private mutex: the table is individually
   atomic, while multi-operation consistency (e.g. diff reading two
   heads of one key) is the caller's striped lock's job.  The critical
   sections are tiny (hashtable probes), so uncontended cost is a few
   nanoseconds. *)
type t = {
  lock : Mutex.t;
  (* key -> branch name -> head uid *)
  tbl : (string, (string, Hash.t) Hashtbl.t) Hashtbl.t;
}

let create () : t = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

let head t ~key ~branch =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some branches -> Hashtbl.find_opt branches branch)

let set_head_locked t ~key ~branch uid =
  let branches =
    match Hashtbl.find_opt t.tbl key with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 4 in
      Hashtbl.replace t.tbl key b;
      b
  in
  Hashtbl.replace branches branch uid

let set_head t ~key ~branch uid =
  Mutex.protect t.lock (fun () -> set_head_locked t ~key ~branch uid)

let branches t ~key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> []
      | Some b ->
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun name uid acc -> (name, uid) :: acc) b []))

let keys t =
  Mutex.protect t.lock (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []))

let exists t ~key ~branch = head t ~key ~branch <> None

let remove t ~key ~branch =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> false
      | Some b ->
        let existed = Hashtbl.mem b branch in
        Hashtbl.remove b branch;
        if Hashtbl.length b = 0 then Hashtbl.remove t.tbl key;
        existed)

let rename t ~key ~from_branch ~to_branch =
  Mutex.protect t.lock (fun () ->
      let head_of branch =
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some b -> Hashtbl.find_opt b branch
      in
      match head_of from_branch with
      | None ->
        Error (Printf.sprintf "no branch %S for key %S" from_branch key)
      | Some uid ->
        if head_of to_branch <> None then
          Error
            (Printf.sprintf "branch %S already exists for key %S" to_branch key)
        else begin
          (match Hashtbl.find_opt t.tbl key with
           | None -> ()
           | Some b -> Hashtbl.remove b from_branch);
          set_head_locked t ~key ~branch:to_branch uid;
          Ok ()
        end)

let serialize t =
  let w = Codec.writer () in
  let ks = keys t in
  Codec.varint w (List.length ks);
  List.iter
    (fun key ->
      Codec.bytes w key;
      let bs = branches t ~key in
      Codec.varint w (List.length bs);
      List.iter
        (fun (name, uid) ->
          Codec.bytes w name;
          Codec.hash w uid)
        bs)
    ks;
  Codec.contents w

let deserialize s =
  Codec.of_string
    (fun r ->
      let t = create () in
      let nkeys = Codec.read_varint r in
      for _ = 1 to nkeys do
        let key = Codec.read_bytes r in
        let nbranches = Codec.read_varint r in
        for _ = 1 to nbranches do
          let branch = Codec.read_bytes r in
          let uid = Codec.read_hash r in
          set_head t ~key ~branch uid
        done
      done;
      t)
    s
