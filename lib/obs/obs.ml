(* In-process observability substrate: a metrics registry (counters,
   callback gauges, log-bucketed latency histograms), Dapper-style trace
   spans in a bounded ring buffer, and a leveled structured event log.

   Design constraints (see DESIGN.md "Observability"):
   - near-zero cost when disabled: every record path starts with one
     boolean load and returns immediately;
   - constant memory: histograms are fixed bucket arrays, traces and
     events fixed rings — no allocation proportional to traffic is
     retained;
   - pull-model exposition: gauges are callbacks read at dump time, so
     existing mutable stats records (Store.stats, cache stats, retry
     stats) fold into the registry without double bookkeeping;
   - thread-safe tracing: the network server records spans from many
     connection threads, so span parenthood is tracked per thread and
     the ring is mutex-guarded.  Counters/histograms stay lock-free
     (increments may race; a lost tick is acceptable, a crash is not). *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "FB_OBS" with
     | Some ("0" | "false" | "off") -> false
     | _ -> true)

let set_enabled b = enabled_flag := b
let is_enabled () = !enabled_flag

let now () = Unix.gettimeofday ()

(* ---------------- histograms ---------------- *)

(* Log-bucketed: bucket [i] covers [min_value * r^i, min_value * r^(i+1)).
   With r = 1.1, reporting the geometric midpoint of a bucket is within
   sqrt(r) - 1 < 5% of any value inside it.  Range: 1ns .. ~3.3h of
   seconds-valued observations in 400 buckets; out-of-range values clamp
   to the edge buckets. *)
let bucket_ratio = 1.1
let min_value = 1e-9
let n_buckets = 400
let inv_log_r = 1.0 /. log bucket_ratio

type histogram = {
  h_name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let bucket_of v =
  if v <= min_value then 0
  else
    let i = int_of_float (log (v /. min_value) *. inv_log_r) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_midpoint i = min_value *. (bucket_ratio ** (float_of_int i +. 0.5))

(* ---------------- registry ---------------- *)

type counter = { c_name : string; mutable value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, unit -> float) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; value = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = if !enabled_flag then c.value <- c.value + 1
let add c n = if !enabled_flag then c.value <- c.value + n
let counter_value c = c.value

(* Registration is idempotent by name with last-writer-wins: re-wrapping
   a fresh store (e.g. a Persistent root closed and reopened in-process)
   under a name used by a dead handle simply takes the name over — the
   registry never holds two callbacks for one name. *)
let gauge name read = Hashtbl.replace gauges name read

let unregister_gauge name = Hashtbl.remove gauges name

(* Drop every gauge whose name starts with [prefix] — how a closing
   Persistent root retires the gauges of its log engine instead of
   leaving callbacks that read a dead handle's last state forever. *)
let unregister_gauges_prefix prefix =
  let plen = String.length prefix in
  let doomed =
    Hashtbl.fold
      (fun name _ acc ->
        if String.length name >= plen && String.sub name 0 plen = prefix then
          name :: acc
        else acc)
      gauges []
  in
  List.iter (Hashtbl.remove gauges) doomed

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; buckets = Array.make n_buckets 0; count = 0;
        sum = 0.0; min_seen = infinity; max_seen = neg_infinity }
    in
    Hashtbl.replace histograms name h;
    h

let observe h v =
  if !enabled_flag then begin
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_seen then h.min_seen <- v;
    if v > h.max_seen then h.max_seen <- v
  end

let time h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      observe h (now () -. t0);
      v
    | exception e ->
      observe h (now () -. t0);
      raise e
  end

let hist_count h = h.count
let hist_sum h = h.sum
let hist_max h = if h.count = 0 then 0.0 else h.max_seen
let hist_min h = if h.count = 0 then 0.0 else h.min_seen

(* Quantile estimate: walk buckets to the one holding the q-th sample and
   report its geometric midpoint (clamped to the observed extremes, which
   are tracked exactly). *)
let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go i seen =
      if i >= n_buckets then h.max_seen
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then bucket_midpoint i else go (i + 1) seen
    in
    let v = go 0 0 in
    if v < h.min_seen then h.min_seen
    else if v > h.max_seen then h.max_seen
    else v
  end

let reset_histogram h =
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum <- 0.0;
  h.min_seen <- infinity;
  h.max_seen <- neg_infinity

(* ---------------- histogram snapshots ---------------- *)

(* An immutable sparse copy of a histogram, subtractable: two snapshots
   taken an interval apart yield the distribution of that interval alone
   — how `forkbase top` turns lifetime histograms into live p50/p99.
   Snapshots travel as (bucket index, count) pairs, so they also
   reconstruct from a METRICS-JSON body on the far side of the wire. *)

type snapshot = {
  snap_count : int;
  snap_sum : float;
  snap_buckets : (int * int) list;  (* ascending bucket index, count > 0 *)
}

let snapshot h =
  let b = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then b := (i, h.buckets.(i)) :: !b
  done;
  { snap_count = h.count; snap_sum = h.sum; snap_buckets = !b }

let snapshot_of_buckets ~count ~sum buckets =
  let buckets =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (i, c) -> i >= 0 && i < n_buckets && c > 0) buckets)
  in
  { snap_count = count; snap_sum = sum; snap_buckets = buckets }

let empty_snapshot = { snap_count = 0; snap_sum = 0.0; snap_buckets = [] }

(* [after - before], clamped at zero per bucket: a histogram only grows,
   so negative deltas mean the far side was reset — treat as fresh. *)
let snapshot_sub after before =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (i, c) -> Hashtbl.replace tbl i c) after.snap_buckets;
  List.iter
    (fun (i, c) ->
      let cur = Option.value (Hashtbl.find_opt tbl i) ~default:0 in
      let d = cur - c in
      if d > 0 then Hashtbl.replace tbl i d else Hashtbl.remove tbl i)
    before.snap_buckets;
  let buckets =
    List.sort compare (Hashtbl.fold (fun i c acc -> (i, c) :: acc) tbl [])
  in
  { snap_count = max 0 (after.snap_count - before.snap_count);
    snap_sum = Float.max 0.0 (after.snap_sum -. before.snap_sum);
    snap_buckets = buckets }

let snapshot_total s =
  List.fold_left (fun acc (_, c) -> acc + c) 0 s.snap_buckets

let snapshot_quantile s q =
  let total = snapshot_total s in
  if total = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let rec go seen = function
      | [] -> 0.0
      | (i, c) :: rest ->
        let seen = seen + c in
        if seen >= rank then bucket_midpoint i else go seen rest
    in
    go 0 s.snap_buckets
  end

(* ---------------- trace ids ---------------- *)

(* 128-bit trace ids as 32 lowercase hex chars, from a splitmix64 stream
   seeded with wall clock + pid: unique enough to join client and server
   spans across processes, dependency-free (fb_obs stays a leaf). *)
let trace_prng =
  ref
    Int64.(
      logxor
        (of_float (Unix.gettimeofday () *. 1e6))
        (shift_left (of_int (Unix.getpid ())) 40))

let next64 () =
  let open Int64 in
  trace_prng := add !trace_prng 0x9e3779b97f4a7c15L;
  let z = !trace_prng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let gen_trace_id () = Printf.sprintf "%016Lx%016Lx" (next64 ()) (next64 ())

(* ---------------- trace spans ---------------- *)

type span = {
  id : int;
  parent : int;  (* id of the enclosing span, or -1 for a root span *)
  trace : string;  (* 32-hex trace id shared by every span of one request *)
  tid : int;  (* recording thread, for Chrome trace lanes *)
  name : string;
  start : float;     (* Unix time, seconds *)
  duration : float;  (* seconds *)
  attrs : (string * string) list;
}

type context = { trace_id : string; span_id : int }

let default_span_capacity = 512

type ring = {
  mutable slots : span option array;
  mutable pos : int;       (* next write index *)
  mutable recorded : int;  (* spans ever recorded (wraparound evidence) *)
}

let ring =
  { slots = Array.make default_span_capacity None; pos = 0; recorded = 0 }

(* Guards the ring, the per-thread span stacks and the trace PRNG.  A
   leaf lock: nothing is called while holding it. *)
let trace_lock = Mutex.create ()

(* Per-thread stack of open spans as (span id, trace id); entries are
   removed when a thread's stack empties so dead connection threads do
   not accumulate. *)
let span_stacks : (int, (int * string) list) Hashtbl.t = Hashtbl.create 16
let next_span_id = ref 0

let self_tid () = Thread.id (Thread.self ())

let set_span_capacity n =
  if n < 1 then invalid_arg "Obs.set_span_capacity";
  Mutex.protect trace_lock (fun () ->
      ring.slots <- Array.make n None;
      ring.pos <- 0;
      ring.recorded <- 0)

let span_capacity () = Array.length ring.slots

let record_span_locked s =
  ring.slots.(ring.pos) <- Some s;
  ring.pos <- (ring.pos + 1) mod Array.length ring.slots;
  ring.recorded <- ring.recorded + 1

let spans_recorded () = ring.recorded

(* Completed spans, oldest first.  Children complete before their parent,
   so a parent id may refer to a span later in (or already evicted from)
   the list; consumers key on [id]/[parent], not position. *)
let spans () =
  Mutex.protect trace_lock (fun () ->
      let cap = Array.length ring.slots in
      let out = ref [] in
      for k = 0 to cap - 1 do
        match ring.slots.((ring.pos + k) mod cap) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      List.rev !out)

let current_context () =
  if not !enabled_flag then None
  else
    let tid = self_tid () in
    Mutex.protect trace_lock (fun () ->
        match Hashtbl.find_opt span_stacks tid with
        | Some ((span_id, trace_id) :: _) -> Some { trace_id; span_id }
        | Some [] | None -> None)

let with_span ?(attrs = []) ?ctx name f =
  if not !enabled_flag then f ()
  else begin
    let tid = self_tid () in
    let id, parent, trace =
      Mutex.protect trace_lock (fun () ->
          let id = !next_span_id in
          next_span_id := id + 1;
          let stack =
            Option.value (Hashtbl.find_opt span_stacks tid) ~default:[]
          in
          let parent, trace =
            match ctx with
            | Some c ->
              (* Remote parent: this span roots the local tree but joins
                 the caller's trace (its parent id names a span recorded
                 on the far side). *)
              (c.span_id, c.trace_id)
            | None -> (
              match stack with
              | (pid, tr) :: _ -> (pid, tr)
              | [] -> (-1, gen_trace_id ()))
          in
          Hashtbl.replace span_stacks tid ((id, trace) :: stack);
          (id, parent, trace))
    in
    let start = now () in
    let finish () =
      let duration = now () -. start in
      Mutex.protect trace_lock (fun () ->
          (match Hashtbl.find_opt span_stacks tid with
           | Some (_ :: rest) ->
             if rest = [] then Hashtbl.remove span_stacks tid
             else Hashtbl.replace span_stacks tid rest
           | Some [] | None -> ());
          record_span_locked
            { id; parent; trace; tid; name; start; duration; attrs })
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---------------- structured event log ---------------- *)

(* Leveled JSON-lines events.  With a sink installed (explicitly or via
   FB_LOG=stderr|<path>) every event is rendered and written through; with
   no sink, events land in a bounded in-memory ring — free black-box
   recording that a post-mortem (or /tracez) can read back. *)

type level = Debug | Info | Warn | Error

let level_value = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_time : float;
  ev_level : level;
  ev_msg : string;
  ev_fields : (string * string) list;
  ev_trace : string option;  (* trace id of the span active at emit time *)
}

let log_threshold =
  ref
    (match Sys.getenv_opt "FB_LOG_LEVEL" with
     | Some s -> Option.value (level_of_string s) ~default:Info
     | None -> Info)

let set_log_level l = log_threshold := l

type sink_state =
  | No_sink
  | Fn of (string -> unit)
  | Pending_file of string  (* opened lazily on the first event *)

let sink =
  ref
    (match Sys.getenv_opt "FB_LOG" with
     | None | Some "" -> No_sink
     | Some "stderr" -> Fn prerr_endline
     | Some path -> Pending_file path)

let set_log_sink f =
  sink := (match f with None -> No_sink | Some f -> Fn f)

let default_event_capacity = 256
let event_ring : event Queue.t = Queue.create ()
let event_capacity = ref default_event_capacity
let event_lock = Mutex.create ()

let set_event_capacity n =
  if n < 1 then invalid_arg "Obs.set_event_capacity";
  Mutex.protect event_lock (fun () ->
      event_capacity := n;
      while Queue.length event_ring > n do
        ignore (Queue.pop event_ring)
      done)

let events () =
  Mutex.protect event_lock (fun () ->
      List.rev (Queue.fold (fun acc e -> e :: acc) [] event_ring))

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"msg\":\"%s\"" e.ev_time
       (level_name e.ev_level) (json_escape e.ev_msg));
  (match e.ev_trace with
   | Some t -> Buffer.add_string buf (Printf.sprintf ",\"trace\":\"%s\"" (json_escape t))
   | None -> ());
  (match e.ev_fields with
   | [] -> ()
   | fields ->
     Buffer.add_string buf ",\"fields\":{";
     Buffer.add_string buf
       (String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             fields));
     Buffer.add_string buf "}");
  Buffer.add_string buf "}";
  Buffer.contents buf

let push_event e =
  Mutex.protect event_lock (fun () ->
      Queue.push e event_ring;
      while Queue.length event_ring > !event_capacity do
        ignore (Queue.pop event_ring)
      done)

let log_event ?(fields = []) level msg =
  if !enabled_flag && level_value level >= level_value !log_threshold then begin
    let ev_trace = Option.map (fun c -> c.trace_id) (current_context ()) in
    let e =
      { ev_time = now (); ev_level = level; ev_msg = msg;
        ev_fields = fields; ev_trace }
    in
    match !sink with
    | No_sink -> push_event e
    | Fn f -> (try f (event_to_json e) with _ -> ())
    | Pending_file path -> (
      match
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
      with
      | oc ->
        let f line =
          output_string oc line;
          output_char oc '\n';
          flush oc
        in
        sink := Fn f;
        (try f (event_to_json e) with _ -> ())
      | exception Sys_error _ ->
        (* Unwritable FB_LOG path: fall back to the ring, once. *)
        sink := No_sink;
        push_event e)
  end

(* ---------------- reset ---------------- *)

(* Zeroes counters, histograms, the span ring and the event ring; gauge
   registrations are kept (they are read-only callbacks). *)
let reset () =
  Hashtbl.iter (fun _ c -> c.value <- 0) counters;
  Hashtbl.iter (fun _ h -> reset_histogram h) histograms;
  Mutex.protect trace_lock (fun () ->
      Array.fill ring.slots 0 (Array.length ring.slots) None;
      ring.pos <- 0;
      ring.recorded <- 0;
      Hashtbl.reset span_stacks);
  Mutex.protect event_lock (fun () -> Queue.clear event_ring)

(* ---------------- exposition ---------------- *)

let sorted_items tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let read_gauge g = try g () with _ -> nan

(* The text exposition spells special values the way the Prometheus
   grammar does; "%g" would print "nan"/"inf", which scrapers reject. *)
let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let dump_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, c) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n c.value))
    (sorted_items counters);
  List.iter
    (fun (name, g) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float (read_gauge g))))
    (sorted_items gauges);
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun q ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q
               (prom_float (quantile h q))))
        [ 0.5; 0.9; 0.99 ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prom_float h.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.count);
      Buffer.add_string buf
        (Printf.sprintf "%s_max %s\n" n (prom_float (hist_max h))))
    (sorted_items histograms);
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let span_json s =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"trace\":\"%s\",\"tid\":%d,\"name\":\"%s\",\
     \"start\":%s,\"duration_us\":%s%s}"
    s.id s.parent (json_escape s.trace) s.tid (json_escape s.name)
    (json_float s.start)
    (json_float (s.duration *. 1e6))
    (match s.attrs with
     | [] -> ""
     | attrs ->
       ",\"attrs\":{"
       ^ String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              attrs)
       ^ "}")

let dump_json ?(include_spans = false) ?(include_buckets = false) () =
  let buf = Buffer.create 1024 in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  Buffer.add_string buf "{\"counters\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, c) ->
            Printf.sprintf "\"%s\":%d" (json_escape name) c.value)
          (sorted_items counters)));
  Buffer.add_string buf ",\"gauges\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, g) ->
            Printf.sprintf "\"%s\":%s" (json_escape name)
              (json_float (read_gauge g)))
          (sorted_items gauges)));
  Buffer.add_string buf ",\"histograms\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, h) ->
            let buckets =
              if not include_buckets then ""
              else
                let s = snapshot h in
                Printf.sprintf ",\"buckets\":[%s]"
                  (String.concat ","
                     (List.map
                        (fun (i, c) -> Printf.sprintf "[%d,%d]" i c)
                        s.snap_buckets))
            in
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s%s}"
              (json_escape name) h.count (json_float h.sum)
              (json_float (hist_min h))
              (json_float (hist_max h))
              (json_float (quantile h 0.5))
              (json_float (quantile h 0.9))
              (json_float (quantile h 0.99))
              buckets)
          (sorted_items histograms)));
  if include_spans then begin
    Buffer.add_string buf ",\"spans\":[";
    Buffer.add_string buf (String.concat "," (List.map span_json (spans ())));
    Buffer.add_string buf "]"
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Chrome trace_event JSON (chrome://tracing, Perfetto): complete events
   ("ph":"X") with microsecond timestamps, one lane per recording thread.
   Span/trace linkage rides in [args] so a flamegraph row can be joined
   back to the wire trace id. *)
let dump_chrome_trace () =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun s ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"fb\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"trace\":\"%s\",\
            \"span\":%d,\"parent\":%d%s}}"
           (json_escape s.name) (s.start *. 1e6) (s.duration *. 1e6) pid s.tid
           (json_escape s.trace) s.id s.parent
           (String.concat ""
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf ",\"%s\":\"%s\"" (json_escape k)
                     (json_escape v))
                 s.attrs))))
    (spans ());
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ---------------- span-tree rendering ---------------- *)

let render_tree ppf all roots =
  let children = List.filter (fun (s : span) -> s.parent >= 0) all in
  let rec render indent (s : span) =
    Format.fprintf ppf "%s%s %.1f us%s@."
      (String.make (2 * indent) ' ')
      s.name (s.duration *. 1e6)
      (match s.attrs with
       | [] -> ""
       | attrs ->
         " ["
         ^ String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
         ^ "]");
    List.iter
      (fun (c : span) -> if c.parent = s.id then render (indent + 1) c)
      children
  in
  List.iter (render 0) roots

(* Render the span ring as an indented tree (roots at margin), newest
   trace data last — the human view of "where did that request go". *)
let pp_spans ppf () =
  let all = spans () in
  render_tree ppf all
    (List.filter
       (fun (s : span) ->
         (* A span whose parent has been evicted from the ring renders as
            a root: the trace is bounded, not lossless. *)
         s.parent < 0
         || not (List.exists (fun (p : span) -> p.id = s.parent) all))
       all)

(* One trace's tree, as text: the spans in the ring sharing [trace_id],
   rooted at those whose parent is remote or already evicted.  This is
   what the slow-request log and /tracez emit per offending request. *)
let render_trace trace_id =
  let all =
    List.filter (fun (s : span) -> String.equal s.trace trace_id) (spans ())
  in
  let roots =
    List.filter
      (fun (s : span) ->
        s.parent < 0
        || not (List.exists (fun (p : span) -> p.id = s.parent) all))
      all
  in
  Format.asprintf "%a" (fun ppf () -> render_tree ppf all roots) ()
