(* In-process observability substrate: a metrics registry (counters,
   callback gauges, log-bucketed latency histograms) plus Dapper-style
   trace spans in a bounded ring buffer.

   Design constraints (see DESIGN.md "Observability"):
   - near-zero cost when disabled: every record path starts with one
     boolean load and returns immediately;
   - constant memory: histograms are fixed bucket arrays, traces a fixed
     ring — no allocation proportional to traffic is retained;
   - pull-model exposition: gauges are callbacks read at dump time, so
     existing mutable stats records (Store.stats, cache stats, retry
     stats) fold into the registry without double bookkeeping. *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "FB_OBS" with
     | Some ("0" | "false" | "off") -> false
     | _ -> true)

let set_enabled b = enabled_flag := b
let is_enabled () = !enabled_flag

let now () = Unix.gettimeofday ()

(* ---------------- histograms ---------------- *)

(* Log-bucketed: bucket [i] covers [min_value * r^i, min_value * r^(i+1)).
   With r = 1.1, reporting the geometric midpoint of a bucket is within
   sqrt(r) - 1 < 5% of any value inside it.  Range: 1ns .. ~3.3h of
   seconds-valued observations in 400 buckets; out-of-range values clamp
   to the edge buckets. *)
let bucket_ratio = 1.1
let min_value = 1e-9
let n_buckets = 400
let inv_log_r = 1.0 /. log bucket_ratio

type histogram = {
  h_name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let bucket_of v =
  if v <= min_value then 0
  else
    let i = int_of_float (log (v /. min_value) *. inv_log_r) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_midpoint i = min_value *. (bucket_ratio ** (float_of_int i +. 0.5))

(* ---------------- registry ---------------- *)

type counter = { c_name : string; mutable value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, unit -> float) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; value = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = if !enabled_flag then c.value <- c.value + 1
let add c n = if !enabled_flag then c.value <- c.value + n
let counter_value c = c.value

(* A gauge is re-registered freely: the latest callback wins, so wrapping
   a fresh store under a name used by a dead one just works. *)
let gauge name read = Hashtbl.replace gauges name read

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; buckets = Array.make n_buckets 0; count = 0;
        sum = 0.0; min_seen = infinity; max_seen = neg_infinity }
    in
    Hashtbl.replace histograms name h;
    h

let observe h v =
  if !enabled_flag then begin
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_seen then h.min_seen <- v;
    if v > h.max_seen then h.max_seen <- v
  end

let time h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      observe h (now () -. t0);
      v
    | exception e ->
      observe h (now () -. t0);
      raise e
  end

let hist_count h = h.count
let hist_sum h = h.sum
let hist_max h = if h.count = 0 then 0.0 else h.max_seen
let hist_min h = if h.count = 0 then 0.0 else h.min_seen

(* Quantile estimate: walk buckets to the one holding the q-th sample and
   report its geometric midpoint (clamped to the observed extremes, which
   are tracked exactly). *)
let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go i seen =
      if i >= n_buckets then h.max_seen
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then bucket_midpoint i else go (i + 1) seen
    in
    let v = go 0 0 in
    if v < h.min_seen then h.min_seen
    else if v > h.max_seen then h.max_seen
    else v
  end

let reset_histogram h =
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum <- 0.0;
  h.min_seen <- infinity;
  h.max_seen <- neg_infinity

(* ---------------- trace spans ---------------- *)

type span = {
  id : int;
  parent : int;  (* id of the enclosing span, or -1 for a root span *)
  name : string;
  start : float;     (* Unix time, seconds *)
  duration : float;  (* seconds *)
  attrs : (string * string) list;
}

let default_span_capacity = 512

type ring = {
  mutable slots : span option array;
  mutable pos : int;       (* next write index *)
  mutable recorded : int;  (* spans ever recorded (wraparound evidence) *)
}

let ring =
  { slots = Array.make default_span_capacity None; pos = 0; recorded = 0 }

let span_stack : int list ref = ref []
let next_span_id = ref 0

let set_span_capacity n =
  if n < 1 then invalid_arg "Obs.set_span_capacity";
  ring.slots <- Array.make n None;
  ring.pos <- 0;
  ring.recorded <- 0

let span_capacity () = Array.length ring.slots

let record_span s =
  ring.slots.(ring.pos) <- Some s;
  ring.pos <- (ring.pos + 1) mod Array.length ring.slots;
  ring.recorded <- ring.recorded + 1

let spans_recorded () = ring.recorded

(* Completed spans, oldest first.  Children complete before their parent,
   so a parent id may refer to a span later in (or already evicted from)
   the list; consumers key on [id]/[parent], not position. *)
let spans () =
  let cap = Array.length ring.slots in
  let out = ref [] in
  for k = 0 to cap - 1 do
    match ring.slots.((ring.pos + k) mod cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  List.rev !out

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let id = !next_span_id in
    next_span_id := id + 1;
    let parent = match !span_stack with [] -> -1 | p :: _ -> p in
    span_stack := id :: !span_stack;
    let start = now () in
    let finish () =
      (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
      record_span
        { id; parent; name; start; duration = now () -. start; attrs }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---------------- reset ---------------- *)

(* Zeroes counters, histograms and the span ring; gauge registrations are
   kept (they are read-only callbacks). *)
let reset () =
  Hashtbl.iter (fun _ c -> c.value <- 0) counters;
  Hashtbl.iter (fun _ h -> reset_histogram h) histograms;
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.pos <- 0;
  ring.recorded <- 0;
  span_stack := []

(* ---------------- exposition ---------------- *)

let sorted_items tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let read_gauge g = try g () with _ -> nan

let dump_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, c) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n c.value))
    (sorted_items counters);
  List.iter
    (fun (name, g) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %.17g\n" n (read_gauge g)))
    (sorted_items gauges);
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun q ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%g\"} %.9g\n" n q (quantile h q)))
        [ 0.5; 0.9; 0.99 ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %.9g\n" n h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.count);
      Buffer.add_string buf (Printf.sprintf "%s_max %.9g\n" n (hist_max h)))
    (sorted_items histograms);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let dump_json ?(include_spans = false) () =
  let buf = Buffer.create 1024 in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  Buffer.add_string buf "{\"counters\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, c) ->
            Printf.sprintf "\"%s\":%d" (json_escape name) c.value)
          (sorted_items counters)));
  Buffer.add_string buf ",\"gauges\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, g) ->
            Printf.sprintf "\"%s\":%s" (json_escape name)
              (json_float (read_gauge g)))
          (sorted_items gauges)));
  Buffer.add_string buf ",\"histograms\":";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (name, h) ->
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
              (json_escape name) h.count (json_float h.sum)
              (json_float (hist_min h))
              (json_float (hist_max h))
              (json_float (quantile h 0.5))
              (json_float (quantile h 0.9))
              (json_float (quantile h 0.99)))
          (sorted_items histograms)));
  if include_spans then begin
    Buffer.add_string buf ",\"spans\":[";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun s ->
              Printf.sprintf
                "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start\":%s,\"duration_us\":%s%s}"
                s.id s.parent (json_escape s.name) (json_float s.start)
                (json_float (s.duration *. 1e6))
                (match s.attrs with
                 | [] -> ""
                 | attrs ->
                   ",\"attrs\":"
                   ^ obj
                       (List.map
                          (fun (k, v) ->
                            Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                              (json_escape v))
                          attrs)))
            (spans ())));
    Buffer.add_string buf "]"
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf

(* Render the span ring as an indented tree (roots at margin), newest
   trace data last — the human view of "where did that request go". *)
let pp_spans ppf () =
  let all = spans () in
  let children =
    List.filter (fun (s : span) -> s.parent >= 0) all
  in
  let rec render indent (s : span) =
    Format.fprintf ppf "%s%s %.1f us%s@."
      (String.make (2 * indent) ' ')
      s.name (s.duration *. 1e6)
      (match s.attrs with
       | [] -> ""
       | attrs ->
         " ["
         ^ String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
         ^ "]");
    List.iter
      (fun (c : span) -> if c.parent = s.id then render (indent + 1) c)
      children
  in
  List.iter
    (fun (s : span) ->
      (* A span whose parent has been evicted from the ring renders as a
         root: the trace is bounded, not lossless. *)
      if s.parent < 0 || not (List.exists (fun (p : span) -> p.id = s.parent) all)
      then render 0 s)
    all
