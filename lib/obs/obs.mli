(** In-process observability: metrics registry, trace spans, event log.

    One global registry holds named counters, callback gauges and
    log-bucketed latency histograms, plus a bounded ring buffer of trace
    spans and a bounded ring of structured log events.  Everything is
    constant-memory and near-zero-cost when disabled (a single boolean
    load per record call).

    Histograms use geometric buckets with ratio 1.1, so any reported
    quantile is within ~5% (relative) of the true sample value; [min],
    [max], [sum] and [count] are exact.  Observations are in seconds.

    Spans are Dapper-style [(trace, id, parent, name, start, duration,
    attrs)] records kept in a fixed ring: a long run keeps only the most
    recent spans, which is exactly what "why was that request slow"
    needs.  Every root span mints a 128-bit trace id; {!current_context}
    / the [?ctx] argument of {!with_span} carry that id across process
    boundaries so client and server spans of one request share it.

    Tracing is thread-safe: span parenthood is tracked per thread and
    the ring is mutex-guarded, so server connection threads can record
    concurrently.  Counter/histogram increments stay lock-free (a racing
    tick may be lost; the structures never corrupt).  Disable everything
    with [set_enabled false] or by exporting [FB_OBS=0]. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool
(** Enabled by default unless the environment carries [FB_OBS=0]. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the counter registered under a name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges}

    Pull-model: a gauge is a callback sampled at dump time.  This is how
    existing mutable stats records ({!Fb_chunk.Store.stats}, cache and
    retry counters) fold into the registry without double bookkeeping. *)

val gauge : string -> (unit -> float) -> unit
(** Register (or replace) the gauge under a name.  Registration is
    idempotent by name with last-writer-wins: reopening a store under a
    name used by a closed handle takes the name over. *)

val unregister_gauge : string -> unit
(** Remove one gauge registration; unknown names are ignored. *)

val unregister_gauges_prefix : string -> unit
(** Remove every gauge whose name starts with the prefix — used when a
    handle owning a family of gauges (e.g. [log.<root>.*]) closes. *)

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Get or create the histogram registered under a name. *)

val observe : histogram -> float -> unit
(** Record one observation (seconds for latencies, but any positive
    value bucketizes; values below 1ns or above ~12ks clamp to the edge
    buckets). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration — also on
    exception. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: ~5% relative error, clamped to the
    exact observed min/max; 0 on an empty histogram. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val reset_histogram : histogram -> unit

(** {2 Snapshots}

    An immutable sparse copy of a histogram's buckets.  Two snapshots
    taken an interval apart subtract into the distribution of that
    interval alone — how [forkbase top] turns lifetime histograms into
    live p50/p99 and ops/s.  Snapshots also reconstruct from the
    [buckets] pairs of a METRICS-JSON body, so the delta math works
    against a remote node. *)

type snapshot = {
  snap_count : int;
  snap_sum : float;
  snap_buckets : (int * int) list;
      (** ascending (bucket index, count), counts > 0 *)
}

val snapshot : histogram -> snapshot

val snapshot_of_buckets : count:int -> sum:float -> (int * int) list -> snapshot
(** Build a snapshot from raw (index, count) pairs (any order; non-positive
    counts and out-of-range indices are dropped). *)

val empty_snapshot : snapshot

val snapshot_sub : snapshot -> snapshot -> snapshot
(** [snapshot_sub after before]: per-bucket difference clamped at zero
    (histograms only grow; a negative delta means the source was reset). *)

val snapshot_total : snapshot -> int
(** Total bucket count — the number of observations the snapshot holds. *)

val snapshot_quantile : snapshot -> float -> float
(** Quantile over the snapshot's buckets (geometric bucket midpoint,
    ~5% relative error; no exact min/max clamp); 0 when empty. *)

(** {1 Trace spans} *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span, or -1 for a root span *)
  trace : string;
      (** 32-hex 128-bit trace id shared by every span of one request,
          including spans recorded in other processes *)
  tid : int;  (** recording thread id, for Chrome trace lanes *)
  name : string;
  start : float;     (** Unix time, seconds *)
  duration : float;  (** seconds *)
  attrs : (string * string) list;
}

type context = { trace_id : string; span_id : int }
(** A position in a trace — what crosses the wire: the trace id plus the
    id of the span that should become the remote child's parent. *)

val current_context : unit -> context option
(** The innermost open span of the calling thread, or [None] outside any
    span (or when disabled). *)

val with_span :
  ?attrs:(string * string) list ->
  ?ctx:context ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span.  Nesting is tracked dynamically per
    thread: a span opened while another is running on the same thread
    records it as parent and inherits its trace id; a thread-outermost
    span mints a fresh trace id.  [?ctx] overrides both — the span joins
    [ctx.trace_id] with [ctx.span_id] as its (remote) parent, which is
    how a server request becomes a child of the client's span.  The
    record is written on completion — also on exception. *)

val spans : unit -> span list
(** Completed spans still in the ring, oldest first.  Children complete
    before their parent, so consumers must key on [id]/[parent]. *)

val spans_recorded : unit -> int
(** Spans recorded since the last {!reset} — exceeds the ring capacity
    once wraparound has discarded old spans. *)

val set_span_capacity : int -> unit
(** Resize (and clear) the span ring.  Default capacity: 512.
    @raise Invalid_argument if not positive. *)

val span_capacity : unit -> int

(** {1 Structured event log}

    Leveled JSON-lines events.  With a sink installed — explicitly via
    {!set_log_sink} or by exporting [FB_LOG=stderr] / [FB_LOG=<path>] —
    each event is rendered to one JSON line and written through.  With
    no sink, events land in a bounded in-memory ring readable via
    {!events}: free black-box recording for post-mortems.  Events below
    the threshold level ([FB_LOG_LEVEL], default [info]) are dropped at
    the call site.  An event emitted inside a span carries that span's
    trace id, linking log lines to traces. *)

type level = Debug | Info | Warn | Error

type event = {
  ev_time : float;
  ev_level : level;
  ev_msg : string;
  ev_fields : (string * string) list;
  ev_trace : string option;
      (** trace id of the span open at emit time, if any *)
}

val log_event : ?fields:(string * string) list -> level -> string -> unit
val level_name : level -> string
val level_of_string : string -> level option
val set_log_level : level -> unit
val set_log_sink : (string -> unit) option -> unit
(** [set_log_sink (Some f)] routes each rendered JSON line to [f];
    [set_log_sink None] reverts to the in-memory ring. *)

val events : unit -> event list
(** Events in the ring, oldest first (empty while a sink is installed). *)

val set_event_capacity : int -> unit
(** Resize (and trim) the event ring.  Default capacity: 256.
    @raise Invalid_argument if not positive. *)

val event_to_json : event -> string
(** One JSON line: [{"ts":..,"level":"..","msg":"..","trace":".."?,
    "fields":{..}?}] (no trailing newline). *)

(** {1 Reset and exposition} *)

val reset : unit -> unit
(** Zero all counters and histograms, clear the span and event rings.
    Gauge registrations (read-only callbacks) are kept. *)

val dump_prometheus : unit -> string
(** Prometheus text exposition: counters, gauges, and histograms as
    summaries with [quantile="0.5"/"0.9"/"0.99"] plus [_sum], [_count]
    and [_max] lines.  Metric names are sanitized ([.] becomes [_]);
    non-finite gauge values print as [NaN]/[+Inf]/[-Inf] per the
    text-format grammar. *)

val dump_json : ?include_spans:bool -> ?include_buckets:bool -> unit -> string
(** The same registry as a JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,
    max,p50,p90,p99,buckets?}},"spans":[..]?}].  Spans (with
    [duration_us], [trace], [tid]) and sparse histogram [buckets] pairs
    ([[index,count],..], for {!snapshot_of_buckets} on the consumer
    side) are included only on request — they are the bulky parts. *)

val dump_chrome_trace : unit -> string
(** The span ring as Chrome [trace_event] JSON
    ([{"traceEvents":[{"ph":"X",..}]}]) loadable in chrome://tracing or
    Perfetto; one lane per recording thread, span/trace ids in [args]. *)

val pp_spans : Format.formatter -> unit -> unit
(** Human view of the span ring: indented per-trace tree with durations
    in microseconds.  Spans whose parent has been evicted render as
    roots. *)

val render_trace : string -> string
(** The spans of one trace id as an indented text tree — what the
    slow-request log and the /tracez endpoint emit per request. *)
