(** In-process observability: metrics registry and trace spans.

    One global registry holds named counters, callback gauges and
    log-bucketed latency histograms, plus a bounded ring buffer of trace
    spans.  Everything is constant-memory and near-zero-cost when
    disabled (a single boolean load per record call).

    Histograms use geometric buckets with ratio 1.1, so any reported
    quantile is within ~5% (relative) of the true sample value; [min],
    [max], [sum] and [count] are exact.  Observations are in seconds.

    Spans are Dapper-style [(name, start, duration, parent, attrs)]
    records kept in a fixed ring: a long run keeps only the most recent
    spans, which is exactly what "why was that request slow" needs.

    The registry is process-global and not thread-safe (the engine is
    single-threaded); disable with [set_enabled false] or by exporting
    [FB_OBS=0]. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool
(** Enabled by default unless the environment carries [FB_OBS=0]. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the counter registered under a name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges}

    Pull-model: a gauge is a callback sampled at dump time.  This is how
    existing mutable stats records ({!Fb_chunk.Store.stats}, cache and
    retry counters) fold into the registry without double bookkeeping. *)

val gauge : string -> (unit -> float) -> unit
(** Register (or replace) the gauge under a name. *)

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Get or create the histogram registered under a name. *)

val observe : histogram -> float -> unit
(** Record one observation (seconds for latencies, but any positive
    value bucketizes; values below 1ns or above ~12ks clamp to the edge
    buckets). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration — also on
    exception. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: ~5% relative error, clamped to the
    exact observed min/max; 0 on an empty histogram. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val reset_histogram : histogram -> unit

(** {1 Trace spans} *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span, or -1 for a root span *)
  name : string;
  start : float;     (** Unix time, seconds *)
  duration : float;  (** seconds *)
  attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Nesting is tracked dynamically: a span
    opened while another is running records it as parent.  The record is
    written on completion — also on exception. *)

val spans : unit -> span list
(** Completed spans still in the ring, oldest first.  Children complete
    before their parent, so consumers must key on [id]/[parent]. *)

val spans_recorded : unit -> int
(** Spans recorded since the last {!reset} — exceeds the ring capacity
    once wraparound has discarded old spans. *)

val set_span_capacity : int -> unit
(** Resize (and clear) the span ring.  Default capacity: 512.
    @raise Invalid_argument if not positive. *)

val span_capacity : unit -> int

(** {1 Reset and exposition} *)

val reset : unit -> unit
(** Zero all counters and histograms and clear the span ring.  Gauge
    registrations (read-only callbacks) are kept. *)

val dump_prometheus : unit -> string
(** Prometheus text exposition: counters, gauges, and histograms as
    summaries with [quantile="0.5"/"0.9"/"0.99"] plus [_sum], [_count]
    and [_max] lines.  Metric names are sanitized ([.] becomes [_]). *)

val dump_json : ?include_spans:bool -> unit -> string
(** The same registry as a JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,
    max,p50,p90,p99}},"spans":[..]?}].  Spans (with [duration_us]) are
    included only on request — they are the bulky part. *)

val pp_spans : Format.formatter -> unit -> unit
(** Human view of the span ring: indented per-trace tree with durations
    in microseconds.  Spans whose parent has been evicted render as
    roots. *)
