(** Reference SHA-256 kernel (FIPS 180-4) on boxed [Int32] words.

    This is the original, obviously-specification-faithful implementation.
    It is kept verbatim as a differential-testing oracle and as the baseline
    for the [hotpath] benchmark; production code uses {!Sha256}, whose
    compression function is an unrolled branch-free [Int64] kernel.  Both
    must produce bit-identical digests for every input. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx
(** Fresh context. *)

val update : ctx -> string -> unit
(** Absorb a whole string. *)

val update_sub : ctx -> string -> pos:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val update_char : ctx -> char -> unit
(** Absorb a single byte. *)

val finalize : ctx -> string
(** Produce the 32-byte digest.  The context must not be reused. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val digest_strings : string list -> string
(** Digest of the concatenation of the given strings, without building the
    concatenation. *)
