(* FIPS 180-4 SHA-256, reference kernel.  The compression function works on
   Int32 words, which keeps the arithmetic exact and the code obviously
   faithful to the specification, at the cost of boxing every intermediate.
   Kept as the differential-test oracle for the fast native-int [Sha256]. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l;
     0x3956c25bl; 0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l;
     0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l;
     0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l;
     0xc6e00bf3l; 0xd5a79147l; 0x06ca6351l; 0x14292967l;
     0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l;
     0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l;
     0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl; 0x682e6ff3l;
     0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array;          (* eight working hash words *)
  block : Bytes.t;          (* 64-byte input block being filled *)
  mutable fill : int;       (* bytes currently in [block] *)
  mutable total : int64;    (* total message length in bytes *)
  w : int32 array;          (* message schedule, reused across blocks *)
}

let init () =
  { h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
         0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    block = Bytes.create 64;
    fill = 0;
    total = 0L;
    w = Array.make 64 0l }

let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( ^^^ ) = Int32.logxor
let ( +% ) = Int32.add

let rotr x n = Int32.shift_right_logical x n ||| Int32.shift_left x (32 - n)
let shr x n = Int32.shift_right_logical x n

let compress ctx =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be ctx.block (i * 4)
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^^^ rotr w.(i - 15) 18 ^^^ shr w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^^^ rotr w.(i - 2) 19 ^^^ shr w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^^^ rotr !e 11 ^^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^^ (Int32.lognot !e &&& !g) in
    let t1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^^^ rotr !a 13 ^^^ rotr !a 22 in
    let maj = (!a &&& !b) ^^^ (!a &&& !c) ^^^ (!b &&& !c) in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let update_sub ctx s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.update_sub";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = min !len (64 - ctx.fill) in
    Bytes.blit_string s !pos ctx.block ctx.fill n;
    ctx.fill <- ctx.fill + n;
    pos := !pos + n;
    len := !len - n;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let update ctx s = update_sub ctx s ~pos:0 ~len:(String.length s)

let update_char ctx c =
  ctx.total <- Int64.add ctx.total 1L;
  Bytes.set ctx.block ctx.fill c;
  ctx.fill <- ctx.fill + 1;
  if ctx.fill = 64 then begin
    compress ctx;
    ctx.fill <- 0
  end

let finalize ctx =
  let bitlen = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, then 64-bit big-endian bit length. *)
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\x00';
    compress ctx;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (56 - ctx.fill) '\x00';
  Bytes.set_int64_be ctx.block 56 bitlen;
  compress ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (i * 4) ctx.h.(i)
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_strings ss =
  let ctx = init () in
  List.iter (update ctx) ss;
  finalize ctx
