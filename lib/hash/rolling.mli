(** Cyclic-polynomial rolling hash and pattern detector (paper §II-A).

    POS-Tree node boundaries are defined by content: a window of [k] bytes is
    hashed with the cyclic polynomial (buzhash)

    {v Φ(b1…bk) = δ(Φ(b0…b(k-1))) ⊕ δ^k(Γ(b0)) ⊕ Γ(bk) v}

    where [Γ] maps a byte to a pseudo-random integer in [\[0, 2^q)] and [δ]
    rotates its argument left by one bit within [q] bits.  A {e pattern}
    occurs when [Φ mod 2^q = 0]; since the state is kept in exactly [q] bits
    this means the state is zero.  Boundaries therefore depend only on the
    last [k] bytes of content — the structural-invariance foundation of the
    POS-Tree. *)

type params = {
  window : int;  (** bytes hashed at a time, [k]; must be >= 1 *)
  q : int;       (** pattern bits; expected chunk size is [2^q] bytes *)
}

val default_node_params : params
(** Window 32, [q] = 11: ~2 KiB expected POS-Tree node payload. *)

val default_blob_params : params
(** Window 48, [q] = 12: ~4 KiB expected blob chunk. *)

type t
(** Rolling state over a byte stream. *)

val create : params -> t

val reset : t -> unit
(** Forget all absorbed bytes (fresh node start). *)

val feed : t -> char -> bool
(** Absorb one byte; [true] iff the window is full and the pattern fires at
    this position. *)

val feed_string : t -> string -> bool
(** Absorb all bytes of a string; [true] iff the pattern fired on {e any}
    byte of it.  Used when boundaries are checked at entry granularity: a
    pattern inside an entry extends the boundary to the entry's end.

    This is the hot path of every POS-Tree build: once the window is full
    it runs a fused branch-free loop with hoisted table lookups instead of
    calling {!feed} per byte.  It is observationally identical to feeding
    each byte through {!feed} (property-tested). *)

val fingerprint : t -> int
(** Current rolling state Φ (q bits).  Exposed for diagnostics and for the
    differential tests that check {!feed_string} against per-byte
    {!feed}. *)

type stats = {
  gamma_builds : int;     (** Γ tables actually constructed *)
  gamma_memo_hits : int;  (** [create] calls served from the memo *)
  bytes_scanned : int;    (** total bytes absorbed via {!feed_string} *)
}

val stats : unit -> stats
(** Process-wide chunker counters (monotonic). *)

val hits_in : params -> string -> int list
(** Offsets (0-based, inclusive of the byte that completes the window) at
    which the pattern fires when scanning the whole string from a fresh
    state.  For tests and the chunk-size analysis bench. *)
