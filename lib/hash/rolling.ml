type params = { window : int; q : int }

let default_node_params = { window = 32; q = 11 }
let default_blob_params = { window = 48; q = 12 }

(* Γ: one fixed pseudo-random table per q, derived from a pinned SplitMix64
   seed.  Chunk boundaries — and hence every stored hash — depend on this
   table, so the seed must never change. *)
let gamma_seed = 0x666f726b62617365L (* "forkbase" *)

(* Module-level instrumentation, surfaced through [stats] and the Obs
   gauges registered by the chunker. *)
let gamma_builds = ref 0
let gamma_memo_hits = ref 0
let bytes_scanned = ref 0

(* The table for a given q is deterministic, so one copy is shared by every
   roller.  Rollers only ever read it.  Before memoization, every
   [create] — one per POS-Tree build or blob chunking pass — rebuilt the
   256-entry table from the PRNG. *)
let gamma_cache : (int, int array) Hashtbl.t = Hashtbl.create 4

let gamma_table q =
  match Hashtbl.find_opt gamma_cache q with
  | Some t ->
      incr gamma_memo_hits;
      t
  | None ->
      incr gamma_builds;
      let rng = Prng.create gamma_seed in
      let mask = (1 lsl q) - 1 in
      let t =
        Array.init 256 (fun _ -> Int64.to_int (Prng.next_int64 rng) land mask)
      in
      Hashtbl.add gamma_cache q t;
      t

type stats = {
  gamma_builds : int;
  gamma_memo_hits : int;
  bytes_scanned : int;
}

let stats () =
  { gamma_builds = !gamma_builds;
    gamma_memo_hits = !gamma_memo_hits;
    bytes_scanned = !bytes_scanned }

type t = {
  params : params;
  table : int array;
  mask : int;
  rot_k : int;              (* k mod q, for removing the outgoing byte *)
  ring : Bytes.t;           (* last [window] bytes *)
  mutable pos : int;        (* ring cursor *)
  mutable count : int;      (* bytes absorbed since reset, saturates *)
  mutable state : int;      (* Φ over the current window, q bits *)
}

let create params =
  if params.window < 1 then invalid_arg "Rolling.create: window must be >= 1";
  if params.q < 1 || params.q > 30 then
    invalid_arg "Rolling.create: q must be in [1, 30]";
  { params;
    table = gamma_table params.q;
    mask = (1 lsl params.q) - 1;
    rot_k = params.window mod params.q;
    ring = Bytes.make params.window '\x00';
    pos = 0;
    count = 0;
    state = 0 }

let reset t =
  t.pos <- 0;
  t.count <- 0;
  t.state <- 0
  (* The ring need not be cleared: bytes are only consulted once the window
     has refilled past them. *)

let fingerprint t = t.state

let rotl t v n =
  let n = n mod t.params.q in
  if n = 0 then v
  else ((v lsl n) lor (v lsr (t.params.q - n))) land t.mask

let feed t c =
  let k = t.params.window in
  let incoming = t.table.(Char.code c) in
  if t.count >= k then begin
    (* δ(Φ) ⊕ δ^k(Γ(out)) ⊕ Γ(in) *)
    let outgoing = t.table.(Char.code (Bytes.get t.ring t.pos)) in
    t.state <- rotl t t.state 1 lxor rotl t outgoing t.rot_k lxor incoming
  end else
    t.state <- rotl t t.state 1 lxor incoming;
  Bytes.set t.ring t.pos c;
  t.pos <- (t.pos + 1) mod k;
  if t.count < k then t.count <- t.count + 1;
  t.count >= k && t.state = 0

let feed_string t s =
  let n = String.length s in
  bytes_scanned := !bytes_scanned + n;
  let hit = ref false in
  let i = ref 0 in
  let k = t.params.window in
  (* Warm-up: per-char until the window is full, so the not-yet-full branch
     stays out of the main loop. *)
  while !i < n && t.count < k do
    if feed t (String.unsafe_get s !i) then hit := true;
    incr i
  done;
  if !i < n then begin
    (* Steady state: the window is full, so every byte runs the same
       three-term recurrence δ(Φ) ⊕ δ^k(Γ(out)) ⊕ Γ(in).  Table, masks and
       shift counts are hoisted; ring and table accesses are unsafe (the
       ring index is always in [0, k) and table indices are byte values).
       The branch-free rotations are valid at the edge cases: for a shift
       of 0 the [lsr q] term vanishes because values fit in q bits, leaving
       the identity, exactly as [rotl] computes it. *)
    let q = t.params.q in
    let mask = t.mask in
    let table = t.table in
    let ring = t.ring in
    let rk = t.rot_k in
    let qm1 = q - 1 in
    let qmrk = q - rk in
    let state = ref t.state in
    let pos = ref t.pos in
    for j = !i to n - 1 do
      let c = String.unsafe_get s j in
      let incoming = Array.unsafe_get table (Char.code c) in
      let outgoing =
        Array.unsafe_get table (Char.code (Bytes.unsafe_get ring !pos))
      in
      let st = !state in
      let st = ((st lsl 1) lor (st lsr qm1)) land mask in
      let out = ((outgoing lsl rk) lor (outgoing lsr qmrk)) land mask in
      let st = st lxor out lxor incoming in
      state := st;
      Bytes.unsafe_set ring !pos c;
      let p = !pos + 1 in
      pos := if p = k then 0 else p;
      if st = 0 then hit := true
    done;
    t.state <- !state;
    t.pos <- !pos
  end;
  !hit

let hits_in params s =
  let t = create params in
  let acc = ref [] in
  String.iteri (fun i c -> if feed t c then acc := i :: !acc) s;
  List.rev !acc
