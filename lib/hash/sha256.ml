(* FIPS 180-4 SHA-256, performance-engineered for flambda-less ocamlopt.

   The seed implementation ([Sha256_ref], kept as a differential-testing
   oracle) runs the compression function on boxed [Int32]; this one runs it
   on unboxed 64-bit words.  Three ideas carry the speedup:

   - The whole compression function is emitted in branch-free SSA form (by
     [tools/gen_sha256_kernel.py]): every schedule word and round
     intermediate is a fresh [Int64] [let].  ocamlopt's boxed-number
     unboxing then keeps the entire body in registers and stack slots —
     a single conditional would force values live across it back into
     heap boxes.

   - Words are kept in "doubled" form [y = x lor (x lsl 32)] (low and high
     halves both hold the 32-bit value), so every 32-bit rotation is ONE
     64-bit logical shift ([rotr32 x n = (y lsr n) land mask]) instead of
     two shifts and an or, and the bitwise ch/maj identities remain valid
     in both halves.

   - Sums are allowed to carry garbage into the high half: addition only
     propagates carries upward and xor/and are bitwise, so the low 32 bits
     stay exact.  The [land 0xFFFFFFFF] folded into the next doubling
     restores canonical form; nothing else masks.

   [update_bytes]/[update_sub] stream whole blocks straight from the
   caller's buffer; only a trailing partial block is copied into the
   context. *)

external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

let ( &&& ) = Int64.logand
let ( ^^^ ) = Int64.logxor
let ( +% ) = Int64.add
let ( ||| ) = Int64.logor
let ( <<< ) = Int64.shift_left
let ( >>> ) = Int64.shift_right_logical
let m32 = 0xFFFFFFFFL
let mh32 = 0xFFFFFFFF00000000L

type ctx = {
  h : int array;            (* eight working hash words, canonical 32-bit *)
  block : Bytes.t;          (* 64-byte input block being filled *)
  mutable fill : int;       (* bytes currently in [block] *)
  mutable total : int;      (* total message length in bytes *)
}

let init () =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
         0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    fill = 0;
    total = 0 }

(* GENERATED-KERNEL-BEGIN: tools/gen_sha256_kernel.py *)
let compress_block (h : int array) (b : Bytes.t) pos =
  let q0 = bswap64 (get64u b (pos + 0)) in
  let w0 = q0 >>> 32 in
  let w1 = q0 &&& m32 in
  let dw0 = w0 ||| (q0 &&& mh32) in
  let dw1 = w1 ||| (q0 <<< 32) in
  let q1 = bswap64 (get64u b (pos + 8)) in
  let w2 = q1 >>> 32 in
  let w3 = q1 &&& m32 in
  let dw2 = w2 ||| (q1 &&& mh32) in
  let dw3 = w3 ||| (q1 <<< 32) in
  let q2 = bswap64 (get64u b (pos + 16)) in
  let w4 = q2 >>> 32 in
  let w5 = q2 &&& m32 in
  let dw4 = w4 ||| (q2 &&& mh32) in
  let dw5 = w5 ||| (q2 <<< 32) in
  let q3 = bswap64 (get64u b (pos + 24)) in
  let w6 = q3 >>> 32 in
  let w7 = q3 &&& m32 in
  let dw6 = w6 ||| (q3 &&& mh32) in
  let dw7 = w7 ||| (q3 <<< 32) in
  let q4 = bswap64 (get64u b (pos + 32)) in
  let w8 = q4 >>> 32 in
  let w9 = q4 &&& m32 in
  let dw8 = w8 ||| (q4 &&& mh32) in
  let dw9 = w9 ||| (q4 <<< 32) in
  let q5 = bswap64 (get64u b (pos + 40)) in
  let w10 = q5 >>> 32 in
  let w11 = q5 &&& m32 in
  let dw10 = w10 ||| (q5 &&& mh32) in
  let dw11 = w11 ||| (q5 <<< 32) in
  let q6 = bswap64 (get64u b (pos + 48)) in
  let w12 = q6 >>> 32 in
  let w13 = q6 &&& m32 in
  let dw12 = w12 ||| (q6 &&& mh32) in
  let dw13 = w13 ||| (q6 <<< 32) in
  let q7 = bswap64 (get64u b (pos + 56)) in
  let w14 = q7 >>> 32 in
  let w15 = q7 &&& m32 in
  let dw14 = w14 ||| (q7 &&& mh32) in
  let dw15 = w15 ||| (q7 <<< 32) in
  let a0 = Int64.of_int (Array.unsafe_get h 0) in
  let b0 = Int64.of_int (Array.unsafe_get h 1) in
  let c0 = Int64.of_int (Array.unsafe_get h 2) in
  let d0 = Int64.of_int (Array.unsafe_get h 3) in
  let e0 = Int64.of_int (Array.unsafe_get h 4) in
  let f0 = Int64.of_int (Array.unsafe_get h 5) in
  let g0 = Int64.of_int (Array.unsafe_get h 6) in
  let h0 = Int64.of_int (Array.unsafe_get h 7) in
  let a0 = a0 ||| (a0 <<< 32) in
  let b0 = b0 ||| (b0 <<< 32) in
  let c0 = c0 ||| (c0 <<< 32) in
  let d0 = d0 ||| (d0 <<< 32) in
  let e0 = e0 ||| (e0 <<< 32) in
  let f0 = f0 ||| (f0 <<< 32) in
  let g0 = g0 ||| (g0 <<< 32) in
  let h0 = h0 ||| (h0 <<< 32) in
  let t0 = h0 +% ((e0 >>> 6) ^^^ (e0 >>> 11) ^^^ (e0 >>> 25)) +% (g0 ^^^ (e0 &&& (f0 ^^^ g0))) +% 1116352408L +% w0 in
  let xd1 = d0 +% t0 in
  let d1 = (xd1 &&& m32) ||| (xd1 <<< 32) in
  let xh1 = t0 +% ((a0 >>> 2) ^^^ (a0 >>> 13) ^^^ (a0 >>> 22)) +% ((a0 &&& b0) ||| (c0 &&& (a0 ||| b0))) in
  let h1 = (xh1 &&& m32) ||| (xh1 <<< 32) in
  let t1 = g0 +% ((d1 >>> 6) ^^^ (d1 >>> 11) ^^^ (d1 >>> 25)) +% (f0 ^^^ (d1 &&& (e0 ^^^ f0))) +% 1899447441L +% w1 in
  let xd2 = c0 +% t1 in
  let d2 = (xd2 &&& m32) ||| (xd2 <<< 32) in
  let xh2 = t1 +% ((h1 >>> 2) ^^^ (h1 >>> 13) ^^^ (h1 >>> 22)) +% ((h1 &&& a0) ||| (b0 &&& (h1 ||| a0))) in
  let h2 = (xh2 &&& m32) ||| (xh2 <<< 32) in
  let t2 = f0 +% ((d2 >>> 6) ^^^ (d2 >>> 11) ^^^ (d2 >>> 25)) +% (e0 ^^^ (d2 &&& (d1 ^^^ e0))) +% 3049323471L +% w2 in
  let xd3 = b0 +% t2 in
  let d3 = (xd3 &&& m32) ||| (xd3 <<< 32) in
  let xh3 = t2 +% ((h2 >>> 2) ^^^ (h2 >>> 13) ^^^ (h2 >>> 22)) +% ((h2 &&& h1) ||| (a0 &&& (h2 ||| h1))) in
  let h3 = (xh3 &&& m32) ||| (xh3 <<< 32) in
  let t3 = e0 +% ((d3 >>> 6) ^^^ (d3 >>> 11) ^^^ (d3 >>> 25)) +% (d1 ^^^ (d3 &&& (d2 ^^^ d1))) +% 3921009573L +% w3 in
  let xd4 = a0 +% t3 in
  let d4 = (xd4 &&& m32) ||| (xd4 <<< 32) in
  let xh4 = t3 +% ((h3 >>> 2) ^^^ (h3 >>> 13) ^^^ (h3 >>> 22)) +% ((h3 &&& h2) ||| (h1 &&& (h3 ||| h2))) in
  let h4 = (xh4 &&& m32) ||| (xh4 <<< 32) in
  let t4 = d1 +% ((d4 >>> 6) ^^^ (d4 >>> 11) ^^^ (d4 >>> 25)) +% (d2 ^^^ (d4 &&& (d3 ^^^ d2))) +% 961987163L +% w4 in
  let xd5 = h1 +% t4 in
  let d5 = (xd5 &&& m32) ||| (xd5 <<< 32) in
  let xh5 = t4 +% ((h4 >>> 2) ^^^ (h4 >>> 13) ^^^ (h4 >>> 22)) +% ((h4 &&& h3) ||| (h2 &&& (h4 ||| h3))) in
  let h5 = (xh5 &&& m32) ||| (xh5 <<< 32) in
  let t5 = d2 +% ((d5 >>> 6) ^^^ (d5 >>> 11) ^^^ (d5 >>> 25)) +% (d3 ^^^ (d5 &&& (d4 ^^^ d3))) +% 1508970993L +% w5 in
  let xd6 = h2 +% t5 in
  let d6 = (xd6 &&& m32) ||| (xd6 <<< 32) in
  let xh6 = t5 +% ((h5 >>> 2) ^^^ (h5 >>> 13) ^^^ (h5 >>> 22)) +% ((h5 &&& h4) ||| (h3 &&& (h5 ||| h4))) in
  let h6 = (xh6 &&& m32) ||| (xh6 <<< 32) in
  let t6 = d3 +% ((d6 >>> 6) ^^^ (d6 >>> 11) ^^^ (d6 >>> 25)) +% (d4 ^^^ (d6 &&& (d5 ^^^ d4))) +% 2453635748L +% w6 in
  let xd7 = h3 +% t6 in
  let d7 = (xd7 &&& m32) ||| (xd7 <<< 32) in
  let xh7 = t6 +% ((h6 >>> 2) ^^^ (h6 >>> 13) ^^^ (h6 >>> 22)) +% ((h6 &&& h5) ||| (h4 &&& (h6 ||| h5))) in
  let h7 = (xh7 &&& m32) ||| (xh7 <<< 32) in
  let t7 = d4 +% ((d7 >>> 6) ^^^ (d7 >>> 11) ^^^ (d7 >>> 25)) +% (d5 ^^^ (d7 &&& (d6 ^^^ d5))) +% 2870763221L +% w7 in
  let xd8 = h4 +% t7 in
  let d8 = (xd8 &&& m32) ||| (xd8 <<< 32) in
  let xh8 = t7 +% ((h7 >>> 2) ^^^ (h7 >>> 13) ^^^ (h7 >>> 22)) +% ((h7 &&& h6) ||| (h5 &&& (h7 ||| h6))) in
  let h8 = (xh8 &&& m32) ||| (xh8 <<< 32) in
  let t8 = d5 +% ((d8 >>> 6) ^^^ (d8 >>> 11) ^^^ (d8 >>> 25)) +% (d6 ^^^ (d8 &&& (d7 ^^^ d6))) +% 3624381080L +% w8 in
  let xd9 = h5 +% t8 in
  let d9 = (xd9 &&& m32) ||| (xd9 <<< 32) in
  let xh9 = t8 +% ((h8 >>> 2) ^^^ (h8 >>> 13) ^^^ (h8 >>> 22)) +% ((h8 &&& h7) ||| (h6 &&& (h8 ||| h7))) in
  let h9 = (xh9 &&& m32) ||| (xh9 <<< 32) in
  let t9 = d6 +% ((d9 >>> 6) ^^^ (d9 >>> 11) ^^^ (d9 >>> 25)) +% (d7 ^^^ (d9 &&& (d8 ^^^ d7))) +% 310598401L +% w9 in
  let xd10 = h6 +% t9 in
  let d10 = (xd10 &&& m32) ||| (xd10 <<< 32) in
  let xh10 = t9 +% ((h9 >>> 2) ^^^ (h9 >>> 13) ^^^ (h9 >>> 22)) +% ((h9 &&& h8) ||| (h7 &&& (h9 ||| h8))) in
  let h10 = (xh10 &&& m32) ||| (xh10 <<< 32) in
  let t10 = d7 +% ((d10 >>> 6) ^^^ (d10 >>> 11) ^^^ (d10 >>> 25)) +% (d8 ^^^ (d10 &&& (d9 ^^^ d8))) +% 607225278L +% w10 in
  let xd11 = h7 +% t10 in
  let d11 = (xd11 &&& m32) ||| (xd11 <<< 32) in
  let xh11 = t10 +% ((h10 >>> 2) ^^^ (h10 >>> 13) ^^^ (h10 >>> 22)) +% ((h10 &&& h9) ||| (h8 &&& (h10 ||| h9))) in
  let h11 = (xh11 &&& m32) ||| (xh11 <<< 32) in
  let t11 = d8 +% ((d11 >>> 6) ^^^ (d11 >>> 11) ^^^ (d11 >>> 25)) +% (d9 ^^^ (d11 &&& (d10 ^^^ d9))) +% 1426881987L +% w11 in
  let xd12 = h8 +% t11 in
  let d12 = (xd12 &&& m32) ||| (xd12 <<< 32) in
  let xh12 = t11 +% ((h11 >>> 2) ^^^ (h11 >>> 13) ^^^ (h11 >>> 22)) +% ((h11 &&& h10) ||| (h9 &&& (h11 ||| h10))) in
  let h12 = (xh12 &&& m32) ||| (xh12 <<< 32) in
  let t12 = d9 +% ((d12 >>> 6) ^^^ (d12 >>> 11) ^^^ (d12 >>> 25)) +% (d10 ^^^ (d12 &&& (d11 ^^^ d10))) +% 1925078388L +% w12 in
  let xd13 = h9 +% t12 in
  let d13 = (xd13 &&& m32) ||| (xd13 <<< 32) in
  let xh13 = t12 +% ((h12 >>> 2) ^^^ (h12 >>> 13) ^^^ (h12 >>> 22)) +% ((h12 &&& h11) ||| (h10 &&& (h12 ||| h11))) in
  let h13 = (xh13 &&& m32) ||| (xh13 <<< 32) in
  let t13 = d10 +% ((d13 >>> 6) ^^^ (d13 >>> 11) ^^^ (d13 >>> 25)) +% (d11 ^^^ (d13 &&& (d12 ^^^ d11))) +% 2162078206L +% w13 in
  let xd14 = h10 +% t13 in
  let d14 = (xd14 &&& m32) ||| (xd14 <<< 32) in
  let xh14 = t13 +% ((h13 >>> 2) ^^^ (h13 >>> 13) ^^^ (h13 >>> 22)) +% ((h13 &&& h12) ||| (h11 &&& (h13 ||| h12))) in
  let h14 = (xh14 &&& m32) ||| (xh14 <<< 32) in
  let t14 = d11 +% ((d14 >>> 6) ^^^ (d14 >>> 11) ^^^ (d14 >>> 25)) +% (d12 ^^^ (d14 &&& (d13 ^^^ d12))) +% 2614888103L +% w14 in
  let xd15 = h11 +% t14 in
  let d15 = (xd15 &&& m32) ||| (xd15 <<< 32) in
  let xh15 = t14 +% ((h14 >>> 2) ^^^ (h14 >>> 13) ^^^ (h14 >>> 22)) +% ((h14 &&& h13) ||| (h12 &&& (h14 ||| h13))) in
  let h15 = (xh15 &&& m32) ||| (xh15 <<< 32) in
  let t15 = d12 +% ((d15 >>> 6) ^^^ (d15 >>> 11) ^^^ (d15 >>> 25)) +% (d13 ^^^ (d15 &&& (d14 ^^^ d13))) +% 3248222580L +% w15 in
  let xd16 = h12 +% t15 in
  let d16 = (xd16 &&& m32) ||| (xd16 <<< 32) in
  let xh16 = t15 +% ((h15 >>> 2) ^^^ (h15 >>> 13) ^^^ (h15 >>> 22)) +% ((h15 &&& h14) ||| (h13 &&& (h15 ||| h14))) in
  let h16 = (xh16 &&& m32) ||| (xh16 <<< 32) in
  let w16 = (dw0 >>> 32) +% ((dw1 >>> 7) ^^^ (dw1 >>> 18) ^^^ (dw1 >>> 35)) +% (dw9 >>> 32) +% ((dw14 >>> 17) ^^^ (dw14 >>> 19) ^^^ (dw14 >>> 42)) in
  let dw16 = (w16 &&& m32) ||| (w16 <<< 32) in
  let t16 = d13 +% ((d16 >>> 6) ^^^ (d16 >>> 11) ^^^ (d16 >>> 25)) +% (d14 ^^^ (d16 &&& (d15 ^^^ d14))) +% 3835390401L +% w16 in
  let xd17 = h13 +% t16 in
  let d17 = (xd17 &&& m32) ||| (xd17 <<< 32) in
  let xh17 = t16 +% ((h16 >>> 2) ^^^ (h16 >>> 13) ^^^ (h16 >>> 22)) +% ((h16 &&& h15) ||| (h14 &&& (h16 ||| h15))) in
  let h17 = (xh17 &&& m32) ||| (xh17 <<< 32) in
  let w17 = (dw1 >>> 32) +% ((dw2 >>> 7) ^^^ (dw2 >>> 18) ^^^ (dw2 >>> 35)) +% (dw10 >>> 32) +% ((dw15 >>> 17) ^^^ (dw15 >>> 19) ^^^ (dw15 >>> 42)) in
  let dw17 = (w17 &&& m32) ||| (w17 <<< 32) in
  let t17 = d14 +% ((d17 >>> 6) ^^^ (d17 >>> 11) ^^^ (d17 >>> 25)) +% (d15 ^^^ (d17 &&& (d16 ^^^ d15))) +% 4022224774L +% w17 in
  let xd18 = h14 +% t17 in
  let d18 = (xd18 &&& m32) ||| (xd18 <<< 32) in
  let xh18 = t17 +% ((h17 >>> 2) ^^^ (h17 >>> 13) ^^^ (h17 >>> 22)) +% ((h17 &&& h16) ||| (h15 &&& (h17 ||| h16))) in
  let h18 = (xh18 &&& m32) ||| (xh18 <<< 32) in
  let w18 = (dw2 >>> 32) +% ((dw3 >>> 7) ^^^ (dw3 >>> 18) ^^^ (dw3 >>> 35)) +% (dw11 >>> 32) +% ((dw16 >>> 17) ^^^ (dw16 >>> 19) ^^^ (dw16 >>> 42)) in
  let dw18 = (w18 &&& m32) ||| (w18 <<< 32) in
  let t18 = d15 +% ((d18 >>> 6) ^^^ (d18 >>> 11) ^^^ (d18 >>> 25)) +% (d16 ^^^ (d18 &&& (d17 ^^^ d16))) +% 264347078L +% w18 in
  let xd19 = h15 +% t18 in
  let d19 = (xd19 &&& m32) ||| (xd19 <<< 32) in
  let xh19 = t18 +% ((h18 >>> 2) ^^^ (h18 >>> 13) ^^^ (h18 >>> 22)) +% ((h18 &&& h17) ||| (h16 &&& (h18 ||| h17))) in
  let h19 = (xh19 &&& m32) ||| (xh19 <<< 32) in
  let w19 = (dw3 >>> 32) +% ((dw4 >>> 7) ^^^ (dw4 >>> 18) ^^^ (dw4 >>> 35)) +% (dw12 >>> 32) +% ((dw17 >>> 17) ^^^ (dw17 >>> 19) ^^^ (dw17 >>> 42)) in
  let dw19 = (w19 &&& m32) ||| (w19 <<< 32) in
  let t19 = d16 +% ((d19 >>> 6) ^^^ (d19 >>> 11) ^^^ (d19 >>> 25)) +% (d17 ^^^ (d19 &&& (d18 ^^^ d17))) +% 604807628L +% w19 in
  let xd20 = h16 +% t19 in
  let d20 = (xd20 &&& m32) ||| (xd20 <<< 32) in
  let xh20 = t19 +% ((h19 >>> 2) ^^^ (h19 >>> 13) ^^^ (h19 >>> 22)) +% ((h19 &&& h18) ||| (h17 &&& (h19 ||| h18))) in
  let h20 = (xh20 &&& m32) ||| (xh20 <<< 32) in
  let w20 = (dw4 >>> 32) +% ((dw5 >>> 7) ^^^ (dw5 >>> 18) ^^^ (dw5 >>> 35)) +% (dw13 >>> 32) +% ((dw18 >>> 17) ^^^ (dw18 >>> 19) ^^^ (dw18 >>> 42)) in
  let dw20 = (w20 &&& m32) ||| (w20 <<< 32) in
  let t20 = d17 +% ((d20 >>> 6) ^^^ (d20 >>> 11) ^^^ (d20 >>> 25)) +% (d18 ^^^ (d20 &&& (d19 ^^^ d18))) +% 770255983L +% w20 in
  let xd21 = h17 +% t20 in
  let d21 = (xd21 &&& m32) ||| (xd21 <<< 32) in
  let xh21 = t20 +% ((h20 >>> 2) ^^^ (h20 >>> 13) ^^^ (h20 >>> 22)) +% ((h20 &&& h19) ||| (h18 &&& (h20 ||| h19))) in
  let h21 = (xh21 &&& m32) ||| (xh21 <<< 32) in
  let w21 = (dw5 >>> 32) +% ((dw6 >>> 7) ^^^ (dw6 >>> 18) ^^^ (dw6 >>> 35)) +% (dw14 >>> 32) +% ((dw19 >>> 17) ^^^ (dw19 >>> 19) ^^^ (dw19 >>> 42)) in
  let dw21 = (w21 &&& m32) ||| (w21 <<< 32) in
  let t21 = d18 +% ((d21 >>> 6) ^^^ (d21 >>> 11) ^^^ (d21 >>> 25)) +% (d19 ^^^ (d21 &&& (d20 ^^^ d19))) +% 1249150122L +% w21 in
  let xd22 = h18 +% t21 in
  let d22 = (xd22 &&& m32) ||| (xd22 <<< 32) in
  let xh22 = t21 +% ((h21 >>> 2) ^^^ (h21 >>> 13) ^^^ (h21 >>> 22)) +% ((h21 &&& h20) ||| (h19 &&& (h21 ||| h20))) in
  let h22 = (xh22 &&& m32) ||| (xh22 <<< 32) in
  let w22 = (dw6 >>> 32) +% ((dw7 >>> 7) ^^^ (dw7 >>> 18) ^^^ (dw7 >>> 35)) +% (dw15 >>> 32) +% ((dw20 >>> 17) ^^^ (dw20 >>> 19) ^^^ (dw20 >>> 42)) in
  let dw22 = (w22 &&& m32) ||| (w22 <<< 32) in
  let t22 = d19 +% ((d22 >>> 6) ^^^ (d22 >>> 11) ^^^ (d22 >>> 25)) +% (d20 ^^^ (d22 &&& (d21 ^^^ d20))) +% 1555081692L +% w22 in
  let xd23 = h19 +% t22 in
  let d23 = (xd23 &&& m32) ||| (xd23 <<< 32) in
  let xh23 = t22 +% ((h22 >>> 2) ^^^ (h22 >>> 13) ^^^ (h22 >>> 22)) +% ((h22 &&& h21) ||| (h20 &&& (h22 ||| h21))) in
  let h23 = (xh23 &&& m32) ||| (xh23 <<< 32) in
  let w23 = (dw7 >>> 32) +% ((dw8 >>> 7) ^^^ (dw8 >>> 18) ^^^ (dw8 >>> 35)) +% (dw16 >>> 32) +% ((dw21 >>> 17) ^^^ (dw21 >>> 19) ^^^ (dw21 >>> 42)) in
  let dw23 = (w23 &&& m32) ||| (w23 <<< 32) in
  let t23 = d20 +% ((d23 >>> 6) ^^^ (d23 >>> 11) ^^^ (d23 >>> 25)) +% (d21 ^^^ (d23 &&& (d22 ^^^ d21))) +% 1996064986L +% w23 in
  let xd24 = h20 +% t23 in
  let d24 = (xd24 &&& m32) ||| (xd24 <<< 32) in
  let xh24 = t23 +% ((h23 >>> 2) ^^^ (h23 >>> 13) ^^^ (h23 >>> 22)) +% ((h23 &&& h22) ||| (h21 &&& (h23 ||| h22))) in
  let h24 = (xh24 &&& m32) ||| (xh24 <<< 32) in
  let w24 = (dw8 >>> 32) +% ((dw9 >>> 7) ^^^ (dw9 >>> 18) ^^^ (dw9 >>> 35)) +% (dw17 >>> 32) +% ((dw22 >>> 17) ^^^ (dw22 >>> 19) ^^^ (dw22 >>> 42)) in
  let dw24 = (w24 &&& m32) ||| (w24 <<< 32) in
  let t24 = d21 +% ((d24 >>> 6) ^^^ (d24 >>> 11) ^^^ (d24 >>> 25)) +% (d22 ^^^ (d24 &&& (d23 ^^^ d22))) +% 2554220882L +% w24 in
  let xd25 = h21 +% t24 in
  let d25 = (xd25 &&& m32) ||| (xd25 <<< 32) in
  let xh25 = t24 +% ((h24 >>> 2) ^^^ (h24 >>> 13) ^^^ (h24 >>> 22)) +% ((h24 &&& h23) ||| (h22 &&& (h24 ||| h23))) in
  let h25 = (xh25 &&& m32) ||| (xh25 <<< 32) in
  let w25 = (dw9 >>> 32) +% ((dw10 >>> 7) ^^^ (dw10 >>> 18) ^^^ (dw10 >>> 35)) +% (dw18 >>> 32) +% ((dw23 >>> 17) ^^^ (dw23 >>> 19) ^^^ (dw23 >>> 42)) in
  let dw25 = (w25 &&& m32) ||| (w25 <<< 32) in
  let t25 = d22 +% ((d25 >>> 6) ^^^ (d25 >>> 11) ^^^ (d25 >>> 25)) +% (d23 ^^^ (d25 &&& (d24 ^^^ d23))) +% 2821834349L +% w25 in
  let xd26 = h22 +% t25 in
  let d26 = (xd26 &&& m32) ||| (xd26 <<< 32) in
  let xh26 = t25 +% ((h25 >>> 2) ^^^ (h25 >>> 13) ^^^ (h25 >>> 22)) +% ((h25 &&& h24) ||| (h23 &&& (h25 ||| h24))) in
  let h26 = (xh26 &&& m32) ||| (xh26 <<< 32) in
  let w26 = (dw10 >>> 32) +% ((dw11 >>> 7) ^^^ (dw11 >>> 18) ^^^ (dw11 >>> 35)) +% (dw19 >>> 32) +% ((dw24 >>> 17) ^^^ (dw24 >>> 19) ^^^ (dw24 >>> 42)) in
  let dw26 = (w26 &&& m32) ||| (w26 <<< 32) in
  let t26 = d23 +% ((d26 >>> 6) ^^^ (d26 >>> 11) ^^^ (d26 >>> 25)) +% (d24 ^^^ (d26 &&& (d25 ^^^ d24))) +% 2952996808L +% w26 in
  let xd27 = h23 +% t26 in
  let d27 = (xd27 &&& m32) ||| (xd27 <<< 32) in
  let xh27 = t26 +% ((h26 >>> 2) ^^^ (h26 >>> 13) ^^^ (h26 >>> 22)) +% ((h26 &&& h25) ||| (h24 &&& (h26 ||| h25))) in
  let h27 = (xh27 &&& m32) ||| (xh27 <<< 32) in
  let w27 = (dw11 >>> 32) +% ((dw12 >>> 7) ^^^ (dw12 >>> 18) ^^^ (dw12 >>> 35)) +% (dw20 >>> 32) +% ((dw25 >>> 17) ^^^ (dw25 >>> 19) ^^^ (dw25 >>> 42)) in
  let dw27 = (w27 &&& m32) ||| (w27 <<< 32) in
  let t27 = d24 +% ((d27 >>> 6) ^^^ (d27 >>> 11) ^^^ (d27 >>> 25)) +% (d25 ^^^ (d27 &&& (d26 ^^^ d25))) +% 3210313671L +% w27 in
  let xd28 = h24 +% t27 in
  let d28 = (xd28 &&& m32) ||| (xd28 <<< 32) in
  let xh28 = t27 +% ((h27 >>> 2) ^^^ (h27 >>> 13) ^^^ (h27 >>> 22)) +% ((h27 &&& h26) ||| (h25 &&& (h27 ||| h26))) in
  let h28 = (xh28 &&& m32) ||| (xh28 <<< 32) in
  let w28 = (dw12 >>> 32) +% ((dw13 >>> 7) ^^^ (dw13 >>> 18) ^^^ (dw13 >>> 35)) +% (dw21 >>> 32) +% ((dw26 >>> 17) ^^^ (dw26 >>> 19) ^^^ (dw26 >>> 42)) in
  let dw28 = (w28 &&& m32) ||| (w28 <<< 32) in
  let t28 = d25 +% ((d28 >>> 6) ^^^ (d28 >>> 11) ^^^ (d28 >>> 25)) +% (d26 ^^^ (d28 &&& (d27 ^^^ d26))) +% 3336571891L +% w28 in
  let xd29 = h25 +% t28 in
  let d29 = (xd29 &&& m32) ||| (xd29 <<< 32) in
  let xh29 = t28 +% ((h28 >>> 2) ^^^ (h28 >>> 13) ^^^ (h28 >>> 22)) +% ((h28 &&& h27) ||| (h26 &&& (h28 ||| h27))) in
  let h29 = (xh29 &&& m32) ||| (xh29 <<< 32) in
  let w29 = (dw13 >>> 32) +% ((dw14 >>> 7) ^^^ (dw14 >>> 18) ^^^ (dw14 >>> 35)) +% (dw22 >>> 32) +% ((dw27 >>> 17) ^^^ (dw27 >>> 19) ^^^ (dw27 >>> 42)) in
  let dw29 = (w29 &&& m32) ||| (w29 <<< 32) in
  let t29 = d26 +% ((d29 >>> 6) ^^^ (d29 >>> 11) ^^^ (d29 >>> 25)) +% (d27 ^^^ (d29 &&& (d28 ^^^ d27))) +% 3584528711L +% w29 in
  let xd30 = h26 +% t29 in
  let d30 = (xd30 &&& m32) ||| (xd30 <<< 32) in
  let xh30 = t29 +% ((h29 >>> 2) ^^^ (h29 >>> 13) ^^^ (h29 >>> 22)) +% ((h29 &&& h28) ||| (h27 &&& (h29 ||| h28))) in
  let h30 = (xh30 &&& m32) ||| (xh30 <<< 32) in
  let w30 = (dw14 >>> 32) +% ((dw15 >>> 7) ^^^ (dw15 >>> 18) ^^^ (dw15 >>> 35)) +% (dw23 >>> 32) +% ((dw28 >>> 17) ^^^ (dw28 >>> 19) ^^^ (dw28 >>> 42)) in
  let dw30 = (w30 &&& m32) ||| (w30 <<< 32) in
  let t30 = d27 +% ((d30 >>> 6) ^^^ (d30 >>> 11) ^^^ (d30 >>> 25)) +% (d28 ^^^ (d30 &&& (d29 ^^^ d28))) +% 113926993L +% w30 in
  let xd31 = h27 +% t30 in
  let d31 = (xd31 &&& m32) ||| (xd31 <<< 32) in
  let xh31 = t30 +% ((h30 >>> 2) ^^^ (h30 >>> 13) ^^^ (h30 >>> 22)) +% ((h30 &&& h29) ||| (h28 &&& (h30 ||| h29))) in
  let h31 = (xh31 &&& m32) ||| (xh31 <<< 32) in
  let w31 = (dw15 >>> 32) +% ((dw16 >>> 7) ^^^ (dw16 >>> 18) ^^^ (dw16 >>> 35)) +% (dw24 >>> 32) +% ((dw29 >>> 17) ^^^ (dw29 >>> 19) ^^^ (dw29 >>> 42)) in
  let dw31 = (w31 &&& m32) ||| (w31 <<< 32) in
  let t31 = d28 +% ((d31 >>> 6) ^^^ (d31 >>> 11) ^^^ (d31 >>> 25)) +% (d29 ^^^ (d31 &&& (d30 ^^^ d29))) +% 338241895L +% w31 in
  let xd32 = h28 +% t31 in
  let d32 = (xd32 &&& m32) ||| (xd32 <<< 32) in
  let xh32 = t31 +% ((h31 >>> 2) ^^^ (h31 >>> 13) ^^^ (h31 >>> 22)) +% ((h31 &&& h30) ||| (h29 &&& (h31 ||| h30))) in
  let h32 = (xh32 &&& m32) ||| (xh32 <<< 32) in
  let w32 = (dw16 >>> 32) +% ((dw17 >>> 7) ^^^ (dw17 >>> 18) ^^^ (dw17 >>> 35)) +% (dw25 >>> 32) +% ((dw30 >>> 17) ^^^ (dw30 >>> 19) ^^^ (dw30 >>> 42)) in
  let dw32 = (w32 &&& m32) ||| (w32 <<< 32) in
  let t32 = d29 +% ((d32 >>> 6) ^^^ (d32 >>> 11) ^^^ (d32 >>> 25)) +% (d30 ^^^ (d32 &&& (d31 ^^^ d30))) +% 666307205L +% w32 in
  let xd33 = h29 +% t32 in
  let d33 = (xd33 &&& m32) ||| (xd33 <<< 32) in
  let xh33 = t32 +% ((h32 >>> 2) ^^^ (h32 >>> 13) ^^^ (h32 >>> 22)) +% ((h32 &&& h31) ||| (h30 &&& (h32 ||| h31))) in
  let h33 = (xh33 &&& m32) ||| (xh33 <<< 32) in
  let w33 = (dw17 >>> 32) +% ((dw18 >>> 7) ^^^ (dw18 >>> 18) ^^^ (dw18 >>> 35)) +% (dw26 >>> 32) +% ((dw31 >>> 17) ^^^ (dw31 >>> 19) ^^^ (dw31 >>> 42)) in
  let dw33 = (w33 &&& m32) ||| (w33 <<< 32) in
  let t33 = d30 +% ((d33 >>> 6) ^^^ (d33 >>> 11) ^^^ (d33 >>> 25)) +% (d31 ^^^ (d33 &&& (d32 ^^^ d31))) +% 773529912L +% w33 in
  let xd34 = h30 +% t33 in
  let d34 = (xd34 &&& m32) ||| (xd34 <<< 32) in
  let xh34 = t33 +% ((h33 >>> 2) ^^^ (h33 >>> 13) ^^^ (h33 >>> 22)) +% ((h33 &&& h32) ||| (h31 &&& (h33 ||| h32))) in
  let h34 = (xh34 &&& m32) ||| (xh34 <<< 32) in
  let w34 = (dw18 >>> 32) +% ((dw19 >>> 7) ^^^ (dw19 >>> 18) ^^^ (dw19 >>> 35)) +% (dw27 >>> 32) +% ((dw32 >>> 17) ^^^ (dw32 >>> 19) ^^^ (dw32 >>> 42)) in
  let dw34 = (w34 &&& m32) ||| (w34 <<< 32) in
  let t34 = d31 +% ((d34 >>> 6) ^^^ (d34 >>> 11) ^^^ (d34 >>> 25)) +% (d32 ^^^ (d34 &&& (d33 ^^^ d32))) +% 1294757372L +% w34 in
  let xd35 = h31 +% t34 in
  let d35 = (xd35 &&& m32) ||| (xd35 <<< 32) in
  let xh35 = t34 +% ((h34 >>> 2) ^^^ (h34 >>> 13) ^^^ (h34 >>> 22)) +% ((h34 &&& h33) ||| (h32 &&& (h34 ||| h33))) in
  let h35 = (xh35 &&& m32) ||| (xh35 <<< 32) in
  let w35 = (dw19 >>> 32) +% ((dw20 >>> 7) ^^^ (dw20 >>> 18) ^^^ (dw20 >>> 35)) +% (dw28 >>> 32) +% ((dw33 >>> 17) ^^^ (dw33 >>> 19) ^^^ (dw33 >>> 42)) in
  let dw35 = (w35 &&& m32) ||| (w35 <<< 32) in
  let t35 = d32 +% ((d35 >>> 6) ^^^ (d35 >>> 11) ^^^ (d35 >>> 25)) +% (d33 ^^^ (d35 &&& (d34 ^^^ d33))) +% 1396182291L +% w35 in
  let xd36 = h32 +% t35 in
  let d36 = (xd36 &&& m32) ||| (xd36 <<< 32) in
  let xh36 = t35 +% ((h35 >>> 2) ^^^ (h35 >>> 13) ^^^ (h35 >>> 22)) +% ((h35 &&& h34) ||| (h33 &&& (h35 ||| h34))) in
  let h36 = (xh36 &&& m32) ||| (xh36 <<< 32) in
  let w36 = (dw20 >>> 32) +% ((dw21 >>> 7) ^^^ (dw21 >>> 18) ^^^ (dw21 >>> 35)) +% (dw29 >>> 32) +% ((dw34 >>> 17) ^^^ (dw34 >>> 19) ^^^ (dw34 >>> 42)) in
  let dw36 = (w36 &&& m32) ||| (w36 <<< 32) in
  let t36 = d33 +% ((d36 >>> 6) ^^^ (d36 >>> 11) ^^^ (d36 >>> 25)) +% (d34 ^^^ (d36 &&& (d35 ^^^ d34))) +% 1695183700L +% w36 in
  let xd37 = h33 +% t36 in
  let d37 = (xd37 &&& m32) ||| (xd37 <<< 32) in
  let xh37 = t36 +% ((h36 >>> 2) ^^^ (h36 >>> 13) ^^^ (h36 >>> 22)) +% ((h36 &&& h35) ||| (h34 &&& (h36 ||| h35))) in
  let h37 = (xh37 &&& m32) ||| (xh37 <<< 32) in
  let w37 = (dw21 >>> 32) +% ((dw22 >>> 7) ^^^ (dw22 >>> 18) ^^^ (dw22 >>> 35)) +% (dw30 >>> 32) +% ((dw35 >>> 17) ^^^ (dw35 >>> 19) ^^^ (dw35 >>> 42)) in
  let dw37 = (w37 &&& m32) ||| (w37 <<< 32) in
  let t37 = d34 +% ((d37 >>> 6) ^^^ (d37 >>> 11) ^^^ (d37 >>> 25)) +% (d35 ^^^ (d37 &&& (d36 ^^^ d35))) +% 1986661051L +% w37 in
  let xd38 = h34 +% t37 in
  let d38 = (xd38 &&& m32) ||| (xd38 <<< 32) in
  let xh38 = t37 +% ((h37 >>> 2) ^^^ (h37 >>> 13) ^^^ (h37 >>> 22)) +% ((h37 &&& h36) ||| (h35 &&& (h37 ||| h36))) in
  let h38 = (xh38 &&& m32) ||| (xh38 <<< 32) in
  let w38 = (dw22 >>> 32) +% ((dw23 >>> 7) ^^^ (dw23 >>> 18) ^^^ (dw23 >>> 35)) +% (dw31 >>> 32) +% ((dw36 >>> 17) ^^^ (dw36 >>> 19) ^^^ (dw36 >>> 42)) in
  let dw38 = (w38 &&& m32) ||| (w38 <<< 32) in
  let t38 = d35 +% ((d38 >>> 6) ^^^ (d38 >>> 11) ^^^ (d38 >>> 25)) +% (d36 ^^^ (d38 &&& (d37 ^^^ d36))) +% 2177026350L +% w38 in
  let xd39 = h35 +% t38 in
  let d39 = (xd39 &&& m32) ||| (xd39 <<< 32) in
  let xh39 = t38 +% ((h38 >>> 2) ^^^ (h38 >>> 13) ^^^ (h38 >>> 22)) +% ((h38 &&& h37) ||| (h36 &&& (h38 ||| h37))) in
  let h39 = (xh39 &&& m32) ||| (xh39 <<< 32) in
  let w39 = (dw23 >>> 32) +% ((dw24 >>> 7) ^^^ (dw24 >>> 18) ^^^ (dw24 >>> 35)) +% (dw32 >>> 32) +% ((dw37 >>> 17) ^^^ (dw37 >>> 19) ^^^ (dw37 >>> 42)) in
  let dw39 = (w39 &&& m32) ||| (w39 <<< 32) in
  let t39 = d36 +% ((d39 >>> 6) ^^^ (d39 >>> 11) ^^^ (d39 >>> 25)) +% (d37 ^^^ (d39 &&& (d38 ^^^ d37))) +% 2456956037L +% w39 in
  let xd40 = h36 +% t39 in
  let d40 = (xd40 &&& m32) ||| (xd40 <<< 32) in
  let xh40 = t39 +% ((h39 >>> 2) ^^^ (h39 >>> 13) ^^^ (h39 >>> 22)) +% ((h39 &&& h38) ||| (h37 &&& (h39 ||| h38))) in
  let h40 = (xh40 &&& m32) ||| (xh40 <<< 32) in
  let w40 = (dw24 >>> 32) +% ((dw25 >>> 7) ^^^ (dw25 >>> 18) ^^^ (dw25 >>> 35)) +% (dw33 >>> 32) +% ((dw38 >>> 17) ^^^ (dw38 >>> 19) ^^^ (dw38 >>> 42)) in
  let dw40 = (w40 &&& m32) ||| (w40 <<< 32) in
  let t40 = d37 +% ((d40 >>> 6) ^^^ (d40 >>> 11) ^^^ (d40 >>> 25)) +% (d38 ^^^ (d40 &&& (d39 ^^^ d38))) +% 2730485921L +% w40 in
  let xd41 = h37 +% t40 in
  let d41 = (xd41 &&& m32) ||| (xd41 <<< 32) in
  let xh41 = t40 +% ((h40 >>> 2) ^^^ (h40 >>> 13) ^^^ (h40 >>> 22)) +% ((h40 &&& h39) ||| (h38 &&& (h40 ||| h39))) in
  let h41 = (xh41 &&& m32) ||| (xh41 <<< 32) in
  let w41 = (dw25 >>> 32) +% ((dw26 >>> 7) ^^^ (dw26 >>> 18) ^^^ (dw26 >>> 35)) +% (dw34 >>> 32) +% ((dw39 >>> 17) ^^^ (dw39 >>> 19) ^^^ (dw39 >>> 42)) in
  let dw41 = (w41 &&& m32) ||| (w41 <<< 32) in
  let t41 = d38 +% ((d41 >>> 6) ^^^ (d41 >>> 11) ^^^ (d41 >>> 25)) +% (d39 ^^^ (d41 &&& (d40 ^^^ d39))) +% 2820302411L +% w41 in
  let xd42 = h38 +% t41 in
  let d42 = (xd42 &&& m32) ||| (xd42 <<< 32) in
  let xh42 = t41 +% ((h41 >>> 2) ^^^ (h41 >>> 13) ^^^ (h41 >>> 22)) +% ((h41 &&& h40) ||| (h39 &&& (h41 ||| h40))) in
  let h42 = (xh42 &&& m32) ||| (xh42 <<< 32) in
  let w42 = (dw26 >>> 32) +% ((dw27 >>> 7) ^^^ (dw27 >>> 18) ^^^ (dw27 >>> 35)) +% (dw35 >>> 32) +% ((dw40 >>> 17) ^^^ (dw40 >>> 19) ^^^ (dw40 >>> 42)) in
  let dw42 = (w42 &&& m32) ||| (w42 <<< 32) in
  let t42 = d39 +% ((d42 >>> 6) ^^^ (d42 >>> 11) ^^^ (d42 >>> 25)) +% (d40 ^^^ (d42 &&& (d41 ^^^ d40))) +% 3259730800L +% w42 in
  let xd43 = h39 +% t42 in
  let d43 = (xd43 &&& m32) ||| (xd43 <<< 32) in
  let xh43 = t42 +% ((h42 >>> 2) ^^^ (h42 >>> 13) ^^^ (h42 >>> 22)) +% ((h42 &&& h41) ||| (h40 &&& (h42 ||| h41))) in
  let h43 = (xh43 &&& m32) ||| (xh43 <<< 32) in
  let w43 = (dw27 >>> 32) +% ((dw28 >>> 7) ^^^ (dw28 >>> 18) ^^^ (dw28 >>> 35)) +% (dw36 >>> 32) +% ((dw41 >>> 17) ^^^ (dw41 >>> 19) ^^^ (dw41 >>> 42)) in
  let dw43 = (w43 &&& m32) ||| (w43 <<< 32) in
  let t43 = d40 +% ((d43 >>> 6) ^^^ (d43 >>> 11) ^^^ (d43 >>> 25)) +% (d41 ^^^ (d43 &&& (d42 ^^^ d41))) +% 3345764771L +% w43 in
  let xd44 = h40 +% t43 in
  let d44 = (xd44 &&& m32) ||| (xd44 <<< 32) in
  let xh44 = t43 +% ((h43 >>> 2) ^^^ (h43 >>> 13) ^^^ (h43 >>> 22)) +% ((h43 &&& h42) ||| (h41 &&& (h43 ||| h42))) in
  let h44 = (xh44 &&& m32) ||| (xh44 <<< 32) in
  let w44 = (dw28 >>> 32) +% ((dw29 >>> 7) ^^^ (dw29 >>> 18) ^^^ (dw29 >>> 35)) +% (dw37 >>> 32) +% ((dw42 >>> 17) ^^^ (dw42 >>> 19) ^^^ (dw42 >>> 42)) in
  let dw44 = (w44 &&& m32) ||| (w44 <<< 32) in
  let t44 = d41 +% ((d44 >>> 6) ^^^ (d44 >>> 11) ^^^ (d44 >>> 25)) +% (d42 ^^^ (d44 &&& (d43 ^^^ d42))) +% 3516065817L +% w44 in
  let xd45 = h41 +% t44 in
  let d45 = (xd45 &&& m32) ||| (xd45 <<< 32) in
  let xh45 = t44 +% ((h44 >>> 2) ^^^ (h44 >>> 13) ^^^ (h44 >>> 22)) +% ((h44 &&& h43) ||| (h42 &&& (h44 ||| h43))) in
  let h45 = (xh45 &&& m32) ||| (xh45 <<< 32) in
  let w45 = (dw29 >>> 32) +% ((dw30 >>> 7) ^^^ (dw30 >>> 18) ^^^ (dw30 >>> 35)) +% (dw38 >>> 32) +% ((dw43 >>> 17) ^^^ (dw43 >>> 19) ^^^ (dw43 >>> 42)) in
  let dw45 = (w45 &&& m32) ||| (w45 <<< 32) in
  let t45 = d42 +% ((d45 >>> 6) ^^^ (d45 >>> 11) ^^^ (d45 >>> 25)) +% (d43 ^^^ (d45 &&& (d44 ^^^ d43))) +% 3600352804L +% w45 in
  let xd46 = h42 +% t45 in
  let d46 = (xd46 &&& m32) ||| (xd46 <<< 32) in
  let xh46 = t45 +% ((h45 >>> 2) ^^^ (h45 >>> 13) ^^^ (h45 >>> 22)) +% ((h45 &&& h44) ||| (h43 &&& (h45 ||| h44))) in
  let h46 = (xh46 &&& m32) ||| (xh46 <<< 32) in
  let w46 = (dw30 >>> 32) +% ((dw31 >>> 7) ^^^ (dw31 >>> 18) ^^^ (dw31 >>> 35)) +% (dw39 >>> 32) +% ((dw44 >>> 17) ^^^ (dw44 >>> 19) ^^^ (dw44 >>> 42)) in
  let dw46 = (w46 &&& m32) ||| (w46 <<< 32) in
  let t46 = d43 +% ((d46 >>> 6) ^^^ (d46 >>> 11) ^^^ (d46 >>> 25)) +% (d44 ^^^ (d46 &&& (d45 ^^^ d44))) +% 4094571909L +% w46 in
  let xd47 = h43 +% t46 in
  let d47 = (xd47 &&& m32) ||| (xd47 <<< 32) in
  let xh47 = t46 +% ((h46 >>> 2) ^^^ (h46 >>> 13) ^^^ (h46 >>> 22)) +% ((h46 &&& h45) ||| (h44 &&& (h46 ||| h45))) in
  let h47 = (xh47 &&& m32) ||| (xh47 <<< 32) in
  let w47 = (dw31 >>> 32) +% ((dw32 >>> 7) ^^^ (dw32 >>> 18) ^^^ (dw32 >>> 35)) +% (dw40 >>> 32) +% ((dw45 >>> 17) ^^^ (dw45 >>> 19) ^^^ (dw45 >>> 42)) in
  let dw47 = (w47 &&& m32) ||| (w47 <<< 32) in
  let t47 = d44 +% ((d47 >>> 6) ^^^ (d47 >>> 11) ^^^ (d47 >>> 25)) +% (d45 ^^^ (d47 &&& (d46 ^^^ d45))) +% 275423344L +% w47 in
  let xd48 = h44 +% t47 in
  let d48 = (xd48 &&& m32) ||| (xd48 <<< 32) in
  let xh48 = t47 +% ((h47 >>> 2) ^^^ (h47 >>> 13) ^^^ (h47 >>> 22)) +% ((h47 &&& h46) ||| (h45 &&& (h47 ||| h46))) in
  let h48 = (xh48 &&& m32) ||| (xh48 <<< 32) in
  let w48 = (dw32 >>> 32) +% ((dw33 >>> 7) ^^^ (dw33 >>> 18) ^^^ (dw33 >>> 35)) +% (dw41 >>> 32) +% ((dw46 >>> 17) ^^^ (dw46 >>> 19) ^^^ (dw46 >>> 42)) in
  let dw48 = (w48 &&& m32) ||| (w48 <<< 32) in
  let t48 = d45 +% ((d48 >>> 6) ^^^ (d48 >>> 11) ^^^ (d48 >>> 25)) +% (d46 ^^^ (d48 &&& (d47 ^^^ d46))) +% 430227734L +% w48 in
  let xd49 = h45 +% t48 in
  let d49 = (xd49 &&& m32) ||| (xd49 <<< 32) in
  let xh49 = t48 +% ((h48 >>> 2) ^^^ (h48 >>> 13) ^^^ (h48 >>> 22)) +% ((h48 &&& h47) ||| (h46 &&& (h48 ||| h47))) in
  let h49 = (xh49 &&& m32) ||| (xh49 <<< 32) in
  let w49 = (dw33 >>> 32) +% ((dw34 >>> 7) ^^^ (dw34 >>> 18) ^^^ (dw34 >>> 35)) +% (dw42 >>> 32) +% ((dw47 >>> 17) ^^^ (dw47 >>> 19) ^^^ (dw47 >>> 42)) in
  let dw49 = (w49 &&& m32) ||| (w49 <<< 32) in
  let t49 = d46 +% ((d49 >>> 6) ^^^ (d49 >>> 11) ^^^ (d49 >>> 25)) +% (d47 ^^^ (d49 &&& (d48 ^^^ d47))) +% 506948616L +% w49 in
  let xd50 = h46 +% t49 in
  let d50 = (xd50 &&& m32) ||| (xd50 <<< 32) in
  let xh50 = t49 +% ((h49 >>> 2) ^^^ (h49 >>> 13) ^^^ (h49 >>> 22)) +% ((h49 &&& h48) ||| (h47 &&& (h49 ||| h48))) in
  let h50 = (xh50 &&& m32) ||| (xh50 <<< 32) in
  let w50 = (dw34 >>> 32) +% ((dw35 >>> 7) ^^^ (dw35 >>> 18) ^^^ (dw35 >>> 35)) +% (dw43 >>> 32) +% ((dw48 >>> 17) ^^^ (dw48 >>> 19) ^^^ (dw48 >>> 42)) in
  let dw50 = (w50 &&& m32) ||| (w50 <<< 32) in
  let t50 = d47 +% ((d50 >>> 6) ^^^ (d50 >>> 11) ^^^ (d50 >>> 25)) +% (d48 ^^^ (d50 &&& (d49 ^^^ d48))) +% 659060556L +% w50 in
  let xd51 = h47 +% t50 in
  let d51 = (xd51 &&& m32) ||| (xd51 <<< 32) in
  let xh51 = t50 +% ((h50 >>> 2) ^^^ (h50 >>> 13) ^^^ (h50 >>> 22)) +% ((h50 &&& h49) ||| (h48 &&& (h50 ||| h49))) in
  let h51 = (xh51 &&& m32) ||| (xh51 <<< 32) in
  let w51 = (dw35 >>> 32) +% ((dw36 >>> 7) ^^^ (dw36 >>> 18) ^^^ (dw36 >>> 35)) +% (dw44 >>> 32) +% ((dw49 >>> 17) ^^^ (dw49 >>> 19) ^^^ (dw49 >>> 42)) in
  let dw51 = (w51 &&& m32) ||| (w51 <<< 32) in
  let t51 = d48 +% ((d51 >>> 6) ^^^ (d51 >>> 11) ^^^ (d51 >>> 25)) +% (d49 ^^^ (d51 &&& (d50 ^^^ d49))) +% 883997877L +% w51 in
  let xd52 = h48 +% t51 in
  let d52 = (xd52 &&& m32) ||| (xd52 <<< 32) in
  let xh52 = t51 +% ((h51 >>> 2) ^^^ (h51 >>> 13) ^^^ (h51 >>> 22)) +% ((h51 &&& h50) ||| (h49 &&& (h51 ||| h50))) in
  let h52 = (xh52 &&& m32) ||| (xh52 <<< 32) in
  let w52 = (dw36 >>> 32) +% ((dw37 >>> 7) ^^^ (dw37 >>> 18) ^^^ (dw37 >>> 35)) +% (dw45 >>> 32) +% ((dw50 >>> 17) ^^^ (dw50 >>> 19) ^^^ (dw50 >>> 42)) in
  let dw52 = (w52 &&& m32) ||| (w52 <<< 32) in
  let t52 = d49 +% ((d52 >>> 6) ^^^ (d52 >>> 11) ^^^ (d52 >>> 25)) +% (d50 ^^^ (d52 &&& (d51 ^^^ d50))) +% 958139571L +% w52 in
  let xd53 = h49 +% t52 in
  let d53 = (xd53 &&& m32) ||| (xd53 <<< 32) in
  let xh53 = t52 +% ((h52 >>> 2) ^^^ (h52 >>> 13) ^^^ (h52 >>> 22)) +% ((h52 &&& h51) ||| (h50 &&& (h52 ||| h51))) in
  let h53 = (xh53 &&& m32) ||| (xh53 <<< 32) in
  let w53 = (dw37 >>> 32) +% ((dw38 >>> 7) ^^^ (dw38 >>> 18) ^^^ (dw38 >>> 35)) +% (dw46 >>> 32) +% ((dw51 >>> 17) ^^^ (dw51 >>> 19) ^^^ (dw51 >>> 42)) in
  let dw53 = (w53 &&& m32) ||| (w53 <<< 32) in
  let t53 = d50 +% ((d53 >>> 6) ^^^ (d53 >>> 11) ^^^ (d53 >>> 25)) +% (d51 ^^^ (d53 &&& (d52 ^^^ d51))) +% 1322822218L +% w53 in
  let xd54 = h50 +% t53 in
  let d54 = (xd54 &&& m32) ||| (xd54 <<< 32) in
  let xh54 = t53 +% ((h53 >>> 2) ^^^ (h53 >>> 13) ^^^ (h53 >>> 22)) +% ((h53 &&& h52) ||| (h51 &&& (h53 ||| h52))) in
  let h54 = (xh54 &&& m32) ||| (xh54 <<< 32) in
  let w54 = (dw38 >>> 32) +% ((dw39 >>> 7) ^^^ (dw39 >>> 18) ^^^ (dw39 >>> 35)) +% (dw47 >>> 32) +% ((dw52 >>> 17) ^^^ (dw52 >>> 19) ^^^ (dw52 >>> 42)) in
  let dw54 = (w54 &&& m32) ||| (w54 <<< 32) in
  let t54 = d51 +% ((d54 >>> 6) ^^^ (d54 >>> 11) ^^^ (d54 >>> 25)) +% (d52 ^^^ (d54 &&& (d53 ^^^ d52))) +% 1537002063L +% w54 in
  let xd55 = h51 +% t54 in
  let d55 = (xd55 &&& m32) ||| (xd55 <<< 32) in
  let xh55 = t54 +% ((h54 >>> 2) ^^^ (h54 >>> 13) ^^^ (h54 >>> 22)) +% ((h54 &&& h53) ||| (h52 &&& (h54 ||| h53))) in
  let h55 = (xh55 &&& m32) ||| (xh55 <<< 32) in
  let w55 = (dw39 >>> 32) +% ((dw40 >>> 7) ^^^ (dw40 >>> 18) ^^^ (dw40 >>> 35)) +% (dw48 >>> 32) +% ((dw53 >>> 17) ^^^ (dw53 >>> 19) ^^^ (dw53 >>> 42)) in
  let dw55 = (w55 &&& m32) ||| (w55 <<< 32) in
  let t55 = d52 +% ((d55 >>> 6) ^^^ (d55 >>> 11) ^^^ (d55 >>> 25)) +% (d53 ^^^ (d55 &&& (d54 ^^^ d53))) +% 1747873779L +% w55 in
  let xd56 = h52 +% t55 in
  let d56 = (xd56 &&& m32) ||| (xd56 <<< 32) in
  let xh56 = t55 +% ((h55 >>> 2) ^^^ (h55 >>> 13) ^^^ (h55 >>> 22)) +% ((h55 &&& h54) ||| (h53 &&& (h55 ||| h54))) in
  let h56 = (xh56 &&& m32) ||| (xh56 <<< 32) in
  let w56 = (dw40 >>> 32) +% ((dw41 >>> 7) ^^^ (dw41 >>> 18) ^^^ (dw41 >>> 35)) +% (dw49 >>> 32) +% ((dw54 >>> 17) ^^^ (dw54 >>> 19) ^^^ (dw54 >>> 42)) in
  let dw56 = (w56 &&& m32) ||| (w56 <<< 32) in
  let t56 = d53 +% ((d56 >>> 6) ^^^ (d56 >>> 11) ^^^ (d56 >>> 25)) +% (d54 ^^^ (d56 &&& (d55 ^^^ d54))) +% 1955562222L +% w56 in
  let xd57 = h53 +% t56 in
  let d57 = (xd57 &&& m32) ||| (xd57 <<< 32) in
  let xh57 = t56 +% ((h56 >>> 2) ^^^ (h56 >>> 13) ^^^ (h56 >>> 22)) +% ((h56 &&& h55) ||| (h54 &&& (h56 ||| h55))) in
  let h57 = (xh57 &&& m32) ||| (xh57 <<< 32) in
  let w57 = (dw41 >>> 32) +% ((dw42 >>> 7) ^^^ (dw42 >>> 18) ^^^ (dw42 >>> 35)) +% (dw50 >>> 32) +% ((dw55 >>> 17) ^^^ (dw55 >>> 19) ^^^ (dw55 >>> 42)) in
  let dw57 = (w57 &&& m32) ||| (w57 <<< 32) in
  let t57 = d54 +% ((d57 >>> 6) ^^^ (d57 >>> 11) ^^^ (d57 >>> 25)) +% (d55 ^^^ (d57 &&& (d56 ^^^ d55))) +% 2024104815L +% w57 in
  let xd58 = h54 +% t57 in
  let d58 = (xd58 &&& m32) ||| (xd58 <<< 32) in
  let xh58 = t57 +% ((h57 >>> 2) ^^^ (h57 >>> 13) ^^^ (h57 >>> 22)) +% ((h57 &&& h56) ||| (h55 &&& (h57 ||| h56))) in
  let h58 = (xh58 &&& m32) ||| (xh58 <<< 32) in
  let w58 = (dw42 >>> 32) +% ((dw43 >>> 7) ^^^ (dw43 >>> 18) ^^^ (dw43 >>> 35)) +% (dw51 >>> 32) +% ((dw56 >>> 17) ^^^ (dw56 >>> 19) ^^^ (dw56 >>> 42)) in
  let dw58 = (w58 &&& m32) ||| (w58 <<< 32) in
  let t58 = d55 +% ((d58 >>> 6) ^^^ (d58 >>> 11) ^^^ (d58 >>> 25)) +% (d56 ^^^ (d58 &&& (d57 ^^^ d56))) +% 2227730452L +% w58 in
  let xd59 = h55 +% t58 in
  let d59 = (xd59 &&& m32) ||| (xd59 <<< 32) in
  let xh59 = t58 +% ((h58 >>> 2) ^^^ (h58 >>> 13) ^^^ (h58 >>> 22)) +% ((h58 &&& h57) ||| (h56 &&& (h58 ||| h57))) in
  let h59 = (xh59 &&& m32) ||| (xh59 <<< 32) in
  let w59 = (dw43 >>> 32) +% ((dw44 >>> 7) ^^^ (dw44 >>> 18) ^^^ (dw44 >>> 35)) +% (dw52 >>> 32) +% ((dw57 >>> 17) ^^^ (dw57 >>> 19) ^^^ (dw57 >>> 42)) in
  let dw59 = (w59 &&& m32) ||| (w59 <<< 32) in
  let t59 = d56 +% ((d59 >>> 6) ^^^ (d59 >>> 11) ^^^ (d59 >>> 25)) +% (d57 ^^^ (d59 &&& (d58 ^^^ d57))) +% 2361852424L +% w59 in
  let xd60 = h56 +% t59 in
  let d60 = (xd60 &&& m32) ||| (xd60 <<< 32) in
  let xh60 = t59 +% ((h59 >>> 2) ^^^ (h59 >>> 13) ^^^ (h59 >>> 22)) +% ((h59 &&& h58) ||| (h57 &&& (h59 ||| h58))) in
  let h60 = (xh60 &&& m32) ||| (xh60 <<< 32) in
  let w60 = (dw44 >>> 32) +% ((dw45 >>> 7) ^^^ (dw45 >>> 18) ^^^ (dw45 >>> 35)) +% (dw53 >>> 32) +% ((dw58 >>> 17) ^^^ (dw58 >>> 19) ^^^ (dw58 >>> 42)) in
  let dw60 = (w60 &&& m32) ||| (w60 <<< 32) in
  let t60 = d57 +% ((d60 >>> 6) ^^^ (d60 >>> 11) ^^^ (d60 >>> 25)) +% (d58 ^^^ (d60 &&& (d59 ^^^ d58))) +% 2428436474L +% w60 in
  let xd61 = h57 +% t60 in
  let d61 = (xd61 &&& m32) ||| (xd61 <<< 32) in
  let xh61 = t60 +% ((h60 >>> 2) ^^^ (h60 >>> 13) ^^^ (h60 >>> 22)) +% ((h60 &&& h59) ||| (h58 &&& (h60 ||| h59))) in
  let h61 = (xh61 &&& m32) ||| (xh61 <<< 32) in
  let w61 = (dw45 >>> 32) +% ((dw46 >>> 7) ^^^ (dw46 >>> 18) ^^^ (dw46 >>> 35)) +% (dw54 >>> 32) +% ((dw59 >>> 17) ^^^ (dw59 >>> 19) ^^^ (dw59 >>> 42)) in
  let dw61 = (w61 &&& m32) ||| (w61 <<< 32) in
  let t61 = d58 +% ((d61 >>> 6) ^^^ (d61 >>> 11) ^^^ (d61 >>> 25)) +% (d59 ^^^ (d61 &&& (d60 ^^^ d59))) +% 2756734187L +% w61 in
  let xd62 = h58 +% t61 in
  let d62 = (xd62 &&& m32) ||| (xd62 <<< 32) in
  let xh62 = t61 +% ((h61 >>> 2) ^^^ (h61 >>> 13) ^^^ (h61 >>> 22)) +% ((h61 &&& h60) ||| (h59 &&& (h61 ||| h60))) in
  let h62 = (xh62 &&& m32) ||| (xh62 <<< 32) in
  let w62 = (dw46 >>> 32) +% ((dw47 >>> 7) ^^^ (dw47 >>> 18) ^^^ (dw47 >>> 35)) +% (dw55 >>> 32) +% ((dw60 >>> 17) ^^^ (dw60 >>> 19) ^^^ (dw60 >>> 42)) in
  let t62 = d59 +% ((d62 >>> 6) ^^^ (d62 >>> 11) ^^^ (d62 >>> 25)) +% (d60 ^^^ (d62 &&& (d61 ^^^ d60))) +% 3204031479L +% w62 in
  let xd63 = h59 +% t62 in
  let d63 = (xd63 &&& m32) ||| (xd63 <<< 32) in
  let xh63 = t62 +% ((h62 >>> 2) ^^^ (h62 >>> 13) ^^^ (h62 >>> 22)) +% ((h62 &&& h61) ||| (h60 &&& (h62 ||| h61))) in
  let h63 = (xh63 &&& m32) ||| (xh63 <<< 32) in
  let w63 = (dw47 >>> 32) +% ((dw48 >>> 7) ^^^ (dw48 >>> 18) ^^^ (dw48 >>> 35)) +% (dw56 >>> 32) +% ((dw61 >>> 17) ^^^ (dw61 >>> 19) ^^^ (dw61 >>> 42)) in
  let t63 = d60 +% ((d63 >>> 6) ^^^ (d63 >>> 11) ^^^ (d63 >>> 25)) +% (d61 ^^^ (d63 &&& (d62 ^^^ d61))) +% 3329325298L +% w63 in
  let xd64 = h60 +% t63 in
  let d64 = (xd64 &&& m32) ||| (xd64 <<< 32) in
  let xh64 = t63 +% ((h63 >>> 2) ^^^ (h63 >>> 13) ^^^ (h63 >>> 22)) +% ((h63 &&& h62) ||| (h61 &&& (h63 ||| h62))) in
  let h64 = (xh64 &&& m32) ||| (xh64 <<< 32) in
  Array.unsafe_set h 0 ((Array.unsafe_get h 0 + Int64.to_int (h64 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 1 ((Array.unsafe_get h 1 + Int64.to_int (h63 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 2 ((Array.unsafe_get h 2 + Int64.to_int (h62 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 3 ((Array.unsafe_get h 3 + Int64.to_int (h61 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 4 ((Array.unsafe_get h 4 + Int64.to_int (d64 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 5 ((Array.unsafe_get h 5 + Int64.to_int (d63 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 6 ((Array.unsafe_get h 6 + Int64.to_int (d62 &&& m32)) land 0xffffffff);
  Array.unsafe_set h 7 ((Array.unsafe_get h 7 + Int64.to_int (d61 &&& m32)) land 0xffffffff);
  ()
(* GENERATED-KERNEL-END *)

let compress ctx = compress_block ctx.h ctx.block 0

let update_bytes ctx b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.update_bytes";
  ctx.total <- ctx.total + len;
  let pos = ref pos and len = ref len in
  (* Top up a partially filled block first. *)
  if ctx.fill > 0 && !len > 0 then begin
    let n = min !len (64 - ctx.fill) in
    Bytes.blit b !pos ctx.block ctx.fill n;
    ctx.fill <- ctx.fill + n;
    pos := !pos + n;
    len := !len - n;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  end;
  (* Whole blocks stream straight from [b]; no copy into [ctx.block]. *)
  if ctx.fill = 0 then
    while !len >= 64 do
      compress_block ctx.h b !pos;
      pos := !pos + 64;
      len := !len - 64
    done;
  if !len > 0 then begin
    Bytes.blit b !pos ctx.block ctx.fill !len;
    ctx.fill <- ctx.fill + !len
  end

let update_sub ctx s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.update_sub";
  (* Sound: the kernel and [blit] only ever read from the buffer. *)
  update_bytes ctx (Bytes.unsafe_of_string s) ~pos ~len

let update ctx s = update_sub ctx s ~pos:0 ~len:(String.length s)

let update_char ctx c =
  ctx.total <- ctx.total + 1;
  Bytes.set ctx.block ctx.fill c;
  ctx.fill <- ctx.fill + 1;
  if ctx.fill = 64 then begin
    compress ctx;
    ctx.fill <- 0
  end

let finalize_into ctx out ~pos =
  if pos < 0 || pos + 32 > Bytes.length out then
    invalid_arg "Sha256.finalize_into";
  let bitlen = ctx.total * 8 in
  (* Padding: 0x80, zeros, then 64-bit big-endian bit length. *)
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\x00';
    compress ctx;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (56 - ctx.fill) '\x00';
  Bytes.set_int64_be ctx.block 56 (Int64.of_int bitlen);
  compress ctx;
  let h = ctx.h in
  for i = 0 to 7 do
    let x = h.(i) and o = pos + (i * 4) in
    Bytes.unsafe_set out o (Char.unsafe_chr (x lsr 24));
    Bytes.unsafe_set out (o + 1) (Char.unsafe_chr ((x lsr 16) land 0xff));
    Bytes.unsafe_set out (o + 2) (Char.unsafe_chr ((x lsr 8) land 0xff));
    Bytes.unsafe_set out (o + 3) (Char.unsafe_chr (x land 0xff))
  done

let finalize ctx =
  let out = Bytes.create 32 in
  finalize_into ctx out ~pos:0;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_strings ss =
  let ctx = init () in
  List.iter (update ctx) ss;
  finalize ctx
