type t = int

(* Standard reflected table for polynomial 0xEDB88320. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let empty = 0

let mask = 0xFFFFFFFF

let update_bytes_sub crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update_bytes_sub";
  let table = Lazy.force table in
  (* Keep the pre/post inversion out of the loop: work on the raw state. *)
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor mask

let update_sub crc s ~pos ~len =
  update_bytes_sub crc (Bytes.unsafe_of_string s) ~pos ~len

let string s = update_sub empty s ~pos:0 ~len:(String.length s)
