(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial).

    The integrity seal on append-only log records: cheap enough to pay on
    every append, strong enough that a torn or bit-damaged record fails
    verification with probability [1 - 2^-32].  Not a substitute for the
    content hash — chunks keep their SHA-256 identity; the CRC only
    decides "is this record physically intact" during recovery replay. *)

type t = int
(** A running CRC state, also the finished digest (low 32 bits). *)

val empty : t
(** The CRC of zero bytes. *)

val update_sub : t -> string -> pos:int -> len:int -> t
(** Fold [len] bytes of [s] starting at [pos] into the state.
    @raise Invalid_argument on an out-of-bounds range. *)

val update_bytes_sub : t -> Bytes.t -> pos:int -> len:int -> t
(** Same over a [Bytes.t] (no copy of the buffer being sealed). *)

val string : string -> t
(** One-shot digest of a whole string. *)
