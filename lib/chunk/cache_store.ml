module Hash = Fb_hash.Hash

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let lookups s = s.hits + s.misses

let hit_ratio s =
  let total = lookups s in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Classic LRU: hashtable to doubly-linked recency list.  All structure
   mutations (including the recency touch a read performs) run under a
   private mutex — concurrent read-only verbs in the network service
   share this cache, and an unlocked touch/evict pair can tear the
   linked list. *)
type node = {
  id : Hash.t;
  encoded : string;
  mutable prev : node option;
  mutable next : node option;
}

type lru = {
  capacity : int;
  lock : Mutex.t;
  tbl : node Hash.Tbl.t;
  mutable head : node option;  (* most recent *)
  mutable tail : node option;  (* least recent *)
  stats : cache_stats;
}

let unlink lru n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> lru.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> lru.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front lru n =
  n.next <- lru.head;
  n.prev <- None;
  (match lru.head with Some h -> h.prev <- Some n | None -> ());
  lru.head <- Some n;
  if lru.tail = None then lru.tail <- Some n

let touch lru n =
  if lru.head != Some n then begin
    unlink lru n;
    push_front lru n
  end

let evict_if_full lru =
  if Hash.Tbl.length lru.tbl > lru.capacity then
    match lru.tail with
    | None -> ()
    | Some n ->
      unlink lru n;
      Hash.Tbl.remove lru.tbl n.id;
      lru.stats.evictions <- lru.stats.evictions + 1

let remember lru id encoded =
  match Hash.Tbl.find_opt lru.tbl id with
  | Some n -> touch lru n
  | None ->
    let n = { id; encoded; prev = None; next = None } in
    Hash.Tbl.replace lru.tbl id n;
    push_front lru n;
    evict_if_full lru

let forget lru id =
  match Hash.Tbl.find_opt lru.tbl id with
  | None -> ()
  | Some n ->
    unlink lru n;
    Hash.Tbl.remove lru.tbl id

let wrap ~capacity (inner : Store.t) =
  if capacity < 1 then invalid_arg "Cache_store.wrap: capacity must be >= 1";
  let lru =
    { capacity;
      lock = Mutex.create ();
      tbl = Hash.Tbl.create (2 * capacity);
      head = None;
      tail = None;
      stats = { hits = 0; misses = 0; evictions = 0 } }
  in
  let get_raw id =
    let cached =
      Mutex.protect lru.lock (fun () ->
          match Hash.Tbl.find_opt lru.tbl id with
          | Some n ->
            lru.stats.hits <- lru.stats.hits + 1;
            touch lru n;
            Some n.encoded
          | None ->
            lru.stats.misses <- lru.stats.misses + 1;
            None)
    in
    match cached with
    | Some _ as hit -> hit
    | None ->
      (* The inner fetch (possibly a disk read) runs outside the lock. *)
      (match inner.Store.get_raw id with
       | None -> None
       | Some encoded ->
         Mutex.protect lru.lock (fun () -> remember lru id encoded);
         Some encoded)
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some encoded -> (
      match Chunk.decode encoded with Ok c -> Some c | Error _ -> None)
  in
  let put chunk =
    let id = inner.Store.put chunk in
    (* [Chunk.encode] is memoized on the chunk value, so this reuses the
       encoding the inner put produced instead of re-encoding. *)
    let encoded = Chunk.encode chunk in
    Mutex.protect lru.lock (fun () -> remember lru id encoded);
    id
  in
  let delete id =
    Mutex.protect lru.lock (fun () -> forget lru id);
    inner.Store.delete id
  in
  ( { inner with
      Store.name = Printf.sprintf "lru(%d):%s" capacity inner.Store.name;
      put;
      get;
      get_raw;
      delete },
    lru.stats )
