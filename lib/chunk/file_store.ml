module Hash = Fb_hash.Hash

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let path_of root id =
  let hex = Hash.to_hex id in
  Filename.concat (Filename.concat root (String.sub hex 0 2))
    (String.sub hex 2 (String.length hex - 2))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Reads race concurrent [delete] (GC, scrub, another server thread): a
   path observed via [readdir]/[file_exists] may be gone by the time it
   is opened.  A vanished file is an absence, not an error. *)
let read_file_opt path =
  match read_file path with
  | data -> Some data
  | exception (Sys_error _ | End_of_file) -> None

let write_file_atomic ~fsync path data =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     if fsync then begin
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc)
     end;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Rebuild physical statistics by scanning the fan-out directories.  A
   leftover [*.tmp] is a write the previous process never renamed — a
   crash artifact; recovery deletes it (the chunk was never committed, and
   its writer's put will be retried or surfaced by scrub). *)
let scan ~recover root =
  let chunks = ref 0 and bytes = ref 0 in
  if Sys.file_exists root && Sys.is_directory root then
    Array.iter
      (fun sub ->
        let dir = Filename.concat root sub in
        if String.length sub = 2 && Sys.is_directory dir then
          Array.iter
            (fun f ->
              let path = Filename.concat dir f in
              if Filename.check_suffix f ".tmp" then begin
                if recover then try Sys.remove path with Sys_error _ -> ()
              end
              else begin
                incr chunks;
                bytes := !bytes + (Unix.stat path).Unix.st_size
              end)
            (Sys.readdir dir))
      (Sys.readdir root);
  (!chunks, !bytes)

let create ?(fsync = false) ~root () =
  mkdir_p root;
  let physical_chunks, physical_bytes = scan ~recover:true root in
  let stats =
    ref
      { Store.empty_stats with physical_chunks; physical_bytes }
  in
  let put chunk =
    (* Hash first (streamed, memoized on the chunk); encode only when the
       file is actually missing. *)
    let id = Chunk.hash chunk in
    let size = Chunk.encoded_size chunk in
    let path = path_of root id in
    let s = !stats in
    let present = Sys.file_exists path in
    if not present then write_file_atomic ~fsync path (Chunk.encode chunk);
    stats :=
      { s with
        puts = s.puts + 1;
        logical_bytes = s.logical_bytes + size;
        dedup_hits = (s.dedup_hits + if present then 1 else 0);
        physical_chunks = (s.physical_chunks + if present then 0 else 1);
        physical_bytes = (s.physical_bytes + if present then 0 else size);
      };
    id
  in
  let get_raw id =
    stats := { !stats with gets = !stats.gets + 1 };
    read_file_opt (path_of root id)
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some encoded -> (
      match Chunk.decode encoded with Ok c -> Some c | Error _ -> None)
  in
  let peek id = read_file_opt (path_of root id) in
  let mem id = Sys.file_exists (path_of root id) in
  let iter f =
    Array.iter
      (fun sub ->
        let dir = Filename.concat root sub in
        if String.length sub = 2 && Sys.is_directory dir then
          Array.iter
            (fun file ->
              if not (Filename.check_suffix file ".tmp") then
                match Fb_hash.Hex.decode (sub ^ file) with
                | Error _ -> ()
                | Ok raw -> (
                  match Hash.of_raw raw with
                  | Error _ -> ()
                  | Ok id -> (
                    match read_file_opt (Filename.concat dir file) with
                    | None -> ()
                    | Some data -> f id data)))
            (Sys.readdir dir))
      (Sys.readdir root)
  in
  let delete id =
    let path = path_of root id in
    match (Unix.stat path).Unix.st_size with
    | exception Unix.Unix_error _ -> false
    | size -> (
      (* The file can vanish between stat and remove (concurrent GC or
         scrub on the same root); losing that race is a no-op delete. *)
      match Sys.remove path with
      | exception Sys_error _ -> false
      | () ->
        (* Clamp at zero: another instance on the same root may have
           written chunks this one's session counters never saw. *)
        stats :=
          { !stats with
            physical_chunks = max 0 (!stats.physical_chunks - 1);
            physical_bytes = max 0 (!stats.physical_bytes - size) };
        true)
  in
  { Store.name = "file:" ^ root; put; get; get_raw; peek; mem;
    stats = (fun () -> !stats); iter; delete }
