module Hash = Fb_hash.Hash

type member = {
  name : string;
  backend : Store.t;
  mutable down : bool;
}

type repair_stats = {
  mutable fallback_reads : int;
  mutable repaired : int;
  mutable rejected : int;
}

type t = {
  members : member array;
  ring : (string * int) array;   (* (point-hex, member index), sorted *)
  replicas : int;
  stats : repair_stats;
  mutable agg : Store.stats;     (* aggregate put/get accounting *)
}

type health = {
  member : string;
  down : bool;
  chunks : int;
  bytes : int;
}

(* Ring points are hex digests, compared lexicographically — the same key
   space chunk ids live in. *)
let ring_points ~virtual_nodes members =
  let points = ref [] in
  Array.iteri
    (fun idx m ->
      for v = 0 to virtual_nodes - 1 do
        let point =
          Hash.to_hex (Hash.of_string (Printf.sprintf "%s#%d" m.name v))
        in
        points := (point, idx) :: !points
      done)
    members;
  let arr = Array.of_list !points in
  Array.sort compare arr;
  arr

let create ?(replicas = 2) ?(virtual_nodes = 64) ~members () =
  if members = [] then invalid_arg "Sharded_store.create: no members";
  if replicas < 1 then invalid_arg "Sharded_store.create: replicas must be >= 1";
  if virtual_nodes < 1 then
    invalid_arg "Sharded_store.create: virtual_nodes must be >= 1";
  let members =
    Array.of_list
      (List.map (fun (name, backend) -> { name; backend; down = false }) members)
  in
  { members;
    ring = ring_points ~virtual_nodes members;
    replicas = min replicas (Array.length members);
    stats = { fallback_reads = 0; repaired = 0; rejected = 0 };
    agg = Store.empty_stats }

(* First [replicas] distinct members clockwise from the id's ring
   position. *)
let owner_indices t id =
  let key = Hash.to_hex id in
  let n = Array.length t.ring in
  (* Binary search: first ring point >= key (wrapping). *)
  let start =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < key then lo := mid + 1 else hi := mid
    done;
    !lo mod n
  in
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let i = ref start in
  while Hashtbl.length seen < t.replicas && Hashtbl.length seen < Array.length t.members do
    let idx = snd t.ring.(!i mod n) in
    if not (Hashtbl.mem seen idx) then begin
      Hashtbl.replace seen idx ();
      out := idx :: !out
    end;
    incr i
  done;
  List.rev !out

let owners t id = List.map (fun i -> t.members.(i).name) (owner_indices t id)

let up_owners t id =
  List.filter (fun i -> not t.members.(i).down) (owner_indices t id)

let set_down t name flag =
  match Array.find_opt (fun m -> String.equal m.name name) t.members with
  | Some m -> m.down <- flag
  | None -> invalid_arg ("Sharded_store.set_down: unknown member " ^ name)

let health t =
  Array.to_list
    (Array.map
       (fun m ->
         let s = Store.stats m.backend in
         { member = m.name;
           down = m.down;
           chunks = s.Store.physical_chunks;
           bytes = s.Store.physical_bytes })
       t.members)

let repair_stats t = t.stats

let store t =
  let put chunk =
    let id = Chunk.hash chunk in
    let size = Chunk.encoded_size chunk in
    let targets = up_owners t id in
    if targets = [] then
      (* Every owner down: the write cannot be durably placed. *)
      raise (Failure "sharded store: all owners down");
    let fresh =
      List.fold_left
        (fun fresh idx ->
          let m = t.members.(idx) in
          let was = Store.mem m.backend id in
          ignore (Store.put m.backend chunk);
          fresh || not was)
        false targets
    in
    let s = t.agg in
    t.agg <-
      { s with
        puts = s.puts + 1;
        logical_bytes = s.logical_bytes + size;
        dedup_hits = (s.dedup_hits + if fresh then 0 else 1);
        physical_chunks = (s.physical_chunks + if fresh then 1 else 0);
        physical_bytes = (s.physical_bytes + if fresh then size else 0) };
    id
  in
  (* Read from owners in preference order; verify, fall back, repair. *)
  let get_raw id =
    t.agg <- { t.agg with gets = t.agg.gets + 1 };
    let owner_list = owner_indices t id in
    let rec try_owners tried = function
      | [] -> None
      | idx :: rest ->
        let m = t.members.(idx) in
        if m.down then try_owners (idx :: tried) rest
        else (
          match m.backend.Store.get_raw id with
          | None -> try_owners (idx :: tried) rest
          | Some raw ->
            if Hash.equal (Hash.of_string raw) id then begin
              if tried <> [] then begin
                t.stats.fallback_reads <- t.stats.fallback_reads + 1;
                (* Read repair: give the failed owners a good copy. *)
                match Chunk.decode raw with
                | Ok chunk ->
                  List.iter
                    (fun j ->
                      let peer = t.members.(j) in
                      if not peer.down then begin
                        ignore (Store.put peer.backend chunk);
                        t.stats.repaired <- t.stats.repaired + 1
                      end)
                    tried
                | Error _ -> ()
              end;
              Some raw
            end
            else begin
              (* Corrupt replica: refuse it, drop it, look elsewhere. *)
              t.stats.rejected <- t.stats.rejected + 1;
              ignore (m.backend.Store.delete id);
              try_owners (idx :: tried) rest
            end)
    in
    try_owners [] owner_list
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  let peek id =
    (* Maintenance view: first healthy copy that verifies, no counters and
       no read repair. *)
    List.find_map
      (fun idx ->
        let m = t.members.(idx) in
        if m.down then None
        else
          match m.backend.Store.peek id with
          | Some raw when Hash.equal (Hash.of_string raw) id -> Some raw
          | _ -> None)
      (owner_indices t id)
  in
  let mem id =
    List.exists
      (fun idx ->
        let m = t.members.(idx) in
        (not m.down) && Store.mem m.backend id)
      (owner_indices t id)
  in
  let iter f =
    (* Distinct chunks across members; replicas visited once. *)
    let seen = Hash.Tbl.create 1024 in
    Array.iter
      (fun (m : member) ->
        if not m.down then
          m.backend.Store.iter (fun id encoded ->
              if not (Hash.Tbl.mem seen id) then begin
                Hash.Tbl.replace seen id ();
                f id encoded
              end))
      t.members
  in
  let delete id =
    let deleted = ref false in
    Array.iter
      (fun (m : member) -> if m.backend.Store.delete id then deleted := true)
      t.members;
    if !deleted then begin
      let s = t.agg in
      t.agg <- { s with physical_chunks = max 0 (s.physical_chunks - 1) }
    end;
    !deleted
  in
  { Store.name = Printf.sprintf "sharded(%d/%d)" t.replicas (Array.length t.members);
    put;
    get;
    get_raw;
    peek;
    mem;
    stats = (fun () -> t.agg);
    iter;
    delete }

let rebalance t =
  let st = store t in
  let copies = ref 0 in
  st.Store.iter (fun id encoded ->
      match Chunk.decode encoded with
      | Error _ -> ()
      | Ok chunk ->
        List.iter
          (fun idx ->
            let m = t.members.(idx) in
            if (not m.down) && not (Store.mem m.backend id) then begin
              ignore (Store.put m.backend chunk);
              incr copies
            end)
          (owner_indices t id));
  !copies
