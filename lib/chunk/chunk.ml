type kind =
  | Index
  | Leaf_map
  | Leaf_set
  | Leaf_list
  | Leaf_blob
  | Seq_index
  | Fnode

let kind_to_string = function
  | Index -> "index"
  | Leaf_map -> "leaf-map"
  | Leaf_set -> "leaf-set"
  | Leaf_list -> "leaf-list"
  | Leaf_blob -> "leaf-blob"
  | Seq_index -> "seq-index"
  | Fnode -> "fnode"

let kind_tag = function
  | Index -> 0
  | Leaf_map -> 1
  | Leaf_set -> 2
  | Leaf_list -> 3
  | Leaf_blob -> 4
  | Seq_index -> 5
  | Fnode -> 6

let kind_of_tag = function
  | 0 -> Some Index
  | 1 -> Some Leaf_map
  | 2 -> Some Leaf_set
  | 3 -> Some Leaf_list
  | 4 -> Some Leaf_blob
  | 5 -> Some Seq_index
  | 6 -> Some Fnode
  | _ -> None

let equal_kind a b = kind_tag a = kind_tag b
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type t = {
  kind : kind;
  payload : string;
  mutable enc : string option;          (* memoized [encode] *)
  mutable id : Fb_hash.Hash.t option;   (* memoized [hash] *)
}

let v kind payload = { kind; payload; enc = None; id = None }

(* 'F' 'B' magic, format version 1, kind tag, payload.  The header is part
   of the hashed bytes: a chunk reinterpreted under another kind gets a
   different identity. *)
let magic0 = 'F'
let magic1 = 'B'
let format_version = 1
let header_size = 4

(* One 4-byte header string per kind, so hashing a chunk never rebuilds
   it. *)
let headers =
  Array.init 7 (fun tag ->
      let b = Bytes.create header_size in
      Bytes.set b 0 magic0;
      Bytes.set b 1 magic1;
      Bytes.set b 2 (Char.chr format_version);
      Bytes.set b 3 (Char.chr tag);
      Bytes.unsafe_to_string b)

let encode c =
  match c.enc with
  | Some e -> e
  | None ->
      let n = String.length c.payload in
      let b = Bytes.create (header_size + n) in
      Bytes.blit_string headers.(kind_tag c.kind) 0 b 0 header_size;
      Bytes.blit_string c.payload 0 b header_size n;
      let e = Bytes.unsafe_to_string b in
      c.enc <- Some e;
      e

let decode s =
  if String.length s < header_size then Error "chunk: too short"
  else if s.[0] <> magic0 || s.[1] <> magic1 then Error "chunk: bad magic"
  else if Char.code s.[2] <> format_version then
    Error (Printf.sprintf "chunk: unsupported format version %d" (Char.code s.[2]))
  else
    match kind_of_tag (Char.code s.[3]) with
    | None -> Error (Printf.sprintf "chunk: unknown kind tag %d" (Char.code s.[3]))
    | Some kind ->
      (* [s] is already the canonical encoding (magic, version and kind all
         checked above), so it seeds the memo: a decode → re-encode or
         decode → hash round-trip copies nothing. *)
      Ok { kind;
           payload = String.sub s header_size (String.length s - header_size);
           enc = Some s;
           id = None }

let hash c =
  match c.id with
  | Some h -> h
  | None ->
      let h =
        (* Stream header and payload through the incremental SHA-256 context
           rather than materializing the encoding just to hash it. *)
        match c.enc with
        | Some e -> Fb_hash.Hash.of_string e
        | None ->
            Fb_hash.Hash.of_strings [ headers.(kind_tag c.kind); c.payload ]
      in
      c.id <- Some h;
      h
let encoded_size c = header_size + String.length c.payload

let pp fmt c =
  Format.fprintf fmt "%a[%a, %d bytes]" pp_kind c.kind Fb_hash.Hash.pp (hash c)
    (String.length c.payload)
