module Hash = Fb_hash.Hash

(* Layout:
     magic "FBPACK1\n" (8 bytes)
     count   (8-byte big-endian)
     index   count * (32-byte id, 8-byte offset, 8-byte length), id-sorted;
             offsets are absolute file positions
     data    concatenated encoded chunks *)

let magic = "FBPACK1\n"
let header_size = String.length magic + 8
let index_entry_size = 32 + 8 + 8

type t = {
  path : string;
  ids : Hash.t array;       (* sorted *)
  offsets : int array;
  lengths : int array;
}

(* Push directory metadata (the rename) to stable storage; best-effort. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file ?(fsync = false) ~path entries =
  let rec check = function
    | [] -> Ok ()
    | (id, encoded) :: rest ->
      if Hash.equal (Hash.of_string encoded) id then check rest
      else
        Error
          (Printf.sprintf "pack: bytes for %s hash elsewhere" (Hash.to_hex id))
  in
  match check entries with
  | Error _ as e -> e
  | Ok () ->
    let entries =
      List.sort_uniq
        (fun (a, _) (b, _) -> Hash.compare a b)
        entries
    in
    let n = List.length entries in
    let index_size = n * index_entry_size in
    let data_start = header_size + index_size in
    let oc = open_out_bin (path ^ ".tmp") in
    (try
       output_string oc magic;
       let b8 = Bytes.create 8 in
       Bytes.set_int64_be b8 0 (Int64.of_int n);
       output_bytes oc b8;
       let off = ref data_start in
       List.iter
         (fun (id, encoded) ->
           output_string oc (Hash.to_raw id);
           Bytes.set_int64_be b8 0 (Int64.of_int !off);
           output_bytes oc b8;
           Bytes.set_int64_be b8 0 (Int64.of_int (String.length encoded));
           output_bytes oc b8;
           off := !off + String.length encoded)
         entries;
       List.iter (fun (_, encoded) -> output_string oc encoded) entries;
       (* The tmp bytes must be stable before the rename publishes them,
          or a crash can promote a torn pack (same ordering as the branch
          table save). *)
       if fsync then begin
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       end;
       close_out oc;
       Sys.rename (path ^ ".tmp") path;
       if fsync then fsync_dir (Filename.dirname path);
       Ok n
     with e ->
       close_out_noerr oc;
       (try Sys.remove (path ^ ".tmp") with Sys_error _ -> ());
       Error (Printexc.to_string e))

let pack_store store ~path =
  let entries = ref [] in
  store.Store.iter (fun id encoded -> entries := (id, encoded) :: !entries);
  write_file ~path !entries

let open_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m = really_input_string ic (String.length magic) in
        if not (String.equal m magic) then failwith "pack: bad magic";
        let n = Int64.to_int (String.get_int64_be (really_input_string ic 8) 0) in
        if n < 0 then failwith "pack: negative count";
        let file_size = in_channel_length ic in
        if header_size + (n * index_entry_size) > file_size then
          failwith "pack: truncated index";
        let ids = Array.make n (Hash.of_string "") in
        let offsets = Array.make n 0 in
        let lengths = Array.make n 0 in
        for i = 0 to n - 1 do
          let raw = really_input_string ic index_entry_size in
          ids.(i) <- Hash.of_raw_exn (String.sub raw 0 32);
          offsets.(i) <- Int64.to_int (String.get_int64_be raw 32);
          lengths.(i) <- Int64.to_int (String.get_int64_be raw 40);
          if i > 0 && Hash.compare ids.(i - 1) ids.(i) >= 0 then
            failwith "pack: index not sorted";
          if offsets.(i) < 0 || lengths.(i) < 0
             || offsets.(i) + lengths.(i) > file_size
          then failwith "pack: entry out of bounds"
        done;
        { path; ids; offsets; lengths })
  with
  | t -> Ok t
  | exception Failure e -> Error e
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "pack: truncated file"

let count t = Array.length t.ids

let index_of t id =
  let lo = ref 0 and hi = ref (Array.length t.ids - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Hash.compare id t.ids.(mid) in
    if c = 0 then found := mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  if !found >= 0 then Some !found else None

let mem t id = index_of t id <> None

let find t id =
  match index_of t id with
  | None -> None
  | Some i -> (
    match
      let ic = open_in_bin t.path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          seek_in ic t.offsets.(i);
          really_input_string ic t.lengths.(i))
    with
    | s -> Some s
    | exception (Sys_error _ | End_of_file) -> None)

let frozen name =
  Printf.ksprintf (fun s () -> raise (Failure s)) "pack %s is read-only" name

let reader t =
  let stats =
    ref
      { Store.empty_stats with
        physical_chunks = count t;
        physical_bytes = Array.fold_left ( + ) 0 t.lengths }
  in
  let get_raw id =
    stats := { !stats with gets = !stats.gets + 1 };
    find t id
  in
  { Store.name = "pack:" ^ t.path;
    put = (fun _ -> frozen t.path ());
    get =
      (fun id ->
        match get_raw id with
        | None -> None
        | Some raw -> (
          match Chunk.decode raw with Ok c -> Some c | Error _ -> None));
    get_raw;
    peek = (fun id -> find t id);
    mem = (fun id -> mem t id);
    stats = (fun () -> !stats);
    iter =
      (fun f ->
        Array.iter
          (fun id ->
            match find t id with Some raw -> f id raw | None -> ())
          t.ids);
    delete = (fun _ -> frozen t.path ()) }

let with_overlay ~packs overlay =
  let in_pack id = List.exists (fun p -> mem p id) packs in
  let find_pack id = List.find_map (fun p -> find p id) packs in
  let stats = ref Store.empty_stats in
  let put chunk =
    let id = Chunk.hash chunk in
    let size = Chunk.encoded_size chunk in
    let s = !stats in
    if in_pack id then begin
      stats :=
        { s with
          puts = s.puts + 1;
          dedup_hits = s.dedup_hits + 1;
          logical_bytes = s.logical_bytes + size };
      id
    end
    else begin
      stats :=
        { s with
          puts = s.puts + 1;
          logical_bytes = s.logical_bytes + size };
      Store.put overlay chunk
    end
  in
  let get_raw id =
    stats := { !stats with gets = !stats.gets + 1 };
    match overlay.Store.get_raw id with
    | Some raw -> Some raw
    | None -> find_pack id
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  let peek id =
    match overlay.Store.peek id with
    | Some raw -> Some raw
    | None -> find_pack id
  in
  let mem id = overlay.Store.mem id || in_pack id in
  let iter f =
    let seen = Hash.Tbl.create 1024 in
    overlay.Store.iter (fun id raw ->
        Hash.Tbl.replace seen id ();
        f id raw);
    List.iter
      (fun p ->
        Array.iter
          (fun id ->
            if not (Hash.Tbl.mem seen id) then begin
              Hash.Tbl.replace seen id ();
              match find p id with Some raw -> f id raw | None -> ()
            end)
          p.ids)
      packs
  in
  let combined () =
    let o = Store.stats overlay in
    let pack_chunks = List.fold_left (fun a p -> a + count p) 0 packs in
    let pack_bytes =
      List.fold_left (fun a p -> a + Array.fold_left ( + ) 0 p.lengths) 0 packs
    in
    { !stats with
      physical_chunks = o.Store.physical_chunks + pack_chunks;
      physical_bytes = o.Store.physical_bytes + pack_bytes }
  in
  { Store.name = Printf.sprintf "overlay+%d packs" (List.length packs);
    put;
    get;
    get_raw;
    peek;
    mem;
    stats = combined;
    iter;
    delete = (fun id -> overlay.Store.delete id) }
