module Obs = Fb_obs.Obs

(* Observable store wrapper: every [put]/[get]/[mem]/[delete] is timed
   into an [Fb_obs] latency histogram, and the store's own counters are
   folded into the registry as callback gauges read at dump time.

   [peek] deliberately bypasses accounting — it is the maintenance
   backdoor (scrub, gc marking, replica repair) whose whole contract is
   to leave the operational picture untouched. *)

let register_store_stats ?(prefix = "fb_store") (s : Store.t) =
  let stat f = Obs.gauge (prefix ^ f) in
  stat ".physical_chunks" (fun () ->
      float_of_int (Store.stats s).Store.physical_chunks);
  stat ".physical_bytes" (fun () ->
      float_of_int (Store.stats s).Store.physical_bytes);
  stat ".logical_bytes" (fun () ->
      float_of_int (Store.stats s).Store.logical_bytes);
  stat ".puts" (fun () -> float_of_int (Store.stats s).Store.puts);
  stat ".gets" (fun () -> float_of_int (Store.stats s).Store.gets);
  stat ".dedup_hits" (fun () -> float_of_int (Store.stats s).Store.dedup_hits);
  stat ".dedup_ratio" (fun () -> Store.dedup_ratio (Store.stats s))

let register_cache ?(prefix = "fb_cache") (cs : Cache_store.cache_stats) =
  Obs.gauge (prefix ^ ".hits") (fun () -> float_of_int cs.Cache_store.hits);
  Obs.gauge (prefix ^ ".misses") (fun () ->
      float_of_int cs.Cache_store.misses);
  Obs.gauge (prefix ^ ".evictions") (fun () ->
      float_of_int cs.Cache_store.evictions);
  Obs.gauge (prefix ^ ".hit_ratio") (fun () -> Cache_store.hit_ratio cs)

let register_resilient ?(prefix = "fb_resilient")
    (rs : Resilient_store.stats) =
  let stat f read = Obs.gauge (prefix ^ f) (fun () -> float_of_int (read ())) in
  stat ".retries" (fun () -> rs.Resilient_store.retries);
  stat ".absorbed" (fun () -> rs.Resilient_store.absorbed);
  stat ".gave_up" (fun () -> rs.Resilient_store.gave_up);
  stat ".fallback_reads" (fun () -> rs.Resilient_store.fallback_reads);
  stat ".heals" (fun () -> rs.Resilient_store.heals);
  stat ".corrupt_rejected" (fun () -> rs.Resilient_store.corrupt_rejected);
  stat ".unrecovered" (fun () -> rs.Resilient_store.unrecovered)

let wrap ?(prefix = "fb_store") (inner : Store.t) =
  register_store_stats ~prefix inner;
  let h_put = Obs.histogram (prefix ^ ".put_seconds") in
  let h_get = Obs.histogram (prefix ^ ".get_seconds") in
  let h_mem = Obs.histogram (prefix ^ ".mem_seconds") in
  let h_delete = Obs.histogram (prefix ^ ".delete_seconds") in
  (* Inlined timing (rather than closing over [Obs.time]) keeps the
     disabled path to a single branch per operation. *)
  let timed h f x =
    if not (Obs.is_enabled ()) then f x
    else begin
      let t0 = Unix.gettimeofday () in
      match f x with
      | r ->
        Obs.observe h (Unix.gettimeofday () -. t0);
        r
      | exception e ->
        Obs.observe h (Unix.gettimeofday () -. t0);
        raise e
    end
  in
  { inner with
    Store.name = "metered:" ^ inner.Store.name;
    put = timed h_put inner.Store.put;
    get = timed h_get inner.Store.get;
    get_raw = timed h_get inner.Store.get_raw;
    mem = timed h_mem inner.Store.mem;
    delete = timed h_delete inner.Store.delete }
