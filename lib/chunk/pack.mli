(** Pack files: many chunks in one indexed archive.

    The directory backend stores one file per chunk, which is simple but
    wasteful for cold data (inode per 2 KB page).  A pack freezes a set of
    chunks into a single file with a sorted index for binary-search lookup
    — the same role git's packfiles play for loose objects.  Packs are
    immutable; fresh writes go to an overlay store layered on top with
    {!with_overlay}. *)

type t
(** An open pack (index resident, data read on demand). *)

val write_file :
  ?fsync:bool ->
  path:string -> (Fb_hash.Hash.t * string) list -> (int, string) result
(** Write a pack holding the given (id, encoded bytes) pairs; returns the
    chunk count.  Entries whose bytes do not hash to their id are refused —
    a pack can only hold honest chunks.  With [fsync] (default [false])
    the bytes are synced before the atomic rename publishes the pack, so
    a power cut never promotes a torn archive. *)

val pack_store : Store.t -> path:string -> (int, string) result
(** Freeze every chunk of a store into a pack file. *)

val open_file : path:string -> (t, string) result
(** Open a pack, loading and sanity-checking its index. *)

val count : t -> int
val find : t -> Fb_hash.Hash.t -> string option
val mem : t -> Fb_hash.Hash.t -> bool

val reader : t -> Store.t
(** Read-only store view of a pack; [put]/[delete] raise [Failure]. *)

val with_overlay : packs:t list -> Store.t -> Store.t
(** Layered store: reads hit the overlay first, then each pack in order;
    writes and deletes go to the overlay.  A put whose chunk already lives
    in a pack is counted as a dedup hit and not duplicated. *)
